//===- bench/compile_time.cpp - Compile-speed microbenchmarks ------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Google-benchmark harness behind Section 7.2's compile-speed claim:
/// measures the Reticle pipeline stages and both baseline modes on the
/// tensoradd workload. The figure binaries report wall-clock per size;
/// this harness gives statistically solid per-stage numbers.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "frontend/Benchmarks.h"
#include "isel/Select.h"
#include "place/Place.h"
#include "synth/Synth.h"
#include "tdl/Ultrascale.h"

#include <benchmark/benchmark.h>

using namespace reticle;

namespace {

void BM_ReticleSelect(benchmark::State &State) {
  ir::Function Fn =
      frontend::makeTensorAdd(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    Result<rasm::AsmProgram> Asm = isel::select(Fn, tdl::ultrascale());
    benchmark::DoNotOptimize(Asm.ok());
  }
}
BENCHMARK(BM_ReticleSelect)->Arg(64)->Arg(256);

void BM_ReticlePlace(benchmark::State &State) {
  ir::Function Fn =
      frontend::makeTensorAdd(static_cast<unsigned>(State.range(0)));
  Result<rasm::AsmProgram> Asm = isel::select(Fn, tdl::ultrascale());
  device::Device Dev = device::Device::xczu3eg();
  for (auto _ : State) {
    Result<rasm::AsmProgram> Placed = place::place(Asm.value(), Dev);
    benchmark::DoNotOptimize(Placed.ok());
  }
}
BENCHMARK(BM_ReticlePlace)->Arg(64)->Arg(256);

void BM_ReticleFullPipeline(benchmark::State &State) {
  ir::Function Fn =
      frontend::makeTensorAdd(static_cast<unsigned>(State.range(0)));
  core::CompileOptions Options;
  for (auto _ : State) {
    Result<core::CompileResult> R = core::compile(Fn, Options);
    benchmark::DoNotOptimize(R.ok());
  }
}
BENCHMARK(BM_ReticleFullPipeline)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BaselineBase(benchmark::State &State) {
  ir::Function Fn =
      frontend::makeTensorAdd(static_cast<unsigned>(State.range(0)));
  synth::SynthOptions Options;
  for (auto _ : State) {
    Result<synth::SynthResult> R = synth::synthesize(Fn, Options);
    benchmark::DoNotOptimize(R.ok());
  }
}
BENCHMARK(BM_BaselineBase)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BaselineHint(benchmark::State &State) {
  ir::Function Fn =
      frontend::makeTensorAdd(static_cast<unsigned>(State.range(0)));
  synth::SynthOptions Options;
  Options.SynthMode = synth::Mode::Hint;
  for (auto _ : State) {
    Result<synth::SynthResult> R = synth::synthesize(Fn, Options);
    benchmark::DoNotOptimize(R.ok());
  }
}
BENCHMARK(BM_BaselineHint)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
