//===- bench/fig4_dsp_add.cpp - Figure 4 regeneration -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 4: resource utilization of the parallel array
/// addition of Figure 3 for loop bounds N in {8..1024} on the xczu3eg
/// (360 DSPs), comparing
///
///  - `behavioral, scalar`: the behavioral program with DSP hint
///    annotations through the baseline toolchain (one scalar DSP per
///    addition while DSPs last, then silent LUT fallback), and
///  - `structural, vectorized (hand-optimized)`: the same computation
///    through Reticle with vector types bound to DSPs (four additions per
///    DSP via SIMD).
///
/// Expected shape (paper): the behavioral curve saturates at 360 DSPs by
/// N = 512 and its LUT usage explodes afterwards; the structural curve
/// needs only N/4 DSPs and no LUTs through N = 1024.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "frontend/Benchmarks.h"

#include <cstdio>
#include <vector>

using namespace reticle;

int main() {
  device::Device Dev = device::Device::xczu3eg();
  std::printf("Figure 4: dsp_add utilization on %s (%u DSPs, %u LUTs)\n\n",
              Dev.name().c_str(), Dev.numDsps(), Dev.numLuts());
  std::printf("%-6s | %14s %14s | %14s %14s\n", "N", "DSPs.behav",
              "DSPs.reticle", "LUTs.behav", "LUTs.reticle");

  std::vector<unsigned> Sizes = {8, 16, 32, 64, 128, 256, 512, 1024};
  bench::SeriesReport Report("fig4_dsp_add",
                             "Figure 4: dsp_add utilization");

  std::vector<std::pair<std::string, ir::Function>> Points;
  for (unsigned N : Sizes)
    Points.emplace_back("dsp_add_" + std::to_string(N),
                        frontend::makeDspAdd(N));
  bench::BatchRun Batch = bench::runReticleBatch(Points, Dev);
  Report.setBatch(Batch);

  bool AllOk = true;
  for (size_t I = 0; I < Sizes.size(); ++I) {
    unsigned N = Sizes[I];
    const ir::Function &Fn = Points[I].second;
    bench::RunResult Behav =
        bench::runBaseline(Fn, synth::Mode::Hint, Dev);
    const bench::RunResult &Ret = Batch.Results[I];
    Report.add(std::to_string(N), "behavioral_hint", Behav);
    Report.add(std::to_string(N), "reticle", Ret);
    if (!Behav.Ok || !Ret.Ok) {
      std::printf("%-6u FAILED: %s%s\n", N, Behav.Error.c_str(),
                  Ret.Error.c_str());
      AllOk = false;
      continue;
    }
    std::printf("%-6u | %14u %14u | %14u %14u\n", N, Behav.Dsps, Ret.Dsps,
                Behav.Luts, Ret.Luts);
  }
  Report.write();
  std::printf("\nBatch (%zu reticle compiles): sequential %.1f ms, "
              "parallel %.1f ms on %u jobs\n",
              Points.size(), Batch.SequentialMs, Batch.ParallelMs,
              Batch.Jobs);
  std::printf("\nShape checks (paper Figure 4):\n");
  {
    ir::Function At512 = frontend::makeDspAdd(512);
    ir::Function At1024 = frontend::makeDspAdd(1024);
    bench::RunResult B512 =
        bench::runBaseline(At512, synth::Mode::Hint, Dev);
    bench::RunResult B1024 =
        bench::runBaseline(At1024, synth::Mode::Hint, Dev);
    bench::RunResult R1024 = bench::runReticle(At1024, Dev);
    bool Saturates = B512.Ok && B512.Dsps == Dev.numDsps();
    bool LutCliff = B1024.Ok && B1024.Luts > 1000;
    bool Vectorized = R1024.Ok && R1024.Dsps == 1024 / 4 && R1024.Luts == 0;
    std::printf("  behavioral saturates 360 DSPs at N=512: %s\n",
                Saturates ? "yes" : "NO");
    std::printf("  behavioral LUT fallback beyond saturation: %s\n",
                LutCliff ? "yes" : "NO");
    std::printf("  structural stays at N/4 DSPs, 0 LUTs: %s\n",
                Vectorized ? "yes" : "NO");
    AllOk = AllOk && Saturates && LutCliff && Vectorized;
  }
  return AllOk ? 0 : 1;
}
