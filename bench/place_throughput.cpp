//===- bench/place_throughput.cpp - Placement shrink-search throughput ----------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Measures the wall-clock of the placement shrink search (Section 5's
/// area minimization) under the three solver strategies: `scratch`
/// (historical behavior — a fresh SAT encoding per probe), `incremental`
/// (one persistent solver answering every probe through the Kill-ladder
/// assumptions, learnt clauses and activities carried across probes) and
/// `portfolio` (the same persistent encoding raced by N diverse lanes
/// with bounded clause exchange). Every FSM in the corpus is compiled
/// through core::compileBatch once per mode, and the per-program rows
/// record the probe mix (SAT-backed vs arithmetic precheck), the total
/// and average per-probe solve time, and the clause-reuse counters the
/// speedup comes from. The headline number is the `speedup` block:
/// scratch-vs-incremental on the ~256-instruction FSM, where the
/// acceptance bar is >= 1.5x. Portfolio is reported separately — its
/// win condition is wall-clock on adversarial probes, not throughput on
/// easy ones. Writes `BENCH_place.json` ("reticle-bench-v1") next to
/// the binary.
///
//===----------------------------------------------------------------------===//

#include "core/Batch.h"
#include "core/Compiler.h"
#include "device/Device.h"
#include "frontend/Benchmarks.h"
#include "obs/Json.h"
#include "obs/Report.h"
#include "place/Place.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace reticle;

namespace {

const char *modeName(place::SatMode Mode) {
  switch (Mode) {
  case place::SatMode::Scratch:
    return "scratch";
  case place::SatMode::Incremental:
    return "incremental";
  case place::SatMode::Portfolio:
    return "portfolio";
  }
  return "?";
}

/// One (program, mode) measurement reduced to what the figure plots.
struct PlaceRun {
  bool Ok = false;
  std::string Error;
  double CompileMs = 0.0;
  place::PlacementStats Stats;
};

/// Compiles the whole corpus through core::compileBatch under one solver
/// mode. Jobs is pinned to 1 so the shrink-search timings are not
/// perturbed by sibling compiles on the same cores.
std::vector<PlaceRun>
runCorpus(const std::vector<std::pair<std::string, ir::Function>> &Corpus,
          place::SatMode Mode) {
  std::vector<core::BatchInput> Inputs;
  Inputs.reserve(Corpus.size());
  for (const auto &[Name, Fn] : Corpus)
    Inputs.push_back({Name, Fn.str()});

  core::BatchOptions Options;
  Options.Options.Dev = device::Device::xczu3eg();
  Options.Options.SatMode = Mode;
  Options.Jobs = 1;
  std::vector<core::BatchItem> Items = core::compileBatch(Inputs, Options);

  std::vector<PlaceRun> Out;
  Out.reserve(Items.size());
  for (const core::BatchItem &Item : Items) {
    PlaceRun R;
    if (!Item.ok()) {
      R.Error = Item.Outcome ? Item.Outcome->error()
                             : std::string("not compiled");
      Out.push_back(std::move(R));
      continue;
    }
    R.Ok = true;
    R.CompileMs = Item.Outcome->value().Times.TotalMs;
    R.Stats = Item.Outcome->value().PlaceStats;
    Out.push_back(std::move(R));
  }
  return Out;
}

obs::Json rowFor(const std::string &Size, place::SatMode Mode,
                 const PlaceRun &R) {
  obs::Json Row = obs::Json::object();
  Row.set("size", Size);
  Row.set("toolchain", std::string(modeName(Mode)));
  Row.set("ok", R.Ok);
  if (!R.Ok) {
    Row.set("error", R.Error);
    return Row;
  }
  const place::PlacementStats &S = R.Stats;
  // Timeline holds the initial solve plus every probe; the shrink search
  // proper is everything after the first frame.
  uint64_t Probes = S.IncrementalProbes + S.PrecheckProbes;
  Row.set("compile_ms", R.CompileMs);
  Row.set("shrink_ms", S.ShrinkMs);
  Row.set("sat_ms", S.SatMs);
  Row.set("probes", Probes);
  Row.set("sat_probes", S.IncrementalProbes);
  Row.set("precheck_probes", S.PrecheckProbes);
  Row.set("probe_ms_avg",
          S.IncrementalProbes ? S.ShrinkMs / double(S.IncrementalProbes)
                              : 0.0);
  Row.set("encodes", S.IncrementalEncodes);
  Row.set("reused_clauses", S.ReusedClauses);
  Row.set("reused_learned", S.ReusedLearned);
  Row.set("conflicts", S.Conflicts);
  Row.set("max_column", uint64_t(S.MaxColumn));
  Row.set("max_row", uint64_t(S.MaxRow));
  if (Mode == place::SatMode::Portfolio) {
    Row.set("portfolio_rounds", S.PortfolioRounds);
    Row.set("portfolio_exported", S.PortfolioExported);
    Row.set("portfolio_imported", S.PortfolioImported);
  }
  return Row;
}

} // namespace

int main() {
  // FSM state counts picked off the xczu3eg probe profile: 16 and 32
  // settle every shrink probe in the arithmetic precheck (so they pin
  // down the fixed costs), while 43 states lowers to ~256 instructions
  // and drives real SAT probes on both axes — the corpus point the
  // paper-scale speedup claim is measured on.
  std::vector<std::pair<std::string, ir::Function>> Corpus;
  Corpus.emplace_back("fsm_16", frontend::makeFsm(16));
  Corpus.emplace_back("fsm_32", frontend::makeFsm(32));
  Corpus.emplace_back("fsm_256", frontend::makeFsm(43));

  const place::SatMode Modes[] = {place::SatMode::Scratch,
                                  place::SatMode::Incremental,
                                  place::SatMode::Portfolio};

  std::printf("Placement shrink-search throughput: FSM corpus on xczu3eg\n\n");
  std::printf("  %-8s %-12s %10s %10s %7s %7s %10s %9s\n", "size", "mode",
              "shrink ms", "sat ms", "probes", "satprb", "avg ms/prb",
              "reused");

  obs::Json Rows = obs::Json::array();
  // [mode][program] — kept for the speedup block below.
  std::vector<std::vector<PlaceRun>> ByMode;
  for (place::SatMode Mode : Modes) {
    std::vector<PlaceRun> Runs = runCorpus(Corpus, Mode);
    for (size_t I = 0; I < Runs.size(); ++I) {
      const PlaceRun &R = Runs[I];
      if (!R.Ok) {
        std::printf("  %-8s %-12s FAILED: %s\n", Corpus[I].first.c_str(),
                    modeName(Mode), R.Error.c_str());
      } else {
        const place::PlacementStats &S = R.Stats;
        std::printf(
            "  %-8s %-12s %10.1f %10.1f %7llu %7llu %10.1f %9llu\n",
            Corpus[I].first.c_str(), modeName(Mode), S.ShrinkMs, S.SatMs,
            (unsigned long long)(S.IncrementalProbes + S.PrecheckProbes),
            (unsigned long long)S.IncrementalProbes,
            S.IncrementalProbes ? S.ShrinkMs / double(S.IncrementalProbes)
                                : 0.0,
            (unsigned long long)S.ReusedClauses);
      }
      Rows.push(rowFor(Corpus[I].first, Mode, R));
    }
    ByMode.push_back(std::move(Runs));
  }

  // Speedup block: total shrink-phase wall-clock, scratch over each
  // persistent mode, per program. The acceptance gate is the fsm_256
  // incremental entry (>= 1.5x).
  obs::Json Speedup = obs::Json::array();
  std::printf("\n  %-8s %24s %24s\n", "size", "incremental_vs_scratch",
              "portfolio_vs_scratch");
  bool GateOk = false;
  for (size_t I = 0; I < Corpus.size(); ++I) {
    const PlaceRun &Scratch = ByMode[0][I];
    const PlaceRun &Incr = ByMode[1][I];
    const PlaceRun &Port = ByMode[2][I];
    if (!Scratch.Ok || !Incr.Ok || !Port.Ok)
      continue;
    double IncrX = Incr.Stats.ShrinkMs > 0.0
                       ? Scratch.Stats.ShrinkMs / Incr.Stats.ShrinkMs
                       : 0.0;
    double PortX = Port.Stats.ShrinkMs > 0.0
                       ? Scratch.Stats.ShrinkMs / Port.Stats.ShrinkMs
                       : 0.0;
    obs::Json E = obs::Json::object();
    E.set("size", Corpus[I].first);
    E.set("scratch_shrink_ms", Scratch.Stats.ShrinkMs);
    E.set("incremental_shrink_ms", Incr.Stats.ShrinkMs);
    E.set("portfolio_shrink_ms", Port.Stats.ShrinkMs);
    E.set("incremental_vs_scratch", IncrX);
    E.set("portfolio_vs_scratch", PortX);
    Speedup.push(std::move(E));
    std::printf("  %-8s %23.2fx %23.2fx\n", Corpus[I].first.c_str(), IncrX,
                PortX);
    if (Corpus[I].first == "fsm_256" && IncrX >= 1.5)
      GateOk = true;
  }
  std::printf("\n  fsm_256 incremental-vs-scratch gate (>= 1.5x): %s\n",
              GateOk ? "PASS" : "FAIL");

  obs::Json Doc = obs::Json::object();
  Doc.set("schema", "reticle-bench-v1");
  Doc.set("figure", "place");
  Doc.set("title",
          "Placement shrink-search solve time by SAT solver strategy");
  Doc.set("series", std::move(Rows));
  Doc.set("speedup", std::move(Speedup));
  std::string Path = "BENCH_place.json";
  if (Status S = obs::writeJsonFile(Doc, Path); !S) {
    std::fprintf(stderr, "warning: %s\n", S.error().c_str());
    return GateOk ? 0 : 1;
  }
  std::printf("\nwrote %s\n", Path.c_str());
  return GateOk ? 0 : 1;
}
