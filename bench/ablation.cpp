//===- bench/ablation.cpp - Design-choice ablations -----------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Ablations for the compiler's design choices (DESIGN.md §5b):
///
///  1. cascade rewrite on/off (Section 5.2): run-time effect on
///     dot-product chains;
///  2. placement shrinking on/off (Section 5.3): layout area vs. compile
///     time;
///  3. front-end vectorization on/off (Section 8.2): utilization and
///     run-time on scalar-coded parallel adds.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "core/Compiler.h"
#include "frontend/Benchmarks.h"
#include "opt/Transforms.h"

#include <cstdio>

using namespace reticle;

namespace {

int Failures = 0;

void check(bool Ok, const char *What) {
  std::printf("  %-58s %s\n", What, Ok ? "yes" : "NO");
  if (!Ok)
    ++Failures;
}

unsigned maxRowUsed(const rasm::AsmProgram &Placed) {
  unsigned Max = 0;
  for (const rasm::AsmInstr &I : Placed.body())
    if (!I.isWire())
      Max = std::max<unsigned>(Max, I.loc().Y.offset());
  return Max;
}

} // namespace

int main() {
  bench::SeriesReport Report("ablation", "Design-choice ablations");
  std::printf("Ablation 1: DSP cascading (tensordot 5x18)\n");
  {
    ir::Function Fn = frontend::makeTensorDot(18);
    core::CompileOptions On, Off;
    Off.Cascade = false;
    Result<core::CompileResult> With = core::compile(Fn, On);
    Result<core::CompileResult> Without = core::compile(Fn, Off);
    if (!With || !Without) {
      std::printf("FAILED: %s%s\n", With ? "" : With.error().c_str(),
                  Without ? "" : Without.error().c_str());
      return 1;
    }
    Report.addCompile("tensordot_5x18", "cascade_on", With.value());
    Report.addCompile("tensordot_5x18", "cascade_off", Without.value());
    std::printf("  critical path: cascaded %.2f ns, general routing "
                "%.2f ns\n",
                With.value().Timing.CriticalPathNs,
                Without.value().Timing.CriticalPathNs);
    check(With.value().Timing.CriticalPathNs <
              Without.value().Timing.CriticalPathNs,
          "cascading shortens the critical path");
    check(With.value().Util.Dsps == Without.value().Util.Dsps,
          "cascading is area-neutral");
  }

  std::printf("\nAblation 2: placement shrinking (tensoradd 256)\n");
  {
    ir::Function Fn = frontend::makeTensorAdd(256);
    core::CompileOptions On, Off;
    Off.Shrink = false;
    Result<core::CompileResult> With = core::compile(Fn, On);
    Result<core::CompileResult> Without = core::compile(Fn, Off);
    if (!With || !Without) {
      std::printf("FAILED\n");
      return 1;
    }
    Report.addCompile("tensoradd_256", "shrink_on", With.value());
    Report.addCompile("tensoradd_256", "shrink_off", Without.value());
    std::printf("  max row used: shrunk %u, unshrunk %u; place time "
                "%.1f ms vs %.1f ms (%u vs %u solve(s))\n",
                maxRowUsed(With.value().Placed),
                maxRowUsed(Without.value().Placed), With.value().Times.PlaceMs,
                Without.value().Times.PlaceMs, With.value().PlaceStats.Solves,
                Without.value().PlaceStats.Solves);
    check(maxRowUsed(With.value().Placed) <=
              maxRowUsed(Without.value().Placed),
          "shrinking never enlarges the layout");
  }

  std::printf("\nAblation 3: front-end vectorization (64 scalar adds)\n");
  {
    // Scalar-coded parallel adds, the Figure 16 'unoptimized' form.
    ir::Function Scalar("scalar_adds");
    ir::Type I8 = ir::Type::makeInt(8);
    for (unsigned I = 0; I < 64; ++I) {
      std::string S = std::to_string(I);
      Scalar.addInput("a" + S, I8);
      Scalar.addInput("b" + S, I8);
      Scalar.addOutput("y" + S, I8);
      Scalar.addInstr(ir::Instr::makeComp("y" + S, I8, ir::CompOp::Add,
                                          {"a" + S, "b" + S}));
    }
    ir::Function Vectorized = Scalar;
    unsigned Formed = opt::vectorize(Vectorized);

    core::CompileOptions Options;
    Result<core::CompileResult> A = core::compile(Scalar, Options);
    Result<core::CompileResult> B = core::compile(Vectorized, Options);
    if (!A || !B) {
      std::printf("FAILED\n");
      return 1;
    }
    Report.addCompile("scalar_adds_64", "scalar", A.value());
    Report.addCompile("scalar_adds_64", "vectorized", B.value());
    std::printf("  formed %u vector op(s); scalar: %u LUTs / %u DSPs; "
                "vectorized: %u LUTs / %u DSPs\n",
                Formed, A.value().Util.Luts, A.value().Util.Dsps,
                B.value().Util.Luts, B.value().Util.Dsps);
    check(Formed == 16, "all 64 adds packed into 16 vector ops");
    check(A.value().Util.Dsps == 0 && B.value().Util.Dsps == 16,
          "vectorization moves the work onto SIMD DSPs");
    check(B.value().Util.Luts == 0,
          "vectorized form needs no soft logic");
  }

  Report.write();
  std::printf("\n%s\n", Failures == 0 ? "all ablation checks passed"
                                      : "ABLATION CHECKS FAILED");
  return Failures == 0 ? 0 : 1;
}
