//===- bench/BenchUtil.h - Shared benchmark harness -------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-regeneration binaries: run one program
/// through the Reticle pipeline and through the baseline toolchain in both
/// modes, and print aligned series rows. Each bench binary regenerates one
/// figure of the paper's evaluation (Section 7); EXPERIMENTS.md records
/// the measured series against the published shapes.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_BENCH_BENCHUTIL_H
#define RETICLE_BENCH_BENCHUTIL_H

#include "core/Batch.h"
#include "core/Compiler.h"
#include "device/Device.h"
#include "obs/Json.h"
#include "obs/Report.h"
#include "synth/Synth.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace reticle {
namespace bench {

/// One toolchain run reduced to the quantities the figures plot.
struct RunResult {
  bool Ok = false;
  std::string Error;
  double CompileMs = 0.0;
  double CriticalNs = 0.0;
  double FmaxMhz = 0.0;
  unsigned Luts = 0;
  unsigned Dsps = 0;
  unsigned Ffs = 0;
};

inline RunResult runReticle(const ir::Function &Fn,
                            const device::Device &Dev) {
  core::CompileOptions Options;
  Options.Dev = Dev;
  RunResult Out;
  Result<core::CompileResult> R = core::compile(Fn, Options);
  if (!R) {
    Out.Error = R.error();
    return Out;
  }
  Out.Ok = true;
  Out.CompileMs = R.value().Times.TotalMs;
  Out.CriticalNs = R.value().Timing.CriticalPathNs;
  Out.FmaxMhz = R.value().Timing.FmaxMhz;
  Out.Luts = R.value().Util.Luts;
  Out.Dsps = R.value().Util.Dsps;
  Out.Ffs = R.value().Util.Ffs;
  return Out;
}

/// All of a figure's Reticle data points compiled as one batch: the
/// per-point results (from the sequential pass, so the figures stay
/// deterministic) plus the wall-clock of the same batch on one worker and
/// on the full pool.
struct BatchRun {
  std::vector<RunResult> Results;
  double SequentialMs = 0.0;
  double ParallelMs = 0.0;
  unsigned Jobs = 1;
};

inline RunResult toRunResult(const core::BatchItem &Item) {
  RunResult Out;
  if (!Item.ok()) {
    Out.Error = Item.Outcome ? Item.Outcome->error()
                             : std::string("not compiled");
    return Out;
  }
  const core::CompileResult &R = Item.Outcome->value();
  Out.Ok = true;
  Out.CompileMs = R.Times.TotalMs;
  Out.CriticalNs = R.Timing.CriticalPathNs;
  Out.FmaxMhz = R.Timing.FmaxMhz;
  Out.Luts = R.Util.Luts;
  Out.Dsps = R.Util.Dsps;
  Out.Ffs = R.Util.Ffs;
  return Out;
}

/// Compiles every (name, function) data point through core::compileBatch,
/// one CompileSession per point. The batch runs twice — once on a single
/// worker and once on the full pool — so the figure's series can record
/// the parallel speedup alongside the per-point numbers.
inline BatchRun
runReticleBatch(const std::vector<std::pair<std::string, ir::Function>> &Points,
                const device::Device &Dev) {
  std::vector<core::BatchInput> Inputs;
  Inputs.reserve(Points.size());
  for (const auto &[Name, Fn] : Points)
    Inputs.push_back({Name, Fn.str()});

  core::BatchOptions Options;
  Options.Options.Dev = Dev;
  using Clock = std::chrono::steady_clock;
  auto ElapsedMs = [](Clock::time_point Begin) {
    return std::chrono::duration<double, std::milli>(Clock::now() - Begin)
        .count();
  };

  BatchRun Out;
  Options.Jobs = 1;
  Clock::time_point SeqBegin = Clock::now();
  std::vector<core::BatchItem> SeqItems = core::compileBatch(Inputs, Options);
  Out.SequentialMs = ElapsedMs(SeqBegin);

  Options.Jobs = 0; // full pool
  Out.Jobs = core::batchJobCount(Options, Inputs.size());
  Clock::time_point ParBegin = Clock::now();
  std::vector<core::BatchItem> ParItems = core::compileBatch(Inputs, Options);
  Out.ParallelMs = ElapsedMs(ParBegin);
  (void)ParItems; // artifacts are byte-identical to the sequential run's

  Out.Results.reserve(SeqItems.size());
  for (const core::BatchItem &Item : SeqItems)
    Out.Results.push_back(toRunResult(Item));
  return Out;
}

inline RunResult runBaseline(const ir::Function &Fn, synth::Mode Mode,
                             const device::Device &Dev) {
  synth::SynthOptions Options;
  Options.SynthMode = Mode;
  Options.Dev = Dev;
  RunResult Out;
  Result<synth::SynthResult> R = synth::synthesize(Fn, Options);
  if (!R) {
    Out.Error = R.error();
    return Out;
  }
  Out.Ok = true;
  Out.CompileMs = R.value().TotalMs;
  Out.CriticalNs = R.value().Timing.CriticalPathNs;
  Out.FmaxMhz = R.value().Timing.FmaxMhz;
  Out.Luts = R.value().Luts;
  Out.Dsps = R.value().Dsps;
  Out.Ffs = R.value().Ffs;
  return Out;
}

/// Prints the standard four-panel comparison row for one size.
inline void printPanelHeader(const char *Bench) {
  std::printf("%-8s %14s %14s | %12s %12s | %8s %8s %8s | %6s %6s %6s\n",
              "size", "compspd(base)", "compspd(hint)", "runspd(base)",
              "runspd(hint)", "lut.base", "lut.hint", "lut.ret",
              "dsp.bas", "dsp.hnt", "dsp.ret");
  (void)Bench;
}

inline void printPanelRow(const std::string &Size, const RunResult &Base,
                          const RunResult &Hint, const RunResult &Ret) {
  std::printf(
      "%-8s %14.1f %14.1f | %12.2f %12.2f | %8u %8u %8u | %6u %6u %6u\n",
      Size.c_str(), Base.CompileMs / Ret.CompileMs,
      Hint.CompileMs / Ret.CompileMs, Base.CriticalNs / Ret.CriticalNs,
      Hint.CriticalNs / Ret.CriticalNs, Base.Luts, Hint.Luts, Ret.Luts,
      Base.Dsps, Hint.Dsps, Ret.Dsps);
}

/// Collects the series a figure binary prints and dumps it as
/// `BENCH_<figure>.json` ("reticle-bench-v1") in the working directory,
/// so plots regenerate from machine-readable data instead of scraped
/// stdout. EXPERIMENTS.md documents the schema alongside the figures.
class SeriesReport {
public:
  SeriesReport(std::string Figure, std::string Title)
      : Figure(std::move(Figure)), Title(std::move(Title)) {}

  void add(const std::string &Size, const std::string &Toolchain,
           const RunResult &R) {
    obs::Json Row = obs::Json::object();
    Row.set("size", Size);
    Row.set("toolchain", Toolchain);
    Row.set("ok", R.Ok);
    if (!R.Ok) {
      Row.set("error", R.Error);
    } else {
      Row.set("compile_ms", R.CompileMs);
      Row.set("critical_ns", R.CriticalNs);
      Row.set("fmax_mhz", R.FmaxMhz);
      Row.set("luts", R.Luts);
      Row.set("dsps", R.Dsps);
      Row.set("ffs", R.Ffs);
    }
    Rows.push(std::move(Row));
  }

  /// Convenience for ablation-style rows taken straight off a pipeline
  /// compile rather than a RunResult.
  void addCompile(const std::string &Size, const std::string &Toolchain,
                  const core::CompileResult &R) {
    RunResult Run;
    Run.Ok = true;
    Run.CompileMs = R.Times.TotalMs;
    Run.CriticalNs = R.Timing.CriticalPathNs;
    Run.FmaxMhz = R.Timing.FmaxMhz;
    Run.Luts = R.Util.Luts;
    Run.Dsps = R.Util.Dsps;
    Run.Ffs = R.Util.Ffs;
    add(Size, Toolchain, Run);
  }

  /// Records the batch harness timings (see runReticleBatch) so the
  /// series carries the parallel-vs-sequential comparison.
  void setBatch(const BatchRun &Batch) {
    obs::Json B = obs::Json::object();
    B.set("sequential_ms", Batch.SequentialMs);
    B.set("parallel_ms", Batch.ParallelMs);
    B.set("jobs", static_cast<uint64_t>(Batch.Jobs));
    BatchTiming = std::move(B);
    HasBatch = true;
  }

  /// Writes `BENCH_<figure>.json`; warns (without failing the figure's
  /// shape checks) when the file cannot be written.
  bool write() {
    obs::Json Doc = obs::Json::object();
    Doc.set("schema", "reticle-bench-v1");
    Doc.set("figure", Figure);
    Doc.set("title", Title);
    Doc.set("series", Rows);
    if (HasBatch)
      Doc.set("batch", BatchTiming);
    std::string Path = "BENCH_" + Figure + ".json";
    if (Status S = obs::writeJsonFile(Doc, Path); !S) {
      std::fprintf(stderr, "warning: %s\n", S.error().c_str());
      return false;
    }
    std::printf("\nwrote %s\n", Path.c_str());
    return true;
  }

private:
  std::string Figure, Title;
  obs::Json Rows = obs::Json::array();
  obs::Json BatchTiming = obs::Json::object();
  bool HasBatch = false;
};

/// Prints the raw per-toolchain detail line (compile time, fmax).
inline void printDetail(const std::string &Size, const char *Lang,
                        const RunResult &R) {
  if (!R.Ok) {
    std::printf("  %-8s %-8s FAILED: %s\n", Size.c_str(), Lang,
                R.Error.c_str());
    return;
  }
  std::printf("  %-8s %-8s compile %9.1f ms   critical %6.2f ns   "
              "fmax %7.1f MHz   luts %6u   dsps %4u   ffs %6u\n",
              Size.c_str(), Lang, R.CompileMs, R.CriticalNs, R.FmaxMhz,
              R.Luts, R.Dsps, R.Ffs);
}

} // namespace bench
} // namespace reticle

#endif // RETICLE_BENCH_BENCHUTIL_H
