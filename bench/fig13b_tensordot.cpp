//===- bench/fig13b_tensordot.cpp - Figure 13b regeneration --------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 13b (tensordot): five systolic dot-product rows over
/// tensors of length {3, 9, 18, 36}.
///
/// Expected shape (paper): Reticle compiles 10-100x faster; hint applies
/// the same cascade optimization as Reticle, so their run-times match,
/// and both beat base (whose chains ride general routing); all three use
/// the same DSP counts (mults always infer DSPs).
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "frontend/Benchmarks.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace reticle;

int main() {
  device::Device Dev = device::Device::xczu3eg();
  std::printf("Figure 13b: tensordot (5 rows) on %s\n\n",
              Dev.name().c_str());
  bench::printPanelHeader("tensordot");

  std::vector<unsigned> Sizes = {3, 9, 18, 36};
  std::vector<bench::RunResult> Bases, Hints, Rets;
  bench::SeriesReport Report("fig13b_tensordot", "Figure 13b: tensordot");

  std::vector<std::pair<std::string, ir::Function>> Points;
  for (unsigned K : Sizes)
    Points.emplace_back("tensordot_5x" + std::to_string(K),
                        frontend::makeTensorDot(K));
  bench::BatchRun Batch = bench::runReticleBatch(Points, Dev);
  Report.setBatch(Batch);

  for (size_t I = 0; I < Sizes.size(); ++I) {
    unsigned K = Sizes[I];
    const ir::Function &Fn = Points[I].second;
    bench::RunResult Base = bench::runBaseline(Fn, synth::Mode::Base, Dev);
    bench::RunResult Hint = bench::runBaseline(Fn, synth::Mode::Hint, Dev);
    const bench::RunResult &Ret = Batch.Results[I];
    std::string Size = "5x" + std::to_string(K);
    Report.add(Size, "base", Base);
    Report.add(Size, "hint", Hint);
    Report.add(Size, "reticle", Ret);
    if (!Base.Ok || !Hint.Ok || !Ret.Ok) {
      std::printf("5x%-6u FAILED: %s%s%s\n", K, Base.Error.c_str(),
                  Hint.Error.c_str(), Ret.Error.c_str());
      Report.write();
      return 1;
    }
    bench::printPanelRow(Size, Base, Hint, Ret);
    Bases.push_back(Base);
    Hints.push_back(Hint);
    Rets.push_back(Ret);
  }
  Report.write();
  std::printf("\nBatch (%zu reticle compiles): sequential %.1f ms, "
              "parallel %.1f ms on %u jobs\n",
              Points.size(), Batch.SequentialMs, Batch.ParallelMs,
              Batch.Jobs);
  std::printf("\nPer-toolchain detail:\n");
  for (size_t I = 0; I < Sizes.size(); ++I) {
    std::string Size = "5x" + std::to_string(Sizes[I]);
    bench::printDetail(Size, "base", Bases[I]);
    bench::printDetail(Size, "hint", Hints[I]);
    bench::printDetail(Size, "reticle", Rets[I]);
  }

  std::printf("\nShape checks (paper Figure 13b):\n");
  bool CompileFaster = true, SameDsps = true, HintMatchesReticle = true,
       BothBeatBase = true;
  for (size_t I = 0; I < Sizes.size(); ++I) {
    CompileFaster &= Rets[I].CompileMs < Bases[I].CompileMs &&
                     Rets[I].CompileMs < Hints[I].CompileMs;
    SameDsps &= Bases[I].Dsps == Rets[I].Dsps &&
                Hints[I].Dsps == Rets[I].Dsps;
    HintMatchesReticle &=
        std::abs(Hints[I].CriticalNs - Rets[I].CriticalNs) /
            Rets[I].CriticalNs <
        0.35;
    BothBeatBase &= Bases[I].CriticalNs >= Hints[I].CriticalNs - 1e-9 &&
                    Bases[I].CriticalNs >= Rets[I].CriticalNs - 1e-9;
  }
  std::printf("  reticle compiles faster everywhere: %s\n",
              CompileFaster ? "yes" : "NO");
  std::printf("  all toolchains use equal DSP counts: %s\n",
              SameDsps ? "yes" : "NO");
  std::printf("  hint (cascaded) run-time tracks reticle: %s\n",
              HintMatchesReticle ? "yes" : "NO");
  std::printf("  base (no cascades) is never faster: %s\n",
              BothBeatBase ? "yes" : "NO");
  return (CompileFaster && SameDsps && HintMatchesReticle && BothBeatBase)
             ? 0
             : 1;
}
