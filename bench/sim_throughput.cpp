//===- bench/sim_throughput.cpp - Simulation engine throughput -----------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Measures the cycles/second of the two simulation engines — the
/// reference interpreter (Section 6.2) and the gate-level netlist
/// simulator — bare, with a waveform sink attached, and with the capture
/// replayed into per-bit toggle-coverage bins, so the cost of full
/// per-cycle observability is a tracked number rather than folklore.
/// Writes `BENCH_sim.json` ("reticle-bench-v1") next to the binary.
///
//===----------------------------------------------------------------------===//

#include "codegen/NetlistSim.h"
#include "core/Compiler.h"
#include "interp/Interp.h"
#include "interp/Wave.h"
#include "ir/Parser.h"
#include "obs/Coverage.h"
#include "obs/Json.h"
#include "obs/Report.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace reticle;
using interp::Trace;
using interp::Value;

namespace {

const char *MacSource = R"(
  def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
    t0:i8 = mul(a, b) @??;
    t1:i8 = add(t0, c) @??;
    y:i8 = reg[0](t1, en) @??;
  }
)";

/// A deterministic input trace: a linear-congruential walk over the i8
/// range, so every run measures identical work.
Trace makeTrace(const ir::Function &Fn, size_t Cycles) {
  Trace T;
  uint64_t State = 0x2545F4914F6CDD1DULL;
  auto Next = [&State] {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int64_t>((State >> 33) % 256) - 128;
  };
  for (size_t C = 0; C < Cycles; ++C) {
    interp::Step &S = T.appendStep();
    for (const ir::Port &P : Fn.inputs()) {
      if (P.Ty.isBool()) {
        S[P.Name] = Value::makeBool(Next() & 1);
        continue;
      }
      std::vector<int64_t> Lanes;
      for (unsigned L = 0; L < P.Ty.lanes(); ++L)
        Lanes.push_back(Next());
      S[P.Name] = Value::fromLanes(P.Ty, std::move(Lanes));
    }
  }
  return T;
}

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main() {
  Result<ir::Function> Fn = ir::parseFunction(MacSource);
  if (!Fn) {
    std::fprintf(stderr, "parse failed: %s\n", Fn.error().c_str());
    return 1;
  }
  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  Result<core::CompileResult> Compiled = core::compile(Fn.value(), Options);
  if (!Compiled) {
    std::fprintf(stderr, "compile failed: %s\n", Compiled.error().c_str());
    return 1;
  }

  const size_t Cycles = 20000;
  Trace In = makeTrace(Fn.value(), Cycles);
  std::printf("Simulation throughput: mac on small, %zu cycles\n\n", Cycles);
  std::printf("  %-8s %-8s %10s %14s\n", "engine", "mode", "ms",
              "cycles/sec");

  obs::Json Rows = obs::Json::array();
  bool AllOk = true;
  // Modes: bare engine, wave capture attached, and capture replayed into
  // toggle-coverage bins (the full --run --coverage path).
  auto Measure = [&](const char *Engine, const char *Mode) {
    bool WithWave = std::string(Mode) != "none";
    bool WithCoverage = std::string(Mode) == "coverage";
    sim::WaveCapture Cap;
    sim::WaveSink *Sink = WithWave ? &Cap : nullptr;
    auto Start = std::chrono::steady_clock::now();
    Result<Trace> Out =
        std::string(Engine) == "interp"
            ? interp::interpret(Fn.value(), In, Sink,
                                obs::defaultContext())
            : codegen::simulate(Compiled.value().Verilog, In, Sink,
                                obs::defaultContext());
    obs::Coverage Cov;
    uint64_t ToggleBins = 0;
    if (Out && WithCoverage) {
      sim::ToggleCoverageSink Toggles(Cov);
      if (Status S = sim::replay({{&Cap, Engine}}, Toggles); !S) {
        std::printf("  %-8s %-8s replay FAILED: %s\n", Engine, Mode,
                    S.error().c_str());
        AllOk = false;
      }
      obs::CoverageSnapshot Snap = Cov.snapshot();
      if (auto It = Snap.find("sim.toggle"); It != Snap.end())
        ToggleBins = It->second.size();
    }
    double Ms = msSince(Start);
    obs::Json Row = obs::Json::object();
    Row.set("engine", Engine);
    Row.set("mode", Mode);
    Row.set("ok", Out.ok());
    if (!Out) {
      Row.set("error", Out.error());
      std::printf("  %-8s %-8s FAILED: %s\n", Engine, Mode,
                  Out.error().c_str());
      AllOk = false;
    } else {
      double PerSec = Ms > 0.0 ? 1000.0 * Cycles / Ms : 0.0;
      Row.set("cycles", static_cast<uint64_t>(Cycles));
      Row.set("ms", Ms);
      Row.set("cycles_per_sec", PerSec);
      if (WithCoverage)
        Row.set("toggle_bins", ToggleBins);
      std::printf("  %-8s %-8s %10.1f %14.0f\n", Engine, Mode, Ms, PerSec);
    }
    Rows.push(std::move(Row));
  };

  for (const char *Engine : {"interp", "netlist"})
    for (const char *Mode : {"none", "wave", "coverage"})
      Measure(Engine, Mode);

  obs::Json Doc = obs::Json::object();
  Doc.set("schema", "reticle-bench-v1");
  Doc.set("figure", "sim");
  Doc.set("title", "Simulation engine throughput (mac, 20k cycles)");
  Doc.set("series", std::move(Rows));
  if (Status S = obs::writeJsonFile(Doc, "BENCH_sim.json"); !S) {
    std::fprintf(stderr, "warning: %s\n", S.error().c_str());
    return AllOk ? 0 : 1;
  }
  std::printf("\nwrote BENCH_sim.json\n");
  return AllOk ? 0 : 1;
}
