//===- bench/sim_throughput.cpp - Simulation engine throughput -----------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Measures the cycles/second of the four simulation engines — the
/// tree-walking reference interpreter (Section 6.2) and gate-level
/// netlist simulator, plus the compiled-bytecode VM lowered from each
/// source (vm-ir, vm-netlist) — bare, with a waveform sink attached, and
/// with the capture replayed into per-bit toggle-coverage bins, so the
/// cost of full per-cycle observability is a tracked number rather than
/// folklore. Each VM row carries `speedup_vs_tree`, its throughput
/// relative to the same-mode tree engine it replaces (programs are
/// compiled once, outside the timed region). The VM engines additionally
/// run a `profiled` mode — the per-op execution-profile variant of
/// sim::execute — whose row carries `overhead_vs_none` (its wall time
/// over the bare run's) and the profile's attribution fraction, so the
/// cost of source-attributed profiling is tracked the same way. Writes
/// `BENCH_sim.json` ("reticle-bench-v1") next to the binary.
///
//===----------------------------------------------------------------------===//

#include "codegen/NetlistSim.h"
#include "core/Compiler.h"
#include "interp/Interp.h"
#include "interp/Wave.h"
#include "ir/Parser.h"
#include "obs/Coverage.h"
#include "obs/Json.h"
#include "obs/Report.h"
#include "sim/Compile.h"
#include "sim/Vm.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <string>

using namespace reticle;
using interp::Trace;
using interp::Value;

namespace {

const char *MacSource = R"(
  def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
    t0:i8 = mul(a, b) @??;
    t1:i8 = add(t0, c) @??;
    y:i8 = reg[0](t1, en) @??;
  }
)";

/// A deterministic input trace: a linear-congruential walk over the i8
/// range, so every run measures identical work.
Trace makeTrace(const ir::Function &Fn, size_t Cycles) {
  Trace T;
  uint64_t State = 0x2545F4914F6CDD1DULL;
  auto Next = [&State] {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int64_t>((State >> 33) % 256) - 128;
  };
  for (size_t C = 0; C < Cycles; ++C) {
    interp::Step &S = T.appendStep();
    for (const ir::Port &P : Fn.inputs()) {
      if (P.Ty.isBool()) {
        S[P.Name] = Value::makeBool(Next() & 1);
        continue;
      }
      std::vector<int64_t> Lanes;
      for (unsigned L = 0; L < P.Ty.lanes(); ++L)
        Lanes.push_back(Next());
      S[P.Name] = Value::fromLanes(P.Ty, std::move(Lanes));
    }
  }
  return T;
}

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main() {
  Result<ir::Function> Fn = ir::parseFunction(MacSource);
  if (!Fn) {
    std::fprintf(stderr, "parse failed: %s\n", Fn.error().c_str());
    return 1;
  }
  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  Result<core::CompileResult> Compiled = core::compile(Fn.value(), Options);
  if (!Compiled) {
    std::fprintf(stderr, "compile failed: %s\n", Compiled.error().c_str());
    return 1;
  }

  // Lower both compiled-simulation programs once, outside every timed
  // region: compile-once is the VM's contract, so the timer measures
  // execution alone (the tree engines have no equivalent setup to skip).
  Result<sim::Program> IrProg = sim::compile(Fn.value());
  if (!IrProg) {
    std::fprintf(stderr, "vm-ir lowering failed: %s\n",
                 IrProg.error().c_str());
    return 1;
  }
  Result<sim::Program> NetProg = sim::compile(Compiled.value().Verilog);
  if (!NetProg) {
    std::fprintf(stderr, "vm-netlist lowering failed: %s\n",
                 NetProg.error().c_str());
    return 1;
  }

  const size_t Cycles = 20000;
  Trace In = makeTrace(Fn.value(), Cycles);
  std::printf("Simulation throughput: mac on small, %zu cycles\n\n", Cycles);
  std::printf("  %-10s %-8s %10s %14s %10s\n", "engine", "mode", "ms",
              "cycles/sec", "speedup");

  obs::Json Rows = obs::Json::array();
  bool AllOk = true;
  // Tree-engine wall time per mode, so each VM row can report its
  // speedup against the engine it replaces. Note the live tree engines
  // are themselves faster than before the compiled-simulation refactor:
  // they now ride the same flat-step trace and shared cycle skeleton,
  // so `speedup_vs_tree` compares against an already-improved baseline.
  std::map<std::string, double> TreeMs;
  // Pre-refactor throughput of the tree engines on this benchmark
  // (mac, 20k cycles, bare mode), measured before the shared cycle
  // skeleton and flat-step trace landed. Each bare-mode VM row also
  // reports `speedup_vs_seed` against the engine it replaces as it
  // performed when the VM work started.
  const double SeedInterpPerSec = 1493654.0;
  const double SeedNetlistPerSec = 149123.0;
  // Bare-mode wall time per VM engine, so each profiled row can report
  // the overhead its profiling adds.
  std::map<std::string, double> NoneMs;
  // Modes: bare engine, wave capture attached, and capture replayed into
  // toggle-coverage bins (the full --run --coverage path).
  // Best of Reps runs per row: the machine is shared, so a single
  // measurement carries multi-x noise; the minimum is the stable
  // estimate of the work actually required.
  const int Reps = 5;
  auto Measure = [&](const char *Engine, const char *Mode) {
    std::string Eng(Engine);
    bool WithProfile = std::string(Mode) == "profiled";
    bool WithWave = !WithProfile && std::string(Mode) != "none";
    bool WithCoverage = std::string(Mode) == "coverage";
    double Ms = 0.0;
    Result<Trace> Out = fail<Trace>("not run");
    uint64_t ToggleBins = 0;
    sim::VmProfile Prof;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      sim::WaveCapture Cap;
      sim::WaveSink *Sink = WithWave ? &Cap : nullptr;
      // Drop the previous rep's trace before the timer starts; tearing
      // down 20k steps is not part of the engine's work.
      Out = fail<Trace>("not run");
      auto Start = std::chrono::steady_clock::now();
      Out = Eng == "interp"
                ? interp::interpret(Fn.value(), In, Sink,
                                    obs::defaultContext())
            : Eng == "netlist"
                ? codegen::simulate(Compiled.value().Verilog, In, Sink,
                                    obs::defaultContext())
            : WithProfile
                ? sim::execute(Eng == "vm-ir" ? IrProg.value()
                                              : NetProg.value(),
                               In, Prof, Sink, obs::defaultContext())
                : sim::execute(Eng == "vm-ir" ? IrProg.value()
                                              : NetProg.value(),
                               In, Sink, obs::defaultContext());
      obs::Coverage Cov;
      if (Out && WithCoverage) {
        sim::ToggleCoverageSink Toggles(Cov);
        if (Status S = sim::replay({{&Cap, Engine}}, Toggles); !S) {
          std::printf("  %-8s %-8s replay FAILED: %s\n", Engine, Mode,
                      S.error().c_str());
          AllOk = false;
        }
        obs::CoverageSnapshot Snap = Cov.snapshot();
        if (auto It = Snap.find("sim.toggle"); It != Snap.end())
          ToggleBins = It->second.size();
      }
      double RepMs = msSince(Start);
      if (Rep == 0 || RepMs < Ms)
        Ms = RepMs;
      if (!Out)
        break;
    }
    obs::Json Row = obs::Json::object();
    Row.set("engine", Engine);
    Row.set("mode", Mode);
    Row.set("ok", Out.ok());
    if (!Out) {
      Row.set("error", Out.error());
      std::printf("  %-8s %-8s FAILED: %s\n", Engine, Mode,
                  Out.error().c_str());
      AllOk = false;
    } else {
      double PerSec = Ms > 0.0 ? 1000.0 * Cycles / Ms : 0.0;
      Row.set("cycles", static_cast<uint64_t>(Cycles));
      Row.set("ms", Ms);
      Row.set("cycles_per_sec", PerSec);
      if (WithCoverage)
        Row.set("toggle_bins", ToggleBins);
      if (Eng == "interp" || Eng == "netlist") {
        TreeMs[Eng + "/" + Mode] = Ms;
        std::printf("  %-10s %-8s %10.1f %14.0f %10s\n", Engine, Mode, Ms,
                    PerSec, "-");
      } else if (WithProfile) {
        // The profiled row reports the cost of profiling, not a speedup:
        // its wall time over the same engine's bare run.
        double Overhead =
            Ms > 0.0 && NoneMs.count(Eng) ? Ms / NoneMs[Eng] : 0.0;
        Row.set("overhead_vs_none", Overhead);
        Row.set("ops", Prof.TotalOps);
        Row.set("ops_attributed", Prof.AttributedOps);
        Row.set("attributed_frac",
                Prof.TotalOps == 0
                    ? 0.0
                    : static_cast<double>(Prof.AttributedOps) /
                          static_cast<double>(Prof.TotalOps));
        std::printf("  %-10s %-8s %10.1f %14.0f %9.2fx\n", Engine, Mode, Ms,
                    PerSec, Overhead);
      } else {
        if (!WithWave)
          NoneMs[Eng] = Ms;
        std::string TreeKey =
            (Eng == "vm-ir" ? std::string("interp") : std::string("netlist")) +
            "/" + Mode;
        double Speedup =
            Ms > 0.0 && TreeMs.count(TreeKey) ? TreeMs[TreeKey] / Ms : 0.0;
        Row.set("speedup_vs_tree", Speedup);
        if (!WithWave) {
          double SeedPerSec =
              Eng == "vm-ir" ? SeedInterpPerSec : SeedNetlistPerSec;
          Row.set("speedup_vs_seed", PerSec / SeedPerSec);
        }
        std::printf("  %-10s %-8s %10.1f %14.0f %9.1fx\n", Engine, Mode, Ms,
                    PerSec, Speedup);
      }
    }
    Rows.push(std::move(Row));
  };

  for (const char *Engine : {"interp", "netlist", "vm-ir", "vm-netlist"})
    for (const char *Mode : {"none", "wave", "coverage"})
      Measure(Engine, Mode);
  // Only the VM engines have a profiled executor; the tree engines have
  // no bytecode sites to attribute.
  for (const char *Engine : {"vm-ir", "vm-netlist"})
    Measure(Engine, "profiled");

  obs::Json Doc = obs::Json::object();
  Doc.set("schema", "reticle-bench-v1");
  Doc.set("figure", "sim");
  Doc.set("title", "Simulation engine throughput (mac, 20k cycles)");
  obs::Json Baseline = obs::Json::object();
  Baseline.set("note", "pre-refactor tree-engine throughput (bare mode), "
                       "the reference point for speedup_vs_seed");
  Baseline.set("interp_cycles_per_sec", SeedInterpPerSec);
  Baseline.set("netlist_cycles_per_sec", SeedNetlistPerSec);
  Doc.set("baseline", std::move(Baseline));
  Doc.set("series", std::move(Rows));
  if (Status S = obs::writeJsonFile(Doc, "BENCH_sim.json"); !S) {
    std::fprintf(stderr, "warning: %s\n", S.error().c_str());
    return AllOk ? 0 : 1;
  }
  std::printf("\nwrote BENCH_sim.json\n");
  return AllOk ? 0 : 1;
}
