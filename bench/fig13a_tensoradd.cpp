//===- bench/fig13a_tensoradd.cpp - Figure 13a regeneration --------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 13a (tensoradd): compiler speedup, run-time speedup,
/// and LUT/DSP utilization for element-wise tensor addition at sizes
/// {64, 128, 256, 512}, comparing behavioral base, behavioral with DSP
/// hints, and Reticle.
///
/// Expected shape (paper): Reticle compiles 10-100x faster; base never
/// uses DSPs (run-time speedup > 1 everywhere); hint uses scalar DSPs and
/// is slightly faster than Reticle while DSPs last, then exhausts them at
/// size 512 and silently falls back to LUTs, where Reticle's vectorized
/// mapping is ~3x faster.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "frontend/Benchmarks.h"

#include <cstdio>
#include <vector>

using namespace reticle;

int main() {
  device::Device Dev = device::Device::xczu3eg();
  std::printf("Figure 13a: tensoradd on %s\n\n", Dev.name().c_str());
  bench::printPanelHeader("tensoradd");

  std::vector<unsigned> Sizes = {64, 128, 256, 512};
  std::vector<bench::RunResult> Bases, Hints, Rets;
  bench::SeriesReport Report("fig13a_tensoradd", "Figure 13a: tensoradd");

  // All Reticle data points compile as one session-per-point batch.
  std::vector<std::pair<std::string, ir::Function>> Points;
  for (unsigned N : Sizes)
    Points.emplace_back("tensoradd_" + std::to_string(N),
                        frontend::makeTensorAdd(N));
  bench::BatchRun Batch = bench::runReticleBatch(Points, Dev);
  Report.setBatch(Batch);

  for (size_t I = 0; I < Sizes.size(); ++I) {
    unsigned N = Sizes[I];
    const ir::Function &Fn = Points[I].second;
    bench::RunResult Base = bench::runBaseline(Fn, synth::Mode::Base, Dev);
    bench::RunResult Hint = bench::runBaseline(Fn, synth::Mode::Hint, Dev);
    const bench::RunResult &Ret = Batch.Results[I];
    Report.add(std::to_string(N), "base", Base);
    Report.add(std::to_string(N), "hint", Hint);
    Report.add(std::to_string(N), "reticle", Ret);
    if (!Base.Ok || !Hint.Ok || !Ret.Ok) {
      std::printf("%-8u FAILED: %s%s%s\n", N, Base.Error.c_str(),
                  Hint.Error.c_str(), Ret.Error.c_str());
      Report.write();
      return 1;
    }
    bench::printPanelRow(std::to_string(N), Base, Hint, Ret);
    Bases.push_back(Base);
    Hints.push_back(Hint);
    Rets.push_back(Ret);
  }
  Report.write();
  std::printf("\nBatch (%zu reticle compiles): sequential %.1f ms, "
              "parallel %.1f ms on %u jobs\n",
              Points.size(), Batch.SequentialMs, Batch.ParallelMs,
              Batch.Jobs);
  std::printf("\nPer-toolchain detail:\n");
  for (size_t I = 0; I < Sizes.size(); ++I) {
    std::string Size = std::to_string(Sizes[I]);
    bench::printDetail(Size, "base", Bases[I]);
    bench::printDetail(Size, "hint", Hints[I]);
    bench::printDetail(Size, "reticle", Rets[I]);
  }

  std::printf("\nShape checks (paper Figure 13a):\n");
  bool CompileFaster = true, BaseNoDsp = true;
  for (size_t I = 0; I < Sizes.size(); ++I) {
    CompileFaster &= Rets[I].CompileMs < Bases[I].CompileMs &&
                     Rets[I].CompileMs < Hints[I].CompileMs;
    BaseNoDsp &= Bases[I].Dsps == 0;
  }
  bool HintExhausts = Hints.back().Dsps == Dev.numDsps() &&
                      Hints.back().Luts > Hints.front().Luts;
  bool ReticleWinsAt512 =
      Hints.back().CriticalNs / Rets.back().CriticalNs > 1.5 &&
      Bases.back().CriticalNs / Rets.back().CriticalNs > 1.5;
  bool BaseSlower = Bases[0].CriticalNs > Rets[0].CriticalNs;
  std::printf("  reticle compiles faster everywhere: %s\n",
              CompileFaster ? "yes" : "NO");
  std::printf("  base never uses DSPs: %s\n", BaseNoDsp ? "yes" : "NO");
  std::printf("  hint exhausts DSPs at 512 and spills to LUTs: %s\n",
              HintExhausts ? "yes" : "NO");
  std::printf("  reticle clearly faster at 512 (both baselines): %s\n",
              ReticleWinsAt512 ? "yes" : "NO");
  std::printf("  base slower than reticle at every size: %s\n",
              BaseSlower ? "yes" : "NO");
  return (CompileFaster && BaseNoDsp && HintExhausts && ReticleWinsAt512 &&
          BaseSlower)
             ? 0
             : 1;
}
