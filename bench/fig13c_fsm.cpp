//===- bench/fig13c_fsm.cpp - Figure 13c regeneration --------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 13c (fsm): a coroutine finite state machine over
/// {3, 5, 7, 9} states. Control logic has no DSP form, so everything maps
/// to LUTs.
///
/// Expected shape (paper): this is Reticle's pathological case — the
/// baseline's bit-level logic synthesis optimizes the mux/compare network
/// across instruction boundaries, so the baseline's run-time is as good
/// or better (run-time speedup <= 1) and its LUT count is lower, while
/// Reticle still compiles much faster and uses no DSPs anywhere.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "frontend/Benchmarks.h"

#include <cstdio>
#include <vector>

using namespace reticle;

int main() {
  device::Device Dev = device::Device::xczu3eg();
  std::printf("Figure 13c: fsm on %s\n\n", Dev.name().c_str());
  bench::printPanelHeader("fsm");

  std::vector<unsigned> Sizes = {3, 5, 7, 9};
  std::vector<bench::RunResult> Bases, Hints, Rets;
  bench::SeriesReport Report("fig13c_fsm", "Figure 13c: fsm");

  std::vector<std::pair<std::string, ir::Function>> Points;
  for (unsigned S : Sizes)
    Points.emplace_back("fsm_" + std::to_string(S), frontend::makeFsm(S));
  bench::BatchRun Batch = bench::runReticleBatch(Points, Dev);
  Report.setBatch(Batch);

  for (size_t I = 0; I < Sizes.size(); ++I) {
    unsigned S = Sizes[I];
    const ir::Function &Fn = Points[I].second;
    bench::RunResult Base = bench::runBaseline(Fn, synth::Mode::Base, Dev);
    bench::RunResult Hint = bench::runBaseline(Fn, synth::Mode::Hint, Dev);
    const bench::RunResult &Ret = Batch.Results[I];
    Report.add(std::to_string(S), "base", Base);
    Report.add(std::to_string(S), "hint", Hint);
    Report.add(std::to_string(S), "reticle", Ret);
    if (!Base.Ok || !Hint.Ok || !Ret.Ok) {
      std::printf("%-8u FAILED: %s%s%s\n", S, Base.Error.c_str(),
                  Hint.Error.c_str(), Ret.Error.c_str());
      Report.write();
      return 1;
    }
    bench::printPanelRow(std::to_string(S), Base, Hint, Ret);
    Bases.push_back(Base);
    Hints.push_back(Hint);
    Rets.push_back(Ret);
  }
  Report.write();
  std::printf("\nBatch (%zu reticle compiles): sequential %.1f ms, "
              "parallel %.1f ms on %u jobs\n",
              Points.size(), Batch.SequentialMs, Batch.ParallelMs,
              Batch.Jobs);
  std::printf("\nPer-toolchain detail:\n");
  for (size_t I = 0; I < Sizes.size(); ++I) {
    std::string Size = std::to_string(Sizes[I]);
    bench::printDetail(Size, "base", Bases[I]);
    bench::printDetail(Size, "hint", Hints[I]);
    bench::printDetail(Size, "reticle", Rets[I]);
  }

  std::printf("\nShape checks (paper Figure 13c):\n");
  bool NoDsps = true, CompileFaster = true, BaselineAtLeastAsFast = true;
  for (size_t I = 0; I < Sizes.size(); ++I) {
    NoDsps &= Bases[I].Dsps == 0 && Hints[I].Dsps == 0 && Rets[I].Dsps == 0;
    CompileFaster &= Rets[I].CompileMs < Bases[I].CompileMs;
    BaselineAtLeastAsFast &=
        Bases[I].CriticalNs <= Rets[I].CriticalNs * 1.05;
  }
  std::printf("  no toolchain uses DSPs (control logic): %s\n",
              NoDsps ? "yes" : "NO");
  std::printf("  reticle still compiles faster: %s\n",
              CompileFaster ? "yes" : "NO");
  std::printf("  baseline logic synthesis wins on run-time (<= 1): %s\n",
              BaselineAtLeastAsFast ? "yes" : "NO");
  return (NoDsps && CompileFaster && BaselineAtLeastAsFast) ? 0 : 1;
}
