file(REMOVE_RECURSE
  "CMakeFiles/reticle_aig.dir/Aig.cpp.o"
  "CMakeFiles/reticle_aig.dir/Aig.cpp.o.d"
  "CMakeFiles/reticle_aig.dir/Mapper.cpp.o"
  "CMakeFiles/reticle_aig.dir/Mapper.cpp.o.d"
  "libreticle_aig.a"
  "libreticle_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
