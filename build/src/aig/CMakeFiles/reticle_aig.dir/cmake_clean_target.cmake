file(REMOVE_RECURSE
  "libreticle_aig.a"
)
