# Empty dependencies file for reticle_aig.
# This may be replaced when dependencies are built.
