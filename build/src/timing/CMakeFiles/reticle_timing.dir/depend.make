# Empty dependencies file for reticle_timing.
# This may be replaced when dependencies are built.
