file(REMOVE_RECURSE
  "libreticle_timing.a"
)
