file(REMOVE_RECURSE
  "CMakeFiles/reticle_timing.dir/Timing.cpp.o"
  "CMakeFiles/reticle_timing.dir/Timing.cpp.o.d"
  "libreticle_timing.a"
  "libreticle_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
