file(REMOVE_RECURSE
  "CMakeFiles/reticle_device.dir/Device.cpp.o"
  "CMakeFiles/reticle_device.dir/Device.cpp.o.d"
  "libreticle_device.a"
  "libreticle_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
