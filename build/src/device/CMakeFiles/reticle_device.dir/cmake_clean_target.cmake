file(REMOVE_RECURSE
  "libreticle_device.a"
)
