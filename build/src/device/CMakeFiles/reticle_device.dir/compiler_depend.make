# Empty compiler generated dependencies file for reticle_device.
# This may be replaced when dependencies are built.
