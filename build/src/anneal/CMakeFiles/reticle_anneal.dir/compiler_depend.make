# Empty compiler generated dependencies file for reticle_anneal.
# This may be replaced when dependencies are built.
