file(REMOVE_RECURSE
  "CMakeFiles/reticle_anneal.dir/Anneal.cpp.o"
  "CMakeFiles/reticle_anneal.dir/Anneal.cpp.o.d"
  "libreticle_anneal.a"
  "libreticle_anneal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_anneal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
