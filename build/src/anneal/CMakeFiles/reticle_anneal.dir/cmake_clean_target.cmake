file(REMOVE_RECURSE
  "libreticle_anneal.a"
)
