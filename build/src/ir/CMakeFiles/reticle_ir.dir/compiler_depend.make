# Empty compiler generated dependencies file for reticle_ir.
# This may be replaced when dependencies are built.
