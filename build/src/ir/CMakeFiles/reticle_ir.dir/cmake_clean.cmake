file(REMOVE_RECURSE
  "CMakeFiles/reticle_ir.dir/Function.cpp.o"
  "CMakeFiles/reticle_ir.dir/Function.cpp.o.d"
  "CMakeFiles/reticle_ir.dir/Instr.cpp.o"
  "CMakeFiles/reticle_ir.dir/Instr.cpp.o.d"
  "CMakeFiles/reticle_ir.dir/Ops.cpp.o"
  "CMakeFiles/reticle_ir.dir/Ops.cpp.o.d"
  "CMakeFiles/reticle_ir.dir/ParseCommon.cpp.o"
  "CMakeFiles/reticle_ir.dir/ParseCommon.cpp.o.d"
  "CMakeFiles/reticle_ir.dir/Parser.cpp.o"
  "CMakeFiles/reticle_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/reticle_ir.dir/Type.cpp.o"
  "CMakeFiles/reticle_ir.dir/Type.cpp.o.d"
  "CMakeFiles/reticle_ir.dir/Verifier.cpp.o"
  "CMakeFiles/reticle_ir.dir/Verifier.cpp.o.d"
  "libreticle_ir.a"
  "libreticle_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
