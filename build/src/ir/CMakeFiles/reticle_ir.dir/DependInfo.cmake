
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Function.cpp" "src/ir/CMakeFiles/reticle_ir.dir/Function.cpp.o" "gcc" "src/ir/CMakeFiles/reticle_ir.dir/Function.cpp.o.d"
  "/root/repo/src/ir/Instr.cpp" "src/ir/CMakeFiles/reticle_ir.dir/Instr.cpp.o" "gcc" "src/ir/CMakeFiles/reticle_ir.dir/Instr.cpp.o.d"
  "/root/repo/src/ir/Ops.cpp" "src/ir/CMakeFiles/reticle_ir.dir/Ops.cpp.o" "gcc" "src/ir/CMakeFiles/reticle_ir.dir/Ops.cpp.o.d"
  "/root/repo/src/ir/ParseCommon.cpp" "src/ir/CMakeFiles/reticle_ir.dir/ParseCommon.cpp.o" "gcc" "src/ir/CMakeFiles/reticle_ir.dir/ParseCommon.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/ir/CMakeFiles/reticle_ir.dir/Parser.cpp.o" "gcc" "src/ir/CMakeFiles/reticle_ir.dir/Parser.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/ir/CMakeFiles/reticle_ir.dir/Type.cpp.o" "gcc" "src/ir/CMakeFiles/reticle_ir.dir/Type.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/reticle_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/reticle_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/reticle_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
