file(REMOVE_RECURSE
  "libreticle_ir.a"
)
