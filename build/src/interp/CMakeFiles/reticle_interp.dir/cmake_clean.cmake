file(REMOVE_RECURSE
  "CMakeFiles/reticle_interp.dir/Eval.cpp.o"
  "CMakeFiles/reticle_interp.dir/Eval.cpp.o.d"
  "CMakeFiles/reticle_interp.dir/Interp.cpp.o"
  "CMakeFiles/reticle_interp.dir/Interp.cpp.o.d"
  "CMakeFiles/reticle_interp.dir/Value.cpp.o"
  "CMakeFiles/reticle_interp.dir/Value.cpp.o.d"
  "libreticle_interp.a"
  "libreticle_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
