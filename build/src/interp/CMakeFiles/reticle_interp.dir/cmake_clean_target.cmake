file(REMOVE_RECURSE
  "libreticle_interp.a"
)
