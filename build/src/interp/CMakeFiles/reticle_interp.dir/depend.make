# Empty dependencies file for reticle_interp.
# This may be replaced when dependencies are built.
