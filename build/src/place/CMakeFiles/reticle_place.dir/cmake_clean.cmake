file(REMOVE_RECURSE
  "CMakeFiles/reticle_place.dir/Place.cpp.o"
  "CMakeFiles/reticle_place.dir/Place.cpp.o.d"
  "libreticle_place.a"
  "libreticle_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
