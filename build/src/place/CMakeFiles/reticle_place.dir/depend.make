# Empty dependencies file for reticle_place.
# This may be replaced when dependencies are built.
