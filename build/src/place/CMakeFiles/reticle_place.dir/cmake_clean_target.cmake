file(REMOVE_RECURSE
  "libreticle_place.a"
)
