file(REMOVE_RECURSE
  "libreticle_rasm.a"
)
