
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rasm/Asm.cpp" "src/rasm/CMakeFiles/reticle_rasm.dir/Asm.cpp.o" "gcc" "src/rasm/CMakeFiles/reticle_rasm.dir/Asm.cpp.o.d"
  "/root/repo/src/rasm/AsmParser.cpp" "src/rasm/CMakeFiles/reticle_rasm.dir/AsmParser.cpp.o" "gcc" "src/rasm/CMakeFiles/reticle_rasm.dir/AsmParser.cpp.o.d"
  "/root/repo/src/rasm/ToIr.cpp" "src/rasm/CMakeFiles/reticle_rasm.dir/ToIr.cpp.o" "gcc" "src/rasm/CMakeFiles/reticle_rasm.dir/ToIr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/reticle_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/tdl/CMakeFiles/reticle_tdl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/reticle_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
