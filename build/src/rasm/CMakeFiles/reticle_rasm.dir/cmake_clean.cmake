file(REMOVE_RECURSE
  "CMakeFiles/reticle_rasm.dir/Asm.cpp.o"
  "CMakeFiles/reticle_rasm.dir/Asm.cpp.o.d"
  "CMakeFiles/reticle_rasm.dir/AsmParser.cpp.o"
  "CMakeFiles/reticle_rasm.dir/AsmParser.cpp.o.d"
  "CMakeFiles/reticle_rasm.dir/ToIr.cpp.o"
  "CMakeFiles/reticle_rasm.dir/ToIr.cpp.o.d"
  "libreticle_rasm.a"
  "libreticle_rasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_rasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
