# Empty dependencies file for reticle_rasm.
# This may be replaced when dependencies are built.
