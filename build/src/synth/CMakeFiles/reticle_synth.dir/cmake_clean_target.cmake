file(REMOVE_RECURSE
  "libreticle_synth.a"
)
