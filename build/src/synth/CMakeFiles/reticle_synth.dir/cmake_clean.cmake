file(REMOVE_RECURSE
  "CMakeFiles/reticle_synth.dir/Synth.cpp.o"
  "CMakeFiles/reticle_synth.dir/Synth.cpp.o.d"
  "libreticle_synth.a"
  "libreticle_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
