# Empty dependencies file for reticle_synth.
# This may be replaced when dependencies are built.
