# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("interp")
subdirs("device")
subdirs("tdl")
subdirs("rasm")
subdirs("sat")
subdirs("isel")
subdirs("place")
subdirs("verilog")
subdirs("codegen")
subdirs("timing")
subdirs("core")
subdirs("aig")
subdirs("anneal")
subdirs("synth")
subdirs("frontend")
subdirs("opt")
