file(REMOVE_RECURSE
  "CMakeFiles/reticle_codegen.dir/Codegen.cpp.o"
  "CMakeFiles/reticle_codegen.dir/Codegen.cpp.o.d"
  "CMakeFiles/reticle_codegen.dir/NetlistSim.cpp.o"
  "CMakeFiles/reticle_codegen.dir/NetlistSim.cpp.o.d"
  "CMakeFiles/reticle_codegen.dir/Testbench.cpp.o"
  "CMakeFiles/reticle_codegen.dir/Testbench.cpp.o.d"
  "libreticle_codegen.a"
  "libreticle_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
