file(REMOVE_RECURSE
  "libreticle_codegen.a"
)
