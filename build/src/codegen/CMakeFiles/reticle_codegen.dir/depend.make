# Empty dependencies file for reticle_codegen.
# This may be replaced when dependencies are built.
