file(REMOVE_RECURSE
  "CMakeFiles/reticle_frontend.dir/Benchmarks.cpp.o"
  "CMakeFiles/reticle_frontend.dir/Benchmarks.cpp.o.d"
  "libreticle_frontend.a"
  "libreticle_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
