# Empty dependencies file for reticle_frontend.
# This may be replaced when dependencies are built.
