file(REMOVE_RECURSE
  "libreticle_frontend.a"
)
