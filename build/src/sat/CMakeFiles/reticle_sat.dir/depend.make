# Empty dependencies file for reticle_sat.
# This may be replaced when dependencies are built.
