file(REMOVE_RECURSE
  "CMakeFiles/reticle_sat.dir/Dimacs.cpp.o"
  "CMakeFiles/reticle_sat.dir/Dimacs.cpp.o.d"
  "CMakeFiles/reticle_sat.dir/Solver.cpp.o"
  "CMakeFiles/reticle_sat.dir/Solver.cpp.o.d"
  "libreticle_sat.a"
  "libreticle_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
