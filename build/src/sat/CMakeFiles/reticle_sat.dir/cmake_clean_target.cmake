file(REMOVE_RECURSE
  "libreticle_sat.a"
)
