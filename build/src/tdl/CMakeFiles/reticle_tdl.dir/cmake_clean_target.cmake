file(REMOVE_RECURSE
  "libreticle_tdl.a"
)
