
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tdl/Target.cpp" "src/tdl/CMakeFiles/reticle_tdl.dir/Target.cpp.o" "gcc" "src/tdl/CMakeFiles/reticle_tdl.dir/Target.cpp.o.d"
  "/root/repo/src/tdl/TdlParser.cpp" "src/tdl/CMakeFiles/reticle_tdl.dir/TdlParser.cpp.o" "gcc" "src/tdl/CMakeFiles/reticle_tdl.dir/TdlParser.cpp.o.d"
  "/root/repo/src/tdl/Ultrascale.cpp" "src/tdl/CMakeFiles/reticle_tdl.dir/Ultrascale.cpp.o" "gcc" "src/tdl/CMakeFiles/reticle_tdl.dir/Ultrascale.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/reticle_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/reticle_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
