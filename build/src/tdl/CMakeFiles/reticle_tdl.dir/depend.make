# Empty dependencies file for reticle_tdl.
# This may be replaced when dependencies are built.
