file(REMOVE_RECURSE
  "CMakeFiles/reticle_tdl.dir/Target.cpp.o"
  "CMakeFiles/reticle_tdl.dir/Target.cpp.o.d"
  "CMakeFiles/reticle_tdl.dir/TdlParser.cpp.o"
  "CMakeFiles/reticle_tdl.dir/TdlParser.cpp.o.d"
  "CMakeFiles/reticle_tdl.dir/Ultrascale.cpp.o"
  "CMakeFiles/reticle_tdl.dir/Ultrascale.cpp.o.d"
  "libreticle_tdl.a"
  "libreticle_tdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_tdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
