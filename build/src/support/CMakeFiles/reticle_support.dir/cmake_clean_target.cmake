file(REMOVE_RECURSE
  "libreticle_support.a"
)
