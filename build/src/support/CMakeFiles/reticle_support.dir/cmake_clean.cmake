file(REMOVE_RECURSE
  "CMakeFiles/reticle_support.dir/Lexer.cpp.o"
  "CMakeFiles/reticle_support.dir/Lexer.cpp.o.d"
  "libreticle_support.a"
  "libreticle_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
