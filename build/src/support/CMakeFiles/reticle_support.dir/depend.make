# Empty dependencies file for reticle_support.
# This may be replaced when dependencies are built.
