file(REMOVE_RECURSE
  "CMakeFiles/reticle_verilog.dir/Ast.cpp.o"
  "CMakeFiles/reticle_verilog.dir/Ast.cpp.o.d"
  "libreticle_verilog.a"
  "libreticle_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
