# Empty compiler generated dependencies file for reticle_verilog.
# This may be replaced when dependencies are built.
