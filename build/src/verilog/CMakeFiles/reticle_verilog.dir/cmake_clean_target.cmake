file(REMOVE_RECURSE
  "libreticle_verilog.a"
)
