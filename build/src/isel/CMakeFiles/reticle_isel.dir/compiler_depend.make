# Empty compiler generated dependencies file for reticle_isel.
# This may be replaced when dependencies are built.
