file(REMOVE_RECURSE
  "CMakeFiles/reticle_isel.dir/Cascade.cpp.o"
  "CMakeFiles/reticle_isel.dir/Cascade.cpp.o.d"
  "CMakeFiles/reticle_isel.dir/Dfg.cpp.o"
  "CMakeFiles/reticle_isel.dir/Dfg.cpp.o.d"
  "CMakeFiles/reticle_isel.dir/Select.cpp.o"
  "CMakeFiles/reticle_isel.dir/Select.cpp.o.d"
  "libreticle_isel.a"
  "libreticle_isel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_isel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
