file(REMOVE_RECURSE
  "libreticle_isel.a"
)
