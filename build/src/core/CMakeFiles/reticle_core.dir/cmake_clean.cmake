file(REMOVE_RECURSE
  "CMakeFiles/reticle_core.dir/Compiler.cpp.o"
  "CMakeFiles/reticle_core.dir/Compiler.cpp.o.d"
  "libreticle_core.a"
  "libreticle_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
