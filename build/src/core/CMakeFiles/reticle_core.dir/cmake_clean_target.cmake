file(REMOVE_RECURSE
  "libreticle_core.a"
)
