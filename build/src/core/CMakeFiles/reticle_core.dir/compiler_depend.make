# Empty compiler generated dependencies file for reticle_core.
# This may be replaced when dependencies are built.
