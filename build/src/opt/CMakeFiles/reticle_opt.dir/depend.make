# Empty dependencies file for reticle_opt.
# This may be replaced when dependencies are built.
