file(REMOVE_RECURSE
  "libreticle_opt.a"
)
