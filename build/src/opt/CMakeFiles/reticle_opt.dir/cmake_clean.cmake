file(REMOVE_RECURSE
  "CMakeFiles/reticle_opt.dir/Transforms.cpp.o"
  "CMakeFiles/reticle_opt.dir/Transforms.cpp.o.d"
  "libreticle_opt.a"
  "libreticle_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticle_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
