# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(reticlec_verilog "/root/repo/build/tools/reticlec" "--device=small" "--stats" "/root/repo/tools/../examples/programs/mac.ret")
set_tests_properties(reticlec_verilog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(reticlec_asm "/root/repo/build/tools/reticlec" "--device=small" "--emit=asm" "/root/repo/tools/../examples/programs/dot3.ret")
set_tests_properties(reticlec_asm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(reticlec_optimized "/root/repo/build/tools/reticlec" "--device=small" "-O" "--emit=placed" "/root/repo/tools/../examples/programs/scalar_adds.ret")
set_tests_properties(reticlec_optimized PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(reticlec_behavioral "/root/repo/build/tools/reticlec" "--emit=behavioral" "/root/repo/tools/../examples/programs/mac.ret")
set_tests_properties(reticlec_behavioral PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(reticlec_dump_target "/root/repo/build/tools/reticlec" "--dump-target")
set_tests_properties(reticlec_dump_target PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(reticlec_rejects_bad_input "/root/repo/build/tools/reticlec" "/root/repo/tools/../examples/programs/nonexistent.ret")
set_tests_properties(reticlec_rejects_bad_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
