# Empty compiler generated dependencies file for reticlec.
# This may be replaced when dependencies are built.
