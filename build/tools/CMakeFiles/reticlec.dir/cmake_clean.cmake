file(REMOVE_RECURSE
  "CMakeFiles/reticlec.dir/reticlec.cpp.o"
  "CMakeFiles/reticlec.dir/reticlec.cpp.o.d"
  "reticlec"
  "reticlec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reticlec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
