# Empty dependencies file for reticlec.
# This may be replaced when dependencies are built.
