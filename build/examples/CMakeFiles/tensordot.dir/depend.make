# Empty dependencies file for tensordot.
# This may be replaced when dependencies are built.
