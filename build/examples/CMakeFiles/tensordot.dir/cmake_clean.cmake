file(REMOVE_RECURSE
  "CMakeFiles/tensordot.dir/tensordot.cpp.o"
  "CMakeFiles/tensordot.dir/tensordot.cpp.o.d"
  "tensordot"
  "tensordot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensordot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
