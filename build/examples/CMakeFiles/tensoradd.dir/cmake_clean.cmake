file(REMOVE_RECURSE
  "CMakeFiles/tensoradd.dir/tensoradd.cpp.o"
  "CMakeFiles/tensoradd.dir/tensoradd.cpp.o.d"
  "tensoradd"
  "tensoradd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensoradd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
