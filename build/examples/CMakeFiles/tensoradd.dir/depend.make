# Empty dependencies file for tensoradd.
# This may be replaced when dependencies are built.
