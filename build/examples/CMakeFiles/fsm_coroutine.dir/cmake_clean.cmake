file(REMOVE_RECURSE
  "CMakeFiles/fsm_coroutine.dir/fsm_coroutine.cpp.o"
  "CMakeFiles/fsm_coroutine.dir/fsm_coroutine.cpp.o.d"
  "fsm_coroutine"
  "fsm_coroutine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_coroutine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
