# Empty compiler generated dependencies file for fsm_coroutine.
# This may be replaced when dependencies are built.
