file(REMOVE_RECURSE
  "CMakeFiles/isel_test.dir/isel_test.cpp.o"
  "CMakeFiles/isel_test.dir/isel_test.cpp.o.d"
  "isel_test"
  "isel_test.pdb"
  "isel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
