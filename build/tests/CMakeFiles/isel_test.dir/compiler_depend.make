# Empty compiler generated dependencies file for isel_test.
# This may be replaced when dependencies are built.
