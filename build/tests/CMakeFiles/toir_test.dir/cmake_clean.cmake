file(REMOVE_RECURSE
  "CMakeFiles/toir_test.dir/toir_test.cpp.o"
  "CMakeFiles/toir_test.dir/toir_test.cpp.o.d"
  "toir_test"
  "toir_test.pdb"
  "toir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
