# Empty compiler generated dependencies file for toir_test.
# This may be replaced when dependencies are built.
