# Empty compiler generated dependencies file for netlistsim_test.
# This may be replaced when dependencies are built.
