file(REMOVE_RECURSE
  "CMakeFiles/netlistsim_test.dir/netlistsim_test.cpp.o"
  "CMakeFiles/netlistsim_test.dir/netlistsim_test.cpp.o.d"
  "netlistsim_test"
  "netlistsim_test.pdb"
  "netlistsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlistsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
