
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/testbench_test.cpp" "tests/CMakeFiles/testbench_test.dir/testbench_test.cpp.o" "gcc" "tests/CMakeFiles/testbench_test.dir/testbench_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/reticle_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/reticle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/reticle_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/verilog/CMakeFiles/reticle_verilog.dir/DependInfo.cmake"
  "/root/repo/build/src/isel/CMakeFiles/reticle_isel.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/reticle_place.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/reticle_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/reticle_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/rasm/CMakeFiles/reticle_rasm.dir/DependInfo.cmake"
  "/root/repo/build/src/tdl/CMakeFiles/reticle_tdl.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/reticle_device.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/reticle_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/reticle_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
