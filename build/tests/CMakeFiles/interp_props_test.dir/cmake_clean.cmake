file(REMOVE_RECURSE
  "CMakeFiles/interp_props_test.dir/interp_props_test.cpp.o"
  "CMakeFiles/interp_props_test.dir/interp_props_test.cpp.o.d"
  "interp_props_test"
  "interp_props_test.pdb"
  "interp_props_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
