# Empty dependencies file for interp_props_test.
# This may be replaced when dependencies are built.
