# Empty dependencies file for fig13c_fsm.
# This may be replaced when dependencies are built.
