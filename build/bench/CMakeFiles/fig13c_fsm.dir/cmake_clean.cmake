file(REMOVE_RECURSE
  "CMakeFiles/fig13c_fsm.dir/fig13c_fsm.cpp.o"
  "CMakeFiles/fig13c_fsm.dir/fig13c_fsm.cpp.o.d"
  "fig13c_fsm"
  "fig13c_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13c_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
