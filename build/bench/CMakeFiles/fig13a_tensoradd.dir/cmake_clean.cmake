file(REMOVE_RECURSE
  "CMakeFiles/fig13a_tensoradd.dir/fig13a_tensoradd.cpp.o"
  "CMakeFiles/fig13a_tensoradd.dir/fig13a_tensoradd.cpp.o.d"
  "fig13a_tensoradd"
  "fig13a_tensoradd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_tensoradd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
