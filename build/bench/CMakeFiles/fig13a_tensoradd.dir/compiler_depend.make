# Empty compiler generated dependencies file for fig13a_tensoradd.
# This may be replaced when dependencies are built.
