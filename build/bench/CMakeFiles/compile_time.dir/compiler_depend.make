# Empty compiler generated dependencies file for compile_time.
# This may be replaced when dependencies are built.
