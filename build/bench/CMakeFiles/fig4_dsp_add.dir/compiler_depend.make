# Empty compiler generated dependencies file for fig4_dsp_add.
# This may be replaced when dependencies are built.
