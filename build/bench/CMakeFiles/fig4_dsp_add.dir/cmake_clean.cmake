file(REMOVE_RECURSE
  "CMakeFiles/fig4_dsp_add.dir/fig4_dsp_add.cpp.o"
  "CMakeFiles/fig4_dsp_add.dir/fig4_dsp_add.cpp.o.d"
  "fig4_dsp_add"
  "fig4_dsp_add.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dsp_add.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
