file(REMOVE_RECURSE
  "CMakeFiles/fig13b_tensordot.dir/fig13b_tensordot.cpp.o"
  "CMakeFiles/fig13b_tensordot.dir/fig13b_tensordot.cpp.o.d"
  "fig13b_tensordot"
  "fig13b_tensordot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_tensordot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
