# Empty dependencies file for fig13b_tensordot.
# This may be replaced when dependencies are built.
