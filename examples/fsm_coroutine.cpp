//===- examples/fsm_coroutine.cpp - Control-oriented programs ------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// The paper's control-flow workload (Section 7.1): a coroutine
/// implemented as a hardware finite state machine. Conditional branching
/// needs multiplexing, which only LUT fabric provides, so the whole
/// design maps to LUTs — Reticle's pathological case, and still a
/// supported one. The example interprets the machine against a stimulus,
/// compiles it, and shows the resulting LUT-only utilization.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "frontend/Benchmarks.h"
#include "interp/Interp.h"

#include <cstdio>

using namespace reticle;

int main() {
  constexpr unsigned States = 5;
  ir::Function Fn = frontend::makeFsm(States);
  std::printf("== coroutine state machine over %u states ==\n%s\n", States,
              Fn.str().c_str());

  // Drive the machine: strong inputs advance it, weak inputs hold it.
  interp::Trace Input;
  int64_t Stimulus[] = {100, 100, 0, 0, 100, 100, 100, 100};
  for (int64_t In : Stimulus) {
    interp::Step &S = Input.appendStep();
    S["in"] = interp::Value::splat(ir::Type::makeInt(8), In);
    S["en"] = interp::Value::makeBool(true);
  }
  Result<interp::Trace> Out = interp::interpret(Fn, Input);
  if (!Out) {
    std::printf("interpreter error: %s\n", Out.error().c_str());
    return 1;
  }
  std::printf("stimulus -> state:\n");
  for (size_t Cycle = 0; Cycle < Out.value().size(); ++Cycle)
    std::printf("  cycle %zu: in=%3lld  state=%s\n", Cycle,
                static_cast<long long>(Stimulus[Cycle]),
                Out.value().get(Cycle, "state")->str().c_str());

  Result<core::CompileResult> R = core::compile(Fn);
  if (!R) {
    std::printf("compile error: %s\n", R.error().c_str());
    return 1;
  }
  std::printf("\ncompiled: %u LUTs, %u FFs, %u DSPs (control logic "
              "cannot use DSPs)\n",
              R.value().Util.Luts, R.value().Util.Ffs, R.value().Util.Dsps);
  std::printf("critical path %.2f ns (%.1f MHz), compile %.1f ms\n",
              R.value().Timing.CriticalPathNs, R.value().Timing.FmaxMhz,
              R.value().Times.TotalMs);

  // Every compute instruction landed on a LUT slice.
  for (const rasm::AsmInstr &I : R.value().Placed.body())
    if (!I.isWire() && I.loc().Prim != ir::Resource::Lut) {
      std::printf("unexpected non-LUT instruction: %s\n", I.str().c_str());
      return 1;
    }
  return 0;
}
