//===- examples/tensordot.cpp - Fused operations and DSP cascading -------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// The paper's systolic dot-product workload (Sections 5.2 and 7): chains
/// of multiply-accumulate stages. Instruction selection fuses each
/// mul+add+reg into one DSP; the layout pass rewrites the chain to
/// cascade variants (`muladdreg_co` -> `_cio`* -> `_ci`) constrained to
/// vertically adjacent slots (`(x, y)`, `(x, y+1)`, ...), and placement
/// solves those constraints so code generation can use the dedicated
/// cascade wires.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "frontend/Benchmarks.h"

#include <cstdio>

using namespace reticle;

int main() {
  // One row keeps the printout readable; the benchmark uses five.
  ir::Function Fn = frontend::makeTensorDot(4, /*Rows=*/1);

  Result<core::CompileResult> With = core::compile(Fn);
  if (!With) {
    std::printf("compile error: %s\n", With.error().c_str());
    return 1;
  }
  std::printf("== assembly after selection and cascading ==\n%s\n",
              With.value().Asm.str().c_str());
  std::printf("== placed: the chain owns consecutive rows of one column "
              "==\n%s\n",
              With.value().Placed.str().c_str());

  core::CompileOptions NoCascade;
  NoCascade.Cascade = false;
  Result<core::CompileResult> Without = core::compile(Fn, NoCascade);
  if (!Without) {
    std::printf("compile error: %s\n", Without.error().c_str());
    return 1;
  }
  std::printf("critical path with cascades:    %.2f ns (%.1f MHz)\n",
              With.value().Timing.CriticalPathNs,
              With.value().Timing.FmaxMhz);
  std::printf("critical path without cascades: %.2f ns (%.1f MHz)\n",
              Without.value().Timing.CriticalPathNs,
              Without.value().Timing.FmaxMhz);
  std::printf("\ncascade stats: %u chain(s), %u instruction(s) rewritten\n",
              With.value().CascadeStats.Chains,
              With.value().CascadeStats.Rewritten);

  // The generated DSP primitives wire PCOUT to PCIN directly.
  std::string V = With.value().Verilog.str();
  bool UsesCascadePorts = V.find("PCOUT") != std::string::npos &&
                          V.find("PCIN") != std::string::npos;
  std::printf("structural Verilog uses PCOUT/PCIN cascade ports: %s\n",
              UsesCascadePorts ? "yes" : "no");
  return 0;
}
