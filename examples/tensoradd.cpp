//===- examples/tensoradd.cpp - Vectorization and hard resource binding --------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// The paper's motivating workload (Sections 2 and 7): element-wise
/// addition over a one-dimensional tensor. Reticle's vector types pack
/// four 8-bit lanes into one DSP's SIMD mode and its annotations are hard
/// constraints; a behavioral flow scalarizes the loop and treats the DSP
/// hint as a suggestion, which works until the device runs out of DSPs
/// and then silently degrades.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "frontend/Benchmarks.h"
#include "synth/Synth.h"

#include <cstdio>

using namespace reticle;

int main() {
  constexpr unsigned Elements = 128;
  ir::Function Fn = frontend::makeTensorAdd(Elements);
  std::printf("tensoradd over %u i8 elements (%u SIMD groups)\n\n",
              Elements, Elements / 4);

  // Reticle: vector adds bound to DSPs, fused with their pipeline
  // registers, four lanes per DSP.
  Result<core::CompileResult> Ret = core::compile(Fn);
  if (!Ret) {
    std::printf("reticle: %s\n", Ret.error().c_str());
    return 1;
  }
  std::printf("reticle:     %4u DSPs, %5u LUTs, critical %.2f ns, "
              "compile %7.1f ms\n",
              Ret.value().Util.Dsps, Ret.value().Util.Luts,
              Ret.value().Timing.CriticalPathNs, Ret.value().Times.TotalMs);

  // The behavioral baseline in both flavors.
  for (synth::Mode Mode : {synth::Mode::Base, synth::Mode::Hint}) {
    synth::SynthOptions Options;
    Options.SynthMode = Mode;
    Result<synth::SynthResult> R = synth::synthesize(Fn, Options);
    if (!R) {
      std::printf("baseline: %s\n", R.error().c_str());
      return 1;
    }
    std::printf("%-12s %4u DSPs, %5u LUTs, critical %.2f ns, "
                "compile %7.1f ms\n",
                Mode == synth::Mode::Base ? "behavioral:" : "with hints:",
                R.value().Dsps, R.value().Luts,
                R.value().Timing.CriticalPathNs, R.value().TotalMs);
  }

  // The behavioral Verilog a vendor tool would have consumed (Figure 3).
  std::printf("\nbehavioral Verilog for the first SIMD group "
              "(hint flavor):\n");
  ir::Function Small = frontend::makeTensorAdd(4);
  std::printf("%s", synth::emitBehavioral(Small, synth::Mode::Hint)
                        .str()
                        .c_str());
  return 0;
}
