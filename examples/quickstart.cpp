//===- examples/quickstart.cpp - Reticle in five minutes -----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// The smallest end-to-end tour: write an intermediate-language program as
/// text, check it with the interpreter, compile it through instruction
/// selection, placement, and code generation, and look at every
/// intermediate artifact on the way down (paper Figure 7).
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "interp/Interp.h"
#include "ir/Parser.h"

#include <cstdio>

using namespace reticle;

int main() {
  // A multiply-accumulate with a pipeline register (Figure 8 plus state).
  const char *Source = R"(
    def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )";
  Result<ir::Function> Fn = ir::parseFunction(Source);
  if (!Fn) {
    std::printf("parse error: %s\n", Fn.error().c_str());
    return 1;
  }
  std::printf("== intermediate program ==\n%s\n", Fn.value().str().c_str());

  // Debug the program with the interpreter before touching hardware
  // (Section 6.2): drive a*b+c = 3*4+5 for three cycles.
  interp::Trace Input;
  for (int Cycle = 0; Cycle < 3; ++Cycle) {
    interp::Step &S = Input.appendStep();
    S["a"] = interp::Value::splat(ir::Type::makeInt(8), 3);
    S["b"] = interp::Value::splat(ir::Type::makeInt(8), 4);
    S["c"] = interp::Value::splat(ir::Type::makeInt(8), 5);
    S["en"] = interp::Value::makeBool(true);
  }
  Result<interp::Trace> Out = interp::interpret(Fn.value(), Input);
  if (!Out) {
    std::printf("interpreter error: %s\n", Out.error().c_str());
    return 1;
  }
  std::printf("== interpreter trace (y per cycle) ==\n");
  for (size_t Cycle = 0; Cycle < Out.value().size(); ++Cycle)
    std::printf("  cycle %zu: y = %s\n", Cycle,
                Out.value().get(Cycle, "y")->str().c_str());

  // Compile for the paper's device. The mul+add+reg fuses into a single
  // DSP with its post-adder and pipeline register.
  Result<core::CompileResult> R = core::compile(Fn.value());
  if (!R) {
    std::printf("compile error: %s\n", R.error().c_str());
    return 1;
  }
  const core::CompileResult &C = R.value();
  std::printf("\n== selected assembly (family-specific) ==\n%s\n",
              C.Asm.str().c_str());
  std::printf("== placed assembly (device-specific) ==\n%s\n",
              C.Placed.str().c_str());
  std::printf("== structural Verilog with layout attributes ==\n%s\n",
              C.Verilog.str().c_str());
  std::printf("== statistics ==\n");
  std::printf("  DSPs %u, LUTs %u, FFs %u\n", C.Util.Dsps, C.Util.Luts,
              C.Util.Ffs);
  std::printf("  critical path %.2f ns (%.1f MHz)\n",
              C.Timing.CriticalPathNs, C.Timing.FmaxMhz);
  std::printf("  compile %.2f ms (select %.2f, place %.2f, codegen %.2f)\n",
              C.Times.TotalMs, C.Times.SelectMs, C.Times.PlaceMs, C.Times.CodegenMs);
  return 0;
}
