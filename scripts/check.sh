#!/bin/sh
# Tier-1 verification: configure, build, run the full test suite, then
# drive the compiler end to end and validate every machine-readable
# artifact it emits (stats, trace, remarks, snapshot manifest, batch
# summary) with json_check, including a remark_diff of two identical
# runs to pin down pipeline determinism (once for the default solver
# and once for the clause-sharing SAT portfolio, whose race must be a
# deterministic function of the formula), a coverage_diff of the
# merged example-program coverage against the checked-in golden
# (tests/goldens/coverage.json), and a profile_diff of two identical
# profiled VM runs to pin down hot-set determinism. RUN_BENCH=1
# additionally runs the microbenchmarks. After the primary build, two
# hardening builds run: one with the telemetry layer compiled out
# (-DRETICLE_NO_TELEMETRY=ON) and one under ThreadSanitizer exercising
# the concurrent batch-compile path, concurrent compiled-simulation
# VM runs, and the SAT portfolio's racing lane threads. Run from anywhere; builds into
# <repo>/build (plus build-notelem/ and build-tsan/ siblings).
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build="$repo/build"
jobs=$(nproc 2>/dev/null || echo 4)

echo "== configure + build =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j"$jobs"

echo "== ctest =="
(cd "$build" && ctest --output-on-failure -j"$jobs")

echo "== end-to-end artifact check =="
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

"$build/tools/reticlec" --device=small \
    --stats-json="$out/stats.json" \
    --trace="$out/trace.json" \
    --remarks-json="$out/remarks.jsonl" \
    --dump-after-all="$out/stages" \
    --floorplan="$out/plan.svg" \
    -o "$out/mac.v" \
    "$repo/examples/programs/mac.ret"

"$build/tools/json_check" --require=schema --require=program \
    --require=timings.total_ms --require=timings.parse_ms \
    --require=place.sat.decisions \
    --require=sat.solver_mode --require=sat.shrink_ms \
    --require=sat.incremental.probes --require=sat.incremental.encodes \
    --require=sat.incremental.reused_clauses \
    --require=sat.portfolio.rounds --require=sat.portfolio.exported \
    --require=utilization.luts "$out/stats.json"
"$build/tools/json_check" --require=traceEvents "$out/trace.json"
"$build/tools/json_check" --require=schema \
    --require=stages.parse.file --require=stages.opt.file \
    --require=stages.isel.file \
    --require=stages.cascade.file --require=stages.place.file \
    --require=stages.codegen.file "$out/stages/manifest.json"
# Remark contents exist only when telemetry is compiled in; the stream
# must be valid JSONL either way (empty counts as valid).
"$build/tools/json_check" --jsonl "$out/remarks.jsonl"
grep -q "</svg>" "$out/plan.svg"

echo "== remark determinism (remark_diff on two identical runs) =="
"$build/tools/reticlec" --device=small --emit=placed \
    --remarks-json="$out/remarks-b.jsonl" \
    --floorplan-timeline="$out/timeline.svg" \
    "$repo/examples/programs/mac.ret"
grep -q "</svg>" "$out/timeline.svg"
"$build/tools/reticlec" --device=small --emit=placed \
    --remarks-json="$out/remarks-a.jsonl" \
    "$repo/examples/programs/mac.ret"
"$build/tools/json_check" remark_diff \
    "$out/remarks-a.jsonl" "$out/remarks-b.jsonl"

echo "== remark ratchet (golden stream for mac.ret) =="
# The checked-in golden pins every remark the pipeline emits for mac.ret
# on the small device. Drift is a contract change: inspect the diff, and
# if intentional regenerate with
#   build/tools/reticlec --device=small --emit=placed \
#       --remarks-json=tests/goldens/mac/remarks.jsonl \
#       examples/programs/mac.ret
"$build/tools/json_check" remark_diff \
    "$repo/tests/goldens/mac/remarks.jsonl" "$out/remarks-a.jsonl"

echo "== portfolio determinism (remark_diff on two racing runs) =="
# Two clause-sharing portfolio races over a program with real SAT-backed
# shrink probes must emit byte-identical remark streams: the barrier
# rounds, lane-ordered exchange, and lowest-lane-earliest-round winner
# rule make the race a deterministic function of the formula, however
# the lane threads interleave. The stream must also attribute at least
# one probe to a winning lane.
"$build/tools/reticlec" --device=small --emit=placed \
    --sat-solver=portfolio --sat-threads=4 \
    --remarks-json="$out/portfolio-a.jsonl" \
    "$repo/tests/inputs/fsm_shrink.ret"
"$build/tools/reticlec" --device=small --emit=placed \
    --sat-solver=portfolio --sat-threads=4 \
    --remarks-json="$out/portfolio-b.jsonl" \
    "$repo/tests/inputs/fsm_shrink.ret"
"$build/tools/json_check" remark_diff \
    "$out/portfolio-a.jsonl" "$out/portfolio-b.jsonl"
grep -q '"lane"' "$out/portfolio-a.jsonl"

echo "== batch compile end to end =="
"$build/tools/reticlec" --device=small --jobs="$jobs" \
    --out-dir="$out/batch" \
    --stats-json="$out/batch/summary.json" \
    "$repo/examples/programs/mac.ret" \
    "$repo/examples/programs/dot3.ret" \
    "$repo/examples/programs/scalar_adds.ret"
"$build/tools/json_check" --batch-summary "$out/batch/summary.json"
for stem in mac dot3 scalar_adds; do
    test -s "$out/batch/$stem.v"
    "$build/tools/json_check" --require=schema \
        "$out/batch/$stem.stats.json"
done

echo "== wave_diff sweep (tree engines vs compiled VM on every example) =="
# The differential-simulation oracle: run every example program's input
# trace through all four engines (tree-walking interpreter and netlist
# simulator, plus the compiled-bytecode VM lowered from each source),
# emit reticle-wave-v1 streams, and require zero-divergence joins both
# between the tree engines and between each VM and the tree engine it
# replaces. A VCD streamed to stdout must reach its dump section.
for stem in mac dot3 scalar_adds; do
    for engine in interp netlist vm-ir vm-netlist; do
        "$build/tools/reticlec" --device=small \
            --run="$repo/examples/traces/$stem.trace.json" --sim="$engine" \
            --wave-json="$out/$stem.$engine.wave.jsonl" \
            "$repo/examples/programs/$stem.ret"
        "$build/tools/json_check" --jsonl --require=schema \
            "$out/$stem.$engine.wave.jsonl"
    done
    "$build/tools/json_check" wave_diff \
        "$out/$stem.interp.wave.jsonl" "$out/$stem.netlist.wave.jsonl"
    "$build/tools/json_check" wave_diff \
        "$out/$stem.vm-ir.wave.jsonl" "$out/$stem.interp.wave.jsonl"
    "$build/tools/json_check" wave_diff \
        "$out/$stem.vm-netlist.wave.jsonl" "$out/$stem.netlist.wave.jsonl"
done
"$build/tools/reticlec" --device=small \
    --run="$repo/examples/traces/mac.trace.json" --sim=both --vcd=- \
    "$repo/examples/programs/mac.ret" | grep -q '$enddefinitions'

echo "== coverage ratchet (merge over the example programs vs golden) =="
# Each program's standalone reticle-coverage-v1 doc, merged with
# coverage_merge, must not lose a single bin against the checked-in
# golden (tests/goldens/coverage.json). Gained bins pass — the ratchet
# only tightens. After an intentional coverage change regenerate with:
#   build/tools/json_check coverage_merge \
#       <mac,dot3,scalar_adds>.coverage.json > tests/goldens/coverage.json
for stem in mac dot3 scalar_adds; do
    "$build/tools/reticlec" --device=small \
        --coverage="$out/$stem.coverage.json" \
        --emit=asm -o /dev/null \
        "$repo/examples/programs/$stem.ret"
    "$build/tools/json_check" --require=schema --require=totals.hit \
        "$out/$stem.coverage.json"
done
"$build/tools/json_check" coverage_merge \
    "$out/mac.coverage.json" "$out/dot3.coverage.json" \
    "$out/scalar_adds.coverage.json" > "$out/merged.coverage.json"
for stem in mac dot3 scalar_adds; do
    "$build/tools/json_check" coverage_diff \
        "$out/$stem.coverage.json" "$out/merged.coverage.json"
done
"$build/tools/json_check" coverage_diff \
    "$repo/tests/goldens/coverage.json" "$out/merged.coverage.json"
# A --run adds dynamic toggle bins on top of the static spaces.
"$build/tools/reticlec" --device=small \
    --run="$repo/examples/traces/mac.trace.json" --sim=both \
    --coverage="$out/mac.run.coverage.json" \
    "$repo/examples/programs/mac.ret"
"$build/tools/json_check" --nonempty=spaces.sim.toggle.bins \
    "$out/mac.run.coverage.json"

echo "== sim-VM profile (reticle-profile-v1) + hot-set determinism =="
# Two identical profiled runs must agree on every hot instruction and
# every count — only the sampled wall times are machine-dependent, and
# profile_diff ignores those. The join is the determinism gate: a drift
# in the hot set means the lowering or the attribution table changed.
"$build/tools/reticlec" --device=small \
    --run="$repo/examples/traces/mac.trace.json" --sim=both \
    --profile-sim="$out/mac.profile-a.json" \
    "$repo/examples/programs/mac.ret"
"$build/tools/json_check" --require=schema --require=program \
    --require=cycles --require=ops.total --require=ops.attributed \
    --require=ops.attributed_frac --nonempty=hot_instructions \
    --nonempty=hot_signals "$out/mac.profile-a.json"
"$build/tools/reticlec" --device=small \
    --run="$repo/examples/traces/mac.trace.json" --sim=both \
    --profile-sim="$out/mac.profile-b.json" \
    "$repo/examples/programs/mac.ret"
"$build/tools/json_check" profile_diff \
    "$out/mac.profile-a.json" "$out/mac.profile-b.json"
# A profile streamed to stdout must carry the schema marker, and the
# flamegraph fold must reconstruct at least one nested compile stack.
"$build/tools/reticlec" --device=small \
    --run="$repo/examples/traces/mac.trace.json" --sim=vm-netlist \
    --profile-sim=- \
    "$repo/examples/programs/mac.ret" | grep -q "reticle-profile-v1"
"$build/tools/reticlec" --device=small --emit=placed \
    --profile-folded=- \
    "$repo/examples/programs/mac.ret" | grep -q "^compile;"

if [ "${RUN_BENCH:-0}" = "1" ]; then
    echo "== benches (RUN_BENCH=1) =="
    # Opt-in: the microbenchmarks are informative, not gating, so the
    # default run skips them. Any bench binary the build produced runs
    # once with its defaults; each writes its BENCH_*.json into $out.
    for bench in sim_throughput place_throughput fig4_dsp_add \
                 fig13a_tensoradd fig13b_tensordot fig13c_fsm \
                 compile_time ablation; do
        if [ -x "$build/bench/$bench" ]; then
            echo "-- bench/$bench"
            (cd "$out" && "$build/bench/$bench")
        fi
    done
    # The sim bench doc is a contract: schema, the seed baseline both
    # speedup_vs_seed numbers divide by, one cycles_per_sec per series
    # row (every engine/mode pair), and the profiled VM rows with their
    # overhead_vs_none cost figure.
    "$build/tools/json_check" --require=schema --require=figure \
        --require=baseline.interp_cycles_per_sec \
        --require=baseline.netlist_cycles_per_sec \
        --nonempty=series "$out/BENCH_sim.json"
    test "$(grep -c '"engine"' "$out/BENCH_sim.json")" = \
         "$(grep -c '"cycles_per_sec"' "$out/BENCH_sim.json")"
    grep -q '"profiled"' "$out/BENCH_sim.json"
    grep -q '"overhead_vs_none"' "$out/BENCH_sim.json"
    # The placement bench doc carries the per-mode series rows and the
    # scratch-vs-persistent speedup block the acceptance bar reads.
    "$build/tools/json_check" --require=schema --require=figure \
        --nonempty=series --nonempty=speedup "$out/BENCH_place.json"
    grep -q '"incremental_vs_scratch"' "$out/BENCH_place.json"
fi

echo "== telemetry-free build (-DRETICLE_NO_TELEMETRY=ON) =="
cmake -B "$repo/build-notelem" -S "$repo" -DRETICLE_NO_TELEMETRY=ON
cmake --build "$repo/build-notelem" -j"$jobs"
(cd "$repo/build-notelem" && ctest --output-on-failure -j"$jobs")
# The compiled-out build still runs the differential oracle but must
# reject the waveform writers as a usage error (exit 2).
"$repo/build-notelem/tools/reticlec" --device=small \
    --run="$repo/examples/traces/mac.trace.json" --sim=both \
    "$repo/examples/programs/mac.ret"
# The compiled-simulation VM is engine surface, not telemetry surface:
# single-engine VM runs and the bytecode disassembler must work with
# telemetry compiled out.
"$repo/build-notelem/tools/reticlec" --device=small \
    --run="$repo/examples/traces/mac.trace.json" --sim=vm-ir \
    "$repo/examples/programs/mac.ret"
"$repo/build-notelem/tools/reticlec" --device=small \
    --run="$repo/examples/traces/mac.trace.json" --sim=vm-netlist \
    --dump-sim-program=- \
    "$repo/examples/programs/mac.ret" | grep -q "reticle-sim-program-v1"
if "$repo/build-notelem/tools/reticlec" --device=small \
    --run="$repo/examples/traces/mac.trace.json" --vcd=- \
    "$repo/examples/programs/mac.ret" 2>/dev/null
then
    echo "error: --vcd accepted in a RETICLE_NO_TELEMETRY build" >&2
    exit 1
fi
# Coverage recording is telemetry surface too: --coverage must be a
# usage error (exit 2) while the same compile without it succeeds.
set +e
"$repo/build-notelem/tools/reticlec" --device=small --coverage=- \
    "$repo/examples/programs/mac.ret" >/dev/null 2>&1
coverage_rc=$?
set -e
if [ "$coverage_rc" -ne 2 ]; then
    echo "error: --coverage exited $coverage_rc (want 2) in a" \
         "RETICLE_NO_TELEMETRY build" >&2
    exit 1
fi
# So are both profile writers: the VM profile rides the telemetry
# counters and the flamegraph fold reads the tracing span buffer.
for flag in --profile-sim=- --profile-folded=-; do
    set +e
    "$repo/build-notelem/tools/reticlec" --device=small \
        --run="$repo/examples/traces/mac.trace.json" --sim=vm-ir \
        "$flag" "$repo/examples/programs/mac.ret" >/dev/null 2>&1
    profile_rc=$?
    set -e
    if [ "$profile_rc" -ne 2 ]; then
        echo "error: $flag exited $profile_rc (want 2) in a" \
             "RETICLE_NO_TELEMETRY build" >&2
        exit 1
    fi
done
"$repo/build-notelem/tools/reticlec" --device=small \
    "$repo/examples/programs/mac.ret" >/dev/null

echo "== ThreadSanitizer build: concurrent batch compile =="
cmake -B "$repo/build-tsan" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$repo/build-tsan" -j"$jobs" \
    --target batch_race_check sim_vm_race_check sat_portfolio_race_check \
    reticlec json_check
"$repo/build-tsan/tests/batch_race_check"
"$repo/build-tsan/tests/sim_vm_race_check"
"$repo/build-tsan/tests/sat_portfolio_race_check"
"$repo/build-tsan/tools/reticlec" --device=small --jobs=4 \
    --out-dir="$out/batch-tsan" \
    --stats-json="$out/batch-tsan/summary.json" \
    "$repo/examples/programs/mac.ret" \
    "$repo/examples/programs/dot3.ret" \
    "$repo/examples/programs/scalar_adds.ret"
"$repo/build-tsan/tools/json_check" --batch-summary \
    "$out/batch-tsan/summary.json"

echo "ok: build, tests, and all emitted artifacts check out"
