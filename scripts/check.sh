#!/bin/sh
# Tier-1 verification: configure, build, run the full test suite, then
# drive the compiler end to end and validate every machine-readable
# artifact it emits (stats, trace, remarks, snapshot manifest) with
# json_check. Run from anywhere; builds into <repo>/build.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build="$repo/build"
jobs=$(nproc 2>/dev/null || echo 4)

echo "== configure + build =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j"$jobs"

echo "== ctest =="
(cd "$build" && ctest --output-on-failure -j"$jobs")

echo "== end-to-end artifact check =="
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

"$build/tools/reticlec" --device=small \
    --stats-json="$out/stats.json" \
    --trace="$out/trace.json" \
    --remarks-json="$out/remarks.jsonl" \
    --dump-after-all="$out/stages" \
    --floorplan="$out/plan.svg" \
    -o "$out/mac.v" \
    "$repo/examples/programs/mac.ret"

"$build/tools/json_check" --require=schema --require=program \
    --require=timings.total_ms --require=place.sat.decisions \
    --require=utilization.luts "$out/stats.json"
"$build/tools/json_check" --require=traceEvents "$out/trace.json"
"$build/tools/json_check" --require=schema \
    --require=stages.parse.file --require=stages.isel.file \
    --require=stages.cascade.file --require=stages.place.file \
    --require=stages.codegen.file "$out/stages/manifest.json"
# Remark contents exist only when telemetry is compiled in; the stream
# must be valid JSONL either way (empty counts as valid).
"$build/tools/json_check" --jsonl "$out/remarks.jsonl"
grep -q "</svg>" "$out/plan.svg"

echo "ok: build, tests, and all emitted artifacts check out"
