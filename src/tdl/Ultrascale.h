//===- tdl/Ultrascale.h - UltraScale-like target library ---------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in target description for a Xilinx UltraScale(+)-like family
/// (the paper's 444-line TDL library, Section 6). The description is
/// generated per width/shape and then parsed through the normal TDL front
/// end, so it exercises the same code path as a hand-written target.
///
/// Cost model (areas in LUT-equivalents; one DSP slot costs 16):
///  - LUT word ops cost one LUT per bit; LUT multipliers cost width^2,
///    reproducing the "poor size and speed trade-off" that steers
///    multiplications to DSPs (Section 2);
///  - DSP ops cost a flat 16, so small adders prefer LUTs and wide or
///    vector ops prefer DSPs;
///  - fused ops (add_reg, muladd, muladd_reg) model the DSP's internal
///    post-adder and pipeline registers and the slice flip-flops next to
///    LUTs.
///
/// DSP SIMD shapes follow UG579: four lanes up to 12 bits or two lanes up
/// to 24 bits per DSP.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_TDL_ULTRASCALE_H
#define RETICLE_TDL_ULTRASCALE_H

#include "tdl/Target.h"

#include <string>

namespace reticle {
namespace tdl {

/// The generated TDL source text for the UltraScale-like family.
std::string ultrascaleText();

/// The parsed and validated UltraScale-like target (cached singleton).
const Target &ultrascale();

/// A second FPGA family, modeled on Intel Stratix-style variable-precision
/// DSP blocks: fused multiply-add with dedicated accumulation chains
/// (chainin/chainout, expressed through the same `_co`/`_ci`/`_cio`
/// cascade convention) but *no SIMD ALU*, so vector additions must map to
/// soft logic. Retargeting a program is a matter of swapping this target
/// in — the intermediate language does not change (the portability claim
/// of Sections 3 and 4.2). Code generation currently emits
/// UltraScale-style primitives only, matching the paper's single
/// implemented backend; this family is exercised through selection,
/// placement, and timing.
std::string stratixText();

/// The parsed and validated Stratix-like target (cached singleton).
const Target &stratix();

} // namespace tdl
} // namespace reticle

#endif // RETICLE_TDL_ULTRASCALE_H
