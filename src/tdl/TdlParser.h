//===- tdl/TdlParser.h - Target-description parser ---------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual front end for the target description language (Figure 9), e.g.:
///
/// \code
///   add_reg[lut, 8, 2](a:i8, b:i8, en:bool) -> (y:i8) {
///     t0:i8 = add(a, b);
///     y:i8 = reg[_](t0, en);
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_TDL_TDLPARSER_H
#define RETICLE_TDL_TDLPARSER_H

#include "support/Result.h"
#include "tdl/Target.h"

#include <string>

namespace reticle {
namespace tdl {

/// Parses and validates a whole target description. \p TargetName names
/// the resulting family.
Result<Target> parseTarget(const std::string &TargetName,
                           const std::string &Source);

} // namespace tdl
} // namespace reticle

#endif // RETICLE_TDL_TDLPARSER_H
