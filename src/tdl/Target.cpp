//===- tdl/Target.cpp - Target descriptions -----------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "tdl/Target.h"

#include "ir/Verifier.h"

#include <map>
#include <set>

using namespace reticle;
using namespace reticle::tdl;

unsigned TargetDef::numHoles() const {
  unsigned Count = 0;
  for (const std::vector<bool> &InstrHoles : Holes)
    for (bool IsHole : InstrHoles)
      if (IsHole)
        ++Count;
  return Count;
}

bool TargetDef::isCascadeVariant() const {
  auto EndsWith = [&](const char *Suffix) {
    std::string S(Suffix);
    return Name.size() >= S.size() &&
           Name.compare(Name.size() - S.size(), S.size(), S) == 0;
  };
  return EndsWith("_co") || EndsWith("_ci") || EndsWith("_cio");
}

ir::Function TargetDef::toFunction(
    const std::vector<int64_t> &HoleValues) const {
  assert(HoleValues.size() == numHoles() && "hole value count mismatch");
  ir::Function Fn(Name);
  Fn.inputs() = Inputs;
  Fn.addOutput(Output.Name, Output.Ty);
  size_t NextHole = 0;
  for (size_t I = 0; I < Body.size(); ++I) {
    ir::Instr Instr = Body[I];
    if (I < Holes.size() && !Holes[I].empty()) {
      std::vector<int64_t> Attrs = Instr.attrs();
      for (size_t K = 0; K < Attrs.size(); ++K)
        if (K < Holes[I].size() && Holes[I][K])
          Attrs[K] = HoleValues[NextHole++];
      Instr = Instr.isWire()
                  ? ir::Instr::makeWire(Instr.dst(), Instr.type(),
                                        Instr.wireOp(), std::move(Attrs),
                                        Instr.args())
                  : ir::Instr::makeComp(Instr.dst(), Instr.type(),
                                        Instr.compOp(), Instr.args(),
                                        std::move(Attrs), Instr.resource());
    }
    Fn.addInstr(std::move(Instr));
  }
  return Fn;
}

std::string TargetDef::str() const {
  std::string Out = Name + "[" + ir::resourceName(Prim) + ", " +
                    std::to_string(Area) + ", " + std::to_string(Latency) +
                    "](";
  for (size_t I = 0; I < Inputs.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Inputs[I].Name + ":" + Inputs[I].Ty.str();
  }
  Out += ") -> (" + Output.Name + ":" + Output.Ty.str() + ") {\n";
  size_t NextHole = 0;
  (void)NextHole;
  for (size_t I = 0; I < Body.size(); ++I) {
    // Render holes back as '_' by patching the printed attribute list.
    const ir::Instr &Instr = Body[I];
    std::string Line = "  " + Instr.dst() + ":" + Instr.type().str() + " = " +
                       Instr.opName();
    if (!Instr.attrs().empty()) {
      Line += "[";
      for (size_t K = 0; K < Instr.attrs().size(); ++K) {
        if (K)
          Line += ", ";
        bool IsHole = I < Holes.size() && K < Holes[I].size() && Holes[I][K];
        Line += IsHole ? std::string("_") : std::to_string(Instr.attrs()[K]);
      }
      Line += "]";
    }
    if (!Instr.args().empty()) {
      Line += "(";
      for (size_t K = 0; K < Instr.args().size(); ++K) {
        if (K)
          Line += ", ";
        Line += Instr.args()[K];
      }
      Line += ")";
    }
    Out += Line + ";\n";
  }
  Out += "}\n";
  return Out;
}

Status Target::addDef(TargetDef Def) {
  if (Def.Prim == ir::Resource::Any)
    return Status::failure("definition '" + Def.Name +
                           "': primitive must be lut or dsp");
  if (Def.Area < 0 || Def.Latency < 0)
    return Status::failure("definition '" + Def.Name +
                           "': costs must be non-negative");
  if (Def.Body.empty())
    return Status::failure("definition '" + Def.Name + "': empty body");

  // The body must be a well-formed function over the declared ports.
  std::vector<int64_t> ZeroHoles(Def.numHoles(), 0);
  ir::Function Fn = Def.toFunction(ZeroHoles);
  if (Status S = ir::verify(Fn); !S)
    return Status::failure("definition '" + Def.Name + "': " + S.error());

  // The paper requires definition bodies to be DAGs outright: even cycles
  // through registers are disallowed. The verified function's analysis
  // supplies the def edges (Fn's body indices equal Def.Body's).
  const ir::DefUse &DU = Fn.defUse();
  std::vector<unsigned> State(Def.Body.size(), 0);
  // Iterative DFS cycle check over all def-use edges.
  for (size_t Start = 0; Start < Def.Body.size(); ++Start) {
    if (State[Start] != 0)
      continue;
    std::vector<std::pair<size_t, size_t>> Stack = {{Start, 0}};
    State[Start] = 1;
    while (!Stack.empty()) {
      auto &[Node, ArgIndex] = Stack.back();
      const std::vector<ir::ValueId> &Args = DU.argIdsOf(Node);
      if (ArgIndex >= Args.size()) {
        State[Node] = 2;
        Stack.pop_back();
        continue;
      }
      ir::ValueId Arg = Args[ArgIndex++];
      uint32_t Next = Arg == ir::InvalidValueId ? ir::DefUse::NoDef
                                                : DU.defIndexOf(Arg);
      if (Next == ir::DefUse::NoDef)
        continue;
      if (State[Next] == 1)
        return Status::failure("definition '" + Def.Name +
                               "': body must be acyclic");
      if (State[Next] == 0) {
        State[Next] = 1;
        Stack.push_back({Next, 0});
      }
    }
  }

  // Every declared input must be used so that selection can bind it
  // (usersOf lists argument reads only, not output-port reads).
  for (const ir::Port &P : Def.Inputs)
    if (DU.usersOf(DU.idOf(P.Name)).empty())
      return Status::failure("definition '" + Def.Name + "': input '" +
                             P.Name + "' is never used");

  // No duplicate signature.
  std::vector<ir::Type> ArgTypes;
  for (const ir::Port &P : Def.Inputs)
    ArgTypes.push_back(P.Ty);
  if (resolve(Def.Name, Def.Prim, ArgTypes, Def.Output.Ty))
    return Status::failure("definition '" + Def.Name +
                           "': duplicate signature");

  Defs.push_back(std::move(Def));
  return Status::success();
}

const TargetDef *Target::resolve(const std::string &DefName,
                                 ir::Resource Prim,
                                 const std::vector<ir::Type> &ArgTypes,
                                 ir::Type OutType) const {
  for (const TargetDef &Def : Defs) {
    if (Def.Name != DefName || Def.Prim != Prim)
      continue;
    if (Def.Inputs.size() != ArgTypes.size())
      continue;
    if (!(Def.Output.Ty == OutType))
      continue;
    bool Match = true;
    for (size_t I = 0; I < ArgTypes.size(); ++I)
      if (!(Def.Inputs[I].Ty == ArgTypes[I])) {
        Match = false;
        break;
      }
    if (Match)
      return &Def;
  }
  return nullptr;
}

std::string Target::str() const {
  std::string Out;
  for (const TargetDef &Def : Defs)
    Out += Def.str() + "\n";
  return Out;
}
