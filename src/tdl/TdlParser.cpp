//===- tdl/TdlParser.cpp - Target-description parser ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "tdl/TdlParser.h"

#include "ir/ParseCommon.h"
#include "support/Lexer.h"

using namespace reticle;
using namespace reticle::tdl;
using ir::diagAt;
using ir::expect;

namespace {

/// Parses one body instruction; like an IR instruction but with `_`
/// attribute holes and no resource annotation.
Result<ir::Instr> parseBodyInstr(Lexer &Lex, std::vector<bool> &Holes) {
  if (!Lex.at(TokenKind::Ident))
    return fail<ir::Instr>(diagAt(Lex, "expected instruction destination"));
  std::string Dst = Lex.next().Text;
  if (Status S = expect(Lex, TokenKind::Colon); !S)
    return fail<ir::Instr>(S.error());
  Result<ir::Type> Ty = ir::parseType(Lex);
  if (!Ty)
    return fail<ir::Instr>(Ty.error());
  if (Status S = expect(Lex, TokenKind::Equal); !S)
    return fail<ir::Instr>(S.error());
  if (!Lex.at(TokenKind::Ident))
    return fail<ir::Instr>(diagAt(Lex, "expected operation name"));
  std::string OpName = Lex.next().Text;
  Result<std::vector<int64_t>> Attrs =
      ir::parseAttrList(Lex, /*AllowHoles=*/true, &Holes);
  if (!Attrs)
    return fail<ir::Instr>(Attrs.error());
  Result<std::vector<std::string>> Args = ir::parseArgList(Lex);
  if (!Args)
    return fail<ir::Instr>(Args.error());
  if (Status S = expect(Lex, TokenKind::Semi); !S)
    return fail<ir::Instr>(S.error());

  if (std::optional<ir::WireOp> WOp = ir::parseWireOp(OpName))
    return ir::Instr::makeWire(std::move(Dst), Ty.value(), *WOp,
                               Attrs.take(), Args.take());
  if (std::optional<ir::CompOp> COp = ir::parseCompOp(OpName))
    return ir::Instr::makeComp(std::move(Dst), Ty.value(), *COp,
                               Args.take(), Attrs.take());
  return fail<ir::Instr>("unknown operation '" + OpName +
                         "' in definition body");
}

Result<TargetDef> parseDef(Lexer &Lex) {
  TargetDef Def;
  if (!Lex.at(TokenKind::Ident))
    return fail<TargetDef>(diagAt(Lex, "expected definition name"));
  Def.Name = Lex.next().Text;

  // [prim, area, latency]
  if (Status S = expect(Lex, TokenKind::LBracket); !S)
    return fail<TargetDef>(S.error());
  if (Lex.atIdent("lut")) {
    Def.Prim = ir::Resource::Lut;
  } else if (Lex.atIdent("dsp")) {
    Def.Prim = ir::Resource::Dsp;
  } else {
    return fail<TargetDef>(diagAt(Lex, "expected primitive 'lut' or 'dsp'"));
  }
  Lex.next();
  if (Status S = expect(Lex, TokenKind::Comma); !S)
    return fail<TargetDef>(S.error());
  if (!Lex.at(TokenKind::Int))
    return fail<TargetDef>(diagAt(Lex, "expected area cost"));
  Def.Area = Lex.next().IntValue;
  if (Status S = expect(Lex, TokenKind::Comma); !S)
    return fail<TargetDef>(S.error());
  if (!Lex.at(TokenKind::Int))
    return fail<TargetDef>(diagAt(Lex, "expected latency cost"));
  Def.Latency = Lex.next().IntValue;
  if (Status S = expect(Lex, TokenKind::RBracket); !S)
    return fail<TargetDef>(S.error());

  Result<std::vector<ir::Port>> Inputs = ir::parsePortList(Lex);
  if (!Inputs)
    return fail<TargetDef>(Inputs.error());
  Def.Inputs = Inputs.take();

  if (Status S = expect(Lex, TokenKind::Arrow); !S)
    return fail<TargetDef>(S.error());
  Result<std::vector<ir::Port>> Outputs = ir::parsePortList(Lex);
  if (!Outputs)
    return fail<TargetDef>(Outputs.error());
  if (Outputs.value().size() != 1)
    return fail<TargetDef>("definition '" + Def.Name +
                           "' must declare exactly one output");
  Def.Output = Outputs.value()[0];

  if (Status S = expect(Lex, TokenKind::LBrace); !S)
    return fail<TargetDef>(S.error());
  while (!Lex.at(TokenKind::RBrace)) {
    if (Lex.at(TokenKind::Eof))
      return fail<TargetDef>(diagAt(Lex, "unterminated definition body"));
    std::vector<bool> Holes;
    Result<ir::Instr> I = parseBodyInstr(Lex, Holes);
    if (!I)
      return fail<TargetDef>(I.error());
    Def.Body.push_back(I.take());
    Def.Holes.push_back(std::move(Holes));
  }
  Lex.next();
  return Def;
}

} // namespace

Result<Target> reticle::tdl::parseTarget(const std::string &TargetName,
                                         const std::string &Source) {
  Lexer Lex(Source);
  if (!Lex.ok())
    return fail<Target>(Lex.error());
  Target T(TargetName);
  while (!Lex.at(TokenKind::Eof)) {
    Result<TargetDef> Def = parseDef(Lex);
    if (!Def)
      return fail<Target>(Def.error());
    if (Status S = T.addDef(Def.take()); !S)
      return fail<Target>(S.error());
  }
  if (T.defs().empty())
    return fail<Target>("target description is empty");
  return T;
}
