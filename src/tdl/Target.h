//===- tdl/Target.h - Target descriptions -----------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target description language of Figure 9. A target (an FPGA family)
/// is a list of assembly-instruction definitions; each gives the operation
/// name, the primitive it occupies, integer area and latency costs, typed
/// ports, and a body of intermediate-language instructions defining its
/// semantics. Instruction selection (Section 5.1) uses the bodies as tree
/// patterns and the costs to pick a minimum-cost cover.
///
/// Two conventions extend the paper's grammar:
///  - an attribute written `_` in a body is a hole: it binds the matched
///    instruction's attribute and is carried on the selected assembly
///    instruction (used for register init values);
///  - definitions whose name ends in `_co`, `_ci`, or `_cio` are cascade
///    layout variants (Section 5.2): they are never chosen by instruction
///    selection and are introduced only by the layout-optimization pass.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_TDL_TARGET_H
#define RETICLE_TDL_TARGET_H

#include "ir/Function.h"

#include <string>
#include <vector>

namespace reticle {
namespace tdl {

/// One assembly-instruction definition.
class TargetDef {
public:
  std::string Name;
  ir::Resource Prim = ir::Resource::Lut; ///< Lut or Dsp
  int64_t Area = 0;    ///< cost in LUT-equivalents (one DSP is 16)
  int64_t Latency = 0; ///< cost tie-breaker, abstract units
  std::vector<ir::Port> Inputs;
  ir::Port Output;
  std::vector<ir::Instr> Body;
  /// Holes[I][K] marks attribute K of body instruction I as bound from the
  /// matched program instruction.
  std::vector<std::vector<bool>> Holes;

  /// Total number of attribute holes, in body order.
  unsigned numHoles() const;

  /// True for `_co` / `_ci` / `_cio` cascade variants, which instruction
  /// selection must skip.
  bool isCascadeVariant() const;

  /// The body viewed as an ir::Function (with hole attributes substituted
  /// from \p HoleValues, which must have numHoles() entries). Used to
  /// interpret assembly instructions and to validate definitions.
  ir::Function toFunction(const std::vector<int64_t> &HoleValues) const;

  /// Renders the definition in TDL surface syntax.
  std::string str() const;
};

/// A named collection of definitions describing one FPGA family.
class Target {
public:
  Target() = default;
  explicit Target(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  const std::vector<TargetDef> &defs() const { return Defs; }

  /// Adds a definition after validating it: the body must be a closed,
  /// well-typed DAG over the declared ports, and every input must be used.
  Status addDef(TargetDef Def);

  /// Resolves a definition by name, primitive, and exact port types.
  /// Assembly operation names may be overloaded across widths and
  /// primitives; the location's primitive and the instruction types
  /// disambiguate.
  const TargetDef *resolve(const std::string &Name, ir::Resource Prim,
                           const std::vector<ir::Type> &ArgTypes,
                           ir::Type OutType) const;

  std::string str() const;

private:
  std::string Name;
  std::vector<TargetDef> Defs;
};

} // namespace tdl
} // namespace reticle

#endif // RETICLE_TDL_TARGET_H
