//===- tdl/Ultrascale.cpp - UltraScale-like target library --------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "tdl/Ultrascale.h"

#include "tdl/TdlParser.h"

#include <cstdio>
#include <cstdlib>

using namespace reticle;
using namespace reticle::tdl;

namespace {

/// Scalar integer widths the family supports directly.
const unsigned ScalarWidths[] = {1, 2, 4, 8, 12, 16, 24, 32, 48, 64};

/// DSP SIMD shapes (element width, lanes) per UG579: FOUR12 and TWO24.
const std::pair<unsigned, unsigned> VectorShapes[] = {
    {8, 2}, {8, 4}, {12, 4}, {16, 2}, {24, 2}};

/// One DSP slot costs this many LUT-equivalents in the selection cost
/// model.
constexpr unsigned DspArea = 16;

/// Maximum scalar width of the DSP pre-adder/ALU datapath.
constexpr unsigned DspAddMaxWidth = 48;

/// Maximum width for DSP multiplication (27x18 multiplier, signed).
constexpr unsigned DspMulMaxWidth = 16;

std::string typeName(unsigned Width, unsigned Lanes) {
  std::string T = "i" + std::to_string(Width);
  if (Lanes > 1)
    T += "<" + std::to_string(Lanes) + ">";
  return T;
}

/// Emits one definition with up to three typed value inputs plus an
/// optional bool enable, and a body given as preformatted lines.
void emitDef(std::string &Out, const std::string &Name,
             const char *Prim, unsigned Area, unsigned Latency,
             const std::vector<std::pair<std::string, std::string>> &Ports,
             const std::string &OutName, const std::string &OutType,
             const std::vector<std::string> &BodyLines) {
  Out += Name + "[" + Prim + ", " + std::to_string(Area) + ", " +
         std::to_string(Latency) + "](";
  for (size_t I = 0; I < Ports.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Ports[I].first + ":" + Ports[I].second;
  }
  Out += ") -> (" + OutName + ":" + OutType + ") {\n";
  for (const std::string &Line : BodyLines)
    Out += "  " + Line + "\n";
  Out += "}\n";
}

/// Emits the full op family for one element type (scalar or vector).
///
/// \p Width and \p Lanes describe the type; \p BoolType toggles the
/// bool-only family used by control logic.
void emitLutFamily(std::string &Out, const std::string &T, unsigned Bits,
                   bool IsBool, bool IsVector) {
  auto Bin = [&](const char *Op, unsigned Area, unsigned Lat) {
    emitDef(Out, Op, "lut", Area, Lat, {{"a", T}, {"b", T}}, "y", T,
            {std::string("y:") + T + " = " + Op + "(a, b);"});
  };
  // Bitwise logic: one LUT per bit.
  Bin("and", Bits, 1);
  Bin("or", Bits, 1);
  Bin("xor", Bits, 1);
  emitDef(Out, "not", "lut", Bits, 1, {{"a", T}}, "y", T,
          {"y:" + T + " = not(a);"});
  emitDef(Out, "mux", "lut", Bits, 1, {{"c", "bool"}, {"a", T}, {"b", T}},
          "y", T, {"y:" + T + " = mux(c, a, b);"});
  emitDef(Out, "reg", "lut", 1, 1, {{"a", T}, {"en", "bool"}}, "y", T,
          {"y:" + T + " = reg[_](a, en);"});
  if (!IsBool) {
    // Arithmetic: one LUT per bit plus the slice carry chain.
    Bin("add", Bits, 2);
    Bin("sub", Bits, 2);
    emitDef(Out, "addreg", "lut", Bits, 2,
            {{"a", T}, {"b", T}, {"en", "bool"}}, "y", T,
            {"t0:" + T + " = add(a, b);",
             "y:" + T + " = reg[_](t0, en);"});
    emitDef(Out, "subreg", "lut", Bits, 2,
            {{"a", T}, {"b", T}, {"en", "bool"}}, "y", T,
            {"t0:" + T + " = sub(a, b);",
             "y:" + T + " = reg[_](t0, en);"});
    // LUT multipliers scale quadratically: the classic reason synthesis
    // prefers DSPs for mul.
    emitDef(Out, "mul", "lut", Bits * Bits, 4, {{"a", T}, {"b", T}}, "y", T,
            {"y:" + T + " = mul(a, b);"});
  }
  // Comparisons produce bool and are scalar-only.
  if (!IsVector) {
    const char *CmpOps[] = {"eq", "neq", "lt", "gt", "le", "ge"};
    for (const char *Op : CmpOps) {
      if (IsBool && (std::string(Op) != "eq" && std::string(Op) != "neq"))
        continue;
      emitDef(Out, Op, "lut", Bits, 2, {{"a", T}, {"b", T}}, "y", "bool",
              {std::string("y:bool = ") + Op + "(a, b);"});
    }
  }
}

void emitDspFamily(std::string &Out, const std::string &T, unsigned Width,
                   unsigned Lanes, bool SimdAlu = true) {
  if (Lanes > 1 && !SimdAlu)
    return; // this family has no vector ALU configurations
  unsigned Lat = Lanes > 1 ? 2 : 1; // SIMD configs are slightly slower
  auto Bin = [&](const char *Op) {
    emitDef(Out, Op, "dsp", DspArea, Lat, {{"a", T}, {"b", T}}, "y", T,
            {std::string("y:") + T + " = " + Op + "(a, b);"});
  };
  if (Width <= DspAddMaxWidth) {
    Bin("add");
    Bin("sub");
    emitDef(Out, "addreg", "dsp", DspArea, Lat,
            {{"a", T}, {"b", T}, {"en", "bool"}}, "y", T,
            {"t0:" + T + " = add(a, b);",
             "y:" + T + " = reg[_](t0, en);"});
    emitDef(Out, "subreg", "dsp", DspArea, Lat,
            {{"a", T}, {"b", T}, {"en", "bool"}}, "y", T,
            {"t0:" + T + " = sub(a, b);",
             "y:" + T + " = reg[_](t0, en);"});
  }
  // Multiplication and the fused multiply-add use the 27x18 multiplier and
  // the post-adder; they have no SIMD form (UG579).
  if (Lanes == 1 && Width <= DspMulMaxWidth) {
    emitDef(Out, "mul", "dsp", DspArea, 2, {{"a", T}, {"b", T}}, "y", T,
            {"y:" + T + " = mul(a, b);"});
    emitDef(Out, "mulreg", "dsp", DspArea, 2,
            {{"a", T}, {"b", T}, {"en", "bool"}}, "y", T,
            {"t0:" + T + " = mul(a, b);",
             "y:" + T + " = reg[_](t0, en);"});
    // muladd plus its cascade layout variants (_co drives the cascade
    // output, _ci consumes the cascade input, _cio does both); all share
    // one semantics and differ only in routing (Section 5.2).
    const char *MulAddNames[] = {"muladd", "muladd_co", "muladd_ci",
                                 "muladd_cio"};
    for (const char *Name : MulAddNames)
      emitDef(Out, Name, "dsp", DspArea, 2,
              {{"a", T}, {"b", T}, {"c", T}}, "y", T,
              {"t0:" + T + " = mul(a, b);",
               "y:" + T + " = add(t0, c);"});
    const char *MulAddRegNames[] = {"muladdreg", "muladdreg_co",
                                    "muladdreg_ci", "muladdreg_cio"};
    for (const char *Name : MulAddRegNames)
      emitDef(Out, Name, "dsp", DspArea, 2,
              {{"a", T}, {"b", T}, {"c", T}, {"en", "bool"}}, "y", T,
              {"t0:" + T + " = mul(a, b);",
               "t1:" + T + " = add(t0, c);",
               "y:" + T + " = reg[_](t1, en);"});
  }
}

} // namespace

std::string reticle::tdl::ultrascaleText() {
  std::string Out;
  Out.reserve(1 << 17);
  Out += "// UltraScale-like target description (generated; see "
         "Ultrascale.cpp)\n";
  emitLutFamily(Out, "bool", 1, /*IsBool=*/true, /*IsVector=*/false);
  for (unsigned W : ScalarWidths) {
    emitLutFamily(Out, typeName(W, 1), W, false, /*IsVector=*/false);
    emitDspFamily(Out, typeName(W, 1), W, 1);
  }
  for (auto [W, L] : VectorShapes) {
    emitLutFamily(Out, typeName(W, L), W * L, false, /*IsVector=*/true);
    emitDspFamily(Out, typeName(W, L), W, L);
  }
  return Out;
}

const Target &reticle::tdl::ultrascale() {
  static const Target Instance = [] {
    Result<Target> T = parseTarget("ultrascale", ultrascaleText());
    if (!T) {
      std::fprintf(stderr, "invalid built-in target: %s\n",
                   T.error().c_str());
      std::abort();
    }
    return T.take();
  }();
  return Instance;
}

std::string reticle::tdl::stratixText() {
  std::string Out;
  Out.reserve(1 << 17);
  Out += "// Stratix-like target description (generated; see "
         "Ultrascale.cpp)\n";
  emitLutFamily(Out, "bool", 1, /*IsBool=*/true, /*IsVector=*/false);
  for (unsigned W : ScalarWidths) {
    emitLutFamily(Out, typeName(W, 1), W, false, /*IsVector=*/false);
    emitDspFamily(Out, typeName(W, 1), W, 1, /*SimdAlu=*/false);
  }
  // Vector types still exist in the IL and map to soft logic: the family
  // defines LUT implementations but no DSP SIMD configurations.
  for (auto [W, L] : VectorShapes) {
    emitLutFamily(Out, typeName(W, L), W * L, false, /*IsVector=*/true);
    emitDspFamily(Out, typeName(W, L), W, L, /*SimdAlu=*/false);
  }
  return Out;
}

const Target &reticle::tdl::stratix() {
  static const Target Instance = [] {
    Result<Target> T = parseTarget("stratix", stratixText());
    if (!T) {
      std::fprintf(stderr, "invalid built-in target: %s\n",
                   T.error().c_str());
      std::abort();
    }
    return T.take();
  }();
  return Instance;
}
