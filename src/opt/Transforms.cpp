//===- opt/Transforms.cpp - Front-end optimization passes -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "opt/Transforms.h"

#include "interp/Eval.h"
#include "ir/DefUse.h"
#include "obs/Context.h"

#include <map>
#include <optional>
#include <set>

using namespace reticle;
using namespace reticle::opt;
using ir::CompOp;
using ir::Function;
using ir::Instr;
using ir::Type;
using ir::WireOp;

unsigned reticle::opt::deadCodeElim(Function &Fn, const obs::Context &Ctx) {
  const ir::DefUse &DU = Fn.defUse(Ctx);
  size_t BodySize = Fn.body().size();

  // Backwards reachability from the outputs.
  std::vector<uint8_t> Live(BodySize, 0);
  std::vector<size_t> Work;
  auto Mark = [&](ir::ValueId Id) {
    if (Id == ir::InvalidValueId)
      return;
    uint32_t Def = DU.defIndexOf(Id);
    if (Def != ir::DefUse::NoDef && !Live[Def]) {
      Live[Def] = 1;
      Work.push_back(Def);
    }
  };
  for (size_t K = 0; K < Fn.outputs().size(); ++K)
    Mark(DU.outputIdOf(K));
  while (!Work.empty()) {
    size_t I = Work.back();
    Work.pop_back();
    for (ir::ValueId Arg : DU.argIdsOf(I))
      Mark(Arg);
  }

  std::vector<Instr> Kept;
  Kept.reserve(BodySize);
  unsigned Removed = 0;
  for (size_t I = 0; I < BodySize; ++I) {
    if (Live[I])
      Kept.push_back(std::move(Fn.body()[I]));
    else
      ++Removed;
  }
  Fn.body() = std::move(Kept);
  if (Removed)
    Fn.invalidateDefUse(Ctx);
  if (Removed && Ctx.remarksEnabled())
    obs::Remark(Ctx, "opt", "dce")
        .message("removed " + std::to_string(Removed) +
                 " dead instruction(s), " +
                 std::to_string(Fn.body().size()) + " remain")
        .arg("removed", Removed)
        .arg("remaining", static_cast<uint64_t>(Fn.body().size()));
  return Removed;
}

unsigned reticle::opt::constantFold(Function &Fn, const obs::Context &Ctx) {
  // Constant values discovered so far, by value id. Folding preserves
  // every destination name and type and only ever re-points arguments at
  // existing values, so the interned id space stays stable throughout
  // the fixed-point loop.
  const ir::DefUse &DU = Fn.defUse(Ctx);
  std::vector<std::optional<interp::Value>> Consts(DU.numValues());
  std::optional<interp::Value> Unknown; // slot for names outside the id space
  auto ConstAt = [&](const std::string &Name) -> std::optional<interp::Value> & {
    ir::ValueId Id = DU.idOf(Name);
    if (Id == ir::InvalidValueId) {
      Unknown.reset();
      return Unknown;
    }
    return Consts[Id];
  };

  auto MakeConst = [](const Instr &I, const interp::Value &V) {
    std::vector<int64_t> Attrs;
    for (unsigned L = 0; L < V.lanes(); ++L)
      Attrs.push_back(V.lane(L));
    return Instr::makeWire(I.dst(), I.type(), WireOp::Const,
                           std::move(Attrs));
  };

  unsigned Rewritten = 0;
  // Instructions are a circuit, but constants only propagate forward
  // through pure ops; iterate to a fixed point over the body order.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Instr &I : Fn.body()) {
      if (I.isWire() && I.wireOp() == WireOp::Const) {
        if (std::optional<interp::Value> &Slot = ConstAt(I.dst()); !Slot) {
          Result<interp::Value> V = interp::evalPure(I, {});
          if (V)
            Slot = V.take();
        }
        continue;
      }
      if (I.isReg())
        continue;
      // All-constant operands: evaluate.
      std::vector<interp::Value> Args;
      bool AllConst = true;
      for (const std::string &Arg : I.args()) {
        const std::optional<interp::Value> &Slot = ConstAt(Arg);
        if (!Slot) {
          AllConst = false;
          break;
        }
        Args.push_back(*Slot);
      }
      if (AllConst && !I.args().empty()) {
        Result<interp::Value> V = interp::evalPure(I, Args);
        if (V) {
          if (std::optional<interp::Value> &Slot = ConstAt(I.dst()); !Slot)
            Slot = V.value();
          I = MakeConst(I, V.value());
          ++Rewritten;
          Changed = true;
          continue;
        }
      }
      // Algebraic identities with one constant operand.
      if (!I.isComp() || I.args().size() < 2)
        continue;
      auto ConstOf =
          [&](size_t K) -> const interp::Value * {
        const std::optional<interp::Value> &Slot = ConstAt(I.args()[K]);
        return Slot ? &*Slot : nullptr;
      };
      auto IsZero = [](const interp::Value &V) {
        for (unsigned L = 0; L < V.lanes(); ++L)
          if (V.lane(L) != 0)
            return false;
        return true;
      };
      auto IsOne = [](const interp::Value &V) {
        for (unsigned L = 0; L < V.lanes(); ++L)
          if (V.lane(L) != 1)
            return false;
        return true;
      };
      auto ToId = [&](const std::string &Keep) {
        I = Instr::makeWire(I.dst(), I.type(), WireOp::Id, {}, {Keep});
        ++Rewritten;
        Changed = true;
      };
      switch (I.compOp()) {
      case CompOp::Add:
        if (const interp::Value *V = ConstOf(0); V && IsZero(*V))
          ToId(I.args()[1]);
        else if (const interp::Value *V1 = ConstOf(1); V1 && IsZero(*V1))
          ToId(I.args()[0]);
        break;
      case CompOp::Sub:
        if (const interp::Value *V = ConstOf(1); V && IsZero(*V))
          ToId(I.args()[0]);
        break;
      case CompOp::Mul: {
        const interp::Value *V0 = ConstOf(0);
        const interp::Value *V1 = ConstOf(1);
        if ((V0 && IsZero(*V0)) || (V1 && IsZero(*V1))) {
          I = Instr::makeWire(I.dst(), I.type(), WireOp::Const, {0});
          if (std::optional<interp::Value> &Slot = ConstAt(I.dst()); !Slot)
            Slot = interp::Value::splat(I.type(), 0);
          ++Rewritten;
          Changed = true;
        } else if (V0 && IsOne(*V0)) {
          ToId(I.args()[1]);
        } else if (V1 && IsOne(*V1)) {
          ToId(I.args()[0]);
        }
        break;
      }
      case CompOp::Mux:
        if (const interp::Value *V = ConstOf(0))
          ToId(V->toBool() ? I.args()[1] : I.args()[2]);
        break;
      default:
        break;
      }
    }
  }
  if (Rewritten)
    Fn.invalidateDefUse(Ctx);
  if (Rewritten && Ctx.remarksEnabled())
    obs::Remark(Ctx, "opt", "const-fold")
        .message("folded or simplified " + std::to_string(Rewritten) +
                 " instruction(s)")
        .arg("rewritten", Rewritten);
  return Rewritten;
}

unsigned reticle::opt::vectorize(Function &Fn, unsigned Lanes,
                                 const obs::Context &Ctx) {
  assert(Lanes >= 2 && (Lanes & (Lanes - 1)) == 0 &&
         "lane count must be a power of two of at least two");
  const std::vector<Instr> &Body = Fn.body();
  const ir::DefUse &DU = Fn.defUse(Ctx);

  // Transitive dependency sets over body indices (for independence).
  std::vector<std::set<size_t>> Deps(Body.size());
  // Body order is arbitrary; iterate to a fixed point (registers bound
  // the iteration count, and benchmark-shaped programs converge fast).
  bool Grew = true;
  while (Grew) {
    Grew = false;
    for (size_t I = 0; I < Body.size(); ++I) {
      if (Body[I].isReg())
        continue; // state breaks timing dependence
      for (ir::ValueId Arg : DU.argIdsOf(I)) {
        if (Arg == ir::InvalidValueId)
          continue;
        uint32_t D = DU.defIndexOf(Arg);
        if (D == ir::DefUse::NoDef)
          continue;
        if (Deps[I].insert(D).second)
          Grew = true;
        size_t Before = Deps[I].size();
        Deps[I].insert(Deps[D].begin(), Deps[D].end());
        if (Deps[I].size() != Before)
          Grew = true;
      }
    }
  }

  /// Grouping key: op kind, scalar type, resource, and for registers the
  /// enable variable and init value.
  auto KeyOf = [&](const Instr &I) -> std::string {
    if (!I.isComp() || I.type().isVector() || !I.type().isInt())
      return "";
    switch (I.compOp()) {
    case CompOp::Add:
    case CompOp::Sub:
    case CompOp::And:
    case CompOp::Or:
    case CompOp::Xor:
      break;
    case CompOp::Reg:
      return std::string("reg/") + I.type().str() + "/" + I.args()[1] +
             "/" + std::to_string(I.attrs()[0]) + "/" +
             ir::resourceName(I.resource());
    default:
      return "";
    }
    return std::string(ir::compOpName(I.compOp())) + "/" + I.type().str() +
           "/" + ir::resourceName(I.resource());
  };

  // Greedy grouping in body order.
  std::vector<std::vector<size_t>> Groups;
  std::map<std::string, std::vector<size_t>> Open;
  std::set<size_t> Grouped;
  for (size_t I = 0; I < Body.size(); ++I) {
    std::string Key = KeyOf(Body[I]);
    if (Key.empty())
      continue;
    std::vector<size_t> &Group = Open[Key];
    bool Independent = true;
    for (size_t Member : Group)
      if (Deps[I].count(Member) || Deps[Member].count(I)) {
        Independent = false;
        break;
      }
    if (!Independent)
      continue;
    Group.push_back(I);
    if (Group.size() == Lanes) {
      Groups.push_back(Group);
      for (size_t Member : Group)
        Grouped.insert(Member);
      Group.clear();
    }
  }
  if (Groups.empty())
    return 0;

  // Rewrite: emit cat trees for each operand, the vector instruction, and
  // per-lane slices that take over the original destination names.
  unsigned Fresh = 0;
  std::vector<Instr> NewBody;
  std::map<size_t, size_t> GroupOfHead; // first member -> group index
  for (size_t G = 0; G < Groups.size(); ++G)
    GroupOfHead[Groups[G][0]] = G;

  auto FreshName = [&] { return "vec" + std::to_string(Fresh++); };
  auto EmitCatTree = [&](const std::vector<std::string> &Parts,
                         Type Scalar) {
    // Pairwise cat to build i<W> -> iW<2> -> iW<4> ... vectors.
    std::vector<std::string> Level = Parts;
    unsigned LaneCount = 1;
    while (Level.size() > 1) {
      std::vector<std::string> Next;
      LaneCount *= 2;
      for (size_t K = 0; K + 1 < Level.size(); K += 2) {
        std::string Name = FreshName();
        Type Ty = Type::makeInt(Scalar.width(), LaneCount);
        NewBody.push_back(Instr::makeWire(Name, Ty, WireOp::Cat, {},
                                          {Level[K], Level[K + 1]}));
        Next.push_back(Name);
      }
      Level = std::move(Next);
    }
    return Level[0];
  };

  for (size_t I = 0; I < Body.size(); ++I) {
    if (Grouped.count(I) && !GroupOfHead.count(I))
      continue; // emitted with its group head
    if (!GroupOfHead.count(I)) {
      NewBody.push_back(Body[I]);
      continue;
    }
    const std::vector<size_t> &Group = Groups[GroupOfHead.at(I)];
    const Instr &Head = Body[Group[0]];
    Type Scalar = Head.type();
    Type VecTy = Type::makeInt(Scalar.width(), Lanes);
    bool IsReg = Head.isReg();
    size_t ValueArgs = IsReg ? 1 : Head.args().size();

    std::vector<std::string> VecArgs;
    for (size_t A = 0; A < ValueArgs; ++A) {
      std::vector<std::string> Parts;
      for (size_t Member : Group)
        Parts.push_back(Body[Member].args()[A]);
      VecArgs.push_back(EmitCatTree(Parts, Scalar));
    }
    if (IsReg)
      VecArgs.push_back(Head.args()[1]); // shared enable
    std::string VecDst = FreshName();
    NewBody.push_back(Instr::makeComp(VecDst, VecTy, Head.compOp(),
                                      std::move(VecArgs), Head.attrs(),
                                      Head.resource()));
    for (size_t L = 0; L < Group.size(); ++L)
      NewBody.push_back(Instr::makeWire(
          Body[Group[L]].dst(), Scalar, WireOp::Slice,
          {static_cast<int64_t>(L * Scalar.width())}, {VecDst}));
  }
  Fn.body() = std::move(NewBody);
  Fn.invalidateDefUse(Ctx);
  if (Ctx.remarksEnabled())
    obs::Remark(Ctx, "opt", "vectorize")
        .message("packed " + std::to_string(Groups.size()) + " group(s) of " +
                 std::to_string(Lanes) + " scalar ops into vector lanes")
        .arg("groups", static_cast<uint64_t>(Groups.size()))
        .arg("lanes", Lanes);
  return static_cast<unsigned>(Groups.size());
}
