//===- opt/Transforms.h - Front-end optimization passes ---------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization opportunities Section 8.2 assigns to front-end tools
/// targeting Reticle, implemented as IR-to-IR passes:
///
///  - dead-code elimination: drop instructions whose results cannot reach
///    an output;
///  - constant folding: evaluate instructions with constant operands and
///    apply algebraic identities (x+0, x*1, x*0, mux on a constant);
///  - vectorization (Figure 16): combine groups of independent,
///    identically-typed scalar operations into vector instructions, which
///    is what lets instruction selection use DSP SIMD modes.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_OPT_TRANSFORMS_H
#define RETICLE_OPT_TRANSFORMS_H

#include "ir/Function.h"
#include "obs/Context.h"

namespace reticle {
namespace opt {

/// Removes instructions that cannot reach any output. Returns the number
/// of instructions removed.
unsigned deadCodeElim(ir::Function &Fn,
                      const obs::Context &Ctx = obs::defaultContext());

/// Folds constant subexpressions and algebraic identities in place.
/// Returns the number of instructions rewritten. Run deadCodeElim
/// afterwards to drop the now-unused operands.
unsigned constantFold(ir::Function &Fn,
                      const obs::Context &Ctx = obs::defaultContext());

/// Combines groups of \p Lanes independent scalar instructions with one
/// operation and type into a single vector instruction plus cat/slice
/// wiring (which is area-free). Handles the elementwise operations
/// add/sub/and/or/xor and registers sharing one enable and init value.
/// Returns the number of vector instructions created.
unsigned vectorize(ir::Function &Fn, unsigned Lanes = 4,
                   const obs::Context &Ctx = obs::defaultContext());

} // namespace opt
} // namespace reticle

#endif // RETICLE_OPT_TRANSFORMS_H
