//===- device/Device.h - FPGA device models ---------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-grid device models (Section 5.3). All modern FPGAs are built as
/// columns of resources; a device is described by which columns hold DSP
/// slices and which hold LUT slices, and how many slices each column has.
/// Devices within one family share primitives and differ only in these
/// counts, which is what makes assembly programs family-portable.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_DEVICE_DEVICE_H
#define RETICLE_DEVICE_DEVICE_H

#include "ir/Instr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace reticle {
namespace device {

/// A physical slot on the device grid: column \p X, row \p Y within the
/// column.
struct Slot {
  unsigned X = 0;
  unsigned Y = 0;
  auto operator<=>(const Slot &Other) const = default;
};

/// One column of same-kind slices.
struct Column {
  ir::Resource Kind = ir::Resource::Lut; ///< Lut or Dsp, never Any
  unsigned Height = 0;                   ///< number of slices in the column
};

/// A concrete FPGA device: an ordered list of resource columns.
class Device {
public:
  Device() = default;
  Device(std::string Name, std::vector<Column> Columns,
         unsigned LutsPerSlice = 8)
      : Name(std::move(Name)), Columns(std::move(Columns)),
        LutsPerSliceCount(LutsPerSlice) {}

  const std::string &name() const { return Name; }
  const std::vector<Column> &columns() const { return Columns; }
  unsigned numColumns() const { return static_cast<unsigned>(Columns.size()); }

  /// LUTs hosted by one LUT slice (8 on UltraScale+).
  unsigned lutsPerSlice() const { return LutsPerSliceCount; }

  /// Number of slices of \p Kind across the whole device.
  unsigned numSlices(ir::Resource Kind) const;

  /// Total LUT count (slices of LUT kind times LUTs per slice).
  unsigned numLuts() const {
    return numSlices(ir::Resource::Lut) * LutsPerSliceCount;
  }
  unsigned numDsps() const { return numSlices(ir::Resource::Dsp); }

  /// True when slot (\p X, \p Y) exists and holds a slice of \p Kind.
  bool isValidSlot(ir::Resource Kind, unsigned X, unsigned Y) const {
    if (X >= Columns.size())
      return false;
    const Column &C = Columns[X];
    return C.Kind == Kind && Y < C.Height;
  }

  /// Indices of the columns of \p Kind, in x order.
  std::vector<unsigned> columnsOf(ir::Resource Kind) const;

  /// Tallest column of \p Kind (0 when absent).
  unsigned maxHeight(ir::Resource Kind) const;

  /// A 4-slot test device: one DSP column and two LUT columns.
  static Device tiny();

  /// A small device for integration tests: 2 DSP columns of 8 and 4 LUT
  /// columns of 16.
  static Device small();

  /// A model of the paper's evaluation target, the Xilinx
  /// xczu3eg-sbva484-1: 360 DSPs (3 columns of 120) and 71040 LUTs
  /// (60 slice columns of 148, 8 LUTs each).
  static Device xczu3eg();

  /// A device of the Stratix-like second family (see tdl::stratix()):
  /// LAB columns hosting ten ALMs per slice and two DSP columns. Used by
  /// the cross-family portability tests.
  static Device stratixLike();

private:
  std::string Name;
  std::vector<Column> Columns;
  unsigned LutsPerSliceCount = 8;
};

} // namespace device
} // namespace reticle

#endif // RETICLE_DEVICE_DEVICE_H
