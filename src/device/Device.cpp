//===- device/Device.cpp - FPGA device models --------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "device/Device.h"

using namespace reticle;
using namespace reticle::device;

unsigned Device::numSlices(ir::Resource Kind) const {
  unsigned Count = 0;
  for (const Column &C : Columns)
    if (C.Kind == Kind)
      Count += C.Height;
  return Count;
}

std::vector<unsigned> Device::columnsOf(ir::Resource Kind) const {
  std::vector<unsigned> Out;
  for (unsigned X = 0; X < Columns.size(); ++X)
    if (Columns[X].Kind == Kind)
      Out.push_back(X);
  return Out;
}

unsigned Device::maxHeight(ir::Resource Kind) const {
  unsigned Max = 0;
  for (const Column &C : Columns)
    if (C.Kind == Kind && C.Height > Max)
      Max = C.Height;
  return Max;
}

Device Device::tiny() {
  std::vector<Column> Columns = {
      {ir::Resource::Lut, 4},
      {ir::Resource::Dsp, 4},
      {ir::Resource::Lut, 4},
  };
  return Device("tiny", std::move(Columns));
}

Device Device::small() {
  std::vector<Column> Columns;
  for (unsigned I = 0; I < 2; ++I) {
    Columns.push_back({ir::Resource::Lut, 16});
    Columns.push_back({ir::Resource::Lut, 16});
    Columns.push_back({ir::Resource::Dsp, 8});
  }
  return Device("small", std::move(Columns));
}

Device Device::stratixLike() {
  // 30 LAB columns x 120 slices x 10 ALMs = 36000 ALMs; 2 DSP columns of
  // 84 = 168 DSP blocks.
  std::vector<Column> Columns;
  for (unsigned Group = 0; Group < 2; ++Group) {
    for (unsigned I = 0; I < 15; ++I)
      Columns.push_back({ir::Resource::Lut, 120});
    Columns.push_back({ir::Resource::Dsp, 84});
  }
  return Device("stratix-like", std::move(Columns), /*LutsPerSlice=*/10);
}

Device Device::xczu3eg() {
  // 63 columns: a DSP column after every 20 LUT slice columns. 60 LUT
  // columns x 148 slices x 8 LUTs = 71040 LUTs; 3 DSP columns x 120 = 360
  // DSPs, matching the resource counts reported in Section 7.
  std::vector<Column> Columns;
  for (unsigned Group = 0; Group < 3; ++Group) {
    for (unsigned I = 0; I < 20; ++I)
      Columns.push_back({ir::Resource::Lut, 148});
    Columns.push_back({ir::Resource::Dsp, 120});
  }
  return Device("xczu3eg-sbva484-1", std::move(Columns));
}
