//===- anneal/Anneal.h - Simulated-annealing placement ----------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated-annealing placer in the VPR tradition, used by the baseline
/// "vendor" toolchain. This is the expensive, randomized metaheuristic the
/// paper contrasts with Reticle's deterministic solver-based placement
/// (Sections 1 and 5.1): cost is half-perimeter wirelength, moves relocate
/// or swap cells, and an adaptive temperature schedule controls
/// acceptance.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_ANNEAL_ANNEAL_H
#define RETICLE_ANNEAL_ANNEAL_H

#include "device/Device.h"
#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace reticle {
namespace anneal {

/// A placeable cell occupying one slot of its resource kind.
struct Cell {
  std::string Name;
  ir::Resource Kind = ir::Resource::Lut;
  /// Locked cells keep their initial slot (used for pre-legalized DSP
  /// cascade chains).
  bool Locked = false;
  /// Initial slot for locked cells; ignored otherwise.
  device::Slot Initial;
  bool HasInitial = false;
};

/// A multi-terminal net over cell indices.
struct Net {
  std::vector<size_t> Cells;
};

/// Annealer knobs; defaults give a deliberately thorough (slow) schedule.
struct AnnealOptions {
  uint64_t Seed = 1;
  /// Moves per cell at each temperature (VPR uses ~10 * n^(4/3) total).
  unsigned MovesPerCell = 40;
  /// Floor on moves per temperature. Production placers sweep
  /// device-sized data structures regardless of design size, so their
  /// cost does not shrink to zero on small designs; this floor models
  /// that fixed per-pass work. Unit tests set it to zero.
  uint64_t MinMovesPerTemp = 20000;
  double Cooling = 0.92;
  double MinTemperature = 0.005;
};

struct AnnealResult {
  std::vector<device::Slot> SlotOf; ///< one slot per cell
  double InitialCost = 0.0;
  double FinalCost = 0.0;
  uint64_t Moves = 0;
  uint64_t Accepted = 0;
};

/// Places \p Cells on \p Dev minimizing total half-perimeter wirelength of
/// \p Nets. Fails when a resource kind is oversubscribed or a locked cell
/// has an invalid slot.
Result<AnnealResult> place(const std::vector<Cell> &Cells,
                           const std::vector<Net> &Nets,
                           const device::Device &Dev,
                           const AnnealOptions &Options = {});

} // namespace anneal
} // namespace reticle

#endif // RETICLE_ANNEAL_ANNEAL_H
