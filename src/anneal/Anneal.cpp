//===- anneal/Anneal.cpp - Simulated-annealing placement -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "anneal/Anneal.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>

using namespace reticle;
using namespace reticle::anneal;

namespace {

/// Half-perimeter wirelength of one net under the current placement.
double netCost(const Net &N, const std::vector<device::Slot> &SlotOf) {
  if (N.Cells.size() < 2)
    return 0.0;
  unsigned MinX = UINT32_MAX, MaxX = 0, MinY = UINT32_MAX, MaxY = 0;
  for (size_t C : N.Cells) {
    const device::Slot &S = SlotOf[C];
    MinX = std::min(MinX, S.X);
    MaxX = std::max(MaxX, S.X);
    MinY = std::min(MinY, S.Y);
    MaxY = std::max(MaxY, S.Y);
  }
  return double(MaxX - MinX) + double(MaxY - MinY);
}

} // namespace

Result<AnnealResult> reticle::anneal::place(const std::vector<Cell> &Cells,
                                            const std::vector<Net> &Nets,
                                            const device::Device &Dev,
                                            const AnnealOptions &Options) {
  using ResultT = AnnealResult;

  // Enumerate the slots of each kind.
  std::map<ir::Resource, std::vector<device::Slot>> SlotsOf;
  for (unsigned X = 0; X < Dev.numColumns(); ++X) {
    const device::Column &Col = Dev.columns()[X];
    for (unsigned Y = 0; Y < Col.Height; ++Y)
      SlotsOf[Col.Kind].push_back(device::Slot{X, Y});
  }
  std::map<ir::Resource, size_t> Demand;
  for (const Cell &C : Cells)
    ++Demand[C.Kind];
  for (auto &[Kind, Need] : Demand)
    if (Need > SlotsOf[Kind].size())
      return fail<ResultT>(
          "annealing placement failed: " + std::to_string(Need) + " " +
          ir::resourceName(Kind) + " cells exceed " +
          std::to_string(SlotsOf[Kind].size()) + " slots on device '" +
          Dev.name() + "'");

  // Initial placement: locked cells first, then first-fit for the rest.
  std::vector<device::Slot> SlotOf(Cells.size());
  std::map<device::Slot, size_t> Occupant; // slot -> cell
  for (size_t I = 0; I < Cells.size(); ++I) {
    if (!Cells[I].Locked)
      continue;
    const device::Slot &S = Cells[I].Initial;
    if (!Cells[I].HasInitial ||
        !Dev.isValidSlot(Cells[I].Kind, S.X, S.Y))
      return fail<ResultT>("locked cell '" + Cells[I].Name +
                           "' has no valid slot");
    if (!Occupant.emplace(S, I).second)
      return fail<ResultT>("locked cells collide at slot (" +
                           std::to_string(S.X) + ", " + std::to_string(S.Y) +
                           ")");
    SlotOf[I] = S;
  }
  {
    std::map<ir::Resource, size_t> Cursor;
    for (size_t I = 0; I < Cells.size(); ++I) {
      if (Cells[I].Locked)
        continue;
      const std::vector<device::Slot> &Pool = SlotsOf[Cells[I].Kind];
      size_t &Cur = Cursor[Cells[I].Kind];
      while (Cur < Pool.size() && Occupant.count(Pool[Cur]))
        ++Cur;
      if (Cur >= Pool.size())
        return fail<ResultT>("annealing placement failed: no free slot for "
                             "cell '" + Cells[I].Name + "'");
      SlotOf[I] = Pool[Cur];
      Occupant.emplace(Pool[Cur], I);
      ++Cur;
    }
  }

  // Net membership per cell, for incremental cost updates.
  std::vector<std::vector<size_t>> NetsOfCell(Cells.size());
  for (size_t N = 0; N < Nets.size(); ++N)
    for (size_t C : Nets[N].Cells)
      NetsOfCell[C].push_back(N);

  std::vector<double> NetCostNow(Nets.size());
  double Cost = 0.0;
  for (size_t N = 0; N < Nets.size(); ++N) {
    NetCostNow[N] = netCost(Nets[N], SlotOf);
    Cost += NetCostNow[N];
  }

  AnnealResult Out;
  Out.InitialCost = Cost;
  std::vector<size_t> Movable;
  for (size_t I = 0; I < Cells.size(); ++I)
    if (!Cells[I].Locked)
      Movable.push_back(I);
  // Net-less designs still run the schedule: the per-pass sweep cost of a
  // production placer does not vanish just because nothing is connected.
  if (Movable.empty()) {
    Out.SlotOf = std::move(SlotOf);
    Out.FinalCost = Cost;
    return Out;
  }

  std::mt19937_64 Rng(Options.Seed);
  std::uniform_real_distribution<double> Unit(0.0, 1.0);
  std::uniform_int_distribution<size_t> PickCell(0, Movable.size() - 1);

  // Seed the temperature from the spread of random move deltas.
  auto MoveDelta = [&](size_t CellIndex, const device::Slot &Target,
                       size_t *SwapWith) -> double {
    *SwapWith = SIZE_MAX;
    auto It = Occupant.find(Target);
    if (It != Occupant.end()) {
      if (Cells[It->second].Locked)
        return NAN; // cannot displace locked cells
      *SwapWith = It->second;
    }
    device::Slot Old = SlotOf[CellIndex];
    double Delta = 0.0;
    std::vector<size_t> Touched = NetsOfCell[CellIndex];
    if (*SwapWith != SIZE_MAX)
      Touched.insert(Touched.end(), NetsOfCell[*SwapWith].begin(),
                     NetsOfCell[*SwapWith].end());
    std::sort(Touched.begin(), Touched.end());
    Touched.erase(std::unique(Touched.begin(), Touched.end()),
                  Touched.end());
    SlotOf[CellIndex] = Target;
    if (*SwapWith != SIZE_MAX)
      SlotOf[*SwapWith] = Old;
    for (size_t N : Touched)
      Delta += netCost(Nets[N], SlotOf) - NetCostNow[N];
    SlotOf[CellIndex] = Old;
    if (*SwapWith != SIZE_MAX)
      SlotOf[*SwapWith] = Target;
    return Delta;
  };
  auto RandomTarget = [&](ir::Resource Kind) {
    const std::vector<device::Slot> &Pool = SlotsOf[Kind];
    std::uniform_int_distribution<size_t> D(0, Pool.size() - 1);
    return Pool[D(Rng)];
  };
  auto Commit = [&](size_t CellIndex, const device::Slot &Target,
                    size_t SwapWith) {
    device::Slot Old = SlotOf[CellIndex];
    SlotOf[CellIndex] = Target;
    Occupant.erase(Old);
    if (SwapWith != SIZE_MAX) {
      SlotOf[SwapWith] = Old;
      Occupant[Old] = SwapWith;
    }
    Occupant[Target] = CellIndex;
    std::vector<size_t> Touched = NetsOfCell[CellIndex];
    if (SwapWith != SIZE_MAX)
      Touched.insert(Touched.end(), NetsOfCell[SwapWith].begin(),
                     NetsOfCell[SwapWith].end());
    std::sort(Touched.begin(), Touched.end());
    Touched.erase(std::unique(Touched.begin(), Touched.end()),
                  Touched.end());
    for (size_t N : Touched) {
      double NewCost = netCost(Nets[N], SlotOf);
      Cost += NewCost - NetCostNow[N];
      NetCostNow[N] = NewCost;
    }
  };

  double SumAbs = 0.0;
  unsigned Samples = 0;
  for (unsigned I = 0; I < 64; ++I) {
    size_t C = Movable[PickCell(Rng)];
    size_t SwapWith;
    double Delta = MoveDelta(C, RandomTarget(Cells[C].Kind), &SwapWith);
    if (!std::isnan(Delta)) {
      SumAbs += std::abs(Delta);
      ++Samples;
    }
  }
  double Temperature = Samples ? 4.0 * SumAbs / Samples : 1.0;
  Temperature = std::max(Temperature, 1.0);

  uint64_t MovesPerTemp = std::max<uint64_t>(
      uint64_t(Options.MovesPerCell) * Movable.size(),
      Options.MinMovesPerTemp);
  while (Temperature > Options.MinTemperature) {
    uint64_t AcceptedHere = 0;
    for (uint64_t M = 0; M < MovesPerTemp; ++M) {
      size_t C = Movable[PickCell(Rng)];
      device::Slot Target = RandomTarget(Cells[C].Kind);
      if (Target == SlotOf[C])
        continue;
      size_t SwapWith;
      double Delta = MoveDelta(C, Target, &SwapWith);
      if (std::isnan(Delta))
        continue;
      ++Out.Moves;
      if (Delta <= 0.0 || Unit(Rng) < std::exp(-Delta / Temperature)) {
        Commit(C, Target, SwapWith);
        ++Out.Accepted;
        ++AcceptedHere;
      }
    }
    Temperature *= Options.Cooling;
    // Quench when the design has frozen.
    if (AcceptedHere == 0)
      break;
  }

  Out.SlotOf = std::move(SlotOf);
  Out.FinalCost = Cost;
  return Out;
}
