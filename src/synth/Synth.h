//===- synth/Synth.h - Baseline behavioral toolchain ------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline "vendor" toolchain the evaluation compares against
/// (Section 7's `base` and `hint` bars). It consumes the same programs as
/// Reticle but treats them the way a behavioral-HDL flow would:
///
///  - vector types are scalarized (behavioral Verilog has no lane types:
///    Figure 3's loop becomes N independent scalar adds);
///  - DSP binding is a *heuristic cost model*, not a constraint:
///     * `base`: only multiplications (and mul+add fusions) infer DSPs;
///       additions stay in LUT fabric — exactly the behavior the paper
///       observes ("Vivado's heuristics fail to exploit DSPs at all using
///       a pure behavioral description");
///     * `hint`: the `use_dsp` attribute also maps additions to *scalar*
///       DSP configurations while DSPs remain, then silently falls back
///       to LUTs (Figure 4's plateau at 360 and the LUT cliff at N=512);
///       mul+add chains additionally get cascade placement, as Vivado
///       2020.1 does with hints, at extra compile cost;
///  - everything else is bit-blasted into an AIG, technology-mapped onto
///    6-LUTs (src/aig), and placed by simulated annealing (src/anneal) —
///    the expensive bit-level pipeline Reticle bypasses.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SYNTH_SYNTH_H
#define RETICLE_SYNTH_SYNTH_H

#include "anneal/Anneal.h"
#include "device/Device.h"
#include "ir/Function.h"
#include "support/Result.h"
#include "timing/Timing.h"
#include "verilog/Ast.h"

namespace reticle {
namespace synth {

/// Baseline flavor: plain behavioral code or behavioral code with
/// vendor-specific DSP hints.
enum class Mode { Base, Hint };

struct SynthOptions {
  Mode SynthMode = Mode::Base;
  device::Device Dev = device::Device::xczu3eg();
  timing::DelayModel Delays;
  anneal::AnnealOptions Anneal;
};

/// Everything one baseline run produces.
struct SynthResult {
  // Utilization (the Figure 4 / Figure 13 quantities).
  unsigned Luts = 0;
  unsigned Dsps = 0;
  unsigned Ffs = 0;
  /// Operations that requested a DSP but were silently mapped to LUTs
  /// after the device ran out (the unpredictability of Section 2).
  unsigned DspFallbacks = 0;

  // Synthesis internals.
  unsigned AigAnds = 0;
  unsigned AigDepth = 0;
  unsigned LutDepth = 0;
  unsigned CascadeChains = 0;

  timing::TimingReport Timing;

  double ElabMs = 0.0;
  double MapMs = 0.0;
  double PlaceMs = 0.0;
  double TotalMs = 0.0;
};

/// Runs the full baseline flow on \p Fn.
Result<SynthResult> synthesize(const ir::Function &Fn,
                               const SynthOptions &Options = {});

/// Renders the behavioral Verilog a vendor tool would consume for \p Fn
/// (Figure 3 style); Hint mode adds the `use_dsp` attribute. For
/// documentation and tests; the synthesizer consumes the IR directly.
verilog::Module emitBehavioral(const ir::Function &Fn, Mode SynthMode);

} // namespace synth
} // namespace reticle

#endif // RETICLE_SYNTH_SYNTH_H
