//===- synth/Synth.cpp - Baseline behavioral toolchain ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "synth/Synth.h"

#include "aig/Aig.h"
#include "aig/Mapper.h"
#include "ir/Verifier.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

using namespace reticle;
using namespace reticle::synth;
using aig::Aig;
using aig::Lit;
using aig::Word;
using ir::CompOp;
using ir::Instr;
using ir::WireOp;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// How the heuristic binder treats each instruction.
enum class Binding : uint8_t {
  Logic,    ///< bit-blasted into the AIG
  Dsp,      ///< some or all lanes on scalar DSPs (see DspLanes)
  FusedMul, ///< multiplication absorbed into a consumer's DSP post-adder
};

/// What a DSP-bound instruction computes.
enum class DspKind : uint8_t { Add, Sub, Mul, MulAdd };

/// Where a timing-graph node's output signal comes from.
struct PseudoInfo {
  enum class Kind : uint8_t { Pi, FfQ, DspOut } SrcKind = Kind::Pi;
  size_t Owner = 0; ///< input index or body index
};

class Synthesizer {
public:
  Synthesizer(const ir::Function &Fn, const SynthOptions &Options)
      : Fn(Fn), Options(Options) {}

  Result<SynthResult> run();

private:
  Status decideBindings();
  Status elaborate();
  Status buildNetlist(const aig::Mapping &Mapping);

  /// Timing-node id that drives the AIG literal \p L, or SIZE_MAX for
  /// constants.
  size_t sourceNode(Lit L, const aig::Mapping &Mapping) const;

  // Def/use facts come from the function's cached analysis (run() warms
  // it through ir::verify); function inputs report NoDef.
  uint32_t defIndexOf(const std::string &Var) const {
    ir::ValueId Id = DU->idOf(Var);
    return Id == ir::InvalidValueId ? ir::DefUse::NoDef
                                    : DU->defIndexOf(Id);
  }
  unsigned useCountOf(const std::string &Var) const {
    ir::ValueId Id = DU->idOf(Var);
    return Id == ir::InvalidValueId ? 0 : DU->useCount(Id);
  }
  Word &wordOf(const std::string &Var) { return Words[DU->idOf(Var)]; }

  const ir::Function &Fn;
  SynthOptions Options;
  SynthResult Out;
  std::shared_ptr<const ir::DefUse> DU;

  // Binding decisions.
  std::vector<Binding> Bindings;
  std::vector<unsigned> DspLanes;            // DSP-bound lane count
  std::map<size_t, DspKind> DspKindOf;       // body index -> kind
  std::map<size_t, size_t> FusedMulOf;       // muladd body idx -> mul idx

  // Elaboration. Words holds each value's AIG literals, by ValueId.
  Aig G;
  std::vector<Word> Words;
  std::vector<PseudoInfo> Pseudo; // per AIG input index

  // Netlist / timing.
  timing::TimingGraph Graph{timing::DelayModel()};
  std::map<size_t, size_t> NodeOfInput;  // fn input idx -> timing node
  std::map<size_t, size_t> NodeOfBody;   // body idx (reg/dsp) -> node
  std::map<uint32_t, size_t> NodeOfLut;  // aig root -> timing node
  std::vector<std::vector<size_t>> Chains; // cascade chains (body idxs)
  std::map<size_t, std::string> CascadePortOf; // consumer -> port variable
  std::map<size_t, size_t> AbsorbedRegOf; // reg body idx -> DSP body idx
  std::set<size_t> DspWithReg;            // DSP ops using PREG
};

Status Synthesizer::decideBindings() {
  const std::vector<Instr> &Body = Fn.body();
  Bindings.assign(Body.size(), Binding::Logic);

  auto IsDspMul = [&](const Instr &I) {
    return I.isComp() && I.compOp() == CompOp::Mul && I.type().isInt() &&
           I.type().width() <= 18;
  };

  // Fusion pre-pass: an add with a single-use DSP-eligible mul operand
  // absorbs it into the DSP post-adder (both modes; standard inference).
  std::set<size_t> Fused;
  for (size_t I = 0; I < Body.size(); ++I) {
    const Instr &Add = Body[I];
    if (!Add.isComp() || Add.compOp() != CompOp::Add)
      continue;
    for (const std::string &Arg : Add.args()) {
      uint32_t Def = defIndexOf(Arg);
      if (Def == ir::DefUse::NoDef || Fused.count(Def))
        continue;
      const Instr &Mul = Body[Def];
      if (!IsDspMul(Mul) || useCountOf(Arg) != 1 ||
          !(Mul.type() == Add.type()))
        continue;
      FusedMulOf[I] = Def;
      Fused.insert(Def);
      break;
    }
  }

  // Budgeted binding in program order. The behavioral flow scalarizes
  // vector operations, so allocation is per lane and exhaustion falls
  // back lane by lane — silently (Section 2's second challenge).
  DspLanes.assign(Body.size(), 0);
  size_t Budget = Options.Dev.numDsps();
  for (size_t I = 0; I < Body.size(); ++I) {
    const Instr &Instr = Body[I];
    if (!Instr.isComp())
      continue;
    unsigned Lanes = Instr.type().lanes();
    auto TakeBudget = [&](DspKind Kind, bool AllOrNothing) {
      unsigned Granted = static_cast<unsigned>(
          std::min<size_t>(Budget, Lanes));
      if (AllOrNothing && Granted < Lanes)
        Granted = 0;
      Out.DspFallbacks += Lanes - Granted;
      if (Granted == 0)
        return false;
      Budget -= Granted;
      Bindings[I] = Binding::Dsp;
      DspLanes[I] = Granted;
      DspKindOf[I] = Kind;
      return true;
    };
    if (FusedMulOf.count(I)) {
      // Fusion targets are scalar mul+add pairs: all or nothing.
      if (TakeBudget(DspKind::MulAdd, /*AllOrNothing=*/true)) {
        Bindings[FusedMulOf[I]] = Binding::FusedMul;
      } else {
        FusedMulOf.erase(I); // un-fuse: both fall back to logic
      }
      continue;
    }
    if (Fused.count(I))
      continue; // decided by its consumer
    if (IsDspMul(Instr)) {
      TakeBudget(DspKind::Mul, /*AllOrNothing=*/false);
      continue;
    }
    if (Options.SynthMode == Mode::Hint && Instr.type().isInt() &&
        Instr.type().width() <= 48 &&
        (Instr.compOp() == CompOp::Add || Instr.compOp() == CompOp::Sub))
      TakeBudget(Instr.compOp() == CompOp::Add ? DspKind::Add
                                               : DspKind::Sub,
                 /*AllOrNothing=*/false);
  }
  // A fused mul whose consumer lost its budget keeps Logic binding; make
  // sure bookkeeping is consistent.
  for ([[maybe_unused]] auto &[AddIdx, MulIdx] : FusedMulOf)
    assert(Bindings[MulIdx] == Binding::FusedMul && "fusion out of sync");

  // Register absorption: a register fed only by a fully DSP-bound
  // operation retimes into the DSP's PREG (standard vendor behavior).
  for (size_t I = 0; I < Body.size(); ++I) {
    if (!Body[I].isReg())
      continue;
    const std::string &Data = Body[I].args()[0];
    uint32_t DataDef = defIndexOf(Data);
    if (DataDef == ir::DefUse::NoDef || useCountOf(Data) != 1)
      continue;
    size_t Def = DataDef;
    if (Bindings[Def] != Binding::Dsp ||
        DspLanes[Def] != Body[Def].type().lanes() || DspWithReg.count(Def))
      continue;
    AbsorbedRegOf[I] = Def;
    DspWithReg.insert(Def);
  }

  // Cascade chains (Hint mode): muladd whose addend is another muladd's
  // single-use result, possibly through one pipeline register (absorbed
  // into the DSP's PREG by real toolchains).
  if (Options.SynthMode == Mode::Hint) {
    std::map<size_t, size_t> NextInChain; // producer -> consumer
    std::set<size_t> HasPredecessor;
    for (auto &[AddIdx, MulIdx] : FusedMulOf) {
      const Instr &Add = Fn.body()[AddIdx];
      for (const std::string &Arg : Add.args()) {
        uint32_t ArgDef = defIndexOf(Arg);
        if (ArgDef == ir::DefUse::NoDef || ArgDef == MulIdx)
          continue;
        size_t Producer = ArgDef;
        if (useCountOf(Arg) != 1)
          continue;
        if (Fn.body()[Producer].isReg()) {
          const std::string &Data = Fn.body()[Producer].args()[0];
          uint32_t Inner = defIndexOf(Data);
          if (Inner == ir::DefUse::NoDef || useCountOf(Data) != 1)
            continue;
          Producer = Inner;
        }
        if (FusedMulOf.count(Producer) &&
            Bindings[Producer] == Binding::Dsp) {
          NextInChain[Producer] = AddIdx;
          HasPredecessor.insert(AddIdx);
          CascadePortOf[AddIdx] = Arg;
        }
      }
    }
    for (auto &[Head, Next] : NextInChain) {
      if (HasPredecessor.count(Head))
        continue;
      std::vector<size_t> Chain = {Head};
      for (auto It = NextInChain.find(Head); It != NextInChain.end();
           It = NextInChain.find(It->second))
        Chain.push_back(It->second);
      if (Chain.size() >= 2)
        Chains.push_back(std::move(Chain));
    }
    Out.CascadeChains = static_cast<unsigned>(Chains.size());
  }
  return Status::success();
}

Status Synthesizer::elaborate() {
  const std::vector<Instr> &Body = Fn.body();

  // Pseudo-inputs: primary inputs, register outputs, DSP outputs.
  for (size_t I = 0; I < Fn.inputs().size(); ++I) {
    const ir::Port &P = Fn.inputs()[I];
    Word W;
    for (unsigned B = 0; B < P.Ty.totalBits(); ++B) {
      W.push_back(G.addInput(P.Name + "[" + std::to_string(B) + "]"));
      Pseudo.push_back({PseudoInfo::Kind::Pi, I});
    }
    wordOf(P.Name) = std::move(W);
  }
  std::map<size_t, Word> DspPrefix; // DSP-bound lanes of partial bindings
  for (size_t I = 0; I < Body.size(); ++I) {
    if (!Body[I].isReg() && Bindings[I] != Binding::Dsp)
      continue;
    bool IsReg = Body[I].isReg();
    if (!IsReg && DspWithReg.count(I))
      continue; // observable only through its absorbed register
    if (IsReg && AbsorbedRegOf.count(I)) {
      // The register output is the DSP's registered P output.
      size_t DspIdx = AbsorbedRegOf.at(I);
      Word W;
      for (unsigned B = 0; B < Body[I].type().totalBits(); ++B) {
        W.push_back(G.addInput(Body[I].dst() + "[" + std::to_string(B) +
                               "]"));
        Pseudo.push_back({PseudoInfo::Kind::DspOut, DspIdx});
      }
      // The DSP's pre-register value is unobservable (single use).
      wordOf(Body[DspIdx].dst()) = W;
      wordOf(Body[I].dst()) = std::move(W);
      continue;
    }
    unsigned Bits = IsReg ? Body[I].type().totalBits()
                          : DspLanes[I] * Body[I].type().width();
    Word W;
    for (unsigned B = 0; B < Bits; ++B) {
      W.push_back(G.addInput(Body[I].dst() + "[" + std::to_string(B) +
                             "]"));
      Pseudo.push_back({IsReg ? PseudoInfo::Kind::FfQ
                              : PseudoInfo::Kind::DspOut,
                        I});
    }
    if (IsReg || DspLanes[I] == Body[I].type().lanes())
      wordOf(Body[I].dst()) = std::move(W);
    else
      DspPrefix[I] = std::move(W); // logic lanes appended during blasting
  }

  // Combinational logic in dependency order.
  Result<std::vector<size_t>> OrderOr = ir::topoOrder(Fn);
  if (!OrderOr)
    return Status::failure(OrderOr.error());
  for (size_t Index : OrderOr.value()) {
    const Instr &I = Body[Index];
    bool PartialDsp = Bindings[Index] == Binding::Dsp &&
                      DspPrefix.count(Index);
    if (Bindings[Index] != Binding::Logic && !PartialDsp)
      continue; // DSP results are pseudo-inputs; fused muls are absorbed
    unsigned W = I.type().width();
    unsigned Lanes = I.type().lanes();
    unsigned FirstLane = PartialDsp ? DspLanes[Index] : 0;
    auto LaneOf = [&](const std::string &Var, unsigned L,
                      unsigned LaneWidth) {
      const Word &Full = wordOf(Var);
      return Word(Full.begin() + L * LaneWidth,
                  Full.begin() + (L + 1) * LaneWidth);
    };
    Word Out;
    if (I.isWire()) {
      switch (I.wireOp()) {
      case WireOp::Const: {
        for (unsigned L = 0; L < Lanes; ++L) {
          int64_t V = I.attrs().size() == 1 ? I.attrs()[0] : I.attrs()[L];
          Word Lane = aig::blastConst(G, static_cast<uint64_t>(V), W);
          Out.insert(Out.end(), Lane.begin(), Lane.end());
        }
        break;
      }
      case WireOp::Id:
        Out = wordOf(I.args()[0]);
        break;
      case WireOp::Slice: {
        const Word &Src = wordOf(I.args()[0]);
        size_t Off = static_cast<size_t>(I.attrs()[0]);
        Out.assign(Src.begin() + Off,
                   Src.begin() + Off + I.type().totalBits());
        break;
      }
      case WireOp::Cat: {
        Out = wordOf(I.args()[0]);
        const Word &Hi = wordOf(I.args()[1]);
        Out.insert(Out.end(), Hi.begin(), Hi.end());
        break;
      }
      case WireOp::Sll:
      case WireOp::Srl:
      case WireOp::Sra: {
        unsigned K = static_cast<unsigned>(I.attrs()[0]);
        for (unsigned L = 0; L < Lanes; ++L) {
          Word Lane = LaneOf(I.args()[0], L, W);
          Word Res(W, Lit::constFalse());
          for (unsigned B = 0; B < W; ++B) {
            if (I.wireOp() == WireOp::Sll) {
              if (B >= K)
                Res[B] = Lane[B - K];
            } else if (I.wireOp() == WireOp::Srl) {
              if (B + K < W)
                Res[B] = Lane[B + K];
            } else {
              Res[B] = Lane[std::min(B + K, W - 1)];
            }
          }
          Out.insert(Out.end(), Res.begin(), Res.end());
        }
        break;
      }
      }
      wordOf(I.dst()) = std::move(Out);
      continue;
    }
    // Compute instructions.
    switch (I.compOp()) {
    case CompOp::Add:
    case CompOp::Sub:
    case CompOp::Mul:
    case CompOp::And:
    case CompOp::Or:
    case CompOp::Xor: {
      if (PartialDsp)
        Out = DspPrefix.at(Index); // DSP lanes first, in lane order
      for (unsigned L = FirstLane; L < Lanes; ++L) {
        Word A = LaneOf(I.args()[0], L, W);
        Word B = LaneOf(I.args()[1], L, W);
        Word Res;
        switch (I.compOp()) {
        case CompOp::Add:
          Res = aig::blastAdd(G, A, B);
          break;
        case CompOp::Sub:
          Res = aig::blastSub(G, A, B);
          break;
        case CompOp::Mul:
          Res = aig::blastMul(G, A, B);
          break;
        case CompOp::And:
          Res = aig::blastAnd(G, A, B);
          break;
        case CompOp::Or:
          Res = aig::blastOr(G, A, B);
          break;
        default:
          Res = aig::blastXor(G, A, B);
          break;
        }
        Out.insert(Out.end(), Res.begin(), Res.end());
      }
      break;
    }
    case CompOp::Not:
      Out = aig::blastNot(G, wordOf(I.args()[0]));
      break;
    case CompOp::Eq:
      Out = {aig::blastEq(G, wordOf(I.args()[0]),
                          wordOf(I.args()[1]))};
      break;
    case CompOp::Neq:
      Out = {~aig::blastEq(G, wordOf(I.args()[0]),
                           wordOf(I.args()[1]))};
      break;
    case CompOp::Lt:
      Out = {aig::blastLtSigned(G, wordOf(I.args()[0]),
                                wordOf(I.args()[1]))};
      break;
    case CompOp::Gt:
      Out = {aig::blastLtSigned(G, wordOf(I.args()[1]),
                                wordOf(I.args()[0]))};
      break;
    case CompOp::Le:
      Out = {~aig::blastLtSigned(G, wordOf(I.args()[1]),
                                 wordOf(I.args()[0]))};
      break;
    case CompOp::Ge:
      Out = {~aig::blastLtSigned(G, wordOf(I.args()[0]),
                                 wordOf(I.args()[1]))};
      break;
    case CompOp::Mux:
      Out = aig::blastMux(G, wordOf(I.args()[0])[0],
                          wordOf(I.args()[1]), wordOf(I.args()[2]));
      break;
    case CompOp::Reg:
      return Status::failure("registers cannot be Logic-bound");
    }
    wordOf(I.dst()) = std::move(Out);
  }

  // Register the AIG outputs that anchor mapping: flip-flop D and enable
  // bits, DSP input ports, and primary outputs.
  auto AddWordOutputs = [&](const std::string &Tag, const Word &W) {
    for (size_t B = 0; B < W.size(); ++B)
      G.addOutput(Tag + "[" + std::to_string(B) + "]", W[B]);
  };
  for (size_t I = 0; I < Body.size(); ++I) {
    const Instr &Instr = Body[I];
    if (Instr.isReg()) {
      if (AbsorbedRegOf.count(I)) {
        // Only the clock enable reaches the DSP's CEP pin.
        AddWordOutputs(Instr.dst() + ".ce", wordOf(Instr.args()[1]));
        continue;
      }
      AddWordOutputs(Instr.dst() + ".d", wordOf(Instr.args()[0]));
      AddWordOutputs(Instr.dst() + ".en", wordOf(Instr.args()[1]));
      continue;
    }
    if (Bindings[I] != Binding::Dsp)
      continue;
    std::vector<std::string> Ports;
    if (auto It = FusedMulOf.find(I); It != FusedMulOf.end()) {
      const ir::Instr &Mul = Body[It->second];
      Ports = {Mul.args()[0], Mul.args()[1]};
      for (const std::string &Arg : Instr.args())
        if (Arg != Mul.dst())
          Ports.push_back(Arg);
    } else {
      Ports = Instr.args();
    }
    for (const std::string &Port : Ports)
      AddWordOutputs(Instr.dst() + "." + Port, wordOf(Port));
  }
  for (const ir::Port &P : Fn.outputs())
    AddWordOutputs("out." + P.Name, wordOf(P.Name));

  Out.AigAnds = G.numAnds();
  Out.AigDepth = G.depth();
  return Status::success();
}

size_t Synthesizer::sourceNode(Lit L, const aig::Mapping &Mapping) const {
  uint32_t Node = L.node();
  if (Node == 0)
    return SIZE_MAX; // constant
  if (G.isInput(Node)) {
    const PseudoInfo &Info = Pseudo[Node - 1];
    if (Info.SrcKind == PseudoInfo::Kind::Pi)
      return NodeOfInput.at(Info.Owner);
    return NodeOfBody.at(Info.Owner);
  }
  assert(Mapping.LutOfRoot.count(Node) && "consumed node was not mapped");
  return NodeOfLut.at(Node);
}

Status Synthesizer::buildNetlist(const aig::Mapping &Mapping) {
  Graph = timing::TimingGraph(Options.Delays);
  const std::vector<Instr> &Body = Fn.body();

  // Timing nodes for primary inputs.
  for (size_t I = 0; I < Fn.inputs().size(); ++I) {
    timing::TimingNode N;
    N.Name = Fn.inputs()[I].Name;
    NodeOfInput[I] = Graph.addNode(std::move(N));
  }
  // Registers and DSP operations.
  for (size_t I = 0; I < Body.size(); ++I) {
    if (Body[I].isReg()) {
      if (AbsorbedRegOf.count(I))
        continue; // lives inside its DSP's PREG
      timing::TimingNode N;
      N.Name = Body[I].dst();
      N.RegisteredOutput = true;
      NodeOfBody[I] = Graph.addNode(std::move(N));
      Out.Ffs += Body[I].type().totalBits();
      continue;
    }
    if (Bindings[I] != Binding::Dsp)
      continue;
    timing::TimingNode N;
    N.Name = Body[I].dst();
    N.RegisteredOutput = DspWithReg.count(I) > 0;
    switch (DspKindOf.at(I)) {
    case DspKind::Add:
    case DspKind::Sub:
      N.Delay = Options.Delays.DspAlu;
      break;
    case DspKind::Mul:
      N.Delay = Options.Delays.DspMul;
      break;
    case DspKind::MulAdd:
      N.Delay = Options.Delays.DspMulAdd;
      break;
    }
    Out.Dsps += DspLanes[I];
    NodeOfBody[I] = Graph.addNode(std::move(N));
  }
  // Mapped LUTs.
  for (const aig::MappedLut &L : Mapping.Luts) {
    timing::TimingNode N;
    N.Name = "lut" + std::to_string(L.Root);
    N.Delay = Options.Delays.LutLogic;
    NodeOfLut[L.Root] = Graph.addNode(std::move(N));
  }
  Out.Luts = static_cast<unsigned>(Mapping.Luts.size());
  Out.LutDepth = Mapping.Depth;

  // Edges: LUT leaves.
  for (const aig::MappedLut &L : Mapping.Luts)
    for (uint32_t Leaf : L.Leaves) {
      size_t Src = sourceNode(Lit(Leaf, false), Mapping);
      if (Src != SIZE_MAX)
        Graph.addEdge(Src, NodeOfLut.at(L.Root));
    }
  // Edges: register D/enable and DSP ports.
  auto AddWordEdges = [&](const Word &W, size_t To, bool Cascade) {
    std::set<size_t> Seen;
    for (Lit L : W) {
      size_t Src = sourceNode(L, Mapping);
      if (Src != SIZE_MAX && Seen.insert(Src).second)
        Graph.addEdge(Src, To, Cascade);
    }
  };
  for (size_t I = 0; I < Body.size(); ++I) {
    const Instr &Instr = Body[I];
    if (Instr.isReg()) {
      if (auto It = AbsorbedRegOf.find(I); It != AbsorbedRegOf.end()) {
        // The enable reaches the DSP's CEP pin; the data path is internal.
        AddWordEdges(wordOf(Instr.args()[1]), NodeOfBody.at(It->second),
                     false);
        continue;
      }
      AddWordEdges(wordOf(Instr.args()[0]), NodeOfBody.at(I), false);
      AddWordEdges(wordOf(Instr.args()[1]), NodeOfBody.at(I), false);
      continue;
    }
    if (Bindings[I] != Binding::Dsp)
      continue;
    size_t To = NodeOfBody.at(I);
    auto PortIt = CascadePortOf.find(I);
    std::string PredDst = PortIt != CascadePortOf.end() ? PortIt->second
                                                        : std::string();
    std::vector<std::string> Ports;
    if (auto It = FusedMulOf.find(I); It != FusedMulOf.end()) {
      const ir::Instr &Mul = Body[It->second];
      Ports = {Mul.args()[0], Mul.args()[1]};
      for (const std::string &Arg : Instr.args())
        if (Arg != Mul.dst())
          Ports.push_back(Arg);
    } else {
      Ports = Instr.args();
    }
    for (const std::string &Port : Ports)
      AddWordEdges(wordOf(Port), To, Port == PredDst);
  }

  // --- Cells for annealing ---------------------------------------------
  std::vector<anneal::Cell> Cells;
  std::vector<size_t> CellOfNode(Graph.nodes().size(), SIZE_MAX);
  std::map<size_t, size_t> CellOfBody; // DSP body idx -> cell

  // DSP and FF cells (FFs pack 16 bits per slice cell; the first cell
  // position stands for the group).
  for (auto &[BodyIdx, NodeId] : NodeOfBody) {
    const Instr &Instr = Body[BodyIdx];
    if (Instr.isReg()) {
      anneal::Cell C;
      C.Name = Instr.dst();
      C.Kind = ir::Resource::Lut; // FFs live in LUT slices
      CellOfNode[NodeId] = Cells.size();
      Cells.push_back(std::move(C));
      continue;
    }
    unsigned Lanes = DspLanes[BodyIdx];
    anneal::Cell C;
    C.Name = Instr.dst();
    C.Kind = ir::Resource::Dsp;
    CellOfNode[NodeId] = Cells.size();
    CellOfBody[BodyIdx] = Cells.size();
    Cells.push_back(std::move(C));
    // Extra lanes of a scalarized vector op occupy further DSP cells that
    // share the timing node's placement influence.
    for (unsigned L = 1; L < Lanes; ++L) {
      anneal::Cell Extra;
      Extra.Name = Instr.dst() + "#" + std::to_string(L);
      Extra.Kind = ir::Resource::Dsp;
      Cells.push_back(std::move(Extra));
    }
  }
  // LUT slice cells: eight mapped LUTs per slice, in creation order.
  std::vector<size_t> SliceOfLut(Mapping.Luts.size());
  size_t NumLutSliceCells = (Mapping.Luts.size() + 7) / 8;
  std::vector<size_t> LutSliceCell(NumLutSliceCells);
  for (size_t S = 0; S < NumLutSliceCells; ++S) {
    anneal::Cell C;
    C.Name = "slice" + std::to_string(S);
    C.Kind = ir::Resource::Lut;
    LutSliceCell[S] = Cells.size();
    Cells.push_back(std::move(C));
  }
  for (size_t L = 0; L < Mapping.Luts.size(); ++L) {
    SliceOfLut[L] = L / 8;
    CellOfNode[NodeOfLut.at(Mapping.Luts[L].Root)] =
        LutSliceCell[L / 8];
  }

  // Nets: one star net per driver cell over its sink cells.
  std::map<size_t, std::set<size_t>> Star;
  for (size_t N = 0; N < Graph.nodes().size(); ++N)
    for (size_t F : Graph.nodes()[N].Fanin) {
      size_t A = CellOfNode[F], B = CellOfNode[N];
      if (A == SIZE_MAX || B == SIZE_MAX || A == B)
        continue;
      Star[A].insert(B);
    }
  std::vector<anneal::Net> Nets;
  for (auto &[Driver, Sinks] : Star) {
    anneal::Net Net;
    Net.Cells.push_back(Driver);
    Net.Cells.insert(Net.Cells.end(), Sinks.begin(), Sinks.end());
    Nets.push_back(std::move(Net));
  }

  auto PlaceStart = std::chrono::steady_clock::now();
  Result<anneal::AnnealResult> Placed =
      anneal::place(Cells, Nets, Options.Dev, Options.Anneal);
  Out.PlaceMs = msSince(PlaceStart);
  if (!Placed)
    return Status::failure(Placed.error());

  // Legalize cascade chains (Hint mode): a cascaded pair must sit in
  // vertically adjacent DSP slots, so each chain moves to a free column
  // segment and the displaced cells take over the vacated slots.
  if (!Chains.empty()) {
    std::vector<device::Slot> &SlotOf = Placed.value().SlotOf;
    std::map<device::Slot, size_t> CellAt;
    for (size_t C = 0; C < Cells.size(); ++C)
      if (Cells[C].Kind == ir::Resource::Dsp)
        CellAt[SlotOf[C]] = C;
    std::vector<unsigned> DspCols =
        Options.Dev.columnsOf(ir::Resource::Dsp);
    std::vector<unsigned> NextRow(DspCols.size(), 0);
    for (const std::vector<size_t> &Chain : Chains) {
      size_t Column = DspCols.size();
      for (size_t C = 0; C < DspCols.size(); ++C) {
        if (NextRow[C] + Chain.size() <=
            Options.Dev.columns()[DspCols[C]].Height) {
          Column = C;
          break;
        }
      }
      if (Column == DspCols.size())
        continue; // no room: the chain keeps general routing placement
      for (size_t K = 0; K < Chain.size(); ++K) {
        size_t Cell = CellOfBody.at(Chain[K]);
        device::Slot Target{DspCols[Column], NextRow[Column] + unsigned(K)};
        device::Slot Old = SlotOf[Cell];
        if (Target == Old)
          continue;
        auto It = CellAt.find(Target);
        if (It != CellAt.end()) {
          size_t Displaced = It->second;
          SlotOf[Displaced] = Old;
          CellAt[Old] = Displaced;
        } else {
          CellAt.erase(Old);
        }
        SlotOf[Cell] = Target;
        CellAt[Target] = Cell;
      }
      NextRow[Column] += static_cast<unsigned>(Chain.size());
    }
  }

  // Positions flow back into the timing graph.
  for (size_t N = 0; N < Graph.nodes().size(); ++N) {
    size_t Cell = CellOfNode[N];
    if (Cell == SIZE_MAX)
      continue;
    const device::Slot &S = Placed.value().SlotOf[Cell];
    timing::TimingNode &Node = Graph.node(N);
    Node.HasPosition = true;
    Node.X = static_cast<int>(S.X);
    Node.Y = static_cast<int>(S.Y);
  }
  return Status::success();
}

Result<SynthResult> Synthesizer::run() {
  using ResultT = SynthResult;
  auto Total = std::chrono::steady_clock::now();
  if (Status S = ir::verify(Fn); !S)
    return fail<ResultT>(S.error());
  // Verification warmed the function's analysis; share it for the whole
  // synthesis run and size the per-value AIG word table off it.
  DU = Fn.defUseShared();
  Words.resize(DU->numValues());

  auto Start = std::chrono::steady_clock::now();
  if (Status S = decideBindings(); !S)
    return fail<ResultT>(S.error());
  if (Status S = elaborate(); !S)
    return fail<ResultT>(S.error());
  Out.ElabMs = msSince(Start);

  Start = std::chrono::steady_clock::now();
  Result<aig::Mapping> Mapping = aig::mapAig(G, 6);
  if (!Mapping)
    return fail<ResultT>(Mapping.error());
  Out.MapMs = msSince(Start);

  if (Status S = buildNetlist(Mapping.value()); !S)
    return fail<ResultT>(S.error());

  Result<timing::TimingReport> Report = Graph.analyze();
  if (!Report)
    return fail<ResultT>(Report.error());
  Out.Timing = Report.take();
  Out.TotalMs = msSince(Total);
  return Out;
}

} // namespace

Result<SynthResult> reticle::synth::synthesize(const ir::Function &Fn,
                                               const SynthOptions &Options) {
  Synthesizer S(Fn, Options);
  return S.run();
}

verilog::Module reticle::synth::emitBehavioral(const ir::Function &Fn,
                                               Mode SynthMode) {
  using verilog::Dir;
  using verilog::Expr;
  verilog::Module M(Fn.name());
  if (SynthMode == Mode::Hint)
    M.addComment("(* use_dsp = \"yes\" *)");
  M.addPort(Dir::Input, "clock");
  for (const ir::Port &P : Fn.inputs())
    M.addPort(Dir::Input, P.Name,
              P.Ty.totalBits() > 1 ? P.Ty.totalBits() : 0);
  for (const ir::Port &P : Fn.outputs())
    M.addPort(Dir::Output, P.Name,
              P.Ty.totalBits() > 1 ? P.Ty.totalBits() : 0);

  std::set<std::string> PortNames = {"clock"};
  for (const ir::Port &P : Fn.inputs())
    PortNames.insert(P.Name);
  for (const ir::Port &P : Fn.outputs())
    PortNames.insert(P.Name);

  for (const Instr &I : Fn.body()) {
    if (PortNames.count(I.dst()))
      continue;
    if (I.isReg())
      M.addReg(I.dst(), I.type().totalBits() > 1 ? I.type().totalBits() : 0);
    else
      M.addWire(I.dst(),
                I.type().totalBits() > 1 ? I.type().totalBits() : 0);
  }

  // Behavioral statements: one per-lane assign per word operation (vector
  // semantics unroll, the "behavioral, scalar" shape of Figure 3/4).
  for (const Instr &I : Fn.body()) {
    unsigned W = I.type().width();
    unsigned Lanes = I.type().lanes();
    auto LaneExpr = [&](const std::string &Var, unsigned L) {
      if (Lanes == 1)
        return Expr::ref(Var);
      return Expr::range(Expr::ref(Var), L * W + W - 1, L * W);
    };
    if (I.isReg()) {
      verilog::Item &A = M.addAlwaysFF("clock");
      verilog::NonBlocking S;
      S.GuardName = I.args()[1];
      S.Lhs = Expr::ref(I.dst());
      S.Rhs = Expr::ref(I.args()[0]);
      A.Body.push_back(S);
      continue;
    }
    if (I.isWire() && I.wireOp() == WireOp::Const) {
      std::vector<Expr> Parts;
      for (unsigned L = Lanes; L-- > 0;) {
        int64_t V = I.attrs().size() == 1 ? I.attrs()[0] : I.attrs()[L];
        uint64_t Mask = W == 64 ? ~uint64_t(0) : ((uint64_t(1) << W) - 1);
        Parts.push_back(Expr::intLit(W, uint64_t(V) & Mask));
      }
      M.addAssign(Expr::ref(I.dst()),
                  Parts.size() == 1 ? Parts[0] : Expr::concat(Parts));
      continue;
    }
    const char *Op = nullptr;
    switch (I.isWire() ? CompOp::Add : I.compOp()) {
    case CompOp::Add:
      Op = "+";
      break;
    case CompOp::Sub:
      Op = "-";
      break;
    case CompOp::Mul:
      Op = "*";
      break;
    case CompOp::And:
      Op = "&";
      break;
    case CompOp::Or:
      Op = "|";
      break;
    case CompOp::Xor:
      Op = "^";
      break;
    case CompOp::Eq:
      Op = "==";
      break;
    case CompOp::Neq:
      Op = "!=";
      break;
    case CompOp::Lt:
      Op = "<";
      break;
    case CompOp::Gt:
      Op = ">";
      break;
    case CompOp::Le:
      Op = "<=";
      break;
    case CompOp::Ge:
      Op = ">=";
      break;
    default:
      break;
    }
    if (I.isWire()) {
      // Shifts, slices, and concatenations render as generic expressions.
      switch (I.wireOp()) {
      case WireOp::Id:
        M.addAssign(Expr::ref(I.dst()), Expr::ref(I.args()[0]));
        break;
      case WireOp::Sll:
        M.addAssign(Expr::ref(I.dst()),
                    Expr::binary("<<", Expr::ref(I.args()[0]),
                                 Expr::intLit(32, I.attrs()[0])));
        break;
      case WireOp::Srl:
      case WireOp::Sra:
        M.addAssign(Expr::ref(I.dst()),
                    Expr::binary(">>", Expr::ref(I.args()[0]),
                                 Expr::intLit(32, I.attrs()[0])));
        break;
      case WireOp::Slice:
        M.addAssign(Expr::ref(I.dst()),
                    Expr::range(Expr::ref(I.args()[0]),
                                unsigned(I.attrs()[0]) +
                                    I.type().totalBits() - 1,
                                unsigned(I.attrs()[0])));
        break;
      case WireOp::Cat:
        M.addAssign(Expr::ref(I.dst()),
                    Expr::concat({Expr::ref(I.args()[1]),
                                  Expr::ref(I.args()[0])}));
        break;
      case WireOp::Const:
        break; // handled above
      }
      continue;
    }
    if (I.compOp() == CompOp::Mux) {
      M.addAssign(Expr::ref(I.dst()),
                  Expr::ternary(Expr::ref(I.args()[0]),
                                Expr::ref(I.args()[1]),
                                Expr::ref(I.args()[2])));
      continue;
    }
    if (I.compOp() == CompOp::Not) {
      M.addAssign(Expr::ref(I.dst()),
                  Expr::unary("~", Expr::ref(I.args()[0])));
      continue;
    }
    assert(Op && "unhandled behavioral operation");
    for (unsigned L = 0; L < Lanes; ++L)
      M.addAssign(LaneExpr(I.dst(), L),
                  Expr::binary(Op, LaneExpr(I.args()[0], L),
                               LaneExpr(I.args()[1], L)));
  }
  return M;
}
