//===- verilog/Ast.cpp - Verilog abstract syntax --------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "verilog/Ast.h"

#include <cassert>

using namespace reticle;
using namespace reticle::verilog;

Expr Expr::ref(std::string Name) {
  Expr E;
  E.ExprKind = Kind::Ref;
  E.Name = std::move(Name);
  return E;
}

Expr Expr::intLit(unsigned Width, uint64_t Value) {
  Expr E;
  E.ExprKind = Kind::IntLit;
  E.Width = Width;
  E.Value = Value;
  return E;
}

Expr Expr::str(std::string Value) {
  Expr E;
  E.ExprKind = Kind::Str;
  E.Name = std::move(Value);
  return E;
}

Expr Expr::index(Expr Base, unsigned Index) {
  Expr E;
  E.ExprKind = Kind::Index;
  E.Width = Index;
  E.Operands.push_back(std::move(Base));
  return E;
}

Expr Expr::range(Expr Base, unsigned Hi, unsigned Lo) {
  assert(Hi >= Lo && "inverted range");
  Expr E;
  E.ExprKind = Kind::Range;
  E.Width = Hi;
  E.Lo = Lo;
  E.Operands.push_back(std::move(Base));
  return E;
}

Expr Expr::concat(std::vector<Expr> Parts) {
  assert(!Parts.empty() && "empty concatenation");
  Expr E;
  E.ExprKind = Kind::Concat;
  E.Operands = std::move(Parts);
  return E;
}

Expr Expr::repeat(unsigned Count, Expr Part) {
  Expr E;
  E.ExprKind = Kind::Repeat;
  E.Width = Count;
  E.Operands.push_back(std::move(Part));
  return E;
}

Expr Expr::unary(std::string Op, Expr A) {
  Expr E;
  E.ExprKind = Kind::Unary;
  E.Name = std::move(Op);
  E.Operands.push_back(std::move(A));
  return E;
}

Expr Expr::binary(std::string Op, Expr A, Expr B) {
  Expr E;
  E.ExprKind = Kind::Binary;
  E.Name = std::move(Op);
  E.Operands.push_back(std::move(A));
  E.Operands.push_back(std::move(B));
  return E;
}

Expr Expr::ternary(Expr C, Expr A, Expr B) {
  Expr E;
  E.ExprKind = Kind::Ternary;
  E.Operands.push_back(std::move(C));
  E.Operands.push_back(std::move(A));
  E.Operands.push_back(std::move(B));
  return E;
}

std::string Expr::str() const {
  switch (ExprKind) {
  case Kind::Ref:
    return Name;
  case Kind::IntLit: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%llx",
                  static_cast<unsigned long long>(Value));
    return std::to_string(Width) + "'h" + Buf;
  }
  case Kind::Str:
    return "\"" + Name + "\"";
  case Kind::Index:
    return Operands[0].str() + "[" + std::to_string(Width) + "]";
  case Kind::Range:
    return Operands[0].str() + "[" + std::to_string(Width) + ":" +
           std::to_string(Lo) + "]";
  case Kind::Concat: {
    std::string Out = "{";
    for (size_t I = 0; I < Operands.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Operands[I].str();
    }
    return Out + "}";
  }
  case Kind::Repeat:
    return "{" + std::to_string(Width) + "{" + Operands[0].str() + "}}";
  case Kind::Unary:
    return "(" + Name + Operands[0].str() + ")";
  case Kind::Binary:
    return "(" + Operands[0].str() + " " + Name + " " + Operands[1].str() +
           ")";
  case Kind::Ternary:
    return "(" + Operands[0].str() + " ? " + Operands[1].str() + " : " +
           Operands[2].str() + ")";
  }
  return "";
}

void Module::addWire(std::string WireName, unsigned Width) {
  Item I;
  I.ItemKind = Item::Kind::Wire;
  I.Name = std::move(WireName);
  I.Width = Width;
  Items.push_back(std::move(I));
}

void Module::addReg(std::string RegName, unsigned Width) {
  Item I;
  I.ItemKind = Item::Kind::Reg;
  I.Name = std::move(RegName);
  I.Width = Width;
  Items.push_back(std::move(I));
}

void Module::addAssign(Expr Lhs, Expr Rhs) {
  Item I;
  I.ItemKind = Item::Kind::Assign;
  I.Lhs = std::move(Lhs);
  I.Rhs = std::move(Rhs);
  Items.push_back(std::move(I));
}

void Module::addComment(std::string Text) {
  Item I;
  I.ItemKind = Item::Kind::Comment;
  I.Text = std::move(Text);
  Items.push_back(std::move(I));
}

Item Module::makeInstance(std::string ModuleName, std::string InstName) {
  Item I;
  I.ItemKind = Item::Kind::Instance;
  I.ModuleName = std::move(ModuleName);
  I.InstName = std::move(InstName);
  return I;
}

Item &Module::addInstance(std::string ModuleName, std::string InstName) {
  Items.push_back(makeInstance(std::move(ModuleName), std::move(InstName)));
  return Items.back();
}

Item &Module::addAlwaysFF(std::string Clock) {
  Item I;
  I.ItemKind = Item::Kind::AlwaysFF;
  I.Clock = std::move(Clock);
  Items.push_back(std::move(I));
  return Items.back();
}

unsigned Module::countInstances(const std::string &Prefix) const {
  unsigned Count = 0;
  for (const Item &I : Items)
    if (I.ItemKind == Item::Kind::Instance &&
        I.ModuleName.compare(0, Prefix.size(), Prefix) == 0)
      ++Count;
  return Count;
}

namespace {

std::string rangeDecl(unsigned Width) {
  if (Width == 0)
    return "";
  return "[" + std::to_string(Width - 1) + ":0] ";
}

} // namespace

std::string Module::str() const {
  std::string Out = "module " + Name + "(\n";
  for (size_t I = 0; I < Ports.size(); ++I) {
    const Port &P = Ports[I];
    Out += "  ";
    Out += P.Direction == Dir::Input ? "input " : "output ";
    Out += rangeDecl(P.Width);
    Out += P.Name;
    Out += I + 1 < Ports.size() ? ",\n" : "\n";
  }
  Out += ");\n";
  for (const Item &I : Items) {
    switch (I.ItemKind) {
    case Item::Kind::Wire:
      Out += "  wire " + rangeDecl(I.Width) + I.Name + ";\n";
      break;
    case Item::Kind::Reg:
      Out += "  reg " + rangeDecl(I.Width) + I.Name + ";\n";
      break;
    case Item::Kind::Assign:
      Out += "  assign " + I.Lhs.str() + " = " + I.Rhs.str() + ";\n";
      break;
    case Item::Kind::Comment:
      Out += "  // " + I.Text + "\n";
      break;
    case Item::Kind::Instance: {
      for (const Attribute &A : I.Attributes)
        Out += "  (* " + A.Name + " = \"" + A.Value + "\" *)\n";
      Out += "  " + I.ModuleName;
      if (!I.Params.empty()) {
        Out += " # (";
        for (size_t K = 0; K < I.Params.size(); ++K) {
          if (K)
            Out += ", ";
          Out += "." + I.Params[K].first + "(" + I.Params[K].second.str() +
                 ")";
        }
        Out += ")";
      }
      Out += "\n    " + I.InstName + " (";
      for (size_t K = 0; K < I.Connections.size(); ++K) {
        if (K)
          Out += ", ";
        Out += "." + I.Connections[K].first + "(" +
               I.Connections[K].second.str() + ")";
      }
      Out += ");\n";
      break;
    }
    case Item::Kind::AlwaysFF: {
      Out += "  always @(posedge " + I.Clock + ") begin\n";
      for (const NonBlocking &S : I.Body) {
        Out += "    ";
        if (!S.GuardName.empty())
          Out += "if (" + S.GuardName + ") ";
        Out += S.Lhs.str() + " <= " + S.Rhs.str() + ";\n";
      }
      Out += "  end\n";
      break;
    }
    }
  }
  Out += "endmodule\n";
  return Out;
}
