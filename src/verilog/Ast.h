//===- verilog/Ast.h - Verilog abstract syntax ------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Verilog AST and pretty printer, the counterpart of the separate
/// Verilog AST library the paper's implementation uses for code
/// generation (Section 6). It covers the structural subset Reticle emits
/// (primitive instances with parameters and attributes, wires, assigns)
/// plus the small behavioral subset the baseline generators need
/// (always @(posedge) blocks with guarded non-blocking assigns).
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_VERILOG_AST_H
#define RETICLE_VERILOG_AST_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace reticle {
namespace verilog {

/// A Verilog expression tree.
class Expr {
public:
  enum class Kind : uint8_t {
    Ref,     ///< identifier
    IntLit,  ///< sized literal, e.g. 8'h2a
    Str,     ///< string literal (parameter values)
    Index,   ///< a[i]
    Range,   ///< a[hi:lo]
    Concat,  ///< {a, b, ...} (operands most-significant first)
    Repeat,  ///< {n{a}}
    Unary,   ///< op a
    Binary,  ///< a op b
    Ternary, ///< c ? a : b
  };

  static Expr ref(std::string Name);
  static Expr intLit(unsigned Width, uint64_t Value);
  static Expr str(std::string Value);
  static Expr index(Expr Base, unsigned Index);
  static Expr range(Expr Base, unsigned Hi, unsigned Lo);
  static Expr concat(std::vector<Expr> Parts);
  static Expr repeat(unsigned Count, Expr Part);
  static Expr unary(std::string Op, Expr A);
  static Expr binary(std::string Op, Expr A, Expr B);
  static Expr ternary(Expr C, Expr A, Expr B);

  Kind kind() const { return ExprKind; }

  /// Structural accessors (used by the netlist simulator).
  const std::string &name() const { return Name; }
  unsigned width() const { return Width; } ///< IntLit width / Index pos /
                                           ///< Range hi / Repeat count
  unsigned lo() const { return Lo; }       ///< Range lo
  uint64_t value() const { return Value; } ///< IntLit payload
  const std::vector<Expr> &operands() const { return Operands; }

  /// Renders the expression.
  std::string str() const;

private:
  Kind ExprKind = Kind::Ref;
  std::string Name;     // Ref identifier, operator, or string payload
  unsigned Width = 0;   // IntLit width, Index position, Range hi, Repeat n
  unsigned Lo = 0;      // Range lo
  uint64_t Value = 0;   // IntLit value
  std::vector<Expr> Operands;
};

/// Port direction.
enum class Dir : uint8_t { Input, Output };

/// A module port; Width 0 denotes a scalar (1-bit, no range).
struct Port {
  Dir Direction = Dir::Input;
  std::string Name;
  unsigned Width = 0;
};

/// A `(* name = "value" *)` attribute.
struct Attribute {
  std::string Name;
  std::string Value;
};

/// One statement inside an always block: `if (Guard) Lhs <= Rhs;` with an
/// optional guard.
struct NonBlocking {
  std::string GuardName; ///< empty = unconditional
  Expr Lhs = Expr::ref("");
  Expr Rhs = Expr::ref("");
};

/// A module item.
struct Item {
  enum class Kind : uint8_t {
    Wire,     ///< wire [w-1:0] name;
    Reg,      ///< reg [w-1:0] name;  (behavioral subset)
    Assign,   ///< assign lhs = rhs;
    Instance, ///< primitive/module instantiation
    AlwaysFF, ///< always @(posedge clock) begin ... end
    Comment,  ///< // text
  };

  Kind ItemKind = Kind::Comment;
  // Wire / Reg.
  std::string Name;
  unsigned Width = 0;
  // Assign.
  Expr Lhs = Expr::ref("");
  Expr Rhs = Expr::ref("");
  // Instance.
  std::string ModuleName;
  std::string InstName;
  std::vector<Attribute> Attributes;
  std::vector<std::pair<std::string, Expr>> Params;
  std::vector<std::pair<std::string, Expr>> Connections;
  // AlwaysFF.
  std::string Clock;
  std::vector<NonBlocking> Body;
  // Comment.
  std::string Text;
};

/// A Verilog module.
class Module {
public:
  Module() = default;
  explicit Module(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  void addPort(Dir Direction, std::string PortName, unsigned Width = 0) {
    Ports.push_back(Port{Direction, std::move(PortName), Width});
  }
  void addWire(std::string WireName, unsigned Width = 0);
  void addReg(std::string RegName, unsigned Width = 0);
  void addAssign(Expr Lhs, Expr Rhs);
  void addComment(std::string Text);

  /// Appends a fully built item. Prefer this over mutating the reference
  /// returned by addInstance/addAlwaysFF when other items are added in
  /// between (the reference would dangle).
  void addItem(Item I) { Items.push_back(std::move(I)); }

  /// Creates a blank instance item. Callers fill params/connections and
  /// pass it to addItem().
  static Item makeInstance(std::string ModuleName, std::string InstName);

  Item &addInstance(std::string ModuleName, std::string InstName);
  Item &addAlwaysFF(std::string Clock);

  const std::vector<Port> &ports() const { return Ports; }
  const std::vector<Item> &items() const { return Items; }

  /// Counts instances of primitives whose module name starts with
  /// \p Prefix (e.g. "LUT", "DSP48E2", "FDRE"); used by utilization
  /// reporting.
  unsigned countInstances(const std::string &Prefix) const;

  /// Renders the module.
  std::string str() const;

private:
  std::string Name;
  std::vector<Port> Ports;
  std::vector<Item> Items;
};

} // namespace verilog
} // namespace reticle

#endif // RETICLE_VERILOG_AST_H
