//===- support/Lexer.cpp - Shared token stream ----------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/Lexer.h"

#include <cctype>

using namespace reticle;

const char *reticle::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::Int:
    return "integer";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::At:
    return "'@'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Hole:
    return "'_'";
  case TokenKind::Wildcard:
    return "'?\?'";
  case TokenKind::Eof:
    return "end of input";
  }
  return "unknown";
}

Lexer::Lexer(const std::string &Source) { tokenize(Source); }

const Token &Lexer::peek(unsigned LookAhead) const {
  size_t Index = Cursor + LookAhead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // Eof sentinel
  return Tokens[Index];
}

const Token &Lexer::next() {
  const Token &Current = peek();
  if (Cursor + 1 < Tokens.size())
    ++Cursor;
  return Current;
}

bool Lexer::accept(TokenKind Kind) {
  if (!at(Kind))
    return false;
  next();
  return true;
}

bool Lexer::atIdent(const std::string &Text) const {
  const Token &Current = peek();
  return Current.Kind == TokenKind::Ident && Current.Text == Text;
}

void Lexer::tokenize(const std::string &Source) {
  unsigned Line = 1, Col = 1;
  size_t I = 0, N = Source.size();

  auto Emit = [&](TokenKind Kind, unsigned TokLine, unsigned TokCol) {
    Token T;
    T.Kind = Kind;
    T.Line = TokLine;
    T.Col = TokCol;
    Tokens.push_back(std::move(T));
  };

  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      Col = 1;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Col;
      ++I;
      continue;
    }
    // Line comments.
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    unsigned TokLine = Line, TokCol = Col;
    // Identifiers and keywords. '_' alone is an attribute hole; '_' followed
    // by alphanumerics is a normal identifier character, and identifiers may
    // contain '_' anywhere.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      std::string Text = Source.substr(Start, I - Start);
      Col += static_cast<unsigned>(I - Start);
      if (Text == "_") {
        Emit(TokenKind::Hole, TokLine, TokCol);
      } else {
        Token T;
        T.Kind = TokenKind::Ident;
        T.Text = std::move(Text);
        T.Line = TokLine;
        T.Col = TokCol;
        Tokens.push_back(std::move(T));
      }
      continue;
    }
    // Integer literals, including negative ones. '-' is only negative when
    // not forming '->'.
    bool NegativeStart =
        C == '-' && I + 1 < N &&
        std::isdigit(static_cast<unsigned char>(Source[I + 1]));
    if (std::isdigit(static_cast<unsigned char>(C)) || NegativeStart) {
      size_t Start = I;
      if (NegativeStart)
        ++I;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      std::string Text = Source.substr(Start, I - Start);
      Col += static_cast<unsigned>(I - Start);
      Token T;
      T.Kind = TokenKind::Int;
      T.Line = TokLine;
      T.Col = TokCol;
      T.IntValue = std::stoll(Text);
      Tokens.push_back(std::move(T));
      continue;
    }
    // Two-character punctuation.
    if (C == '-' && I + 1 < N && Source[I + 1] == '>') {
      Emit(TokenKind::Arrow, TokLine, TokCol);
      I += 2;
      Col += 2;
      continue;
    }
    if (C == '?' && I + 1 < N && Source[I + 1] == '?') {
      Emit(TokenKind::Wildcard, TokLine, TokCol);
      I += 2;
      Col += 2;
      continue;
    }
    // Single-character punctuation.
    TokenKind Kind;
    switch (C) {
    case '(':
      Kind = TokenKind::LParen;
      break;
    case ')':
      Kind = TokenKind::RParen;
      break;
    case '[':
      Kind = TokenKind::LBracket;
      break;
    case ']':
      Kind = TokenKind::RBracket;
      break;
    case '{':
      Kind = TokenKind::LBrace;
      break;
    case '}':
      Kind = TokenKind::RBrace;
      break;
    case '<':
      Kind = TokenKind::Less;
      break;
    case '>':
      Kind = TokenKind::Greater;
      break;
    case ',':
      Kind = TokenKind::Comma;
      break;
    case ';':
      Kind = TokenKind::Semi;
      break;
    case ':':
      Kind = TokenKind::Colon;
      break;
    case '=':
      Kind = TokenKind::Equal;
      break;
    case '@':
      Kind = TokenKind::At;
      break;
    case '+':
      Kind = TokenKind::Plus;
      break;
    default:
      Ok = false;
      ErrorMessage = "line " + std::to_string(TokLine) + ":" +
                     std::to_string(TokCol) + ": stray character '" +
                     std::string(1, C) + "'";
      // Stop lexing; parsers check ok() before use.
      Emit(TokenKind::Eof, TokLine, TokCol);
      return;
    }
    Emit(Kind, TokLine, TokCol);
    ++I;
    ++Col;
  }
  Emit(TokenKind::Eof, Line, Col);
}
