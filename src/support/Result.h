//===- support/Result.h - Lightweight error propagation --------*- C++ -*-===//
//
// Part of the Reticle-C++ project, a reproduction of the PLDI 2021 paper
// "Reticle: A Virtual Machine for Programming Modern FPGAs".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines Result<T>, a minimal Expected-style carrier used throughout the
/// library for recoverable errors (malformed programs, unsatisfiable
/// constraints, etc.). Library code never throws; programmatic invariants
/// use assert.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SUPPORT_RESULT_H
#define RETICLE_SUPPORT_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace reticle {

/// A tag type used to construct failing Result values unambiguously.
struct ErrorTag {};

/// Carries either a value of type \p T or a human-readable error message.
///
/// The error style follows compiler conventions: lowercase first letter and
/// no trailing period. A Result must be queried with ok() (or operator bool)
/// before its value is accessed.
template <typename T> class Result {
public:
  /// Constructs a success value.
  Result(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure carrying \p Message.
  Result(ErrorTag, std::string Message) : Message(std::move(Message)) {}

  /// Returns true when a value is present.
  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Returns the contained value; the Result must be in the success state.
  T &value() {
    assert(ok() && "accessing value of a failed Result");
    return *Value;
  }
  const T &value() const {
    assert(ok() && "accessing value of a failed Result");
    return *Value;
  }

  T take() {
    assert(ok() && "taking value of a failed Result");
    return std::move(*Value);
  }

  /// Returns the error message; the Result must be in the failure state.
  const std::string &error() const {
    assert(!ok() && "accessing error of a successful Result");
    return Message;
  }

private:
  std::optional<T> Value;
  std::string Message;
};

/// Builds a failing Result<T> from a message.
template <typename T> Result<T> fail(std::string Message) {
  return Result<T>(ErrorTag{}, std::move(Message));
}

/// A value-less Result used by checking passes.
class Status {
public:
  Status() = default;
  Status(ErrorTag, std::string Message) : Message(std::move(Message)) {}

  static Status success() { return Status(); }
  static Status failure(std::string Message) {
    return Status(ErrorTag{}, std::move(Message));
  }

  bool ok() const { return !Message.has_value(); }
  explicit operator bool() const { return ok(); }

  const std::string &error() const {
    assert(!ok() && "accessing error of a successful Status");
    return *Message;
  }

private:
  std::optional<std::string> Message;
};

} // namespace reticle

#endif // RETICLE_SUPPORT_RESULT_H
