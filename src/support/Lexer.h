//===- support/Lexer.h - Shared token stream for Reticle dialects -*- C++ -*-//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small hand-written lexer shared by the intermediate-language, assembly,
/// and target-description parsers. The three dialects use an identical token
/// alphabet (Figure 5 and Figure 9 of the paper), so one lexer serves all.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SUPPORT_LEXER_H
#define RETICLE_SUPPORT_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace reticle {

/// Kinds of tokens produced by the Lexer.
enum class TokenKind : uint8_t {
  Ident,    ///< identifier or keyword, e.g. "add", "i8", "lut"
  Int,      ///< integer literal, possibly negative
  LParen,   ///< (
  RParen,   ///< )
  LBracket, ///< [
  RBracket, ///< ]
  LBrace,   ///< {
  RBrace,   ///< }
  Less,     ///< <
  Greater,  ///< >
  Comma,    ///< ,
  Semi,     ///< ;
  Colon,    ///< :
  Equal,    ///< =
  At,       ///< @
  Arrow,    ///< ->
  Plus,     ///< +
  Hole,     ///< _   (attribute hole in target descriptions)
  Wildcard, ///< ??  (unconstrained resource or coordinate)
  Eof,      ///< end of input
};

/// Returns a printable name for a token kind, used in diagnostics.
const char *tokenKindName(TokenKind Kind);

/// A single lexed token with its source location (1-based line/column).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;   ///< identifier spelling, empty otherwise
  int64_t IntValue = 0; ///< value for Int tokens
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Tokenizes a whole buffer up front. `//` line comments are skipped.
///
/// Lexing is infallible except for stray characters and malformed integers,
/// which are reported through the Ok flag and ErrorMessage members so that
/// parsers can surface one uniform diagnostic style.
class Lexer {
public:
  explicit Lexer(const std::string &Source);

  /// True when the whole buffer lexed cleanly.
  bool ok() const { return Ok; }
  const std::string &error() const { return ErrorMessage; }

  /// Returns the current token without consuming it.
  const Token &peek(unsigned LookAhead = 0) const;

  /// Consumes and returns the current token.
  const Token &next();

  /// Consumes the current token when it has kind \p Kind; returns whether it
  /// did.
  bool accept(TokenKind Kind);

  /// True when the current token has kind \p Kind.
  bool at(TokenKind Kind) const { return peek().Kind == Kind; }

  /// True when the current token is the identifier \p Text.
  bool atIdent(const std::string &Text) const;

private:
  void tokenize(const std::string &Source);

  std::vector<Token> Tokens;
  size_t Cursor = 0;
  bool Ok = true;
  std::string ErrorMessage;
};

} // namespace reticle

#endif // RETICLE_SUPPORT_LEXER_H
