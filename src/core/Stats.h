//===- core/Stats.h - Unified compilation stats document --------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the machine-readable stats document ("reticle-stats-v1") that
/// `reticlec --stats-json=` writes and `--stats` renders as a table. One
/// JSON object unifies every per-stage statistic the pipeline produces:
/// selection, cascading, placement (with the aggregated SAT solver effort),
/// utilization, timing, the StageTimings wall-clock breakdown, and — when
/// telemetry is compiled in — the counter registry of the session the
/// compilation ran in. See docs/OBSERVABILITY.md for the schema.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_CORE_STATS_H
#define RETICLE_CORE_STATS_H

#include "core/Compiler.h"
#include "obs/Context.h"
#include "obs/Json.h"

#include <string_view>

namespace reticle {
namespace core {

/// Assembles the "reticle-stats-v1" document for one compilation of
/// \p Program (a display name: source path or function name). Counters
/// and gauges come from \p Ctx — pass the session's context so a batch
/// item reports its own registry, not the process-wide one.
obs::Json statsJson(const CompileResult &Result, std::string_view Program,
                    const obs::Context &Ctx);

/// statsJson against the global session's registries.
obs::Json statsJson(const CompileResult &Result, std::string_view Program);

} // namespace core
} // namespace reticle

#endif // RETICLE_CORE_STATS_H
