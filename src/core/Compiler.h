//===- core/Compiler.h - The Reticle compiler driver ------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end Reticle compiler (Figure 7): intermediate program ->
/// instruction selection -> layout optimization (cascading) -> instruction
/// placement -> structural Verilog with layout annotations. Routing and
/// bitstream generation remain with vendor tools, exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_CORE_COMPILER_H
#define RETICLE_CORE_COMPILER_H

#include "codegen/Codegen.h"
#include "device/Device.h"
#include "ir/Function.h"
#include "isel/Cascade.h"
#include "isel/Select.h"
#include "obs/Snapshots.h"
#include "place/Place.h"
#include "rasm/Asm.h"
#include "support/Result.h"
#include "tdl/Target.h"
#include "timing/Timing.h"
#include "verilog/Ast.h"

namespace reticle {
namespace core {

/// Pipeline configuration.
struct CompileOptions {
  /// Target description; null selects the built-in UltraScale-like family.
  const tdl::Target *Target = nullptr;
  /// Device to place for; defaults to the paper's xczu3eg.
  device::Device Dev = device::Device::xczu3eg();
  /// Run the cascade layout optimization (Section 5.2).
  bool Cascade = true;
  /// Run the placement shrinking passes (Section 5.3).
  bool Shrink = true;
  /// Run static timing analysis on the placed result.
  bool Timing = true;
  /// When non-null, the pipeline records the program text after each stage
  /// (isel, cascade, place, codegen) into this sink. The driver owns the
  /// sink and typically adds a "parse" snapshot before compiling. Costs
  /// nothing when left null.
  obs::SnapshotSink *Snapshots = nullptr;
};

/// Everything one compilation produces, including the per-stage statistics
/// the benchmarks report.
struct CompileResult {
  rasm::AsmProgram Asm;    ///< family-specific program (after cascading)
  rasm::AsmProgram Placed; ///< device-specific program
  verilog::Module Verilog;
  codegen::Utilization Util;
  timing::TimingReport Timing;

  isel::SelectionStats SelectStats;
  isel::CascadeStats CascadeStats;
  place::PlacementStats PlaceStats;

  double SelectMs = 0.0;
  double CascadeMs = 0.0;
  double PlaceMs = 0.0;
  double CodegenMs = 0.0;
  double TimingMs = 0.0;
  double TotalMs = 0.0;
};

/// Compiles \p Fn through the whole pipeline.
Result<CompileResult> compile(const ir::Function &Fn,
                              const CompileOptions &Options = {});

} // namespace core
} // namespace reticle

#endif // RETICLE_CORE_COMPILER_H
