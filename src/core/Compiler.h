//===- core/Compiler.h - The Reticle compiler driver ------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end Reticle compiler (Figure 7): intermediate program ->
/// instruction selection -> layout optimization (cascading) -> instruction
/// placement -> structural Verilog with layout annotations. Routing and
/// bitstream generation remain with vendor tools, exactly as in the paper.
///
/// Compilation runs as a core::Pipeline of named passes inside a
/// core::CompileSession (see Pipeline.h, Session.h). The overloads without
/// a session argument use CompileSession::global() and are what the tests,
/// benchmarks, and single-input driver call; anything that compiles
/// concurrently must pass its own session (see Batch.h).
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_CORE_COMPILER_H
#define RETICLE_CORE_COMPILER_H

#include "codegen/Codegen.h"
#include "device/Device.h"
#include "ir/Function.h"
#include "isel/Cascade.h"
#include "isel/Select.h"
#include "obs/Snapshots.h"
#include "place/Place.h"
#include "rasm/Asm.h"
#include "support/Result.h"
#include "tdl/Target.h"
#include "timing/Timing.h"
#include "verilog/Ast.h"

#include <string>
#include <string_view>

namespace reticle {
namespace core {

class CompileSession;

/// Pipeline configuration.
struct CompileOptions {
  /// Target description; null selects the built-in UltraScale-like family.
  const tdl::Target *Target = nullptr;
  /// Device to place for; defaults to the paper's xczu3eg.
  device::Device Dev = device::Device::xczu3eg();
  /// Run the front-end passes of Section 8.2 (fold, dce, vectorize)
  /// before selection.
  bool Optimize = false;
  /// Run the cascade layout optimization (Section 5.2).
  bool Cascade = true;
  /// Run the placement shrinking passes (Section 5.3).
  bool Shrink = true;
  /// Shrink-search solver strategy (`--sat-solver=`): Scratch re-encodes
  /// per probe, Incremental keeps one solver across probes, Portfolio
  /// races SatThreads diverse lanes per probe.
  place::SatMode SatMode = place::SatMode::Incremental;
  /// Racing lanes in Portfolio mode (`--sat-threads=`).
  unsigned SatThreads = 4;
  /// Record a DRAT-style proof log of the placement SAT searches into
  /// CompileResult::SatProof (`--sat-proof=`).
  bool SatProof = false;
  /// Run static timing analysis on the placed result.
  bool Timing = true;
  /// When non-null, the pipeline records the program text after each stage
  /// into this sink instead of the session's own (legacy hook; prefer
  /// CompileSession::captureSnapshots). Costs nothing when left null.
  obs::SnapshotSink *Snapshots = nullptr;
  /// Pass names forced off by the driver (`--disable-pass=`). Only
  /// optional stages may be disabled — validate against
  /// core::isPassDisableable() before populating; Pipeline::run simply
  /// skips any listed pass.
  std::vector<std::string> DisabledPasses;
  /// When nonempty, Pipeline::run prints the current program text to
  /// stderr immediately before this pass runs (`--print-before=`).
  std::string PrintBefore;

  bool isPassDisabled(std::string_view Name) const {
    for (const std::string &P : DisabledPasses)
      if (P == Name)
        return true;
    return false;
  }
};

/// Wall-clock spent in each pass, in milliseconds. One record per
/// compilation; a slot is zero when its pass did not run. This is the
/// single timing currency: `--stats-json` and the benchmarks both read it.
struct StageTimings {
  double ParseMs = 0.0;
  double OptMs = 0.0;
  double SelectMs = 0.0;
  double CascadeMs = 0.0;
  double PlaceMs = 0.0;
  double CodegenMs = 0.0;
  double TimingMs = 0.0;
  double TotalMs = 0.0;
};

/// What the front-end optimization pass did (all zero when it is off).
struct OptStats {
  unsigned Folded = 0;     ///< constants folded / identities applied
  unsigned Dead = 0;       ///< dead instructions removed
  unsigned Vectorized = 0; ///< vector instructions formed
};

/// Everything one compilation produces, including the per-stage statistics
/// the benchmarks report.
struct CompileResult {
  rasm::AsmProgram Asm;    ///< family-specific program (after cascading)
  rasm::AsmProgram Placed; ///< device-specific program
  verilog::Module Verilog;
  codegen::Utilization Util;
  timing::TimingReport Timing;

  isel::SelectionStats SelectStats;
  isel::CascadeStats CascadeStats;
  place::PlacementStats PlaceStats;
  OptStats Opt;

  /// DRAT-style proof text of the placement SAT searches (empty unless
  /// CompileOptions::SatProof): sections of DIMACS-notation learnt
  /// additions/deletions delimited by `c` comments per solve.
  std::string SatProof;

  StageTimings Times;
};

/// Compiles \p Fn through the whole pipeline in \p Session.
Result<CompileResult> compile(const ir::Function &Fn,
                              const CompileOptions &Options,
                              CompileSession &Session);

/// Compiles \p Fn in the global session (legacy single-session entry).
Result<CompileResult> compile(const ir::Function &Fn,
                              const CompileOptions &Options = {});

/// Parses, verifies, and compiles \p Source (named \p Name in spans,
/// snapshots, and diagnostics) in \p Session. This is the entry the
/// driver's batch mode uses: the parse and opt passes run inside the
/// pipeline, so their time, snapshots, and remarks are recorded like any
/// other stage's.
Result<CompileResult> compileSource(const std::string &Source,
                                    std::string_view Name,
                                    const CompileOptions &Options,
                                    CompileSession &Session);

/// compileSource in the global session.
Result<CompileResult> compileSource(const std::string &Source,
                                    std::string_view Name,
                                    const CompileOptions &Options = {});

} // namespace core
} // namespace reticle

#endif // RETICLE_CORE_COMPILER_H
