//===- core/Batch.h - Parallel batch compilation ----------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles many independent functions concurrently, one CompileSession
/// per input, on a fixed-size worker pool. Because every piece of mutable
/// observability state lives in the item's own session (see Session.h),
/// and the built-in target and device descriptions are immutable after
/// construction, a concurrent batch produces byte-identical artifacts to
/// a sequential one.
///
/// batchStatsJson merges the per-item outcomes into one
/// "reticle-batch-v1" summary document:
///
/// \code
///   {"schema": "reticle-batch-v1", "inputs": N, "succeeded": n,
///    "failed": m, "jobs": J,
///    "programs": [{"program": ..., "status": "ok", "stats": {...}} |
///                 {"program": ..., "status": "error", "error": ...}],
///    "totals": {"total_ms": ..., "luts": ..., "dsps": ...},
///    "coverage": {"spaces": ..., "totals": ...}}
///
/// The coverage key is the union of every item's coverage registry (bins
/// summed), in the same shape as the per-stats `coverage` section and
/// the standalone `reticle-coverage-v1` doc.
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_CORE_BATCH_H
#define RETICLE_CORE_BATCH_H

#include "core/Compiler.h"
#include "core/Session.h"
#include "obs/Json.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace reticle {
namespace core {

/// One program to compile: a display name (typically the source path) and
/// its text.
struct BatchInput {
  std::string Name;
  std::string Source;
};

struct BatchOptions {
  /// Per-compile configuration, shared by every input. Its Snapshots
  /// pointer is ignored — a shared sink would race; use CaptureSnapshots
  /// to collect per-item snapshots in each item's session instead.
  CompileOptions Options;
  /// Worker threads; 0 picks the hardware concurrency. The pool never
  /// exceeds the number of inputs.
  unsigned Jobs = 0;
  /// Enable the corresponding sink on every item's session up front.
  bool CaptureSnapshots = false;
  bool EnableRemarks = false;
  bool EnableTracing = false;
  /// Measured compile cost per program name, in milliseconds — typically
  /// harvested from a prior run's reticle-batch-v1 summary (see
  /// batchMeasuredCosts; the driver's `--schedule-from=`). When present,
  /// scheduling prefers these measurements over the statement-count
  /// estimate; programs missing from the map fall back to statement count
  /// scaled onto the measured distribution.
  std::map<std::string, double> MeasuredCostMs;
};

/// Outcome of one batch input: the session that compiled it (with its
/// counters, remarks, trace, snapshots, and diagnostics) and the result.
struct BatchItem {
  std::string Name;
  std::unique_ptr<CompileSession> Session;
  /// Engaged once the item has been processed (always, on return from
  /// compileBatch).
  std::optional<Result<CompileResult>> Outcome;

  bool ok() const { return Outcome && *Outcome; }
};

/// Compiles every input, in order-stable fashion: Items[i] corresponds to
/// Inputs[i] regardless of scheduling. Workers pick up inputs in
/// estimated-cost order (largest first, see batchScheduleOrder) so a big
/// program submitted last cannot serialize the tail of the batch.
/// Individual failures do not stop the batch; inspect each item's Outcome.
std::vector<BatchItem> compileBatch(const std::vector<BatchInput> &Inputs,
                                    const BatchOptions &Options = {});

/// The order compileBatch hands inputs to workers: indices into \p Inputs
/// sorted by estimated compile cost descending, ties broken by position so
/// the schedule is deterministic. Without measurements the estimate is the
/// statement count; with \p MeasuredCostMs entries (prior-run timings),
/// measured programs use their measurement and unmeasured ones interpolate
/// statement count at the measured set's average ms-per-statement rate, so
/// the two currencies compare sanely. Scheduling only — the
/// Items[i] <-> Inputs[i] correspondence is unaffected.
std::vector<size_t> batchScheduleOrder(const std::vector<BatchInput> &Inputs);
std::vector<size_t>
batchScheduleOrder(const std::vector<BatchInput> &Inputs,
                   const std::map<std::string, double> &MeasuredCostMs);

/// Harvests per-program measured costs (`timings.total_ms`) from a prior
/// run's "reticle-batch-v1" summary document, keyed by program name.
/// Failed entries are skipped. This is the `--schedule-from=` feed for
/// BatchOptions::MeasuredCostMs.
std::map<std::string, double> batchMeasuredCosts(const obs::Json &Summary);

/// The merged "reticle-batch-v1" summary over a finished batch. \p Jobs
/// records the pool size actually used (purely informational).
obs::Json batchStatsJson(const std::vector<BatchItem> &Items, unsigned Jobs);

/// The union of every item's coverage registry (bins summed; failed
/// items contribute what they recorded before the pipeline refused
/// them). This is the snapshot behind the summary's "coverage" key and
/// the driver's batch-mode --coverage doc.
obs::CoverageSnapshot batchCoverage(const std::vector<BatchItem> &Items);

/// The worker-pool size compileBatch would use for \p Options over
/// \p InputCount inputs (exposed so drivers can report it).
unsigned batchJobCount(const BatchOptions &Options, size_t InputCount);

} // namespace core
} // namespace reticle

#endif // RETICLE_CORE_BATCH_H
