//===- core/Session.cpp - Per-compilation observability state -------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "core/Session.h"

using namespace reticle;
using namespace reticle::core;

CompileSession::CompileSession()
    : OwnedTelem(std::make_unique<obs::Telemetry>()),
      OwnedRem(std::make_unique<obs::RemarkStream>()),
      OwnedCov(std::make_unique<obs::Coverage>()),
      Ctx{OwnedTelem.get(), OwnedRem.get(), OwnedCov.get()} {}

CompileSession::CompileSession(GlobalTag)
    : Ctx{&obs::defaultTelemetry(), &obs::defaultRemarks(),
          &obs::defaultCoverage()} {}

CompileSession::~CompileSession() = default;

CompileSession &CompileSession::global() {
  static CompileSession S{GlobalTag{}};
  return S;
}
