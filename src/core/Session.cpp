//===- core/Session.cpp - Per-compilation observability state -------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "core/Session.h"

using namespace reticle;
using namespace reticle::core;

CompileSession::CompileSession()
    : OwnedTelem(std::make_unique<obs::Telemetry>()),
      OwnedRem(std::make_unique<obs::RemarkStream>()),
      Ctx{OwnedTelem.get(), OwnedRem.get()} {}

CompileSession::CompileSession(GlobalTag)
    : Ctx{&obs::defaultTelemetry(), &obs::defaultRemarks()} {}

CompileSession::~CompileSession() = default;

CompileSession &CompileSession::global() {
  static CompileSession S{GlobalTag{}};
  return S;
}
