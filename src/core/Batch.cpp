//===- core/Batch.cpp - Parallel batch compilation ------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "core/Batch.h"

#include "core/Stats.h"
#include "tdl/Ultrascale.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace reticle;
using namespace reticle::core;

unsigned reticle::core::batchJobCount(const BatchOptions &Options,
                                      size_t InputCount) {
  unsigned Jobs =
      Options.Jobs ? Options.Jobs
                   : std::max(1u, std::thread::hardware_concurrency());
  if (InputCount < Jobs)
    Jobs = static_cast<unsigned>(InputCount);
  return std::max(1u, Jobs);
}

std::vector<size_t>
reticle::core::batchScheduleOrder(const std::vector<BatchInput> &Inputs) {
  return batchScheduleOrder(Inputs, {});
}

std::vector<size_t> reticle::core::batchScheduleOrder(
    const std::vector<BatchInput> &Inputs,
    const std::map<std::string, double> &MeasuredCostMs) {
  // Statement terminators are a faithful proxy for instruction count, and
  // counting them costs nothing compared to a compile. A prior run's
  // measured timings beat any proxy, so measured programs use their
  // measurement directly; unmeasured ones convert their statement count
  // into the same currency at the measured set's average ms-per-statement
  // rate (falling back to raw counts when nothing was measured).
  std::vector<size_t> Stmts(Inputs.size(), 0);
  for (size_t I = 0; I < Inputs.size(); ++I)
    Stmts[I] = static_cast<size_t>(
        std::count(Inputs[I].Source.begin(), Inputs[I].Source.end(), ';'));

  double MeasuredMs = 0.0;
  size_t MeasuredStmts = 0;
  for (size_t I = 0; I < Inputs.size(); ++I)
    if (auto It = MeasuredCostMs.find(Inputs[I].Name);
        It != MeasuredCostMs.end()) {
      MeasuredMs += It->second;
      MeasuredStmts += Stmts[I];
    }
  double MsPerStmt =
      MeasuredStmts ? MeasuredMs / static_cast<double>(MeasuredStmts) : 1.0;

  std::vector<double> Cost(Inputs.size(), 0.0);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    auto It = MeasuredCostMs.find(Inputs[I].Name);
    Cost[I] = It != MeasuredCostMs.end()
                  ? It->second
                  : static_cast<double>(Stmts[I]) * MsPerStmt;
  }
  std::vector<size_t> Order(Inputs.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Cost[A] > Cost[B];
  });
  return Order;
}

std::map<std::string, double>
reticle::core::batchMeasuredCosts(const obs::Json &Summary) {
  std::map<std::string, double> Costs;
  if (!Summary.isObject())
    return Costs;
  const obs::Json *Programs = Summary.find("programs");
  if (!Programs || !Programs->isArray())
    return Costs;
  for (const obs::Json &Entry : Programs->items()) {
    if (!Entry.isObject())
      continue;
    const obs::Json *Name = Entry.find("program");
    const obs::Json *Stats = Entry.find("stats");
    if (!Name || !Name->isString() || !Stats || !Stats->isObject())
      continue; // failed entries carry no stats
    const obs::Json *Timings = Stats->find("timings");
    if (!Timings || !Timings->isObject())
      continue;
    const obs::Json *Total = Timings->find("total_ms");
    if (!Total)
      continue;
    Costs[Name->asString()] = Total->asDouble();
  }
  return Costs;
}

std::vector<BatchItem>
reticle::core::compileBatch(const std::vector<BatchInput> &Inputs,
                            const BatchOptions &Options) {
  // Touch the lazily-built singleton targets before any worker does, so
  // the workers only ever read them.
  CompileOptions PerCompile = Options.Options;
  PerCompile.Snapshots = nullptr; // a shared sink would race; see header
  if (!PerCompile.Target)
    PerCompile.Target = &tdl::ultrascale();

  std::vector<BatchItem> Items;
  Items.reserve(Inputs.size());
  for (const BatchInput &In : Inputs) {
    BatchItem Item;
    Item.Name = In.Name;
    Item.Session = std::make_unique<CompileSession>();
    if (Options.CaptureSnapshots)
      Item.Session->captureSnapshots();
    if (Options.EnableRemarks)
      Item.Session->remarks().enable();
    if (Options.EnableTracing)
      Item.Session->telemetry().enableTracing();
    Items.push_back(std::move(Item));
  }

  // Workers pull from the cost-sorted schedule so the most expensive
  // compiles start first; results still land at their input's index.
  std::vector<size_t> Order =
      batchScheduleOrder(Inputs, Options.MeasuredCostMs);
  std::atomic<size_t> NextSlot{0};
  auto Work = [&] {
    for (size_t Slot = NextSlot.fetch_add(1, std::memory_order_relaxed);
         Slot < Order.size();
         Slot = NextSlot.fetch_add(1, std::memory_order_relaxed)) {
      size_t I = Order[Slot];
      Items[I].Outcome.emplace(compileSource(
          Inputs[I].Source, Inputs[I].Name, PerCompile, *Items[I].Session));
    }
  };

  unsigned Jobs = batchJobCount(Options, Inputs.size());
  if (Jobs <= 1) {
    Work();
    return Items;
  }
  std::vector<std::thread> Pool;
  Pool.reserve(Jobs);
  for (unsigned T = 0; T < Jobs; ++T)
    Pool.emplace_back(Work);
  for (std::thread &T : Pool)
    T.join();
  return Items;
}

obs::Json reticle::core::batchStatsJson(const std::vector<BatchItem> &Items,
                                        unsigned Jobs) {
  using obs::Json;
  Json Doc = Json::object();
  Doc.set("schema", "reticle-batch-v1");
  Doc.set("inputs", static_cast<uint64_t>(Items.size()));

  uint64_t Succeeded = 0, Failed = 0;
  double TotalMs = 0.0;
  uint64_t Luts = 0, Dsps = 0;
  Json Programs = Json::array();
  for (const BatchItem &Item : Items) {
    Json Entry = Json::object();
    Entry.set("program", Item.Name);
    if (Item.ok()) {
      ++Succeeded;
      const CompileResult &R = Item.Outcome->value();
      TotalMs += R.Times.TotalMs;
      Luts += R.Util.Luts;
      Dsps += R.Util.Dsps;
      Entry.set("status", "ok");
      Entry.set("stats",
                statsJson(R, Item.Name, Item.Session->context()));
    } else {
      ++Failed;
      Entry.set("status", "error");
      Entry.set("error",
                Item.Outcome ? Item.Outcome->error()
                             : std::string("not compiled"));
    }
    Programs.push(std::move(Entry));
  }
  Doc.set("succeeded", Succeeded);
  Doc.set("failed", Failed);
  Doc.set("jobs", static_cast<uint64_t>(Jobs));
  Doc.set("programs", std::move(Programs));

  Json Totals = Json::object();
  Totals.set("total_ms", TotalMs);
  Totals.set("luts", Luts);
  Totals.set("dsps", Dsps);
  Doc.set("totals", std::move(Totals));
  Doc.set("coverage", obs::coverageJson(batchCoverage(Items)));
  return Doc;
}

obs::CoverageSnapshot
reticle::core::batchCoverage(const std::vector<BatchItem> &Items) {
  obs::CoverageSnapshot Merged;
  for (const BatchItem &Item : Items)
    for (const auto &[Space, Bins] : Item.Session->coverage().snapshot()) {
      auto &Dst = Merged[Space];
      for (const auto &[Bin, Count] : Bins)
        Dst[Bin] += Count;
    }
  return Merged;
}
