//===- core/Stats.cpp - Unified compilation stats document ---------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "core/Stats.h"

#include "obs/Coverage.h"
#include "obs/Telemetry.h"
#include "sim/Program.h"

using namespace reticle;
using namespace reticle::core;
using obs::Json;

Json reticle::core::statsJson(const CompileResult &Result,
                              std::string_view Program,
                              const obs::Context &Ctx) {
  Json Doc = Json::object();
  Doc.set("schema", "reticle-stats-v1");
  Doc.set("program", std::string(Program));

  Json Timings = Json::object();
  Timings.set("parse_ms", Result.Times.ParseMs);
  Timings.set("opt_ms", Result.Times.OptMs);
  Timings.set("select_ms", Result.Times.SelectMs);
  Timings.set("cascade_ms", Result.Times.CascadeMs);
  Timings.set("place_ms", Result.Times.PlaceMs);
  Timings.set("codegen_ms", Result.Times.CodegenMs);
  Timings.set("timing_ms", Result.Times.TimingMs);
  Timings.set("total_ms", Result.Times.TotalMs);
  Doc.set("timings", std::move(Timings));

  Json Opt = Json::object();
  Opt.set("folded", Result.Opt.Folded);
  Opt.set("dead", Result.Opt.Dead);
  Opt.set("vectorized", Result.Opt.Vectorized);
  Doc.set("opt", std::move(Opt));

  Json Select = Json::object();
  Select.set("trees", Result.SelectStats.NumTrees);
  Select.set("asm_ops", Result.SelectStats.NumAsmOps);
  Select.set("wires", Result.SelectStats.NumWire);
  Select.set("total_area", Result.SelectStats.TotalArea);
  Select.set("total_latency", Result.SelectStats.TotalLatency);
  Doc.set("select", std::move(Select));

  Json Cascade = Json::object();
  Cascade.set("chains", Result.CascadeStats.Chains);
  Cascade.set("rewritten", Result.CascadeStats.Rewritten);
  Doc.set("cascade", std::move(Cascade));

  Json Place = Json::object();
  Place.set("solves", Result.PlaceStats.Solves);
  Place.set("shrink_iterations", Result.PlaceStats.ShrinkIterations);
  Place.set("max_column", Result.PlaceStats.MaxColumn);
  Place.set("max_row", Result.PlaceStats.MaxRow);
  Json Sat = Json::object();
  Sat.set("vars", Result.PlaceStats.Vars);
  Sat.set("clauses", Result.PlaceStats.Clauses);
  Sat.set("decisions", Result.PlaceStats.Decisions);
  Sat.set("propagations", Result.PlaceStats.Propagations);
  Sat.set("conflicts", Result.PlaceStats.Conflicts);
  Sat.set("restarts", Result.PlaceStats.Restarts);
  Sat.set("learned", Result.PlaceStats.Learned);
  Place.set("sat", std::move(Sat));
  Doc.set("place", std::move(Place));

  // The solver-level search profile: solve counts, learned-clause quality
  // histograms, time, and the per-probe shrink record. The `place.sat`
  // block above stays as the compact aggregate consumers already depend
  // on; this section carries the full profile.
  Json SatProfile = Json::object();
  SatProfile.set("solver_mode",
                 Result.PlaceStats.Mode == place::SatMode::Scratch
                     ? "scratch"
                     : Result.PlaceStats.Mode == place::SatMode::Incremental
                           ? "incremental"
                           : "portfolio");
  SatProfile.set("solves", Result.PlaceStats.Solves);
  SatProfile.set("budget_exhausted", Result.PlaceStats.BudgetExhausted);
  SatProfile.set("time_ms", Result.PlaceStats.SatMs);
  SatProfile.set("shrink_ms", Result.PlaceStats.ShrinkMs);
  SatProfile.set("conflicts", Result.PlaceStats.Conflicts);
  SatProfile.set("decisions", Result.PlaceStats.Decisions);
  SatProfile.set("propagations", Result.PlaceStats.Propagations);
  SatProfile.set("restarts", Result.PlaceStats.Restarts);
  SatProfile.set("learned", Result.PlaceStats.Learned);
  Json Lbd = Json::array();
  for (uint64_t Bucket : Result.PlaceStats.LbdHistogram)
    Lbd.push(Bucket);
  SatProfile.set("lbd_histogram", std::move(Lbd));
  Json Sizes = Json::array();
  for (uint64_t Bucket : Result.PlaceStats.LearnedSizeHistogram)
    Sizes.push(Bucket);
  SatProfile.set("learned_size_histogram", std::move(Sizes));
  // Per-probe reuse accounting for the persistent shrink solver. Both
  // subobjects are always present (zeros outside their mode) so schema
  // checks can `--require` them unconditionally.
  Json Incremental = Json::object();
  Incremental.set("encodes", Result.PlaceStats.IncrementalEncodes);
  Incremental.set("probes", Result.PlaceStats.IncrementalProbes);
  Incremental.set("precheck_probes", Result.PlaceStats.PrecheckProbes);
  Incremental.set("reused_clauses", Result.PlaceStats.ReusedClauses);
  Incremental.set("reused_learned", Result.PlaceStats.ReusedLearned);
  SatProfile.set("incremental", std::move(Incremental));
  Json Portfolio = Json::object();
  Portfolio.set("rounds", Result.PlaceStats.PortfolioRounds);
  Portfolio.set("exported", Result.PlaceStats.PortfolioExported);
  Portfolio.set("imported", Result.PlaceStats.PortfolioImported);
  Json Wins = Json::array();
  for (uint64_t W : Result.PlaceStats.PortfolioWins)
    Wins.push(W);
  Portfolio.set("wins_by_lane", std::move(Wins));
  SatProfile.set("portfolio", std::move(Portfolio));
  Json Probes = Json::array();
  for (const place::ShrinkProbe &P : Result.PlaceStats.Timeline) {
    Json Probe = Json::object();
    Probe.set("axis", P.ProbeAxis == place::ShrinkProbe::Axis::Initial
                          ? "initial"
                          : P.ProbeAxis == place::ShrinkProbe::Axis::Column
                                ? "col"
                                : "row");
    Probe.set("bound", P.Bound);
    Probe.set("outcome", P.Result == place::ShrinkProbe::Outcome::Sat
                             ? "sat"
                             : P.Result == place::ShrinkProbe::Outcome::Unsat
                                   ? "unsat"
                                   : "budget_exhausted");
    Probe.set("conflicts", P.Conflicts);
    Probe.set("decisions", P.Decisions);
    if (P.Lane >= 0)
      Probe.set("lane", static_cast<uint64_t>(P.Lane));
    Probe.set("max_column", P.MaxColumn);
    Probe.set("max_row", P.MaxRow);
    Probes.push(std::move(Probe));
  }
  SatProfile.set("shrink_probes", std::move(Probes));
  Json Core = Json::array();
  for (const place::CoreConstraint &C : Result.PlaceStats.Core) {
    Json Entry = Json::object();
    Entry.set("constraint", C.Kind);
    Entry.set("instr", C.Instr);
    Entry.set("detail", C.Detail);
    Core.push(std::move(Entry));
  }
  SatProfile.set("core", std::move(Core));
  Doc.set("sat", std::move(SatProfile));

  Json Util = Json::object();
  Util.set("luts", Result.Util.Luts);
  Util.set("dsps", Result.Util.Dsps);
  Util.set("carries", Result.Util.Carries);
  Util.set("ffs", Result.Util.Ffs);
  Doc.set("utilization", std::move(Util));

  Json Timing = Json::object();
  Timing.set("critical_path_ns", Result.Timing.CriticalPathNs);
  Timing.set("fmax_mhz", Result.Timing.FmaxMhz);
  Json Path = Json::array();
  for (const std::string &Node : Result.Timing.Path)
    Path.push(Node);
  Timing.set("path", std::move(Path));
  Doc.set("timing", std::move(Timing));

  // Simulation counters (populated by `reticlec --run` / the engines'
  // wave-enabled entry points; all zero when nothing was simulated). The
  // section exists in every build so consumers can rely on the shape; in
  // RETICLE_NO_TELEMETRY builds the counters read as zero.
  Json Sim = Json::object();
  auto Count = [&](const char *Name) { return Ctx.counter(Name).load(); };
  Sim.set("cycles", Count("sim.cycles"));
  Sim.set("events", Count("sim.events"));
  Sim.set("toggles", Count("sim.toggles"));
  Sim.set("signals", Count("sim.signals"));
  Json Interp = Json::object();
  Interp.set("cycles", Count("interp.cycles"));
  Interp.set("evals", Count("interp.evals"));
  Sim.set("interp", std::move(Interp));
  Json Netlist = Json::object();
  Netlist.set("cycles", Count("netlist.cycles"));
  Netlist.set("evals", Count("netlist.evals"));
  Netlist.set("sweeps", Count("netlist.sweeps"));
  Sim.set("netlist", std::move(Netlist));
  // The compiled-simulation VM: lowering activity (program geometry,
  // compile count) and execution volume (cycles, bytecode instructions
  // retired). `ops` divided by `cycles` is the per-cycle program size the
  // VM actually ran.
  Json Vm = Json::object();
  Vm.set("cycles", Count("sim.vm.cycles"));
  Vm.set("ops", Count("sim.vm.ops"));
  Vm.set("compiles", Count("sim.vm.compiles"));
  Json VmProgram = Json::object();
  VmProgram.set("words", Count("sim.vm.program.words"));
  VmProgram.set("consts", Count("sim.vm.program.consts"));
  VmProgram.set("signals", Count("sim.vm.program.signals"));
  Vm.set("program", std::move(VmProgram));
  // Static opcode histogram over every program compiled in this session,
  // keyed by mnemonic; zero-count opcodes are omitted so the section
  // stays compact (and empty when nothing was compiled).
  Json OpHist = Json::object();
  for (uint32_t K = 0; K < sim::NumOps; ++K) {
    const char *Name = sim::opName(static_cast<sim::Op>(K));
    uint64_t N = Count((std::string("sim.vm.op.") + Name).c_str());
    if (N != 0)
      OpHist.set(Name, N);
  }
  Vm.set("op_histogram", std::move(OpHist));
  Sim.set("vm", std::move(Vm));
  Doc.set("sim", std::move(Sim));

  // Coverage bins recorded into this compile's registry (static IR, isel
  // pattern, and — after a --run — dynamic toggle coverage). The section
  // exists in every build; in RETICLE_NO_TELEMETRY builds the registry
  // snapshot is empty.
  Doc.set("coverage", obs::coverageJson(Ctx.coverage().snapshot()));

#ifndef RETICLE_NO_TELEMETRY
  Json Registry = Ctx.Telem->countersJson();
  if (const Json *Counters = Registry.find("counters"))
    Doc.set("counters", *Counters);
  if (const Json *Gauges = Registry.find("gauges"))
    Doc.set("gauges", *Gauges);
  // Latency distributions (pipeline.pass_ms[.<pass>], sat.solve_ms,
  // sim.cycle_batch_ms): log-bucketed percentile estimates per name.
  Doc.set("histograms", Ctx.Telem->histogramsJson());
#endif
  return Doc;
}

Json reticle::core::statsJson(const CompileResult &Result,
                              std::string_view Program) {
  return statsJson(Result, Program, obs::defaultContext());
}
