//===- core/Pipeline.cpp - The pass pipeline ------------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "opt/Transforms.h"
#include "sat/Solver.h"

#include <chrono>
#include <cstdio>

using namespace reticle;
using namespace reticle::core;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// parse: text -> verified ir::Function. Only present when compiling from
/// source; compile(Fn) trusts its caller's function (isel re-verifies).
class ParsePass : public Pass {
public:
  const char *name() const override { return "parse"; }
  const char *snapshotFormat() const override { return "ir"; }
  std::string snapshotText(const CompileState &State) const override {
    return State.Fn ? State.Fn->str() : std::string();
  }
  double StageTimings::*timingSlot() const override {
    return &StageTimings::ParseMs;
  }
  Status run(CompileState &State, CompileSession &Session,
             const CompileOptions &Options) override {
    Result<ir::Function> Fn = ir::parseFunction(State.Source);
    if (!Fn)
      return Status::failure(Fn.error());
    if (Status S = ir::verify(Fn.value(), Session.context()); !S)
      return S;
    State.Fn = Fn.take();
    return Status::success();
  }
};

/// opt: the Section 8.2 front-end passes (fold, dce, vectorize).
class OptPass : public Pass {
public:
  const char *name() const override { return "opt"; }
  bool enabled(const CompileOptions &Options) const override {
    return Options.Optimize;
  }
  const char *snapshotFormat() const override { return "ir"; }
  std::string snapshotText(const CompileState &State) const override {
    return State.Fn ? State.Fn->str() : std::string();
  }
  double StageTimings::*timingSlot() const override {
    return &StageTimings::OptMs;
  }
  void spanArgs(obs::Span &Sp, const CompileState &State) const override {
    Sp.arg("folded", State.Result.Opt.Folded);
    Sp.arg("dead", State.Result.Opt.Dead);
    Sp.arg("vectorized", State.Result.Opt.Vectorized);
  }
  Status run(CompileState &State, CompileSession &Session,
             const CompileOptions &Options) override {
    const obs::Context &Ctx = Session.context();
    OptStats &S = State.Result.Opt;
    S.Folded = opt::constantFold(*State.Fn, Ctx);
    S.Dead = opt::deadCodeElim(*State.Fn, Ctx);
    S.Vectorized = opt::vectorize(*State.Fn, 4, Ctx);
    return Status::success();
  }
};

/// isel: tree-covering instruction selection (Section 5.1).
class IselPass : public Pass {
public:
  const char *name() const override { return "isel"; }
  const char *spanName() const override { return "select"; }
  const char *snapshotFormat() const override { return "asm"; }
  std::string snapshotText(const CompileState &State) const override {
    return State.Result.Asm.str();
  }
  double StageTimings::*timingSlot() const override {
    return &StageTimings::SelectMs;
  }
  void spanArgs(obs::Span &Sp, const CompileState &State) const override {
    Sp.arg("trees", State.Result.SelectStats.NumTrees);
    Sp.arg("asm_ops", State.Result.SelectStats.NumAsmOps);
  }
  Status run(CompileState &State, CompileSession &Session,
             const CompileOptions &Options) override {
    Result<rasm::AsmProgram> Asm =
        isel::select(*State.Fn, *State.Target, &State.Result.SelectStats,
                     Session.context());
    if (!Asm)
      return Status::failure(Asm.error());
    State.Result.Asm = Asm.take();
    return Status::success();
  }
};

/// cascade: layout optimization (Section 5.2). Chains are bounded by the
/// DSP column height of the target device.
class CascadePass : public Pass {
public:
  const char *name() const override { return "cascade"; }
  bool enabled(const CompileOptions &Options) const override {
    return Options.Cascade;
  }
  const char *snapshotFormat() const override { return "asm"; }
  std::string snapshotText(const CompileState &State) const override {
    return State.Result.Asm.str();
  }
  double StageTimings::*timingSlot() const override {
    return &StageTimings::CascadeMs;
  }
  void spanArgs(obs::Span &Sp, const CompileState &State) const override {
    Sp.arg("chains", State.Result.CascadeStats.Chains);
    Sp.arg("rewritten", State.Result.CascadeStats.Rewritten);
  }
  Status run(CompileState &State, CompileSession &Session,
             const CompileOptions &Options) override {
    unsigned MaxChain =
        std::max(2u, Options.Dev.maxHeight(ir::Resource::Dsp));
    return isel::cascadePass(State.Result.Asm, *State.Target, MaxChain,
                             &State.Result.CascadeStats, Session.context());
  }
};

/// place: SAT-based instruction placement (Section 5.3).
class PlacePass : public Pass {
public:
  const char *name() const override { return "place"; }
  const char *snapshotFormat() const override { return "asm"; }
  std::string snapshotText(const CompileState &State) const override {
    return State.Result.Placed.str();
  }
  double StageTimings::*timingSlot() const override {
    return &StageTimings::PlaceMs;
  }
  void spanArgs(obs::Span &Sp, const CompileState &State) const override {
    Sp.arg("solves", State.Result.PlaceStats.Solves);
    Sp.arg("conflicts", State.Result.PlaceStats.Conflicts);
    Sp.arg("max_col", State.Result.PlaceStats.MaxColumn);
    Sp.arg("max_row", State.Result.PlaceStats.MaxRow);
  }
  Status run(CompileState &State, CompileSession &Session,
             const CompileOptions &Options) override {
    place::PlacementOptions PlaceOptions;
    PlaceOptions.Shrink = Options.Shrink;
    PlaceOptions.Mode = Options.SatMode;
    PlaceOptions.PortfolioLanes = Options.SatThreads;
    sat::ProofWriter Proof;
    if (Options.SatProof)
      PlaceOptions.Proof = &Proof;
    Result<rasm::AsmProgram> Placed =
        place::place(State.Result.Asm, Options.Dev, PlaceOptions,
                     &State.Result.PlaceStats, Session.context());
    if (Options.SatProof)
      State.Result.SatProof = Proof.take();
    if (!Placed)
      return Status::failure(Placed.error());
    State.Result.Placed = Placed.take();
    // Defense in depth: independently re-verify the solver's answer against
    // the constraint system of Section 5.3 before trusting it downstream.
    if (Status S = place::checkPlacement(State.Result.Asm,
                                         State.Result.Placed, Options.Dev);
        !S)
      return Status::failure("internal error: invalid placement accepted: " +
                             S.error());
    return Status::success();
  }
};

/// codegen: structural Verilog with layout annotations (Section 5.4).
class CodegenPass : public Pass {
public:
  const char *name() const override { return "codegen"; }
  const char *snapshotFormat() const override { return "verilog"; }
  std::string snapshotText(const CompileState &State) const override {
    return State.Result.Verilog.str();
  }
  double StageTimings::*timingSlot() const override {
    return &StageTimings::CodegenMs;
  }
  void spanArgs(obs::Span &Sp, const CompileState &State) const override {
    Sp.arg("luts", State.Result.Util.Luts);
    Sp.arg("dsps", State.Result.Util.Dsps);
  }
  Status run(CompileState &State, CompileSession &Session,
             const CompileOptions &Options) override {
    Result<verilog::Module> Mod =
        codegen::generate(State.Result.Placed, *State.Target, Options.Dev,
                          &State.Result.Util, Session.context());
    if (!Mod)
      return Status::failure(Mod.error());
    State.Result.Verilog = Mod.take();
    return Status::success();
  }
};

/// timing: static timing analysis of the placed result.
class TimingPass : public Pass {
public:
  const char *name() const override { return "timing"; }
  bool enabled(const CompileOptions &Options) const override {
    return Options.Timing;
  }
  double StageTimings::*timingSlot() const override {
    return &StageTimings::TimingMs;
  }
  void spanArgs(obs::Span &Sp, const CompileState &State) const override {
    Sp.arg("critical_path_ns", State.Result.Timing.CriticalPathNs);
  }
  Status run(CompileState &State, CompileSession &Session,
             const CompileOptions &Options) override {
    Result<timing::TimingReport> Report =
        timing::analyzeAsm(State.Result.Placed, *State.Target, Options.Dev,
                           timing::DelayModel(), Session.context());
    if (!Report)
      return Status::failure(Report.error());
    State.Result.Timing = Report.take();
    return Status::success();
  }
};

} // namespace

Status Pipeline::run(CompileState &State, CompileSession &Session,
                     const CompileOptions &Options) const {
  // The most recent pass with program text of its own; its snapshotText
  // over the current state is what `--print-before` shows for the next
  // stage (later passes never mutate the fields earlier snapshots read).
  const Pass *LastWithText = nullptr;
  for (const std::unique_ptr<Pass> &P : Passes) {
    for (const Hook &H : Before)
      H(*P, State, Session);
    if (!Options.PrintBefore.empty() && Options.PrintBefore == P->name()) {
      std::string Text = LastWithText ? LastWithText->snapshotText(State)
                         : State.Fn  ? State.Fn->str()
                                     : State.Source;
      std::fprintf(stderr, "; %s: before %s\n%s", State.Name.c_str(),
                   P->name(), Text.c_str());
      if (Text.empty() || Text.back() != '\n')
        std::fputc('\n', stderr);
    }
    auto Start = std::chrono::steady_clock::now();
    Status Outcome = Status::success();
    bool Ran = P->enabled(Options) && !Options.isPassDisabled(P->name());
    if (Ran) {
      obs::Span Sp(Session.context(), P->spanName());
      Outcome = P->run(State, Session, Options);
      if (Outcome)
        P->spanArgs(Sp, State);
    }
    if (Ran) {
      // Latency distributions: every pass execution lands one sample in
      // the aggregate pass histogram and one in its per-pass histogram,
      // so batch compiles expose real p50/p90/p99 per stage.
      double Ms = msSince(Start);
      const obs::Context &Ctx = Session.context();
      Ctx.histogram("pipeline.pass_ms").record(Ms);
      Ctx.histogram(std::string("pipeline.pass_ms.") + P->name()).record(Ms);
    }
    if (double StageTimings::*Slot = P->timingSlot())
      State.Result.Times.*Slot = msSince(Start);
    if (Outcome)
      if (const char *Format = P->snapshotFormat()) {
        // The options' external sink (the legacy hook) wins over the
        // session's own capture.
        obs::SnapshotSink *Sink =
            Options.Snapshots ? Options.Snapshots
            : Session.capturingSnapshots() ? &Session.snapshots()
                                           : nullptr;
        if (Sink)
          Sink->add(P->name(), Format, P->snapshotText(State));
      }
    if (!Outcome)
      Session.diagnose(P->name(), Outcome.error());
    if (P->snapshotFormat())
      LastWithText = P.get();
    for (const Hook &H : After)
      H(*P, State, Session);
    if (!Outcome)
      return Outcome;
  }
  return Status::success();
}

Pipeline reticle::core::buildPipeline(const CompileOptions &Options,
                                      bool FromSource) {
  Pipeline P;
  if (FromSource)
    P.add(std::make_unique<ParsePass>());
  // When compiling an already-built function, the opt pass appears only
  // on request, keeping the legacy four-stage snapshot list for
  // compile(Fn) unchanged. From source it is always listed (though it
  // only runs under Options.Optimize), so dump directories are stable.
  if (FromSource || Options.Optimize)
    P.add(std::make_unique<OptPass>());
  P.add(std::make_unique<IselPass>());
  P.add(std::make_unique<CascadePass>());
  P.add(std::make_unique<PlacePass>());
  P.add(std::make_unique<CodegenPass>());
  P.add(std::make_unique<TimingPass>());
  return P;
}

const std::vector<std::string> &reticle::core::pipelinePassNames() {
  static const std::vector<std::string> Names = {
      "parse", "opt", "isel", "cascade", "place", "codegen", "timing"};
  return Names;
}

bool reticle::core::isPassDisableable(std::string_view Name) {
  return Name == "opt" || Name == "cascade" || Name == "timing";
}
