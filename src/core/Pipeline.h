//===- core/Pipeline.h - The pass pipeline ----------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure-7 pipeline as an explicit sequence of named passes:
///
///   parse -> opt -> isel -> cascade -> place -> codegen -> timing
///
/// Each pass declares its stage name, trace-span name, whether the options
/// enable it, which StageTimings slot it fills, and what program text to
/// snapshot after it runs. Pipeline::run provides the one mechanism every
/// observability feature hangs off: it opens the span, times the pass,
/// records the snapshot, files a session diagnostic on failure, and fires
/// the registered before/after hooks around every pass. `--dump-after`,
/// remarks, and traces all attach here rather than inside the stages.
///
/// A snapshot is recorded even for a pass the options disable (the text is
/// simply unchanged), so a snapshot directory always lists the same stages
/// and stage-to-stage diffs line up.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_CORE_PIPELINE_H
#define RETICLE_CORE_PIPELINE_H

#include "core/Compiler.h"
#include "core/Session.h"
#include "obs/Telemetry.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace reticle {
namespace core {

/// The program as it moves through the pipeline, plus the accumulating
/// result. Owned by one compile() call; never shared across threads.
struct CompileState {
  std::string Name;   ///< display name for spans and diagnostics
  std::string Source; ///< input text (only when compiling from source)
  /// The function under compilation; set by the parse pass, or at entry
  /// when compiling an already-built ir::Function.
  std::optional<ir::Function> Fn;
  /// Resolved target description (never null while the pipeline runs).
  const tdl::Target *Target = nullptr;
  CompileResult Result;
};

/// One named stage of the pipeline.
class Pass {
public:
  virtual ~Pass() = default;

  /// Stage identifier: "parse", "opt", "isel", "cascade", "place",
  /// "codegen", "timing". Names snapshots and diagnostics.
  virtual const char *name() const = 0;
  /// Trace-span name; differs from name() only where history demands it
  /// (the isel stage's span has always been called "select").
  virtual const char *spanName() const { return name(); }
  /// Whether the options enable this pass. Disabled passes are skipped
  /// but still snapshot, so the stage list stays stable.
  virtual bool enabled(const CompileOptions &Options) const { return true; }
  /// Runs the stage. Reads and writes \p State; records counters,
  /// remarks, and nested spans against Session.context().
  virtual Status run(CompileState &State, CompileSession &Session,
                     const CompileOptions &Options) = 0;
  /// Snapshot format after this pass ("ir", "asm", "verilog"), or null
  /// for passes with no program text of their own (timing).
  virtual const char *snapshotFormat() const { return nullptr; }
  virtual std::string snapshotText(const CompileState &State) const {
    return {};
  }
  /// Attaches the pass's headline statistics to its (just-closed) span.
  virtual void spanArgs(obs::Span &Sp, const CompileState &State) const {}
  /// Which StageTimings field this pass fills, or null for none.
  virtual double StageTimings::*timingSlot() const { return nullptr; }
};

/// An ordered list of passes with uniform instrumentation.
class Pipeline {
public:
  /// Observes a pass from outside. Before-hooks fire ahead of the span
  /// and timer; after-hooks fire once the pass's snapshot and timing slot
  /// are recorded (including for skipped passes, and for a failed pass
  /// just before run() returns its error).
  using Hook = std::function<void(const Pass &, const CompileState &,
                                  CompileSession &)>;

  Pipeline &add(std::unique_ptr<Pass> P) {
    Passes.push_back(std::move(P));
    return *this;
  }
  void beforeEach(Hook H) { Before.push_back(std::move(H)); }
  void afterEach(Hook H) { After.push_back(std::move(H)); }
  const std::vector<std::unique_ptr<Pass>> &passes() const { return Passes; }

  /// Runs every pass in order. Stops at the first failure, after filing
  /// it as a session diagnostic under the failing pass's name.
  Status run(CompileState &State, CompileSession &Session,
             const CompileOptions &Options) const;

private:
  std::vector<std::unique_ptr<Pass>> Passes;
  std::vector<Hook> Before;
  std::vector<Hook> After;
};

/// Builds the standard Figure-7 pipeline. With \p FromSource the pipeline
/// starts at the parse pass (and includes opt, enabled by
/// Options.Optimize); otherwise it starts at isel, with opt prepended
/// only when Options.Optimize asks for it — keeping the legacy
/// compile(Fn) stage list (isel, cascade, place, codegen) intact.
Pipeline buildPipeline(const CompileOptions &Options, bool FromSource);

/// The canonical stage names in pipeline order, for driver flag
/// validation (`--disable-pass=`, `--print-before=`).
const std::vector<std::string> &pipelinePassNames();

/// Whether \p Name is a stage the driver may disable. Only the optional
/// stages qualify (opt, cascade, timing); parse, isel, place, and codegen
/// are structural — skipping one leaves later stages without input.
bool isPassDisableable(std::string_view Name);

} // namespace core
} // namespace reticle

#endif // RETICLE_CORE_PIPELINE_H
