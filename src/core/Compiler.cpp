//===- core/Compiler.cpp - The Reticle compiler driver --------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "obs/Telemetry.h"
#include "tdl/Ultrascale.h"

#include <chrono>

using namespace reticle;
using namespace reticle::core;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

Result<CompileResult> reticle::core::compile(const ir::Function &Fn,
                                             const CompileOptions &Options) {
  using ResultT = CompileResult;
  const tdl::Target &Target =
      Options.Target ? *Options.Target : tdl::ultrascale();
  CompileResult Out;
  static obs::Counter &Compiles = obs::counter("core.compiles");
  ++Compiles;
  obs::Span TotalSp("compile");
  TotalSp.arg("fn", Fn.name());
  auto Total = std::chrono::steady_clock::now();

  // Instruction selection (Section 5.1).
  auto Start = std::chrono::steady_clock::now();
  {
    obs::Span Sp("select");
    Result<rasm::AsmProgram> Asm =
        isel::select(Fn, Target, &Out.SelectStats);
    if (!Asm)
      return fail<ResultT>(Asm.error());
    Out.Asm = Asm.take();
    Sp.arg("trees", Out.SelectStats.NumTrees);
    Sp.arg("asm_ops", Out.SelectStats.NumAsmOps);
  }
  Out.SelectMs = msSince(Start);
  if (Options.Snapshots)
    Options.Snapshots->add("isel", "asm", Out.Asm.str());

  // Layout optimization (Section 5.2): cascade chains are bounded by the
  // DSP column height of the target device.
  Start = std::chrono::steady_clock::now();
  if (Options.Cascade) {
    obs::Span Sp("cascade");
    unsigned MaxChain =
        std::max(2u, Options.Dev.maxHeight(ir::Resource::Dsp));
    if (Status S = isel::cascadePass(Out.Asm, Target, MaxChain,
                                     &Out.CascadeStats);
        !S)
      return fail<ResultT>(S.error());
    Sp.arg("chains", Out.CascadeStats.Chains);
    Sp.arg("rewritten", Out.CascadeStats.Rewritten);
  }
  Out.CascadeMs = msSince(Start);
  // Recorded even with the pass disabled, so a snapshot directory always
  // lists the same five stages and stage-to-stage diffs line up.
  if (Options.Snapshots)
    Options.Snapshots->add("cascade", "asm", Out.Asm.str());

  // Instruction placement (Section 5.3).
  Start = std::chrono::steady_clock::now();
  {
    obs::Span Sp("place");
    place::PlacementOptions PlaceOptions;
    PlaceOptions.Shrink = Options.Shrink;
    Result<rasm::AsmProgram> Placed =
        place::place(Out.Asm, Options.Dev, PlaceOptions, &Out.PlaceStats);
    if (!Placed)
      return fail<ResultT>(Placed.error());
    Out.Placed = Placed.take();
    // Defense in depth: independently re-verify the solver's answer against
    // the constraint system of Section 5.3 before trusting it downstream.
    if (Status S = place::checkPlacement(Out.Asm, Out.Placed, Options.Dev);
        !S)
      return fail<ResultT>("internal error: invalid placement accepted: " +
                           S.error());
    Sp.arg("solves", Out.PlaceStats.Solves);
    Sp.arg("conflicts", Out.PlaceStats.Conflicts);
    Sp.arg("max_col", Out.PlaceStats.MaxColumn);
    Sp.arg("max_row", Out.PlaceStats.MaxRow);
  }
  Out.PlaceMs = msSince(Start);
  if (Options.Snapshots)
    Options.Snapshots->add("place", "asm", Out.Placed.str());

  // Code generation (Section 5.4).
  Start = std::chrono::steady_clock::now();
  {
    obs::Span Sp("codegen");
    Result<verilog::Module> Mod =
        codegen::generate(Out.Placed, Target, Options.Dev, &Out.Util);
    if (!Mod)
      return fail<ResultT>(Mod.error());
    Out.Verilog = Mod.take();
    Sp.arg("luts", Out.Util.Luts);
    Sp.arg("dsps", Out.Util.Dsps);
  }
  Out.CodegenMs = msSince(Start);
  if (Options.Snapshots)
    Options.Snapshots->add("codegen", "verilog", Out.Verilog.str());

  Start = std::chrono::steady_clock::now();
  if (Options.Timing) {
    obs::Span Sp("timing");
    Result<timing::TimingReport> Report =
        timing::analyzeAsm(Out.Placed, Target, Options.Dev);
    if (!Report)
      return fail<ResultT>(Report.error());
    Out.Timing = Report.take();
    Sp.arg("critical_path_ns", Out.Timing.CriticalPathNs);
  }
  Out.TimingMs = msSince(Start);
  Out.TotalMs = msSince(Total);
  return Out;
}
