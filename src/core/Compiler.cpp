//===- core/Compiler.cpp - The Reticle compiler driver --------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "core/Pipeline.h"
#include "core/Session.h"
#include "tdl/Ultrascale.h"

#include <chrono>

using namespace reticle;
using namespace reticle::core;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Runs \p State through the standard pipeline inside \p Session,
/// wrapping it in the "compile" span and the total timer.
Result<CompileResult> runStandardPipeline(CompileState &State,
                                          const CompileOptions &Options,
                                          CompileSession &Session,
                                          bool FromSource) {
  using ResultT = CompileResult;
  const obs::Context &Ctx = Session.context();
  ++Ctx.counter("core.compiles");
  obs::Span TotalSp(Ctx, "compile");
  TotalSp.arg("fn", State.Name);
  auto Total = std::chrono::steady_clock::now();

  Pipeline P = buildPipeline(Options, FromSource);
  Status S = P.run(State, Session, Options);
  State.Result.Times.TotalMs = msSince(Total);
  if (!S)
    return fail<ResultT>(S.error());
  return std::move(State.Result);
}

} // namespace

Result<CompileResult> reticle::core::compile(const ir::Function &Fn,
                                             const CompileOptions &Options,
                                             CompileSession &Session) {
  CompileState State;
  State.Name = Fn.name();
  State.Fn = Fn;
  State.Target = Options.Target ? Options.Target : &tdl::ultrascale();
  return runStandardPipeline(State, Options, Session, /*FromSource=*/false);
}

Result<CompileResult> reticle::core::compile(const ir::Function &Fn,
                                             const CompileOptions &Options) {
  return compile(Fn, Options, CompileSession::global());
}

Result<CompileResult> reticle::core::compileSource(
    const std::string &Source, std::string_view Name,
    const CompileOptions &Options, CompileSession &Session) {
  CompileState State;
  State.Name = std::string(Name);
  State.Source = Source;
  State.Target = Options.Target ? Options.Target : &tdl::ultrascale();
  return runStandardPipeline(State, Options, Session, /*FromSource=*/true);
}

Result<CompileResult> reticle::core::compileSource(
    const std::string &Source, std::string_view Name,
    const CompileOptions &Options) {
  return compileSource(Source, Name, Options, CompileSession::global());
}
