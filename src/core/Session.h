//===- core/Session.h - Per-compilation observability state -----*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CompileSession owns every piece of mutable state one run of the
/// Figure-7 pipeline produces or consumes: the telemetry registry
/// (counters, gauges, trace spans), the remark stream, the per-stage
/// program snapshots, and the diagnostics the pipeline raised. Stages
/// receive the session's obs::Context explicitly, so two sessions in one
/// process never touch each other's state — which is what makes
/// core::compileBatch safe to run on a worker pool.
///
/// The process-global registries behind `obs::counter()` et al. survive as
/// exactly one distinguished session, CompileSession::global(), used by
/// the legacy single-session entry points.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_CORE_SESSION_H
#define RETICLE_CORE_SESSION_H

#include "obs/Context.h"
#include "obs/Remarks.h"
#include "obs/Snapshots.h"
#include "obs/Telemetry.h"

#include <memory>
#include <string>
#include <vector>

namespace reticle {
namespace core {

/// Owns the observability state of one compilation (or one batch item).
/// A session may serve many compile() calls sequentially; distinct
/// sessions may compile concurrently. The telemetry and remark sinks are
/// internally synchronized, the snapshot sink and diagnostics list are
/// not — they assume one pipeline runs in the session at a time.
class CompileSession {
public:
  /// A fresh session with its own telemetry registry and remark stream,
  /// both initially disabled/empty.
  CompileSession();
  ~CompileSession();

  CompileSession(const CompileSession &) = delete;
  CompileSession &operator=(const CompileSession &) = delete;

  /// The context stages record against. Stable for the session's lifetime.
  const obs::Context &context() const { return Ctx; }

  obs::Telemetry &telemetry() { return *Ctx.Telem; }
  const obs::Telemetry &telemetry() const { return *Ctx.Telem; }
  obs::RemarkStream &remarks() { return *Ctx.Rem; }
  const obs::RemarkStream &remarks() const { return *Ctx.Rem; }
  obs::Coverage &coverage() { return *Ctx.Cov; }
  const obs::Coverage &coverage() const { return *Ctx.Cov; }

  /// Per-stage program snapshots captured by the pipeline when
  /// captureSnapshots() is on (or when CompileOptions::Snapshots points at
  /// an external sink, which then takes precedence).
  obs::SnapshotSink &snapshots() { return Snaps; }
  const obs::SnapshotSink &snapshots() const { return Snaps; }
  void captureSnapshots(bool On = true) { Capture = On; }
  bool capturingSnapshots() const { return Capture; }

  /// One pipeline failure: which stage refused the program and why.
  struct Diagnostic {
    std::string Stage;
    std::string Message;
  };
  void diagnose(std::string Stage, std::string Message) {
    Diags.push_back({std::move(Stage), std::move(Message)});
  }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// True for the distinguished global session, whose telemetry and
  /// remarks are the process-wide `obs::defaultTelemetry()` /
  /// `obs::defaultRemarks()` registries.
  bool isGlobal() const { return !OwnedTelem; }

  /// The session behind the legacy single-session API: compile() without
  /// an explicit session argument, and the free functions in obs. Not for
  /// concurrent use.
  static CompileSession &global();

private:
  struct GlobalTag {};
  explicit CompileSession(GlobalTag);

  /// Null for the global session (which borrows the default registries).
  std::unique_ptr<obs::Telemetry> OwnedTelem;
  std::unique_ptr<obs::RemarkStream> OwnedRem;
  std::unique_ptr<obs::Coverage> OwnedCov;
  obs::Context Ctx;
  obs::SnapshotSink Snaps;
  bool Capture = false;
  std::vector<Diagnostic> Diags;
};

} // namespace core
} // namespace reticle

#endif // RETICLE_CORE_SESSION_H
