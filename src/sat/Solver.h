//===- sat/Solver.h - CDCL SAT solver ---------------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch CDCL SAT solver. The paper's instruction-placement stage
/// (Section 5.3) formulates layout as constraints and solves them with Z3;
/// this solver plays Z3's role here. It implements the standard
/// conflict-driven clause-learning loop: two-watched-literal propagation,
/// first-UIP conflict analysis with recursive clause minimization, VSIDS
/// branching with phase saving, Luby restarts, and activity-based learned-
/// clause reduction.
///
/// Beyond plain solve(), the solver supports MiniSat-style *assumption*
/// solving: solveWith() treats a list of literals as successive forced
/// decisions, and when the formula is unsatisfiable under them, final-
/// conflict analysis produces an *UNSAT core* — the subset of assumptions
/// that actually participated in the refutation. minimizeCore() shrinks
/// such a core further by deletion probing under a conflict budget. The
/// placement stage uses this to explain infeasible layouts in terms of
/// named constraints.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SAT_SOLVER_H
#define RETICLE_SAT_SOLVER_H

#include "obs/Context.h"

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace reticle {
namespace sat {

/// A 0-based propositional variable.
using Var = uint32_t;

/// A literal: a variable or its negation, encoded as 2*var+sign.
class Lit {
public:
  Lit() = default;
  Lit(Var V, bool Negated = false) : Code((V << 1) | unsigned(Negated)) {}

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }

  /// Dense index usable as an array key.
  uint32_t index() const { return Code; }

  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &Other) const = default;

private:
  uint32_t Code = 0;
};

/// Tri-state assignment value.
enum class LBool : uint8_t { False, True, Undef };

/// Solver outcome. Unknown is only produced when a conflict budget is
/// exhausted.
enum class Outcome : uint8_t { Sat, Unsat, Unknown };

/// A CDCL SAT solver over clauses added incrementally before solve().
/// Counters, spans and remarks record into the obs::Context the solver is
/// constructed with (the process-wide default when none is given), which
/// must outlive the solver.
class Solver {
public:
  explicit Solver(const obs::Context &Ctx = obs::defaultContext());

  /// Creates a fresh variable and returns it.
  Var newVar();
  uint32_t numVars() const { return VarCount; }
  size_t numClauses() const { return Clauses.size(); }

  /// Adds a clause. Returns false when the formula is already
  /// unsatisfiable at the root level (e.g. an empty clause after
  /// simplification); once false has been returned, solve() reports Unsat.
  bool addClause(std::vector<Lit> Lits);

  /// Convenience forms.
  bool addUnit(Lit A) { return addClause({A}); }
  bool addBinary(Lit A, Lit B) { return addClause({A, B}); }

  /// Runs the CDCL loop. With a nonzero \p ConflictBudget the search gives
  /// up after that many conflicts and reports Unknown (used by callers
  /// that can fall back, e.g. placement shrinking). Each call is traced as
  /// one "sat.solve" span and accumulated into the sat.* counters.
  Outcome solve(uint64_t ConflictBudget = 0);

  /// Like solve(), but under \p Assumptions: each literal is enqueued as a
  /// forced decision before free search begins. On Unsat, unsatCore()
  /// holds the subset of assumptions that took part in the refutation
  /// (empty when the formula is unsatisfiable without any assumptions).
  Outcome solveWith(const std::vector<Lit> &Assumptions,
                    uint64_t ConflictBudget = 0);

  /// The failed-assumption core from the most recent Unsat solveWith().
  /// Negating any literal of this set cannot restore satisfiability unless
  /// the core is not minimal; minimizeCore() tightens it.
  const std::vector<Lit> &unsatCore() const { return Core; }

  /// Deletion-based core minimization: repeatedly re-solves with one core
  /// literal dropped, keeping the drop whenever the remainder is still
  /// unsatisfiable within \p ProbeConflictBudget conflicts. Literals whose
  /// probe exhausts the budget are conservatively kept, so the result is
  /// always a valid (if not necessarily minimum) core.
  std::vector<Lit> minimizeCore(std::vector<Lit> Core,
                                uint64_t ProbeConflictBudget = 2000);

  /// Model access after a Sat outcome.
  bool value(Var V) const {
    assert(Model.size() == VarCount && "no model available");
    return Model[V];
  }

  /// Search statistics, for tests and benchmark reporting. Counters
  /// accumulate across solves; the histograms profile learned-clause
  /// quality (LBD = number of distinct decision levels in a learnt
  /// clause — low is good) and size.
  struct Statistics {
    uint64_t Decisions = 0;
    uint64_t Propagations = 0;
    uint64_t Conflicts = 0;
    uint64_t Restarts = 0;
    uint64_t Learned = 0;
    uint64_t Solves = 0;   ///< solve()/solveWith() calls
    uint64_t Unknowns = 0; ///< solves that exhausted their conflict budget
    double SolveMs = 0.0;  ///< wall-clock summed over all solves
    static constexpr size_t HistogramBuckets = 8;
    /// Bucket I counts learnt clauses with LBD == I+1; the last bucket
    /// collects LBD >= 8.
    std::array<uint64_t, HistogramBuckets> LbdHistogram{};
    /// Learnt-clause sizes, bucketed 1, 2, 3, 4, 5-8, 9-16, 17-32, >=33.
    std::array<uint64_t, HistogramBuckets> LearnedSizeHistogram{};
  };
  const Statistics &stats() const { return Stats; }

  /// The delta-profile of the most recent solve. Unlike the accumulated
  /// Statistics, this isolates one search — and it is filled for *every*
  /// outcome, Unknown included, so budget-exhausted probes still report
  /// the work they did.
  struct SolveProfile {
    Outcome Result = Outcome::Unknown;
    uint64_t Decisions = 0;
    uint64_t Propagations = 0;
    uint64_t Conflicts = 0;
    uint64_t Restarts = 0;
    uint64_t Learned = 0;
    double TimeMs = 0.0;
  };
  const SolveProfile &lastProfile() const { return Profile; }

private:
  struct Clause {
    std::vector<Lit> Lits;
    double Activity = 0.0;
    bool Learned = false;
  };
  using ClauseRef = uint32_t;
  static constexpr ClauseRef NoReason = UINT32_MAX;

  struct Watcher {
    ClauseRef Ref;
    Lit Blocker;
  };

  Outcome runSolve(const std::vector<Lit> *Assumptions,
                   uint64_t ConflictBudget);
  Outcome solveImpl(const std::vector<Lit> *Assumptions,
                    uint64_t ConflictBudget);
  void analyzeFinal(Lit FailedAssumption);
  void recordLearnt(const std::vector<Lit> &Learnt);

  LBool litValue(Lit L) const {
    LBool V = Assign[L.var()];
    if (V == LBool::Undef)
      return LBool::Undef;
    bool IsTrue = (V == LBool::True) != L.negated();
    return IsTrue ? LBool::True : LBool::False;
  }

  void enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
               uint32_t &BackLevel);
  bool litRedundant(Lit L, uint32_t AbstractLevels);
  void backtrack(uint32_t Level);
  void bumpVar(Var V);
  void bumpClause(Clause &C);
  void decayActivities();
  Lit pickBranchLit();
  void attachClause(ClauseRef Ref);
  void reduceDb();
  static uint32_t luby(uint32_t I);

  uint32_t VarCount = 0;
  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit::index()

  // Assignment trail.
  std::vector<LBool> Assign;
  std::vector<uint32_t> Level;
  std::vector<ClauseRef> Reason;
  std::vector<Lit> Trail;
  std::vector<uint32_t> TrailLimits;
  size_t PropagateHead = 0;

  // Branching.
  std::vector<double> VarActivity;
  std::vector<bool> SavedPhase;
  double VarInc = 1.0;
  double ClauseInc = 1.0;
  std::vector<Var> OrderHeap; // lazy binary heap keyed by activity
  std::vector<int32_t> HeapPos;
  void heapInsert(Var V);
  void heapDecrease(Var V);
  Var heapPop();
  bool heapEmpty() const { return OrderHeap.empty(); }
  bool heapLess(Var A, Var B) const {
    // Lower-index tiebreak: with untouched activities, decisions then
    // follow variable creation order, which gives one-hot encodings
    // first-fit-shaped models.
    if (VarActivity[A] != VarActivity[B])
      return VarActivity[A] > VarActivity[B];
    return A < B;
  }
  void heapSiftUp(size_t I);
  void heapSiftDown(size_t I);

  // Conflict analysis scratch.
  std::vector<uint8_t> Seen;
  std::vector<Lit> AnalyzeStack;
  std::vector<Lit> AnalyzeToClear;
  std::vector<uint32_t> LbdScratch;

  bool OkFlag = true;
  std::vector<bool> Model;
  std::vector<Lit> Core;
  Statistics Stats;
  SolveProfile Profile;
  const obs::Context &Ctx;
};

} // namespace sat
} // namespace reticle

#endif // RETICLE_SAT_SOLVER_H
