//===- sat/Solver.h - CDCL SAT solver ---------------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch CDCL SAT solver. The paper's instruction-placement stage
/// (Section 5.3) formulates layout as constraints and solves them with Z3;
/// this solver plays Z3's role here. It implements the standard
/// conflict-driven clause-learning loop: two-watched-literal propagation,
/// first-UIP conflict analysis with recursive clause minimization, VSIDS
/// branching with phase saving, Luby restarts, and activity-based learned-
/// clause reduction.
///
/// Beyond plain solve(), the solver supports MiniSat-style *assumption*
/// solving: solveWith() treats a list of literals as successive forced
/// decisions, and when the formula is unsatisfiable under them, final-
/// conflict analysis produces an *UNSAT core* — the subset of assumptions
/// that actually participated in the refutation. minimizeCore() shrinks
/// such a core further by deletion probing under a conflict budget. The
/// placement stage uses this to explain infeasible layouts in terms of
/// named constraints.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SAT_SOLVER_H
#define RETICLE_SAT_SOLVER_H

#include "obs/Context.h"

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace reticle {
namespace sat {

/// A 0-based propositional variable.
using Var = uint32_t;

/// A literal: a variable or its negation, encoded as 2*var+sign.
class Lit {
public:
  Lit() = default;
  Lit(Var V, bool Negated = false) : Code((V << 1) | unsigned(Negated)) {}

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }

  /// Dense index usable as an array key.
  uint32_t index() const { return Code; }

  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &Other) const = default;

private:
  uint32_t Code = 0;
};

/// Tri-state assignment value.
enum class LBool : uint8_t { False, True, Undef };

/// Solver outcome. Unknown is only produced when a conflict budget is
/// exhausted.
enum class Outcome : uint8_t { Sat, Unsat, Unknown };

/// A DRAT-style proof sink. The solver logs every learnt clause as an
/// addition, every reduceDb victim as a deletion ("d" line), the failed-
/// assumption core of an assumption-Unsat solve as its implied clause
/// (the disjunction of the negated core literals, which is RUP w.r.t. the
/// formula plus the additions logged before it), and a root refutation as
/// the empty clause — all in DIMACS literal notation, plus "c" comment
/// lines callers may interleave to delimit solves. Deletions can be
/// suppressed (portfolio mode merges several lanes' logs into one stream,
/// where a deletion by one lane must not invalidate another lane's later
/// inferences). The writer is plain state with no telemetry dependency,
/// so proof logging works in RETICLE_NO_TELEMETRY builds.
class ProofWriter {
public:
  void add(const std::vector<Lit> &Lits) {
    line("", Lits);
    ++Added;
  }
  void del(const std::vector<Lit> &Lits) {
    if (NoDeletions)
      return;
    line("d ", Lits);
    ++Deleted;
  }
  /// The empty clause: the formula is refuted outright.
  void addEmpty() {
    Text += "0\n";
    ++Added;
  }
  void comment(const std::string &Note) {
    Text += "c ";
    Text += Note;
    Text += '\n';
  }
  /// Splices another writer's finished text (used when merging per-lane
  /// portfolio logs in deterministic lane order).
  void appendRaw(const std::string &Raw) { Text += Raw; }
  /// Moves the accumulated text out, leaving the writer empty.
  std::string take() {
    std::string Out = std::move(Text);
    Text.clear();
    return Out;
  }
  void suppressDeletions() { NoDeletions = true; }
  const std::string &str() const { return Text; }
  uint64_t added() const { return Added; }
  uint64_t deleted() const { return Deleted; }

private:
  void line(const char *Prefix, const std::vector<Lit> &Lits) {
    Text += Prefix;
    for (Lit L : Lits) {
      long D = static_cast<long>(L.var()) + 1;
      Text += std::to_string(L.negated() ? -D : D);
      Text += ' ';
    }
    Text += "0\n";
  }

  std::string Text;
  bool NoDeletions = false;
  uint64_t Added = 0;
  uint64_t Deleted = 0;
};

/// A bounded lock-free clause-publication buffer: one producer (a solver
/// lane inside its search) pushes short learnt clauses, consumers read
/// everything published so far after a synchronization point (the
/// portfolio's round barrier). Pushes beyond the capacity are counted and
/// dropped — the bound is what keeps sharing cheap. The single release
/// store on Count publishes the slot contents to acquire-loading readers.
class ClauseExportBuffer {
public:
  static constexpr size_t MaxLits = 8;
  static constexpr size_t Capacity = 256;

  /// Producer side. Returns false (and counts a drop) when the clause is
  /// too long or the buffer is full.
  bool tryPush(const Lit *Lits, size_t N) {
    if (N == 0 || N > MaxLits)
      return false;
    uint32_t I = Count.load(std::memory_order_relaxed);
    if (I >= Capacity) {
      ++Dropped;
      return false;
    }
    Slots[I].Size = static_cast<uint32_t>(N);
    for (size_t K = 0; K < N; ++K)
      Slots[I].Lits[K] = Lits[K];
    Count.store(I + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side (call only across a synchronization point).
  size_t size() const { return Count.load(std::memory_order_acquire); }
  size_t litCount(size_t I) const { return Slots[I].Size; }
  const Lit *lits(size_t I) const { return Slots[I].Lits.data(); }
  uint64_t dropped() const { return Dropped; }

  /// Resets for the next round (consumer side, between rounds).
  void clear() {
    Count.store(0, std::memory_order_relaxed);
    Dropped = 0;
  }

private:
  struct Slot {
    uint32_t Size = 0;
    std::array<Lit, MaxLits> Lits{};
  };
  std::array<Slot, Capacity> Slots{};
  std::atomic<uint32_t> Count{0};
  uint64_t Dropped = 0; // producer-only; read across the barrier
};

/// A CDCL SAT solver over clauses added incrementally before solve().
/// Counters, spans and remarks record into the obs::Context the solver is
/// constructed with (the process-wide default when none is given), which
/// must outlive the solver.
class Solver {
public:
  /// Deterministic policy knobs. The defaults reproduce the historical
  /// single-configuration behavior bit for bit; a portfolio diversifies
  /// lanes by varying them (see Portfolio::laneConfig). Every knob is
  /// deterministic — Seed feeds a hash, never a stateful RNG — so a
  /// solver's run is a pure function of its config and call sequence.
  struct Config {
    /// Seeds the phase scrambler when PhaseInit is Hashed.
    uint64_t Seed = 0;
    /// VSIDS decay: each conflict divides the activity increment by this.
    double VarDecay = 0.95;
    /// Luby restart unit, in conflicts.
    uint64_t RestartBase = 64;
    /// Initial saved phase for fresh variables. True yields first-fit
    /// models on one-hot encodings (see newVar); False prefers exclusion;
    /// Hashed scrambles per variable from Seed.
    enum class PhaseInit : uint8_t { True, False, Hashed };
    PhaseInit Phase = PhaseInit::True;
  };

  explicit Solver(const obs::Context &Ctx = obs::defaultContext());
  Solver(const Config &Cfg, const obs::Context &Ctx = obs::defaultContext());

  const Config &config() const { return Cfg; }

  /// Creates a fresh variable and returns it.
  Var newVar();
  uint32_t numVars() const { return VarCount; }
  size_t numClauses() const { return Clauses.size(); }

  /// Overrides the saved phase of \p V, steering the next free decision
  /// on it. The placement shrink search pins its bound-selector variables
  /// to false so an unassumed selector never tightens a bound on its own.
  void setPhase(Var V, bool Phase) {
    assert(V < VarCount && "unknown variable");
    SavedPhase[V] = Phase;
  }

  /// True while the formula is not yet refuted at the root level.
  bool ok() const { return OkFlag; }

  /// Adds a clause. Returns false when the formula is already
  /// unsatisfiable at the root level (e.g. an empty clause after
  /// simplification); once false has been returned, solve() reports Unsat.
  bool addClause(std::vector<Lit> Lits);

  /// Convenience forms.
  bool addUnit(Lit A) { return addClause({A}); }
  bool addBinary(Lit A, Lit B) { return addClause({A, B}); }

  /// Adds a clause learned by another solver over the same variable
  /// numbering (portfolio clause sharing). The clause is attached as a
  /// *learned* clause, so reduceDb may age it out again. Must be called
  /// at the root level, between solves. Returns false when the import
  /// refutes the formula at the root.
  bool importClause(const std::vector<Lit> &Lits);

  /// Attaches a DRAT-style proof sink (null detaches). The solver does
  /// not own the writer.
  void setProof(ProofWriter *P) { Proof = P; }

  /// Attaches a clause-export buffer (null detaches): every learnt clause
  /// of at most ClauseExportBuffer::MaxLits literals is published to it.
  void setExport(ClauseExportBuffer *B) { Export = B; }

  /// Runs the CDCL loop. With a nonzero \p ConflictBudget the search gives
  /// up after that many conflicts and reports Unknown (used by callers
  /// that can fall back, e.g. placement shrinking). Each call is traced as
  /// one "sat.solve" span and accumulated into the sat.* counters.
  Outcome solve(uint64_t ConflictBudget = 0);

  /// Like solve(), but under \p Assumptions: each literal is enqueued as a
  /// forced decision before free search begins. On Unsat, unsatCore()
  /// holds the subset of assumptions that took part in the refutation
  /// (empty when the formula is unsatisfiable without any assumptions).
  Outcome solveWith(const std::vector<Lit> &Assumptions,
                    uint64_t ConflictBudget = 0);

  /// The failed-assumption core from the most recent Unsat solveWith().
  /// Negating any literal of this set cannot restore satisfiability unless
  /// the core is not minimal; minimizeCore() tightens it.
  const std::vector<Lit> &unsatCore() const { return Core; }

  /// Deletion-based core minimization: repeatedly re-solves with one core
  /// literal dropped, keeping the drop whenever the remainder is still
  /// unsatisfiable within \p ProbeConflictBudget conflicts. Literals whose
  /// probe exhausts the budget are conservatively kept, so the result is
  /// always a valid (if not necessarily minimum) core.
  std::vector<Lit> minimizeCore(std::vector<Lit> Core,
                                uint64_t ProbeConflictBudget = 2000);

  /// Model access after a Sat outcome.
  bool value(Var V) const {
    assert(Model.size() == VarCount && "no model available");
    return Model[V];
  }

  /// Search statistics, for tests and benchmark reporting. Counters
  /// accumulate across solves; the histograms profile learned-clause
  /// quality (LBD = number of distinct decision levels in a learnt
  /// clause — low is good) and size.
  struct Statistics {
    uint64_t Decisions = 0;
    uint64_t Propagations = 0;
    uint64_t Conflicts = 0;
    uint64_t Restarts = 0;
    uint64_t Learned = 0;
    uint64_t Solves = 0;   ///< solve()/solveWith() calls
    uint64_t Unknowns = 0; ///< solves that exhausted their conflict budget
    uint64_t Imported = 0; ///< clauses accepted via importClause()
    double SolveMs = 0.0;  ///< wall-clock summed over all solves
    static constexpr size_t HistogramBuckets = 8;
    /// Bucket I counts learnt clauses with LBD == I+1; the last bucket
    /// collects LBD >= 8.
    std::array<uint64_t, HistogramBuckets> LbdHistogram{};
    /// Learnt-clause sizes, bucketed 1, 2, 3, 4, 5-8, 9-16, 17-32, >=33.
    std::array<uint64_t, HistogramBuckets> LearnedSizeHistogram{};

    /// Member-wise After - Before. The accounting primitive for callers
    /// that keep one solver alive across many solves: snapshot stats()
    /// before a probe and delta after it, instead of re-adding the
    /// cumulative totals (which double-counts under reuse).
    static Statistics delta(const Statistics &After,
                            const Statistics &Before) {
      Statistics D;
      D.Decisions = After.Decisions - Before.Decisions;
      D.Propagations = After.Propagations - Before.Propagations;
      D.Conflicts = After.Conflicts - Before.Conflicts;
      D.Restarts = After.Restarts - Before.Restarts;
      D.Learned = After.Learned - Before.Learned;
      D.Solves = After.Solves - Before.Solves;
      D.Unknowns = After.Unknowns - Before.Unknowns;
      D.Imported = After.Imported - Before.Imported;
      D.SolveMs = After.SolveMs - Before.SolveMs;
      for (size_t I = 0; I < HistogramBuckets; ++I) {
        D.LbdHistogram[I] = After.LbdHistogram[I] - Before.LbdHistogram[I];
        D.LearnedSizeHistogram[I] =
            After.LearnedSizeHistogram[I] - Before.LearnedSizeHistogram[I];
      }
      return D;
    }
  };
  const Statistics &stats() const { return Stats; }

  /// The delta-profile of the most recent solve. Unlike the accumulated
  /// Statistics, this isolates one search — and it is filled for *every*
  /// outcome, Unknown included, so budget-exhausted probes still report
  /// the work they did.
  struct SolveProfile {
    Outcome Result = Outcome::Unknown;
    uint64_t Decisions = 0;
    uint64_t Propagations = 0;
    uint64_t Conflicts = 0;
    uint64_t Restarts = 0;
    uint64_t Learned = 0;
    double TimeMs = 0.0;
  };
  const SolveProfile &lastProfile() const { return Profile; }

private:
  struct Clause {
    std::vector<Lit> Lits;
    double Activity = 0.0;
    bool Learned = false;
  };
  using ClauseRef = uint32_t;
  static constexpr ClauseRef NoReason = UINT32_MAX;

  struct Watcher {
    ClauseRef Ref;
    Lit Blocker;
  };

  Outcome runSolve(const std::vector<Lit> *Assumptions,
                   uint64_t ConflictBudget);
  Outcome solveImpl(const std::vector<Lit> *Assumptions,
                    uint64_t ConflictBudget);
  void analyzeFinal(Lit FailedAssumption);
  void recordLearnt(const std::vector<Lit> &Learnt);

  LBool litValue(Lit L) const {
    LBool V = Assign[L.var()];
    if (V == LBool::Undef)
      return LBool::Undef;
    bool IsTrue = (V == LBool::True) != L.negated();
    return IsTrue ? LBool::True : LBool::False;
  }

  void enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
               uint32_t &BackLevel);
  bool litRedundant(Lit L, uint32_t AbstractLevels);
  void backtrack(uint32_t Level);
  void bumpVar(Var V);
  void bumpClause(Clause &C);
  void decayActivities();
  Lit pickBranchLit();
  void attachClause(ClauseRef Ref);
  void reduceDb();
  static uint32_t luby(uint32_t I);

  uint32_t VarCount = 0;
  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit::index()

  // Assignment trail.
  std::vector<LBool> Assign;
  std::vector<uint32_t> Level;
  std::vector<ClauseRef> Reason;
  std::vector<Lit> Trail;
  std::vector<uint32_t> TrailLimits;
  size_t PropagateHead = 0;

  // Branching.
  std::vector<double> VarActivity;
  std::vector<bool> SavedPhase;
  double VarInc = 1.0;
  double ClauseInc = 1.0;
  std::vector<Var> OrderHeap; // lazy binary heap keyed by activity
  std::vector<int32_t> HeapPos;
  void heapInsert(Var V);
  void heapDecrease(Var V);
  Var heapPop();
  bool heapEmpty() const { return OrderHeap.empty(); }
  bool heapLess(Var A, Var B) const {
    // Lower-index tiebreak: with untouched activities, decisions then
    // follow variable creation order, which gives one-hot encodings
    // first-fit-shaped models.
    if (VarActivity[A] != VarActivity[B])
      return VarActivity[A] > VarActivity[B];
    return A < B;
  }
  void heapSiftUp(size_t I);
  void heapSiftDown(size_t I);

  // Conflict analysis scratch.
  std::vector<uint8_t> Seen;
  std::vector<Lit> AnalyzeStack;
  std::vector<Lit> AnalyzeToClear;
  std::vector<uint32_t> LbdScratch;

  bool OkFlag = true;
  std::vector<bool> Model;
  std::vector<Lit> Core;
  Statistics Stats;
  SolveProfile Profile;
  Config Cfg;
  ProofWriter *Proof = nullptr;
  ClauseExportBuffer *Export = nullptr;
  const obs::Context &Ctx;
};

} // namespace sat
} // namespace reticle

#endif // RETICLE_SAT_SOLVER_H
