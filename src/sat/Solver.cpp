//===- sat/Solver.cpp - CDCL SAT solver ----------------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include "obs/Context.h"

#include <algorithm>
#include <chrono>

using namespace reticle;
using namespace reticle::sat;

Solver::Solver(const obs::Context &Ctx) : Ctx(Ctx) {}

Solver::Solver(const Config &Cfg, const obs::Context &Ctx)
    : Cfg(Cfg), Ctx(Ctx) {}

namespace {
/// splitmix64: a stateless deterministic scrambler for hashed phase init.
uint64_t phaseHash(uint64_t Seed, Var V) {
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ull * (uint64_t(V) + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}
} // namespace

Var Solver::newVar() {
  Var V = VarCount++;
  Assign.push_back(LBool::Undef);
  Level.push_back(0);
  Reason.push_back(NoReason);
  VarActivity.push_back(0.0);
  // Default phase true: for one-hot encodings (e.g. placement slots) the
  // first decision then *selects* the earliest candidate instead of
  // excluding candidates one by one, which yields compact first-fit-like
  // models. Portfolio lanes diversify this through Config::Phase.
  bool Phase = true;
  switch (Cfg.Phase) {
  case Config::PhaseInit::True:
    break;
  case Config::PhaseInit::False:
    Phase = false;
    break;
  case Config::PhaseInit::Hashed:
    Phase = phaseHash(Cfg.Seed, V) & 1;
    break;
  }
  SavedPhase.push_back(Phase);
  Seen.push_back(0);
  HeapPos.push_back(-1);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

bool Solver::addClause(std::vector<Lit> Lits) {
  if (!OkFlag)
    return false;
  assert(TrailLimits.empty() && "clauses must be added at the root level");

  // Simplify: sort, drop duplicates, detect tautologies, drop root-false
  // literals, and detect root-satisfied clauses.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.index() < B.index(); });
  std::vector<Lit> Out;
  Out.reserve(Lits.size());
  for (size_t I = 0; I < Lits.size(); ++I) {
    Lit L = Lits[I];
    assert(L.var() < VarCount && "literal over unknown variable");
    if (I + 1 < Lits.size() && Lits[I + 1] == ~L)
      return true; // tautology: always satisfied
    if (I > 0 && L == Lits[I - 1])
      continue; // duplicate
    LBool V = litValue(L);
    if (V == LBool::True)
      return true; // satisfied at root
    if (V == LBool::False)
      continue; // cannot help
    Out.push_back(L);
  }
  if (Out.empty()) {
    OkFlag = false;
    if (Proof)
      Proof->addEmpty();
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], NoReason);
    if (propagate() != NoReason) {
      OkFlag = false;
      if (Proof)
        Proof->addEmpty();
      return false;
    }
    return true;
  }
  Clause C;
  C.Lits = std::move(Out);
  Clauses.push_back(std::move(C));
  attachClause(static_cast<ClauseRef>(Clauses.size() - 1));
  return true;
}

bool Solver::importClause(const std::vector<Lit> &Lits) {
  assert(TrailLimits.empty() && "imports happen at the root, between solves");
  if (!OkFlag)
    return false;
  // Same simplification as addClause: the exporter's clause is formula-
  // implied, so dropping root-false literals and root-satisfied copies is
  // sound against this solver's root trail too. No proof line is emitted —
  // in a merged portfolio log the exporting lane already logged the
  // addition.
  std::vector<Lit> Sorted = Lits;
  std::sort(Sorted.begin(), Sorted.end(),
            [](Lit A, Lit B) { return A.index() < B.index(); });
  std::vector<Lit> Out;
  Out.reserve(Sorted.size());
  for (size_t I = 0; I < Sorted.size(); ++I) {
    Lit L = Sorted[I];
    assert(L.var() < VarCount && "imported literal over unknown variable");
    if (I + 1 < Sorted.size() && Sorted[I + 1] == ~L)
      return true; // tautology
    if (I > 0 && L == Sorted[I - 1])
      continue;
    LBool V = litValue(L);
    if (V == LBool::True)
      return true; // already satisfied at the root
    if (V == LBool::False)
      continue;
    Out.push_back(L);
  }
  ++Stats.Imported;
  if (Out.empty()) {
    OkFlag = false;
    if (Proof)
      Proof->addEmpty();
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], NoReason);
    if (propagate() != NoReason) {
      OkFlag = false;
      if (Proof)
        Proof->addEmpty();
      return false;
    }
    return true;
  }
  Clause C;
  C.Lits = std::move(Out);
  C.Learned = true;
  C.Activity = ClauseInc;
  Clauses.push_back(std::move(C));
  attachClause(static_cast<ClauseRef>(Clauses.size() - 1));
  return true;
}

void Solver::attachClause(ClauseRef Ref) {
  const Clause &C = Clauses[Ref];
  assert(C.Lits.size() >= 2 && "attaching a short clause");
  Watches[(~C.Lits[0]).index()].push_back({Ref, C.Lits[1]});
  Watches[(~C.Lits[1]).index()].push_back({Ref, C.Lits[0]});
}

void Solver::enqueue(Lit L, ClauseRef From) {
  assert(litValue(L) == LBool::Undef && "enqueueing an assigned literal");
  Assign[L.var()] = L.negated() ? LBool::False : LBool::True;
  Level[L.var()] = static_cast<uint32_t>(TrailLimits.size());
  Reason[L.var()] = From;
  Trail.push_back(L);
}

Solver::ClauseRef Solver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++];
    ++Stats.Propagations;
    std::vector<Watcher> &Ws = Watches[P.index()];
    size_t Keep = 0;
    for (size_t I = 0; I < Ws.size(); ++I) {
      Watcher W = Ws[I];
      // Cheap skip when the blocker is already true.
      if (litValue(W.Blocker) == LBool::True) {
        Ws[Keep++] = W;
        continue;
      }
      Clause &C = Clauses[W.Ref];
      // Normalize so that the false watched literal is Lits[1].
      Lit NotP = ~P;
      if (C.Lits[0] == NotP)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == NotP && "watch invariant violated");
      // First literal true: keep watching.
      if (litValue(C.Lits[0]) == LBool::True) {
        Ws[Keep++] = {W.Ref, C.Lits[0]};
        continue;
      }
      // Find a new literal to watch.
      bool Moved = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (litValue(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[(~C.Lits[1]).index()].push_back({W.Ref, C.Lits[0]});
          Moved = true;
          break;
        }
      }
      if (Moved)
        continue;
      // Unit or conflicting.
      Ws[Keep++] = {W.Ref, C.Lits[0]};
      if (litValue(C.Lits[0]) == LBool::False) {
        // Conflict: restore untraversed watchers and report.
        for (size_t K = I + 1; K < Ws.size(); ++K)
          Ws[Keep++] = Ws[K];
        Ws.resize(Keep);
        PropagateHead = Trail.size();
        return W.Ref;
      }
      enqueue(C.Lits[0], W.Ref);
    }
    Ws.resize(Keep);
  }
  return NoReason;
}

void Solver::bumpVar(Var V) {
  VarActivity[V] += VarInc;
  if (VarActivity[V] > 1e100) {
    for (double &A : VarActivity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapPos[V] >= 0)
    heapDecrease(V);
}

void Solver::bumpClause(Clause &C) {
  C.Activity += ClauseInc;
  if (C.Activity > 1e20) {
    for (Clause &Other : Clauses)
      if (Other.Learned)
        Other.Activity *= 1e-20;
    ClauseInc *= 1e-20;
  }
}

void Solver::decayActivities() {
  VarInc /= Cfg.VarDecay;
  ClauseInc /= 0.999;
}

void Solver::analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
                     uint32_t &BackLevel) {
  Learnt.clear();
  Learnt.push_back(Lit()); // slot for the asserting literal
  uint32_t CurrentLevel = static_cast<uint32_t>(TrailLimits.size());
  uint32_t Counter = 0;
  Lit P;
  bool HaveP = false;
  size_t TrailIndex = Trail.size();
  ClauseRef ReasonRef = Conflict;

  // Walk the implication graph backwards to the first UIP.
  while (true) {
    assert(ReasonRef != NoReason && "reached a decision without a reason");
    Clause &C = Clauses[ReasonRef];
    if (C.Learned)
      bumpClause(C);
    for (size_t I = HaveP ? 1 : 0; I < C.Lits.size(); ++I) {
      Lit Q = C.Lits[I];
      if (HaveP && Q == P)
        continue;
      Var V = Q.var();
      if (Seen[V] || Level[V] == 0)
        continue;
      Seen[V] = 1;
      AnalyzeToClear.push_back(Q);
      bumpVar(V);
      if (Level[V] >= CurrentLevel)
        ++Counter;
      else
        Learnt.push_back(Q);
    }
    // Select the next literal to expand.
    while (!Seen[Trail[TrailIndex - 1].var()])
      --TrailIndex;
    --TrailIndex;
    P = Trail[TrailIndex];
    HaveP = true;
    Seen[P.var()] = 0;
    ReasonRef = Reason[P.var()];
    if (--Counter == 0)
      break;
  }
  Learnt[0] = ~P;

  // Conflict-clause minimization: drop literals implied by the rest.
  uint32_t AbstractLevels = 0;
  for (size_t I = 1; I < Learnt.size(); ++I)
    AbstractLevels |= uint32_t(1) << (Level[Learnt[I].var()] & 31);
  size_t Keep = 1;
  for (size_t I = 1; I < Learnt.size(); ++I)
    if (Reason[Learnt[I].var()] == NoReason ||
        !litRedundant(Learnt[I], AbstractLevels))
      Learnt[Keep++] = Learnt[I];
  Learnt.resize(Keep);

  // Compute the backtrack level (second-highest level in the clause).
  BackLevel = 0;
  if (Learnt.size() > 1) {
    size_t MaxIndex = 1;
    for (size_t I = 2; I < Learnt.size(); ++I)
      if (Level[Learnt[I].var()] > Level[Learnt[MaxIndex].var()])
        MaxIndex = I;
    std::swap(Learnt[1], Learnt[MaxIndex]);
    BackLevel = Level[Learnt[1].var()];
  }
  for (Lit L : AnalyzeToClear)
    Seen[L.var()] = 0;
  AnalyzeToClear.clear();
}

bool Solver::litRedundant(Lit L, uint32_t AbstractLevels) {
  AnalyzeStack.clear();
  AnalyzeStack.push_back(L);
  size_t ClearStart = AnalyzeToClear.size();
  while (!AnalyzeStack.empty()) {
    Lit Cur = AnalyzeStack.back();
    AnalyzeStack.pop_back();
    assert(Reason[Cur.var()] != NoReason && "decision on analyze stack");
    const Clause &C = Clauses[Reason[Cur.var()]];
    for (size_t I = 1; I < C.Lits.size(); ++I) {
      Lit Q = C.Lits[I];
      Var V = Q.var();
      if (Seen[V] || Level[V] == 0)
        continue;
      bool LevelMatches = (uint32_t(1) << (Level[V] & 31)) & AbstractLevels;
      if (Reason[V] == NoReason || !LevelMatches) {
        // Cannot resolve this literal away: undo marks made here.
        for (size_t K = ClearStart; K < AnalyzeToClear.size(); ++K)
          Seen[AnalyzeToClear[K].var()] = 0;
        AnalyzeToClear.resize(ClearStart);
        return false;
      }
      Seen[V] = 1;
      AnalyzeToClear.push_back(Q);
      AnalyzeStack.push_back(Q);
    }
  }
  return true;
}

void Solver::backtrack(uint32_t TargetLevel) {
  if (TrailLimits.size() <= TargetLevel)
    return;
  size_t Bound = TrailLimits[TargetLevel];
  for (size_t I = Trail.size(); I > Bound; --I) {
    Var V = Trail[I - 1].var();
    SavedPhase[V] = Assign[V] == LBool::True;
    Assign[V] = LBool::Undef;
    Reason[V] = NoReason;
    if (HeapPos[V] < 0)
      heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLimits.resize(TargetLevel);
  PropagateHead = Trail.size();
}

Lit Solver::pickBranchLit() {
  while (!heapEmpty()) {
    Var V = heapPop();
    if (Assign[V] == LBool::Undef)
      return Lit(V, !SavedPhase[V]);
  }
  return Lit(UINT32_MAX >> 1, false); // sentinel: all assigned
}

void Solver::reduceDb() {
  // Keep roughly the most active half of the learned clauses. Clauses that
  // are reasons for current assignments are locked. Since ClauseRefs are
  // indices, removal works by rebuilding the clause list and all watches.
  std::vector<ClauseRef> Learned;
  for (ClauseRef I = 0; I < Clauses.size(); ++I)
    if (Clauses[I].Learned)
      Learned.push_back(I);
  if (Learned.size() < 64)
    return;
  std::sort(Learned.begin(), Learned.end(), [&](ClauseRef A, ClauseRef B) {
    return Clauses[A].Activity > Clauses[B].Activity;
  });
  std::vector<bool> Drop(Clauses.size(), false);
  std::vector<bool> Locked(Clauses.size(), false);
  for (Var V = 0; V < VarCount; ++V)
    if (Assign[V] != LBool::Undef && Reason[V] != NoReason)
      Locked[Reason[V]] = true;
  for (size_t I = Learned.size() / 2; I < Learned.size(); ++I)
    if (!Locked[Learned[I]] && Clauses[Learned[I]].Lits.size() > 2)
      Drop[Learned[I]] = true;

  std::vector<Clause> Kept;
  std::vector<ClauseRef> Remap(Clauses.size(), NoReason);
  Kept.reserve(Clauses.size());
  for (ClauseRef I = 0; I < Clauses.size(); ++I) {
    if (Drop[I]) {
      if (Proof)
        Proof->del(Clauses[I].Lits);
      continue;
    }
    Remap[I] = static_cast<ClauseRef>(Kept.size());
    Kept.push_back(std::move(Clauses[I]));
  }
  Clauses = std::move(Kept);
  for (ClauseRef &R : Reason)
    if (R != NoReason)
      R = Remap[R];
  for (std::vector<Watcher> &Ws : Watches)
    Ws.clear();
  for (ClauseRef I = 0; I < Clauses.size(); ++I)
    attachClause(I);
}

uint32_t Solver::luby(uint32_t I) {
  // The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...,
  // computed with MiniSat's iterative scheme.
  uint32_t Size = 1, Seq = 0;
  while (Size < I + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != I) {
    Size = (Size - 1) >> 1;
    --Seq;
    I %= Size;
  }
  return uint32_t(1) << Seq;
}

Outcome Solver::solve(uint64_t ConflictBudget) {
  return runSolve(nullptr, ConflictBudget);
}

Outcome Solver::solveWith(const std::vector<Lit> &Assumptions,
                          uint64_t ConflictBudget) {
  return runSolve(&Assumptions, ConflictBudget);
}

Outcome Solver::runSolve(const std::vector<Lit> *Assumptions,
                         uint64_t ConflictBudget) {
  obs::Counter &Solves = Ctx.counter("sat.solves");
  obs::Counter &Decisions = Ctx.counter("sat.decisions");
  obs::Counter &Propagations = Ctx.counter("sat.propagations");
  obs::Counter &Conflicts = Ctx.counter("sat.conflicts");
  obs::Counter &Restarts = Ctx.counter("sat.restarts");
  obs::Counter &Learned = Ctx.counter("sat.learned");

  obs::Span Sp(Ctx, "sat.solve");
  Sp.arg("vars", static_cast<uint64_t>(VarCount));
  Sp.arg("clauses", static_cast<uint64_t>(Clauses.size()));
  if (Assumptions)
    Sp.arg("assumptions", static_cast<uint64_t>(Assumptions->size()));
  Statistics Before = Stats;
  auto T0 = std::chrono::steady_clock::now();
  Outcome O = solveImpl(Assumptions, ConflictBudget);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  // The per-solve delta profile is filled for every outcome — a budget-
  // exhausted (Unknown) probe still reports the conflicts it burned.
  Profile.Result = O;
  Profile.Decisions = Stats.Decisions - Before.Decisions;
  Profile.Propagations = Stats.Propagations - Before.Propagations;
  Profile.Conflicts = Stats.Conflicts - Before.Conflicts;
  Profile.Restarts = Stats.Restarts - Before.Restarts;
  Profile.Learned = Stats.Learned - Before.Learned;
  Profile.TimeMs = Ms;
  ++Stats.Solves;
  if (O == Outcome::Unknown)
    ++Stats.Unknowns;
  Stats.SolveMs += Ms;
  Ctx.histogram("sat.solve_ms").record(Ms);
  ++Solves;
  Decisions += Profile.Decisions;
  Propagations += Profile.Propagations;
  Conflicts += Profile.Conflicts;
  Restarts += Profile.Restarts;
  Learned += Profile.Learned;
  Sp.arg("conflicts", Profile.Conflicts);
  Sp.arg("outcome", O == Outcome::Sat     ? "sat"
                    : O == Outcome::Unsat ? "unsat"
                                          : "unknown");
  if (O == Outcome::Unsat && Ctx.remarksEnabled()) {
    obs::Remark R(Ctx, "sat", "unsat");
    R.message("formula with " + std::to_string(VarCount) + " var(s), " +
              std::to_string(Clauses.size()) + " clause(s) is unsatisfiable")
        .arg("vars", static_cast<uint64_t>(VarCount))
        .arg("clauses", static_cast<uint64_t>(Clauses.size()))
        .arg("conflicts", Profile.Conflicts)
        .arg("decisions", Profile.Decisions)
        .arg("propagations", Profile.Propagations)
        .arg("restarts", Profile.Restarts);
    if (Assumptions)
      R.arg("core_size", static_cast<uint64_t>(Core.size()));
  }
  return O;
}

void Solver::recordLearnt(const std::vector<Lit> &Learnt) {
  // LBD: the number of distinct decision levels among the clause's
  // literals, measured before backtracking while levels are still live.
  LbdScratch.clear();
  for (Lit L : Learnt)
    LbdScratch.push_back(Level[L.var()]);
  std::sort(LbdScratch.begin(), LbdScratch.end());
  size_t Lbd = std::unique(LbdScratch.begin(), LbdScratch.end()) -
               LbdScratch.begin();
  size_t LbdBucket =
      std::min(Lbd, Statistics::HistogramBuckets) - (Lbd ? 1 : 0);
  ++Stats.LbdHistogram[LbdBucket];
  size_t N = Learnt.size();
  size_t SizeBucket;
  if (N <= 4)
    SizeBucket = N ? N - 1 : 0;
  else if (N <= 8)
    SizeBucket = 4;
  else if (N <= 16)
    SizeBucket = 5;
  else if (N <= 32)
    SizeBucket = 6;
  else
    SizeBucket = 7;
  ++Stats.LearnedSizeHistogram[SizeBucket];
}

void Solver::analyzeFinal(Lit FailedAssumption) {
  // MiniSat-style final-conflict analysis: the assumption literal
  // \p FailedAssumption was found false while being enqueued, so the trail
  // above the root implies its negation. Walk the implication graph back
  // through reasons; every decision reached is an earlier assumption and
  // joins the core.
  Core.clear();
  Core.push_back(FailedAssumption);
  if (TrailLimits.empty())
    return; // falsified at the root: the assumption conflicts alone
  Seen[FailedAssumption.var()] = 1;
  for (size_t I = Trail.size(); I > TrailLimits[0]; --I) {
    Var V = Trail[I - 1].var();
    if (!Seen[V])
      continue;
    if (Reason[V] == NoReason) {
      if (!(Trail[I - 1] == FailedAssumption))
        Core.push_back(Trail[I - 1]);
    } else {
      const Clause &C = Clauses[Reason[V]];
      for (Lit Q : C.Lits)
        if (Q.var() != V && Level[Q.var()] > 0)
          Seen[Q.var()] = 1;
    }
    Seen[V] = 0;
  }
  Seen[FailedAssumption.var()] = 0;
}

std::vector<Lit> Solver::minimizeCore(std::vector<Lit> CoreIn,
                                      uint64_t ProbeConflictBudget) {
  // Deletion probing: drop one literal at a time and re-solve; a drop
  // sticks when the remainder is still Unsat within the budget, in which
  // case the solver's fresh (possibly even smaller) core replaces it.
  // Unknown probes conservatively keep the literal.
  size_t I = 0;
  while (I < CoreIn.size()) {
    std::vector<Lit> Trial;
    Trial.reserve(CoreIn.size() - 1);
    for (size_t K = 0; K < CoreIn.size(); ++K)
      if (K != I)
        Trial.push_back(CoreIn[K]);
    if (solveWith(Trial, ProbeConflictBudget) == Outcome::Unsat) {
      CoreIn = Core;
      I = 0;
    } else {
      ++I;
    }
  }
  return CoreIn;
}

Outcome Solver::solveImpl(const std::vector<Lit> *Assumptions,
                          uint64_t ConflictBudget) {
  Core.clear();
  if (!OkFlag)
    return Outcome::Unsat;
  Model.clear();

  uint64_t ConflictLimit =
      ConflictBudget ? Stats.Conflicts + ConflictBudget : UINT64_MAX;
  uint64_t MaxLearned = Clauses.size() / 3 + 512;
  uint32_t RestartCount = 0;
  uint64_t RestartBudget = Cfg.RestartBase * luby(RestartCount);
  uint64_t ConflictsHere = 0;
  std::vector<Lit> Learnt;

  while (true) {
    ClauseRef Conflict = propagate();
    if (Conflict != NoReason) {
      ++Stats.Conflicts;
      ++ConflictsHere;
      if (TrailLimits.empty()) {
        // A root-level conflict is final; poison the solver so a repeated
        // solve() cannot walk past the consumed propagation queue and
        // report a bogus model.
        OkFlag = false;
        if (Proof)
          Proof->addEmpty();
        return Outcome::Unsat;
      }
      if (Stats.Conflicts >= ConflictLimit) {
        backtrack(0);
        return Outcome::Unknown;
      }
      uint32_t BackLevel = 0;
      analyze(Conflict, Learnt, BackLevel);
      recordLearnt(Learnt);
      if (Proof)
        Proof->add(Learnt);
      if (Export && Learnt.size() <= ClauseExportBuffer::MaxLits)
        Export->tryPush(Learnt.data(), Learnt.size());
      backtrack(BackLevel);
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], NoReason);
      } else {
        Clause C;
        C.Lits = Learnt;
        C.Learned = true;
        C.Activity = ClauseInc;
        Clauses.push_back(std::move(C));
        ClauseRef Ref = static_cast<ClauseRef>(Clauses.size() - 1);
        attachClause(Ref);
        enqueue(Learnt[0], Ref);
        ++Stats.Learned;
      }
      decayActivities();
      continue;
    }

    // No conflict: restart, reduce, or decide.
    if (ConflictsHere >= RestartBudget) {
      Ctx.instant("sat.restart");
      ++Stats.Restarts;
      ++RestartCount;
      ConflictsHere = 0;
      RestartBudget = Cfg.RestartBase * luby(RestartCount);
      backtrack(0);
      continue;
    }
    if (Stats.Learned > MaxLearned) {
      MaxLearned = MaxLearned * 3 / 2;
      backtrack(0);
      reduceDb();
      continue;
    }
    // Assumptions first: each pending assumption becomes the next forced
    // decision. An already-true assumption opens an empty decision level
    // (keeping level indices aligned with assumption indices); an
    // already-false one means the formula is Unsat under the assumptions,
    // and final-conflict analysis extracts the responsible core.
    Lit Next;
    bool HaveDecision = false;
    while (Assumptions && TrailLimits.size() < Assumptions->size()) {
      Lit A = (*Assumptions)[TrailLimits.size()];
      LBool V = litValue(A);
      if (V == LBool::True) {
        TrailLimits.push_back(static_cast<uint32_t>(Trail.size()));
        continue;
      }
      if (V == LBool::False) {
        analyzeFinal(A);
        if (Proof) {
          // The core's implied clause: asserting the whole core unit-
          // propagates to this falsification, so its negation is RUP
          // against the formula plus the learnt clauses logged above.
          std::vector<Lit> CoreClause;
          CoreClause.reserve(Core.size());
          for (Lit C : Core)
            CoreClause.push_back(~C);
          Proof->add(CoreClause);
        }
        backtrack(0);
        return Outcome::Unsat;
      }
      Next = A;
      HaveDecision = true;
      break;
    }
    if (!HaveDecision) {
      Next = pickBranchLit();
      if (Next.var() == (UINT32_MAX >> 1)) {
        // Complete assignment: extract the model.
        Model.resize(VarCount);
        for (Var V = 0; V < VarCount; ++V)
          Model[V] = Assign[V] == LBool::True;
        backtrack(0);
        return Outcome::Sat;
      }
    }
    ++Stats.Decisions;
    TrailLimits.push_back(static_cast<uint32_t>(Trail.size()));
    enqueue(Next, NoReason);
  }
}

// Binary-heap helpers keyed on variable activity.

void Solver::heapInsert(Var V) {
  HeapPos[V] = static_cast<int32_t>(OrderHeap.size());
  OrderHeap.push_back(V);
  heapSiftUp(OrderHeap.size() - 1);
}

void Solver::heapDecrease(Var V) { heapSiftUp(static_cast<size_t>(HeapPos[V])); }

Var Solver::heapPop() {
  Var Top = OrderHeap[0];
  HeapPos[Top] = -1;
  OrderHeap[0] = OrderHeap.back();
  OrderHeap.pop_back();
  if (!OrderHeap.empty()) {
    HeapPos[OrderHeap[0]] = 0;
    heapSiftDown(0);
  }
  return Top;
}

void Solver::heapSiftUp(size_t I) {
  Var V = OrderHeap[I];
  while (I > 0) {
    size_t Parent = (I - 1) / 2;
    if (!heapLess(V, OrderHeap[Parent]))
      break;
    OrderHeap[I] = OrderHeap[Parent];
    HeapPos[OrderHeap[I]] = static_cast<int32_t>(I);
    I = Parent;
  }
  OrderHeap[I] = V;
  HeapPos[V] = static_cast<int32_t>(I);
}

void Solver::heapSiftDown(size_t I) {
  Var V = OrderHeap[I];
  size_t N = OrderHeap.size();
  while (true) {
    size_t Left = 2 * I + 1;
    if (Left >= N)
      break;
    size_t Child = Left;
    if (Left + 1 < N && heapLess(OrderHeap[Left + 1], OrderHeap[Left]))
      Child = Left + 1;
    if (!heapLess(OrderHeap[Child], V))
      break;
    OrderHeap[I] = OrderHeap[Child];
    HeapPos[OrderHeap[I]] = static_cast<int32_t>(I);
    I = Child;
  }
  OrderHeap[I] = V;
  HeapPos[V] = static_cast<int32_t>(I);
}
