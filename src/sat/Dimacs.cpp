//===- sat/Dimacs.cpp - DIMACS CNF I/O ------------------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "sat/Dimacs.h"

#include <cctype>
#include <cstdlib>

using namespace reticle;
using namespace reticle::sat;

std::string Cnf::str() const {
  std::string Out = "p cnf " + std::to_string(NumVars) + " " +
                    std::to_string(Clauses.size()) + "\n";
  for (const std::vector<int> &Clause : Clauses) {
    for (int L : Clause)
      Out += std::to_string(L) + " ";
    Out += "0\n";
  }
  return Out;
}

bool Cnf::loadInto(Solver &S) const {
  while (S.numVars() < NumVars)
    S.newVar();
  for (const std::vector<int> &Clause : Clauses) {
    std::vector<Lit> Lits;
    Lits.reserve(Clause.size());
    for (int L : Clause)
      Lits.push_back(Lit(static_cast<Var>(std::abs(L) - 1), L < 0));
    if (!S.addClause(std::move(Lits)))
      return false;
  }
  return true;
}

Result<Cnf> reticle::sat::parseDimacs(const std::string &Source) {
  Cnf Out;
  size_t I = 0, N = Source.size();
  bool SawHeader = false;
  std::vector<int> Current;
  size_t DeclaredClauses = 0;

  auto SkipSpace = [&] {
    while (I < N && std::isspace(static_cast<unsigned char>(Source[I])))
      ++I;
  };
  while (true) {
    SkipSpace();
    if (I >= N)
      break;
    char C = Source[I];
    if (C == 'c') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (C == 'p') {
      if (SawHeader)
        return fail<Cnf>("duplicate DIMACS header");
      ++I;
      SkipSpace();
      if (Source.compare(I, 3, "cnf") != 0)
        return fail<Cnf>("expected 'cnf' in DIMACS header");
      I += 3;
      char *End = nullptr;
      long Vars = std::strtol(Source.c_str() + I, &End, 10);
      if (End == Source.c_str() + I || Vars < 0)
        return fail<Cnf>("malformed variable count");
      I = static_cast<size_t>(End - Source.c_str());
      long NumClauses = std::strtol(Source.c_str() + I, &End, 10);
      if (End == Source.c_str() + I || NumClauses < 0)
        return fail<Cnf>("malformed clause count");
      I = static_cast<size_t>(End - Source.c_str());
      Out.NumVars = static_cast<uint32_t>(Vars);
      DeclaredClauses = static_cast<size_t>(NumClauses);
      SawHeader = true;
      continue;
    }
    if (!SawHeader)
      return fail<Cnf>("literal before DIMACS header");
    char *End = nullptr;
    long L = std::strtol(Source.c_str() + I, &End, 10);
    if (End == Source.c_str() + I)
      return fail<Cnf>("malformed literal");
    I = static_cast<size_t>(End - Source.c_str());
    if (L == 0) {
      Out.Clauses.push_back(Current);
      Current.clear();
      continue;
    }
    if (static_cast<uint32_t>(std::abs(L)) > Out.NumVars)
      return fail<Cnf>("literal exceeds declared variable count");
    Current.push_back(static_cast<int>(L));
  }
  if (!SawHeader)
    return fail<Cnf>("missing DIMACS header");
  if (!Current.empty())
    return fail<Cnf>("unterminated clause at end of input");
  if (Out.Clauses.size() != DeclaredClauses)
    return fail<Cnf>("clause count mismatch: declared " +
                     std::to_string(DeclaredClauses) + ", found " +
                     std::to_string(Out.Clauses.size()));
  return Out;
}
