//===- sat/Portfolio.h - Deterministic clause-sharing portfolio -*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A portfolio of N diverse CDCL lanes racing the same formula, in the
/// style of parallel clause-sharing SAT solvers. Each lane is a plain
/// sat::Solver with its own policy Config (seed, VSIDS decay, restart
/// scale, phase-init), its own private quiet observability state, and a
/// bounded lock-free export buffer for short learnt clauses.
///
/// The race is organized as *barrier-synchronized rounds* so the result
/// is byte-identical run to run: every lane searches for a fixed conflict
/// quantum (each lane's execution is single-threaded and deterministic
/// given its config and prior imports), the coordinator joins all lanes,
/// and only then exchanges the published clauses in lane order. The
/// winner of a probe is the lowest-numbered lane that decided (Sat or
/// Unsat) in the earliest finishing round — a rule that depends only on
/// per-lane deterministic state, never on thread scheduling. Threads buy
/// wall-clock, not nondeterminism.
///
/// Lanes record into private telemetry so concurrent lanes never race on
/// the caller's sinks; the coordinator aggregates the round/exchange
/// totals into the caller's context as sat.portfolio.* counters.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SAT_PORTFOLIO_H
#define RETICLE_SAT_PORTFOLIO_H

#include "sat/Solver.h"

#include <memory>
#include <vector>

namespace reticle {
namespace sat {

class Portfolio {
public:
  struct Options {
    /// Racing lanes; clamped to [1, 8]. Lane 0 always runs the default
    /// single-solver configuration, so a one-lane portfolio degenerates
    /// to the plain incremental solver.
    unsigned Lanes = 4;
    /// Conflict quantum each lane burns per round before the exchange
    /// barrier.
    uint64_t RoundConflicts = 2000;
  };

  explicit Portfolio(const Options &Opts,
                     const obs::Context &Ctx = obs::defaultContext());
  ~Portfolio();

  /// The standard diversification for lane \p I: lane 0 is the reference
  /// (default) configuration; later lanes vary restarts, decay, and phase
  /// policy deterministically.
  static Solver::Config laneConfig(unsigned I);

  unsigned lanes() const { return static_cast<unsigned>(LaneStates.size()); }

  // Formula construction, mirrored into every lane. Lanes share the
  // variable numbering, which is what makes exported clauses portable.
  Var newVar();
  uint32_t numVars() const;
  size_t numClauses() const; ///< lane 0's clause count (original + learnt)
  bool addClause(std::vector<Lit> Lits);
  bool addUnit(Lit A) { return addClause({A}); }
  bool addBinary(Lit A, Lit B) { return addClause({A, B}); }
  void setPhase(Var V, bool Phase);
  bool ok() const;

  /// Races all lanes on the formula under \p Assumptions. With a nonzero
  /// \p ConflictBudget each lane gives up after burning that many
  /// conflicts across its rounds and the race reports Unknown.
  Outcome solveWith(const std::vector<Lit> &Assumptions,
                    uint64_t ConflictBudget = 0);

  /// Winner-lane result access after solveWith.
  bool value(Var V) const;
  const std::vector<Lit> &unsatCore() const;
  unsigned winnerLane() const { return Winner; }
  /// The winner lane's whole-probe delta (all of its rounds summed);
  /// TimeMs is the race's wall-clock.
  const Solver::SolveProfile &lastProfile() const { return WinnerProfile; }
  /// The winner lane's full Statistics delta for the last solveWith
  /// (histograms included), for callers that aggregate exact per-probe
  /// solver effort.
  const Solver::Statistics &lastDelta() const { return WinnerDelta; }

  /// Merged DRAT-style proof log: per round, each lane's additions are
  /// spliced in lane order (deletions suppressed — a lane-local deletion
  /// must not invalidate another lane's later inferences). Null detaches.
  void setProof(ProofWriter *P) { Proof = P; }

  struct Statistics {
    uint64_t Solves = 0;
    uint64_t Rounds = 0;
    uint64_t Exported = 0; ///< clauses published at exchange barriers
    uint64_t Imported = 0; ///< import acceptances across all lanes
    uint64_t Dropped = 0;  ///< publishes lost to the bounded buffer
    std::array<uint64_t, 8> WinsByLane{};
  };
  const Statistics &stats() const { return Stats; }

private:
  struct Lane;

  Options Opts;
  std::vector<std::unique_ptr<Lane>> LaneStates;
  unsigned Winner = 0;
  Solver::SolveProfile WinnerProfile;
  Solver::Statistics WinnerDelta;
  Statistics Stats;
  ProofWriter *Proof = nullptr;
  const obs::Context &Ctx;
};

} // namespace sat
} // namespace reticle

#endif // RETICLE_SAT_PORTFOLIO_H
