//===- sat/Portfolio.cpp - Deterministic clause-sharing portfolio --------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "sat/Portfolio.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace reticle;
using namespace reticle::sat;

/// One racing lane: a solver over private quiet observability state (so
/// concurrent lanes never touch the caller's telemetry), its export
/// buffer, and its per-round proof fragment. Heap-allocated so the
/// solver's context reference stays stable.
struct Portfolio::Lane {
  obs::Telemetry Telem;
  obs::RemarkStream Rem; // never enabled: lanes are quiet
  obs::Coverage Cov;
  obs::Context LaneCtx;
  Solver S;
  ClauseExportBuffer Export;
  ProofWriter LaneProof;

  explicit Lane(const Solver::Config &Cfg)
      : LaneCtx{&Telem, &Rem, &Cov}, S(Cfg, LaneCtx) {
    LaneProof.suppressDeletions();
  }
};

Solver::Config Portfolio::laneConfig(unsigned I) {
  Solver::Config C;
  C.Seed = 0x9e3779b97f4a7c15ull * (uint64_t(I) + 1);
  switch (I % 4) {
  case 0:
    // Reference lane: the exact single-solver defaults, so a portfolio
    // race can never be worse than the incremental solver on formulas the
    // default policy already handles well.
    break;
  case 1:
    C.VarDecay = 0.90; // hotter VSIDS
    C.RestartBase = 32;
    break;
  case 2:
    C.Phase = Solver::Config::PhaseInit::False; // exclusion-first models
    C.VarDecay = 0.97;
    break;
  case 3:
    C.Phase = Solver::Config::PhaseInit::Hashed;
    C.RestartBase = 128; // long runs between restarts
    break;
  }
  return C;
}

Portfolio::Portfolio(const Options &OptsIn, const obs::Context &Ctx)
    : Opts(OptsIn), Ctx(Ctx) {
  Opts.Lanes = std::max(1u, std::min(8u, Opts.Lanes));
  if (Opts.RoundConflicts == 0)
    Opts.RoundConflicts = 2000;
  LaneStates.reserve(Opts.Lanes);
  for (unsigned I = 0; I < Opts.Lanes; ++I)
    LaneStates.push_back(std::make_unique<Lane>(laneConfig(I)));
}

Portfolio::~Portfolio() = default;

Var Portfolio::newVar() {
  Var V = 0;
  for (auto &L : LaneStates)
    V = L->S.newVar();
  return V; // identical in every lane: one shared numbering
}

uint32_t Portfolio::numVars() const { return LaneStates[0]->S.numVars(); }

size_t Portfolio::numClauses() const {
  return LaneStates[0]->S.numClauses();
}

bool Portfolio::addClause(std::vector<Lit> Lits) {
  bool Ok = true;
  for (auto &L : LaneStates)
    Ok &= L->S.addClause(Lits);
  return Ok;
}

void Portfolio::setPhase(Var V, bool Phase) {
  for (auto &L : LaneStates)
    L->S.setPhase(V, Phase);
}

bool Portfolio::ok() const { return LaneStates[0]->S.ok(); }

bool Portfolio::value(Var V) const { return LaneStates[Winner]->S.value(V); }

const std::vector<Lit> &Portfolio::unsatCore() const {
  return LaneStates[Winner]->S.unsatCore();
}

Outcome Portfolio::solveWith(const std::vector<Lit> &Assumptions,
                             uint64_t ConflictBudget) {
  obs::Span Sp(Ctx, "sat.portfolio.solve");
  Sp.arg("lanes", static_cast<uint64_t>(lanes()));
  auto T0 = std::chrono::steady_clock::now();
  ++Stats.Solves;
  Ctx.counter("sat.portfolio.solves") += 1;

  std::vector<Solver::Statistics> Before;
  Before.reserve(LaneStates.size());
  for (auto &L : LaneStates)
    Before.push_back(L->S.stats());
  const Statistics StatsBefore = Stats;

  uint64_t Budget = ConflictBudget ? ConflictBudget : UINT64_MAX;
  uint64_t Spent = 0;
  uint64_t RoundsHere = 0;
  Outcome Decided = Outcome::Unknown;
  Winner = 0;

  while (true) {
    uint64_t Quantum = std::min<uint64_t>(Opts.RoundConflicts, Budget - Spent);
    std::vector<Outcome> Res(LaneStates.size(), Outcome::Unknown);
    {
      // One round: every lane burns its quantum concurrently. Each lane
      // touches only its own state, so the round is a pure fork/join; the
      // joins are the barrier that makes the exchange below safe and the
      // whole race deterministic.
      std::vector<std::thread> Threads;
      Threads.reserve(LaneStates.size());
      for (size_t I = 0; I < LaneStates.size(); ++I)
        Threads.emplace_back([&, I] {
          Lane &L = *LaneStates[I];
          L.S.setExport(&L.Export);
          L.S.setProof(Proof ? &L.LaneProof : nullptr);
          Res[I] = L.S.solveWith(Assumptions, Quantum);
          L.S.setExport(nullptr);
          L.S.setProof(nullptr);
        });
      for (std::thread &T : Threads)
        T.join();
    }
    ++Stats.Rounds;
    ++RoundsHere;
    Ctx.counter("sat.portfolio.rounds") += 1;
    Spent += Quantum;

    // Merge the round's proof fragments in lane order. Within a lane the
    // additions are in learn order, and every import a lane used was
    // exported (and therefore logged) in an earlier round, so the merged
    // stream stays RUP-monotone.
    if (Proof)
      for (auto &L : LaneStates)
        Proof->appendRaw(L->LaneProof.take());

    // Deterministic winner selection: the lowest-numbered lane that
    // decided in this (earliest) finishing round.
    for (size_t I = 0; I < Res.size(); ++I)
      if (Res[I] != Outcome::Unknown) {
        Winner = static_cast<unsigned>(I);
        Decided = Res[I];
        break;
      }
    if (Decided != Outcome::Unknown || Spent >= Budget)
      break;

    // Exchange barrier: publish each lane's short learnt clauses to every
    // other lane, in lane order then publication order.
    std::vector<Lit> Scratch;
    for (size_t I = 0; I < LaneStates.size(); ++I) {
      ClauseExportBuffer &Buf = LaneStates[I]->Export;
      size_t N = Buf.size();
      Stats.Exported += N;
      Stats.Dropped += Buf.dropped();
      for (size_t K = 0; K < N; ++K) {
        Scratch.assign(Buf.lits(K), Buf.lits(K) + Buf.litCount(K));
        for (size_t J = 0; J < LaneStates.size(); ++J) {
          if (J == I)
            continue;
          LaneStates[J]->S.importClause(Scratch);
          ++Stats.Imported;
        }
      }
      Buf.clear();
    }
  }

  // Reset the leftover publications of the deciding round.
  for (auto &L : LaneStates) {
    Stats.Dropped += L->Export.dropped();
    L->Export.clear();
  }

  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  const Solver::Statistics D =
      Solver::Statistics::delta(LaneStates[Winner]->S.stats(), Before[Winner]);
  WinnerDelta = D;
  WinnerProfile.Result = Decided;
  WinnerProfile.Decisions = D.Decisions;
  WinnerProfile.Propagations = D.Propagations;
  WinnerProfile.Conflicts = D.Conflicts;
  WinnerProfile.Restarts = D.Restarts;
  WinnerProfile.Learned = D.Learned;
  WinnerProfile.TimeMs = Ms;
  if (Decided != Outcome::Unknown)
    ++Stats.WinsByLane[std::min<unsigned>(Winner, 7)];

  Ctx.counter("sat.portfolio.exported") += Stats.Exported - StatsBefore.Exported;
  Ctx.counter("sat.portfolio.imported") += Stats.Imported - StatsBefore.Imported;
  Ctx.counter("sat.portfolio.dropped") += Stats.Dropped - StatsBefore.Dropped;
  Ctx.histogram("sat.portfolio.solve_ms").record(Ms);
  Sp.arg("rounds", RoundsHere);
  Sp.arg("winner", static_cast<uint64_t>(Winner));
  Sp.arg("outcome", Decided == Outcome::Sat     ? "sat"
                    : Decided == Outcome::Unsat ? "unsat"
                                                : "unknown");
  return Decided;
}
