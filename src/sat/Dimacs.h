//===- sat/Dimacs.h - DIMACS CNF I/O ----------------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DIMACS CNF reading and writing, used by the SAT solver's test suite and
/// handy for debugging placement encodings offline.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SAT_DIMACS_H
#define RETICLE_SAT_DIMACS_H

#include "sat/Solver.h"
#include "support/Result.h"

#include <string>
#include <vector>

namespace reticle {
namespace sat {

/// A CNF formula in portable form: clause lists of DIMACS literals
/// (1-based, negative = negated).
struct Cnf {
  uint32_t NumVars = 0;
  std::vector<std::vector<int>> Clauses;

  /// Renders the formula in DIMACS format.
  std::string str() const;

  /// Loads all variables and clauses into \p S. Returns false when the
  /// solver detects root-level unsatisfiability while adding.
  bool loadInto(Solver &S) const;
};

/// Parses a DIMACS CNF document.
Result<Cnf> parseDimacs(const std::string &Source);

} // namespace sat
} // namespace reticle

#endif // RETICLE_SAT_DIMACS_H
