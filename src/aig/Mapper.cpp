//===- aig/Mapper.cpp - Cut-based LUT technology mapping -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "aig/Mapper.h"

#include <algorithm>
#include <set>

using namespace reticle;
using namespace reticle::aig;

namespace {

struct Cut {
  std::vector<uint32_t> Leaves; // sorted node ids
  uint64_t Truth = 0;
  unsigned Arrival = 0; // LUT levels through this cut
};

/// Expands \p Truth over \p From onto the superset leaf list \p To.
uint64_t expandTruth(uint64_t Truth, const std::vector<uint32_t> &From,
                     const std::vector<uint32_t> &To) {
  // Position of each From leaf within To.
  unsigned Pos[6];
  for (size_t I = 0; I < From.size(); ++I) {
    size_t P = std::lower_bound(To.begin(), To.end(), From[I]) - To.begin();
    Pos[I] = static_cast<unsigned>(P);
  }
  uint64_t Out = 0;
  unsigned ToBits = static_cast<unsigned>(To.size());
  for (unsigned Minterm = 0; Minterm < (1u << ToBits); ++Minterm) {
    unsigned FromMinterm = 0;
    for (size_t I = 0; I < From.size(); ++I)
      if ((Minterm >> Pos[I]) & 1)
        FromMinterm |= 1u << I;
    if ((Truth >> FromMinterm) & 1)
      Out |= uint64_t(1) << Minterm;
  }
  return Out;
}

/// Merges two sorted leaf lists; empty result when the union exceeds \p K.
bool mergeLeaves(const std::vector<uint32_t> &A,
                 const std::vector<uint32_t> &B, unsigned K,
                 std::vector<uint32_t> &Out) {
  Out.clear();
  size_t I = 0, J = 0;
  while (I < A.size() || J < B.size()) {
    uint32_t Next;
    if (I < A.size() && (J >= B.size() || A[I] <= B[J])) {
      Next = A[I];
      if (J < B.size() && B[J] == Next)
        ++J;
      ++I;
    } else {
      Next = B[J++];
    }
    Out.push_back(Next);
    if (Out.size() > K)
      return false;
  }
  return true;
}

bool cutBetter(const Cut &A, const Cut &B) {
  if (A.Arrival != B.Arrival)
    return A.Arrival < B.Arrival;
  return A.Leaves.size() < B.Leaves.size();
}

} // namespace

Result<Mapping> reticle::aig::mapAig(const Aig &G, unsigned K,
                                     unsigned CutLimit) {
  using MappingT = Mapping;
  if (K < 2 || K > 6)
    return fail<MappingT>("LUT input count must be between 2 and 6");
  uint32_t N = G.numNodes();
  std::vector<std::vector<Cut>> Cuts(N);
  std::vector<unsigned> Best(N, 0);

  // Inputs (and the constant node) have only their trivial cut.
  for (uint32_t Node = 1; Node <= G.numInputs(); ++Node) {
    Cut C;
    C.Leaves = {Node};
    C.Truth = 0x2; // identity over one variable
    C.Arrival = 0;
    Cuts[Node].push_back(std::move(C));
  }

  // Forward cut enumeration over AND nodes (ids are topologically
  // ordered by construction).
  std::vector<uint32_t> Merged;
  for (uint32_t Node = G.numInputs() + 1; Node < N; ++Node) {
    Lit F0 = G.fanin0(Node);
    Lit F1 = G.fanin1(Node);
    std::vector<Cut> Set;
    auto FaninCuts = [&](Lit F) -> const std::vector<Cut> & {
      return Cuts[F.node()];
    };
    for (const Cut &C0 : FaninCuts(F0)) {
      for (const Cut &C1 : FaninCuts(F1)) {
        if (!mergeLeaves(C0.Leaves, C1.Leaves, K, Merged))
          continue;
        Cut C;
        C.Leaves = Merged;
        uint64_t T0 = expandTruth(C0.Truth, C0.Leaves, C.Leaves);
        uint64_t T1 = expandTruth(C1.Truth, C1.Leaves, C.Leaves);
        if (F0.complemented())
          T0 = ~T0;
        if (F1.complemented())
          T1 = ~T1;
        uint64_t Mask =
            C.Leaves.size() == 6
                ? ~uint64_t(0)
                : ((uint64_t(1) << (1u << C.Leaves.size())) - 1);
        C.Truth = (T0 & T1) & Mask;
        unsigned Arrival = 0;
        for (uint32_t Leaf : C.Leaves)
          Arrival = std::max(Arrival, Best[Leaf]);
        C.Arrival = Arrival + 1;
        Set.push_back(std::move(C));
      }
    }
    std::sort(Set.begin(), Set.end(), cutBetter);
    if (Set.size() > CutLimit)
      Set.resize(CutLimit);
    // The trivial cut keeps deeper structures reachable (appended last so
    // it never displaces a real cut).
    Cut Trivial;
    Trivial.Leaves = {Node};
    Trivial.Truth = 0x2;
    Trivial.Arrival = Set.empty() ? 1 : Set.front().Arrival;
    Best[Node] = Set.empty() ? 1 : Set.front().Arrival;
    Set.push_back(std::move(Trivial));
    Cuts[Node] = std::move(Set);
  }

  // Cover extraction from the outputs.
  Mapping Out;
  std::set<uint32_t> Needed;
  for (const auto &[Name, L] : G.outputs())
    if (G.isAnd(L.node()))
      Needed.insert(L.node());
  std::vector<uint32_t> Work(Needed.begin(), Needed.end());
  while (!Work.empty()) {
    uint32_t Node = Work.back();
    Work.pop_back();
    if (Out.LutOfRoot.count(Node))
      continue;
    const Cut &C = Cuts[Node].front();
    assert(!(C.Leaves.size() == 1 && C.Leaves[0] == Node) &&
           "best cut of an AND node cannot be trivial");
    MappedLut L;
    L.Root = Node;
    L.Leaves = C.Leaves;
    L.Truth = C.Truth;
    Out.LutOfRoot[Node] = Out.Luts.size();
    Out.Luts.push_back(std::move(L));
    for (uint32_t Leaf : C.Leaves)
      if (G.isAnd(Leaf) && !Out.LutOfRoot.count(Leaf))
        Work.push_back(Leaf);
    Out.Depth = std::max(Out.Depth, Best[Node]);
  }
  return Out;
}
