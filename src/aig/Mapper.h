//===- aig/Mapper.h - Cut-based LUT technology mapping ----------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// K-feasible-cut enumeration and depth-oriented LUT mapping in the style
/// of Mishchenko et al. [33] ("Improvements to Technology Mapping for
/// LUT-Based FPGAs"), the algorithm family commercial synthesis runs and
/// whose cost Reticle's coarse-grained selection avoids. Priority cuts
/// bound the cut sets; each cut carries its truth table so the mapped
/// netlist directly yields LUT INIT values.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_AIG_MAPPER_H
#define RETICLE_AIG_MAPPER_H

#include "aig/Aig.h"
#include "support/Result.h"

#include <map>

namespace reticle {
namespace aig {

/// One mapped K-input LUT rooted at an AIG node.
struct MappedLut {
  uint32_t Root = 0;
  std::vector<uint32_t> Leaves; ///< AIG node ids, ordered as truth inputs
  uint64_t Truth = 0;           ///< truth table over Leaves (K <= 6)
};

/// A mapped combinational netlist.
struct Mapping {
  std::vector<MappedLut> Luts;
  std::map<uint32_t, size_t> LutOfRoot; ///< node id -> index into Luts
  unsigned Depth = 0;                   ///< LUT levels on the longest path
};

/// Maps \p G onto \p K-input LUTs (K <= 6). \p CutLimit bounds the
/// priority-cut set per node. Only logic reachable from the outputs is
/// mapped.
Result<Mapping> mapAig(const Aig &G, unsigned K = 6, unsigned CutLimit = 8);

} // namespace aig
} // namespace reticle

#endif // RETICLE_AIG_MAPPER_H
