//===- aig/Aig.h - And-inverter graphs --------------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An and-inverter graph with structural hashing, the core data structure
/// of bit-level logic synthesis (cf. ABC [8], which the paper cites as the
/// machinery RTL toolchains run and Reticle deliberately bypasses). The
/// baseline "vendor" toolchain in this project bit-blasts behavioral
/// programs into an AIG, optimizes it, and technology-maps it onto
/// K-input LUTs (Mishchenko et al. [33]) — the expensive path whose cost
/// Figure 13's compile-time panels measure.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_AIG_AIG_H
#define RETICLE_AIG_AIG_H

#include "support/Result.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace reticle {
namespace aig {

/// An AIG literal: node id with a complement bit. Node 0 is the constant
/// false, so literal 1 is the constant true.
class Lit {
public:
  Lit() = default;
  Lit(uint32_t Node, bool Complement)
      : Code((Node << 1) | unsigned(Complement)) {}

  static Lit constFalse() { return Lit(0, false); }
  static Lit constTrue() { return Lit(0, true); }

  uint32_t node() const { return Code >> 1; }
  bool complemented() const { return Code & 1; }
  uint32_t code() const { return Code; }

  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &Other) const = default;
  auto operator<=>(const Lit &Other) const = default;

private:
  uint32_t Code = 0;
};

/// A combinational and-inverter graph with named inputs and outputs.
class Aig {
public:
  Aig();

  /// Creates a primary input.
  Lit addInput(std::string Name);

  /// Registers a named output.
  void addOutput(std::string Name, Lit L);

  /// The canonical two-input AND with constant folding, trivial-case
  /// rewriting, and structural hashing.
  Lit andGate(Lit A, Lit B);

  // Derived gates.
  Lit orGate(Lit A, Lit B) { return ~andGate(~A, ~B); }
  Lit xorGate(Lit A, Lit B);
  Lit xnorGate(Lit A, Lit B) { return ~xorGate(A, B); }
  Lit muxGate(Lit Sel, Lit T, Lit F);

  /// Number of AND nodes (excluding constants and inputs).
  uint32_t numAnds() const { return NumAnds; }
  uint32_t numInputs() const { return static_cast<uint32_t>(Inputs.size()); }
  uint32_t numNodes() const { return static_cast<uint32_t>(Fanin0.size()); }

  bool isInput(uint32_t Node) const {
    return Node >= 1 && Node <= Inputs.size();
  }
  bool isAnd(uint32_t Node) const { return Node > Inputs.size(); }
  Lit fanin0(uint32_t Node) const { return Fanin0[Node]; }
  Lit fanin1(uint32_t Node) const { return Fanin1[Node]; }

  const std::vector<std::string> &inputNames() const { return Inputs; }
  const std::vector<std::pair<std::string, Lit>> &outputs() const {
    return Outputs;
  }

  /// Logic depth of the graph (ANDs per level; inputs are level 0).
  uint32_t depth() const;

  /// 64-way parallel simulation: \p InputValues holds one 64-pattern word
  /// per input; returns one word per output. The property tests use this
  /// to compare an AIG against a reference function.
  std::vector<uint64_t>
  simulate(const std::vector<uint64_t> &InputValues) const;

private:
  // Nodes are numbered: 0 = const false, 1..N = inputs, then ANDs.
  std::vector<Lit> Fanin0;
  std::vector<Lit> Fanin1;
  std::vector<std::string> Inputs;
  std::vector<std::pair<std::string, Lit>> Outputs;
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> Strash;
  uint32_t NumAnds = 0;
};

/// Word-level helpers for bit-blasting: a Word is a vector of literals,
/// least-significant bit first.
using Word = std::vector<Lit>;

Word blastConst(Aig &G, uint64_t Value, unsigned Width);
Word blastAnd(Aig &G, const Word &A, const Word &B);
Word blastOr(Aig &G, const Word &A, const Word &B);
Word blastXor(Aig &G, const Word &A, const Word &B);
Word blastNot(Aig &G, const Word &A);
Word blastMux(Aig &G, Lit Sel, const Word &T, const Word &F);
Word blastAdd(Aig &G, const Word &A, const Word &B);
Word blastSub(Aig &G, const Word &A, const Word &B);
Word blastMul(Aig &G, const Word &A, const Word &B);
Lit blastEq(Aig &G, const Word &A, const Word &B);
/// Signed less-than.
Lit blastLtSigned(Aig &G, const Word &A, const Word &B);

} // namespace aig
} // namespace reticle

#endif // RETICLE_AIG_AIG_H
