//===- aig/Aig.cpp - And-inverter graphs -----------------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "aig/Aig.h"

#include <algorithm>

using namespace reticle;
using namespace reticle::aig;

Aig::Aig() {
  // Node 0: constant false.
  Fanin0.push_back(Lit());
  Fanin1.push_back(Lit());
}

Lit Aig::addInput(std::string Name) {
  assert(NumAnds == 0 && "add all inputs before building logic");
  Inputs.push_back(std::move(Name));
  Fanin0.push_back(Lit());
  Fanin1.push_back(Lit());
  return Lit(static_cast<uint32_t>(Inputs.size()), false);
}

void Aig::addOutput(std::string Name, Lit L) {
  Outputs.push_back({std::move(Name), L});
}

Lit Aig::andGate(Lit A, Lit B) {
  // Normalize operand order for hashing.
  if (B.code() < A.code())
    std::swap(A, B);
  // Constant and trivial cases.
  if (A == Lit::constFalse() || B == Lit::constFalse() || A == ~B)
    return Lit::constFalse();
  if (A == Lit::constTrue())
    return B;
  if (B == Lit::constTrue() || A == B)
    return A; // note: constTrue case needs A, but A<=B ordering puts
              // constants first, so B==constTrue is unreachable; A==B
              // returns either.
  auto Key = std::make_pair(A.code(), B.code());
  auto It = Strash.find(Key);
  if (It != Strash.end())
    return Lit(It->second, false);
  uint32_t Node = static_cast<uint32_t>(Fanin0.size());
  Fanin0.push_back(A);
  Fanin1.push_back(B);
  Strash.emplace(Key, Node);
  ++NumAnds;
  return Lit(Node, false);
}

Lit Aig::xorGate(Lit A, Lit B) {
  return ~andGate(~andGate(A, ~B), ~andGate(~A, B));
}

Lit Aig::muxGate(Lit Sel, Lit T, Lit F) {
  return ~andGate(~andGate(Sel, T), ~andGate(~Sel, F));
}

uint32_t Aig::depth() const {
  std::vector<uint32_t> Level(Fanin0.size(), 0);
  uint32_t Max = 0;
  for (uint32_t Node = static_cast<uint32_t>(Inputs.size()) + 1;
       Node < Fanin0.size(); ++Node) {
    Level[Node] = 1 + std::max(Level[Fanin0[Node].node()],
                               Level[Fanin1[Node].node()]);
    Max = std::max(Max, Level[Node]);
  }
  return Max;
}

std::vector<uint64_t>
Aig::simulate(const std::vector<uint64_t> &InputValues) const {
  assert(InputValues.size() == Inputs.size() && "input count mismatch");
  std::vector<uint64_t> Value(Fanin0.size(), 0);
  for (size_t I = 0; I < Inputs.size(); ++I)
    Value[I + 1] = InputValues[I];
  auto LitValue = [&](Lit L) {
    uint64_t V = Value[L.node()];
    return L.complemented() ? ~V : V;
  };
  for (uint32_t Node = static_cast<uint32_t>(Inputs.size()) + 1;
       Node < Fanin0.size(); ++Node)
    Value[Node] = LitValue(Fanin0[Node]) & LitValue(Fanin1[Node]);
  std::vector<uint64_t> Out;
  Out.reserve(Outputs.size());
  for (const auto &[Name, L] : Outputs)
    Out.push_back(LitValue(L));
  return Out;
}

// --- Word-level bit blasting -------------------------------------------------

Word reticle::aig::blastConst(Aig &G, uint64_t Value, unsigned Width) {
  Word Out;
  for (unsigned I = 0; I < Width; ++I)
    Out.push_back((Value >> I) & 1 ? Lit::constTrue() : Lit::constFalse());
  return Out;
}

Word reticle::aig::blastAnd(Aig &G, const Word &A, const Word &B) {
  assert(A.size() == B.size());
  Word Out;
  for (size_t I = 0; I < A.size(); ++I)
    Out.push_back(G.andGate(A[I], B[I]));
  return Out;
}

Word reticle::aig::blastOr(Aig &G, const Word &A, const Word &B) {
  assert(A.size() == B.size());
  Word Out;
  for (size_t I = 0; I < A.size(); ++I)
    Out.push_back(G.orGate(A[I], B[I]));
  return Out;
}

Word reticle::aig::blastXor(Aig &G, const Word &A, const Word &B) {
  assert(A.size() == B.size());
  Word Out;
  for (size_t I = 0; I < A.size(); ++I)
    Out.push_back(G.xorGate(A[I], B[I]));
  return Out;
}

Word reticle::aig::blastNot(Aig &G, const Word &A) {
  Word Out;
  for (Lit L : A)
    Out.push_back(~L);
  return Out;
}

Word reticle::aig::blastMux(Aig &G, Lit Sel, const Word &T, const Word &F) {
  assert(T.size() == F.size());
  Word Out;
  for (size_t I = 0; I < T.size(); ++I)
    Out.push_back(G.muxGate(Sel, T[I], F[I]));
  return Out;
}

Word reticle::aig::blastAdd(Aig &G, const Word &A, const Word &B) {
  assert(A.size() == B.size());
  Word Out;
  Lit Carry = Lit::constFalse();
  for (size_t I = 0; I < A.size(); ++I) {
    Lit AxB = G.xorGate(A[I], B[I]);
    Out.push_back(G.xorGate(AxB, Carry));
    Carry = G.orGate(G.andGate(A[I], B[I]), G.andGate(AxB, Carry));
  }
  return Out;
}

Word reticle::aig::blastSub(Aig &G, const Word &A, const Word &B) {
  // a - b = a + ~b + 1.
  assert(A.size() == B.size());
  Word Out;
  Lit Carry = Lit::constTrue();
  for (size_t I = 0; I < A.size(); ++I) {
    Lit Nb = ~B[I];
    Lit AxB = G.xorGate(A[I], Nb);
    Out.push_back(G.xorGate(AxB, Carry));
    Carry = G.orGate(G.andGate(A[I], Nb), G.andGate(AxB, Carry));
  }
  return Out;
}

Word reticle::aig::blastMul(Aig &G, const Word &A, const Word &B) {
  assert(A.size() == B.size());
  size_t W = A.size();
  Word Acc = blastConst(G, 0, static_cast<unsigned>(W));
  for (size_t R = 0; R < W; ++R) {
    // Partial product row R, shifted left by R and truncated to W bits.
    Word Row = blastConst(G, 0, static_cast<unsigned>(W));
    for (size_t K = 0; K + R < W; ++K)
      Row[K + R] = G.andGate(A[K], B[R]);
    Acc = blastAdd(G, Acc, Row);
  }
  return Acc;
}

Lit reticle::aig::blastEq(Aig &G, const Word &A, const Word &B) {
  assert(A.size() == B.size());
  Lit All = Lit::constTrue();
  for (size_t I = 0; I < A.size(); ++I)
    All = G.andGate(All, G.xnorGate(A[I], B[I]));
  return All;
}

Lit reticle::aig::blastLtSigned(Aig &G, const Word &A, const Word &B) {
  assert(!A.empty() && A.size() == B.size());
  // Compute a - b and combine overflow with the sign bit:
  // lt = (a_s ^ b_s) ? a_s : diff_s.
  Word Diff = blastSub(G, A, B);
  Lit As = A.back(), Bs = B.back(), Ds = Diff.back();
  return G.muxGate(G.xorGate(As, Bs), As, Ds);
}
