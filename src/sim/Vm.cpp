//===- sim/Vm.cpp - Bytecode simulation VM ---------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "sim/Vm.h"

#include "interp/Cycle.h"
#include "obs/Telemetry.h"

#include <cassert>

using namespace reticle;
using namespace reticle::sim;
using interp::Trace;
using interp::Value;

namespace {

uint64_t maskOf(uint32_t Len) {
  return Len >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Len) - 1);
}

/// Number of instructions in a segment (each executes exactly once per
/// segment run: the code is straight-line), for the `sim.vm.ops` counter.
uint64_t instrCount(const std::vector<uint32_t> &Code) {
  uint64_t N = 0;
  for (size_t I = 0; I < Code.size();
       I += 1 + opOperands(static_cast<Op>(Code[I])))
    ++N;
  return N;
}

/// The threaded dispatch loop. The program is verified before execution,
/// so operand bounds and stack discipline hold by construction. On GCC
/// and Clang the loop uses computed-goto dispatch: one indirect branch
/// per opcode with its own prediction slot, instead of a shared switch
/// branch that mispredicts on every opcode change.
void exec(const std::vector<uint32_t> &Code, uint64_t *Words,
          const uint64_t *Pool, uint64_t *Stack) {
  const uint32_t *Pc = Code.data();
  uint64_t *Sp = Stack; // empty ascending

#if defined(__GNUC__) || defined(__clang__)
  // Table order must match the Op enumerator values exactly; the
  // verifier has already rejected any opcode >= NumOps.
  static const void *Targets[] = {
      &&L_EndSeg, &&L_LoadConst, &&L_LoadField, &&L_StoreField, &&L_Dup,
      &&L_Canon,  &&L_Bool,      &&L_Mask,      &&L_Add,        &&L_Sub,
      &&L_Mul,    &&L_NotB,      &&L_AndB,      &&L_OrB,        &&L_XorB,
      &&L_Shl,    &&L_Shr,       &&L_Sar,       &&L_ShrV,       &&L_CmpEq,
      &&L_CmpNe,  &&L_CmpLt,     &&L_CmpGt,     &&L_CmpLe,      &&L_CmpGe,
      &&L_Select,
  };
  static_assert(sizeof(Targets) / sizeof(Targets[0]) == NumOps,
                "dispatch table out of sync with the opcode set");
#define DISPATCH() goto *Targets[*Pc++]

  DISPATCH();
L_EndSeg:
  return;
L_LoadConst:
  *Sp++ = Pool[*Pc++];
  DISPATCH();
L_LoadField : {
  uint64_t V = Words[Pc[0]] >> Pc[1];
  if (Pc[2] < 64)
    V &= maskOf(Pc[2]);
  *Sp++ = V;
  Pc += 3;
  DISPATCH();
}
L_StoreField : {
  uint64_t V = *--Sp;
  if (Pc[2] == 64) {
    Words[Pc[0]] = V;
  } else {
    uint64_t M = maskOf(Pc[2]) << Pc[1];
    Words[Pc[0]] = (Words[Pc[0]] & ~M) | ((V << Pc[1]) & M);
  }
  Pc += 3;
  DISPATCH();
}
L_Dup:
  Sp[0] = Sp[-1];
  ++Sp;
  DISPATCH();
L_Canon : {
  uint32_t W = *Pc++;
  if (W < 64) {
    unsigned Sh = 64 - W;
    Sp[-1] = static_cast<uint64_t>(static_cast<int64_t>(Sp[-1] << Sh) >> Sh);
  }
  DISPATCH();
}
L_Bool:
  Sp[-1] = Sp[-1] != 0 ? 1 : 0;
  DISPATCH();
L_Mask:
  Sp[-1] &= maskOf(*Pc++);
  DISPATCH();
L_Add:
  --Sp;
  Sp[-1] += Sp[0];
  DISPATCH();
L_Sub:
  --Sp;
  Sp[-1] -= Sp[0];
  DISPATCH();
L_Mul:
  --Sp;
  Sp[-1] *= Sp[0];
  DISPATCH();
L_NotB:
  Sp[-1] = ~Sp[-1];
  DISPATCH();
L_AndB:
  --Sp;
  Sp[-1] &= Sp[0];
  DISPATCH();
L_OrB:
  --Sp;
  Sp[-1] |= Sp[0];
  DISPATCH();
L_XorB:
  --Sp;
  Sp[-1] ^= Sp[0];
  DISPATCH();
L_Shl:
  Sp[-1] <<= *Pc++;
  DISPATCH();
L_Shr:
  Sp[-1] >>= *Pc++;
  DISPATCH();
L_Sar:
  Sp[-1] = static_cast<uint64_t>(static_cast<int64_t>(Sp[-1]) >> *Pc++);
  DISPATCH();
L_ShrV : {
  uint64_t Amt = *--Sp;
  Sp[-1] = Amt < 64 ? Sp[-1] >> Amt : 0;
  DISPATCH();
}
L_CmpEq:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) == static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_CmpNe:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) != static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_CmpLt:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) < static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_CmpGt:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) > static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_CmpLe:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) <= static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_CmpGe:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) >= static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_Select : {
  uint64_t Cond = *--Sp;
  uint64_t IfTrue = *--Sp;
  if (Cond)
    Sp[-1] = IfTrue;
  DISPATCH();
}
#undef DISPATCH
#else
  for (;;) {
    switch (static_cast<Op>(*Pc++)) {
    case Op::EndSeg:
      return;
    case Op::LoadConst:
      *Sp++ = Pool[*Pc++];
      break;
    case Op::LoadField: {
      uint64_t V = Words[Pc[0]] >> Pc[1];
      if (Pc[2] < 64)
        V &= maskOf(Pc[2]);
      *Sp++ = V;
      Pc += 3;
      break;
    }
    case Op::StoreField: {
      uint64_t V = *--Sp;
      if (Pc[2] == 64) {
        Words[Pc[0]] = V;
      } else {
        uint64_t M = maskOf(Pc[2]) << Pc[1];
        Words[Pc[0]] = (Words[Pc[0]] & ~M) | ((V << Pc[1]) & M);
      }
      Pc += 3;
      break;
    }
    case Op::Dup:
      Sp[0] = Sp[-1];
      ++Sp;
      break;
    case Op::Canon: {
      uint32_t W = *Pc++;
      if (W < 64) {
        unsigned Sh = 64 - W;
        Sp[-1] = static_cast<uint64_t>(
            static_cast<int64_t>(Sp[-1] << Sh) >> Sh);
      }
      break;
    }
    case Op::Bool:
      Sp[-1] = Sp[-1] != 0 ? 1 : 0;
      break;
    case Op::Mask:
      Sp[-1] &= maskOf(*Pc++);
      break;
    case Op::Add:
      --Sp;
      Sp[-1] += Sp[0];
      break;
    case Op::Sub:
      --Sp;
      Sp[-1] -= Sp[0];
      break;
    case Op::Mul:
      --Sp;
      Sp[-1] *= Sp[0];
      break;
    case Op::NotB:
      Sp[-1] = ~Sp[-1];
      break;
    case Op::AndB:
      --Sp;
      Sp[-1] &= Sp[0];
      break;
    case Op::OrB:
      --Sp;
      Sp[-1] |= Sp[0];
      break;
    case Op::XorB:
      --Sp;
      Sp[-1] ^= Sp[0];
      break;
    case Op::Shl:
      Sp[-1] <<= *Pc++;
      break;
    case Op::Shr:
      Sp[-1] >>= *Pc++;
      break;
    case Op::Sar:
      Sp[-1] = static_cast<uint64_t>(static_cast<int64_t>(Sp[-1]) >>
                                     *Pc++);
      break;
    case Op::ShrV: {
      uint64_t Amt = *--Sp;
      Sp[-1] = Amt < 64 ? Sp[-1] >> Amt : 0;
      break;
    }
    case Op::CmpEq:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) == static_cast<int64_t>(Sp[0]);
      break;
    case Op::CmpNe:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) != static_cast<int64_t>(Sp[0]);
      break;
    case Op::CmpLt:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) < static_cast<int64_t>(Sp[0]);
      break;
    case Op::CmpGt:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) > static_cast<int64_t>(Sp[0]);
      break;
    case Op::CmpLe:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) <= static_cast<int64_t>(Sp[0]);
      break;
    case Op::CmpGe:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) >= static_cast<int64_t>(Sp[0]);
      break;
    case Op::Select: {
      uint64_t Cond = *--Sp;
      uint64_t IfTrue = *--Sp;
      if (Cond)
        Sp[-1] = IfTrue;
      break;
    }
    }
  }
#endif
}

} // namespace

Result<Trace> reticle::sim::execute(const Program &P, const Trace &Inputs,
                                    WaveSink *Wave,
                                    const obs::Context &Ctx) {
  obs::Span Sp(Ctx, "sim.vm.execute");
  Sp.arg("program", P.Name);
  Sp.arg("source", P.Source);
  Sp.arg("cycles", Inputs.size());

  if (Status S = verify(P); !S)
    return fail<Trace>(S.error());

  std::vector<uint64_t> Words(P.NumWords, 0);
  std::vector<uint64_t> Stack(P.MaxStack == 0 ? 1 : P.MaxStack, 0);
  const uint64_t *Pool = P.Pool.empty() ? Words.data() : P.Pool.data();

  InputBinder Binder;
  for (unsigned I = 0; I < P.Inputs.size(); ++I)
    Binder.add(P.Inputs[I].Name, I);
  Binder.seal();

  OutputProto Proto;
  for (unsigned I = 0; I < P.Outputs.size(); ++I)
    Proto.add(P.Outputs[I].Name, I);
  Proto.seal();

  EngineFrame Frame(Wave, Ctx, "sim.vm.cycles");
  if (Frame.waveActive()) {
    std::vector<WaveSignal> WaveSigs;
    WaveSigs.reserve(P.Signals.size());
    for (const SignalInfo &S : P.Signals)
      WaveSigs.push_back({S.Name, S.Width, S.Kind});
    if (Status S = Frame.recorder().begin(std::move(WaveSigs)); !S)
      return fail<Trace>(S.error());
  }

  exec(P.Init, Words.data(), Pool, Stack.data());

  const uint64_t EvalOps = instrCount(P.Eval);
  const uint64_t CommitOps = instrCount(P.Commit);
  uint64_t OpsRun = instrCount(P.Init);

  // Reads a signal's table words back into the LSB-first flattened bit
  // vector the wave layer observes.
  std::vector<bool> BitBuf;
  auto GatherBits = [&](uint32_t Base, unsigned Width, unsigned LaneWidth,
                        unsigned Lanes) -> const std::vector<bool> & {
    BitBuf.assign(Width, false);
    unsigned Bit = 0;
    for (unsigned L = 0; L < Lanes && Bit < Width; ++L) {
      unsigned Take = std::min(LaneWidth, Width - Bit);
      uint64_t W = Words[Base + L];
      for (unsigned K = 0; K < Take; ++K)
        BitBuf[Bit++] = (W >> K) & 1;
    }
    return BitBuf;
  };

  Trace Out;
  Out.steps().reserve(Inputs.size());
  for (size_t Cycle = 0; Cycle < Inputs.size(); ++Cycle) {
    Frame.beginCycle();

    Status Bound = Binder.bind(
        Inputs.step(Cycle), Cycle, [&](unsigned Slot, const Value &V) {
          const PortInfo &Pi = P.Inputs[Slot];
          if (!Pi.Packed) {
            if (!(V.type() == Pi.Ty))
              return Status::failure(
                  "cycle " + std::to_string(Cycle) + ": input '" + Pi.Name +
                  "' has type " + V.type().str() + ", expected " +
                  Pi.Ty.str());
            for (unsigned L = 0; L < Pi.Ty.lanes(); ++L)
              Words[Pi.Base + L] = static_cast<uint64_t>(V.lane(L));
            return Status::success();
          }
          if (V.type().totalBits() != Pi.Ty.totalBits())
            return Status::failure("input '" + Pi.Name + "' width mismatch");
          if (Pi.Ty.totalBits() <= 64) {
            // Whole port fits one table word: pack the lanes directly
            // instead of round-tripping through a bit vector.
            uint64_t W = 0;
            unsigned Wd = V.type().width();
            for (unsigned L = 0; L < V.lanes(); ++L)
              W |= (static_cast<uint64_t>(V.lane(L)) & maskOf(Wd))
                   << (L * Wd);
            Words[Pi.Base] = W;
            return Status::success();
          }
          std::vector<bool> Bits = V.toBits();
          for (size_t W = 0; W < (Bits.size() + 63) / 64; ++W)
            Words[Pi.Base + W] = 0;
          for (size_t B = 0; B < Bits.size(); ++B)
            if (Bits[B])
              Words[Pi.Base + B / 64] |= uint64_t(1) << (B % 64);
          return Status::success();
        });
    if (!Bound)
      return fail<Trace>(Frame.abort(Bound.error()));

    exec(P.Eval, Words.data(), Pool, Stack.data());

    Proto.emit(Out, [&](unsigned Slot) {
      const PortInfo &Po = P.Outputs[Slot];
      if (!Po.Packed) {
        std::vector<int64_t> Lanes(Po.Ty.lanes());
        for (unsigned L = 0; L < Po.Ty.lanes(); ++L)
          Lanes[L] = static_cast<int64_t>(Words[Po.Base + L]);
        return Value::fromLanes(Po.Ty, std::move(Lanes));
      }
      if (Po.Ty.totalBits() <= 64) {
        // The whole port fits one table word: slice the lanes straight
        // out of it (fromLanes canonicalizes, same as the bit path).
        uint64_t W = Words[Po.Base];
        unsigned Wd = Po.Ty.width();
        std::vector<int64_t> Lanes(Po.Ty.lanes());
        for (unsigned L = 0; L < Po.Ty.lanes(); ++L)
          Lanes[L] = static_cast<int64_t>((W >> (L * Wd)) & maskOf(Wd));
        return Value::fromLanes(Po.Ty, std::move(Lanes));
      }
      return Value::fromBits(
          Po.Ty, GatherBits(Po.Base, Po.Ty.totalBits(),
                            std::min(64u, Po.Ty.totalBits()),
                            (Po.Ty.totalBits() + 63) / 64));
    });

    if (Frame.waveActive()) {
      Frame.recorder().cycle(Cycle);
      for (size_t Id = 0; Id < P.Signals.size(); ++Id) {
        const SignalInfo &S = P.Signals[Id];
        Frame.recorder().record(
            Id, GatherBits(S.Base, S.Width, S.LaneWidth, S.Lanes));
      }
    }

    exec(P.Commit, Words.data(), Pool, Stack.data());
    OpsRun += EvalOps + CommitOps;
  }

  if (Status S = Frame.finish(); !S)
    return fail<Trace>(S.error());
  Ctx.counter("sim.vm.ops") += OpsRun;
  return Out;
}
