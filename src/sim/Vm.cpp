//===- sim/Vm.cpp - Bytecode simulation VM ---------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "sim/Vm.h"

#include "interp/Cycle.h"
#include "obs/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>

using namespace reticle;
using namespace reticle::sim;
using interp::Trace;
using interp::Value;

namespace {

uint64_t maskOf(uint32_t Len) {
  return Len >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Len) - 1);
}

/// Number of instructions in a segment (each executes exactly once per
/// segment run: the code is straight-line), for the `sim.vm.ops` counter.
uint64_t instrCount(const std::vector<uint32_t> &Code) {
  uint64_t N = 0;
  for (size_t I = 0; I < Code.size();
       I += 1 + opOperands(static_cast<Op>(Code[I])))
    ++N;
  return N;
}

/// The threaded dispatch loop. The program is verified before execution,
/// so operand bounds and stack discipline hold by construction. On GCC
/// and Clang the loop uses computed-goto dispatch: one indirect branch
/// per opcode with its own prediction slot, instead of a shared switch
/// branch that mispredicts on every opcode change.
void exec(const std::vector<uint32_t> &Code, uint64_t *Words,
          const uint64_t *Pool, uint64_t *Stack) {
  const uint32_t *Pc = Code.data();
  uint64_t *Sp = Stack; // empty ascending

#if defined(__GNUC__) || defined(__clang__)
  // Table order must match the Op enumerator values exactly; the
  // verifier has already rejected any opcode >= NumOps.
  static const void *Targets[] = {
      &&L_EndSeg, &&L_LoadConst, &&L_LoadField, &&L_StoreField, &&L_Dup,
      &&L_Canon,  &&L_Bool,      &&L_Mask,      &&L_Add,        &&L_Sub,
      &&L_Mul,    &&L_NotB,      &&L_AndB,      &&L_OrB,        &&L_XorB,
      &&L_Shl,    &&L_Shr,       &&L_Sar,       &&L_ShrV,       &&L_CmpEq,
      &&L_CmpNe,  &&L_CmpLt,     &&L_CmpGt,     &&L_CmpLe,      &&L_CmpGe,
      &&L_Select,
  };
  static_assert(sizeof(Targets) / sizeof(Targets[0]) == NumOps,
                "dispatch table out of sync with the opcode set");
#define DISPATCH() goto *Targets[*Pc++]

  DISPATCH();
L_EndSeg:
  return;
L_LoadConst:
  *Sp++ = Pool[*Pc++];
  DISPATCH();
L_LoadField : {
  uint64_t V = Words[Pc[0]] >> Pc[1];
  if (Pc[2] < 64)
    V &= maskOf(Pc[2]);
  *Sp++ = V;
  Pc += 3;
  DISPATCH();
}
L_StoreField : {
  uint64_t V = *--Sp;
  if (Pc[2] == 64) {
    Words[Pc[0]] = V;
  } else {
    uint64_t M = maskOf(Pc[2]) << Pc[1];
    Words[Pc[0]] = (Words[Pc[0]] & ~M) | ((V << Pc[1]) & M);
  }
  Pc += 3;
  DISPATCH();
}
L_Dup:
  Sp[0] = Sp[-1];
  ++Sp;
  DISPATCH();
L_Canon : {
  uint32_t W = *Pc++;
  if (W < 64) {
    unsigned Sh = 64 - W;
    Sp[-1] = static_cast<uint64_t>(static_cast<int64_t>(Sp[-1] << Sh) >> Sh);
  }
  DISPATCH();
}
L_Bool:
  Sp[-1] = Sp[-1] != 0 ? 1 : 0;
  DISPATCH();
L_Mask:
  Sp[-1] &= maskOf(*Pc++);
  DISPATCH();
L_Add:
  --Sp;
  Sp[-1] += Sp[0];
  DISPATCH();
L_Sub:
  --Sp;
  Sp[-1] -= Sp[0];
  DISPATCH();
L_Mul:
  --Sp;
  Sp[-1] *= Sp[0];
  DISPATCH();
L_NotB:
  Sp[-1] = ~Sp[-1];
  DISPATCH();
L_AndB:
  --Sp;
  Sp[-1] &= Sp[0];
  DISPATCH();
L_OrB:
  --Sp;
  Sp[-1] |= Sp[0];
  DISPATCH();
L_XorB:
  --Sp;
  Sp[-1] ^= Sp[0];
  DISPATCH();
L_Shl:
  Sp[-1] <<= *Pc++;
  DISPATCH();
L_Shr:
  Sp[-1] >>= *Pc++;
  DISPATCH();
L_Sar:
  Sp[-1] = static_cast<uint64_t>(static_cast<int64_t>(Sp[-1]) >> *Pc++);
  DISPATCH();
L_ShrV : {
  uint64_t Amt = *--Sp;
  Sp[-1] = Amt < 64 ? Sp[-1] >> Amt : 0;
  DISPATCH();
}
L_CmpEq:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) == static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_CmpNe:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) != static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_CmpLt:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) < static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_CmpGt:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) > static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_CmpLe:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) <= static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_CmpGe:
  --Sp;
  Sp[-1] = static_cast<int64_t>(Sp[-1]) >= static_cast<int64_t>(Sp[0]);
  DISPATCH();
L_Select : {
  uint64_t Cond = *--Sp;
  uint64_t IfTrue = *--Sp;
  if (Cond)
    Sp[-1] = IfTrue;
  DISPATCH();
}
#undef DISPATCH
#else
  for (;;) {
    switch (static_cast<Op>(*Pc++)) {
    case Op::EndSeg:
      return;
    case Op::LoadConst:
      *Sp++ = Pool[*Pc++];
      break;
    case Op::LoadField: {
      uint64_t V = Words[Pc[0]] >> Pc[1];
      if (Pc[2] < 64)
        V &= maskOf(Pc[2]);
      *Sp++ = V;
      Pc += 3;
      break;
    }
    case Op::StoreField: {
      uint64_t V = *--Sp;
      if (Pc[2] == 64) {
        Words[Pc[0]] = V;
      } else {
        uint64_t M = maskOf(Pc[2]) << Pc[1];
        Words[Pc[0]] = (Words[Pc[0]] & ~M) | ((V << Pc[1]) & M);
      }
      Pc += 3;
      break;
    }
    case Op::Dup:
      Sp[0] = Sp[-1];
      ++Sp;
      break;
    case Op::Canon: {
      uint32_t W = *Pc++;
      if (W < 64) {
        unsigned Sh = 64 - W;
        Sp[-1] = static_cast<uint64_t>(
            static_cast<int64_t>(Sp[-1] << Sh) >> Sh);
      }
      break;
    }
    case Op::Bool:
      Sp[-1] = Sp[-1] != 0 ? 1 : 0;
      break;
    case Op::Mask:
      Sp[-1] &= maskOf(*Pc++);
      break;
    case Op::Add:
      --Sp;
      Sp[-1] += Sp[0];
      break;
    case Op::Sub:
      --Sp;
      Sp[-1] -= Sp[0];
      break;
    case Op::Mul:
      --Sp;
      Sp[-1] *= Sp[0];
      break;
    case Op::NotB:
      Sp[-1] = ~Sp[-1];
      break;
    case Op::AndB:
      --Sp;
      Sp[-1] &= Sp[0];
      break;
    case Op::OrB:
      --Sp;
      Sp[-1] |= Sp[0];
      break;
    case Op::XorB:
      --Sp;
      Sp[-1] ^= Sp[0];
      break;
    case Op::Shl:
      Sp[-1] <<= *Pc++;
      break;
    case Op::Shr:
      Sp[-1] >>= *Pc++;
      break;
    case Op::Sar:
      Sp[-1] = static_cast<uint64_t>(static_cast<int64_t>(Sp[-1]) >>
                                     *Pc++);
      break;
    case Op::ShrV: {
      uint64_t Amt = *--Sp;
      Sp[-1] = Amt < 64 ? Sp[-1] >> Amt : 0;
      break;
    }
    case Op::CmpEq:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) == static_cast<int64_t>(Sp[0]);
      break;
    case Op::CmpNe:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) != static_cast<int64_t>(Sp[0]);
      break;
    case Op::CmpLt:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) < static_cast<int64_t>(Sp[0]);
      break;
    case Op::CmpGt:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) > static_cast<int64_t>(Sp[0]);
      break;
    case Op::CmpLe:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) <= static_cast<int64_t>(Sp[0]);
      break;
    case Op::CmpGe:
      --Sp;
      Sp[-1] = static_cast<int64_t>(Sp[-1]) >= static_cast<int64_t>(Sp[0]);
      break;
    case Op::Select: {
      uint64_t Cond = *--Sp;
      uint64_t IfTrue = *--Sp;
      if (Cond)
        Sp[-1] = IfTrue;
      break;
    }
    }
  }
#endif
}

/// Every SampleEvery-th cycle of a profiled run times its eval and
/// commit segment executions; the others run untimed, keeping the
/// clock-read overhead off the hot path.
constexpr uint64_t SampleEvery = 32;

Result<Trace> executeImpl(const Program &P, const Trace &Inputs,
                          WaveSink *Wave, const obs::Context &Ctx,
                          VmProfile *Prof) {
  obs::Span Sp(Ctx, "sim.vm.execute");
  Sp.arg("program", P.Name);
  Sp.arg("source", P.Source);
  Sp.arg("cycles", Inputs.size());

  if (Status S = verify(P); !S)
    return fail<Trace>(S.error());

  std::vector<uint64_t> Words(P.NumWords, 0);
  std::vector<uint64_t> Stack(P.MaxStack == 0 ? 1 : P.MaxStack, 0);
  const uint64_t *Pool = P.Pool.empty() ? Words.data() : P.Pool.data();

  InputBinder Binder;
  for (unsigned I = 0; I < P.Inputs.size(); ++I)
    Binder.add(P.Inputs[I].Name, I);
  Binder.seal();

  OutputProto Proto;
  for (unsigned I = 0; I < P.Outputs.size(); ++I)
    Proto.add(P.Outputs[I].Name, I);
  Proto.seal();

  EngineFrame Frame(Wave, Ctx, "sim.vm.cycles");
  if (Frame.waveActive()) {
    std::vector<WaveSignal> WaveSigs;
    WaveSigs.reserve(P.Signals.size());
    for (const SignalInfo &S : P.Signals)
      WaveSigs.push_back({S.Name, S.Width, S.Kind});
    if (Status S = Frame.recorder().begin(std::move(WaveSigs)); !S)
      return fail<Trace>(S.error());
  }

  exec(P.Init, Words.data(), Pool, Stack.data());

  const uint64_t EvalOps = instrCount(P.Eval);
  const uint64_t CommitOps = instrCount(P.Commit);
  uint64_t OpsRun = instrCount(P.Init);
  uint64_t EvalRuns = 0;
  uint64_t CommitRuns = 0;

  // Segments are straight-line, so a site's dynamic count is exactly the
  // number of times its segment ran: the profile reconstructs per-op
  // counts from one static walk instead of counting in the hot loop.
  auto FillProfile = [&](uint64_t CyclesDone, bool Aborted) {
    if (!Prof)
      return;
    Prof->Cycles = CyclesDone;
    Prof->Aborted = Aborted;
    Prof->Sites.clear();
    Prof->TotalOps = 0;
    Prof->AttributedOps = 0;
    auto Walk = [&](unsigned SegIx, const std::vector<uint32_t> &Code,
                    uint64_t Runs) {
      for (size_t Pc = 0; Pc < Code.size();
           Pc += 1 + opOperands(static_cast<Op>(Code[Pc]))) {
        ProfileSite Site;
        Site.Segment = SegIx;
        Site.Offset = static_cast<uint32_t>(Pc);
        Site.Opcode = static_cast<Op>(Code[Pc]);
        Site.Count = Runs;
        if (const char *Src = P.sourceAt(SegIx, Site.Offset))
          Site.Source = Src;
        Prof->TotalOps += Runs;
        if (!Site.Source.empty())
          Prof->AttributedOps += Runs;
        Prof->Sites.push_back(std::move(Site));
      }
    };
    Walk(0, P.Init, 1);
    Walk(1, P.Eval, EvalRuns);
    Walk(2, P.Commit, CommitRuns);
    ++Ctx.counter("obs.profile.vm_runs");
    Ctx.counter("obs.profile.ops_attributed") += Prof->AttributedOps;
    Ctx.counter("obs.profile.ops_unattributed") +=
        Prof->TotalOps - Prof->AttributedOps;
    Ctx.counter("obs.profile.sampled_cycles") += Prof->SampledCycles;
  };

  // Reads a signal's table words back into the LSB-first flattened bit
  // vector the wave layer observes.
  std::vector<bool> BitBuf;
  auto GatherBits = [&](uint32_t Base, unsigned Width, unsigned LaneWidth,
                        unsigned Lanes) -> const std::vector<bool> & {
    BitBuf.assign(Width, false);
    unsigned Bit = 0;
    for (unsigned L = 0; L < Lanes && Bit < Width; ++L) {
      unsigned Take = std::min(LaneWidth, Width - Bit);
      uint64_t W = Words[Base + L];
      for (unsigned K = 0; K < Take; ++K)
        BitBuf[Bit++] = (W >> K) & 1;
    }
    return BitBuf;
  };

  Trace Out;
  Out.steps().reserve(Inputs.size());
  for (size_t Cycle = 0; Cycle < Inputs.size(); ++Cycle) {
    Frame.beginCycle();

    Status Bound = Binder.bind(
        Inputs.step(Cycle), Cycle, [&](unsigned Slot, const Value &V) {
          const PortInfo &Pi = P.Inputs[Slot];
          if (!Pi.Packed) {
            if (!(V.type() == Pi.Ty))
              return Status::failure(
                  "cycle " + std::to_string(Cycle) + ": input '" + Pi.Name +
                  "' has type " + V.type().str() + ", expected " +
                  Pi.Ty.str());
            for (unsigned L = 0; L < Pi.Ty.lanes(); ++L)
              Words[Pi.Base + L] = static_cast<uint64_t>(V.lane(L));
            return Status::success();
          }
          if (V.type().totalBits() != Pi.Ty.totalBits())
            return Status::failure("input '" + Pi.Name + "' width mismatch");
          if (Pi.Ty.totalBits() <= 64) {
            // Whole port fits one table word: pack the lanes directly
            // instead of round-tripping through a bit vector.
            uint64_t W = 0;
            unsigned Wd = V.type().width();
            for (unsigned L = 0; L < V.lanes(); ++L)
              W |= (static_cast<uint64_t>(V.lane(L)) & maskOf(Wd))
                   << (L * Wd);
            Words[Pi.Base] = W;
            return Status::success();
          }
          std::vector<bool> Bits = V.toBits();
          for (size_t W = 0; W < (Bits.size() + 63) / 64; ++W)
            Words[Pi.Base + W] = 0;
          for (size_t B = 0; B < Bits.size(); ++B)
            if (Bits[B])
              Words[Pi.Base + B / 64] |= uint64_t(1) << (B % 64);
          return Status::success();
        });
    if (!Bound) {
      FillProfile(Cycle, /*Aborted=*/true);
      return fail<Trace>(Frame.abort(Bound.error()));
    }

    const bool Sampled = Prof && (Cycle % SampleEvery) == 0;
    std::chrono::steady_clock::time_point T0;
    if (Sampled)
      T0 = std::chrono::steady_clock::now();
    exec(P.Eval, Words.data(), Pool, Stack.data());
    if (Sampled)
      Prof->EvalMs += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - T0)
                          .count();
    ++EvalRuns;

    Proto.emit(Out, [&](unsigned Slot) {
      const PortInfo &Po = P.Outputs[Slot];
      if (!Po.Packed) {
        std::vector<int64_t> Lanes(Po.Ty.lanes());
        for (unsigned L = 0; L < Po.Ty.lanes(); ++L)
          Lanes[L] = static_cast<int64_t>(Words[Po.Base + L]);
        return Value::fromLanes(Po.Ty, std::move(Lanes));
      }
      if (Po.Ty.totalBits() <= 64) {
        // The whole port fits one table word: slice the lanes straight
        // out of it (fromLanes canonicalizes, same as the bit path).
        uint64_t W = Words[Po.Base];
        unsigned Wd = Po.Ty.width();
        std::vector<int64_t> Lanes(Po.Ty.lanes());
        for (unsigned L = 0; L < Po.Ty.lanes(); ++L)
          Lanes[L] = static_cast<int64_t>((W >> (L * Wd)) & maskOf(Wd));
        return Value::fromLanes(Po.Ty, std::move(Lanes));
      }
      return Value::fromBits(
          Po.Ty, GatherBits(Po.Base, Po.Ty.totalBits(),
                            std::min(64u, Po.Ty.totalBits()),
                            (Po.Ty.totalBits() + 63) / 64));
    });

    if (Frame.waveActive()) {
      Frame.recorder().cycle(Cycle);
      for (size_t Id = 0; Id < P.Signals.size(); ++Id) {
        const SignalInfo &S = P.Signals[Id];
        Frame.recorder().record(
            Id, GatherBits(S.Base, S.Width, S.LaneWidth, S.Lanes));
      }
    }

    if (Sampled)
      T0 = std::chrono::steady_clock::now();
    exec(P.Commit, Words.data(), Pool, Stack.data());
    if (Sampled) {
      Prof->CommitMs += std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - T0)
                            .count();
      ++Prof->SampledCycles;
    }
    ++CommitRuns;
    OpsRun += EvalOps + CommitOps;
  }

  FillProfile(Inputs.size(), /*Aborted=*/false);
  if (Status S = Frame.finish(); !S)
    return fail<Trace>(S.error());
  Ctx.counter("sim.vm.ops") += OpsRun;
  return Out;
}

const char *segName(unsigned SegIx) {
  return SegIx == 0 ? "init" : SegIx == 1 ? "eval" : "commit";
}

} // namespace

Result<Trace> reticle::sim::execute(const Program &P, const Trace &Inputs,
                                    WaveSink *Wave,
                                    const obs::Context &Ctx) {
  return executeImpl(P, Inputs, Wave, Ctx, nullptr);
}

Result<Trace> reticle::sim::execute(const Program &P, const Trace &Inputs,
                                    VmProfile &Profile, WaveSink *Wave,
                                    const obs::Context &Ctx) {
  Profile = VmProfile();
  Result<Trace> R = executeImpl(P, Inputs, Wave, Ctx, &Profile);
  if (!R)
    Profile.Aborted = true;
  return R;
}

obs::Json reticle::sim::profileJson(const Program &P, const VmProfile &Prof) {
  obs::Json Doc = obs::Json::object();
  Doc.set("schema", "reticle-profile-v1");
  Doc.set("program", P.Name);
  Doc.set("source", P.Source);
  Doc.set("cycles", Prof.Cycles);
  Doc.set("aborted", Prof.Aborted);

  obs::Json Ops = obs::Json::object();
  Ops.set("total", Prof.TotalOps);
  Ops.set("attributed", Prof.AttributedOps);
  Ops.set("attributed_frac",
          Prof.TotalOps == 0 ? 0.0
                             : static_cast<double>(Prof.AttributedOps) /
                                   static_cast<double>(Prof.TotalOps));
  Doc.set("ops", std::move(Ops));

  // Sampled wall time is machine- and run-dependent; consumers comparing
  // profiles for determinism (json_check profile_diff) ignore it.
  obs::Json Sampling = obs::Json::object();
  Sampling.set("cycles", Prof.SampledCycles);
  Sampling.set("eval_ms", Prof.EvalMs);
  Sampling.set("commit_ms", Prof.CommitMs);
  Doc.set("sampling", std::move(Sampling));

  std::vector<const ProfileSite *> Ranked;
  Ranked.reserve(Prof.Sites.size());
  for (const ProfileSite &S : Prof.Sites)
    Ranked.push_back(&S);
  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [](const ProfileSite *A, const ProfileSite *B) {
                     if (A->Count != B->Count)
                       return A->Count > B->Count;
                     if (A->Segment != B->Segment)
                       return A->Segment < B->Segment;
                     return A->Offset < B->Offset;
                   });
  obs::Json Hot = obs::Json::array();
  for (const ProfileSite *S : Ranked) {
    obs::Json Row = obs::Json::object();
    Row.set("segment", segName(S->Segment));
    Row.set("offset", S->Offset);
    Row.set("op", opName(S->Opcode));
    Row.set("count", S->Count);
    Row.set("source", S->Source.empty() ? obs::Json() : obs::Json(S->Source));
    Hot.push(std::move(Row));
  }
  Doc.set("hot_instructions", std::move(Hot));

  std::map<std::string, uint64_t> BySource;
  for (const ProfileSite &S : Prof.Sites)
    if (!S.Source.empty())
      BySource[S.Source] += S.Count;
  std::vector<std::pair<std::string, uint64_t>> Sigs(BySource.begin(),
                                                     BySource.end());
  std::stable_sort(Sigs.begin(), Sigs.end(),
                   [](const auto &A, const auto &B) {
                     if (A.second != B.second)
                       return A.second > B.second;
                     return A.first < B.first;
                   });
  obs::Json Signals = obs::Json::array();
  for (const auto &[Name, Count] : Sigs) {
    obs::Json Row = obs::Json::object();
    Row.set("source", Name);
    Row.set("count", Count);
    Row.set("frac", Prof.TotalOps == 0
                        ? 0.0
                        : static_cast<double>(Count) /
                              static_cast<double>(Prof.TotalOps));
    Signals.push(std::move(Row));
  }
  Doc.set("hot_signals", std::move(Signals));
  return Doc;
}
