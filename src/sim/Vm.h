//===- sim/Vm.h - Bytecode simulation VM ------------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executor of compiled simulation programs. `sim::execute` has the
/// same contract as `interp::interpret` and `codegen::simulate`: an input
/// trace in, a `Result`-wrapped output trace back, an optional `WaveSink`
/// streamed the settled state each cycle (flushed on abort), and counters
/// reported through the `obs::Context` (`sim.cycles` shared with the tree
/// engines, plus `sim.vm.cycles` and `sim.vm.ops`).
///
/// The VM verifies the program, then runs the `Init` segment once and the
/// `Eval`/`Commit` segments per cycle in a tight threaded loop over the
/// word table — no tree walking, no per-cycle allocation, no fixpoint
/// sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SIM_VM_H
#define RETICLE_SIM_VM_H

#include "interp/Trace.h"
#include "interp/Wave.h"
#include "obs/Context.h"
#include "obs/Json.h"
#include "sim/Program.h"
#include "support/Result.h"

namespace reticle {
namespace sim {

/// Runs \p P over \p Inputs, one step per cycle, and returns the output
/// trace. The result is bit-for-bit identical to the tree-walking engine
/// the program was compiled from. \p Wave (may be null) observes the
/// settled state each cycle.
Result<interp::Trace> execute(const Program &P, const interp::Trace &Inputs,
                              WaveSink *Wave = nullptr,
                              const obs::Context &Ctx =
                                  obs::defaultContext());

/// One profiled bytecode site: an instruction within a segment, its
/// dynamic execution count, and the source name the debug side table
/// attributes it to (empty when unattributed).
struct ProfileSite {
  unsigned Segment = 0; ///< 0 init, 1 eval, 2 commit
  uint32_t Offset = 0;  ///< word offset of the opcode
  Op Opcode = Op::EndSeg;
  uint64_t Count = 0;
  std::string Source;
};

/// The execution profile of one profiled run. Per-site counts are exact
/// (segments are straight-line, so every instruction executes once per
/// segment run); segment wall times are sampled on a subset of cycles.
struct VmProfile {
  uint64_t Cycles = 0;        ///< cycles completed
  uint64_t TotalOps = 0;      ///< dynamic instructions retired
  uint64_t AttributedOps = 0; ///< of which attributed to a named source
  uint64_t SampledCycles = 0; ///< cycles with segment timing sampled
  double EvalMs = 0.0;        ///< sampled wall time in the eval segment
  double CommitMs = 0.0;      ///< sampled wall time in the commit segment
  bool Aborted = false;       ///< the run failed; the profile is partial
  std::vector<ProfileSite> Sites; ///< segment/offset order
};

/// The profiled variant of execute(): identical semantics and output,
/// plus the per-op execution profile filled into \p Profile — also on a
/// failing run, so aborted simulations still report where time went.
Result<interp::Trace> execute(const Program &P, const interp::Trace &Inputs,
                              VmProfile &Profile, WaveSink *Wave = nullptr,
                              const obs::Context &Ctx =
                                  obs::defaultContext());

/// Renders \p Prof as a `reticle-profile-v1` document: total/attributed
/// op counts, sampled segment times, the hottest-instructions ranking,
/// and the per-source hottest-signals aggregation.
obs::Json profileJson(const Program &P, const VmProfile &Prof);

} // namespace sim
} // namespace reticle

#endif // RETICLE_SIM_VM_H
