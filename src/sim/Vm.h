//===- sim/Vm.h - Bytecode simulation VM ------------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executor of compiled simulation programs. `sim::execute` has the
/// same contract as `interp::interpret` and `codegen::simulate`: an input
/// trace in, a `Result`-wrapped output trace back, an optional `WaveSink`
/// streamed the settled state each cycle (flushed on abort), and counters
/// reported through the `obs::Context` (`sim.cycles` shared with the tree
/// engines, plus `sim.vm.cycles` and `sim.vm.ops`).
///
/// The VM verifies the program, then runs the `Init` segment once and the
/// `Eval`/`Commit` segments per cycle in a tight threaded loop over the
/// word table — no tree walking, no per-cycle allocation, no fixpoint
/// sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SIM_VM_H
#define RETICLE_SIM_VM_H

#include "interp/Trace.h"
#include "interp/Wave.h"
#include "obs/Context.h"
#include "sim/Program.h"
#include "support/Result.h"

namespace reticle {
namespace sim {

/// Runs \p P over \p Inputs, one step per cycle, and returns the output
/// trace. The result is bit-for-bit identical to the tree-walking engine
/// the program was compiled from. \p Wave (may be null) observes the
/// settled state each cycle.
Result<interp::Trace> execute(const Program &P, const interp::Trace &Inputs,
                              WaveSink *Wave = nullptr,
                              const obs::Context &Ctx =
                                  obs::defaultContext());

} // namespace sim
} // namespace reticle

#endif // RETICLE_SIM_VM_H
