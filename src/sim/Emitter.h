//===- sim/Emitter.h - Bytecode emission helper (internal) ------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The emission helper both lowering passes share: appends fixed-arity
/// instructions to the active segment, interns constants into the pool
/// (first-use order, so compilation stays deterministic), tracks the
/// stack depth high-water mark that becomes `Program::MaxStack`, and
/// accumulates the static opcode histogram reported through the
/// `sim.vm.op.*` counters. Internal to the sim library.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SIM_EMITTER_H
#define RETICLE_SIM_EMITTER_H

#include "obs/Context.h"
#include "sim/Program.h"

#include <array>
#include <cassert>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>

namespace reticle {
namespace sim {
namespace detail {

class Emitter {
public:
  explicit Emitter(Program &P) : Prog(P) {}

  /// Makes \p Seg the active segment for subsequent emissions.
  void use(std::vector<uint32_t> &Seg) {
    Code = &Seg;
    LastInstr = NoInstr;
    Marks = &Seg == &Prog.Init     ? &Prog.InitSrc
            : &Seg == &Prog.Eval   ? &Prog.EvalSrc
            : &Seg == &Prog.Commit ? &Prog.CommitSrc
                                   : nullptr;
    clearSource();
  }

  /// Attributes subsequently emitted instructions to source \p Name (an
  /// IR instruction destination or netlist signal). Marks land lazily on
  /// the next emission, so naming a source that emits nothing leaves no
  /// debris in the side table.
  void setSource(std::string_view Name) {
    if (HaveSource && CurName == Name)
      return;
    CurName.assign(Name);
    HaveSource = true;
    CurInterned = false;
  }

  /// Ends the current attribution range; following instructions are
  /// unattributed until the next setSource().
  void clearSource() {
    HaveSource = false;
    CurInterned = false;
  }

  void op(Op O, std::initializer_list<uint32_t> Operands = {}) {
    assert(Code && "no active segment");
    assert(Operands.size() == opOperands(O) && "operand arity mismatch");
    mark();
    LastInstr = Code->size();
    Code->push_back(static_cast<uint32_t>(O));
    for (uint32_t A : Operands)
      Code->push_back(A);
    assert(Depth >= opPops(O) && "emitted a stack underflow");
    Depth = Depth - opPops(O) + opPushes(O);
    if (Depth > Prog.MaxStack)
      Prog.MaxStack = static_cast<uint32_t>(Depth);
    ++Histogram[static_cast<uint32_t>(O)];
  }

  void endSeg() { op(Op::EndSeg); }

  /// Interns \p V into the constant pool and returns its index.
  uint32_t constant(uint64_t V) {
    auto [It, Inserted] =
        PoolIndex.try_emplace(V, static_cast<uint32_t>(Prog.Pool.size()));
    if (Inserted)
      Prog.Pool.push_back(V);
    return It->second;
  }

  void loadConst(uint64_t V) { op(Op::LoadConst, {constant(V)}); }
  void loadField(uint32_t Word, uint32_t Lo, uint32_t Len) {
    // Peephole: a whole-word load of the word the previous instruction
    // just whole-word stored is the stored value itself. Rewriting
    // `store w; load w` into `dup; store w` drops a table round-trip —
    // the common def-then-use adjacency in topo-ordered lowering.
    if (Lo == 0 && Len == 64 && LastInstr != NoInstr &&
        Code->size() - LastInstr == 4 &&
        (*Code)[LastInstr] == static_cast<uint32_t>(Op::StoreField) &&
        (*Code)[LastInstr + 1] == Word && (*Code)[LastInstr + 2] == 0 &&
        (*Code)[LastInstr + 3] == 64) {
      Code->insert(Code->begin() + LastInstr,
                   static_cast<uint32_t>(Op::Dup));
      // The insertion shifts every instruction at or past the store by
      // one word; debug marks pointing there (only the sorted tail can)
      // shift with it, so they keep naming instruction boundaries. The
      // dup itself joins the preceding mark's range.
      if (Marks)
        for (auto It = Marks->rbegin();
             It != Marks->rend() && It->Offset >= LastInstr; ++It)
          ++It->Offset;
      ++LastInstr; // the store, shifted by the inserted dup
      ++Histogram[static_cast<uint32_t>(Op::Dup)];
      ++Depth; // the duplicate survives the store, like the load would
      if (Depth + 1 > Prog.MaxStack)
        Prog.MaxStack = static_cast<uint32_t>(Depth + 1);
      return;
    }
    op(Op::LoadField, {Word, Lo, Len});
  }
  void storeField(uint32_t Word, uint32_t Lo, uint32_t Len) {
    op(Op::StoreField, {Word, Lo, Len});
  }
  void loadWord(uint32_t Word) { loadField(Word, 0, 64); }
  void storeWord(uint32_t Word) { storeField(Word, 0, 64); }

  /// Canonicalizes the top of stack to \p Ty's lane representation:
  /// `Bool` (v != 0) for bool lanes, sign extension for integer lanes —
  /// mirroring `Value::fromLanes`.
  void canonTo(ir::Type Ty) {
    if (Ty.isBool())
      op(Op::Bool);
    else
      op(Op::Canon, {Ty.width()});
  }

  size_t depth() const { return Depth; }

  /// Adds the static opcode histogram to the `sim.vm.op.*` counters and
  /// the program geometry to the `sim.vm.program.*` counters.
  void countInto(const obs::Context &Ctx) const {
    ++Ctx.counter("sim.vm.compiles");
    Ctx.counter("sim.vm.program.words") += Prog.NumWords;
    Ctx.counter("sim.vm.program.consts") += Prog.Pool.size();
    Ctx.counter("sim.vm.program.signals") += Prog.Signals.size();
    for (uint32_t I = 0; I < NumOps; ++I)
      if (Histogram[I])
        Ctx.counter(std::string("sim.vm.op.") +
                    opName(static_cast<Op>(I))) += Histogram[I];
  }

private:
  static constexpr size_t NoInstr = static_cast<size_t>(-1);

  /// Appends a debug mark when the attribution changed since the last
  /// emitted instruction. Names intern on first mark, so the interning
  /// order is the mark order — the property the disassemble/assemble
  /// round-trip relies on to reproduce encode() exactly.
  void mark() {
    if (!Marks)
      return;
    uint32_t Want = SourceMark::NoSource;
    if (HaveSource) {
      if (!CurInterned) {
        auto [It, Inserted] = SrcIndex.try_emplace(
            CurName, static_cast<uint32_t>(Prog.SourceNames.size()));
        if (Inserted)
          Prog.SourceNames.push_back(CurName);
        CurIdx = It->second;
        CurInterned = true;
      }
      Want = CurIdx;
    }
    if (Marks->empty() ? Want == SourceMark::NoSource
                       : Marks->back().Name == Want)
      return;
    Marks->push_back({static_cast<uint32_t>(Code->size()), Want});
  }

  Program &Prog;
  std::vector<uint32_t> *Code = nullptr;
  std::vector<SourceMark> *Marks = nullptr;
  std::map<uint64_t, uint32_t> PoolIndex;
  std::map<std::string, uint32_t, std::less<>> SrcIndex;
  std::string CurName;
  bool HaveSource = false;
  bool CurInterned = false;
  uint32_t CurIdx = 0;
  size_t Depth = 0;
  size_t LastInstr = NoInstr;
  std::array<uint64_t, NumOps> Histogram{};
};

} // namespace detail
} // namespace sim
} // namespace reticle

#endif // RETICLE_SIM_EMITTER_H
