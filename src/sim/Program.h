//===- sim/Program.h - Compiled simulation programs -------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled-simulation program format: a design (IR function or
/// generated netlist) lowered once into flat word-oriented bytecode that a
/// tight VM loop executes per cycle, instead of re-walking instruction or
/// expression trees every cycle (the "scale with data, not code size"
/// shape of scheduler-bytecode VMs).
///
/// A `Program` holds:
///
///  - a dense *word table*: every signal's value lives in one or more
///    64-bit words at a fixed base offset. IR signals store one canonical
///    (sign-extended) lane per word, exactly as `interp::Value` lanes;
///    netlist signals store bits packed 64 per word. Hidden scratch words
///    (register next-state staging, carry chains, DSP temporaries) live
///    past the named signals.
///  - a *constant pool* of 64-bit words referenced by `LoadConst`.
///  - three bytecode *segments*, each a flat `uint32_t` stream of
///    fixed-arity instructions terminated by `EndSeg`: `Init` runs once
///    (register/state initial values, constants), `Eval` runs every cycle
///    in topological order, and `Commit` runs at each clock edge
///    (computing all next states before storing any, so registers update
///    simultaneously).
///  - boundary metadata: input/output ports (how trace `Value`s map onto
///    table words) and the waveform signal list (how table words flatten
///    back into the per-cycle bit vectors a `WaveSink` observes).
///
/// Instructions operate on an operand stack of 64-bit words; the verifier
/// checks stack discipline and operand bounds ahead of execution, and the
/// disassembler/assembler round-trips programs through a textual form for
/// debugging (`reticlec --dump-sim-program`).
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SIM_PROGRAM_H
#define RETICLE_SIM_PROGRAM_H

#include "interp/Wave.h"
#include "ir/Type.h"
#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace reticle {
namespace sim {

/// The bytecode instruction set. Every instruction is one opcode word
/// followed by a fixed number of operand words (`opOperands`). Stack
/// values are raw 64-bit words; "canonical" means the low-W-bits payload
/// sign-extended to 64 bits, the `interp::Value` lane representation.
enum class Op : uint32_t {
  EndSeg = 0, ///< terminates a segment; stack must be empty
  LoadConst,  ///< [pool] push Pool[pool]
  LoadField,  ///< [word, lo, len] push (Words[word] >> lo) & mask(len)
  StoreField, ///< [word, lo, len] pop v; Words[word] bits [lo,lo+len) = v
  Dup,        ///< push a copy of the top of stack
  Canon,      ///< [w] pop v; push low w bits sign-extended
  Bool,       ///< pop v; push v != 0 (bool-lane canonicalization)
  Mask,       ///< [w] pop v; push v & mask(w)
  Add,        ///< pop b, a; push a + b (mod 2^64)
  Sub,        ///< pop b, a; push a - b (mod 2^64)
  Mul,        ///< pop b, a; push a * b (mod 2^64)
  NotB,       ///< pop v; push ~v
  AndB,       ///< pop b, a; push a & b
  OrB,        ///< pop b, a; push a | b
  XorB,       ///< pop b, a; push a ^ b
  Shl,        ///< [amt] pop v; push v << amt (amt < 64)
  Shr,        ///< [amt] pop v; push v >> amt, logical (amt < 64)
  Sar,        ///< [amt] pop v; push v >> amt, arithmetic (amt < 64)
  ShrV,       ///< pop amt, v; push amt < 64 ? v >> amt : 0 (logical)
  CmpEq,      ///< pop b, a; push (int64)a == (int64)b
  CmpNe,      ///< pop b, a; push (int64)a != (int64)b
  CmpLt,      ///< pop b, a; push (int64)a <  (int64)b
  CmpGt,      ///< pop b, a; push (int64)a >  (int64)b
  CmpLe,      ///< pop b, a; push (int64)a <= (int64)b
  CmpGe,      ///< pop b, a; push (int64)a >= (int64)b
  Select,     ///< pop cond, ifTrue, ifFalse; push cond ? ifTrue : ifFalse
};

/// Number of distinct opcodes (for histograms and validation).
constexpr uint32_t NumOps = uint32_t(Op::Select) + 1;

/// The lowercase mnemonic of \p O ("loadfield", "cmpeq", ...).
const char *opName(Op O);

/// Number of operand words following \p O's opcode word.
unsigned opOperands(Op O);

/// Net stack effect: how many words \p O pops and pushes.
unsigned opPops(Op O);
unsigned opPushes(Op O);

/// One named signal in the word table, with enough metadata to flatten
/// its words back into the LSB-first bit vector the wave layer observes:
/// lane L contributes the low `min(LaneWidth, Width - L*LaneWidth)` bits
/// of word `Base + L`.
struct SignalInfo {
  std::string Name;
  unsigned Width = 1;     ///< flattened bit count
  unsigned LaneWidth = 1; ///< bits carried per table word
  unsigned Lanes = 1;     ///< table words
  uint32_t Base = 0;      ///< first table word
  WaveSignal::Kind Kind = WaveSignal::Kind::Internal;
};

/// One boundary port: how a trace `Value` maps onto table words. IR
/// programs store one canonical lane per word (`Packed` false); netlist
/// programs store flattened bits packed 64 per word (`Packed` true).
struct PortInfo {
  std::string Name;
  ir::Type Ty;
  uint32_t Base = 0;
  bool Packed = false;
};

/// One debug-info attribution mark: instructions from word `Offset` of a
/// segment up to the next mark (or the segment end) originate from
/// `Program::SourceNames[Name]` — an IR instruction destination or a
/// netlist signal. `Name == NoSource` explicitly ends an attributed range.
struct SourceMark {
  /// Sentinel name index: the range is unattributed.
  static constexpr uint32_t NoSource = ~uint32_t(0);

  uint32_t Offset = 0;
  uint32_t Name = 0;
};

/// A compiled simulation program. Produced by `sim::compile`, checked by
/// `sim::verify`, executed by `sim::execute`.
struct Program {
  std::string Name;   ///< source function or module name
  std::string Source; ///< "ir" or "netlist"
  uint32_t NumWords = 0;
  uint32_t MaxStack = 0;
  std::vector<uint64_t> Pool;
  std::vector<uint32_t> Init;
  std::vector<uint32_t> Eval;
  std::vector<uint32_t> Commit;
  std::vector<SignalInfo> Signals; ///< wave signal list, in stream order
  std::vector<PortInfo> Inputs;    ///< name-unsorted declaration order
  std::vector<PortInfo> Outputs;

  /// Debug-info side table: interned attribution names plus one
  /// offset-sorted mark list per segment, mapping every bytecode range
  /// back to the IR instruction / netlist signal the lowering emitted it
  /// for. Purely observational — execution never reads it — but it
  /// round-trips through encode() and the text format so profiles of
  /// reassembled programs still attribute.
  std::vector<std::string> SourceNames;
  std::vector<SourceMark> InitSrc;
  std::vector<SourceMark> EvalSrc;
  std::vector<SourceMark> CommitSrc;

  /// The mark list of segment \p SegIx (0 init, 1 eval, 2 commit).
  const std::vector<SourceMark> &marks(unsigned SegIx) const {
    return SegIx == 0 ? InitSrc : SegIx == 1 ? EvalSrc : CommitSrc;
  }

  /// The source name covering word \p Offset of segment \p SegIx, or
  /// nullptr when the range is unattributed.
  const char *sourceAt(unsigned SegIx, uint32_t Offset) const;

  /// A deterministic byte-for-byte serialization: equal programs encode
  /// identically, so determinism and round-trip tests compare blobs.
  std::string encode() const;
};

/// Structural verification: every segment is `EndSeg`-terminated, opcodes
/// and operand fields are in bounds (word/pool indexes, field widths,
/// shift amounts), the stack never underflows, never exceeds `MaxStack`,
/// and is empty at each `EndSeg`.
Status verify(const Program &P);

/// Renders \p P as the `reticle-sim-program-v1` text format.
std::string disassemble(const Program &P);

/// Parses the `reticle-sim-program-v1` text format back into a program
/// (the inverse of `disassemble`; round-tripping preserves `encode()`).
Result<Program> assemble(const std::string &Text);

} // namespace sim
} // namespace reticle

#endif // RETICLE_SIM_PROGRAM_H
