//===- sim/CompileNetlist.cpp - Lowering netlists to sim programs ----------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a generated structural-Verilog module into a `sim::Program`
/// equivalent to the tree-walking netlist simulator. The key change of
/// shape: where the tree-walker re-sweeps every item to a fixpoint each
/// cycle, this pass topologically orders the combinational items *once*
/// (signal writer -> reader edges; FDRE/DSP-PREG outputs are sources), so
/// the VM evaluates each item exactly once per cycle. Expressions in the
/// structural subset (references, sized literals, bit/range selects,
/// concatenation, replication) flatten into bit "pieces" that lower to
/// word-level field moves — wires wider than 64 bits copy chunk by chunk
/// and never pass through a single arithmetic word, which is what the
/// tree-walker's `toUint` used to get wrong.
///
/// Signals store flattened bits packed 64 per word. Sequential state
/// (FDRE Q, DSP P with PREG) lives in hidden state words initialized in
/// the `Init` segment; the `Commit` segment computes every next state on
/// the stack before storing any, preserving the simultaneous clock edge.
///
//===----------------------------------------------------------------------===//

#include "sim/Compile.h"

#include "ir/DefUse.h"
#include "obs/Telemetry.h"
#include "sim/Emitter.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

using namespace reticle;
using namespace reticle::sim;
using detail::Emitter;
using verilog::Expr;
using verilog::Item;
using verilog::Module;

namespace {

uint64_t maskOf(unsigned Len) {
  return Len >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Len) - 1);
}

uint64_t paramOf(const Item &I, const std::string &Name, uint64_t Default) {
  for (const auto &[PName, PExpr] : I.Params)
    if (PName == Name)
      return PExpr.value();
  return Default;
}

std::string paramStr(const Item &I, const std::string &Name,
                     const std::string &Default) {
  for (const auto &[PName, PExpr] : I.Params)
    if (PName == Name)
      return PExpr.name();
  return Default;
}

const Expr *connOf(const Item &I, const std::string &Port) {
  for (const auto &[PName, PExpr] : I.Connections)
    if (PName == Port)
      return &PExpr;
  return nullptr;
}

/// A contiguous run of an expression's flattened bits: either a constant
/// payload or a bit range of one signal.
struct Piece {
  bool IsConst = false;
  uint64_t Value = 0; ///< constant payload (low Len bits), IsConst only
  uint32_t Sig = 0;   ///< signal index, !IsConst only
  unsigned Bit = 0;   ///< start bit within the signal, !IsConst only
  unsigned Len = 0;
};

size_t totalLen(const std::vector<Piece> &Pieces) {
  size_t Out = 0;
  for (const Piece &P : Pieces)
    Out += P.Len;
  return Out;
}

/// The sub-range [Start, Start+Len) of a piece list.
std::vector<Piece> subRange(const std::vector<Piece> &Pieces, size_t Start,
                            size_t Len) {
  std::vector<Piece> Out;
  size_t Pos = 0;
  for (const Piece &P : Pieces) {
    if (Len == 0)
      break;
    size_t End = Pos + P.Len;
    if (End <= Start) {
      Pos = End;
      continue;
    }
    size_t Off = Start > Pos ? Start - Pos : 0;
    size_t Take = std::min<size_t>(P.Len - Off, Len);
    Piece Sub = P;
    if (Sub.IsConst)
      Sub.Value = (Sub.Value >> Off) & maskOf(static_cast<unsigned>(Take));
    else
      Sub.Bit += static_cast<unsigned>(Off);
    Sub.Len = static_cast<unsigned>(Take);
    Out.push_back(Sub);
    Len -= Take;
    Start += Take;
    Pos = End;
  }
  return Out;
}

/// A coalesced run of pieces emitted as one stack value. Three shapes:
/// a merged constant (adjacent const pieces folded into one payload), a
/// contiguous bit range of one signal (adjacent pieces whose ranges
/// abut), or one signal bit replicated \p Rep times — the shape `Repeat`
/// flattening produces for sign extension, emitted as a single
/// bit × ones-mask multiply instead of \p Rep unit copies.
struct Group {
  Piece P;
  unsigned Rep = 1; ///< > 1 only when P is a 1-bit signal piece
};

/// Folds adjacent pieces into groups: consecutive constants merge while
/// the payload fits 64 bits, contiguous ranges of the same signal merge,
/// and repeated copies of the same single bit collapse into a Rep group.
std::vector<Group> coalesce(const std::vector<Piece> &Pieces) {
  std::vector<Group> Out;
  for (const Piece &P : Pieces) {
    if (!Out.empty()) {
      Group &G = Out.back();
      if (P.IsConst && G.P.IsConst && G.Rep == 1 &&
          G.P.Len + P.Len <= 64) {
        G.P.Value |= P.Value << G.P.Len;
        G.P.Len += P.Len;
        continue;
      }
      if (!P.IsConst && !G.P.IsConst && P.Sig == G.P.Sig) {
        if (G.P.Len == 1 && P.Len == 1 && P.Bit == G.P.Bit &&
            G.Rep < 64) {
          ++G.Rep;
          continue;
        }
        if (G.Rep == 1 && P.Bit == G.P.Bit + G.P.Len) {
          G.P.Len += P.Len;
          continue;
        }
      }
    }
    Out.push_back({P, 1});
  }
  return Out;
}

/// Bits a group contributes to the assembled value.
unsigned groupLen(const Group &G) { return G.P.Len * G.Rep; }

/// The compile-time signal table: packed-bit layout plus lookup.
struct Signals {
  struct Sig {
    std::string Name;
    unsigned Width;
    uint32_t Base;
  };
  std::vector<Sig> Table;
  ir::NameInterner Names;

  Status declare(const std::string &Name, unsigned Width, uint32_t &Next) {
    unsigned BitCount = Width == 0 ? 1 : Width;
    ir::ValueId Id = Names.intern(Name);
    if (Id != Table.size())
      return Status::failure("duplicate signal '" + Name + "'");
    Table.push_back({Name, BitCount, Next});
    Next += (BitCount + 63) / 64;
    return Status::success();
  }
  bool exists(const std::string &Name) const {
    return Names.lookup(Name) != ir::InvalidValueId;
  }
  uint32_t indexOf(const std::string &Name) const {
    return Names.lookup(Name);
  }
  const Sig &at(uint32_t Index) const { return Table[Index]; }

  /// The table word and in-word position of signal bit \p Bit.
  std::pair<uint32_t, unsigned> addr(uint32_t Index, unsigned Bit) const {
    return {Table[Index].Base + Bit / 64, Bit % 64};
  }
};

/// Flattens \p E into LSB-first pieces over declared signals.
Result<std::vector<Piece>> flatten(const Expr &E, const Signals &Sigs) {
  using Pieces = std::vector<Piece>;
  switch (E.kind()) {
  case Expr::Kind::Ref: {
    if (!Sigs.exists(E.name()))
      return fail<Pieces>("undriven reference '" + E.name() + "'");
    uint32_t Index = Sigs.indexOf(E.name());
    Piece P;
    P.Sig = Index;
    P.Bit = 0;
    P.Len = Sigs.at(Index).Width;
    return Pieces{P};
  }
  case Expr::Kind::IntLit: {
    unsigned W = E.width() == 0 ? 1 : E.width();
    Pieces Out;
    Piece P;
    P.IsConst = true;
    P.Len = std::min(W, 64u);
    P.Value = E.value() & maskOf(P.Len);
    Out.push_back(P);
    if (W > 64) {
      Piece Zero;
      Zero.IsConst = true;
      Zero.Len = W - 64;
      Out.push_back(Zero);
    }
    return Out;
  }
  case Expr::Kind::Index: {
    Result<Pieces> Base = flatten(E.operands()[0], Sigs);
    if (!Base)
      return Base;
    if (E.width() >= totalLen(Base.value()))
      return fail<Pieces>("bit select out of range in '" + E.str() + "'");
    return subRange(Base.value(), E.width(), 1);
  }
  case Expr::Kind::Range: {
    Result<Pieces> Base = flatten(E.operands()[0], Sigs);
    if (!Base)
      return Base;
    if (E.width() >= totalLen(Base.value()) || E.lo() > E.width())
      return fail<Pieces>("range select out of range in '" + E.str() + "'");
    return subRange(Base.value(), E.lo(), E.width() - E.lo() + 1);
  }
  case Expr::Kind::Concat: {
    // Operands are most-significant first.
    Pieces Out;
    for (size_t I = E.operands().size(); I-- > 0;) {
      Result<Pieces> Part = flatten(E.operands()[I], Sigs);
      if (!Part)
        return Part;
      for (Piece &P : Part.value())
        Out.push_back(std::move(P));
    }
    return Out;
  }
  case Expr::Kind::Repeat: {
    Result<Pieces> Part = flatten(E.operands()[0], Sigs);
    if (!Part)
      return Part;
    Pieces Out;
    for (unsigned I = 0; I < E.width(); ++I)
      for (const Piece &P : Part.value())
        Out.push_back(P);
    return Out;
  }
  default:
    return fail<Pieces>("expression form not supported by the netlist "
                        "simulator: " + E.str());
  }
}

/// An assignment target resolved to one signal bit range (mirrors the
/// tree-walker's storeLValue checks and messages).
struct LTarget {
  uint32_t Sig;
  unsigned Lo;
  unsigned Len;
};

Result<LTarget> lvalueOf(const Expr &Lhs, const Signals &Sigs) {
  const Expr *Base = &Lhs;
  unsigned Hi = 0, Lo = 0;
  bool Whole = true;
  if (Lhs.kind() == Expr::Kind::Index) {
    Base = &Lhs.operands()[0];
    Hi = Lo = Lhs.width();
    Whole = false;
  } else if (Lhs.kind() == Expr::Kind::Range) {
    Base = &Lhs.operands()[0];
    Hi = Lhs.width();
    Lo = Lhs.lo();
    Whole = false;
  }
  if (Base->kind() != Expr::Kind::Ref)
    return fail<LTarget>("unsupported assignment target: " + Lhs.str());
  if (!Sigs.exists(Base->name()))
    return fail<LTarget>("assignment to undeclared signal '" + Base->name() +
                         "'");
  uint32_t Index = Sigs.indexOf(Base->name());
  unsigned Width = Sigs.at(Index).Width;
  if (Whole) {
    Hi = Width - 1;
    Lo = 0;
  }
  if (Hi >= Width)
    return fail<LTarget>("width mismatch assigning " + Lhs.str());
  return LTarget{Index, Lo, Hi - Lo + 1};
}

/// Collects the signal indices an expression reads.
void collectReads(const Expr &E, const Signals &Sigs,
                  std::set<uint32_t> &Out) {
  if (E.kind() == Expr::Kind::Ref) {
    if (Sigs.exists(E.name()))
      Out.insert(Sigs.indexOf(E.name()));
    return;
  }
  for (const Expr &Opnd : E.operands())
    collectReads(Opnd, Sigs, Out);
}

/// The resolved DSP48E2 configuration shared by eval and commit lowering.
struct DspConfig {
  bool Mult = false;
  bool Subtract = false;
  bool UsePcin = false;
  unsigned Lanes = 1;
  const Expr *Z = nullptr; // PCIN or C connection (null: zero)
  const Expr *A = nullptr;
  const Expr *B = nullptr;
};

Result<DspConfig> dspConfigOf(const Item &I) {
  DspConfig C;
  std::string Simd = paramStr(I, "USE_SIMD", "ONE48");
  C.Mult = paramStr(I, "USE_MULT", "NONE") == "MULTIPLY";
  uint64_t Opmode = paramOf(I, "OPMODE", 0x33);
  C.Subtract = paramOf(I, "ALUMODE", 0) == 0x3;
  C.UsePcin = ((Opmode >> 4) & 0x3) == 0x1;
  C.Lanes = Simd == "FOUR12" ? 4 : (Simd == "TWO24" ? 2 : 1);
  if (C.UsePcin) {
    C.Z = connOf(I, "PCIN");
    if (!C.Z)
      return fail<DspConfig>("DSP uses PCIN but has no connection");
  } else {
    C.Z = connOf(I, "C"); // may be null: Z is zero
  }
  C.A = connOf(I, "A");
  C.B = connOf(I, "B");
  if (!C.A || !C.B)
    return fail<DspConfig>("DSP input evaluation failed");
  return C;
}

/// Lowers the module; a class only to share the tables between the
/// eval/commit emission helpers.
class NetlistLowering {
public:
  NetlistLowering(const Module &M, Program &P) : M(M), P(P), E(P) {}

  Status run();
  void countInto(const obs::Context &Ctx) { E.countInto(Ctx); }

private:
  const Module &M;
  Program &P;
  Emitter E;
  Signals Sigs;
  uint32_t NextWord = 0;
  // Hidden scratch words, allocated on first use.
  uint32_t CarryW = 0, ZW = 0, XyW = 0, PW = 0;
  bool HaveCarryW = false, HaveDspW = false;
  std::map<size_t, uint32_t> FdreState; // item index -> state word
  std::map<size_t, uint32_t> DspState;  // item index -> state word

  uint32_t scratch() { return NextWord++; }

  /// Assembles pieces [Start, Start+Len) (Len <= 64) onto the stack,
  /// zero-extended.
  void assemble(const std::vector<Piece> &Pieces, size_t Start,
                unsigned Len) {
    std::vector<Piece> Range = subRange(Pieces, Start, Len);
    // Pad with zeros when the source is narrower than requested.
    size_t Have = totalLen(Range);
    if (Have < Len) {
      Piece Zero;
      Zero.IsConst = true;
      Zero.Len = static_cast<unsigned>(Len - Have);
      Range.push_back(Zero);
    }
    bool First = true;
    unsigned Pos = 0;
    for (const Group &G : coalesce(Range)) {
      if (G.Rep > 1) {
        // One bit replicated: bit × ones-mask spreads it across Rep
        // positions in three instructions instead of Rep copies.
        auto [Word, Bit] = Sigs.addr(G.P.Sig, G.P.Bit);
        E.loadField(Word, Bit, 1);
        E.loadConst(maskOf(G.Rep));
        E.op(Op::Mul);
        if (Pos > 0)
          E.op(Op::Shl, {Pos});
        if (!First)
          E.op(Op::OrB);
        First = false;
        Pos += G.Rep;
        continue;
      }
      const Piece &Pc = G.P;
      unsigned Off = 0;
      while (Off < Pc.Len) {
        unsigned ChunkLen = Pc.Len - Off;
        if (Pc.IsConst) {
          E.loadConst((Pc.Value >> Off) & maskOf(ChunkLen));
        } else {
          auto [Word, Bit] = Sigs.addr(Pc.Sig, Pc.Bit + Off);
          ChunkLen = std::min(ChunkLen, 64 - Bit);
          E.loadField(Word, Bit, ChunkLen);
        }
        if (Pos + Off > 0)
          E.op(Op::Shl, {Pos + Off});
        if (!First)
          E.op(Op::OrB);
        First = false;
        Off += ChunkLen;
      }
      Pos += Pc.Len;
    }
    if (First)
      E.loadConst(0);
  }

  /// Pushes one source bit (piece-addressed) onto the stack.
  void loadBit(const std::vector<Piece> &Pieces, size_t Bit) {
    assemble(Pieces, Bit, 1);
  }

  /// Copies \p Pieces into the target bit range, chunking at word
  /// boundaries on both sides; never routes wide values through a single
  /// word.
  void copyTo(const std::vector<Piece> &Pieces, const LTarget &Dst) {
    size_t SrcPos = 0;
    for (const Group &G : coalesce(Pieces)) {
      unsigned GLen = groupLen(G);
      unsigned Off = 0;
      while (Off < GLen) {
        unsigned DstBit = Dst.Lo + static_cast<unsigned>(SrcPos) + Off;
        auto [DstWord, DstLo] = Sigs.addr(Dst.Sig, DstBit);
        unsigned ChunkLen = std::min(GLen - Off, 64 - DstLo);
        if (G.P.IsConst) {
          E.loadConst((G.P.Value >> Off) & maskOf(ChunkLen));
        } else if (G.Rep > 1) {
          // Replicated bit: spread with one multiply per destination
          // word instead of one store per bit.
          auto [SrcWord, SrcLo] = Sigs.addr(G.P.Sig, G.P.Bit);
          E.loadField(SrcWord, SrcLo, 1);
          if (ChunkLen > 1) {
            E.loadConst(maskOf(ChunkLen));
            E.op(Op::Mul);
          }
        } else {
          auto [SrcWord, SrcLo] = Sigs.addr(G.P.Sig, G.P.Bit + Off);
          ChunkLen = std::min(ChunkLen, 64 - SrcLo);
          E.loadField(SrcWord, SrcLo, ChunkLen);
        }
        E.storeField(DstWord, DstLo, ChunkLen);
        Off += ChunkLen;
      }
      SrcPos += GLen;
    }
  }

  /// Resolves a connection into an assignment target with the
  /// tree-walker's width check.
  Result<LTarget> targetOf(const Expr &Lhs, unsigned ValueLen) {
    Result<LTarget> T = lvalueOf(Lhs, Sigs);
    if (!T)
      return T;
    if (T.value().Len != ValueLen)
      return fail<LTarget>("width mismatch assigning " + Lhs.str());
    return T;
  }

  /// Emits the DSP48E2 combinational P computation into the PW scratch
  /// word. \p Where names the item for error messages.
  Status emitDspComb(const Item &I) {
    Result<DspConfig> CfgOr = dspConfigOf(I);
    if (!CfgOr)
      return Status::failure(CfgOr.error());
    const DspConfig &Cfg = CfgOr.value();
    if (!HaveDspW) {
      ZW = scratch();
      XyW = scratch();
      PW = scratch();
      HaveDspW = true;
    }
    // Z operand: PCIN, C, or zero; truncated/padded to 48 bits.
    if (Cfg.Z) {
      Result<std::vector<Piece>> Z = flatten(*Cfg.Z, Sigs);
      if (!Z)
        return Status::failure(Z.error());
      assemble(Z.value(), 0, 48);
    } else {
      E.loadConst(0);
    }
    E.storeField(ZW, 0, 48);
    // X:Y operand: the signed product or {A[29:0], B[17:0]}.
    Result<std::vector<Piece>> A = flatten(*Cfg.A, Sigs);
    Result<std::vector<Piece>> B = flatten(*Cfg.B, Sigs);
    if (!A || !B)
      return Status::failure("DSP input evaluation failed");
    if (Cfg.Mult) {
      unsigned WA = static_cast<unsigned>(totalLen(A.value()));
      unsigned WB = static_cast<unsigned>(totalLen(B.value()));
      if (WA > 64 || WB > 64)
        return Status::failure(
            "DSP multiplier input wider than 64 bits (" +
            std::to_string(std::max(WA, WB)) + " bits)");
      assemble(A.value(), 0, WA);
      if (WA < 64)
        E.op(Op::Canon, {WA});
      assemble(B.value(), 0, WB);
      if (WB < 64)
        E.op(Op::Canon, {WB});
      E.op(Op::Mul);
      E.op(Op::Mask, {48});
    } else {
      assemble(B.value(), 0, 18);
      assemble(A.value(), 0, 30);
      E.op(Op::Shl, {18});
      E.op(Op::OrB);
    }
    E.storeField(XyW, 0, 48);
    // Per-SIMD-lane add/subtract into PW.
    unsigned FieldBits = 48 / Cfg.Lanes;
    for (unsigned L = 0; L < Cfg.Lanes; ++L) {
      E.loadField(ZW, L * FieldBits, FieldBits);
      E.loadField(XyW, L * FieldBits, FieldBits);
      E.op(Cfg.Subtract ? Op::Sub : Op::Add);
      E.op(Op::Mask, {FieldBits});
      E.storeField(PW, L * FieldBits, FieldBits);
    }
    return Status::success();
  }

  /// Copies the 48-bit value in word \p From to the DSP's P and PCOUT
  /// connections.
  Status emitDspOutputs(const Item &I, uint32_t From) {
    for (const char *Port : {"P", "PCOUT"}) {
      const Expr *Conn = connOf(I, Port);
      if (!Conn)
        continue;
      Result<LTarget> T = targetOf(*Conn, 48);
      if (!T)
        return Status::failure(T.error());
      // 48 bits always fit one scratch word, but the target may straddle
      // a word boundary.
      unsigned Off = 0;
      while (Off < 48) {
        auto [DstWord, DstLo] = Sigs.addr(T.value().Sig, T.value().Lo + Off);
        unsigned ChunkLen = std::min(48 - Off, 64 - DstLo);
        E.loadField(From, Off, ChunkLen);
        E.storeField(DstWord, DstLo, ChunkLen);
        Off += ChunkLen;
      }
    }
    return Status::success();
  }

  /// The profile-attribution label of an item: the signal it drives (the
  /// assign target, LUT/CARRY8 O, FDRE Q, DSP P/PCOUT). Empty when the
  /// target cannot be resolved — those items stay unattributed rather
  /// than failing the lowering here (the emission path reports the real
  /// error).
  std::string itemLabel(const Item &I) {
    auto NameOfLhs = [&](const Expr *Lhs) -> std::string {
      if (!Lhs)
        return std::string();
      Result<LTarget> T = lvalueOf(*Lhs, Sigs);
      if (!T)
        return std::string();
      return Sigs.at(T.value().Sig).Name;
    };
    if (I.ItemKind == Item::Kind::Assign)
      return NameOfLhs(&I.Lhs);
    if (I.ItemKind != Item::Kind::Instance)
      return std::string();
    if (I.ModuleName.rfind("LUT", 0) == 0 || I.ModuleName == "CARRY8")
      return NameOfLhs(connOf(I, "O"));
    if (I.ModuleName == "FDRE")
      return NameOfLhs(connOf(I, "Q"));
    if (I.ModuleName == "DSP48E2") {
      std::string Name = NameOfLhs(connOf(I, "P"));
      return Name.empty() ? NameOfLhs(connOf(I, "PCOUT")) : Name;
    }
    return std::string();
  }

  /// Attributes subsequent emissions to \p I's driven signal (or clears
  /// the attribution when the item has no resolvable target).
  void attribute(const Item &I) {
    std::string Label = itemLabel(I);
    if (Label.empty())
      E.clearSource();
    else
      E.setSource(Label);
  }

  Status emitEvalItem(size_t Index);
  Result<std::vector<size_t>> orderItems();
};

/// Topologically orders the items by signal writer -> reader edges.
/// Sequential elements read nothing during evaluation, so they are
/// sources; a cycle means real combinational feedback, which the
/// tree-walker only detects at run time as a failure to settle.
Result<std::vector<size_t>> NetlistLowering::orderItems() {
  const std::vector<Item> &Items = M.items();
  std::map<uint32_t, std::vector<size_t>> WritersOf;
  std::vector<std::set<uint32_t>> Reads(Items.size());
  std::vector<bool> Emits(Items.size(), false);

  auto AddWrite = [&](size_t Index, const Expr *Lhs) -> Status {
    if (!Lhs)
      return Status::success();
    Result<LTarget> T = lvalueOf(*Lhs, Sigs);
    if (!T)
      return Status::failure(T.error());
    WritersOf[T.value().Sig].push_back(Index);
    return Status::success();
  };

  for (size_t Index = 0; Index < Items.size(); ++Index) {
    const Item &I = Items[Index];
    if (I.ItemKind == Item::Kind::Assign) {
      Emits[Index] = true;
      collectReads(I.Rhs, Sigs, Reads[Index]);
      if (Status S = AddWrite(Index, &I.Lhs); !S)
        return fail<std::vector<size_t>>(S.error());
      continue;
    }
    if (I.ItemKind != Item::Kind::Instance)
      continue;
    Emits[Index] = true;
    if (I.ModuleName.rfind("LUT", 0) == 0) {
      unsigned K = static_cast<unsigned>(I.ModuleName[3] - '0');
      for (unsigned Pin = 0; Pin < K; ++Pin)
        if (const Expr *In = connOf(I, "I" + std::to_string(Pin)))
          collectReads(*In, Sigs, Reads[Index]);
      if (Status S = AddWrite(Index, connOf(I, "O")); !S)
        return fail<std::vector<size_t>>(S.error());
    } else if (I.ModuleName == "CARRY8") {
      for (const char *Port : {"S", "DI", "CI"})
        if (const Expr *In = connOf(I, Port))
          collectReads(*In, Sigs, Reads[Index]);
      for (const char *Port : {"O", "CO"})
        if (Status S = AddWrite(Index, connOf(I, Port)); !S)
          return fail<std::vector<size_t>>(S.error());
    } else if (I.ModuleName == "FDRE") {
      if (Status S = AddWrite(Index, connOf(I, "Q")); !S)
        return fail<std::vector<size_t>>(S.error());
    } else if (I.ModuleName == "DSP48E2") {
      if (!paramOf(I, "PREG", 0)) {
        Result<DspConfig> Cfg = dspConfigOf(I);
        if (!Cfg)
          return fail<std::vector<size_t>>(Cfg.error());
        collectReads(*Cfg.value().A, Sigs, Reads[Index]);
        collectReads(*Cfg.value().B, Sigs, Reads[Index]);
        if (Cfg.value().Z)
          collectReads(*Cfg.value().Z, Sigs, Reads[Index]);
      }
      for (const char *Port : {"P", "PCOUT"})
        if (Status S = AddWrite(Index, connOf(I, Port)); !S)
          return fail<std::vector<size_t>>(S.error());
    } else {
      return fail<std::vector<size_t>>("unknown primitive '" + I.ModuleName +
                                       "'");
    }
  }

  std::vector<std::set<size_t>> Preds(Items.size());
  for (size_t Index = 0; Index < Items.size(); ++Index)
    for (uint32_t Sig : Reads[Index])
      if (auto It = WritersOf.find(Sig); It != WritersOf.end())
        for (size_t Writer : It->second)
          if (Writer != Index)
            Preds[Index].insert(Writer);

  std::vector<std::vector<size_t>> Succs(Items.size());
  std::vector<size_t> Indegree(Items.size(), 0);
  for (size_t Index = 0; Index < Items.size(); ++Index) {
    Indegree[Index] = Preds[Index].size();
    for (size_t Writer : Preds[Index])
      Succs[Writer].push_back(Index);
  }

  std::priority_queue<size_t, std::vector<size_t>, std::greater<size_t>>
      Ready;
  for (size_t Index = 0; Index < Items.size(); ++Index)
    if (Emits[Index] && Indegree[Index] == 0)
      Ready.push(Index);
  std::vector<size_t> Order;
  size_t Remaining = 0;
  for (size_t Index = 0; Index < Items.size(); ++Index)
    Remaining += Emits[Index];
  while (!Ready.empty()) {
    size_t Index = Ready.top();
    Ready.pop();
    Order.push_back(Index);
    for (size_t Succ : Succs[Index])
      if (--Indegree[Succ] == 0 && Emits[Succ])
        Ready.push(Succ);
  }
  if (Order.size() != Remaining)
    return fail<std::vector<size_t>>(
        "netlist did not settle (combinational loop?)");
  return Order;
}

Status NetlistLowering::emitEvalItem(size_t Index) {
  const Item &I = M.items()[Index];
  attribute(I);
  if (I.ItemKind == Item::Kind::Assign) {
    Result<std::vector<Piece>> V = flatten(I.Rhs, Sigs);
    if (!V)
      return Status::failure(V.error());
    Result<LTarget> T =
        targetOf(I.Lhs, static_cast<unsigned>(totalLen(V.value())));
    if (!T)
      return Status::failure(T.error());
    copyTo(V.value(), T.value());
    return Status::success();
  }
  if (I.ModuleName.rfind("LUT", 0) == 0) {
    unsigned K = static_cast<unsigned>(I.ModuleName[3] - '0');
    uint64_t Init = paramOf(I, "INIT", 0);
    // The LUT output is bit (INIT >> minterm): push INIT, assemble the
    // minterm from the input bits, shift dynamically, keep one bit.
    E.loadConst(Init);
    bool First = true;
    for (unsigned Pin = 0; Pin < K; ++Pin) {
      const Expr *In = connOf(I, "I" + std::to_string(Pin));
      if (!In)
        return Status::failure("LUT missing input I" + std::to_string(Pin));
      Result<std::vector<Piece>> V = flatten(*In, Sigs);
      if (!V)
        return Status::failure(V.error());
      loadBit(V.value(), 0);
      if (Pin > 0)
        E.op(Op::Shl, {Pin});
      if (!First)
        E.op(Op::OrB);
      First = false;
    }
    if (First)
      E.loadConst(0);
    E.op(Op::ShrV);
    E.op(Op::Mask, {1});
    const Expr *O = connOf(I, "O");
    if (!O)
      return Status::failure("LUT missing output O");
    Result<LTarget> T = targetOf(*O, 1);
    if (!T)
      return Status::failure(T.error());
    auto [Word, Bit] = Sigs.addr(T.value().Sig, T.value().Lo);
    E.storeField(Word, Bit, 1);
    return Status::success();
  }
  if (I.ModuleName == "CARRY8") {
    const Expr *SConn = connOf(I, "S");
    const Expr *DiConn = connOf(I, "DI");
    const Expr *CiConn = connOf(I, "CI");
    const Expr *OConn = connOf(I, "O");
    const Expr *CoConn = connOf(I, "CO");
    if (!SConn || !DiConn || !CiConn || !OConn || !CoConn)
      return Status::failure("CARRY8 input evaluation failed");
    Result<std::vector<Piece>> S = flatten(*SConn, Sigs);
    Result<std::vector<Piece>> Di = flatten(*DiConn, Sigs);
    Result<std::vector<Piece>> Ci = flatten(*CiConn, Sigs);
    if (!S || !Di || !Ci)
      return Status::failure("CARRY8 input evaluation failed");
    Result<LTarget> O = targetOf(*OConn, 8);
    Result<LTarget> Co = targetOf(*CoConn, 8);
    if (!O || !Co)
      return Status::failure(O ? Co.error() : O.error());
    if (!HaveCarryW) {
      CarryW = scratch();
      HaveCarryW = true;
    }
    loadBit(Ci.value(), 0);
    E.storeField(CarryW, 0, 1);
    for (unsigned B = 0; B < 8; ++B) {
      // O[B] = S[B] ^ carry (the carry *into* this bit).
      loadBit(S.value(), B);
      E.loadField(CarryW, 0, 1);
      E.op(Op::XorB);
      auto [OWord, OBit] = Sigs.addr(O.value().Sig, O.value().Lo + B);
      E.storeField(OWord, OBit, 1);
      // carry = S[B] ? carry : DI[B]; CO[B] = carry.
      loadBit(Di.value(), B);
      E.loadField(CarryW, 0, 1);
      loadBit(S.value(), B);
      E.op(Op::Select);
      E.op(Op::Dup);
      E.storeField(CarryW, 0, 1);
      auto [CoWord, CoBit] = Sigs.addr(Co.value().Sig, Co.value().Lo + B);
      E.storeField(CoWord, CoBit, 1);
    }
    return Status::success();
  }
  if (I.ModuleName == "FDRE") {
    const Expr *Q = connOf(I, "Q");
    if (!Q)
      return Status::failure("FDRE instance missing Q connection");
    Result<LTarget> T = targetOf(*Q, 1);
    if (!T)
      return Status::failure(T.error());
    E.loadField(FdreState.at(Index), 0, 1);
    auto [Word, Bit] = Sigs.addr(T.value().Sig, T.value().Lo);
    E.storeField(Word, Bit, 1);
    return Status::success();
  }
  if (I.ModuleName == "DSP48E2") {
    uint32_t From;
    if (paramOf(I, "PREG", 0)) {
      From = DspState.at(Index);
    } else {
      if (Status S = emitDspComb(I); !S)
        return S;
      From = PW;
    }
    return emitDspOutputs(I, From);
  }
  return Status::failure("unknown primitive '" + I.ModuleName + "'");
}

Status NetlistLowering::run() {
  auto WidthOf = [](const verilog::Port &Port) {
    return Port.Width == 0 ? 1u : Port.Width;
  };
  // Declare ports then wires/regs, exactly as the tree-walker's table.
  for (const verilog::Port &Port : M.ports())
    if (Status S = Sigs.declare(Port.Name, Port.Width, NextWord); !S)
      return S;
  for (const Item &I : M.items())
    if (I.ItemKind == Item::Kind::Wire || I.ItemKind == Item::Kind::Reg)
      if (Status S = Sigs.declare(I.Name, I.Width, NextWord); !S)
        return S;

  // Boundary ports (the implicit clock is a table signal but not bound).
  for (const verilog::Port &Port : M.ports()) {
    if (Port.Name == "clock")
      continue;
    unsigned W = WidthOf(Port);
    ir::Type Ty = W == 1    ? ir::Type::makeBool()
                  : W <= 64 ? ir::Type::makeInt(W)
                            : ir::Type::makeInt(1, W);
    uint32_t Index = Sigs.indexOf(Port.Name);
    PortInfo Info{Port.Name, Ty, Sigs.at(Index).Base, /*Packed=*/true};
    (Port.Direction == verilog::Dir::Input ? P.Inputs : P.Outputs)
        .push_back(std::move(Info));
  }

  // The wave signal list: every table signal except the clock, port
  // kinds from the direction.
  std::map<std::string, WaveSignal::Kind> PortKind;
  for (const verilog::Port &Port : M.ports())
    PortKind[Port.Name] = Port.Direction == verilog::Dir::Input
                              ? WaveSignal::Kind::Input
                              : WaveSignal::Kind::Output;
  for (uint32_t Index = 0; Index < Sigs.Table.size(); ++Index) {
    const Signals::Sig &S = Sigs.at(Index);
    if (S.Name == "clock")
      continue;
    WaveSignal::Kind K = WaveSignal::Kind::Internal;
    if (auto It = PortKind.find(S.Name); It != PortKind.end())
      K = It->second;
    P.Signals.push_back(
        {S.Name, S.Width, 64, (S.Width + 63) / 64, S.Base, K});
  }

  // Sequential state words and their edge connections.
  const std::vector<Item> &Items = M.items();
  struct FdreConns {
    const Expr *Ce, *R, *D;
  };
  std::map<size_t, FdreConns> FdreBind;
  std::map<size_t, const Expr *> DspCep;
  for (size_t Index = 0; Index < Items.size(); ++Index) {
    const Item &I = Items[Index];
    if (I.ItemKind != Item::Kind::Instance)
      continue;
    if (I.ModuleName == "FDRE") {
      FdreState[Index] = scratch();
      FdreConns C{connOf(I, "CE"), connOf(I, "R"), connOf(I, "D")};
      if (!C.Ce || !C.R || !C.D)
        return Status::failure("FDRE instance missing CE/R/D connection");
      FdreBind[Index] = C;
    } else if (I.ModuleName == "DSP48E2" && paramOf(I, "PREG", 0)) {
      DspState[Index] = scratch();
      const Expr *Cep = connOf(I, "CEP");
      if (!Cep)
        return Status::failure("DSP48E2 with PREG missing CEP connection");
      DspCep[Index] = Cep;
    }
  }

  Result<std::vector<size_t>> OrderOr = orderItems();
  if (!OrderOr)
    return Status::failure(OrderOr.error());

  // Init: state words take their INIT/PINIT values.
  E.use(P.Init);
  for (const auto &[Index, Word] : FdreState) {
    attribute(Items[Index]);
    E.loadConst(paramOf(Items[Index], "INIT", 0) != 0 ? 1 : 0);
    E.storeField(Word, 0, 1);
  }
  for (const auto &[Index, Word] : DspState) {
    attribute(Items[Index]);
    E.loadConst(paramOf(Items[Index], "PINIT", 0) & maskOf(48));
    E.storeField(Word, 0, 48);
  }
  E.endSeg();

  // Eval: each item exactly once, in topological order.
  E.use(P.Eval);
  for (size_t Index : OrderOr.value())
    if (Status S = emitEvalItem(Index); !S)
      return S;
  E.endSeg();

  // Commit: every next state is computed onto the stack against the
  // settled signals and the *old* state, then all stores happen.
  E.use(P.Commit);
  std::vector<uint32_t> StateStores; // state word per pushed value
  std::vector<unsigned> StateLens;
  std::vector<std::string> StateNames; // attribution per pushed value
  for (const auto &[Index, Word] : FdreState) {
    attribute(Items[Index]);
    const FdreConns &C = FdreBind.at(Index);
    Result<std::vector<Piece>> Ce = flatten(*C.Ce, Sigs);
    Result<std::vector<Piece>> R = flatten(*C.R, Sigs);
    Result<std::vector<Piece>> D = flatten(*C.D, Sigs);
    if (!Ce || !R || !D)
      return Status::failure("FDRE input evaluation failed");
    // inner = CE ? D : Q; next = R ? 0 : inner.
    E.loadField(Word, 0, 1); // if-false: hold
    loadBit(D.value(), 0);   // if-true: capture
    loadBit(Ce.value(), 0);  // condition
    E.op(Op::Select);
    E.loadConst(0);         // if-true: reset
    loadBit(R.value(), 0);  // condition
    E.op(Op::Select);
    StateStores.push_back(Word);
    StateLens.push_back(1);
    StateNames.push_back(itemLabel(Items[Index]));
  }
  for (const auto &[Index, Word] : DspState) {
    attribute(Items[Index]);
    if (Status S = emitDspComb(Items[Index]); !S)
      return S;
    Result<std::vector<Piece>> Cep = flatten(*DspCep.at(Index), Sigs);
    if (!Cep)
      return Status::failure(Cep.error());
    E.loadField(Word, 0, 48); // if-false: hold
    E.loadField(PW, 0, 48);   // if-true: capture the combinational P
    loadBit(Cep.value(), 0);  // condition
    E.op(Op::Select);
    StateStores.push_back(Word);
    StateLens.push_back(48);
    StateNames.push_back(itemLabel(Items[Index]));
  }
  for (size_t K = StateStores.size(); K-- > 0;) {
    if (StateNames[K].empty())
      E.clearSource();
    else
      E.setSource(StateNames[K]);
    E.storeField(StateStores[K], 0, StateLens[K]);
  }
  E.endSeg();

  P.NumWords = NextWord;
  return Status::success();
}

} // namespace

Result<Program> reticle::sim::compile(const Module &M,
                                      const obs::Context &Ctx) {
  obs::Span Sp(Ctx, "sim.compile.netlist");
  Sp.arg("module", M.name());
  Program P;
  P.Name = M.name();
  P.Source = "netlist";
  NetlistLowering Lowering(M, P);
  if (Status S = Lowering.run(); !S)
    return fail<Program>(S.error());
  Lowering.countInto(Ctx);
  if (Status S = verify(P); !S)
    return fail<Program>(S.error());
  return P;
}
