//===- sim/CompileIr.cpp - Lowering IR functions to sim programs -----------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a verified `ir::Function` into a `sim::Program` whose execution
/// matches the reference interpreter lane for lane. Each value gets one
/// table word per lane holding the canonical (sign-extended) lane payload
/// `interp::Value` uses, so outputs and waveforms reassemble to exactly
/// the interpreter's values. Constants and register initial values
/// evaluate once into the `Init` segment; the `Eval` segment follows the
/// interpreter's topological order; the `Commit` segment computes every
/// register's next state on the stack before storing any, preserving the
/// simultaneous clock edge.
///
//===----------------------------------------------------------------------===//

#include "sim/Compile.h"

#include "interp/Eval.h"
#include "ir/Verifier.h"
#include "obs/Telemetry.h"
#include "sim/Emitter.h"

using namespace reticle;
using namespace reticle::sim;
using detail::Emitter;
using ir::Instr;
using ir::Type;
using ir::ValueId;

namespace {

/// Where one source flat bit lives: a table word and a bit within it.
struct BitAddr {
  uint32_t Word;
  uint32_t Bit;
};

/// The flattened LSB-first bit addresses of value \p Id, as
/// `Value::toBits` orders them (lane 0's low bit first).
std::vector<BitAddr> flatBits(const ir::DefUse &DU,
                              const std::vector<uint32_t> &BaseOf,
                              ValueId Id) {
  Type Ty = DU.typeOfId(Id);
  std::vector<BitAddr> Out;
  Out.reserve(Ty.totalBits());
  for (unsigned L = 0; L < Ty.lanes(); ++L)
    for (unsigned B = 0; B < Ty.width(); ++B)
      Out.push_back({BaseOf[Id] + L, B});
  return Out;
}

/// Assembles result bits [\p From, \p From + width) of \p Src onto the
/// stack: contiguous runs within one source word load as single fields,
/// shifted into place and OR-combined.
void emitGather(Emitter &E, const std::vector<BitAddr> &Src, size_t From,
                unsigned Width) {
  bool First = true;
  unsigned Pos = 0;
  while (Pos < Width) {
    const BitAddr &A = Src[From + Pos];
    unsigned Len = 1;
    while (Pos + Len < Width &&
           Src[From + Pos + Len].Word == A.Word &&
           Src[From + Pos + Len].Bit == A.Bit + Len)
      ++Len;
    E.loadField(A.Word, A.Bit, Len);
    if (Pos > 0)
      E.op(Op::Shl, {Pos});
    if (!First)
      E.op(Op::OrB);
    First = false;
    Pos += Len;
  }
}

} // namespace

Result<Program> reticle::sim::compile(const ir::Function &Fn,
                                      const obs::Context &Ctx) {
  obs::Span Sp(Ctx, "sim.compile.ir");
  Sp.arg("function", Fn.name());
  if (Status S = ir::verify(Fn, Ctx); !S)
    return fail<Program>(S.error());
  Result<std::vector<size_t>> OrderOr = ir::topoOrder(Fn, Ctx);
  if (!OrderOr)
    return fail<Program>(OrderOr.error());
  const std::vector<size_t> &PureOrder = OrderOr.value();
  const ir::DefUse &DU = Fn.defUse(Ctx);
  const std::vector<Instr> &Body = Fn.body();

  Program P;
  P.Name = Fn.name();
  P.Source = "ir";

  // Layout: one word per lane, in ValueId order; the wave signal list is
  // exactly the interpreter's (every value, kinds from def-use facts).
  std::vector<uint32_t> BaseOf(DU.numValues());
  uint32_t Next = 0;
  for (ValueId Id = 0; Id < DU.numValues(); ++Id) {
    Type Ty = DU.typeOfId(Id);
    BaseOf[Id] = Next;
    Next += Ty.lanes();
    WaveSignal::Kind K = DU.isInputId(Id)
                             ? WaveSignal::Kind::Input
                             : (DU.isLiveOut(Id) ? WaveSignal::Kind::Output
                                                 : WaveSignal::Kind::Internal);
    P.Signals.push_back(
        {DU.nameOf(Id), Ty.totalBits(), Ty.width(), Ty.lanes(), BaseOf[Id], K});
  }
  P.NumWords = Next;

  for (const ir::Port &Port : Fn.inputs())
    P.Inputs.push_back({Port.Name, Port.Ty, BaseOf[DU.idOf(Port.Name)],
                        /*Packed=*/false});
  for (const ir::Port &Port : Fn.outputs()) {
    ValueId Id = DU.idOf(Port.Name);
    // Report the defining value's type, as the interpreter snapshots
    // Env[id] directly.
    P.Outputs.push_back({Port.Name, DU.typeOfId(Id), BaseOf[Id],
                         /*Packed=*/false});
  }

  Emitter E(P);

  // Init: register initial values and constants, evaluated once.
  E.use(P.Init);
  auto StoreValue = [&](ValueId Id, const interp::Value &V) {
    for (unsigned L = 0; L < V.type().lanes(); ++L) {
      E.loadConst(static_cast<uint64_t>(V.lane(L)));
      E.storeWord(BaseOf[Id] + L);
    }
  };
  for (size_t Index = 0; Index < Body.size(); ++Index) {
    const Instr &I = Body[Index];
    if (I.isReg()) {
      E.setSource(I.dst());
      StoreValue(DU.dstIdOf(Index), interp::regInitValue(I));
    } else if (I.isWire() && I.wireOp() == ir::WireOp::Const) {
      Result<interp::Value> V = interp::evalPure(I, {});
      if (!V)
        return fail<Program>(V.error());
      E.setSource(I.dst());
      StoreValue(DU.dstIdOf(Index), V.value());
    }
  }
  E.endSeg();

  // Eval: pure instructions in the interpreter's topological order.
  E.use(P.Eval);
  for (size_t Index : PureOrder) {
    const Instr &I = Body[Index];
    E.setSource(I.dst());
    ValueId Dst = DU.dstIdOf(Index);
    Type Ty = I.type();
    unsigned W = Ty.width();
    const std::vector<ValueId> &Args = DU.argIdsOf(Index);
    auto ArgBase = [&](size_t K) { return BaseOf[Args[K]]; };

    auto Binary = [&](Op O, bool NeedsCanon) {
      for (unsigned L = 0; L < Ty.lanes(); ++L) {
        E.loadWord(ArgBase(0) + L);
        E.loadWord(ArgBase(1) + L);
        E.op(O);
        if (NeedsCanon || Ty.isBool())
          E.canonTo(Ty);
        E.storeWord(BaseOf[Dst] + L);
      }
    };
    auto Compare = [&](Op O) {
      // Comparisons read lane 0 (Value::scalar) and produce a bool.
      E.loadWord(ArgBase(0));
      E.loadWord(ArgBase(1));
      E.op(O);
      E.storeWord(BaseOf[Dst]);
    };
    auto Shift = [&](bool MaskFirst, Op O, bool NeedsCanon) -> Status {
      int64_t Amount = I.attrs()[0];
      if (Amount < 0 || Amount >= 64)
        return Status::failure("shift amount out of range in '" + I.dst() +
                               "'");
      for (unsigned L = 0; L < Ty.lanes(); ++L) {
        E.loadWord(ArgBase(0) + L);
        if (MaskFirst)
          E.op(Op::Mask, {W});
        E.op(O, {static_cast<uint32_t>(Amount)});
        if (NeedsCanon || Ty.isBool())
          E.canonTo(Ty);
        E.storeWord(BaseOf[Dst] + L);
      }
      return Status::success();
    };
    auto Gather = [&](const std::vector<BitAddr> &Src, size_t Offset) {
      for (unsigned L = 0; L < Ty.lanes(); ++L) {
        emitGather(E, Src, Offset + size_t(L) * W, W);
        E.canonTo(Ty);
        E.storeWord(BaseOf[Dst] + L);
      }
    };

    if (I.isWire()) {
      switch (I.wireOp()) {
      case ir::WireOp::Const:
        break; // evaluated once in Init
      case ir::WireOp::Id:
        for (unsigned L = 0; L < Ty.lanes(); ++L) {
          E.loadWord(ArgBase(0) + L);
          E.storeWord(BaseOf[Dst] + L);
        }
        break;
      case ir::WireOp::Sll:
        if (Status S = Shift(/*MaskFirst=*/true, Op::Shl, true); !S)
          return fail<Program>(S.error());
        break;
      case ir::WireOp::Srl:
        if (Status S = Shift(/*MaskFirst=*/true, Op::Shr, true); !S)
          return fail<Program>(S.error());
        break;
      case ir::WireOp::Sra:
        // Lanes are sign-extended, so the native arithmetic shift stays
        // canonical; bool lanes renormalize.
        if (Status S = Shift(/*MaskFirst=*/false, Op::Sar, false); !S)
          return fail<Program>(S.error());
        break;
      case ir::WireOp::Slice:
        Gather(flatBits(DU, BaseOf, Args[0]),
               static_cast<size_t>(I.attrs()[0]));
        break;
      case ir::WireOp::Cat: {
        std::vector<BitAddr> Src = flatBits(DU, BaseOf, Args[0]);
        std::vector<BitAddr> High = flatBits(DU, BaseOf, Args[1]);
        Src.insert(Src.end(), High.begin(), High.end());
        Gather(Src, 0);
        break;
      }
      }
      continue;
    }
    switch (I.compOp()) {
    case ir::CompOp::Add:
      Binary(Op::Add, true);
      break;
    case ir::CompOp::Sub:
      Binary(Op::Sub, true);
      break;
    case ir::CompOp::Mul:
      Binary(Op::Mul, true);
      break;
    case ir::CompOp::Not:
      // ~canonical is canonical for integer lanes; bool renormalizes.
      for (unsigned L = 0; L < Ty.lanes(); ++L) {
        E.loadWord(ArgBase(0) + L);
        E.op(Op::NotB);
        if (Ty.isBool())
          E.op(Op::Bool);
        E.storeWord(BaseOf[Dst] + L);
      }
      break;
    case ir::CompOp::And:
      Binary(Op::AndB, false);
      break;
    case ir::CompOp::Or:
      Binary(Op::OrB, false);
      break;
    case ir::CompOp::Xor:
      Binary(Op::XorB, false);
      break;
    case ir::CompOp::Eq:
      Compare(Op::CmpEq);
      break;
    case ir::CompOp::Neq:
      Compare(Op::CmpNe);
      break;
    case ir::CompOp::Lt:
      Compare(Op::CmpLt);
      break;
    case ir::CompOp::Gt:
      Compare(Op::CmpGt);
      break;
    case ir::CompOp::Le:
      Compare(Op::CmpLe);
      break;
    case ir::CompOp::Ge:
      Compare(Op::CmpGe);
      break;
    case ir::CompOp::Mux:
      for (unsigned L = 0; L < Ty.lanes(); ++L) {
        E.loadWord(ArgBase(2) + L); // if-false
        E.loadWord(ArgBase(1) + L); // if-true
        E.loadWord(ArgBase(0));     // condition (scalar bool)
        E.op(Op::Select);
        E.storeWord(BaseOf[Dst] + L);
      }
      break;
    case ir::CompOp::Reg:
      break; // handled by Init/Commit
    }
  }
  E.endSeg();

  // Commit: every register's next state is computed onto the stack, then
  // all stores happen — the simultaneous clock edge.
  E.use(P.Commit);
  struct RegStore {
    uint32_t Word;
    unsigned Lanes;
    std::string Name;
  };
  std::vector<RegStore> Stores; // per reg, in body order
  for (size_t Index = 0; Index < Body.size(); ++Index) {
    const Instr &I = Body[Index];
    if (!I.isReg())
      continue;
    E.setSource(I.dst());
    ValueId Dst = DU.dstIdOf(Index);
    const std::vector<ValueId> &Args = DU.argIdsOf(Index);
    for (unsigned L = 0; L < I.type().lanes(); ++L) {
      E.loadWord(BaseOf[Dst] + L);     // if-false: hold current state
      E.loadWord(BaseOf[Args[0]] + L); // if-true: capture data
      E.loadWord(BaseOf[Args[1]]);     // condition: enable
      E.op(Op::Select);
    }
    Stores.push_back({BaseOf[Dst], I.type().lanes(), I.dst()});
  }
  for (size_t R = Stores.size(); R-- > 0;) {
    E.setSource(Stores[R].Name);
    for (unsigned L = Stores[R].Lanes; L-- > 0;)
      E.storeWord(Stores[R].Word + L);
  }
  E.endSeg();

  E.countInto(Ctx);
  if (Status S = verify(P); !S)
    return fail<Program>(S.error());
  return P;
}
