//===- sim/Program.cpp - Program verification, disassembly, assembly --------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "sim/Program.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

using namespace reticle;
using namespace reticle::sim;

namespace {

struct OpDesc {
  const char *Name;
  uint8_t Operands;
  uint8_t Pops;
  uint8_t Pushes;
};

constexpr std::array<OpDesc, NumOps> OpTable = {{
    {"endseg", 0, 0, 0},     // EndSeg
    {"loadconst", 1, 0, 1},  // LoadConst
    {"loadfield", 3, 0, 1},  // LoadField
    {"storefield", 3, 1, 0}, // StoreField
    {"dup", 0, 1, 2},        // Dup
    {"canon", 1, 1, 1},      // Canon
    {"bool", 0, 1, 1},       // Bool
    {"mask", 1, 1, 1},       // Mask
    {"add", 0, 2, 1},        // Add
    {"sub", 0, 2, 1},        // Sub
    {"mul", 0, 2, 1},        // Mul
    {"notb", 0, 1, 1},       // NotB
    {"andb", 0, 2, 1},       // AndB
    {"orb", 0, 2, 1},        // OrB
    {"xorb", 0, 2, 1},       // XorB
    {"shl", 1, 1, 1},        // Shl
    {"shr", 1, 1, 1},        // Shr
    {"sar", 1, 1, 1},        // Sar
    {"shrv", 0, 2, 1},       // ShrV
    {"cmpeq", 0, 2, 1},      // CmpEq
    {"cmpne", 0, 2, 1},      // CmpNe
    {"cmplt", 0, 2, 1},      // CmpLt
    {"cmpgt", 0, 2, 1},      // CmpGt
    {"cmple", 0, 2, 1},      // CmpLe
    {"cmpge", 0, 2, 1},      // CmpGe
    {"select", 0, 3, 1},     // Select
}};

const char *SegNames[3] = {"init", "eval", "commit"};

void encodeU32(std::string &Out, uint32_t V) {
  for (unsigned I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void encodeU64(std::string &Out, uint64_t V) {
  for (unsigned I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void encodeStr(std::string &Out, const std::string &S) {
  encodeU32(Out, static_cast<uint32_t>(S.size()));
  Out += S;
}

void encodeType(std::string &Out, ir::Type Ty) {
  Out.push_back(Ty.isBool() ? 'b' : 'i');
  encodeU32(Out, Ty.width());
  encodeU32(Out, Ty.lanes());
}

const char *kindName(WaveSignal::Kind K) {
  switch (K) {
  case WaveSignal::Kind::Input:
    return "input";
  case WaveSignal::Kind::Output:
    return "output";
  case WaveSignal::Kind::Internal:
    return "internal";
  }
  return "internal";
}

/// Checks one segment's stack discipline and operand bounds.
Status verifySegment(const Program &P, const std::vector<uint32_t> &Code,
                     const char *Seg) {
  auto Fail = [&](size_t Pc, const std::string &Msg) {
    return Status::failure("sim program '" + P.Name + "': segment " + Seg +
                           " at word " + std::to_string(Pc) + ": " + Msg);
  };
  size_t Depth = 0;
  size_t Pc = 0;
  bool Terminated = false;
  while (Pc < Code.size()) {
    uint32_t Raw = Code[Pc];
    if (Raw >= NumOps)
      return Fail(Pc, "invalid opcode " + std::to_string(Raw));
    Op O = static_cast<Op>(Raw);
    const OpDesc &D = OpTable[Raw];
    if (Pc + 1 + D.Operands > Code.size())
      return Fail(Pc, std::string("truncated operands for '") + D.Name + "'");
    const uint32_t *A = Code.data() + Pc + 1;
    switch (O) {
    case Op::EndSeg:
      if (Depth != 0)
        return Fail(Pc, "segment ends with " + std::to_string(Depth) +
                            " value(s) on the stack");
      if (Pc + 1 != Code.size())
        return Fail(Pc, "code after segment terminator");
      Terminated = true;
      break;
    case Op::LoadConst:
      if (A[0] >= P.Pool.size())
        return Fail(Pc, "constant pool index " + std::to_string(A[0]) +
                            " out of bounds (pool size " +
                            std::to_string(P.Pool.size()) + ")");
      break;
    case Op::LoadField:
    case Op::StoreField:
      if (A[0] >= P.NumWords)
        return Fail(Pc, "word index " + std::to_string(A[0]) +
                            " out of bounds (table size " +
                            std::to_string(P.NumWords) + ")");
      if (A[2] < 1 || A[2] > 64 || A[1] >= 64 || A[1] + A[2] > 64)
        return Fail(Pc, "field [" + std::to_string(A[1]) + ", " +
                            std::to_string(A[1] + A[2]) +
                            ") outside a 64-bit word");
      break;
    case Op::Canon:
    case Op::Mask:
      if (A[0] < 1 || A[0] > 64)
        return Fail(Pc, "width " + std::to_string(A[0]) + " out of range");
      break;
    case Op::Shl:
    case Op::Shr:
    case Op::Sar:
      if (A[0] >= 64)
        return Fail(Pc, "shift amount " + std::to_string(A[0]) +
                            " out of range");
      break;
    default:
      break;
    }
    if (Depth < D.Pops)
      return Fail(Pc, std::string("stack underflow in '") + D.Name +
                          "' (depth " + std::to_string(Depth) + ", pops " +
                          std::to_string(D.Pops) + ")");
    Depth = Depth - D.Pops + D.Pushes;
    if (Depth > P.MaxStack)
      return Fail(Pc, "stack depth " + std::to_string(Depth) +
                          " exceeds declared maximum " +
                          std::to_string(P.MaxStack));
    Pc += 1 + D.Operands;
  }
  if (!Terminated)
    return Status::failure("sim program '" + P.Name + "': segment " +
                           std::string(Seg) + " is not endseg-terminated");
  return Status::success();
}

Status verifyPorts(const Program &P, const std::vector<PortInfo> &Ports,
                   const char *What) {
  for (const PortInfo &Port : Ports) {
    unsigned Words = Port.Packed ? (Port.Ty.totalBits() + 63) / 64
                                 : Port.Ty.lanes();
    if (Port.Base + Words > P.NumWords)
      return Status::failure("sim program '" + P.Name + "': " + What +
                             " port '" + Port.Name +
                             "' extends past the word table");
  }
  return Status::success();
}

} // namespace

const char *reticle::sim::opName(Op O) {
  return OpTable[uint32_t(O)].Name;
}

unsigned reticle::sim::opOperands(Op O) {
  return OpTable[uint32_t(O)].Operands;
}

unsigned reticle::sim::opPops(Op O) { return OpTable[uint32_t(O)].Pops; }

unsigned reticle::sim::opPushes(Op O) { return OpTable[uint32_t(O)].Pushes; }

const char *Program::sourceAt(unsigned SegIx, uint32_t Offset) const {
  const std::vector<SourceMark> &Marks = marks(SegIx);
  // The covering mark is the last one at or before Offset.
  const SourceMark *Found = nullptr;
  for (const SourceMark &M : Marks) {
    if (M.Offset > Offset)
      break;
    Found = &M;
  }
  if (!Found || Found->Name == SourceMark::NoSource ||
      Found->Name >= SourceNames.size())
    return nullptr;
  return SourceNames[Found->Name].c_str();
}

std::string Program::encode() const {
  std::string Out;
  Out += "RSIM1";
  encodeStr(Out, Name);
  encodeStr(Out, Source);
  encodeU32(Out, NumWords);
  encodeU32(Out, MaxStack);
  encodeU32(Out, static_cast<uint32_t>(Pool.size()));
  for (uint64_t C : Pool)
    encodeU64(Out, C);
  for (const std::vector<uint32_t> *Seg : {&Init, &Eval, &Commit}) {
    encodeU32(Out, static_cast<uint32_t>(Seg->size()));
    for (uint32_t W : *Seg)
      encodeU32(Out, W);
  }
  encodeU32(Out, static_cast<uint32_t>(Signals.size()));
  for (const SignalInfo &S : Signals) {
    encodeStr(Out, S.Name);
    encodeU32(Out, S.Width);
    encodeU32(Out, S.LaneWidth);
    encodeU32(Out, S.Lanes);
    encodeU32(Out, S.Base);
    Out.push_back(static_cast<char>(S.Kind));
  }
  for (const std::vector<PortInfo> *Ports : {&Inputs, &Outputs}) {
    encodeU32(Out, static_cast<uint32_t>(Ports->size()));
    for (const PortInfo &Port : *Ports) {
      encodeStr(Out, Port.Name);
      encodeType(Out, Port.Ty);
      encodeU32(Out, Port.Base);
      Out.push_back(Port.Packed ? 1 : 0);
    }
  }
  encodeU32(Out, static_cast<uint32_t>(SourceNames.size()));
  for (const std::string &S : SourceNames)
    encodeStr(Out, S);
  for (const std::vector<SourceMark> *Marks : {&InitSrc, &EvalSrc, &CommitSrc}) {
    encodeU32(Out, static_cast<uint32_t>(Marks->size()));
    for (const SourceMark &M : *Marks) {
      encodeU32(Out, M.Offset);
      encodeU32(Out, M.Name);
    }
  }
  return Out;
}

Status reticle::sim::verify(const Program &P) {
  if (P.Source != "ir" && P.Source != "netlist")
    return Status::failure("sim program '" + P.Name + "': unknown source '" +
                           P.Source + "'");
  const std::vector<uint32_t> *Segs[3] = {&P.Init, &P.Eval, &P.Commit};
  for (unsigned I = 0; I < 3; ++I)
    if (Status S = verifySegment(P, *Segs[I], SegNames[I]); !S)
      return S;
  for (const SignalInfo &S : P.Signals) {
    if (S.Lanes == 0 || S.LaneWidth == 0 || S.LaneWidth > 64 ||
        S.Width == 0 || S.Width > S.LaneWidth * S.Lanes)
      return Status::failure("sim program '" + P.Name + "': signal '" +
                             S.Name + "' has inconsistent geometry");
    if (S.Base + S.Lanes > P.NumWords)
      return Status::failure("sim program '" + P.Name + "': signal '" +
                             S.Name + "' extends past the word table");
  }
  if (Status S = verifyPorts(P, P.Inputs, "input"); !S)
    return S;
  if (Status S = verifyPorts(P, P.Outputs, "output"); !S)
    return S;
  // Debug-info side table: marks must stay offset-sorted within their
  // segment and reference interned names (or the explicit no-source
  // sentinel), so profile attribution never walks garbage.
  for (unsigned SegIx = 0; SegIx < 3; ++SegIx) {
    const std::vector<SourceMark> &Marks = P.marks(SegIx);
    for (size_t I = 0; I < Marks.size(); ++I) {
      if (I && Marks[I].Offset <= Marks[I - 1].Offset)
        return Status::failure("sim program '" + P.Name + "': segment " +
                               SegNames[SegIx] +
                               " has out-of-order source marks");
      if (Marks[I].Name != SourceMark::NoSource &&
          Marks[I].Name >= P.SourceNames.size())
        return Status::failure("sim program '" + P.Name + "': segment " +
                               SegNames[SegIx] +
                               " source mark references unknown name index " +
                               std::to_string(Marks[I].Name));
    }
  }
  return Status::success();
}

std::string reticle::sim::disassemble(const Program &P) {
  std::ostringstream Out;
  Out << "reticle-sim-program-v1\n";
  Out << "program name=" << P.Name << " source=" << P.Source
      << " words=" << P.NumWords << " stack=" << P.MaxStack << "\n";
  for (size_t I = 0; I < P.Pool.size(); ++I) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "0x%llx",
                  static_cast<unsigned long long>(P.Pool[I]));
    Out << "const " << I << " " << Buf << "\n";
  }
  for (const SignalInfo &S : P.Signals)
    Out << "signal name=" << S.Name << " kind=" << kindName(S.Kind)
        << " width=" << S.Width << " lanewidth=" << S.LaneWidth
        << " lanes=" << S.Lanes << " base=" << S.Base << "\n";
  auto Port = [&](const char *What, const PortInfo &I) {
    Out << What << " name=" << I.Name << " type=" << I.Ty.str()
        << " base=" << I.Base << " packed=" << (I.Packed ? 1 : 0) << "\n";
  };
  for (const PortInfo &I : P.Inputs)
    Port("input", I);
  for (const PortInfo &I : P.Outputs)
    Port("output", I);
  const std::vector<uint32_t> *Segs[3] = {&P.Init, &P.Eval, &P.Commit};
  for (unsigned SegIx = 0; SegIx < 3; ++SegIx) {
    Out << "segment " << SegNames[SegIx] << "\n";
    const std::vector<uint32_t> &Code = *Segs[SegIx];
    const std::vector<SourceMark> &Marks = P.marks(SegIx);
    size_t MarkIx = 0;
    size_t Pc = 0;
    while (Pc < Code.size()) {
      // Debug-info marks print ahead of the instruction they cover;
      // marks off an instruction boundary (malformed input) are dropped.
      for (; MarkIx < Marks.size() && Marks[MarkIx].Offset <= Pc; ++MarkIx)
        if (Marks[MarkIx].Offset == Pc) {
          uint32_t Name = Marks[MarkIx].Name;
          Out << "  src "
              << (Name < P.SourceNames.size() ? P.SourceNames[Name].c_str()
                                              : "-")
              << "\n";
        }
      uint32_t Raw = Code[Pc];
      if (Raw >= NumOps) {
        // Malformed programs still disassemble (for debugging); the raw
        // word is shown and decoding resumes at the next word.
        Out << "  .word " << Raw << "\n";
        ++Pc;
        continue;
      }
      const OpDesc &D = OpTable[Raw];
      Out << "  " << D.Name;
      for (unsigned A = 0; A < D.Operands && Pc + 1 + A < Code.size(); ++A)
        Out << " " << Code[Pc + 1 + A];
      Out << "\n";
      Pc += 1 + D.Operands;
    }
  }
  Out << "end\n";
  return Out.str();
}

Result<Program> reticle::sim::assemble(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  size_t LineNo = 0;
  auto Fail = [&](const std::string &Msg) {
    return fail<Program>("sim program text line " + std::to_string(LineNo) +
                         ": " + Msg);
  };
  auto NextLine = [&](std::string &Out) {
    while (std::getline(In, Out)) {
      ++LineNo;
      // Trim leading whitespace; skip blank lines.
      size_t Start = Out.find_first_not_of(" \t");
      if (Start == std::string::npos)
        continue;
      Out = Out.substr(Start);
      return true;
    }
    return false;
  };
  auto KeyValue = [](const std::string &Tok, const std::string &Key,
                     std::string &Val) {
    if (Tok.rfind(Key + "=", 0) != 0)
      return false;
    Val = Tok.substr(Key.size() + 1);
    return true;
  };

  if (!NextLine(Line) || Line != "reticle-sim-program-v1")
    return Fail("missing reticle-sim-program-v1 header");

  Program P;
  bool SawProgram = false;
  int SegIx = -1;
  std::vector<uint32_t> *Segs[3] = {&P.Init, &P.Eval, &P.Commit};
  std::vector<SourceMark> *MarkSegs[3] = {&P.InitSrc, &P.EvalSrc,
                                          &P.CommitSrc};
  // Re-interns src names in first-appearance order, which matches the
  // emitters' first-mark interning order, so a disassemble/assemble
  // round-trip reproduces encode() byte for byte.
  std::map<std::string, uint32_t> SrcIndex;
  while (NextLine(Line)) {
    std::istringstream Toks(Line);
    std::string Head;
    Toks >> Head;
    if (Head == "end")
      break;
    if (Head == "program") {
      SawProgram = true;
      std::string Tok, Val;
      while (Toks >> Tok) {
        if (KeyValue(Tok, "name", Val))
          P.Name = Val;
        else if (KeyValue(Tok, "source", Val))
          P.Source = Val;
        else if (KeyValue(Tok, "words", Val))
          P.NumWords = static_cast<uint32_t>(std::stoul(Val));
        else if (KeyValue(Tok, "stack", Val))
          P.MaxStack = static_cast<uint32_t>(std::stoul(Val));
        else
          return Fail("unknown program field '" + Tok + "'");
      }
      continue;
    }
    if (Head == "const") {
      size_t Index;
      std::string Val;
      if (!(Toks >> Index >> Val))
        return Fail("malformed const line");
      if (Index != P.Pool.size())
        return Fail("const index out of order");
      P.Pool.push_back(std::stoull(Val, nullptr, 0));
      continue;
    }
    if (Head == "signal") {
      SignalInfo S;
      std::string Tok, Val;
      while (Toks >> Tok) {
        if (KeyValue(Tok, "name", Val))
          S.Name = Val;
        else if (KeyValue(Tok, "kind", Val)) {
          if (Val == "input")
            S.Kind = WaveSignal::Kind::Input;
          else if (Val == "output")
            S.Kind = WaveSignal::Kind::Output;
          else if (Val == "internal")
            S.Kind = WaveSignal::Kind::Internal;
          else
            return Fail("unknown signal kind '" + Val + "'");
        } else if (KeyValue(Tok, "width", Val))
          S.Width = static_cast<unsigned>(std::stoul(Val));
        else if (KeyValue(Tok, "lanewidth", Val))
          S.LaneWidth = static_cast<unsigned>(std::stoul(Val));
        else if (KeyValue(Tok, "lanes", Val))
          S.Lanes = static_cast<unsigned>(std::stoul(Val));
        else if (KeyValue(Tok, "base", Val))
          S.Base = static_cast<uint32_t>(std::stoul(Val));
        else
          return Fail("unknown signal field '" + Tok + "'");
      }
      P.Signals.push_back(std::move(S));
      continue;
    }
    if (Head == "input" || Head == "output") {
      PortInfo I;
      std::string Tok, Val;
      while (Toks >> Tok) {
        if (KeyValue(Tok, "name", Val))
          I.Name = Val;
        else if (KeyValue(Tok, "type", Val)) {
          Result<ir::Type> Ty = ir::Type::parse(Val);
          if (!Ty)
            return Fail(Ty.error());
          I.Ty = Ty.value();
        } else if (KeyValue(Tok, "base", Val))
          I.Base = static_cast<uint32_t>(std::stoul(Val));
        else if (KeyValue(Tok, "packed", Val))
          I.Packed = Val != "0";
        else
          return Fail("unknown port field '" + Tok + "'");
      }
      (Head == "input" ? P.Inputs : P.Outputs).push_back(std::move(I));
      continue;
    }
    if (Head == "segment") {
      std::string Name;
      if (!(Toks >> Name))
        return Fail("segment without a name");
      SegIx = -1;
      for (int I = 0; I < 3; ++I)
        if (Name == SegNames[I])
          SegIx = I;
      if (SegIx < 0)
        return Fail("unknown segment '" + Name + "'");
      continue;
    }
    if (Head == "src") {
      if (SegIx < 0)
        return Fail("src mark outside a segment");
      std::string Name;
      if (!(Toks >> Name))
        return Fail("src mark without a name");
      std::string Extra;
      if (Toks >> Extra)
        return Fail("trailing token '" + Extra + "' after src mark");
      uint32_t Idx = SourceMark::NoSource;
      if (Name != "-") {
        auto [It, Inserted] = SrcIndex.try_emplace(
            Name, static_cast<uint32_t>(P.SourceNames.size()));
        if (Inserted)
          P.SourceNames.push_back(Name);
        Idx = It->second;
      }
      MarkSegs[SegIx]->push_back(
          {static_cast<uint32_t>(Segs[SegIx]->size()), Idx});
      continue;
    }
    // Anything else must be an instruction inside a segment.
    if (SegIx < 0)
      return Fail("instruction '" + Head + "' outside a segment");
    int Found = -1;
    for (uint32_t I = 0; I < NumOps; ++I)
      if (Head == OpTable[I].Name)
        Found = static_cast<int>(I);
    if (Found < 0)
      return Fail("unknown instruction '" + Head + "'");
    Segs[SegIx]->push_back(static_cast<uint32_t>(Found));
    for (unsigned A = 0; A < OpTable[Found].Operands; ++A) {
      unsigned long Operand;
      if (!(Toks >> Operand))
        return Fail("instruction '" + Head + "' missing operand " +
                    std::to_string(A));
      Segs[SegIx]->push_back(static_cast<uint32_t>(Operand));
    }
    std::string Extra;
    if (Toks >> Extra)
      return Fail("trailing token '" + Extra + "' after instruction");
  }
  if (!SawProgram)
    return Fail("missing program header line");
  return P;
}
