//===- sim/Compile.h - Lowering designs to sim programs ---------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two lowering passes of the compiled-simulation layer. Both produce
/// a verified `sim::Program` whose execution is bit-for-bit identical to
/// the corresponding tree-walking engine:
///
///  - `compile(ir::Function)` lowers a verified function off the cached
///    `ir::DefUse` analysis, reusing the same register-aware topological
///    order the reference interpreter evaluates in. One table word per
///    lane, holding the canonical (sign-extended) `interp::Value` lane.
///  - `compile(verilog::Module)` lowers the generated netlist's assigns
///    and primitive instances (LUTk / CARRY8 / FDRE / DSP48E2). Where the
///    tree-walking simulator sweeps to a fixpoint every cycle, the
///    lowering topologically orders the items *once* at compile time
///    (signal writer -> reader edges; sequential outputs are sources), so
///    the VM evaluates each item exactly once per cycle. Signals store
///    flattened bits packed 64 per word.
///
/// Neither pass retains a reference to its input: the returned program
/// owns all its tables, so it stays valid across later mutations of the
/// function (which invalidate `DefUse`) or the module.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_SIM_COMPILE_H
#define RETICLE_SIM_COMPILE_H

#include "ir/Function.h"
#include "obs/Context.h"
#include "sim/Program.h"
#include "support/Result.h"
#include "verilog/Ast.h"

namespace reticle {
namespace sim {

/// Lowers \p Fn into a simulation program equivalent to
/// `interp::interpret`. Fails when the function is ill-formed (same
/// verifier as the interpreter).
Result<Program> compile(const ir::Function &Fn,
                        const obs::Context &Ctx = obs::defaultContext());

/// Lowers \p M into a simulation program equivalent to
/// `codegen::simulate`. Fails on combinational loops (which the
/// tree-walker only detects at run time as a failure to settle), on
/// unknown primitives, and on expression forms outside the structural
/// subset code generation emits.
Result<Program> compile(const verilog::Module &M,
                        const obs::Context &Ctx = obs::defaultContext());

} // namespace sim
} // namespace reticle

#endif // RETICLE_SIM_COMPILE_H
