//===- isel/Dfg.cpp - Dataflow graph and tree partitioning ---------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "isel/Dfg.h"

#include "ir/Verifier.h"
#include "obs/Telemetry.h"

using namespace reticle;
using namespace reticle::isel;

Result<Dfg> Dfg::build(const ir::Function &Fn, const obs::Context &Ctx) {
  obs::Span Sp(Ctx, "isel.dfg_build");
  if (Status S = ir::verify(Fn, Ctx); !S)
    return fail<Dfg>(S.error());

  // Verification warmed the function's def-use cache; node ids below
  // coincide with its ValueIds (inputs first, then body destinations).
  Dfg G;
  G.Fn = &Fn;
  G.DU = Fn.defUseShared(Ctx);
  const ir::DefUse &DU = *G.DU;
  G.Nodes.reserve(DU.numValues());
  for (const ir::Port &P : Fn.inputs()) {
    DfgNode N;
    N.NodeKind = DfgNode::Kind::Input;
    N.Name = P.Name;
    G.Nodes.push_back(std::move(N));
  }
  for (size_t I = 0; I < Fn.body().size(); ++I) {
    DfgNode N;
    N.NodeKind = DfgNode::Kind::Instr;
    N.BodyIndex = I;
    N.Name = Fn.body()[I].dst();
    G.Nodes.push_back(std::move(N));
  }
  for (size_t Id = 0; Id < G.Nodes.size(); ++Id) {
    if (G.Nodes[Id].NodeKind != DfgNode::Kind::Instr)
      continue;
    for (ir::ValueId Operand : DU.argIdsOf(G.Nodes[Id].BodyIndex)) {
      G.Nodes[Id].Operands.push_back(Operand);
      G.Nodes[Operand].Users.push_back(Id);
    }
  }

  for (size_t Id = 0; Id < G.Nodes.size(); ++Id) {
    DfgNode &N = G.Nodes[Id];
    if (N.NodeKind != DfgNode::Kind::Instr || !G.isComp(Id))
      continue;
    const ir::Instr &I = G.instrOf(Id);
    bool Root = DU.isLiveOut(static_cast<ir::ValueId>(Id)) || I.isReg() ||
                N.Users.size() != 1 ||
                (N.Users.size() == 1 && G.isWire(N.Users[0]));
    N.IsRoot = Root;
    if (Root)
      G.Roots.push_back(Id);
  }
  Sp.arg("nodes", static_cast<uint64_t>(G.Nodes.size()));
  Sp.arg("roots", static_cast<uint64_t>(G.Roots.size()));
  return G;
}
