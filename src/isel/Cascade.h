//===- isel/Cascade.h - DSP cascade layout optimization ---------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layout optimization of Section 5.2: chains of DSP multiply-add
/// instructions whose accumulator input is the previous instruction's
/// result are rewritten to cascade variants (`muladd_co` feeding
/// `muladd_cio`* feeding `muladd_ci`) and constrained to vertically
/// adjacent slots in one DSP column (`(x, y)`, `(x, y+1)`, ...), so code
/// generation can use the dedicated high-speed cascade routing between
/// neighbouring DSPs instead of the general fabric.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_ISEL_CASCADE_H
#define RETICLE_ISEL_CASCADE_H

#include "obs/Context.h"
#include "rasm/Asm.h"
#include "support/Result.h"
#include "tdl/Target.h"

namespace reticle {
namespace isel {

/// Facts about one cascade pass, reported by benchmarks.
struct CascadeStats {
  unsigned Chains = 0;     ///< chains rewritten
  unsigned Rewritten = 0;  ///< instructions converted to cascade variants
};

/// Rewrites cascade-able DSP chains in \p Prog in place.
///
/// Only instructions with fully wildcard locations participate; chains
/// longer than \p MaxChain (bounded by the device's DSP column height) are
/// split. Chains are rewritten only when the target defines the cascade
/// variants for the operation.
Status cascadePass(rasm::AsmProgram &Prog, const tdl::Target &Target,
                   unsigned MaxChain = 64, CascadeStats *Stats = nullptr,
                   const obs::Context &Ctx = obs::defaultContext());

} // namespace isel
} // namespace reticle

#endif // RETICLE_ISEL_CASCADE_H
