//===- isel/Select.cpp - Instruction selection ---------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "isel/Select.h"

#include "isel/Dfg.h"
#include "obs/Context.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

using namespace reticle;
using namespace reticle::isel;

namespace {

/// Lexicographic (area, latency) cost.
struct Cost {
  int64_t Area = 0;
  int64_t Latency = 0;
  bool operator<(const Cost &Other) const {
    if (Area != Other.Area)
      return Area < Other.Area;
    return Latency < Other.Latency;
  }
  Cost operator+(const Cost &Other) const {
    return Cost{Area + Other.Area, Latency + Other.Latency};
  }
};

/// One successful tile match at a DFG node.
struct Match {
  const tdl::TargetDef *Def = nullptr;
  /// DFG node bound to each definition input, in definition port order.
  std::vector<size_t> InputNodes;
  /// Covered compute nodes that are internal to the tree (each needs its
  /// own materialization decision is *not* implied; covered nodes are
  /// consumed by this tile).
  std::vector<size_t> Covered;
  /// Attribute values transferred through `_` holes, in hole order.
  std::vector<int64_t> HoleValues;
};

class Selector {
public:
  Selector(const Dfg &G, const tdl::Target &Target, const obs::Context &Ctx)
      : G(G), Target(Target), Ctx(Ctx), Best(G.nodes().size()) {
    obs::Coverage &Cov = Ctx.coverage();
    for (const tdl::TargetDef &Def : Target.defs()) {
      const ir::Instr *RootPat = patternRoot(Def);
      if (!RootPat || RootPat->isWire())
        continue; // tiles rooted at wire operations are never selected
      // Declare every pattern that could fire — directly here, or via the
      // cascade rewrite — so never-selected patterns show up as
      // zero-count bins in the isel.pattern coverage space.
      Cov.declare("isel.pattern", Def.Name);
      if (Def.isCascadeVariant())
        continue;
      DefsByOp[RootPat->compOp()].push_back(&Def);
    }
  }

  Result<rasm::AsmProgram> run(SelectionStats *Stats);

private:
  /// The body instruction defining the definition's output.
  static const ir::Instr *patternRoot(const tdl::TargetDef &Def) {
    for (const ir::Instr &I : Def.Body)
      if (I.dst() == Def.Output.Name)
        return &I;
    return nullptr;
  }

  /// Attempts to match \p Def with its pattern root at node \p Root.
  bool matchDef(const tdl::TargetDef &Def, size_t Root, Match &Out);

  bool matchInstr(const tdl::TargetDef &Def, const ir::Instr &Pat,
                  size_t PatIndex, size_t NodeId,
                  std::map<std::string, size_t> &Bound,
                  std::map<std::pair<size_t, size_t>, int64_t> &HoleVals,
                  std::vector<size_t> &Covered);

  bool matchOperand(const tdl::TargetDef &Def, const std::string &PatArg,
                    size_t NodeId, std::map<std::string, size_t> &Bound,
                    std::map<std::pair<size_t, size_t>, int64_t> &HoleVals,
                    std::vector<size_t> &Covered);

  /// Minimum-cost cover of the internal compute node \p NodeId; memoized.
  Result<Cost> solve(size_t NodeId);

  /// Emits the chosen tile for \p NodeId and, first, those of its internal
  /// binding nodes.
  void emit(size_t NodeId, rasm::AsmProgram &Prog,
            std::set<size_t> &Emitted);

  const Dfg &G;
  const tdl::Target &Target;
  const obs::Context &Ctx;
  std::map<ir::CompOp, std::vector<const tdl::TargetDef *>> DefsByOp;
  /// Memoized minimum-cost cover per DFG node id (== ValueId).
  std::vector<std::optional<std::pair<Cost, Match>>> Best;
};

bool Selector::matchOperand(
    const tdl::TargetDef &Def, const std::string &PatArg, size_t NodeId,
    std::map<std::string, size_t> &Bound,
    std::map<std::pair<size_t, size_t>, int64_t> &HoleVals,
    std::vector<size_t> &Covered) {
  // A pattern variable (input or temporary) that is already bound must
  // rebind to the same node (non-linear patterns).
  auto It = Bound.find(PatArg);
  if (It != Bound.end())
    return It->second == NodeId;

  // Definition inputs bind freely: any node can feed the tile.
  bool IsInput = false;
  for (const ir::Port &P : Def.Inputs)
    if (P.Name == PatArg) {
      IsInput = true;
      break;
    }
  if (IsInput) {
    Bound[PatArg] = NodeId;
    return true;
  }

  // A temporary: the operand must be an internal (descendable) node whose
  // defining pattern instruction matches recursively.
  if (!G.isDescendable(NodeId))
    return false;
  const ir::Instr *Pat = nullptr;
  size_t PatIndex = 0;
  for (size_t I = 0; I < Def.Body.size(); ++I)
    if (Def.Body[I].dst() == PatArg) {
      Pat = &Def.Body[I];
      PatIndex = I;
      break;
    }
  assert(Pat && "pattern temporary without definition");
  Bound[PatArg] = NodeId;
  return matchInstr(Def, *Pat, PatIndex, NodeId, Bound, HoleVals, Covered);
}

bool Selector::matchInstr(
    const tdl::TargetDef &Def, const ir::Instr &Pat, size_t PatIndex,
    size_t NodeId, std::map<std::string, size_t> &Bound,
    std::map<std::pair<size_t, size_t>, int64_t> &HoleVals,
    std::vector<size_t> &Covered) {
  if (!G.isInstr(NodeId))
    return false;
  const ir::Instr &I = G.instrOf(NodeId);
  if (I.kind() != Pat.kind())
    return false;
  if (Pat.isWire() ? (Pat.wireOp() != I.wireOp())
                   : (Pat.compOp() != I.compOp()))
    return false;
  if (!(I.type() == Pat.type()))
    return false;
  if (I.args().size() != Pat.args().size())
    return false;

  // Resource annotations are hard constraints.
  if (I.isComp() && I.resource() != ir::Resource::Any &&
      I.resource() != Def.Prim)
    return false;

  // Attributes: exact match, except holes, which bind and transfer.
  if (I.attrs().size() != Pat.attrs().size())
    return false;
  const std::vector<bool> *Holes =
      PatIndex < Def.Holes.size() ? &Def.Holes[PatIndex] : nullptr;
  for (size_t K = 0; K < Pat.attrs().size(); ++K) {
    bool IsHole = Holes && K < Holes->size() && (*Holes)[K];
    if (IsHole)
      HoleVals[{PatIndex, K}] = I.attrs()[K];
    else if (I.attrs()[K] != Pat.attrs()[K])
      return false;
  }

  Covered.push_back(NodeId);

  const std::vector<size_t> &Operands = G.node(NodeId).Operands;
  assert(Operands.size() == Pat.args().size() && "operand arity mismatch");

  auto TryOrder = [&](bool Swap) {
    std::map<std::string, size_t> BoundCopy = Bound;
    std::map<std::pair<size_t, size_t>, int64_t> HoleCopy = HoleVals;
    std::vector<size_t> CoveredCopy = Covered;
    bool Ok = true;
    for (size_t K = 0; K < Operands.size(); ++K) {
      size_t OperandIndex = Swap ? (K < 2 ? 1 - K : K) : K;
      if (!matchOperand(Def, Pat.args()[K], Operands[OperandIndex],
                        BoundCopy, HoleCopy, CoveredCopy)) {
        Ok = false;
        break;
      }
    }
    if (Ok) {
      Bound = std::move(BoundCopy);
      HoleVals = std::move(HoleCopy);
      Covered = std::move(CoveredCopy);
    }
    return Ok;
  };

  if (TryOrder(/*Swap=*/false))
    return true;
  if (I.isComp() && ir::isCommutative(I.compOp()) && Operands.size() == 2)
    return TryOrder(/*Swap=*/true);
  return false;
}

bool Selector::matchDef(const tdl::TargetDef &Def, size_t Root, Match &Out) {
  const ir::Instr *Pat = patternRoot(Def);
  size_t PatIndex = 0;
  for (size_t I = 0; I < Def.Body.size(); ++I)
    if (&Def.Body[I] == Pat)
      PatIndex = I;
  std::map<std::string, size_t> Bound;
  std::map<std::pair<size_t, size_t>, int64_t> HoleVals;
  std::vector<size_t> Covered;
  Bound[Def.Output.Name] = Root;
  if (!matchInstr(Def, *Pat, PatIndex, Root, Bound, HoleVals, Covered))
    return false;

  Out.Def = &Def;
  Out.Covered = std::move(Covered);
  Out.InputNodes.clear();
  for (const ir::Port &P : Def.Inputs) {
    auto It = Bound.find(P.Name);
    if (It == Bound.end())
      return false; // input never reached (cannot happen: inputs are used)
    // Port types were already enforced structurally for covered operands,
    // but free bindings still need a type check. Node ids are ValueIds,
    // so the graph's def-use analysis answers directly.
    ir::Type NodeType =
        G.defUse().typeOfId(static_cast<ir::ValueId>(It->second));
    if (!(NodeType == P.Ty))
      return false;
    // A compute node consumed inside the tile cannot simultaneously feed
    // one of its input ports: it would never be materialized. The root is
    // exempt: binding an input to the tile's own result is the legal
    // register self-reference (Figure 12b), and the result name exists.
    if (G.isComp(It->second) && It->second != Root)
      for (size_t C : Out.Covered)
        if (C == It->second)
          return false;
    Out.InputNodes.push_back(It->second);
  }
  // Flatten hole values in (body instruction, attribute) order.
  Out.HoleValues.clear();
  for (size_t I = 0; I < Def.Body.size(); ++I) {
    if (I >= Def.Holes.size())
      continue;
    for (size_t K = 0; K < Def.Holes[I].size(); ++K)
      if (Def.Holes[I][K]) {
        auto It = HoleVals.find({I, K});
        assert(It != HoleVals.end() && "hole not bound during match");
        Out.HoleValues.push_back(It->second);
      }
  }
  return true;
}

Result<Cost> Selector::solve(size_t NodeId) {
  if (Best[NodeId])
    return Best[NodeId]->first;

  const ir::Instr &I = G.instrOf(NodeId);
  assert(I.isComp() && "solving a non-compute node");

  bool Found = false;
  Cost BestCost;
  Match BestMatch;
  unsigned Candidates = 0, Matched = 0;
  auto DefsIt = DefsByOp.find(I.compOp());
  if (DefsIt != DefsByOp.end()) {
    Candidates = static_cast<unsigned>(DefsIt->second.size());
    for (const tdl::TargetDef *Def : DefsIt->second) {
      Match M;
      if (!matchDef(*Def, NodeId, M))
        continue;
      ++Matched;
      Cost Total{Def->Area, Def->Latency};
      bool SubOk = true;
      std::set<size_t> CoveredSet(M.Covered.begin(), M.Covered.end());
      for (size_t Input : M.InputNodes) {
        // Internal compute bindings need their own cover; inputs, roots,
        // and wire nodes are materialized already.
        if (!G.isComp(Input) || G.node(Input).IsRoot ||
            CoveredSet.count(Input))
          continue;
        Result<Cost> Sub = solve(Input);
        if (!Sub) {
          SubOk = false;
          break;
        }
        Total = Total + Sub.value();
      }
      if (!SubOk)
        continue;
      if (!Found || Total < BestCost) {
        Found = true;
        BestCost = Total;
        BestMatch = std::move(M);
      }
    }
  }
  if (!Found) {
    std::string Where = I.str();
    if (I.resource() != ir::Resource::Any)
      return fail<Cost>("no '" + std::string(ir::resourceName(I.resource())) +
                        "' instruction on target '" + Target.name() +
                        "' can implement '" + Where +
                        "'; the resource constraint is unsatisfiable");
    return fail<Cost>("no instruction on target '" + Target.name() +
                      "' can implement '" + Where + "'");
  }
  // Pattern coverage records every win, whether or not remarks are on.
  Ctx.coverage().hit("isel.pattern", BestMatch.Def->Name);
  // Why this tile: the chosen pattern, what it costs, and how contested
  // the decision was (rejected = matched alternatives that lost on cost).
  if (Ctx.remarksEnabled())
    obs::Remark(Ctx, "isel", "pattern")
        .instr(I.dst())
        .message("covered with '" + BestMatch.Def->Name + "' on " +
                 std::string(ir::resourceName(BestMatch.Def->Prim)) + " (" +
                 std::to_string(Matched) + " of " +
                 std::to_string(Candidates) + " candidate tiles matched)")
        .arg("pattern", BestMatch.Def->Name)
        .arg("prim", ir::resourceName(BestMatch.Def->Prim))
        .arg("cost_area", BestCost.Area)
        .arg("cost_latency", BestCost.Latency)
        .arg("candidates", Candidates)
        .arg("matched", Matched)
        .arg("rejected", Matched ? Matched - 1 : 0);
  Best[NodeId].emplace(BestCost, std::move(BestMatch));
  return BestCost;
}

void Selector::emit(size_t NodeId, rasm::AsmProgram &Prog,
                    std::set<size_t> &Emitted) {
  if (Emitted.count(NodeId))
    return;
  Emitted.insert(NodeId);
  const Match &M = Best[NodeId]->second;
  std::set<size_t> CoveredSet(M.Covered.begin(), M.Covered.end());

  std::vector<std::string> Args;
  for (size_t Input : M.InputNodes) {
    // Materialize internal compute bindings first.
    if (G.isComp(Input) && !G.node(Input).IsRoot && !CoveredSet.count(Input))
      emit(Input, Prog, Emitted);
    Args.push_back(G.node(Input).Name);
  }
  const ir::Instr &I = G.instrOf(NodeId);
  rasm::Loc Location{M.Def->Prim, rasm::Coord::wild(), rasm::Coord::wild()};
  Prog.addInstr(rasm::AsmInstr::makeOp(I.dst(), I.type(), M.Def->Name,
                                       std::move(Args), std::move(Location),
                                       M.HoleValues));
}

Result<rasm::AsmProgram> Selector::run(SelectionStats *Stats) {
  using ProgT = rasm::AsmProgram;
  const ir::Function &Fn = G.function();
  rasm::AsmProgram Prog(Fn.name());
  Prog.inputs() = Fn.inputs();
  Prog.outputs() = Fn.outputs();

  // Wire instructions pass through unchanged (dead ones pruned below).
  for (const ir::Instr &I : Fn.body())
    if (I.isWire())
      Prog.addInstr(rasm::AsmInstr::makeWire(I.dst(), I.type(), I.wireOp(),
                                             I.attrs(), I.args()));

  // Cover every tree.
  {
    obs::Counter &Trees = Ctx.counter("isel.trees_covered");
    obs::Span Sp(Ctx, "isel.tree_cover");
    Sp.arg("trees", static_cast<uint64_t>(G.roots().size()));
    for (size_t Root : G.roots()) {
      if (Result<Cost> C = solve(Root); !C)
        return fail<ProgT>(C.error());
      ++Trees;
    }
  }

  std::set<size_t> Emitted;
  for (size_t Root : G.roots())
    emit(Root, Prog, Emitted);

  // Prune wire instructions whose results are never referenced, chasing
  // use counts down dead wire chains to their fixed point.
  {
    const ir::DefUse &DU = Prog.defUse(Ctx);
    std::vector<uint32_t> Count(DU.numValues());
    for (size_t Id = 0; Id < Count.size(); ++Id)
      Count[Id] = DU.useCount(static_cast<ir::ValueId>(Id));
    std::vector<uint8_t> Removed(Prog.body().size(), 0);
    std::vector<size_t> Work;
    for (size_t I = 0; I < Prog.body().size(); ++I)
      if (Prog.body()[I].isWire() && Count[DU.dstIdOf(I)] == 0)
        Work.push_back(I);
    while (!Work.empty()) {
      size_t I = Work.back();
      Work.pop_back();
      if (Removed[I])
        continue;
      Removed[I] = 1;
      for (ir::ValueId Arg : DU.argIdsOf(I)) {
        if (Arg == ir::InvalidValueId || --Count[Arg] != 0)
          continue;
        uint32_t Def = DU.defIndexOf(Arg);
        if (Def != ir::DefUse::NoDef && Prog.body()[Def].isWire())
          Work.push_back(Def);
      }
    }
    size_t Before = Prog.body().size();
    std::vector<rasm::AsmInstr> Kept;
    Kept.reserve(Before);
    for (size_t I = 0; I < Before; ++I)
      if (!Removed[I])
        Kept.push_back(std::move(Prog.body()[I]));
    Prog.body() = std::move(Kept);
    if (Prog.body().size() != Before)
      Prog.invalidateDefUse(Ctx);
  }

  if (Stats) {
    *Stats = SelectionStats();
    Stats->NumTrees = static_cast<unsigned>(G.roots().size());
    for (const rasm::AsmInstr &I : Prog.body())
      if (I.isWire())
        ++Stats->NumWire;
      else
        ++Stats->NumAsmOps;
    for (size_t Id : Emitted) {
      const auto &Entry = *Best[Id];
      Stats->TotalArea += Entry.second.Def->Area;
      Stats->TotalLatency += Entry.second.Def->Latency;
    }
  }
  return Prog;
}

} // namespace

Result<rasm::AsmProgram> reticle::isel::select(const ir::Function &Fn,
                                               const tdl::Target &Target,
                                               SelectionStats *Stats,
                                               const obs::Context &Ctx) {
  ++Ctx.counter("isel.selects");
  obs::Span Sp(Ctx, "isel.select");
  Sp.arg("fn", Fn.name());
  Result<Dfg> G = Dfg::build(Fn, Ctx);
  if (!G)
    return fail<rasm::AsmProgram>(G.error());
  Selector S(G.value(), Target, Ctx);
  Result<rasm::AsmProgram> Prog = S.run(Stats);
  if (Prog)
    Sp.arg("asm_ops", static_cast<uint64_t>(Prog.value().body().size()));
  return Prog;
}
