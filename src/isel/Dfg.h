//===- isel/Dfg.h - Dataflow graph and tree partitioning --------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow graph used by instruction selection (Section 5.1). Nodes
/// are function inputs and instructions; edges follow def-use relations.
/// The graph is partitioned into trees by cutting at *root* nodes:
///
///  - compute nodes whose result is a function output,
///  - compute nodes with fanout other than one,
///  - register nodes (their out-edges always cut, which breaks every legal
///    cycle, cf. Section 6.1),
///  - compute nodes feeding a wire instruction (wire instructions are
///    copied through to assembly and reference results by name).
///
/// Every root anchors one pattern-matching tree; instruction selection
/// covers each tree with target-description tiles.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_ISEL_DFG_H
#define RETICLE_ISEL_DFG_H

#include "ir/Function.h"
#include "obs/Context.h"
#include "support/Result.h"

#include <memory>
#include <string>
#include <vector>

namespace reticle {
namespace isel {

/// One dataflow node: a function input or a body instruction.
struct DfgNode {
  enum class Kind : uint8_t { Input, Instr };
  Kind NodeKind = Kind::Input;
  std::string Name;             ///< input name or instruction destination
  size_t BodyIndex = 0;         ///< index into the function body (Instr)
  std::vector<size_t> Operands; ///< node ids of the instruction arguments
  std::vector<size_t> Users;    ///< node ids that consume this node
  bool IsRoot = false;          ///< tree root per the partitioning rules
};

/// The dataflow graph of one function.
class Dfg {
public:
  /// Builds the graph and classifies roots. The function must be verified.
  static Result<Dfg> build(const ir::Function &Fn,
                           const obs::Context &Ctx = obs::defaultContext());

  const ir::Function &function() const { return *Fn; }
  const std::vector<DfgNode> &nodes() const { return Nodes; }
  const DfgNode &node(size_t Id) const { return Nodes[Id]; }

  /// Node id for a variable name. Node ids coincide with interned
  /// ValueIds: inputs first, then body destinations, in program order.
  size_t nodeOf(const std::string &Name) const { return DU->idOf(Name); }

  /// The def-use analysis the graph was built from (shared with the
  /// function's cache).
  const ir::DefUse &defUse() const { return *DU; }

  /// The instruction of an Instr node.
  const ir::Instr &instrOf(size_t Id) const {
    assert(Nodes[Id].NodeKind == DfgNode::Kind::Instr && "not an instr node");
    return Fn->body()[Nodes[Id].BodyIndex];
  }

  bool isInstr(size_t Id) const {
    return Nodes[Id].NodeKind == DfgNode::Kind::Instr;
  }
  bool isWire(size_t Id) const {
    return isInstr(Id) && instrOf(Id).isWire();
  }
  bool isComp(size_t Id) const {
    return isInstr(Id) && instrOf(Id).isComp();
  }

  /// Root node ids in body order.
  const std::vector<size_t> &roots() const { return Roots; }

  /// True when selection may descend into \p Id while matching a pattern:
  /// instruction nodes that are not roots. Wire nodes are always
  /// descendable (re-implementing wiring inside a tile is free).
  bool isDescendable(size_t Id) const {
    if (!isInstr(Id))
      return false;
    return isWire(Id) || !Nodes[Id].IsRoot;
  }

private:
  const ir::Function *Fn = nullptr;
  std::shared_ptr<const ir::DefUse> DU;
  std::vector<DfgNode> Nodes;
  std::vector<size_t> Roots;
};

} // namespace isel
} // namespace reticle

#endif // RETICLE_ISEL_DFG_H
