//===- isel/Cascade.cpp - DSP cascade layout optimization ----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "isel/Cascade.h"

#include "ir/DefUse.h"
#include "obs/Context.h"

#include <algorithm>
#include <optional>

using namespace reticle;
using namespace reticle::isel;

namespace {

/// The accumulator ("c") operand position of the muladd family.
constexpr size_t AccumIndex = 2;

bool isCascadeHead(const std::string &OpName) {
  return OpName == "muladd" || OpName == "muladdreg";
}

/// True when the instruction may join a cascade chain: a DSP muladd-family
/// operation whose placement is still entirely unconstrained.
bool isChainable(const rasm::AsmInstr &I) {
  if (I.isWire() || !isCascadeHead(I.opName()))
    return false;
  return I.loc().Prim == ir::Resource::Dsp && I.loc().X.isWild() &&
         I.loc().Y.isWild();
}

} // namespace

Status reticle::isel::cascadePass(rasm::AsmProgram &Prog,
                                  const tdl::Target &Target,
                                  unsigned MaxChain, CascadeStats *Stats,
                                  const obs::Context &Ctx) {
  if (MaxChain < 2)
    return Status::success();
  obs::Span Sp(Ctx, "isel.cascade");
  Sp.arg("max_chain", static_cast<uint64_t>(MaxChain));
  std::vector<rasm::AsmInstr> &Body = Prog.body();

  // Where is each value defined, and how often is it used? The rewrite
  // below changes op names and locations only — destinations, arguments,
  // and types are untouched — so the cached analysis stays valid through
  // the whole pass (and for the placement stages after it).
  const ir::DefUse &DU = Prog.defUse(Ctx);

  // next(i): the chainable instruction consuming i's result in its
  // accumulator port, when that result has no other use.
  auto Next = [&](size_t I) -> std::optional<size_t> {
    ir::ValueId Dst = DU.dstIdOf(I);
    if (DU.useCount(Dst) != 1)
      return std::nullopt;
    for (uint32_t J : DU.usersOf(Dst)) {
      if (J == I || !isChainable(Body[J]))
        continue;
      if (Body[J].args().size() > AccumIndex &&
          DU.argIdsOf(J)[AccumIndex] == Dst)
        return static_cast<size_t>(J);
    }
    return std::nullopt;
  };

  // A chain head is a chainable instruction not fed (in its accumulator)
  // by another chainable instruction with single use.
  auto HasChainablePredecessor = [&](size_t I) {
    ir::ValueId Accum = DU.argIdsOf(I)[AccumIndex];
    if (Accum == ir::InvalidValueId)
      return false;
    uint32_t Def = DU.defIndexOf(Accum);
    if (Def == ir::DefUse::NoDef || !isChainable(Body[Def]))
      return false;
    return DU.useCount(Accum) == 1;
  };

  unsigned FreshVar = 0;
  unsigned ChainsHere = 0, RewrittenHere = 0;
  for (size_t Head = 0; Head < Body.size(); ++Head) {
    if (!isChainable(Body[Head]) || HasChainablePredecessor(Head))
      continue;
    // Collect the maximal chain from this head.
    std::vector<size_t> Chain = {Head};
    while (auto NextIndex = Next(Chain.back()))
      Chain.push_back(*NextIndex);
    if (Chain.size() < 2)
      continue;

    // Split overlong chains into placeable segments.
    for (size_t SegStart = 0; SegStart < Chain.size(); SegStart += MaxChain) {
      size_t SegLen = std::min<size_t>(MaxChain, Chain.size() - SegStart);
      if (SegLen < 2)
        break;
      // Verify that all cascade variants resolve on this target before
      // mutating anything.
      bool AllResolve = true;
      std::vector<std::string> NewNames(SegLen);
      for (size_t K = 0; K < SegLen; ++K) {
        const rasm::AsmInstr &I = Body[Chain[SegStart + K]];
        const char *Suffix =
            K == 0 ? "_co" : (K + 1 == SegLen ? "_ci" : "_cio");
        NewNames[K] = I.opName() + Suffix;
        std::vector<ir::Type> ArgTypes;
        bool TypesOk = true;
        for (ir::ValueId Arg : DU.argIdsOf(Chain[SegStart + K])) {
          if (Arg == ir::InvalidValueId) {
            TypesOk = false;
            break;
          }
          ArgTypes.push_back(DU.typeOfId(Arg));
        }
        if (!TypesOk ||
            !Target.resolve(NewNames[K], ir::Resource::Dsp, ArgTypes,
                            I.type())) {
          AllResolve = false;
          break;
        }
      }
      if (!AllResolve) {
        // The one silent way a chain stays on general routing; say so.
        if (Ctx.remarksEnabled())
          obs::Remark(Ctx, "cascade", "chain-skipped")
              .instr(Body[Chain[SegStart]].dst())
              .message("chain of " + std::to_string(SegLen) +
                       " not rewritten: target does not define every "
                       "cascade variant")
              .arg("length", static_cast<uint64_t>(SegLen));
        continue; // leave this segment on general routing
      }

      std::string XVar = "cx" + std::to_string(FreshVar);
      std::string YVar = "cy" + std::to_string(FreshVar);
      ++FreshVar;
      for (size_t K = 0; K < SegLen; ++K) {
        rasm::AsmInstr &I = Body[Chain[SegStart + K]];
        rasm::Loc NewLoc{ir::Resource::Dsp, rasm::Coord::var(XVar),
                         rasm::Coord::var(YVar, static_cast<int64_t>(K))};
        I = rasm::AsmInstr::makeOp(I.dst(), I.type(), NewNames[K], I.args(),
                                   std::move(NewLoc), I.attrs());
        // The cascade variant is a selection pattern becoming used; it
        // shares the isel.pattern coverage space with directly-selected
        // tiles (the Selector declared it).
        Ctx.coverage().hit("isel.pattern", NewNames[K]);
        ++Ctx.counter("isel.cascade_rewritten");
        if (Stats)
          ++Stats->Rewritten;
      }
      ++Ctx.counter("isel.cascade_chains");
      ++ChainsHere;
      RewrittenHere += static_cast<unsigned>(SegLen);
      if (Stats)
        ++Stats->Chains;
      if (Ctx.remarksEnabled())
        obs::Remark(Ctx, "cascade", "chain")
            .instr(Body[Chain[SegStart]].dst())
            .message("rewrote chain of " + std::to_string(SegLen) +
                     " to cascade variants, constrained to dsp(" + XVar +
                     ", " + YVar + ")..(" + XVar + ", " + YVar + "+" +
                     std::to_string(SegLen - 1) + ")")
            .arg("length", static_cast<uint64_t>(SegLen))
            .arg("max_chain", static_cast<uint64_t>(MaxChain))
            .arg("x_var", XVar)
            .arg("y_var", YVar);
    }
  }
  // Always leave one verdict, so "the rewrite never fired" is visible in
  // the remarks stream rather than inferred from silence.
  if (Ctx.remarksEnabled()) {
    unsigned Family = 0;
    for (const rasm::AsmInstr &I : Body)
      if (!I.isWire() &&
          isCascadeHead(I.opName().substr(0, I.opName().find('_'))))
        ++Family;
    obs::Remark(Ctx, "cascade", "summary")
        .message(ChainsHere
                     ? "rewrote " + std::to_string(ChainsHere) +
                           " chain(s), " + std::to_string(RewrittenHere) +
                           " instruction(s)"
                     : "no cascade-able chain found (" +
                           std::to_string(Family) +
                           " muladd-family instruction(s) present)")
        .arg("chains", ChainsHere)
        .arg("rewritten", RewrittenHere)
        .arg("muladd_family_ops", Family)
        .arg("max_chain", static_cast<uint64_t>(MaxChain));
  }
  return Status::success();
}
