//===- isel/Cascade.cpp - DSP cascade layout optimization ----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "isel/Cascade.h"

#include "obs/Context.h"

#include <algorithm>
#include <map>
#include <optional>

using namespace reticle;
using namespace reticle::isel;

namespace {

/// The accumulator ("c") operand position of the muladd family.
constexpr size_t AccumIndex = 2;

bool isCascadeHead(const std::string &OpName) {
  return OpName == "muladd" || OpName == "muladdreg";
}

/// True when the instruction may join a cascade chain: a DSP muladd-family
/// operation whose placement is still entirely unconstrained.
bool isChainable(const rasm::AsmInstr &I) {
  if (I.isWire() || !isCascadeHead(I.opName()))
    return false;
  return I.loc().Prim == ir::Resource::Dsp && I.loc().X.isWild() &&
         I.loc().Y.isWild();
}

} // namespace

Status reticle::isel::cascadePass(rasm::AsmProgram &Prog,
                                  const tdl::Target &Target,
                                  unsigned MaxChain, CascadeStats *Stats,
                                  const obs::Context &Ctx) {
  if (MaxChain < 2)
    return Status::success();
  obs::Span Sp(Ctx, "isel.cascade");
  Sp.arg("max_chain", static_cast<uint64_t>(MaxChain));
  std::vector<rasm::AsmInstr> &Body = Prog.body();

  // Where is each value defined, and how often is it used?
  std::map<std::string, size_t> DefIndex;
  std::map<std::string, unsigned> UseCount;
  for (size_t I = 0; I < Body.size(); ++I)
    DefIndex[Body[I].dst()] = I;
  for (const rasm::AsmInstr &I : Body)
    for (const std::string &Arg : I.args())
      ++UseCount[Arg];
  for (const ir::Port &P : Prog.outputs())
    ++UseCount[P.Name];

  // next(i): the chainable instruction consuming i's result in its
  // accumulator port, when that result has no other use.
  auto Next = [&](size_t I) -> std::optional<size_t> {
    const std::string &Dst = Body[I].dst();
    if (UseCount[Dst] != 1)
      return std::nullopt;
    for (size_t J = 0; J < Body.size(); ++J) {
      if (J == I || !isChainable(Body[J]))
        continue;
      if (Body[J].args().size() > AccumIndex &&
          Body[J].args()[AccumIndex] == Dst)
        return J;
    }
    return std::nullopt;
  };

  // A chain head is a chainable instruction not fed (in its accumulator)
  // by another chainable instruction with single use.
  auto HasChainablePredecessor = [&](size_t I) {
    const std::string &Accum = Body[I].args()[AccumIndex];
    auto It = DefIndex.find(Accum);
    if (It == DefIndex.end() || !isChainable(Body[It->second]))
      return false;
    return UseCount[Accum] == 1;
  };

  unsigned FreshVar = 0;
  unsigned ChainsHere = 0, RewrittenHere = 0;
  for (size_t Head = 0; Head < Body.size(); ++Head) {
    if (!isChainable(Body[Head]) || HasChainablePredecessor(Head))
      continue;
    // Collect the maximal chain from this head.
    std::vector<size_t> Chain = {Head};
    while (auto NextIndex = Next(Chain.back()))
      Chain.push_back(*NextIndex);
    if (Chain.size() < 2)
      continue;

    // Split overlong chains into placeable segments.
    for (size_t SegStart = 0; SegStart < Chain.size(); SegStart += MaxChain) {
      size_t SegLen = std::min<size_t>(MaxChain, Chain.size() - SegStart);
      if (SegLen < 2)
        break;
      // Verify that all cascade variants resolve on this target before
      // mutating anything.
      bool AllResolve = true;
      std::vector<std::string> NewNames(SegLen);
      for (size_t K = 0; K < SegLen; ++K) {
        const rasm::AsmInstr &I = Body[Chain[SegStart + K]];
        const char *Suffix =
            K == 0 ? "_co" : (K + 1 == SegLen ? "_ci" : "_cio");
        NewNames[K] = I.opName() + Suffix;
        std::vector<ir::Type> ArgTypes;
        bool TypesOk = true;
        for (const std::string &Arg : I.args()) {
          auto It = DefIndex.find(Arg);
          if (It != DefIndex.end()) {
            ArgTypes.push_back(Body[It->second].type());
            continue;
          }
          bool IsInput = false;
          for (const ir::Port &P : Prog.inputs())
            if (P.Name == Arg) {
              ArgTypes.push_back(P.Ty);
              IsInput = true;
              break;
            }
          if (!IsInput) {
            TypesOk = false;
            break;
          }
        }
        if (!TypesOk ||
            !Target.resolve(NewNames[K], ir::Resource::Dsp, ArgTypes,
                            I.type())) {
          AllResolve = false;
          break;
        }
      }
      if (!AllResolve) {
        // The one silent way a chain stays on general routing; say so.
        if (Ctx.remarksEnabled())
          obs::Remark(Ctx, "cascade", "chain-skipped")
              .instr(Body[Chain[SegStart]].dst())
              .message("chain of " + std::to_string(SegLen) +
                       " not rewritten: target does not define every "
                       "cascade variant")
              .arg("length", static_cast<uint64_t>(SegLen));
        continue; // leave this segment on general routing
      }

      std::string XVar = "cx" + std::to_string(FreshVar);
      std::string YVar = "cy" + std::to_string(FreshVar);
      ++FreshVar;
      for (size_t K = 0; K < SegLen; ++K) {
        rasm::AsmInstr &I = Body[Chain[SegStart + K]];
        rasm::Loc NewLoc{ir::Resource::Dsp, rasm::Coord::var(XVar),
                         rasm::Coord::var(YVar, static_cast<int64_t>(K))};
        I = rasm::AsmInstr::makeOp(I.dst(), I.type(), NewNames[K], I.args(),
                                   std::move(NewLoc), I.attrs());
        ++Ctx.counter("isel.cascade_rewritten");
        if (Stats)
          ++Stats->Rewritten;
      }
      ++Ctx.counter("isel.cascade_chains");
      ++ChainsHere;
      RewrittenHere += static_cast<unsigned>(SegLen);
      if (Stats)
        ++Stats->Chains;
      if (Ctx.remarksEnabled())
        obs::Remark(Ctx, "cascade", "chain")
            .instr(Body[Chain[SegStart]].dst())
            .message("rewrote chain of " + std::to_string(SegLen) +
                     " to cascade variants, constrained to dsp(" + XVar +
                     ", " + YVar + ")..(" + XVar + ", " + YVar + "+" +
                     std::to_string(SegLen - 1) + ")")
            .arg("length", static_cast<uint64_t>(SegLen))
            .arg("max_chain", static_cast<uint64_t>(MaxChain))
            .arg("x_var", XVar)
            .arg("y_var", YVar);
    }
  }
  // Always leave one verdict, so "the rewrite never fired" is visible in
  // the remarks stream rather than inferred from silence.
  if (Ctx.remarksEnabled()) {
    unsigned Family = 0;
    for (const rasm::AsmInstr &I : Body)
      if (!I.isWire() &&
          isCascadeHead(I.opName().substr(0, I.opName().find('_'))))
        ++Family;
    obs::Remark(Ctx, "cascade", "summary")
        .message(ChainsHere
                     ? "rewrote " + std::to_string(ChainsHere) +
                           " chain(s), " + std::to_string(RewrittenHere) +
                           " instruction(s)"
                     : "no cascade-able chain found (" +
                           std::to_string(Family) +
                           " muladd-family instruction(s) present)")
        .arg("chains", ChainsHere)
        .arg("rewritten", RewrittenHere)
        .arg("muladd_family_ops", Family)
        .arg("max_chain", static_cast<uint64_t>(MaxChain));
  }
  return Status::success();
}
