//===- isel/Select.h - Instruction selection --------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction selection (Section 5.1): lowers a verified intermediate
/// program to a family-specific assembly program by covering each
/// dataflow tree with target-description tiles, using the classic
/// dynamic-programming, linear-time tree-covering scheme of Aho &
/// Ganapathi as used in software code generators.
///
/// Resource annotations are hard constraints: a tile may cover an
/// instruction only when the instruction's annotation is the wildcard or
/// matches the tile's primitive; when no tile satisfies an annotation the
/// whole compilation is rejected rather than the hint being silently
/// dropped (Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_ISEL_SELECT_H
#define RETICLE_ISEL_SELECT_H

#include "ir/Function.h"
#include "obs/Context.h"
#include "rasm/Asm.h"
#include "support/Result.h"
#include "tdl/Target.h"

namespace reticle {
namespace isel {

/// Aggregate facts about one selection run, reported by benchmarks.
struct SelectionStats {
  unsigned NumTrees = 0;     ///< dataflow trees covered
  unsigned NumAsmOps = 0;    ///< selected assembly instructions
  unsigned NumWire = 0;      ///< retained wire instructions
  int64_t TotalArea = 0;     ///< summed tile area cost
  int64_t TotalLatency = 0;  ///< summed tile latency cost
};

/// Lowers \p Fn to assembly for \p Target. All selected instructions carry
/// wildcard locations; placement resolves them later. Counters, spans and
/// remarks record into \p Ctx.
Result<rasm::AsmProgram> select(const ir::Function &Fn,
                                const tdl::Target &Target,
                                SelectionStats *Stats = nullptr,
                                const obs::Context &Ctx = obs::defaultContext());

} // namespace isel
} // namespace reticle

#endif // RETICLE_ISEL_SELECT_H
