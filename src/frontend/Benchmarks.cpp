//===- frontend/Benchmarks.cpp - Paper benchmark generators ----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Benchmarks.h"

#include <cassert>

using namespace reticle;
using namespace reticle::frontend;
using ir::CompOp;
using ir::Function;
using ir::Instr;
using ir::Resource;
using ir::Type;

Function reticle::frontend::makeTensorAdd(unsigned Elements, bool BindDsp) {
  assert(Elements % 4 == 0 && Elements > 0 && "element count not SIMD-able");
  unsigned Groups = Elements / 4;
  Function Fn("tensoradd" + std::to_string(Elements));
  Type V = Type::makeInt(8, 4);
  Fn.addInput("en", Type::makeBool());
  Resource Res = BindDsp ? Resource::Dsp : Resource::Any;
  for (unsigned G = 0; G < Groups; ++G) {
    std::string Suffix = std::to_string(G);
    Fn.addInput("a" + Suffix, V);
    Fn.addInput("b" + Suffix, V);
    Fn.addOutput("y" + Suffix, V);
    Fn.addInstr(Instr::makeComp("t" + Suffix, V, CompOp::Add,
                                {"a" + Suffix, "b" + Suffix}, {}, Res));
    Fn.addInstr(Instr::makeComp("y" + Suffix, V, CompOp::Reg,
                                {"t" + Suffix, "en"}, {0}));
  }
  return Fn;
}

Function reticle::frontend::makeTensorDot(unsigned K, unsigned Rows) {
  assert(K > 0 && Rows > 0 && "degenerate dot product");
  Function Fn("tensordot" + std::to_string(Rows) + "x" + std::to_string(K));
  Type I8 = Type::makeInt(8);
  Fn.addInput("en", Type::makeBool());
  for (unsigned R = 0; R < Rows; ++R) {
    std::string Row = std::to_string(R);
    // A systolic row: each stage multiplies one element pair and
    // accumulates into the running sum, registered between stages.
    Fn.addInstr(Instr::makeWire("z" + Row, I8, ir::WireOp::Const, {0}));
    std::string Acc = "z" + Row;
    for (unsigned S = 0; S < K; ++S) {
      std::string Stage = Row + "_" + std::to_string(S);
      Fn.addInput("a" + Stage, I8);
      Fn.addInput("b" + Stage, I8);
      Fn.addInstr(Instr::makeComp("m" + Stage, I8, CompOp::Mul,
                                  {"a" + Stage, "b" + Stage}));
      Fn.addInstr(Instr::makeComp("s" + Stage, I8, CompOp::Add,
                                  {"m" + Stage, Acc}));
      Fn.addInstr(Instr::makeComp("p" + Stage, I8, CompOp::Reg,
                                  {"s" + Stage, "en"}, {0}));
      Acc = "p" + Stage;
    }
    Fn.addOutput(Acc, I8);
  }
  return Fn;
}

Function reticle::frontend::makeFsm(unsigned States) {
  assert(States >= 2 && "a state machine needs at least two states");
  Function Fn("fsm" + std::to_string(States));
  Type I8 = Type::makeInt(8);
  Type B = Type::makeBool();
  Fn.addInput("in", I8);
  Fn.addInput("en", B);
  Fn.addOutput("state", I8);

  // State constants and per-state thresholds on the input.
  for (unsigned S = 0; S < States; ++S)
    Fn.addInstr(Instr::makeWire("k" + std::to_string(S), I8,
                                ir::WireOp::Const,
                                {static_cast<int64_t>(S)}));
  // The coroutine advances from state S to S+1 (mod States) when the
  // input clears the state's threshold; otherwise it holds.
  std::string Next = "state";
  for (unsigned S = 0; S < States; ++S) {
    std::string Tag = std::to_string(S);
    Fn.addInstr(Instr::makeWire("thr" + Tag, I8, ir::WireOp::Const,
                                {static_cast<int64_t>(3 * S + 1)}));
    Fn.addInstr(Instr::makeComp("is" + Tag, B, CompOp::Eq,
                                {"state", "k" + Tag}));
    Fn.addInstr(Instr::makeComp("go" + Tag, B, CompOp::Lt,
                                {"thr" + Tag, "in"}));
    Fn.addInstr(Instr::makeComp("take" + Tag, B, CompOp::And,
                                {"is" + Tag, "go" + Tag}));
    std::string Target = "k" + std::to_string((S + 1) % States);
    Fn.addInstr(Instr::makeComp("n" + Tag, I8, CompOp::Mux,
                                {"take" + Tag, Target, Next}));
    Next = "n" + Tag;
  }
  Fn.addInstr(Instr::makeComp("state", I8, CompOp::Reg, {Next, "en"}, {0}));
  return Fn;
}

Function reticle::frontend::makeDspAdd(unsigned Elements) {
  assert(Elements % 4 == 0 && Elements > 0 && "element count not SIMD-able");
  unsigned Groups = Elements / 4;
  Function Fn("dsp_add" + std::to_string(Elements));
  Type V = Type::makeInt(8, 4);
  for (unsigned G = 0; G < Groups; ++G) {
    std::string Suffix = std::to_string(G);
    Fn.addInput("a" + Suffix, V);
    Fn.addInput("b" + Suffix, V);
    Fn.addOutput("y" + Suffix, V);
    Fn.addInstr(Instr::makeComp("y" + Suffix, V, CompOp::Add,
                                {"a" + Suffix, "b" + Suffix}, {},
                                Resource::Dsp));
  }
  return Fn;
}
