//===- frontend/Benchmarks.h - Paper benchmark generators -------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for the programs the evaluation measures (Section 7.1):
///
///  - `tensoradd`: element-wise summation over one-dimensional tensors,
///    pipelined with register instructions (vectorization showcase);
///  - `tensordot`: five systolic rows computing dot products (fused
///    operations and cascading showcase);
///  - `fsm`: a coroutine implemented as a finite state machine
///    (control-oriented programs, LUT-only);
///  - `dsp_add`: Figure 3's parallel array addition, used by the Figure 4
///    resource-utilization experiment.
///
/// Each generator returns one intermediate-language function. The same
/// function feeds both toolchains: the Reticle compiler honors its vector
/// types and resource annotations, while the baseline flow treats it the
/// way behavioral HDL would (scalarized, hints-as-suggestions), exactly
/// like the paper's translation backends.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_FRONTEND_BENCHMARKS_H
#define RETICLE_FRONTEND_BENCHMARKS_H

#include "ir/Function.h"

namespace reticle {
namespace frontend {

/// Element-wise tensor addition over \p Elements i8 values (a multiple of
/// four), grouped into i8<4> SIMD adds pipelined through registers.
/// Resource annotations request DSPs when \p BindDsp is set (the paper's
/// measured configuration) and leave the choice to the compiler
/// otherwise.
ir::Function makeTensorAdd(unsigned Elements, bool BindDsp = true);

/// Five systolic dot-product rows over length-\p K i8 tensors: each row
/// chains mul+add+reg stages whose accumulator flows to the next stage,
/// the shape that selection fuses to muladdreg and the layout pass
/// cascades.
ir::Function makeTensorDot(unsigned K, unsigned Rows = 5);

/// A coroutine-style finite state machine over \p States states: one
/// equality comparison, guard, and mux per state plus the state register.
/// Control logic maps only to LUTs (mux has no DSP form).
ir::Function makeFsm(unsigned States);

/// Figure 3's dsp_add: \p Elements parallel i8 additions (a multiple of
/// four), vectorized into i8<4> groups, no pipelining.
ir::Function makeDspAdd(unsigned Elements);

} // namespace frontend
} // namespace reticle

#endif // RETICLE_FRONTEND_BENCHMARKS_H
