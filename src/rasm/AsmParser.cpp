//===- rasm/AsmParser.cpp - Assembly-language parser --------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rasm/AsmParser.h"

#include "ir/ParseCommon.h"
#include "support/Lexer.h"

using namespace reticle;
using namespace reticle::rasm;
using ir::diagAt;
using ir::expect;

namespace {

/// Parses a coordinate expression `term (+ term)*` where a term is `??`, an
/// integer, or a variable, and normalizes it to Coord form. Sums over two
/// distinct variables are rejected.
Result<Coord> parseCoord(Lexer &Lex) {
  bool SawWild = false;
  bool SawVar = false;
  std::string Var;
  int64_t Offset = 0;
  unsigned Terms = 0;
  while (true) {
    if (Lex.accept(TokenKind::Wildcard)) {
      SawWild = true;
    } else if (Lex.at(TokenKind::Int)) {
      Offset += Lex.next().IntValue;
    } else if (Lex.at(TokenKind::Ident)) {
      std::string Name = Lex.next().Text;
      if (SawVar && Name != Var)
        return fail<Coord>(diagAt(
            Lex, "coordinate expressions over two distinct variables are "
                 "not supported"));
      if (SawVar)
        return fail<Coord>(
            diagAt(Lex, "coordinate variable may appear only once"));
      SawVar = true;
      Var = std::move(Name);
    } else {
      return fail<Coord>(diagAt(Lex, "expected coordinate expression"));
    }
    ++Terms;
    if (Lex.accept(TokenKind::Plus))
      continue;
    // "y-1" lexes as the variable followed by a negative literal; treat the
    // literal as an additive term so printed coordinates re-parse.
    if (Lex.at(TokenKind::Int) && Lex.peek().IntValue < 0)
      continue;
    break;
  }
  if (SawWild) {
    if (Terms > 1)
      return fail<Coord>(
          diagAt(Lex, "'?\?' cannot be combined with other terms"));
    return Coord::wild();
  }
  if (SawVar)
    return Coord::var(std::move(Var), Offset);
  return Coord::lit(Offset);
}

Result<Loc> parseLoc(Lexer &Lex) {
  ir::Resource Prim;
  if (Lex.atIdent("lut")) {
    Prim = ir::Resource::Lut;
  } else if (Lex.atIdent("dsp")) {
    Prim = ir::Resource::Dsp;
  } else {
    return fail<Loc>(diagAt(Lex, "expected primitive 'lut' or 'dsp'"));
  }
  Lex.next();
  if (Status S = expect(Lex, TokenKind::LParen); !S)
    return fail<Loc>(S.error());
  Result<Coord> X = parseCoord(Lex);
  if (!X)
    return fail<Loc>(X.error());
  if (Status S = expect(Lex, TokenKind::Comma); !S)
    return fail<Loc>(S.error());
  Result<Coord> Y = parseCoord(Lex);
  if (!Y)
    return fail<Loc>(Y.error());
  if (Status S = expect(Lex, TokenKind::RParen); !S)
    return fail<Loc>(S.error());
  return Loc{Prim, X.take(), Y.take()};
}

Result<AsmInstr> parseAsmInstr(Lexer &Lex) {
  if (!Lex.at(TokenKind::Ident))
    return fail<AsmInstr>(diagAt(Lex, "expected instruction destination"));
  std::string Dst = Lex.next().Text;
  if (Status S = expect(Lex, TokenKind::Colon); !S)
    return fail<AsmInstr>(S.error());
  Result<ir::Type> Ty = ir::parseType(Lex);
  if (!Ty)
    return fail<AsmInstr>(Ty.error());
  if (Status S = expect(Lex, TokenKind::Equal); !S)
    return fail<AsmInstr>(S.error());
  if (!Lex.at(TokenKind::Ident))
    return fail<AsmInstr>(diagAt(Lex, "expected operation name"));
  std::string OpName = Lex.next().Text;
  Result<std::vector<int64_t>> Attrs =
      ir::parseAttrList(Lex, /*AllowHoles=*/false, nullptr);
  if (!Attrs)
    return fail<AsmInstr>(Attrs.error());
  Result<std::vector<std::string>> Args = ir::parseArgList(Lex);
  if (!Args)
    return fail<AsmInstr>(Args.error());

  std::optional<Loc> Location;
  if (Lex.accept(TokenKind::At)) {
    Result<Loc> L = parseLoc(Lex);
    if (!L)
      return fail<AsmInstr>(L.error());
    Location = L.take();
  }
  if (Status S = expect(Lex, TokenKind::Semi); !S)
    return fail<AsmInstr>(S.error());

  if (std::optional<ir::WireOp> WOp = ir::parseWireOp(OpName)) {
    if (Location)
      return fail<AsmInstr>("wire instruction '" + OpName +
                            "' cannot carry a location");
    return AsmInstr::makeWire(std::move(Dst), Ty.value(), *WOp, Attrs.take(),
                              Args.take());
  }
  if (!Location)
    return fail<AsmInstr>("assembly instruction '" + OpName +
                          "' requires a location, e.g. '@dsp(?\?, ?\?)'");
  return AsmInstr::makeOp(std::move(Dst), Ty.value(), std::move(OpName),
                          Args.take(), std::move(*Location), Attrs.take());
}

} // namespace

Result<AsmProgram> reticle::rasm::parseAsmProgram(const std::string &Source) {
  Lexer Lex(Source);
  if (!Lex.ok())
    return fail<AsmProgram>(Lex.error());
  if (Lex.atIdent("def"))
    Lex.next();
  if (!Lex.at(TokenKind::Ident))
    return fail<AsmProgram>(diagAt(Lex, "expected program name"));
  AsmProgram Prog(Lex.next().Text);

  Result<std::vector<ir::Port>> Inputs = ir::parsePortList(Lex);
  if (!Inputs)
    return fail<AsmProgram>(Inputs.error());
  Prog.inputs() = Inputs.take();

  if (Status S = expect(Lex, TokenKind::Arrow); !S)
    return fail<AsmProgram>(S.error());

  Result<std::vector<ir::Port>> Outputs = ir::parsePortList(Lex);
  if (!Outputs)
    return fail<AsmProgram>(Outputs.error());
  Prog.outputs() = Outputs.take();
  if (Prog.outputs().empty())
    return fail<AsmProgram>("program '" + Prog.name() +
                            "' must declare at least one output");

  if (Status S = expect(Lex, TokenKind::LBrace); !S)
    return fail<AsmProgram>(S.error());
  while (!Lex.at(TokenKind::RBrace)) {
    if (Lex.at(TokenKind::Eof))
      return fail<AsmProgram>(diagAt(Lex, "unterminated program body"));
    Result<AsmInstr> I = parseAsmInstr(Lex);
    if (!I)
      return fail<AsmProgram>(I.error());
    Prog.addInstr(I.take());
  }
  Lex.next();
  return Prog;
}
