//===- rasm/Asm.cpp - The Reticle assembly language ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rasm/Asm.h"

using namespace reticle;
using namespace reticle::rasm;

std::string Coord::str() const {
  switch (CoordKind) {
  case Kind::Wild:
    return "??";
  case Kind::Lit:
    return std::to_string(Offset);
  case Kind::Var:
    if (Offset == 0)
      return Name;
    if (Offset > 0)
      return Name + "+" + std::to_string(Offset);
    return Name + "-" + std::to_string(-Offset);
  }
  return "?";
}

std::string Loc::str() const {
  return std::string(ir::resourceName(Prim)) + "(" + X.str() + ", " +
         Y.str() + ")";
}

std::string AsmInstr::str() const {
  std::string Out = Dst + ":" + Ty.str() + " = ";
  Out += IsWireInstr ? std::string(ir::wireOpName(Wire)) : Name;
  if (!Attrs.empty()) {
    Out += "[";
    for (size_t I = 0; I < Attrs.size(); ++I) {
      if (I)
        Out += ", ";
      Out += std::to_string(Attrs[I]);
    }
    Out += "]";
  }
  if (!Args.empty()) {
    Out += "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Args[I];
    }
    Out += ")";
  }
  if (!IsWireInstr)
    Out += " @" + Location.str();
  Out += ";";
  return Out;
}

bool AsmProgram::isPlaced() const {
  for (const AsmInstr &I : Body) {
    if (I.isWire())
      continue;
    if (!I.loc().X.isLit() || !I.loc().Y.isLit())
      return false;
  }
  return true;
}

std::string AsmProgram::str() const {
  auto PortList = [](const std::vector<ir::Port> &Ports) {
    std::string Out = "(";
    for (size_t I = 0; I < Ports.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Ports[I].Name + ":" + Ports[I].Ty.str();
    }
    return Out + ")";
  };
  std::string Out = "def " + Name + PortList(Inputs) + " -> " +
                    PortList(Outputs) + " {\n";
  for (const AsmInstr &I : Body)
    Out += "  " + I.str() + "\n";
  Out += "}\n";
  return Out;
}
