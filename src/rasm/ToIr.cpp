//===- rasm/ToIr.cpp - Assembly-to-IR expansion --------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rasm/ToIr.h"

#include <map>

using namespace reticle;
using namespace reticle::rasm;

Result<ir::Function> reticle::rasm::toIr(const AsmProgram &Prog,
                                         const tdl::Target &Target) {
  using FnT = ir::Function;

  // Argument types for overload resolution come from the program's
  // def-use analysis rather than a locally rebuilt name map.
  const ir::DefUse &DU = Prog.defUse();

  ir::Function Fn(Prog.name());
  Fn.inputs() = Prog.inputs();
  Fn.outputs() = Prog.outputs();

  unsigned FreshCounter = 0;
  for (size_t BI = 0; BI < Prog.body().size(); ++BI) {
    const AsmInstr &I = Prog.body()[BI];
    if (I.isWire()) {
      Fn.addInstr(ir::Instr::makeWire(I.dst(), I.type(), I.wireOp(),
                                      I.attrs(), I.args()));
      continue;
    }
    std::vector<ir::Type> ArgTypes;
    for (size_t K = 0; K < I.args().size(); ++K) {
      ir::ValueId Arg = DU.argIdsOf(BI)[K];
      if (Arg == ir::InvalidValueId)
        return fail<FnT>("in '" + I.str() + "': undefined variable '" +
                         I.args()[K] + "'");
      ArgTypes.push_back(DU.typeOfId(Arg));
    }
    const tdl::TargetDef *Def =
        Target.resolve(I.opName(), I.loc().Prim, ArgTypes, I.type());
    if (!Def)
      return fail<FnT>("in '" + I.str() + "': no definition of '" +
                       I.opName() + "' on " +
                       ir::resourceName(I.loc().Prim) + " for target '" +
                       Target.name() + "'");
    if (I.attrs().size() != Def->numHoles())
      return fail<FnT>("in '" + I.str() + "': expected " +
                       std::to_string(Def->numHoles()) +
                       " attribute(s) for '" + I.opName() + "', got " +
                       std::to_string(I.attrs().size()));

    // Inline the definition body with hole attributes substituted and
    // local names rewritten: inputs map to the instruction arguments, the
    // output maps to the destination, and temporaries get fresh names.
    ir::Function Body = Def->toFunction(I.attrs());
    std::map<std::string, std::string> Rename;
    for (size_t K = 0; K < Def->Inputs.size(); ++K)
      Rename[Def->Inputs[K].Name] = I.args()[K];
    Rename[Def->Output.Name] = I.dst();
    std::string Prefix = I.dst() + "$" + std::to_string(FreshCounter++);
    auto Mapped = [&](const std::string &Name) -> std::string {
      auto It = Rename.find(Name);
      if (It != Rename.end())
        return It->second;
      return Prefix + "$" + Name;
    };
    for (const ir::Instr &B : Body.body()) {
      std::vector<std::string> Args;
      Args.reserve(B.args().size());
      for (const std::string &Arg : B.args())
        Args.push_back(Mapped(Arg));
      if (B.isWire())
        Fn.addInstr(ir::Instr::makeWire(Mapped(B.dst()), B.type(),
                                        B.wireOp(), B.attrs(),
                                        std::move(Args)));
      else
        Fn.addInstr(ir::Instr::makeComp(Mapped(B.dst()), B.type(),
                                        B.compOp(), std::move(Args),
                                        B.attrs(), I.loc().Prim));
    }
  }
  return Fn;
}
