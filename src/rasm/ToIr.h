//===- rasm/ToIr.h - Assembly-to-IR expansion -------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expands an assembly program back into the intermediate language by
/// inlining each assembly instruction's target-description body
/// (Section 4.2: every assembly operation is defined as a sequence of
/// intermediate operations). The expansion gives assembly programs an
/// executable semantics through the ordinary interpreter, which is the
/// oracle used by the translation-validation tests for instruction
/// selection.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_RASM_TOIR_H
#define RETICLE_RASM_TOIR_H

#include "ir/Function.h"
#include "rasm/Asm.h"
#include "support/Result.h"
#include "tdl/Target.h"

namespace reticle {
namespace rasm {

/// Expands \p Prog into an IR function under \p Target. Fails when an
/// operation does not resolve against the target or its attribute count
/// does not match the definition's holes.
Result<ir::Function> toIr(const AsmProgram &Prog, const tdl::Target &Target);

} // namespace rasm
} // namespace reticle

#endif // RETICLE_RASM_TOIR_H
