//===- rasm/AsmParser.h - Assembly-language parser ---------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual front end for the assembly language of Figure 5b, e.g.:
///
/// \code
///   def dot(a:i8, b:i8, c:i8, d:i8, in:i8) -> (t1:i8) {
///     t0:i8 = muladd_co(a, b, in) @dsp(x, y);
///     t1:i8 = muladd_ci(c, d, t0) @dsp(x, y+1);
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_RASM_ASMPARSER_H
#define RETICLE_RASM_ASMPARSER_H

#include "rasm/Asm.h"
#include "support/Result.h"

#include <string>

namespace reticle {
namespace rasm {

/// Parses one assembly program from \p Source.
Result<AsmProgram> parseAsmProgram(const std::string &Source);

} // namespace rasm
} // namespace reticle

#endif // RETICLE_RASM_ASMPARSER_H
