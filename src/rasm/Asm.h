//===- rasm/Asm.h - The Reticle assembly language ---------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assembly language of Figure 5b. Assembly retains the IR's wire
/// instructions but replaces compute instructions with target-specific
/// operations that carry location semantics: a primitive kind plus x/y
/// coordinate expressions. Coordinates may be wildcards (the compiler
/// places them), literals (pinned), or `var + offset` expressions that
/// relate the placement of several instructions (Section 5.2's cascading
/// uses `(x, y)` / `(x, y+1)` pairs).
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_RASM_ASM_H
#define RETICLE_RASM_ASM_H

#include "ir/Function.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace reticle {
namespace rasm {

/// A coordinate expression, normalized to one of: wildcard, literal, or
/// `var + offset`. The paper's grammar allows arbitrary sums e+e; constant
/// folding reduces every practical program to this form, and the parser
/// rejects expressions over two distinct variables.
class Coord {
public:
  enum class Kind : uint8_t { Wild, Lit, Var };

  Coord() = default;

  static Coord wild() { return Coord(); }
  static Coord lit(int64_t Value) {
    Coord C;
    C.CoordKind = Kind::Lit;
    C.Offset = Value;
    return C;
  }
  static Coord var(std::string Name, int64_t Offset = 0) {
    Coord C;
    C.CoordKind = Kind::Var;
    C.Name = std::move(Name);
    C.Offset = Offset;
    return C;
  }

  Kind kind() const { return CoordKind; }
  bool isWild() const { return CoordKind == Kind::Wild; }
  bool isLit() const { return CoordKind == Kind::Lit; }
  bool isVar() const { return CoordKind == Kind::Var; }

  /// Literal value or variable offset.
  int64_t offset() const { return Offset; }
  const std::string &name() const {
    assert(isVar() && "coordinate has no variable");
    return Name;
  }

  std::string str() const;

  bool operator==(const Coord &Other) const = default;

private:
  Kind CoordKind = Kind::Wild;
  std::string Name;
  int64_t Offset = 0;
};

/// A location: primitive kind plus coordinates, e.g. `dsp(x, y+1)`.
struct Loc {
  ir::Resource Prim = ir::Resource::Lut; ///< Lut or Dsp, never Any
  Coord X;
  Coord Y;

  std::string str() const;
  bool operator==(const Loc &Other) const = default;
};

/// One assembly instruction: a retained wire instruction or a
/// target-specific operation with a location.
class AsmInstr {
public:
  static AsmInstr makeWire(std::string Dst, ir::Type Ty, ir::WireOp Op,
                           std::vector<int64_t> Attrs = {},
                           std::vector<std::string> Args = {}) {
    AsmInstr I;
    I.IsWireInstr = true;
    I.Dst = std::move(Dst);
    I.Ty = Ty;
    I.Wire = Op;
    I.Attrs = std::move(Attrs);
    I.Args = std::move(Args);
    return I;
  }

  static AsmInstr makeOp(std::string Dst, ir::Type Ty, std::string OpName,
                         std::vector<std::string> Args, Loc Location,
                         std::vector<int64_t> Attrs = {}) {
    AsmInstr I;
    I.IsWireInstr = false;
    I.Dst = std::move(Dst);
    I.Ty = Ty;
    I.Name = std::move(OpName);
    I.Args = std::move(Args);
    I.Location = std::move(Location);
    I.Attrs = std::move(Attrs);
    return I;
  }

  bool isWire() const { return IsWireInstr; }
  ir::WireOp wireOp() const {
    assert(IsWireInstr && "not a wire instruction");
    return Wire;
  }

  /// Target-specific operation name (assembly instructions only).
  const std::string &opName() const {
    assert(!IsWireInstr && "wire instructions have no target op");
    return Name;
  }

  const std::string &dst() const { return Dst; }
  ir::Type type() const { return Ty; }
  const std::vector<int64_t> &attrs() const { return Attrs; }
  const std::vector<std::string> &args() const { return Args; }

  const Loc &loc() const {
    assert(!IsWireInstr && "wire instructions have no location");
    return Location;
  }
  Loc &loc() {
    assert(!IsWireInstr && "wire instructions have no location");
    return Location;
  }

  std::string str() const;

private:
  bool IsWireInstr = true;
  std::string Dst;
  ir::Type Ty;
  ir::WireOp Wire = ir::WireOp::Id;
  std::string Name;
  std::vector<int64_t> Attrs;
  std::vector<std::string> Args;
  Loc Location;
};

/// An assembly program: same shape as an IR function, with assembly
/// instructions in the body.
class AsmProgram {
public:
  AsmProgram() = default;
  explicit AsmProgram(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  std::vector<ir::Port> &inputs() { return Inputs; }
  const std::vector<ir::Port> &inputs() const { return Inputs; }
  std::vector<ir::Port> &outputs() { return Outputs; }
  const std::vector<ir::Port> &outputs() const { return Outputs; }
  std::vector<AsmInstr> &body() { return Body; }
  const std::vector<AsmInstr> &body() const { return Body; }

  void addInstr(AsmInstr I) {
    Body.push_back(std::move(I));
    invalidateDefUse();
  }

  /// The cached def-use analysis over this program (same structure the IR
  /// caches; locations play no part in it). Mutating the body or ports
  /// through the non-const accessors requires invalidateDefUse() before
  /// the next analysis consumer — except location-only edits (placement,
  /// cascade coordinate rewrites), which leave names, args, and types
  /// untouched and therefore keep the analysis valid.
  const ir::DefUse &
  defUse(const obs::Context &Ctx = obs::defaultContext()) const {
    if (DU) {
      ++Ctx.counter("ir.defuse.cache_hits");
      return *DU;
    }
    DU = ir::DefUse::build(*this, Ctx);
    return *DU;
  }

  /// Shares ownership of the cached analysis.
  std::shared_ptr<const ir::DefUse>
  defUseShared(const obs::Context &Ctx = obs::defaultContext()) const {
    (void)defUse(Ctx);
    return DU;
  }

  /// Drops the cached analysis; counted only when a cache existed.
  void invalidateDefUse(
      const obs::Context &Ctx = obs::defaultContext()) const {
    if (DU) {
      DU.reset();
      ++Ctx.counter("ir.defuse.invalidations");
    }
  }

  /// True when every location coordinate is a literal (device-specific
  /// program, ready for code generation).
  bool isPlaced() const;

  std::string str() const;

private:
  std::string Name;
  std::vector<ir::Port> Inputs;
  std::vector<ir::Port> Outputs;
  std::vector<AsmInstr> Body;
  mutable std::shared_ptr<const ir::DefUse> DU;
};

} // namespace rasm
} // namespace reticle

#endif // RETICLE_RASM_ASM_H
