//===- place/Place.cpp - Instruction placement ----------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "place/Place.h"

#include "ir/DefUse.h"
#include "obs/Context.h"
#include "sat/Portfolio.h"
#include "sat/Solver.h"

#include <algorithm>
#include <chrono>
#include <climits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>

using namespace reticle;
using namespace reticle::place;
using rasm::AsmInstr;
using rasm::AsmProgram;
using rasm::Coord;

namespace {

/// One placeable instruction with normalized coordinate expressions.
struct Member {
  size_t BodyIndex = 0;
  Coord X;
  Coord Y;
};

/// A rigid group of instructions related by shared coordinate variables.
struct Cluster {
  ir::Resource Prim = ir::Resource::Lut;
  std::optional<std::string> XVar;
  std::optional<std::string> YVar;
  std::vector<Member> Members;
  /// True when every member coordinate is a literal; such clusters are
  /// pre-placed and only contribute occupancy.
  bool isFixed() const { return !XVar && !YVar; }
};

/// A concrete base assignment for a cluster's variables.
struct Candidate {
  int64_t XBase = 0;
  int64_t YBase = 0;
  std::vector<device::Slot> Slots; // one per member, in member order
};

/// Per-kind area bounds used by the shrinking passes (exclusive).
struct Bounds {
  unsigned MaxColumn = 0; ///< columns with index <= MaxColumn usable
  unsigned MaxRow = 0;    ///< rows with index <= MaxRow usable
};

/// Resolves a member's coordinates for given variable bases.
bool memberSlot(const Member &M, int64_t XBase, int64_t YBase,
                device::Slot &Out) {
  int64_t X = M.X.isLit() ? M.X.offset() : XBase + M.X.offset();
  int64_t Y = M.Y.isLit() ? M.Y.offset() : YBase + M.Y.offset();
  if (X < 0 || Y < 0)
    return false;
  Out = device::Slot{static_cast<unsigned>(X), static_cast<unsigned>(Y)};
  return true;
}

/// Sequential at-most-one encoding over \p Lits. When \p Selector is
/// given, every emitted clause is guarded by it (clause ∨ ¬selector), so
/// assuming the selector true enables the constraint and dropping the
/// assumption switches the whole group off — the mechanism behind
/// UNSAT-core extraction over named constraint groups. Templated over the
/// backend so one encoding serves both a single sat::Solver and a
/// sat::Portfolio (which mirrors clauses into every racing lane).
template <typename SolverT>
void addAtMostOne(SolverT &S, const std::vector<sat::Lit> &Lits,
                  std::optional<sat::Lit> Selector = std::nullopt) {
  auto Add = [&](std::vector<sat::Lit> Clause) {
    if (Selector)
      Clause.push_back(~*Selector);
    S.addClause(std::move(Clause));
  };
  if (Lits.size() <= 1)
    return;
  if (Lits.size() == 2) {
    Add({~Lits[0], ~Lits[1]});
    return;
  }
  std::vector<sat::Var> Aux(Lits.size() - 1);
  for (sat::Var &V : Aux)
    V = S.newVar();
  Add({~Lits[0], sat::Lit(Aux[0])});
  for (size_t I = 1; I + 1 < Lits.size(); ++I) {
    Add({~Lits[I], sat::Lit(Aux[I])});
    Add({~sat::Lit(Aux[I - 1]), sat::Lit(Aux[I])});
    Add({~Lits[I], ~sat::Lit(Aux[I - 1])});
  }
  Add({~Lits.back(), ~sat::Lit(Aux.back())});
}

class Placer {
public:
  Placer(const AsmProgram &Prog, const device::Device &Dev,
         const PlacementOptions &Options, PlacementStats *Stats,
         const obs::Context &Ctx)
      : Prog(Prog), Dev(Dev), Options(Options), Stats(Stats), Ctx(Ctx) {}

  Result<AsmProgram> run();

private:
  Status buildClusters();
  Result<std::vector<Candidate>> enumerate(const Cluster &C,
                                           const Bounds &B,
                                           size_t Cap) const;
  /// Per-attempt search effort, reported back to the caller so shrink
  /// probes can attribute their cost (and distinguish a proved UNSAT from
  /// an exhausted budget).
  struct SolveInfo {
    uint64_t Conflicts = 0;
    uint64_t Decisions = 0;
    bool BudgetExhausted = false;
    /// True when the attempt reached the SAT solver (false: settled by an
    /// arithmetic precheck or an empty candidate range).
    bool SatBacked = false;
    /// Winning portfolio lane, -1 outside Portfolio mode.
    int Lane = -1;
  };
  /// One SAT attempt under the given bounds. On success fills
  /// \p Assignment with the chosen candidate per non-fixed cluster. A
  /// nonzero \p ConflictBudget bounds the search (shrinking attempts give
  /// up rather than fight pigeonhole-hard instances). With \p Explain set,
  /// an unsatisfiable attempt is additionally explained: the encoding is
  /// re-emitted with one selector literal per constraint group, the
  /// failed-assumption core is extracted and minimized, and each surviving
  /// group is reported as a named sat:core remark and a
  /// PlacementStats::Core entry.
  enum class Attempt { Sat, Unsat, Error };
  Attempt solveOnce(const Bounds &B, size_t Cap,
                    std::vector<Candidate> &Assignment, std::string &Err,
                    uint64_t ConflictBudget = 0, bool Explain = false,
                    SolveInfo *Info = nullptr);
  /// Records one named core constraint (stats + sat:core remark).
  void noteCore(const std::string &Kind, const std::string &Instr,
                const std::string &Detail);
  /// Selector-tagged re-encoding and core extraction for a proved-UNSAT
  /// attempt; \p Cands holds the enumerated candidates per cluster.
  void explainUnsat(const std::vector<std::vector<Candidate>> &Cands);

  /// Arithmetic infeasibility precheck shared by every solve path: demand
  /// vs capacity within the bounds, and cascade-chain segment capacity.
  /// Returns true (and tags \p Sp) when \p B provably cannot fit.
  bool capacityInfeasible(const Bounds &B, bool Explain, obs::Span &Sp);

  /// Delta-exact accumulation of one solve's effort into PlacementStats.
  /// Takes a Statistics *delta* (After - Before snapshots around the
  /// solve), never cumulative totals — the latter double-count when one
  /// solver is reused across probes.
  void accumulate(const sat::Solver::Statistics &D, bool BudgetHit);

  /// Persistent shrink-search state (Incremental/Portfolio modes): one
  /// encoding built lazily at the first SAT-backed probe and reused —
  /// learned clauses, activities and saved phases included — for every
  /// probe after it. Area bounds are not re-encoded per probe; they are
  /// assumption literals over the Kill ladders below.
  struct Persistent {
    bool Built = false;
    /// The encoding's bounding box. Columns are clamped to the initial
    /// solution's used columns — the binary search never probes above
    /// them, and a device-wide enumeration (63x148 positions per cluster
    /// on xczu3eg) costs more to build and propagate than every scratch
    /// re-encoding combined. Rows stay at full device height: the column
    /// pass probes with the row bound still wide open, and dropping
    /// high-row candidates there would prune layouts scratch mode can
    /// reach.
    Bounds Box{0, 0};
    std::unique_ptr<sat::Solver> Inc;     // Incremental backend
    std::unique_ptr<sat::Portfolio> Port; // Portfolio backend
    /// Full-bounds candidates and their variables, per cluster.
    std::vector<std::vector<Candidate>> Cands;
    std::vector<std::vector<sat::Var>> Vars;
    /// Bound ladders: ColKill[c] means "columns >= c are banned" (same for
    /// rows). Monotone clauses (¬Kill[c] ∨ Kill[c+1]) let a probe ban a
    /// whole suffix by assuming the single literal Kill[B+1]; per-
    /// candidate guards (¬Kill[mx] ∨ ¬cand) kill every candidate whose
    /// footprint reaches a banned column/row. Ladder variables are created
    /// last with saved phase false, so free decisions never tighten a
    /// bound on their own.
    std::vector<sat::Var> ColKill;
    std::vector<sat::Var> RowKill;
    /// Empty-range precheck table: MinRow[I][c] is the smallest row
    /// footprint over cluster I's candidates whose column footprint is
    /// <= c (UINT_MAX: none). Replicates scratch mode's "enumerate came
    /// back empty" verdict without touching the solver, keeping such
    /// probes at zero conflicts/decisions in every mode.
    std::vector<std::vector<unsigned>> MinRow;
    size_t ProblemClauses = 0;
  };

  /// Builds the persistent encoding (enumeration, constraints, ladders,
  /// precheck table) into the mode's backend.
  Status buildPersistent();
  template <typename SolverT> void encodePersistent(SolverT &S);

  /// One shrink probe against the persistent solver: prechecks, then a
  /// bounds-as-assumptions solve on the retained encoding.
  Attempt probe(const Bounds &B, std::vector<Candidate> &Assignment,
                std::string &Err, uint64_t ConflictBudget, SolveInfo *Info);

  const AsmProgram &Prog;
  const device::Device &Dev;
  PlacementOptions Options;
  PlacementStats *Stats;
  const obs::Context &Ctx;

  std::vector<Cluster> Clusters;      // non-fixed
  std::vector<Cluster> FixedClusters; // fully literal
  std::set<device::Slot> FixedSlots;

  size_t FullCapVal = 0; // cap admitting full enumeration, set by run()
  Persistent Persist;
};

Status Placer::buildClusters() {
  // Union-find over coordinate variables, interned to dense ids; wildcards
  // become fresh variables so every placeable instruction lands in some
  // cluster.
  ir::NameInterner Vars;
  std::vector<ir::ValueId> Parent;
  auto Ensure = [&](const std::string &Name) {
    ir::ValueId Id = Vars.intern(Name);
    if (Id == Parent.size())
      Parent.push_back(Id);
    return Id;
  };
  auto Find = [&](ir::ValueId Id) {
    while (Parent[Id] != Id)
      Id = Parent[Id] = Parent[Parent[Id]];
    return Id;
  };
  auto Unite = [&](ir::ValueId A, ir::ValueId B) {
    Parent[Find(A)] = Find(B);
  };

  unsigned Fresh = 0;
  struct NormInstr {
    size_t BodyIndex;
    ir::Resource Prim;
    Coord X, Y;
  };
  std::vector<NormInstr> Instrs;
  for (size_t I = 0; I < Prog.body().size(); ++I) {
    const AsmInstr &A = Prog.body()[I];
    if (A.isWire())
      continue;
    Coord X = A.loc().X;
    Coord Y = A.loc().Y;
    if (X.isWild())
      X = Coord::var("$x" + std::to_string(Fresh++));
    if (Y.isWild())
      Y = Coord::var("$y" + std::to_string(Fresh++));
    ir::ValueId XId = X.isVar() ? Ensure(X.name()) : ir::InvalidValueId;
    ir::ValueId YId = Y.isVar() ? Ensure(Y.name()) : ir::InvalidValueId;
    if (XId != ir::InvalidValueId && YId != ir::InvalidValueId)
      Unite(XId, YId);
    Instrs.push_back({I, A.loc().Prim, X, Y});
  }

  // Group by representative id; fully literal instructions form fixed
  // singleton clusters. Cluster indices follow first-seen scan order.
  std::vector<size_t> GroupOf(Parent.size(), SIZE_MAX);
  for (const NormInstr &N : Instrs) {
    if (!N.X.isVar() && !N.Y.isVar()) {
      Cluster C;
      C.Prim = N.Prim;
      C.Members.push_back({N.BodyIndex, N.X, N.Y});
      FixedClusters.push_back(std::move(C));
      continue;
    }
    ir::ValueId Rep =
        Find(Vars.lookup(N.X.isVar() ? N.X.name() : N.Y.name()));
    if (GroupOf[Rep] == SIZE_MAX) {
      GroupOf[Rep] = Clusters.size();
      Clusters.emplace_back();
    }
    Cluster &C = Clusters[GroupOf[Rep]];
    if (C.Members.empty())
      C.Prim = N.Prim;
    if (C.Prim != N.Prim)
      return Status::failure(
          "instructions sharing coordinate variables must use one "
          "primitive kind (cluster mixes lut and dsp)");
    // At most one distinct variable per axis within a cluster.
    if (N.X.isVar()) {
      if (!C.XVar)
        C.XVar = N.X.name();
      else if (*C.XVar != N.X.name())
        return Status::failure("cluster uses two distinct column variables "
                               "('" + *C.XVar + "' and '" + N.X.name() +
                               "'); this layout constraint is unsupported");
    }
    if (N.Y.isVar()) {
      if (!C.YVar)
        C.YVar = N.Y.name();
      else if (*C.YVar != N.Y.name())
        return Status::failure("cluster uses two distinct row variables "
                               "('" + *C.YVar + "' and '" + N.Y.name() +
                               "'); this layout constraint is unsupported");
    }
    C.Members.push_back({N.BodyIndex, N.X, N.Y});
  }

  // Fixed clusters occupy slots up front.
  for (const Cluster &C : FixedClusters) {
    const Member &M = C.Members[0];
    device::Slot S;
    if (!memberSlot(M, 0, 0, S) ||
        !Dev.isValidSlot(C.Prim, S.X, S.Y))
      return Status::failure(
          "pinned location " + Prog.body()[M.BodyIndex].loc().str() +
          " is not a valid " + ir::resourceName(C.Prim) + " slot on device '" +
          Dev.name() + "'");
    if (!FixedSlots.insert(S).second)
      return Status::failure("two instructions pinned to one slot");
  }
  return Status::success();
}

Result<std::vector<Candidate>>
Placer::enumerate(const Cluster &C, const Bounds &B, size_t Cap) const {
  std::vector<Candidate> Out;
  // Column (x) base values to try: all usable columns when XVar is free,
  // else the single value 0 (unused).
  unsigned NumCols = std::min<unsigned>(Dev.numColumns(), B.MaxColumn + 1);
  unsigned MaxRows = std::min<unsigned>(Dev.maxHeight(C.Prim), B.MaxRow + 1);
  std::vector<int64_t> XBases;
  if (C.XVar) {
    for (unsigned X = 0; X < NumCols; ++X)
      XBases.push_back(X);
  } else {
    XBases.push_back(0);
  }
  std::vector<int64_t> YBases;
  if (C.YVar) {
    for (unsigned Y = 0; Y < MaxRows; ++Y)
      YBases.push_back(Y);
  } else {
    YBases.push_back(0);
  }
  for (int64_t XB : XBases) {
    for (int64_t YB : YBases) {
      Candidate Cand;
      Cand.XBase = XB;
      Cand.YBase = YB;
      bool Ok = true;
      for (const Member &M : C.Members) {
        device::Slot S;
        if (!memberSlot(M, XB, YB, S) || S.X > B.MaxColumn ||
            S.Y > B.MaxRow || !Dev.isValidSlot(C.Prim, S.X, S.Y) ||
            FixedSlots.count(S)) {
          Ok = false;
          break;
        }
        Cand.Slots.push_back(S);
      }
      if (!Ok)
        continue;
      Out.push_back(std::move(Cand));
      if (Out.size() >= Cap)
        return Out;
    }
  }
  return Out;
}

void Placer::noteCore(const std::string &Kind, const std::string &Instr,
                      const std::string &Detail) {
  if (Stats)
    Stats->Core.push_back({Kind, Instr, Detail});
  if (Ctx.remarksEnabled())
    obs::Remark(Ctx, "sat", "core")
        .instr(Instr)
        .message("unsat core: " + Detail)
        .arg("constraint", Kind)
        .arg("device", Dev.name());
}

bool Placer::capacityInfeasible(const Bounds &B, bool Explain,
                                obs::Span &Sp) {
  // Capacity precheck: SAT needs no help recognizing that N instructions
  // cannot fit N-1 slots, but resolution proofs of pigeonhole formulas are
  // exponential, so rule the case out arithmetically first.
  std::map<ir::Resource, size_t> Demand;
  for (const Cluster &C : Clusters)
    Demand[C.Prim] += C.Members.size();
  // Tall clusters (cascade chains) need that many *consecutive* rows in
  // one column; bound the number of placeable tall clusters per kind by
  // the shortest chain height. This is a sound relaxation that rejects
  // the pigeonhole-shaped shrink probes arithmetically.
  std::map<ir::Resource, std::pair<size_t, unsigned>> TallClusters;
  for (const Cluster &C : Clusters) {
    int64_t MinDy = 0, MaxDy = 0;
    bool First = true;
    for (const Member &M : C.Members) {
      if (!M.Y.isVar())
        continue;
      if (First) {
        MinDy = MaxDy = M.Y.offset();
        First = false;
      } else {
        MinDy = std::min(MinDy, M.Y.offset());
        MaxDy = std::max(MaxDy, M.Y.offset());
      }
    }
    unsigned Height = First ? 1 : static_cast<unsigned>(MaxDy - MinDy + 1);
    if (Height < 2)
      continue;
    auto &[Count, MinHeight] = TallClusters[C.Prim];
    ++Count;
    MinHeight = Count == 1 ? Height : std::min(MinHeight, Height);
  }
  for (auto &[Kind, Need] : Demand) {
    size_t Capacity = 0;
    size_t SegmentCapacity = 0;
    unsigned MinHeight = 1;
    size_t TallNeed = 0;
    if (auto It = TallClusters.find(Kind); It != TallClusters.end()) {
      TallNeed = It->second.first;
      MinHeight = It->second.second;
    }
    unsigned NumCols = std::min<unsigned>(Dev.numColumns(), B.MaxColumn + 1);
    for (unsigned X = 0; X < NumCols; ++X) {
      const device::Column &Col = Dev.columns()[X];
      if (Col.Kind != Kind)
        continue;
      unsigned Rows = std::min<unsigned>(Col.Height, B.MaxRow + 1);
      Capacity += Rows;
      SegmentCapacity += Rows / MinHeight;
    }
    for (const device::Slot &S : FixedSlots)
      if (S.X <= B.MaxColumn && S.Y <= B.MaxRow &&
          Dev.columns()[S.X].Kind == Kind)
        --Capacity;
    if (Need > Capacity || TallNeed > SegmentCapacity) {
      Sp.arg("outcome", "precheck_unsat");
      if (Explain) {
        // Name the resource and a representative demanding instruction so
        // the explanation points back into the program.
        std::string Instr;
        for (const Cluster &C : Clusters)
          if (C.Prim == Kind) {
            Instr = Prog.body()[C.Members.front().BodyIndex].dst();
            break;
          }
        std::string Detail =
            Need > Capacity
                ? "demand for " + std::to_string(Need) + " " +
                      std::string(ir::resourceName(Kind)) +
                      " slot(s) exceeds the " + std::to_string(Capacity) +
                      " available within columns <= " +
                      std::to_string(B.MaxColumn) + ", rows <= " +
                      std::to_string(B.MaxRow) + " on device '" + Dev.name() +
                      "'"
                : std::to_string(TallNeed) + " cascade chain(s) of height >= " +
                      std::to_string(MinHeight) + " need " +
                      std::to_string(TallNeed) +
                      " consecutive-row segment(s) but only " +
                      std::to_string(SegmentCapacity) + " fit in " +
                      std::string(ir::resourceName(Kind)) +
                      " columns <= " + std::to_string(B.MaxColumn) +
                      ", rows <= " + std::to_string(B.MaxRow);
        noteCore("capacity", Instr, Detail);
      }
      return true;
    }
  }
  return false;
}

Placer::Attempt Placer::solveOnce(const Bounds &B, size_t Cap,
                                  std::vector<Candidate> &Assignment,
                                  std::string &Err,
                                  uint64_t ConflictBudget, bool Explain,
                                  SolveInfo *Info) {
  if (Info)
    *Info = {};
  obs::Span Sp(Ctx, "place.solve");
  Sp.arg("max_col", B.MaxColumn);
  Sp.arg("max_row", B.MaxRow);
  Sp.arg("cap", static_cast<uint64_t>(Cap));
  Sp.arg("clusters", static_cast<uint64_t>(Clusters.size()));
  if (capacityInfeasible(B, Explain, Sp))
    return Attempt::Unsat;

  sat::Solver S(Ctx);
  if (Options.Proof)
    S.setProof(Options.Proof);
  // SAT variables per (cluster, candidate).
  std::vector<std::vector<Candidate>> Cands(Clusters.size());
  std::vector<std::vector<sat::Var>> Vars(Clusters.size());
  std::map<device::Slot, std::vector<sat::Lit>> SlotUsers;

  for (size_t I = 0; I < Clusters.size(); ++I) {
    Result<std::vector<Candidate>> E = enumerate(Clusters[I], B, Cap);
    if (!E) {
      Err = E.error();
      return Attempt::Error;
    }
    Cands[I] = E.take();
    if (Cands[I].empty()) {
      Sp.arg("outcome", "no_candidates");
      if (Explain) {
        const Cluster &C = Clusters[I];
        noteCore("range",
                 Prog.body()[C.Members.front().BodyIndex].dst(),
                 "cluster of " + std::to_string(C.Members.size()) + " " +
                     std::string(ir::resourceName(C.Prim)) +
                     " instruction(s) has no valid base position within "
                     "columns <= " +
                     std::to_string(B.MaxColumn) + ", rows <= " +
                     std::to_string(B.MaxRow) + " on device '" + Dev.name() +
                     "'");
      }
      return Attempt::Unsat; // no feasible base under these bounds
    }
    std::vector<sat::Lit> Lits;
    for (const Candidate &Cand : Cands[I]) {
      sat::Var V = S.newVar();
      Vars[I].push_back(V);
      Lits.push_back(sat::Lit(V));
      for (const device::Slot &Slot : Cand.Slots)
        SlotUsers[Slot].push_back(sat::Lit(V));
    }
    // Exactly one candidate per cluster.
    if (!S.addClause(Lits))
      return Attempt::Unsat;
    addAtMostOne(S, Lits);
  }
  // Distinct slots: at most one user per slot. A multi-member cluster may
  // cover one slot with two members only through distinct candidates, so
  // pairwise AMO over candidate literals is exact.
  for (auto &[Slot, Lits] : SlotUsers)
    addAtMostOne(S, Lits);

  if (Stats) {
    ++Stats->Solves;
    Stats->Vars = S.numVars();
    Stats->Clauses = static_cast<unsigned>(S.numClauses());
  }
  Sp.arg("vars", static_cast<uint64_t>(S.numVars()));
  // Snapshot-and-delta accounting: exact whether the solver is fresh (as
  // here) or reused, and immune to the double-count a cumulative
  // `Stats += S.stats()` produces on a persistent solver.
  const sat::Solver::Statistics StatsBefore = S.stats();
  sat::Outcome O = S.solve(ConflictBudget);
  accumulate(sat::Solver::Statistics::delta(S.stats(), StatsBefore),
             O == sat::Outcome::Unknown);
  if (Info) {
    const sat::Solver::SolveProfile &P = S.lastProfile();
    Info->Conflicts = P.Conflicts;
    Info->Decisions = P.Decisions;
    Info->BudgetExhausted = O == sat::Outcome::Unknown;
    Info->SatBacked = true;
  }
  if (O != sat::Outcome::Sat) {
    Sp.arg("outcome", O == sat::Outcome::Unsat ? "unsat" : "budget_exhausted");
    // Explain only a *proved* UNSAT: a budget-exhausted attempt has no
    // refutation to extract a core from.
    if (Explain && O == sat::Outcome::Unsat)
      explainUnsat(Cands);
    return Attempt::Unsat; // Unknown (budget hit) also counts as no-shrink
  }
  Sp.arg("outcome", "sat");

  Assignment.clear();
  Assignment.resize(Clusters.size());
  for (size_t I = 0; I < Clusters.size(); ++I) {
    bool Chosen = false;
    for (size_t K = 0; K < Vars[I].size(); ++K)
      if (S.value(Vars[I][K])) {
        Assignment[I] = Cands[I][K];
        Chosen = true;
        break;
      }
    if (!Chosen) {
      Err = "internal error: satisfiable model without a chosen candidate";
      return Attempt::Error;
    }
  }
  return Attempt::Sat;
}

void Placer::accumulate(const sat::Solver::Statistics &D, bool BudgetHit) {
  if (!Stats)
    return;
  Stats->Conflicts += D.Conflicts;
  Stats->Decisions += D.Decisions;
  Stats->Propagations += D.Propagations;
  Stats->Restarts += D.Restarts;
  Stats->Learned += D.Learned;
  Stats->BudgetExhausted += BudgetHit ? 1 : 0;
  Stats->SatMs += D.SolveMs;
  static_assert(sat::Solver::Statistics::HistogramBuckets ==
                std::tuple_size_v<decltype(Stats->LbdHistogram)>);
  for (size_t K = 0; K < D.LbdHistogram.size(); ++K) {
    Stats->LbdHistogram[K] += D.LbdHistogram[K];
    Stats->LearnedSizeHistogram[K] += D.LearnedSizeHistogram[K];
  }
}

/// The column/row footprint a candidate needs: the maximum slot
/// coordinate, widened by the base value on axes the bounds restrict
/// during enumeration (a bound B drops base values > B even when every
/// slot stays within B, and the persistent guards must ban exactly what a
/// bounded re-enumeration would drop).
static std::pair<unsigned, unsigned> candFootprint(const Cluster &C,
                                                   const Candidate &Cand) {
  unsigned MX = 0, MY = 0;
  for (const device::Slot &S : Cand.Slots) {
    MX = std::max(MX, S.X);
    MY = std::max(MY, S.Y);
  }
  if (C.XVar)
    MX = std::max(MX, static_cast<unsigned>(Cand.XBase));
  if (C.YVar)
    MY = std::max(MY, static_cast<unsigned>(Cand.YBase));
  return {MX, MY};
}

template <typename SolverT> void Placer::encodePersistent(SolverT &S) {
  // Identical constraint order to solveOnce's per-probe encoding: cluster
  // candidate variables with exactly-one + at-most-one, then slot
  // exclusivity. A bounded probe's encoding is this one minus the killed
  // candidates, and the kill guards propagate those false before any free
  // decision, so the persistent solver explores the same restricted space.
  std::map<device::Slot, std::vector<sat::Lit>> SlotUsers;
  Persist.Vars.assign(Clusters.size(), {});
  for (size_t I = 0; I < Clusters.size(); ++I) {
    std::vector<sat::Lit> Lits;
    for (const Candidate &Cand : Persist.Cands[I]) {
      sat::Var V = S.newVar();
      Persist.Vars[I].push_back(V);
      Lits.push_back(sat::Lit(V));
      for (const device::Slot &Slot : Cand.Slots)
        SlotUsers[Slot].push_back(sat::Lit(V));
    }
    S.addClause(Lits);
    addAtMostOne(S, Lits);
  }
  for (auto &[Slot, Lits] : SlotUsers)
    addAtMostOne(S, Lits);

  // Bound ladders, created after every candidate/auxiliary variable so
  // free decisions reach them last, pinned to phase false so an unassumed
  // ladder never tightens a bound on its own.
  Persist.ColKill.clear();
  Persist.RowKill.clear();
  for (unsigned C = 0; C <= Persist.Box.MaxColumn; ++C) {
    sat::Var V = S.newVar();
    S.setPhase(V, false);
    Persist.ColKill.push_back(V);
  }
  for (unsigned R = 0; R <= Persist.Box.MaxRow; ++R) {
    sat::Var V = S.newVar();
    S.setPhase(V, false);
    Persist.RowKill.push_back(V);
  }
  // Monotone: banning columns >= c bans columns >= c+1.
  for (size_t C = 0; C + 1 < Persist.ColKill.size(); ++C)
    S.addBinary(~sat::Lit(Persist.ColKill[C]), sat::Lit(Persist.ColKill[C + 1]));
  for (size_t R = 0; R + 1 < Persist.RowKill.size(); ++R)
    S.addBinary(~sat::Lit(Persist.RowKill[R]), sat::Lit(Persist.RowKill[R + 1]));
  // Guards: a candidate dies with the outermost column/row it needs.
  for (size_t I = 0; I < Clusters.size(); ++I)
    for (size_t K = 0; K < Persist.Cands[I].size(); ++K) {
      auto [MX, MY] = candFootprint(Clusters[I], Persist.Cands[I][K]);
      S.addBinary(~sat::Lit(Persist.ColKill[MX]),
                  ~sat::Lit(Persist.Vars[I][K]));
      S.addBinary(~sat::Lit(Persist.RowKill[MY]),
                  ~sat::Lit(Persist.Vars[I][K]));
    }
}

Status Placer::buildPersistent() {
  obs::Span Sp(Ctx, "place.encode.persistent");
  Sp.arg("clusters", static_cast<uint64_t>(Clusters.size()));
  Persist.Cands.assign(Clusters.size(), {});
  for (size_t I = 0; I < Clusters.size(); ++I) {
    Result<std::vector<Candidate>> E =
        enumerate(Clusters[I], Persist.Box, FullCapVal);
    if (!E)
      return Status::failure(E.error());
    Persist.Cands[I] = E.take();
    if (Persist.Cands[I].empty())
      return Status::failure(
          "internal error: cluster lost all candidates between the initial "
          "solve and the shrink search");
  }

  // Feasibility table for the empty-range precheck (prefix-min over the
  // column footprint).
  Persist.MinRow.assign(
      Clusters.size(),
      std::vector<unsigned>(Persist.Box.MaxColumn + 1, UINT_MAX));
  for (size_t I = 0; I < Clusters.size(); ++I) {
    std::vector<unsigned> &Row = Persist.MinRow[I];
    for (const Candidate &Cand : Persist.Cands[I]) {
      auto [MX, MY] = candFootprint(Clusters[I], Cand);
      Row[MX] = std::min(Row[MX], MY);
    }
    for (size_t C = 1; C < Row.size(); ++C)
      Row[C] = std::min(Row[C], Row[C - 1]);
  }

  if (Options.Mode == SatMode::Portfolio) {
    sat::Portfolio::Options PO;
    PO.Lanes = Options.PortfolioLanes;
    Persist.Port = std::make_unique<sat::Portfolio>(PO, Ctx);
    if (Options.Proof)
      Persist.Port->setProof(Options.Proof);
    encodePersistent(*Persist.Port);
    Persist.ProblemClauses = Persist.Port->numClauses();
    if (Stats) {
      Stats->Vars = Persist.Port->numVars();
      Stats->Clauses = static_cast<unsigned>(Persist.ProblemClauses);
    }
  } else {
    Persist.Inc = std::make_unique<sat::Solver>(Ctx);
    if (Options.Proof)
      Persist.Inc->setProof(Options.Proof);
    encodePersistent(*Persist.Inc);
    Persist.ProblemClauses = Persist.Inc->numClauses();
    if (Stats) {
      Stats->Vars = Persist.Inc->numVars();
      Stats->Clauses = static_cast<unsigned>(Persist.ProblemClauses);
    }
  }
  if (Stats)
    ++Stats->IncrementalEncodes;
  Ctx.counter("sat.incremental.encodes") += 1;
  Persist.Built = true;
  Sp.arg("clauses", static_cast<uint64_t>(Persist.ProblemClauses));
  return Status::success();
}

Placer::Attempt Placer::probe(const Bounds &B,
                              std::vector<Candidate> &Assignment,
                              std::string &Err, uint64_t ConflictBudget,
                              SolveInfo *Info) {
  if (Info)
    *Info = {};
  obs::Span Sp(Ctx, "place.solve");
  Sp.arg("max_col", B.MaxColumn);
  Sp.arg("max_row", B.MaxRow);
  Sp.arg("cap", static_cast<uint64_t>(FullCapVal));
  Sp.arg("clusters", static_cast<uint64_t>(Clusters.size()));
  if (capacityInfeasible(B, /*Explain=*/false, Sp))
    return Attempt::Unsat;

  if (!Persist.Built)
    if (Status St = buildPersistent(); !St) {
      Err = St.error();
      return Attempt::Error;
    }

  // Empty-range precheck in cluster order, mirroring scratch mode's
  // "enumerate came back empty" verdict: such probes never reach the
  // solver and report zero conflicts/decisions in every mode.
  for (size_t I = 0; I < Clusters.size(); ++I) {
    unsigned C = std::min(B.MaxColumn, Persist.Box.MaxColumn);
    unsigned Need = Persist.MinRow[I][C];
    if (Need == UINT_MAX || Need > B.MaxRow) {
      Sp.arg("outcome", "no_candidates");
      return Attempt::Unsat;
    }
  }

  const bool UsePortfolio = Options.Mode == SatMode::Portfolio;
  size_t TotalClauses =
      UsePortfolio ? Persist.Port->numClauses() : Persist.Inc->numClauses();
  if (Stats) {
    ++Stats->Solves;
    Stats->ReusedClauses += Persist.ProblemClauses;
    Stats->ReusedLearned += TotalClauses - Persist.ProblemClauses;
  }
  Ctx.counter("sat.incremental.reused_clauses") += Persist.ProblemClauses;
  Ctx.counter("sat.incremental.reused_learned") +=
      TotalClauses - Persist.ProblemClauses;
  Sp.arg("vars", static_cast<uint64_t>(UsePortfolio ? Persist.Port->numVars()
                                                    : Persist.Inc->numVars()));

  // The probe's bounds are two assumption literals at most: ban the
  // column/row suffix beyond the tried bound. Everything else — clauses,
  // learned clauses, activities, phases — carries over from prior probes.
  std::vector<sat::Lit> Assumps;
  if (B.MaxColumn < Persist.Box.MaxColumn)
    Assumps.push_back(sat::Lit(Persist.ColKill[B.MaxColumn + 1]));
  if (B.MaxRow < Persist.Box.MaxRow)
    Assumps.push_back(sat::Lit(Persist.RowKill[B.MaxRow + 1]));

  sat::Outcome O;
  sat::Solver::Statistics D;
  if (UsePortfolio) {
    O = Persist.Port->solveWith(Assumps, ConflictBudget);
    D = Persist.Port->lastDelta();
    // SatMs is wall-clock: the race's wall time, not the winner's summed
    // CPU quanta.
    D.SolveMs = Persist.Port->lastProfile().TimeMs;
    if (Info && O != sat::Outcome::Unknown)
      Info->Lane = static_cast<int>(Persist.Port->winnerLane());
  } else {
    const sat::Solver::Statistics StatsBefore = Persist.Inc->stats();
    O = Persist.Inc->solveWith(Assumps, ConflictBudget);
    D = sat::Solver::Statistics::delta(Persist.Inc->stats(), StatsBefore);
  }
  accumulate(D, O == sat::Outcome::Unknown);
  if (Info) {
    Info->Conflicts = D.Conflicts;
    Info->Decisions = D.Decisions;
    Info->BudgetExhausted = O == sat::Outcome::Unknown;
    Info->SatBacked = true;
  }

  // Re-arm the ladder phases: search may have saved a true phase on a
  // kill variable; the next probe must again reach them last and false.
  for (sat::Var V : Persist.ColKill)
    UsePortfolio ? Persist.Port->setPhase(V, false)
                 : Persist.Inc->setPhase(V, false);
  for (sat::Var V : Persist.RowKill)
    UsePortfolio ? Persist.Port->setPhase(V, false)
                 : Persist.Inc->setPhase(V, false);

  if (O != sat::Outcome::Sat) {
    Sp.arg("outcome", O == sat::Outcome::Unsat ? "unsat" : "budget_exhausted");
    return Attempt::Unsat;
  }
  Sp.arg("outcome", "sat");

  Assignment.clear();
  Assignment.resize(Clusters.size());
  for (size_t I = 0; I < Clusters.size(); ++I) {
    bool Chosen = false;
    for (size_t K = 0; K < Persist.Vars[I].size(); ++K) {
      bool Val = UsePortfolio ? Persist.Port->value(Persist.Vars[I][K])
                              : Persist.Inc->value(Persist.Vars[I][K]);
      if (Val) {
        Assignment[I] = Persist.Cands[I][K];
        Chosen = true;
        break;
      }
    }
    if (!Chosen) {
      Err = "internal error: satisfiable model without a chosen candidate";
      return Attempt::Error;
    }
  }
  return Attempt::Sat;
}

void Placer::explainUnsat(const std::vector<std::vector<Candidate>> &Cands) {
  // Re-emit the encoding with one selector literal per constraint group:
  // group clauses become (clause ∨ ¬selector) and the solve assumes every
  // selector, so the failed-assumption core names exactly the groups that
  // refute each other. Per-cluster exclusivity stays hard — relaxing "at
  // most one candidate" never models a real layout, so it cannot explain
  // one.
  obs::Span Sp(Ctx, "place.explain");
  // The extraction solver re-proves UNSAT once plus once per minimization
  // probe; mute its sat:unsat remarks (keeping spans/counters) so the
  // stream carries only the curated sat:core records.
  static obs::RemarkStream MutedRemarks;
  obs::Context Quiet{Ctx.Telem, &MutedRemarks};
  sat::Solver S(Quiet);
  struct Group {
    std::string Kind;
    std::string Instr;
    std::string Detail;
  };
  std::vector<Group> Groups;
  std::vector<sat::Lit> Selectors;
  std::map<uint32_t, size_t> GroupOfVar;
  auto MakeSelector = [&](std::string Kind, std::string Instr,
                          std::string Detail) {
    sat::Var V = S.newVar();
    GroupOfVar[V] = Groups.size();
    Groups.push_back({std::move(Kind), std::move(Instr), std::move(Detail)});
    Selectors.push_back(sat::Lit(V));
    return sat::Lit(V);
  };

  std::map<device::Slot, std::vector<sat::Lit>> SlotUsers;
  std::map<device::Slot, size_t> SlotFirstCluster;
  for (size_t I = 0; I < Clusters.size(); ++I) {
    const Cluster &C = Clusters[I];
    std::vector<sat::Lit> Lits;
    for (const Candidate &Cand : Cands[I]) {
      sat::Var V = S.newVar();
      Lits.push_back(sat::Lit(V));
      for (const device::Slot &Slot : Cand.Slots) {
        SlotUsers[Slot].push_back(sat::Lit(V));
        SlotFirstCluster.try_emplace(Slot, I);
      }
    }
    // The cluster's row span mirrors its relative adjacency constraints
    // (e.g. a cascade chain at (x, y) .. (x, y+k)).
    int64_t MinDy = 0, MaxDy = 0;
    for (const Member &M : C.Members)
      if (M.Y.isVar()) {
        MinDy = std::min(MinDy, M.Y.offset());
        MaxDy = std::max(MaxDy, M.Y.offset());
      }
    std::string Rep = Prog.body()[C.Members.front().BodyIndex].dst();
    std::string Detail =
        "cluster of " + std::to_string(C.Members.size()) + " " +
        std::string(ir::resourceName(C.Prim)) + " instruction(s)" +
        (MaxDy > MinDy
             ? " spanning " + std::to_string(MaxDy - MinDy + 1) + " row(s)"
             : "") +
        " must take one of " + std::to_string(Cands[I].size()) +
        " base position(s)";
    sat::Lit Sel = MakeSelector("choose-one", Rep, std::move(Detail));
    std::vector<sat::Lit> Guarded = Lits;
    Guarded.push_back(~Sel);
    S.addClause(std::move(Guarded));
    addAtMostOne(S, Lits);
  }
  for (auto &[Slot, Lits] : SlotUsers) {
    if (Lits.size() <= 1)
      continue; // a sole user can never collide
    size_t FirstCluster = SlotFirstCluster.at(Slot);
    std::string Rep =
        Prog.body()[Clusters[FirstCluster].Members.front().BodyIndex].dst();
    sat::Lit Sel = MakeSelector(
        "distinct", Rep,
        "slot " +
            std::string(ir::resourceName(Dev.columns()[Slot.X].Kind)) + "(" +
            std::to_string(Slot.X) + ", " + std::to_string(Slot.Y) +
            ") admits one instruction but " + std::to_string(Lits.size()) +
            " candidate(s) compete for it");
    addAtMostOne(S, Lits, Sel);
  }

  sat::Outcome O = S.solveWith(Selectors);
  Sp.arg("groups", static_cast<uint64_t>(Groups.size()));
  if (O != sat::Outcome::Unsat)
    return; // defensive: nothing to explain without a refutation
  std::vector<sat::Lit> Core =
      S.minimizeCore(S.unsatCore(), /*ProbeConflictBudget=*/5000);
  Sp.arg("core", static_cast<uint64_t>(Core.size()));
  std::vector<size_t> Indices;
  for (sat::Lit L : Core)
    if (auto It = GroupOfVar.find(L.var()); It != GroupOfVar.end())
      Indices.push_back(It->second);
  std::sort(Indices.begin(), Indices.end());
  for (size_t Idx : Indices)
    noteCore(Groups[Idx].Kind, Groups[Idx].Instr, Groups[Idx].Detail);
}

Result<AsmProgram> Placer::run() {
  ++Ctx.counter("place.runs");
  if (Stats)
    Stats->Mode = Options.Mode;
  if (Status St = buildClusters(); !St)
    return fail<AsmProgram>(St.error());
  Ctx.counter("place.clusters") += Clusters.size();

  Bounds Full{Dev.numColumns() ? Dev.numColumns() - 1 : 0, 0};
  unsigned TallestColumn = std::max(Dev.maxHeight(ir::Resource::Lut),
                                    Dev.maxHeight(ir::Resource::Dsp));
  Full.MaxRow = TallestColumn ? TallestColumn - 1 : 0;

  // First solution: grow the candidate cap until satisfiable or fully
  // enumerated. The initial solve is always from scratch, whatever the
  // shrink mode: it is one solve (nothing to reuse) and it owns the
  // UNSAT-explanation path.
  size_t FullCap = static_cast<size_t>(Dev.numColumns()) * TallestColumn + 1;
  FullCapVal = FullCap;
  size_t Cap = std::max<size_t>(Options.InitialCandidateCap,
                                2 * Clusters.size() + 8);
  std::vector<Candidate> BestAssignment;
  SolveInfo Info;
  while (true) {
    std::string Err;
    if (Options.Proof)
      Options.Proof->comment("place: initial solve, fresh encoding, cap=" +
                             std::to_string(Cap));
    // Once the cap admits full enumeration the attempt is conclusive, so
    // an UNSAT there is worth explaining: solveOnce then extracts and
    // emits the named constraint core.
    Attempt A = solveOnce(Full, Cap, BestAssignment, Err,
                          /*ConflictBudget=*/0, /*Explain=*/Cap >= FullCap,
                          &Info);
    if (A == Attempt::Error)
      return fail<AsmProgram>(Err);
    if (A == Attempt::Sat)
      break;
    if (Cap >= FullCap)
      return fail<AsmProgram>("placement failed: no valid layout for " +
                              std::to_string(Clusters.size()) +
                              " cluster(s) on device '" + Dev.name() + "'");
    Cap = std::min(FullCap, Cap * 4);
  }

  // Timeline frame recorder: every frame carries the accepted layout so
  // far, so the renderer can draw the best-known floorplan under each
  // probe's attempted bound.
  auto RecordFrame = [&](ShrinkProbe::Axis Ax, unsigned Bound,
                         ShrinkProbe::Outcome Oc, const SolveInfo &SI) {
    if (!Stats)
      return;
    ShrinkProbe P;
    P.ProbeAxis = Ax;
    P.Bound = Bound;
    P.Result = Oc;
    P.Conflicts = SI.Conflicts;
    P.Decisions = SI.Decisions;
    P.Lane = SI.Lane;
    for (const Candidate &Cand : BestAssignment)
      for (const device::Slot &S : Cand.Slots)
        P.Slots.push_back(S);
    for (const device::Slot &S : FixedSlots)
      P.Slots.push_back(S);
    for (const device::Slot &S : P.Slots) {
      P.MaxColumn = std::max(P.MaxColumn, S.X);
      P.MaxRow = std::max(P.MaxRow, S.Y);
    }
    Stats->Timeline.push_back(std::move(P));
  };
  RecordFrame(ShrinkProbe::Axis::Initial, 0, ShrinkProbe::Outcome::Sat, Info);
  if (Ctx.remarksEnabled())
    obs::Remark(Ctx, "place", "solve")
        .message("first placement found for " +
                 std::to_string(Clusters.size()) + " cluster(s) on '" +
                 Dev.name() + "' (candidate cap " + std::to_string(Cap) + ")")
        .arg("clusters", static_cast<uint64_t>(Clusters.size()))
        .arg("fixed_clusters", static_cast<uint64_t>(FixedClusters.size()))
        .arg("candidate_cap", static_cast<uint64_t>(Cap))
        .arg("device", Dev.name());

  // Shrinking passes: take the used area as the bound and binary-search a
  // smaller one, re-running placement (Section 5.3). Scratch mode rebuilds
  // the encoding per probe; Incremental/Portfolio probe one persistent
  // solver with bounds as assumptions.
  auto ShrinkT0 = std::chrono::steady_clock::now();
  if (Options.Shrink && !Clusters.empty()) {
    // Bounds needed by the placeable clusters alone. Fixed (pinned) slots
    // are excluded: they are not enumerated, so they may lie outside the
    // shrink window without affecting feasibility.
    auto UsedBounds = [&](const std::vector<Candidate> &Assignment) {
      Bounds B{0, 0};
      for (const Candidate &Cand : Assignment)
        for (const device::Slot &S : Cand.Slots) {
          B.MaxColumn = std::max(B.MaxColumn, S.X);
          B.MaxRow = std::max(B.MaxRow, S.Y);
        }
      return B;
    };
    // The lazily built persistent encoding covers exactly the space the
    // probes below can reach: columns up to the initial solution's used
    // columns (the binary search only ever tries less), rows up to the
    // full device height (the column pass probes with the row bound
    // still open).
    Persist.Box = Bounds{UsedBounds(BestAssignment).MaxColumn, Full.MaxRow};
    Bounds Cur{Full.MaxColumn, Full.MaxRow};

    // Shrink columns, then rows, by binary search (Section 5.3). Columns
    // first: packing into few columns keeps DSP chains near their cascade
    // routing.
    obs::Counter &ShrinkIters = Ctx.counter("place.shrink_iters");
    for (int Axis = 0; Axis < 2; ++Axis) {
      unsigned Low = 0;
      unsigned High = Axis == 0 ? UsedBounds(BestAssignment).MaxColumn
                                : UsedBounds(BestAssignment).MaxRow;
      while (Low < High) {
        unsigned Mid = Low + (High - Low) / 2;
        obs::Span Sp(Ctx, "place.shrink");
        Sp.arg("axis", Axis == 0 ? "col" : "row");
        Sp.arg("bound", Mid);
        ++ShrinkIters;
        if (Stats)
          ++Stats->ShrinkIterations;
        Bounds Try = Cur;
        (Axis == 0 ? Try.MaxColumn : Try.MaxRow) = Mid;
        std::vector<Candidate> Assignment;
        std::string Err;
        if (Options.Proof)
          Options.Proof->comment(
              std::string("place: shrink probe axis=") +
              (Axis == 0 ? "col" : "row") + " bound=" + std::to_string(Mid));
        Attempt A =
            Options.Mode == SatMode::Scratch
                ? solveOnce(Try, FullCap, Assignment, Err,
                            /*ConflictBudget=*/50000, /*Explain=*/false,
                            &Info)
                : probe(Try, Assignment, Err, /*ConflictBudget=*/50000,
                        &Info);
        if (A == Attempt::Error)
          return fail<AsmProgram>(Err);
        if (Stats) {
          if (Info.SatBacked) {
            ++Stats->IncrementalProbes;
            // Scratch re-encodes per SAT-backed probe; the persistent
            // modes count their one build inside buildPersistent().
            if (Options.Mode == SatMode::Scratch)
              ++Stats->IncrementalEncodes;
          } else {
            ++Stats->PrecheckProbes;
          }
        }
        if (Info.SatBacked) {
          Ctx.counter("sat.incremental.probes") += 1;
          if (Options.Mode == SatMode::Scratch)
            Ctx.counter("sat.incremental.encodes") += 1;
        } else {
          Ctx.counter("sat.incremental.precheck_probes") += 1;
        }
        Sp.arg("fits", A == Attempt::Sat ? "yes" : "no");
        const char *OutcomeName = A == Attempt::Sat ? "sat"
                                  : Info.BudgetExhausted ? "budget_exhausted"
                                                         : "unsat";
        // The constraint that stops an area shrink is exactly this UNSAT.
        // Per-probe conflict/decision counts come from the solver's delta
        // profile, which survives budget-exhausted (Unknown) outcomes, so
        // a probe that gave up still reports the work it did.
        if (Ctx.remarksEnabled()) {
          obs::Remark R(Ctx, "place", "shrink-probe");
          R.message(std::string("shrink ") +
                    (Axis == 0 ? "columns" : "rows") + " to <= " +
                    std::to_string(Mid) +
                    (A == Attempt::Sat
                         ? ": SAT, layout fits"
                         : Info.BudgetExhausted
                               ? ": conflict budget exhausted, bound kept"
                               : ": UNSAT, bound kept"))
              .arg("axis", Axis == 0 ? "col" : "row")
              .arg("bound", Mid)
              .arg("outcome", OutcomeName)
              .arg("conflicts", Info.Conflicts)
              .arg("decisions", Info.Decisions);
          // Attribute the probe to the racing lane that decided it; only
          // Portfolio mode has lanes, so the key stays absent elsewhere
          // and single-solver remark streams are unchanged.
          if (Info.Lane >= 0)
            R.arg("lane", static_cast<uint64_t>(Info.Lane));
        }
        if (A == Attempt::Sat) {
          BestAssignment = std::move(Assignment);
          High = std::min(Mid, Axis == 0
                                   ? UsedBounds(BestAssignment).MaxColumn
                                   : UsedBounds(BestAssignment).MaxRow);
        } else {
          Low = Mid + 1;
        }
        RecordFrame(Axis == 0 ? ShrinkProbe::Axis::Column
                              : ShrinkProbe::Axis::Row,
                    Mid,
                    A == Attempt::Sat        ? ShrinkProbe::Outcome::Sat
                    : Info.BudgetExhausted   ? ShrinkProbe::Outcome::Budget
                                             : ShrinkProbe::Outcome::Unsat,
                    Info);
      }
      (Axis == 0 ? Cur.MaxColumn : Cur.MaxRow) = High;
    }
  }
  if (Stats) {
    Stats->ShrinkMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - ShrinkT0)
                          .count();
    if (Persist.Port) {
      const sat::Portfolio::Statistics &PS = Persist.Port->stats();
      Stats->PortfolioRounds = PS.Rounds;
      Stats->PortfolioExported = PS.Exported;
      Stats->PortfolioImported = PS.Imported;
      Stats->PortfolioWins = PS.WinsByLane;
    }
  }

  // Materialize the placed program.
  AsmProgram Placed(Prog.name());
  Placed.inputs() = Prog.inputs();
  Placed.outputs() = Prog.outputs();
  std::vector<device::Slot> SlotOf(Prog.body().size());
  for (size_t I = 0; I < Clusters.size(); ++I) {
    for (size_t K = 0; K < Clusters[I].Members.size(); ++K)
      SlotOf[Clusters[I].Members[K].BodyIndex] = BestAssignment[I].Slots[K];
    // Which column kind each cluster bound to, and where.
    if (Ctx.remarksEnabled() && !BestAssignment[I].Slots.empty()) {
      const device::Slot &Base = BestAssignment[I].Slots.front();
      obs::Remark(Ctx, "place", "bind")
          .instr(Prog.body()[Clusters[I].Members.front().BodyIndex].dst())
          .message("cluster of " +
                   std::to_string(Clusters[I].Members.size()) +
                   " bound to " +
                   std::string(ir::resourceName(Clusters[I].Prim)) +
                   " column " + std::to_string(Base.X) + ", base row " +
                   std::to_string(Base.Y))
          .arg("column_kind", ir::resourceName(Clusters[I].Prim))
          .arg("x", Base.X)
          .arg("y", Base.Y)
          .arg("members", static_cast<uint64_t>(Clusters[I].Members.size()));
    }
  }
  for (const Cluster &C : FixedClusters) {
    device::Slot S;
    memberSlot(C.Members[0], 0, 0, S);
    SlotOf[C.Members[0].BodyIndex] = S;
  }
  unsigned MaxC = 0, MaxR = 0, NumPlaced = 0;
  for (size_t I = 0; I < Prog.body().size(); ++I) {
    const AsmInstr &A = Prog.body()[I];
    if (A.isWire()) {
      Placed.addInstr(A);
      continue;
    }
    device::Slot S = SlotOf[I];
    rasm::Loc L{A.loc().Prim, Coord::lit(S.X), Coord::lit(S.Y)};
    Placed.addInstr(AsmInstr::makeOp(A.dst(), A.type(), A.opName(), A.args(),
                                     std::move(L), A.attrs()));
    MaxC = std::max(MaxC, S.X);
    MaxR = std::max(MaxR, S.Y);
    ++NumPlaced;
    if (Stats) {
      Stats->MaxColumn = std::max(Stats->MaxColumn, S.X);
      Stats->MaxRow = std::max(Stats->MaxRow, S.Y);
    }
  }
  if (Ctx.remarksEnabled())
    obs::Remark(Ctx, "place", "area")
        .message("final bounding box: columns 0.." + std::to_string(MaxC) +
                 ", rows 0.." + std::to_string(MaxR) + " for " +
                 std::to_string(NumPlaced) + " instruction(s) on '" +
                 Dev.name() + "'")
        .arg("max_column", MaxC)
        .arg("max_row", MaxR)
        .arg("placed", NumPlaced)
        .arg("device", Dev.name());
  return Placed;
}

} // namespace

Result<AsmProgram> reticle::place::place(const AsmProgram &Prog,
                                         const device::Device &Dev,
                                         const PlacementOptions &Options,
                                         PlacementStats *Stats,
                                         const obs::Context &Ctx) {
  Placer P(Prog, Dev, Options, Stats, Ctx);
  return P.run();
}

Status reticle::place::checkPlacement(const AsmProgram &Original,
                                      const AsmProgram &Placed,
                                      const device::Device &Dev) {
  if (Original.body().size() != Placed.body().size())
    return Status::failure("instruction count changed during placement");

  std::set<device::Slot> Used;
  // One interner per axis maps coordinate variables to dense ids; the
  // resolved base per variable lives in a flat vector alongside it.
  ir::NameInterner XVars, YVars;
  std::vector<std::optional<int64_t>> VarX, VarY;
  for (size_t I = 0; I < Original.body().size(); ++I) {
    const AsmInstr &O = Original.body()[I];
    const AsmInstr &P = Placed.body()[I];
    if (O.isWire() != P.isWire())
      return Status::failure("instruction kind changed during placement");
    if (O.isWire())
      continue;
    if (!P.loc().X.isLit() || !P.loc().Y.isLit())
      return Status::failure("unresolved coordinate in '" + P.str() + "'");
    int64_t X = P.loc().X.offset();
    int64_t Y = P.loc().Y.offset();
    if (X < 0 || Y < 0 ||
        !Dev.isValidSlot(O.loc().Prim, static_cast<unsigned>(X),
                         static_cast<unsigned>(Y)))
      return Status::failure("'" + P.str() + "' is placed on an invalid " +
                             std::string(ir::resourceName(O.loc().Prim)) +
                             " slot");
    device::Slot S{static_cast<unsigned>(X), static_cast<unsigned>(Y)};
    if (!Used.insert(S).second)
      return Status::failure("two instructions share slot (" +
                             std::to_string(X) + ", " + std::to_string(Y) +
                             ")");
    // Literal pins and relative variable constraints.
    auto CheckAxis = [&](const Coord &C, int64_t Value,
                         ir::NameInterner &Vars,
                         std::vector<std::optional<int64_t>> &Bases)
        -> Status {
      if (C.isLit() && C.offset() != Value)
        return Status::failure("pinned coordinate changed in '" + P.str() +
                               "'");
      if (C.isVar()) {
        int64_t Base = Value - C.offset();
        ir::ValueId Id = Vars.intern(C.name());
        if (Id == Bases.size())
          Bases.emplace_back();
        if (!Bases[Id])
          Bases[Id] = Base;
        else if (*Bases[Id] != Base)
          return Status::failure("relative constraint on '" + C.name() +
                                 "' violated in '" + P.str() + "'");
      }
      return Status::success();
    };
    if (Status St = CheckAxis(O.loc().X, X, XVars, VarX); !St)
      return St;
    if (Status St = CheckAxis(O.loc().Y, Y, YVars, VarY); !St)
      return St;
  }
  return Status::success();
}
