//===- place/Floorplan.cpp - Placement floorplan rendering ----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "place/Floorplan.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <tuple>
#include <string>
#include <vector>

using namespace reticle;
using namespace reticle::place;
using rasm::AsmInstr;
using rasm::AsmProgram;

namespace {

/// One placed primitive, resolved to a literal slot.
struct Placed {
  const AsmInstr *Instr = nullptr;
  unsigned X = 0;
  unsigned Y = 0;
};

/// True for the cascade-variant operations Cascade.cpp produces; such an
/// instruction at (x, y) feeds (or is fed by) its vertical neighbour over
/// the dedicated cascade routing.
bool isCascadeOp(const AsmInstr &I) {
  const std::string &Name = I.opName();
  auto EndsWith = [&](const char *Suffix) {
    size_t N = std::string(Suffix).size();
    return Name.size() >= N && Name.compare(Name.size() - N, N, Suffix) == 0;
  };
  return EndsWith("_co") || EndsWith("_cio") || EndsWith("_ci");
}

/// True when the cascade member at (x, y) drives the member above it
/// (heads `_co` and middles `_cio` drive upward; tails `_ci` only
/// receive).
bool drivesUpward(const AsmInstr &I) {
  const std::string &Name = I.opName();
  return Name.size() >= 3 && (Name.compare(Name.size() - 3, 3, "_co") == 0 ||
                              Name.compare(Name.size() - 4, 4, "_cio") == 0);
}

std::vector<Placed> collectPlaced(const AsmProgram &Prog) {
  std::vector<Placed> Out;
  for (const AsmInstr &I : Prog.body()) {
    if (I.isWire() || !I.loc().X.isLit() || !I.loc().Y.isLit())
      continue;
    if (I.loc().X.offset() < 0 || I.loc().Y.offset() < 0)
      continue;
    Out.push_back({&I, static_cast<unsigned>(I.loc().X.offset()),
                   static_cast<unsigned>(I.loc().Y.offset())});
  }
  return Out;
}

std::string xmlEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out.push_back(C);
    }
  }
  return Out;
}

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
}

// Validated light-mode palette (see docs/OBSERVABILITY.md): blue for LUT
// columns, orange for DSP columns, violet for cascade links; tints for the
// column backgrounds, text inks for labels.
constexpr const char *SurfaceColor = "#fcfcfb";
constexpr const char *TextPrimary = "#0b0b0b";
constexpr const char *TextSecondary = "#52514e";
constexpr const char *GridStroke = "#d9d8d3";
constexpr const char *LutFill = "#2a78d6";
constexpr const char *LutTint = "#cde2fb";
constexpr const char *DspFill = "#eb6834";
constexpr const char *DspTint = "#fbddcf";
constexpr const char *CascadeStroke = "#4a3aa7";
// Timeline frame outcome accents: green for accepted (SAT) probes, red for
// refuted (UNSAT) ones, amber for budget-exhausted giveups.
constexpr const char *SatStroke = "#2e7d32";
constexpr const char *UnsatStroke = "#c62828";
constexpr const char *BudgetStroke = "#b26a00";

} // namespace

std::string reticle::place::floorplanSvg(const AsmProgram &Prog,
                                         const device::Device &Dev) {
  const std::vector<Placed> Cells = collectPlaced(Prog);
  std::map<std::pair<unsigned, unsigned>, const AsmInstr *> At;
  unsigned MaxUsedRow = 0;
  for (const Placed &P : Cells) {
    At[{P.X, P.Y}] = P.Instr;
    MaxUsedRow = std::max(MaxUsedRow, P.Y);
  }

  unsigned Rows = 1;
  for (const device::Column &C : Dev.columns())
    Rows = std::max(Rows, C.Height);

  // Geometry: row 0 on the bottom; a slim header band for title + legend.
  constexpr unsigned CellW = 26, CellH = 12, ColGap = 2;
  constexpr unsigned MarginL = 34, MarginB = 22, HeaderH = 46;
  unsigned NumCols = std::max(1u, Dev.numColumns());
  unsigned Width = MarginL + NumCols * (CellW + ColGap) + 12;
  unsigned Height = HeaderH + Rows * CellH + MarginB;
  auto CellX = [&](unsigned X) { return MarginL + X * (CellW + ColGap); };
  auto CellY = [&](unsigned Y) { return HeaderH + (Rows - 1 - Y) * CellH; };

  std::string Out;
  appendf(Out,
          "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%u\" "
          "height=\"%u\" viewBox=\"0 0 %u %u\" font-family=\"system-ui, "
          "sans-serif\">\n",
          Width, Height, Width, Height);
  appendf(Out, "<rect width=\"%u\" height=\"%u\" fill=\"%s\"/>\n", Width,
          Height, SurfaceColor);

  // Title and legend.
  appendf(Out,
          "<text x=\"%u\" y=\"16\" font-size=\"12\" font-weight=\"600\" "
          "fill=\"%s\">floorplan: %s on %s</text>\n",
          MarginL, TextPrimary, xmlEscape(Prog.name()).c_str(),
          xmlEscape(Dev.name()).c_str());
  unsigned LegendY = 30;
  appendf(Out, "<rect x=\"%u\" y=\"%u\" width=\"10\" height=\"10\" rx=\"2\" "
               "fill=\"%s\"/>\n",
          MarginL, LegendY, LutFill);
  appendf(Out,
          "<text x=\"%u\" y=\"%u\" font-size=\"10\" fill=\"%s\">lut</text>\n",
          MarginL + 14, LegendY + 9, TextSecondary);
  appendf(Out, "<rect x=\"%u\" y=\"%u\" width=\"10\" height=\"10\" rx=\"2\" "
               "fill=\"%s\"/>\n",
          MarginL + 44, LegendY, DspFill);
  appendf(Out,
          "<text x=\"%u\" y=\"%u\" font-size=\"10\" fill=\"%s\">dsp</text>\n",
          MarginL + 58, LegendY + 9, TextSecondary);
  appendf(Out,
          "<line x1=\"%u\" y1=\"%u\" x2=\"%u\" y2=\"%u\" stroke=\"%s\" "
          "stroke-width=\"2\"/>\n",
          MarginL + 90, LegendY + 5, MarginL + 102, LegendY + 5,
          CascadeStroke);
  appendf(Out,
          "<text x=\"%u\" y=\"%u\" font-size=\"10\" fill=\"%s\">cascade"
          "</text>\n",
          MarginL + 106, LegendY + 9, TextSecondary);

  // Column backgrounds, tinted by resource kind, sized to column height.
  for (unsigned X = 0; X < Dev.numColumns(); ++X) {
    const device::Column &C = Dev.columns()[X];
    if (C.Height == 0)
      continue;
    bool IsDsp = C.Kind == ir::Resource::Dsp;
    appendf(Out,
            "<rect x=\"%u\" y=\"%u\" width=\"%u\" height=\"%u\" rx=\"2\" "
            "fill=\"%s\" stroke=\"%s\" stroke-width=\"0.5\"/>\n",
            CellX(X), CellY(C.Height - 1), CellW, C.Height * CellH,
            IsDsp ? DspTint : LutTint, GridStroke);
    // Column index along the bottom axis, thinned on wide devices.
    if (Dev.numColumns() <= 16 || X % 5 == 0)
      appendf(Out,
              "<text x=\"%u\" y=\"%u\" font-size=\"8\" fill=\"%s\" "
              "text-anchor=\"middle\">%u</text>\n",
              CellX(X) + CellW / 2, HeaderH + Rows * CellH + 12,
              TextSecondary, X);
  }
  // Row axis labels on the left, thinned on tall devices.
  for (unsigned Y = 0; Y < Rows; ++Y)
    if (Rows <= 20 || Y % 10 == 0)
      appendf(Out,
              "<text x=\"%u\" y=\"%u\" font-size=\"8\" fill=\"%s\" "
              "text-anchor=\"end\">%u</text>\n",
              MarginL - 4, CellY(Y) + CellH - 3, TextSecondary, Y);

  // Placed primitives: a filled cell per instruction, with the result name
  // as the label and the full instruction text as the hover title.
  for (const Placed &P : Cells) {
    bool IsDsp = P.Instr->loc().Prim == ir::Resource::Dsp;
    appendf(Out,
            "<rect x=\"%u\" y=\"%u\" width=\"%u\" height=\"%u\" rx=\"2\" "
            "fill=\"%s\" stroke=\"%s\" stroke-width=\"1\">"
            "<title>%s</title></rect>\n",
            CellX(P.X) + 1, CellY(P.Y) + 1, CellW - 2, CellH - 2,
            IsDsp ? DspFill : LutFill, SurfaceColor,
            xmlEscape(P.Instr->str()).c_str());
    std::string Label = P.Instr->dst();
    if (Label.size() > 4)
      Label.resize(4);
    appendf(Out,
            "<text x=\"%u\" y=\"%u\" font-size=\"7\" fill=\"%s\" "
            "text-anchor=\"middle\">%s</text>\n",
            CellX(P.X) + CellW / 2, CellY(P.Y) + CellH - 4, SurfaceColor,
            xmlEscape(Label).c_str());
  }

  // Cascade adjacency: a link from each driving member to the member one
  // row up in the same column.
  for (const Placed &P : Cells) {
    if (!isCascadeOp(*P.Instr) || !drivesUpward(*P.Instr))
      continue;
    auto Up = At.find({P.X, P.Y + 1});
    if (Up == At.end() || !isCascadeOp(*Up->second))
      continue;
    unsigned Cx = CellX(P.X) + CellW / 2;
    appendf(Out,
            "<line x1=\"%u\" y1=\"%u\" x2=\"%u\" y2=\"%u\" stroke=\"%s\" "
            "stroke-width=\"2\" stroke-linecap=\"round\"/>\n",
            Cx, CellY(P.Y) + CellH / 2, Cx, CellY(P.Y + 1) + CellH / 2,
            CascadeStroke);
  }

  Out += "</svg>\n";
  return Out;
}

std::string reticle::place::floorplanTimelineSvg(const AsmProgram &Prog,
                                                 const device::Device &Dev,
                                                 const PlacementStats &Stats) {
  const std::vector<ShrinkProbe> &Frames = Stats.Timeline;

  unsigned Rows = 1;
  for (const device::Column &C : Dev.columns())
    Rows = std::max(Rows, C.Height);
  unsigned NumCols = std::max(1u, Dev.numColumns());

  // Small-multiple geometry: mini cells, up to six frames per band.
  constexpr unsigned MiniW = 7, MiniH = 4, ColGap = 1;
  constexpr unsigned HeaderH = 24, CaptionH = 24, FrameGap = 10;
  constexpr unsigned PerBand = 6;
  unsigned GridW = NumCols * (MiniW + ColGap);
  unsigned FrameW = std::max(84u, GridW + 8);
  unsigned FrameH = Rows * MiniH + CaptionH + 6;
  size_t NumFrames = std::max<size_t>(1, Frames.size());
  unsigned Bands = static_cast<unsigned>((NumFrames + PerBand - 1) / PerBand);
  unsigned Width =
      12 + static_cast<unsigned>(std::min<size_t>(NumFrames, PerBand)) *
               (FrameW + FrameGap);
  unsigned Height = HeaderH + Bands * (FrameH + FrameGap) + 8;

  std::string Out;
  appendf(Out,
          "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%u\" "
          "height=\"%u\" viewBox=\"0 0 %u %u\" font-family=\"system-ui, "
          "sans-serif\">\n",
          Width, Height, Width, Height);
  appendf(Out, "<rect width=\"%u\" height=\"%u\" fill=\"%s\"/>\n", Width,
          Height, SurfaceColor);
  appendf(Out,
          "<text x=\"12\" y=\"15\" font-size=\"12\" font-weight=\"600\" "
          "fill=\"%s\">shrink timeline: %s on %s (%zu frame(s))</text>\n",
          TextPrimary, xmlEscape(Prog.name()).c_str(),
          xmlEscape(Dev.name()).c_str(), Frames.size());
  if (Frames.empty()) {
    appendf(Out,
            "<text x=\"12\" y=\"%u\" font-size=\"10\" fill=\"%s\">no "
            "placement timeline recorded (no placeable instructions or "
            "shrinking disabled)</text>\n",
            HeaderH + 12, TextSecondary);
    Out += "</svg>\n";
    return Out;
  }

  for (size_t F = 0; F < Frames.size(); ++F) {
    const ShrinkProbe &P = Frames[F];
    unsigned Tx = 12 + static_cast<unsigned>(F % PerBand) * (FrameW + FrameGap);
    unsigned Ty =
        HeaderH + static_cast<unsigned>(F / PerBand) * (FrameH + FrameGap);
    const char *Accent = P.Result == ShrinkProbe::Outcome::Sat ? SatStroke
                         : P.Result == ShrinkProbe::Outcome::Unsat
                             ? UnsatStroke
                             : BudgetStroke;
    appendf(Out, "<g class=\"frame\" transform=\"translate(%u, %u)\">\n", Tx,
            Ty);
    appendf(Out,
            "<rect x=\"0\" y=\"0\" width=\"%u\" height=\"%u\" rx=\"3\" "
            "fill=\"none\" stroke=\"%s\" stroke-width=\"1\"/>\n",
            FrameW, FrameH, Accent);

    // Mini grid: column tints, then the accepted layout's occupied slots.
    unsigned GridTop = 4;
    auto MiniX = [&](unsigned X) { return 4 + X * (MiniW + ColGap); };
    auto MiniY = [&](unsigned Y) { return GridTop + (Rows - 1 - Y) * MiniH; };
    for (unsigned X = 0; X < Dev.numColumns(); ++X) {
      const device::Column &C = Dev.columns()[X];
      if (C.Height == 0)
        continue;
      appendf(Out,
              "<rect x=\"%u\" y=\"%u\" width=\"%u\" height=\"%u\" "
              "fill=\"%s\"/>\n",
              MiniX(X), MiniY(C.Height - 1), MiniW, C.Height * MiniH,
              C.Kind == ir::Resource::Dsp ? DspTint : LutTint);
    }
    for (const device::Slot &S : P.Slots) {
      if (S.X >= Dev.numColumns())
        continue;
      bool IsDsp = Dev.columns()[S.X].Kind == ir::Resource::Dsp;
      appendf(Out,
              "<rect x=\"%u\" y=\"%u\" width=\"%u\" height=\"%u\" "
              "fill=\"%s\"/>\n",
              MiniX(S.X), MiniY(S.Y), MiniW, MiniH,
              IsDsp ? DspFill : LutFill);
    }
    // The attempted bound as a dashed overlay over the allowed region.
    if (P.ProbeAxis != ShrinkProbe::Axis::Initial) {
      unsigned BCols = P.ProbeAxis == ShrinkProbe::Axis::Column
                           ? std::min(P.Bound, NumCols - 1)
                           : NumCols - 1;
      unsigned BRows = P.ProbeAxis == ShrinkProbe::Axis::Row
                           ? std::min(P.Bound, Rows - 1)
                           : Rows - 1;
      appendf(Out,
              "<rect x=\"%u\" y=\"%u\" width=\"%u\" height=\"%u\" "
              "fill=\"none\" stroke=\"%s\" stroke-width=\"1\" "
              "stroke-dasharray=\"2,2\"/>\n",
              MiniX(0), MiniY(BRows), (BCols + 1) * (MiniW + ColGap) - ColGap,
              (BRows + 1) * MiniH, Accent);
    }

    // Caption: probe ordinal, what was tried, how it went, and the search
    // effort it cost.
    std::string What;
    if (P.ProbeAxis == ShrinkProbe::Axis::Initial)
      What = "initial";
    else
      What = std::string(P.ProbeAxis == ShrinkProbe::Axis::Column ? "cols"
                                                                  : "rows") +
             " &lt;= " + std::to_string(P.Bound);
    const char *OutcomeName = P.Result == ShrinkProbe::Outcome::Sat ? "sat"
                              : P.Result == ShrinkProbe::Outcome::Unsat
                                  ? "unsat"
                                  : "budget";
    appendf(Out,
            "<text x=\"4\" y=\"%u\" font-size=\"8\" fill=\"%s\">probe %zu: "
            "%s %s</text>\n",
            Rows * MiniH + 14, TextPrimary, F, What.c_str(), OutcomeName);
    appendf(Out,
            "<text x=\"4\" y=\"%u\" font-size=\"7\" fill=\"%s\">%llu "
            "conflict(s), box %ux%u</text>\n",
            Rows * MiniH + 23, TextSecondary,
            static_cast<unsigned long long>(P.Conflicts), P.MaxColumn + 1,
            P.MaxRow + 1);
    Out += "</g>\n";
  }
  Out += "</svg>\n";
  return Out;
}

std::string reticle::place::floorplanAscii(const AsmProgram &Prog,
                                           const device::Device &Dev) {
  const std::vector<Placed> Cells = collectPlaced(Prog);
  std::map<std::pair<unsigned, unsigned>, const AsmInstr *> At;
  unsigned MaxUsedRow = 0;
  for (const Placed &P : Cells) {
    At[{P.X, P.Y}] = P.Instr;
    MaxUsedRow = std::max(MaxUsedRow, P.Y);
  }

  unsigned Tallest = 1;
  for (const device::Column &C : Dev.columns())
    Tallest = std::max(Tallest, C.Height);
  // Tall devices: elide the unused sky above the placement.
  unsigned ShowRows = std::min(Tallest, std::max(MaxUsedRow + 2, 4u));

  std::string Out = "floorplan: " + Prog.name() + " on " + Dev.name() + " (" +
                    std::to_string(Dev.numColumns()) + " cols, " +
                    std::to_string(Tallest) + " rows";
  if (ShowRows < Tallest)
    Out += ", top " + std::to_string(Tallest - ShowRows) + " rows elided";
  Out += ")\n";

  for (unsigned Row = ShowRows; Row-- > 0;) {
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%4u |", Row);
    Out += Buf;
    for (unsigned X = 0; X < Dev.numColumns(); ++X) {
      const device::Column &C = Dev.columns()[X];
      Out.push_back(' ');
      if (Row >= C.Height) {
        Out.push_back(' '); // beyond this column's extent
        continue;
      }
      auto It = At.find({X, Row});
      if (It == At.end())
        Out.push_back('.');
      else
        Out.push_back(isCascadeOp(*It->second) ? '|' : '#');
    }
    Out.push_back('\n');
  }
  Out += "      ";
  for (unsigned X = 0; X < Dev.numColumns(); ++X) {
    Out.push_back(' ');
    Out.push_back(Dev.columns()[X].Kind == ir::Resource::Dsp ? 'd' : 'l');
  }
  Out += "   ('.' free, '#' placed, '|' cascade member; bottom row is the "
         "column kind)\n";

  // Placement listing, sorted by slot for stable diffs.
  std::vector<Placed> Sorted = Cells;
  std::sort(Sorted.begin(), Sorted.end(), [](const Placed &A, const Placed &B) {
    return std::tie(A.X, A.Y) < std::tie(B.X, B.Y);
  });
  for (const Placed &P : Sorted) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "  (%u, %u)  ", P.X, P.Y);
    Out += Buf;
    Out += P.Instr->dst() + " = " + P.Instr->opName() + "\n";
  }
  return Out;
}
