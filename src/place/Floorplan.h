//===- place/Floorplan.h - Placement floorplan rendering --------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a placed (device-specific) assembly program on the device's
/// column grid, so a placement can be *seen* instead of read as coordinate
/// lists: columns are drawn side by side and tinted by resource kind,
/// placed primitives appear as labeled cells at their (x, y) slots, and
/// cascade chains (Section 5.2) are drawn as links between vertically
/// adjacent DSPs. Row 0 is at the bottom, matching the device convention.
///
/// Two renderings over the same model: SVG for files/browsers
/// (`reticlec --floorplan=plan.svg`) and a plain-text grid for terminals
/// (`--floorplan=-`).
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_PLACE_FLOORPLAN_H
#define RETICLE_PLACE_FLOORPLAN_H

#include "device/Device.h"
#include "place/Place.h"
#include "rasm/Asm.h"

#include <string>

namespace reticle {
namespace place {

/// Renders \p Placed on \p Dev as a standalone SVG document. Instructions
/// with non-literal coordinates are ignored (the input should be the
/// placed program). Never fails: an empty program renders the bare grid.
std::string floorplanSvg(const rasm::AsmProgram &Placed,
                         const device::Device &Dev);

/// The terminal fallback: one character cell per slot ('.' free, '#'
/// placed, '|' cascade member), columns left to right, row 0 on the bottom
/// line, followed by a placement listing. Rows above the highest used slot
/// are elided on tall devices.
std::string floorplanAscii(const rasm::AsmProgram &Placed,
                           const device::Device &Dev);

/// Renders the shrink-probe sequence recorded in \p Stats.Timeline as
/// small-multiple SVG frames (`reticlec --floorplan-timeline=`): one mini
/// floorplan per probe showing the accepted layout of that moment, the
/// attempted bound as a dashed overlay, and the probe's outcome and
/// conflict count as the caption. Frame 0 is the initial solution; the
/// bounding box can be watched contracting probe by probe. Never fails: an
/// empty timeline renders a single explanatory line.
std::string floorplanTimelineSvg(const rasm::AsmProgram &Placed,
                                 const device::Device &Dev,
                                 const PlacementStats &Stats);

} // namespace place
} // namespace reticle

#endif // RETICLE_PLACE_FLOORPLAN_H
