//===- place/Place.h - Instruction placement --------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction placement (Section 5.3): resolves every assembly
/// instruction's coordinate holes against a concrete device by solving the
/// paper's constraint system with a SAT solver (the paper uses Z3; this
/// project uses its own CDCL solver, src/sat):
///
///  - a coordinate must address a column of the instruction's primitive
///    kind;
///  - a coordinate must lie within that column's extent;
///  - relative constraints between instructions sharing coordinate
///    variables (e.g. cascades at (x, y) and (x, y+1)) must hold;
///  - all instructions occupy distinct slots.
///
/// Instructions sharing coordinate variables form *clusters* placed as one
/// rigid shape; the encoding assigns each cluster exactly one base
/// position and forbids slot overlap. After a first solution, optional
/// shrinking passes binary-search reduced areas and re-solve, compacting
/// the layout (Section 5.3's final paragraph).
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_PLACE_PLACE_H
#define RETICLE_PLACE_PLACE_H

#include "device/Device.h"
#include "obs/Context.h"
#include "rasm/Asm.h"
#include "support/Result.h"

#include <array>
#include <string>
#include <vector>

namespace reticle {
namespace sat {
class ProofWriter;
} // namespace sat

namespace place {

/// How the shrink search drives the SAT solver.
///
///  - Scratch: every probe builds and solves a fresh encoding (the
///    historical behavior; kept as the equivalence oracle).
///  - Incremental: one persistent solver carries the full-bounds encoding
///    across all probes; per-kind area bounds become assumption literals
///    over a ladder of "kill" selectors, so learned clauses, variable
///    activities and saved phases survive from probe to probe.
///  - Portfolio: the persistent encoding is mirrored into N diverse
///    solver lanes that race each probe in deterministic barrier rounds,
///    sharing short learnt clauses between rounds.
enum class SatMode : uint8_t { Scratch, Incremental, Portfolio };

/// Tuning knobs for placement.
struct PlacementOptions {
  /// Run the binary-search shrinking passes after the first solution.
  bool Shrink = true;
  /// Initial cap on enumerated base positions per cluster; grows
  /// automatically (up to full enumeration) when the capped encoding is
  /// unsatisfiable.
  unsigned InitialCandidateCap = 128;
  /// Shrink-probe solver strategy. The initial solve (cap growth and
  /// UNSAT explanation) is always from scratch; the mode governs the
  /// shrink probes only. Placements are byte-identical across modes in
  /// single-thread (Scratch/Incremental) configurations.
  SatMode Mode = SatMode::Incremental;
  /// Racing lanes in Portfolio mode (clamped to [1, 8] by the portfolio).
  unsigned PortfolioLanes = 4;
  /// When set, every SAT search of the run appends DRAT-style proof lines
  /// (learnt additions, deletions, assumption-core implications) here.
  sat::ProofWriter *Proof = nullptr;
};

/// One frame of the placement timeline: the initial solution or one probe
/// of the binary-search shrink. Each frame carries the layout accepted so
/// far (so failed probes still render the best-known floorplan) plus the
/// search effort the probe cost, letting `--floorplan-timeline` draw the
/// bounding box contracting probe by probe.
struct ShrinkProbe {
  enum class Axis : uint8_t { Initial, Column, Row };
  enum class Outcome : uint8_t { Sat, Unsat, Budget };
  Axis ProbeAxis = Axis::Initial;
  Outcome Result = Outcome::Sat;
  unsigned Bound = 0;     ///< tried bound on the probed axis (Initial: unused)
  uint64_t Conflicts = 0; ///< solver conflicts spent on this probe
  uint64_t Decisions = 0; ///< solver decisions spent on this probe
  int Lane = -1;          ///< winning portfolio lane (-1 outside Portfolio)
  unsigned MaxColumn = 0; ///< bounding box of the accepted layout so far
  unsigned MaxRow = 0;
  std::vector<device::Slot> Slots; ///< occupied slots of the accepted layout
};

/// One named constraint participating in an UNSAT explanation. Kind is one
/// of "capacity" (arithmetic precheck: demand exceeds slots), "range" (a
/// cluster has no in-bounds base position), "choose-one" (a cluster's
/// candidate-selection constraint) or "distinct" (a slot's at-most-one-user
/// constraint); Instr names the destination of a representative
/// instruction so the explanation points back into the program.
struct CoreConstraint {
  std::string Kind;
  std::string Instr;
  std::string Detail;
};

/// Facts about one placement run, reported by benchmarks and the unified
/// stats document (`reticlec --stats-json=`). The Sat block aggregates
/// sat::Solver::Statistics over every solve of the run, shrink probes
/// included, so a slow placement can be attributed to search effort
/// rather than guessed at.
struct PlacementStats {
  unsigned Solves = 0;           ///< SAT invocations (including shrinking)
  unsigned ShrinkIterations = 0; ///< binary-search probes over both axes
  unsigned Vars = 0;             ///< variables in the final encoding
  unsigned Clauses = 0;          ///< problem clauses in the final encoding
  uint64_t Conflicts = 0;        ///< summed solver conflicts
  uint64_t Decisions = 0;        ///< summed solver decisions
  uint64_t Propagations = 0;     ///< summed solver propagations
  uint64_t Restarts = 0;         ///< summed solver restarts
  uint64_t Learned = 0;          ///< summed learned clauses
  uint64_t BudgetExhausted = 0;  ///< solves that hit their conflict budget
  double SatMs = 0.0;            ///< wall-clock spent inside the SAT solver
  /// Learned-clause quality profile, summed over every solve (bucket
  /// layout documented on sat::Solver::Statistics).
  std::array<uint64_t, 8> LbdHistogram{};
  std::array<uint64_t, 8> LearnedSizeHistogram{};
  unsigned MaxColumn = 0; ///< highest column used
  unsigned MaxRow = 0;    ///< highest row used
  /// Which shrink strategy produced the run.
  SatMode Mode = SatMode::Incremental;
  /// Wall-clock of the whole shrink phase (persistent encoding build
  /// included); the headline "placement solve time" the benchmarks
  /// compare across modes.
  double ShrinkMs = 0.0;
  /// Reuse accounting for the persistent (Incremental/Portfolio) solver.
  /// Scratch mode rebuilds per probe, so Encodes == SAT-backed probes
  /// there; a persistent run encodes once however many probes follow.
  uint64_t IncrementalEncodes = 0; ///< times a probe (re)built an encoding
  uint64_t IncrementalProbes = 0;  ///< probes answered by the SAT solver
  uint64_t PrecheckProbes = 0;     ///< probes settled arithmetically (no SAT)
  uint64_t ReusedClauses = 0;      ///< problem clauses carried across probes
  uint64_t ReusedLearned = 0;      ///< learnt clauses alive at probe start
  /// Portfolio-race accounting (zero outside Portfolio mode).
  uint64_t PortfolioRounds = 0;   ///< barrier rounds across all probes
  uint64_t PortfolioExported = 0; ///< clauses published at exchange barriers
  uint64_t PortfolioImported = 0; ///< import acceptances across lanes
  std::array<uint64_t, 8> PortfolioWins{}; ///< decisive probes won per lane
  /// The initial solve plus every shrink probe, in order.
  std::vector<ShrinkProbe> Timeline;
  /// Named constraints explaining a failed placement (empty on success):
  /// the minimized SAT core mapped back through the clause-group tags, or
  /// the arithmetic precheck / empty-range verdicts when the encoding was
  /// never solved.
  std::vector<CoreConstraint> Core;
};

/// Resolves all locations of \p Prog on \p Dev. Returns the placed,
/// device-specific program (all coordinates literal). Fails when the
/// constraints are unsatisfiable ("If Z3 cannot find a valid placement for
/// every instruction, placement fails").
Result<rasm::AsmProgram> place(const rasm::AsmProgram &Prog,
                               const device::Device &Dev,
                               const PlacementOptions &Options = {},
                               PlacementStats *Stats = nullptr,
                               const obs::Context &Ctx = obs::defaultContext());

/// Independently validates that \p Placed realizes \p Original on \p Dev:
/// literal coordinates on valid distinct slots of the right kind, with
/// every literal pin and every relative variable constraint of the
/// original respected. Used by tests and as a post-placement assertion.
Status checkPlacement(const rasm::AsmProgram &Original,
                      const rasm::AsmProgram &Placed,
                      const device::Device &Dev);

} // namespace place
} // namespace reticle

#endif // RETICLE_PLACE_PLACE_H
