//===- interp/Cycle.cpp - Shared simulation cycle-loop skeleton -------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "interp/Cycle.h"

#include <algorithm>

using namespace reticle;
using namespace reticle::sim;

void InputBinder::add(std::string Name, unsigned Slot) {
  Entries.push_back({std::move(Name), Slot});
}

void InputBinder::seal() {
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.Name < B.Name; });
}

void OutputProto::add(std::string Name, unsigned Slot) {
  Entries.push_back({std::move(Name), Slot});
}

void OutputProto::seal() {
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.Name < B.Name; });
}

EngineFrame::EngineFrame(WaveSink *Wave, const obs::Context &Ctx,
                         const char *OwnCounter)
    : SimCycles(&Ctx.counter("sim.cycles")),
      OwnCycles(&Ctx.counter(OwnCounter)),
      BatchMs(&Ctx.histogram("sim.cycle_batch_ms")),
      BatchStart(std::chrono::steady_clock::now()), Rec(Wave, Ctx) {}

void EngineFrame::batchTick() {
  auto Now = std::chrono::steady_clock::now();
  BatchMs->record(
      std::chrono::duration<double, std::milli>(Now - BatchStart).count());
  BatchStart = Now;
}

EngineFrame::~EngineFrame() {
  if (Pending == 0)
    return;
  *SimCycles += Pending;
  *OwnCycles += Pending;
}

std::string EngineFrame::abort(std::string Msg) {
  Rec.finish(/*Aborted=*/true);
  return Msg;
}

Status EngineFrame::finish() { return Rec.finish(/*Aborted=*/false); }
