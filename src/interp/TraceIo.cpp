//===- interp/TraceIo.cpp - Input-trace parsing ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "interp/TraceIo.h"

#include "obs/Json.h"

#include <map>

using namespace reticle;
using namespace reticle::interp;

namespace {

/// Converts one JSON value to a typed interpreter value, or explains why
/// it cannot be.
Result<Value> convertValue(const obs::Json &J, const ir::Type &Ty,
                           const std::string &Where) {
  if (Ty.isBool()) {
    if (J.isBool())
      return Value::makeBool(J.asBool());
    if (J.isNumber() && (J.asInt() == 0 || J.asInt() == 1))
      return Value::makeBool(J.asInt() != 0);
    return fail<Value>(Where + ": expected a boolean");
  }
  if (Ty.lanes() == 1) {
    if (!J.isNumber())
      return fail<Value>(Where + ": expected an integer");
    return Value::splat(Ty, J.asInt());
  }
  if (!J.isArray())
    return fail<Value>(Where + ": expected an array of " +
                       std::to_string(Ty.lanes()) + " integers");
  if (J.size() != Ty.lanes())
    return fail<Value>(Where + ": expected " + std::to_string(Ty.lanes()) +
                       " lanes, got " + std::to_string(J.size()));
  std::vector<int64_t> Lanes;
  Lanes.reserve(J.size());
  for (const obs::Json &Lane : J.items()) {
    if (!Lane.isNumber())
      return fail<Value>(Where + ": expected an array of integers");
    Lanes.push_back(Lane.asInt());
  }
  return Value::fromLanes(Ty, std::move(Lanes));
}

} // namespace

Result<Trace> sim::parseInputTrace(const std::string &Text,
                                   const ir::Function &Fn) {
  Result<obs::Json> Doc = obs::Json::parse(Text);
  if (!Doc.ok())
    return fail<Trace>("input trace: " + Doc.error());
  const obs::Json &Root = Doc.value();
  if (!Root.isObject())
    return fail<Trace>("input trace: expected a JSON object");
  const obs::Json *Schema = Root.find("schema");
  if (!Schema || !Schema->isString() ||
      Schema->asString() != "reticle-input-trace-v1")
    return fail<Trace>("input trace: expected schema 'reticle-input-trace-v1'");
  const obs::Json *Cycles = Root.find("cycles");
  if (!Cycles || !Cycles->isArray())
    return fail<Trace>("input trace: expected a 'cycles' array");

  std::map<std::string, const ir::Port *> PortOf;
  for (const ir::Port &P : Fn.inputs())
    PortOf[P.Name] = &P;
  // "cycle" is a reserved self-check key: when present it must equal the
  // record's index, catching reordered or dropped records in generated
  // traces. A function whose input port is literally named "cycle" keeps
  // the key for itself.
  const bool CycleKeyReserved = !PortOf.count("cycle");

  Trace Out;
  size_t CycleNo = 0;
  for (const obs::Json &CycleObj : Cycles->items()) {
    std::string Where = "input trace cycle " + std::to_string(CycleNo);
    if (!CycleObj.isObject())
      return fail<Trace>(Where + ": expected an object");
    Step &S = Out.appendStep();
    for (const auto &[Name, Val] : CycleObj.members()) {
      if (CycleKeyReserved && Name == "cycle") {
        if (!Val.isNumber() ||
            Val.asInt() != static_cast<int64_t>(CycleNo))
          return fail<Trace>(
              Where + ": non-monotone cycle record: 'cycle' is " +
              (Val.isNumber() ? std::to_string(Val.asInt())
                              : std::string("not a number")) +
              ", expected " + std::to_string(CycleNo));
        continue;
      }
      auto It = PortOf.find(Name);
      if (It == PortOf.end())
        return fail<Trace>(Where + ": unknown input '" + Name + "'");
      Result<Value> V = convertValue(Val, It->second->Ty,
                                     Where + ", input '" + Name + "'");
      if (!V.ok())
        return fail<Trace>(V.error());
      S[Name] = V.take();
    }
    for (const ir::Port &P : Fn.inputs())
      if (!S.count(P.Name))
        return fail<Trace>(Where + ": input '" + P.Name + "' missing");
    ++CycleNo;
  }
  return std::move(Out);
}
