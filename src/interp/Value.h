//===- interp/Value.h - Runtime values --------------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values for the interpreter (Section 6.2). A value is a typed
/// bundle of lanes; integer lanes are stored sign-extended to 64 bits so
/// that signed arithmetic and comparisons are the native operations.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_INTERP_VALUE_H
#define RETICLE_INTERP_VALUE_H

#include "ir/Type.h"

#include <cstdint>
#include <string>
#include <vector>

namespace reticle {
namespace interp {

/// A typed runtime value: one 64-bit lane per vector lane.
///
/// Integer lanes are canonical (sign-extended from their width); bool lanes
/// are 0 or 1. All constructors canonicalize.
class Value {
public:
  Value() : Ty(ir::Type::makeBool()), Lanes(1, 0) {}

  /// Builds a value of type \p Ty with every lane set to \p Splat.
  static Value splat(ir::Type Ty, int64_t Splat);

  /// Builds a value of type \p Ty from per-lane payloads. \p LaneValues
  /// must have exactly Ty.lanes() entries.
  static Value fromLanes(ir::Type Ty, std::vector<int64_t> LaneValues);

  /// Builds a bool.
  static Value makeBool(bool B);

  ir::Type type() const { return Ty; }
  unsigned lanes() const { return static_cast<unsigned>(Lanes.size()); }

  int64_t lane(unsigned Index) const {
    assert(Index < Lanes.size() && "lane index out of range");
    return Lanes[Index];
  }

  /// Scalar accessor; the value must have exactly one lane.
  int64_t scalar() const {
    assert(Lanes.size() == 1 && "scalar() on a vector value");
    return Lanes[0];
  }

  bool toBool() const {
    assert(Ty.isBool() && "toBool() on a non-bool value");
    return Lanes[0] != 0;
  }

  /// Flattens the value to its bit representation: lane 0 occupies the
  /// lowest Ty.width() bits, lane 1 the next, and so on.
  std::vector<bool> toBits() const;

  /// Rebuilds a value of type \p Ty from flattened bits (inverse of
  /// toBits()); Bits.size() must equal Ty.totalBits().
  static Value fromBits(ir::Type Ty, const std::vector<bool> &Bits);

  /// Truncates/sign-extends \p Raw to the canonical representation for an
  /// integer of \p Width bits.
  static int64_t canonicalize(int64_t Raw, unsigned Width);

  std::string str() const;

  bool operator==(const Value &Other) const = default;

private:
  ir::Type Ty;
  std::vector<int64_t> Lanes;
};

} // namespace interp
} // namespace reticle

#endif // RETICLE_INTERP_VALUE_H
