//===- interp/Trace.h - Input/output traces ---------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace maps circuit variables to values for every clock cycle
/// (Section 6.2). Input traces fully specify a circuit's inputs per cycle;
/// output traces record the observed outputs.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_INTERP_TRACE_H
#define RETICLE_INTERP_TRACE_H

#include "interp/Value.h"

#include <map>
#include <string>
#include <vector>

namespace reticle {
namespace interp {

/// The values present at one clock cycle.
using Step = std::map<std::string, Value>;

/// A sequence of steps, one per clock cycle.
class Trace {
public:
  Trace() = default;

  size_t size() const { return Steps.size(); }
  bool empty() const { return Steps.empty(); }

  Step &step(size_t Cycle) { return Steps[Cycle]; }
  const Step &step(size_t Cycle) const { return Steps[Cycle]; }

  void push(Step S) { Steps.push_back(std::move(S)); }

  /// Appends a new empty step and returns it for in-place filling.
  Step &appendStep() {
    Steps.emplace_back();
    return Steps.back();
  }

  /// Convenience: sets variable \p Name at cycle \p Cycle, growing the
  /// trace as needed.
  void set(size_t Cycle, const std::string &Name, Value V) {
    if (Steps.size() <= Cycle)
      Steps.resize(Cycle + 1);
    Steps[Cycle][Name] = std::move(V);
  }

  /// Returns the value of \p Name at \p Cycle, or null when absent.
  const Value *get(size_t Cycle, const std::string &Name) const {
    if (Cycle >= Steps.size())
      return nullptr;
    auto It = Steps[Cycle].find(Name);
    return It == Steps[Cycle].end() ? nullptr : &It->second;
  }

  std::vector<Step> &steps() { return Steps; }
  const std::vector<Step> &steps() const { return Steps; }

  bool operator==(const Trace &Other) const = default;

private:
  std::vector<Step> Steps;
};

} // namespace interp
} // namespace reticle

#endif // RETICLE_INTERP_TRACE_H
