//===- interp/Trace.h - Input/output traces ---------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace maps circuit variables to values for every clock cycle
/// (Section 6.2). Input traces fully specify a circuit's inputs per cycle;
/// output traces record the observed outputs.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_INTERP_TRACE_H
#define RETICLE_INTERP_TRACE_H

#include "interp/Value.h"

#include <algorithm>
#include <initializer_list>
#include <new>
#include <string>
#include <utility>
#include <vector>

namespace reticle {
namespace interp {

/// The values present at one clock cycle: a name-sorted flat map.
///
/// Steps are small (a handful of ports), written once per cycle, and
/// iterated in name order by every consumer — the engines' merge-walk
/// input binding, the waveform and JSON writers, trace comparison. A
/// sorted vector serves that access pattern with one contiguous
/// allocation per step where a node-based map pays one per entry; at
/// millions of simulated cycles the step container is hot-loop cost,
/// not bookkeeping. The interface mirrors the `std::map` subset the
/// codebase uses (sorted iteration, `operator[]`, `find`, `count`,
/// `erase`, hinted emplace), so call sites read unchanged.
namespace detail {

/// A vector of step entries with inline storage for one entry. Output
/// steps usually carry a single port, so the common per-cycle snapshot
/// needs no heap allocation for its entry array at all; larger steps
/// spill to the heap transparently.
template <typename T> class StepEntryVec {
public:
  StepEntryVec() = default;
  StepEntryVec(const StepEntryVec &Other) { appendAll(Other); }
  StepEntryVec(StepEntryVec &&Other) noexcept { moveFrom(Other); }
  StepEntryVec &operator=(const StepEntryVec &Other) {
    if (this != &Other) {
      clear();
      appendAll(Other);
    }
    return *this;
  }
  StepEntryVec &operator=(StepEntryVec &&Other) noexcept {
    if (this != &Other) {
      destroy();
      Data = inlineSlot();
      Size = 0;
      Cap = 1;
      moveFrom(Other);
    }
    return *this;
  }
  ~StepEntryVec() { destroy(); }

  T *begin() { return Data; }
  T *end() { return Data + Size; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Size; }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  T &back() { return Data[Size - 1]; }
  const T &back() const { return Data[Size - 1]; }

  void reserve(size_t N) {
    if (N > Cap)
      grow(N);
  }

  template <typename... Args> void emplace_back(Args &&...A) {
    if (Size == Cap)
      grow(Cap * 2);
    ::new (static_cast<void *>(Data + Size)) T(std::forward<Args>(A)...);
    ++Size;
  }

  /// Inserts before \p Pos and returns the new element.
  template <typename... Args> T *emplace(const T *Pos, Args &&...A) {
    size_t Index = static_cast<size_t>(Pos - Data);
    emplace_back(std::forward<Args>(A)...);
    std::rotate(Data + Index, Data + Size - 1, Data + Size);
    return Data + Index;
  }

  void erase(const T *Pos) {
    size_t Index = static_cast<size_t>(Pos - Data);
    std::move(Data + Index + 1, Data + Size, Data + Index);
    Data[Size - 1].~T();
    --Size;
  }

  bool operator==(const StepEntryVec &Other) const {
    return Size == Other.Size && std::equal(begin(), end(), Other.begin());
  }

private:
  T *inlineSlot() { return reinterpret_cast<T *>(Inline); }

  void destroy() {
    for (size_t I = 0; I < Size; ++I)
      Data[I].~T();
    if (Data != inlineSlot())
      ::operator delete(Data);
  }

  void clear() {
    for (size_t I = 0; I < Size; ++I)
      Data[I].~T();
    Size = 0;
  }

  void appendAll(const StepEntryVec &Other) {
    reserve(Other.Size);
    for (size_t I = 0; I < Other.Size; ++I)
      emplace_back(Other.Data[I]);
  }

  void moveFrom(StepEntryVec &Other) noexcept {
    if (Other.Data != Other.inlineSlot()) {
      // Steal the heap buffer.
      Data = Other.Data;
      Size = Other.Size;
      Cap = Other.Cap;
    } else {
      for (size_t I = 0; I < Other.Size; ++I)
        ::new (static_cast<void *>(Data + I)) T(std::move(Other.Data[I]));
      Size = Other.Size;
      for (size_t I = 0; I < Other.Size; ++I)
        Other.Data[I].~T();
    }
    Other.Data = Other.inlineSlot();
    Other.Size = 0;
    Other.Cap = 1;
  }

  void grow(size_t NewCap) {
    T *NewData =
        static_cast<T *>(::operator new(NewCap * sizeof(T)));
    for (size_t I = 0; I < Size; ++I) {
      ::new (static_cast<void *>(NewData + I)) T(std::move(Data[I]));
      Data[I].~T();
    }
    if (Data != inlineSlot())
      ::operator delete(Data);
    Data = NewData;
    Cap = NewCap;
  }

  alignas(T) unsigned char Inline[sizeof(T)];
  T *Data = inlineSlot();
  size_t Size = 0;
  size_t Cap = 1;
};

} // namespace detail

class Step {
public:
  using value_type = std::pair<std::string, Value>;
  using iterator = value_type *;
  using const_iterator = const value_type *;

  Step() = default;
  Step(std::initializer_list<value_type> Init) {
    for (const value_type &KV : Init)
      (*this)[KV.first] = KV.second;
  }

  iterator begin() { return Entries.begin(); }
  iterator end() { return Entries.end(); }
  const_iterator begin() const { return Entries.begin(); }
  const_iterator end() const { return Entries.end(); }

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  /// Pre-sizes the entry array (one exact allocation when the port
  /// count is known up front).
  void reserve(size_t N) { Entries.reserve(N); }

  iterator find(const std::string &Name) {
    iterator It = lowerBound(Name);
    return It != Entries.end() && It->first == Name ? It : Entries.end();
  }
  const_iterator find(const std::string &Name) const {
    const_iterator It = lowerBound(Name);
    return It != Entries.end() && It->first == Name ? It : Entries.end();
  }

  size_t count(const std::string &Name) const {
    return find(Name) != Entries.end() ? 1 : 0;
  }

  Value &operator[](const std::string &Name) {
    iterator It = lowerBound(Name);
    if (It != Entries.end() && It->first == Name)
      return It->second;
    return Entries.emplace(It, Name, Value())->second;
  }

  /// Inserts \p Name -> \p V if absent and returns the entry
  /// (`std::map::emplace_hint` semantics: an existing key is left
  /// untouched). Appending keys in ascending order is O(1).
  iterator emplace_hint(const_iterator /*Hint*/, const std::string &Name,
                        Value V) {
    if (Entries.empty() || Entries.back().first < Name) {
      Entries.emplace_back(Name, std::move(V));
      return &Entries.back();
    }
    iterator It = lowerBound(Name);
    if (It != Entries.end() && It->first == Name)
      return It;
    return Entries.emplace(It, Name, std::move(V));
  }

  size_t erase(const std::string &Name) {
    iterator It = find(Name);
    if (It == Entries.end())
      return 0;
    Entries.erase(It);
    return 1;
  }

  bool operator==(const Step &Other) const = default;

private:
  iterator lowerBound(const std::string &Name) {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Name,
        [](const value_type &E, const std::string &N) { return E.first < N; });
  }
  const_iterator lowerBound(const std::string &Name) const {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Name,
        [](const value_type &E, const std::string &N) { return E.first < N; });
  }

  detail::StepEntryVec<value_type> Entries;
};

/// A sequence of steps, one per clock cycle.
class Trace {
public:
  Trace() = default;

  size_t size() const { return Steps.size(); }
  bool empty() const { return Steps.empty(); }

  Step &step(size_t Cycle) { return Steps[Cycle]; }
  const Step &step(size_t Cycle) const { return Steps[Cycle]; }

  void push(Step S) { Steps.push_back(std::move(S)); }

  /// Appends a new empty step and returns it for in-place filling.
  Step &appendStep() {
    Steps.emplace_back();
    return Steps.back();
  }

  /// Convenience: sets variable \p Name at cycle \p Cycle, growing the
  /// trace as needed.
  void set(size_t Cycle, const std::string &Name, Value V) {
    if (Steps.size() <= Cycle)
      Steps.resize(Cycle + 1);
    Steps[Cycle][Name] = std::move(V);
  }

  /// Returns the value of \p Name at \p Cycle, or null when absent.
  const Value *get(size_t Cycle, const std::string &Name) const {
    if (Cycle >= Steps.size())
      return nullptr;
    auto It = Steps[Cycle].find(Name);
    return It == Steps[Cycle].end() ? nullptr : &It->second;
  }

  std::vector<Step> &steps() { return Steps; }
  const std::vector<Step> &steps() const { return Steps; }

  bool operator==(const Trace &Other) const = default;

private:
  std::vector<Step> Steps;
};

} // namespace interp
} // namespace reticle

#endif // RETICLE_INTERP_TRACE_H
