//===- interp/Cycle.h - Shared simulation cycle-loop skeleton ---*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-independent pieces of a per-cycle simulation run. Every
/// simulation engine — the reference interpreter, the gate-level netlist
/// simulator, and the bytecode VM — steps the same loop: bind the cycle's
/// inputs from a name-ordered step map, evaluate, snapshot declared
/// outputs into a prototype-cloned step, stream the settled state into a
/// `WaveSink`, then commit register state. This header extracts the
/// engine-independent parts so the engines share one skeleton instead of
/// three hand-rolled copies:
///
///  - `InputBinder` — the name-sorted merge walk between a trace step's
///    ordered map and an engine's input slots, resolved once per run.
///  - `OutputProto` — the prototype output step whose map order is paired
///    with a parallel slot vector, cloned and filled by position each
///    cycle.
///  - `EngineFrame` — the per-run frame every engine owns: the shared
///    `sim.cycles` counter plus the engine's own cycle counter, the
///    `WaveRecorder`, and the abort path that flushes a partial waveform
///    before the error propagates.
///
/// Engines stay responsible for what is genuinely theirs: how a bound
/// value is stored (typed `Value`, flattened bits, table words), how a
/// cycle is evaluated, and which signals the waveform carries.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_INTERP_CYCLE_H
#define RETICLE_INTERP_CYCLE_H

#include "interp/Trace.h"
#include "interp/Wave.h"
#include "obs/Context.h"
#include "support/Result.h"

#include <chrono>
#include <string>
#include <vector>

namespace reticle {
namespace sim {

/// Binds a trace step's inputs to engine slots. Slots are added once per
/// run, sealed (name-sorted), and then every cycle binds with one merge
/// walk over the step's ordered map — no per-cycle hashing.
class InputBinder {
public:
  /// Registers input \p Name feeding engine slot \p Slot.
  void add(std::string Name, unsigned Slot);

  /// Sorts the slots by name; call once after the last add().
  void seal();

  size_t size() const { return Entries.size(); }

  /// Binds every registered input from \p In. \p Bind receives the slot
  /// and the step's value and returns failure to abort (type or width
  /// mismatch); a missing input fails with the shared message every
  /// engine uses.
  template <typename BindFn>
  Status bind(const interp::Step &In, size_t Cycle, BindFn &&Bind) const {
    auto It = In.begin();
    for (const Entry &E : Entries) {
      for (;; ++It) {
        if (It == In.end())
          return missing(E.Name, Cycle);
        int Cmp = It->first.compare(E.Name);
        if (Cmp == 0)
          break;
        if (Cmp > 0)
          return missing(E.Name, Cycle);
      }
      if (Status S = Bind(E.Slot, It->second); !S)
        return S;
    }
    return Status::success();
  }

private:
  struct Entry {
    std::string Name;
    unsigned Slot;
  };

  static Status missing(const std::string &Name, size_t Cycle) {
    return Status::failure("cycle " + std::to_string(Cycle) + ": input '" +
                           Name + "' missing from trace");
  }

  std::vector<Entry> Entries;
};

/// The prototype output step: declared outputs name-sorted into map order
/// paired with their slots, so the per-cycle snapshot builds each step
/// with hinted in-order insertion — one node per output, no intermediate
/// default values to construct and replace.
class OutputProto {
public:
  /// Registers output \p Name read from engine slot \p Slot.
  void add(std::string Name, unsigned Slot);

  /// Sorts the outputs into map (name) order; call once after the last
  /// add().
  void seal();

  size_t size() const { return Entries.size(); }

  /// Appends one output step to \p Out with each value read from its
  /// slot. Entries are name-sorted, so every emplace hint is exact and
  /// the resulting map is identical to inserting in any order.
  template <typename ReadFn> void emit(interp::Trace &Out, ReadFn &&Read) const {
    interp::Step &S = Out.appendStep();
    for (const Entry &E : Entries)
      S.emplace_hint(S.end(), E.Name, Read(E.Slot));
  }

private:
  struct Entry {
    std::string Name;
    unsigned Slot;
  };
  std::vector<Entry> Entries;
};

/// The per-run frame shared by every engine: cycle counters, the
/// waveform recorder, and the abort-flush path.
class EngineFrame {
public:
  /// \p OwnCounter is the engine's cycle counter name ("interp.cycles",
  /// "netlist.cycles", "sim.vm.cycles"); `sim.cycles` is always counted
  /// alongside it.
  EngineFrame(WaveSink *Wave, const obs::Context &Ctx,
              const char *OwnCounter);

  /// Flushes the batched cycle count into `sim.cycles` and the engine
  /// counter (kept out of the hot loop: two atomic adds per run, not per
  /// cycle).
  ~EngineFrame();

  WaveRecorder &recorder() { return Rec; }
  bool waveActive() const { return Rec.active(); }

  /// Counts one cycle; the totals land in `sim.cycles` and the engine
  /// counter when the frame is destroyed. Every `BatchCycles` cycles the
  /// elapsed wall time since the previous batch boundary lands one sample
  /// in the `sim.cycle_batch_ms` histogram, so long runs expose a real
  /// latency distribution instead of a single total.
  void beginCycle() {
    if ((++Pending & (BatchCycles - 1)) == 0)
      batchTick();
  }

  /// Flushes a partial waveform and passes \p Msg back for the engine to
  /// wrap into its failing result.
  std::string abort(std::string Msg);

  /// Finishes a successful run's waveform.
  Status finish();

private:
  /// Batch size for the cycle-time histogram; a power of two so the hot
  /// check in beginCycle() is one mask.
  static constexpr uint64_t BatchCycles = 1024;

  /// Out of the hot path: records the elapsed time for the completed
  /// 1k-cycle batch and restarts the batch clock.
  void batchTick();

  obs::Counter *SimCycles;
  obs::Counter *OwnCycles;
  obs::Histogram *BatchMs;
  uint64_t Pending = 0;
  std::chrono::steady_clock::time_point BatchStart;
  WaveRecorder Rec;
};

} // namespace sim
} // namespace reticle

#endif // RETICLE_INTERP_CYCLE_H
