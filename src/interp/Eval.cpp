//===- interp/Eval.cpp - Single-instruction evaluation ----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "interp/Eval.h"

using namespace reticle;
using namespace reticle::interp;
using ir::CompOp;
using ir::Instr;
using ir::Type;
using ir::WireOp;

namespace {

/// Applies a per-lane binary function, canonicalizing the result lanes.
template <typename Fn>
Value mapLanes2(Type Ty, const Value &A, const Value &B, Fn F) {
  std::vector<int64_t> Out;
  Out.reserve(Ty.lanes());
  for (unsigned L = 0; L < Ty.lanes(); ++L)
    Out.push_back(F(A.lane(L), B.lane(L)));
  return Value::fromLanes(Ty, std::move(Out));
}

template <typename Fn> Value mapLanes1(Type Ty, const Value &A, Fn F) {
  std::vector<int64_t> Out;
  Out.reserve(Ty.lanes());
  for (unsigned L = 0; L < Ty.lanes(); ++L)
    Out.push_back(F(A.lane(L)));
  return Value::fromLanes(Ty, std::move(Out));
}

/// The low Width bits of a canonical lane, as an unsigned payload.
uint64_t unsignedLane(int64_t Lane, unsigned Width) {
  if (Width == 64)
    return static_cast<uint64_t>(Lane);
  return static_cast<uint64_t>(Lane) & ((uint64_t(1) << Width) - 1);
}

Result<Value> evalWire(const Instr &I, const std::vector<Value> &Args) {
  Type Ty = I.type();
  switch (I.wireOp()) {
  case WireOp::Sll: {
    unsigned Amount = static_cast<unsigned>(I.attrs()[0]);
    return mapLanes1(Ty, Args[0], [&](int64_t A) {
      return static_cast<int64_t>(unsignedLane(A, Ty.width()) << Amount);
    });
  }
  case WireOp::Srl: {
    unsigned Amount = static_cast<unsigned>(I.attrs()[0]);
    return mapLanes1(Ty, Args[0], [&](int64_t A) {
      return static_cast<int64_t>(unsignedLane(A, Ty.width()) >> Amount);
    });
  }
  case WireOp::Sra: {
    unsigned Amount = static_cast<unsigned>(I.attrs()[0]);
    // Lanes are sign-extended, so the native shift is arithmetic.
    return mapLanes1(Ty, Args[0], [&](int64_t A) { return A >> Amount; });
  }
  case WireOp::Slice: {
    std::vector<bool> Bits = Args[0].toBits();
    size_t Offset = static_cast<size_t>(I.attrs()[0]);
    std::vector<bool> Out(Bits.begin() + Offset,
                          Bits.begin() + Offset + Ty.totalBits());
    return Value::fromBits(Ty, Out);
  }
  case WireOp::Cat: {
    std::vector<bool> Bits = Args[0].toBits();
    std::vector<bool> High = Args[1].toBits();
    Bits.insert(Bits.end(), High.begin(), High.end());
    return Value::fromBits(Ty, Bits);
  }
  case WireOp::Id:
    return Args[0];
  case WireOp::Const: {
    if (I.attrs().size() == 1)
      return Value::splat(Ty, I.attrs()[0]);
    return Value::fromLanes(Ty, I.attrs());
  }
  }
  return fail<Value>("unhandled wire operation");
}

Result<Value> evalComp(const Instr &I, const std::vector<Value> &Args) {
  Type Ty = I.type();
  switch (I.compOp()) {
  case CompOp::Add:
    return mapLanes2(Ty, Args[0], Args[1], [](int64_t A, int64_t B) {
      return static_cast<int64_t>(static_cast<uint64_t>(A) +
                                  static_cast<uint64_t>(B));
    });
  case CompOp::Sub:
    return mapLanes2(Ty, Args[0], Args[1], [](int64_t A, int64_t B) {
      return static_cast<int64_t>(static_cast<uint64_t>(A) -
                                  static_cast<uint64_t>(B));
    });
  case CompOp::Mul:
    return mapLanes2(Ty, Args[0], Args[1], [](int64_t A, int64_t B) {
      return static_cast<int64_t>(static_cast<uint64_t>(A) *
                                  static_cast<uint64_t>(B));
    });
  case CompOp::Not:
    return mapLanes1(Ty, Args[0], [](int64_t A) { return ~A; });
  case CompOp::And:
    return mapLanes2(Ty, Args[0], Args[1],
                     [](int64_t A, int64_t B) { return A & B; });
  case CompOp::Or:
    return mapLanes2(Ty, Args[0], Args[1],
                     [](int64_t A, int64_t B) { return A | B; });
  case CompOp::Xor:
    return mapLanes2(Ty, Args[0], Args[1],
                     [](int64_t A, int64_t B) { return A ^ B; });
  case CompOp::Eq:
    return Value::makeBool(Args[0].scalar() == Args[1].scalar());
  case CompOp::Neq:
    return Value::makeBool(Args[0].scalar() != Args[1].scalar());
  case CompOp::Lt:
    return Value::makeBool(Args[0].scalar() < Args[1].scalar());
  case CompOp::Gt:
    return Value::makeBool(Args[0].scalar() > Args[1].scalar());
  case CompOp::Le:
    return Value::makeBool(Args[0].scalar() <= Args[1].scalar());
  case CompOp::Ge:
    return Value::makeBool(Args[0].scalar() >= Args[1].scalar());
  case CompOp::Mux:
    return Args[0].toBool() ? Args[1] : Args[2];
  case CompOp::Reg:
    return fail<Value>("register instructions are stateful; evaluate them "
                       "through the interpreter loop");
  }
  return fail<Value>("unhandled compute operation");
}

} // namespace

Result<Value> reticle::interp::evalPure(const Instr &I,
                                        const std::vector<Value> &Args) {
  assert(Args.size() == I.args().size() && "argument count mismatch");
  return I.isWire() ? evalWire(I, Args) : evalComp(I, Args);
}

Value reticle::interp::evalRegNext(const Value &Current, const Value &Data,
                                   const Value &Enable) {
  return Enable.toBool() ? Data : Current;
}

Value reticle::interp::regInitValue(const ir::Instr &I) {
  assert(I.isReg() && "not a register instruction");
  return Value::splat(I.type(), I.attrs()[0]);
}
