//===- interp/Interp.h - The Reticle interpreter ----------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference interpreter of Algorithm 1 (Section 6.2). It steps a
/// function through an input trace and produces an output trace, giving
/// users a fast way to debug programs without programming an FPGA, and
/// giving this project a semantics oracle for translation validation.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_INTERP_INTERP_H
#define RETICLE_INTERP_INTERP_H

#include "interp/Trace.h"
#include "interp/Wave.h"
#include "ir/Function.h"
#include "obs/Context.h"
#include "support/Result.h"

namespace reticle {
namespace interp {

/// Interprets \p Fn over \p Input (Algorithm 1).
///
/// Each input step must provide a value for every function input with the
/// declared type. The result trace has one step per input step, holding all
/// declared outputs. Fails when the function is ill-formed or the trace is
/// incomplete or ill-typed.
Result<Trace> interpret(const ir::Function &Fn, const Trace &Input);

/// As above, but additionally streams every value (inputs, internal
/// instruction results, registers, outputs) into \p Wave cycle by cycle
/// (null for no waveform) and counts `sim.cycles` / `interp.*` into
/// \p Ctx. A failing run still finishes the sink (aborted) so partial
/// waveforms flush.
Result<Trace> interpret(const ir::Function &Fn, const Trace &Input,
                        sim::WaveSink *Wave,
                        const obs::Context &Ctx = obs::defaultContext());

} // namespace interp
} // namespace reticle

#endif // RETICLE_INTERP_INTERP_H
