//===- interp/Value.cpp - Runtime values ------------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

using namespace reticle;
using namespace reticle::interp;

int64_t Value::canonicalize(int64_t Raw, unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "width out of range");
  if (Width == 64)
    return Raw;
  uint64_t Mask = (uint64_t(1) << Width) - 1;
  uint64_t Bits = static_cast<uint64_t>(Raw) & Mask;
  uint64_t SignBit = uint64_t(1) << (Width - 1);
  if (Bits & SignBit)
    Bits |= ~Mask;
  return static_cast<int64_t>(Bits);
}

Value Value::splat(ir::Type Ty, int64_t Splat) {
  Value V;
  V.Ty = Ty;
  int64_t Lane = Ty.isBool() ? (Splat != 0 ? 1 : 0)
                             : canonicalize(Splat, Ty.width());
  V.Lanes.assign(Ty.lanes(), Lane);
  return V;
}

Value Value::fromLanes(ir::Type Ty, std::vector<int64_t> LaneValues) {
  assert(LaneValues.size() == Ty.lanes() && "lane count mismatch");
  Value V;
  V.Ty = Ty;
  V.Lanes = std::move(LaneValues);
  for (int64_t &Lane : V.Lanes)
    Lane = Ty.isBool() ? (Lane != 0 ? 1 : 0) : canonicalize(Lane, Ty.width());
  return V;
}

Value Value::makeBool(bool B) { return splat(ir::Type::makeBool(), B); }

std::vector<bool> Value::toBits() const {
  std::vector<bool> Bits;
  Bits.reserve(Ty.totalBits());
  for (int64_t Lane : Lanes)
    for (unsigned B = 0; B < Ty.width(); ++B)
      Bits.push_back((static_cast<uint64_t>(Lane) >> B) & 1);
  return Bits;
}

Value Value::fromBits(ir::Type Ty, const std::vector<bool> &Bits) {
  assert(Bits.size() == Ty.totalBits() && "bit count mismatch");
  std::vector<int64_t> LaneValues;
  LaneValues.reserve(Ty.lanes());
  size_t Cursor = 0;
  for (unsigned L = 0; L < Ty.lanes(); ++L) {
    uint64_t Lane = 0;
    for (unsigned B = 0; B < Ty.width(); ++B, ++Cursor)
      if (Bits[Cursor])
        Lane |= uint64_t(1) << B;
    LaneValues.push_back(static_cast<int64_t>(Lane));
  }
  return fromLanes(Ty, std::move(LaneValues));
}

std::string Value::str() const {
  if (Ty.isBool())
    return Lanes[0] ? "true" : "false";
  if (!Ty.isVector())
    return std::to_string(Lanes[0]);
  std::string Out = "[";
  for (size_t I = 0; I < Lanes.size(); ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Lanes[I]);
  }
  return Out + "]";
}
