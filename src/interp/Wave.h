//===- interp/Wave.h - Per-cycle waveform sinks ----------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution observability for the two simulation engines. The semantics of
/// a Reticle program are defined over per-cycle traces (Section 6.2); this
/// layer makes those traces *watchable*: both the reference interpreter and
/// the gate-level netlist simulator stream every port and named internal
/// signal, cycle by cycle, into a `sim::WaveSink`.
///
/// The flow has three pieces:
///
///  - `WaveSink` — the engine-facing interface. An engine declares its
///    signal set once (`begin`), marks each cycle (`beginCycle`), and
///    reports every signal's flattened bit value (`value`). `finish`
///    flushes; an aborted run (simulation error, cycle budget) still
///    produces well-formed, truncated-but-parseable output, mirroring the
///    remark-flush contract of failed compiles.
///  - `WaveRecorder` — the engine-side driver. It owns last-value change
///    detection (so writers can suppress no-change events), feeds the
///    `sim.signals` / `sim.events` / `sim.toggles` counters, and forwards
///    to an optional sink. With no sink attached every call is a no-op, so
///    engines carry one unconditionally.
///  - Writers — `VcdWriter` emits standard VCD (GTKWave / Surfer),
///    `WaveJsonWriter` emits the re-parseable `reticle-wave-v1` JSONL
///    stream that `json_check wave_diff` joins, and `WaveCapture` buffers
///    events in memory so the driver can replay one or several engine runs
///    (with per-engine name prefixes) into the file writers after the
///    fact. The file writers are part of the telemetry surface and compile
///    out under RETICLE_NO_TELEMETRY; capture and recorder stay, so engine
///    signatures need no ifdefs.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_INTERP_WAVE_H
#define RETICLE_INTERP_WAVE_H

#include "obs/Context.h"
#include "support/Result.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace reticle {
namespace sim {

/// One declared waveform signal: a name, a flattened bit width, and which
/// side of the design it lives on. The kind lets `wave_diff` restrict the
/// differential oracle to the port signals both engines share.
struct WaveSignal {
  enum class Kind : uint8_t { Input, Output, Internal };

  std::string Name;
  unsigned Width = 1;
  Kind SigKind = Kind::Internal;

  WaveSignal() = default;
  WaveSignal(std::string Name, unsigned Width, Kind K = Kind::Internal)
      : Name(std::move(Name)), Width(Width == 0 ? 1 : Width), SigKind(K) {}
};

/// Renders flattened bits (LSB first, as Value::toBits produces) as the
/// MSB-first binary string used by `reticle-wave-v1` records.
std::string bitsToString(const std::vector<bool> &Bits);

/// The engine-facing waveform interface. Calls arrive in strict order:
/// one `begin`, then for each cycle one `beginCycle` followed by `value`
/// calls (ids index the begin() signal list), then one `finish`.
class WaveSink {
public:
  virtual ~WaveSink() = default;

  /// Declares the full signal set. Must be called exactly once, first.
  virtual Status begin(const std::vector<WaveSignal> &Signals) = 0;

  /// Starts cycle \p Cycle (monotonically increasing from 0).
  virtual void beginCycle(uint64_t Cycle) = 0;

  /// Reports signal \p Id's value this cycle. \p Changed is false when the
  /// bits equal the previous cycle's (writers may then suppress the
  /// event); the first report of a signal is always marked changed.
  virtual void value(unsigned Id, const std::vector<bool> &Bits,
                     bool Changed) = 0;

  /// Flushes. \p Aborted marks a run that stopped early (error or cycle
  /// budget); the output must still be well-formed.
  virtual Status finish(bool Aborted) = 0;
};

/// The engine-side recorder: change detection, counters, optional sink.
/// Engines construct one per run; with a null sink every call is a cheap
/// no-op, so the engine's per-cycle loop needs no branches beyond
/// `active()`.
class WaveRecorder {
public:
  WaveRecorder(WaveSink *Sink, const obs::Context &Ctx);

  bool active() const { return Sink != nullptr; }

  /// Declares the signals; counts them under `sim.signals`.
  Status begin(std::vector<WaveSignal> Signals);

  void cycle(uint64_t Cycle);

  /// Records one value event: counts it under `sim.events`, counts the
  /// changed bits under `sim.toggles`, normalizes the bit count to the
  /// declared width, and forwards with the change flag.
  void record(unsigned Id, std::vector<bool> Bits);

  Status finish(bool Aborted);

private:
  WaveSink *Sink = nullptr;
  obs::Counter *Events = nullptr;
  obs::Counter *Toggles = nullptr;
  obs::Counter *SignalsCount = nullptr;
  std::vector<WaveSignal> Signals;
  std::vector<std::vector<bool>> Last;
  std::vector<uint8_t> Seen;
};

/// An in-memory sink: buffers every event so a run (complete or aborted)
/// can be inspected by tests or replayed into file writers afterwards.
class WaveCapture : public WaveSink {
public:
  struct Event {
    unsigned Id = 0;
    std::vector<bool> Bits;
    bool Changed = true;
  };

  Status begin(const std::vector<WaveSignal> &Signals) override;
  void beginCycle(uint64_t Cycle) override;
  void value(unsigned Id, const std::vector<bool> &Bits,
             bool Changed) override;
  Status finish(bool Aborted) override;

  const std::vector<WaveSignal> &signals() const { return Sigs; }
  uint64_t cycles() const { return ByCycle.size(); }
  bool finished() const { return Done; }
  bool aborted() const { return Aborted; }
  const std::vector<std::vector<Event>> &eventsByCycle() const {
    return ByCycle;
  }

  /// The bits signal \p Name reported at \p Cycle, or null when absent.
  const std::vector<bool> *valueAt(uint64_t Cycle,
                                   std::string_view Name) const;

private:
  std::vector<WaveSignal> Sigs;
  std::vector<std::vector<Event>> ByCycle;
  bool Done = false;
  bool Aborted = false;
};

/// Replays one or more captured runs into \p Out as a single stream.
/// Each source's signals are renamed `<prefix>.<name>` when its prefix is
/// nonempty (the driver uses `interp` / `netlist` in `--sim=both` runs).
/// Cycles are interleaved in time order; the replay finishes aborted when
/// any source run aborted.
Status replay(
    const std::vector<std::pair<const WaveCapture *, std::string>> &Sources,
    WaveSink &Out);

/// Dynamic toggle coverage: turns per-cycle waveform events into
/// per-signal-bit transition bins in the "sim.toggle" space of a
/// coverage registry — bit \p b of signal `name` hits `name[b]:01` on a
/// 0->1 transition and `name[b]:10` on 1->0 (bit indices are the
/// flattened LSB-first positions the engines report). The first reported
/// value of a signal sets its baseline and records no transition; there
/// is no x->v toggle. Engine-agnostic: the driver replays captured
/// interpreter/netlist runs (with per-engine name prefixes) into one
/// sink. Present in every build — under RETICLE_NO_TELEMETRY the
/// registry is the inline no-op, so recording vanishes with it.
class ToggleCoverageSink : public WaveSink {
public:
  explicit ToggleCoverageSink(obs::Coverage &Cov) : Cov(Cov) {}

  Status begin(const std::vector<WaveSignal> &Signals) override;
  void beginCycle(uint64_t Cycle) override;
  void value(unsigned Id, const std::vector<bool> &Bits,
             bool Changed) override;
  Status finish(bool Aborted) override;

private:
  obs::Coverage &Cov;
  std::vector<WaveSignal> Sigs;
  std::vector<std::vector<bool>> Last;
  std::vector<uint8_t> Seen;
};

#ifndef RETICLE_NO_TELEMETRY

/// Writes standard VCD into an in-memory buffer (the driver streams it to
/// a file or stdout after the run, so aborted runs still flush). Signal
/// names containing a '.' are split into `$scope module` groups on the
/// first dot; all signals dump as `x` before their first recorded value,
/// and unchanged values are suppressed.
class VcdWriter : public WaveSink {
public:
  explicit VcdWriter(std::string Top = "reticle");

  Status begin(const std::vector<WaveSignal> &Signals) override;
  void beginCycle(uint64_t Cycle) override;
  void value(unsigned Id, const std::vector<bool> &Bits,
             bool Changed) override;
  Status finish(bool Aborted) override;

  const std::string &text() const { return Out; }

  /// The short identifier code assigned to signal \p Id (base-94 over the
  /// printable ASCII range, multi-character past 94 signals).
  static std::string idCode(unsigned Id);

private:
  std::string Top;
  std::string Out;
  std::vector<WaveSignal> Sigs;
  uint64_t LastCycle = 0;
  bool AnyCycle = false;
};

/// Writes the `reticle-wave-v1` JSONL stream: one header line declaring
/// the signal set, one record per signal per cycle (no suppression, so
/// wave_diff joins without carrying state), and one footer line with the
/// cycle count and abort flag.
class WaveJsonWriter : public WaveSink {
public:
  WaveJsonWriter(std::string Top, std::string Engine);

  Status begin(const std::vector<WaveSignal> &Signals) override;
  void beginCycle(uint64_t Cycle) override;
  void value(unsigned Id, const std::vector<bool> &Bits,
             bool Changed) override;
  Status finish(bool Aborted) override;

  const std::string &text() const { return Out; }

private:
  std::string Top;
  std::string Engine;
  std::string Out;
  std::vector<WaveSignal> Sigs;
  uint64_t Cycle = 0;
  uint64_t Cycles = 0;
};

#endif // RETICLE_NO_TELEMETRY

} // namespace sim
} // namespace reticle

#endif // RETICLE_INTERP_WAVE_H
