//===- interp/Eval.h - Single-instruction evaluation ------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pure evaluation of individual intermediate-language instructions over
/// runtime values. Shared by the IR interpreter, the assembly interpreter
/// (which executes target-description bodies), and the translation-
/// validation property tests.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_INTERP_EVAL_H
#define RETICLE_INTERP_EVAL_H

#include "interp/Value.h"
#include "ir/Instr.h"
#include "support/Result.h"

#include <vector>

namespace reticle {
namespace interp {

/// Evaluates the combinational function of \p I over \p Args.
///
/// \p I must not be a register instruction (registers are stateful and
/// handled by the interpreter loop). Arguments appear in instruction order
/// and must already be type-correct.
Result<Value> evalPure(const ir::Instr &I, const std::vector<Value> &Args);

/// Computes the next state of a register instruction: returns \p Data when
/// \p Enable is set and \p Current otherwise.
Value evalRegNext(const Value &Current, const Value &Data,
                  const Value &Enable);

/// Builds the initial value of a register instruction from its init
/// attribute (splatted across lanes).
Value regInitValue(const ir::Instr &I);

} // namespace interp
} // namespace reticle

#endif // RETICLE_INTERP_EVAL_H
