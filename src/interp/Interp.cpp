//===- interp/Interp.cpp - The Reticle interpreter ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "interp/Eval.h"
#include "ir/Verifier.h"


using namespace reticle;
using namespace reticle::interp;
using ir::Function;
using ir::Instr;

Result<Trace> reticle::interp::interpret(const Function &Fn,
                                         const Trace &Input) {
  // WellFormedCheck (Algorithm 1, line 2): verify and split the body into a
  // topologically ordered pure queue P and a register queue R, seeding the
  // environment with register initial values.
  if (Status S = ir::verify(Fn); !S)
    return fail<Trace>(S.error());
  Result<std::vector<size_t>> OrderOr = ir::topoOrder(Fn);
  if (!OrderOr)
    return fail<Trace>(OrderOr.error());
  const std::vector<size_t> &PureOrder = OrderOr.value();

  // The environment is a flat vector indexed by the function's ValueIds
  // (the verify call above warmed the cached analysis).
  const ir::DefUse &DU = Fn.defUse();
  std::vector<Value> Env(DU.numValues());

  std::vector<size_t> RegIndices;
  const std::vector<Instr> &Body = Fn.body();
  for (size_t I = 0; I < Body.size(); ++I) {
    if (!Body[I].isReg())
      continue;
    RegIndices.push_back(I);
    Env[DU.dstIdOf(I)] = regInitValue(Body[I]);
  }

  Trace Output;
  for (size_t Cycle = 0; Cycle < Input.size(); ++Cycle) {
    // Update(env, step_in, inputs): bind every declared input.
    for (const ir::Port &P : Fn.inputs()) {
      const Value *V = Input.get(Cycle, P.Name);
      if (!V)
        return fail<Trace>("cycle " + std::to_string(Cycle) +
                           ": input '" + P.Name + "' missing from trace");
      if (!(V->type() == P.Ty))
        return fail<Trace>("cycle " + std::to_string(Cycle) + ": input '" +
                           P.Name + "' has type " + V->type().str() +
                           ", expected " + P.Ty.str());
      Env[DU.idOf(P.Name)] = *V;
    }

    // Eval(env, P): pure instructions in dependency order.
    for (size_t Index : PureOrder) {
      const Instr &I = Body[Index];
      std::vector<Value> Args;
      Args.reserve(I.args().size());
      for (ir::ValueId Arg : DU.argIdsOf(Index))
        Args.push_back(Env[Arg]);
      Result<Value> V = evalPure(I, Args);
      if (!V)
        return fail<Trace>(V.error());
      Env[DU.dstIdOf(Index)] = V.take();
    }

    // Step(env, outputs): snapshot declared outputs.
    Step &Out = Output.appendStep();
    for (const ir::Port &P : Fn.outputs())
      Out[P.Name] = Env[DU.idOf(P.Name)];

    // Eval(env, R): all registers update simultaneously on the clock edge,
    // reading pre-update state.
    std::vector<Value> NextStates;
    NextStates.reserve(RegIndices.size());
    for (size_t Index : RegIndices) {
      const std::vector<ir::ValueId> &ArgIds = DU.argIdsOf(Index);
      NextStates.push_back(evalRegNext(Env[DU.dstIdOf(Index)],
                                       Env[ArgIds[0]], Env[ArgIds[1]]));
    }
    for (size_t K = 0; K < RegIndices.size(); ++K)
      Env[DU.dstIdOf(RegIndices[K])] = std::move(NextStates[K]);
  }
  return Output;
}
