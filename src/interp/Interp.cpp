//===- interp/Interp.cpp - The Reticle interpreter ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "interp/Eval.h"
#include "ir/Verifier.h"

#include <algorithm>

using namespace reticle;
using namespace reticle::interp;
using ir::Function;
using ir::Instr;

Result<Trace> reticle::interp::interpret(const Function &Fn,
                                         const Trace &Input) {
  return interpret(Fn, Input, nullptr, obs::defaultContext());
}

Result<Trace> reticle::interp::interpret(const Function &Fn,
                                         const Trace &Input,
                                         sim::WaveSink *Wave,
                                         const obs::Context &Ctx) {
  // WellFormedCheck (Algorithm 1, line 2): verify and split the body into a
  // topologically ordered pure queue P and a register queue R, seeding the
  // environment with register initial values.
  if (Status S = ir::verify(Fn); !S)
    return fail<Trace>(S.error());
  Result<std::vector<size_t>> OrderOr = ir::topoOrder(Fn);
  if (!OrderOr)
    return fail<Trace>(OrderOr.error());
  const std::vector<size_t> &PureOrder = OrderOr.value();

  // The environment is a flat vector indexed by the function's ValueIds
  // (the verify call above warmed the cached analysis).
  const ir::DefUse &DU = Fn.defUse();
  std::vector<Value> Env(DU.numValues());

  std::vector<size_t> RegIndices;
  const std::vector<Instr> &Body = Fn.body();
  for (size_t I = 0; I < Body.size(); ++I) {
    if (!Body[I].isReg())
      continue;
    RegIndices.push_back(I);
    Env[DU.dstIdOf(I)] = regInitValue(Body[I]);
  }

  // Port names resolve to ids once per run, not once per cycle: input
  // binding walks each step's ordered map in lockstep with the
  // name-sorted port list, and the output step is cloned from a prototype
  // whose map order is paired with a parallel id vector.
  struct BoundInput {
    const ir::Port *P;
    ir::ValueId Id;
  };
  std::vector<BoundInput> SortedInputs;
  SortedInputs.reserve(Fn.inputs().size());
  for (const ir::Port &P : Fn.inputs())
    SortedInputs.push_back({&P, DU.idOf(P.Name)});
  std::sort(SortedInputs.begin(), SortedInputs.end(),
            [](const BoundInput &A, const BoundInput &B) {
              return A.P->Name < B.P->Name;
            });

  Step Proto;
  for (const ir::Port &P : Fn.outputs())
    Proto[P.Name] = Value();
  std::vector<ir::ValueId> ProtoIds;
  ProtoIds.reserve(Proto.size());
  for (const auto &KV : Proto)
    ProtoIds.push_back(DU.idOf(KV.first));

  obs::Counter &SimCycles = Ctx.counter("sim.cycles");
  obs::Counter &OwnCycles = Ctx.counter("interp.cycles");
  obs::Counter &Evals = Ctx.counter("interp.evals");

  sim::WaveRecorder Rec(Wave, Ctx);
  if (Rec.active()) {
    std::vector<sim::WaveSignal> Signals;
    Signals.reserve(DU.numValues());
    for (ir::ValueId Id = 0; Id < DU.numValues(); ++Id) {
      sim::WaveSignal::Kind K = DU.isInputId(Id)
                                    ? sim::WaveSignal::Kind::Input
                                    : (DU.isLiveOut(Id)
                                           ? sim::WaveSignal::Kind::Output
                                           : sim::WaveSignal::Kind::Internal);
      Signals.emplace_back(DU.nameOf(Id), DU.typeOfId(Id).totalBits(), K);
    }
    if (Status S = Rec.begin(std::move(Signals)); !S)
      return fail<Trace>(S.error());
  }

  // Any mid-run failure still flushes the partial waveform.
  auto Abort = [&](std::string Msg) {
    Rec.finish(/*Aborted=*/true);
    return fail<Trace>(std::move(Msg));
  };

  Trace Output;
  for (size_t Cycle = 0; Cycle < Input.size(); ++Cycle) {
    ++SimCycles;
    ++OwnCycles;

    // Update(env, step_in, inputs): bind every declared input. The step
    // map and the bound-input list are both name-ordered, so one merge
    // walk binds everything without per-cycle hashing.
    const Step &In = Input.step(Cycle);
    auto It = In.begin();
    for (const BoundInput &B : SortedInputs) {
      while (It != In.end() && It->first < B.P->Name)
        ++It;
      if (It == In.end() || It->first != B.P->Name)
        return Abort("cycle " + std::to_string(Cycle) + ": input '" +
                     B.P->Name + "' missing from trace");
      const Value &V = It->second;
      if (!(V.type() == B.P->Ty))
        return Abort("cycle " + std::to_string(Cycle) + ": input '" +
                     B.P->Name + "' has type " + V.type().str() +
                     ", expected " + B.P->Ty.str());
      Env[B.Id] = V;
    }

    // Eval(env, P): pure instructions in dependency order.
    for (size_t Index : PureOrder) {
      const Instr &I = Body[Index];
      std::vector<Value> Args;
      Args.reserve(I.args().size());
      for (ir::ValueId Arg : DU.argIdsOf(Index))
        Args.push_back(Env[Arg]);
      Result<Value> V = evalPure(I, Args);
      if (!V)
        return Abort(V.error());
      Env[DU.dstIdOf(Index)] = V.take();
    }
    Evals += PureOrder.size();

    // Step(env, outputs): snapshot declared outputs into a clone of the
    // prototype step, filling values by map position.
    Output.push(Proto);
    Step &Out = Output.steps().back();
    size_t K = 0;
    for (auto &KV : Out)
      KV.second = Env[ProtoIds[K++]];

    // The waveform observes post-eval, pre-register-update state: inputs
    // as bound, combinational values as computed, registers showing the
    // value they held during the cycle (matching FDRE Q).
    if (Rec.active()) {
      Rec.cycle(Cycle);
      for (ir::ValueId Id = 0; Id < DU.numValues(); ++Id)
        Rec.record(Id, Env[Id].toBits());
    }

    // Eval(env, R): all registers update simultaneously on the clock edge,
    // reading pre-update state.
    std::vector<Value> NextStates;
    NextStates.reserve(RegIndices.size());
    for (size_t Index : RegIndices) {
      const std::vector<ir::ValueId> &ArgIds = DU.argIdsOf(Index);
      NextStates.push_back(evalRegNext(Env[DU.dstIdOf(Index)],
                                       Env[ArgIds[0]], Env[ArgIds[1]]));
    }
    for (size_t K2 = 0; K2 < RegIndices.size(); ++K2)
      Env[DU.dstIdOf(RegIndices[K2])] = std::move(NextStates[K2]);
  }
  if (Status S = Rec.finish(/*Aborted=*/false); !S)
    return fail<Trace>(S.error());
  return Output;
}
