//===- interp/Interp.cpp - The Reticle interpreter ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "interp/Eval.h"
#include "ir/Verifier.h"

#include <map>

using namespace reticle;
using namespace reticle::interp;
using ir::Function;
using ir::Instr;

Result<Trace> reticle::interp::interpret(const Function &Fn,
                                         const Trace &Input) {
  // WellFormedCheck (Algorithm 1, line 2): verify and split the body into a
  // topologically ordered pure queue P and a register queue R, seeding the
  // environment with register initial values.
  if (Status S = ir::verify(Fn); !S)
    return fail<Trace>(S.error());
  Result<std::vector<size_t>> OrderOr = ir::topoOrder(Fn);
  if (!OrderOr)
    return fail<Trace>(OrderOr.error());
  const std::vector<size_t> &PureOrder = OrderOr.value();

  std::vector<size_t> RegIndices;
  std::map<std::string, Value> Env;
  const std::vector<Instr> &Body = Fn.body();
  for (size_t I = 0; I < Body.size(); ++I) {
    if (!Body[I].isReg())
      continue;
    RegIndices.push_back(I);
    Env[Body[I].dst()] = regInitValue(Body[I]);
  }

  Trace Output;
  for (size_t Cycle = 0; Cycle < Input.size(); ++Cycle) {
    // Update(env, step_in, inputs): bind every declared input.
    for (const ir::Port &P : Fn.inputs()) {
      const Value *V = Input.get(Cycle, P.Name);
      if (!V)
        return fail<Trace>("cycle " + std::to_string(Cycle) +
                           ": input '" + P.Name + "' missing from trace");
      if (!(V->type() == P.Ty))
        return fail<Trace>("cycle " + std::to_string(Cycle) + ": input '" +
                           P.Name + "' has type " + V->type().str() +
                           ", expected " + P.Ty.str());
      Env[P.Name] = *V;
    }

    // Eval(env, P): pure instructions in dependency order.
    for (size_t Index : PureOrder) {
      const Instr &I = Body[Index];
      std::vector<Value> Args;
      Args.reserve(I.args().size());
      for (const std::string &Arg : I.args())
        Args.push_back(Env.at(Arg));
      Result<Value> V = evalPure(I, Args);
      if (!V)
        return fail<Trace>(V.error());
      Env[I.dst()] = V.take();
    }

    // Step(env, outputs): snapshot declared outputs.
    Step &Out = Output.appendStep();
    for (const ir::Port &P : Fn.outputs())
      Out[P.Name] = Env.at(P.Name);

    // Eval(env, R): all registers update simultaneously on the clock edge,
    // reading pre-update state.
    std::vector<Value> NextStates;
    NextStates.reserve(RegIndices.size());
    for (size_t Index : RegIndices) {
      const Instr &I = Body[Index];
      NextStates.push_back(evalRegNext(Env.at(I.dst()), Env.at(I.args()[0]),
                                       Env.at(I.args()[1])));
    }
    for (size_t K = 0; K < RegIndices.size(); ++K)
      Env[Body[RegIndices[K]].dst()] = std::move(NextStates[K]);
  }
  return Output;
}
