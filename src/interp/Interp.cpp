//===- interp/Interp.cpp - The Reticle interpreter ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "interp/Cycle.h"
#include "interp/Eval.h"
#include "ir/Verifier.h"

using namespace reticle;
using namespace reticle::interp;
using ir::Function;
using ir::Instr;

Result<Trace> reticle::interp::interpret(const Function &Fn,
                                         const Trace &Input) {
  return interpret(Fn, Input, nullptr, obs::defaultContext());
}

Result<Trace> reticle::interp::interpret(const Function &Fn,
                                         const Trace &Input,
                                         sim::WaveSink *Wave,
                                         const obs::Context &Ctx) {
  // WellFormedCheck (Algorithm 1, line 2): verify and split the body into a
  // topologically ordered pure queue P and a register queue R, seeding the
  // environment with register initial values.
  if (Status S = ir::verify(Fn); !S)
    return fail<Trace>(S.error());
  Result<std::vector<size_t>> OrderOr = ir::topoOrder(Fn);
  if (!OrderOr)
    return fail<Trace>(OrderOr.error());
  const std::vector<size_t> &PureOrder = OrderOr.value();

  // The environment is a flat vector indexed by the function's ValueIds
  // (the verify call above warmed the cached analysis).
  const ir::DefUse &DU = Fn.defUse();
  std::vector<Value> Env(DU.numValues());

  std::vector<size_t> RegIndices;
  const std::vector<Instr> &Body = Fn.body();
  for (size_t I = 0; I < Body.size(); ++I) {
    if (!Body[I].isReg())
      continue;
    RegIndices.push_back(I);
    Env[DU.dstIdOf(I)] = regInitValue(Body[I]);
  }

  // Port names resolve to ids once per run, not once per cycle; the
  // shared binder/prototype do the per-cycle merge walk and cloning.
  sim::InputBinder Binder;
  std::vector<const ir::Port *> InputPorts(DU.numInputs());
  for (const ir::Port &P : Fn.inputs()) {
    ir::ValueId Id = DU.idOf(P.Name);
    Binder.add(P.Name, Id);
    InputPorts[Id] = &P;
  }
  Binder.seal();

  sim::OutputProto Proto;
  for (const ir::Port &P : Fn.outputs())
    Proto.add(P.Name, DU.idOf(P.Name));
  Proto.seal();

  obs::Counter &Evals = Ctx.counter("interp.evals");

  sim::EngineFrame Frame(Wave, Ctx, "interp.cycles");
  if (Frame.waveActive()) {
    std::vector<sim::WaveSignal> Signals;
    Signals.reserve(DU.numValues());
    for (ir::ValueId Id = 0; Id < DU.numValues(); ++Id) {
      sim::WaveSignal::Kind K = DU.isInputId(Id)
                                    ? sim::WaveSignal::Kind::Input
                                    : (DU.isLiveOut(Id)
                                           ? sim::WaveSignal::Kind::Output
                                           : sim::WaveSignal::Kind::Internal);
      Signals.emplace_back(DU.nameOf(Id), DU.typeOfId(Id).totalBits(), K);
    }
    if (Status S = Frame.recorder().begin(std::move(Signals)); !S)
      return fail<Trace>(S.error());
  }

  Trace Output;
  for (size_t Cycle = 0; Cycle < Input.size(); ++Cycle) {
    Frame.beginCycle();

    // Update(env, step_in, inputs): bind every declared input.
    Status Bound = Binder.bind(
        Input.step(Cycle), Cycle, [&](unsigned Slot, const Value &V) {
          const ir::Port &P = *InputPorts[Slot];
          if (!(V.type() == P.Ty))
            return Status::failure("cycle " + std::to_string(Cycle) +
                                   ": input '" + P.Name + "' has type " +
                                   V.type().str() + ", expected " +
                                   P.Ty.str());
          Env[Slot] = V;
          return Status::success();
        });
    if (!Bound)
      return fail<Trace>(Frame.abort(Bound.error()));

    // Eval(env, P): pure instructions in dependency order.
    for (size_t Index : PureOrder) {
      const Instr &I = Body[Index];
      std::vector<Value> Args;
      Args.reserve(I.args().size());
      for (ir::ValueId Arg : DU.argIdsOf(Index))
        Args.push_back(Env[Arg]);
      Result<Value> V = evalPure(I, Args);
      if (!V)
        return fail<Trace>(Frame.abort(V.error()));
      Env[DU.dstIdOf(Index)] = V.take();
    }
    Evals += PureOrder.size();

    // Step(env, outputs): snapshot declared outputs into a clone of the
    // prototype step, filling values by map position.
    Proto.emit(Output, [&](unsigned Slot) { return Env[Slot]; });

    // The waveform observes post-eval, pre-register-update state: inputs
    // as bound, combinational values as computed, registers showing the
    // value they held during the cycle (matching FDRE Q).
    if (Frame.waveActive()) {
      Frame.recorder().cycle(Cycle);
      for (ir::ValueId Id = 0; Id < DU.numValues(); ++Id)
        Frame.recorder().record(Id, Env[Id].toBits());
    }

    // Eval(env, R): all registers update simultaneously on the clock edge,
    // reading pre-update state.
    std::vector<Value> NextStates;
    NextStates.reserve(RegIndices.size());
    for (size_t Index : RegIndices) {
      const std::vector<ir::ValueId> &ArgIds = DU.argIdsOf(Index);
      NextStates.push_back(evalRegNext(Env[DU.dstIdOf(Index)],
                                       Env[ArgIds[0]], Env[ArgIds[1]]));
    }
    for (size_t K2 = 0; K2 < RegIndices.size(); ++K2)
      Env[DU.dstIdOf(RegIndices[K2])] = std::move(NextStates[K2]);
  }
  if (Status S = Frame.finish(); !S)
    return fail<Trace>(S.error());
  return Output;
}
