//===- interp/Wave.cpp - Per-cycle waveform sinks -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "interp/Wave.h"

#include "obs/Json.h"

#include <algorithm>

using namespace reticle;
using namespace reticle::sim;

std::string sim::bitsToString(const std::vector<bool> &Bits) {
  std::string S;
  S.reserve(Bits.size());
  for (size_t I = Bits.size(); I-- > 0;)
    S += Bits[I] ? '1' : '0';
  return S;
}

//===----------------------------------------------------------------------===//
// WaveRecorder
//===----------------------------------------------------------------------===//

WaveRecorder::WaveRecorder(WaveSink *Sink, const obs::Context &Ctx)
    : Sink(Sink) {
  if (Sink) {
    Events = &Ctx.counter("sim.events");
    Toggles = &Ctx.counter("sim.toggles");
    SignalsCount = &Ctx.counter("sim.signals");
  }
}

Status WaveRecorder::begin(std::vector<WaveSignal> Sigs) {
  if (!Sink)
    return Status::success();
  Signals = std::move(Sigs);
  Last.assign(Signals.size(), {});
  Seen.assign(Signals.size(), 0);
  *SignalsCount += Signals.size();
  return Sink->begin(Signals);
}

void WaveRecorder::cycle(uint64_t Cycle) {
  if (Sink)
    Sink->beginCycle(Cycle);
}

void WaveRecorder::record(unsigned Id, std::vector<bool> Bits) {
  if (!Sink || Id >= Signals.size())
    return;
  Bits.resize(Signals[Id].Width, false);
  bool Changed = !Seen[Id] || Bits != Last[Id];
  ++*Events;
  if (Changed && Toggles) {
    if (!Seen[Id]) {
      *Toggles += Bits.size();
    } else {
      uint64_t Flipped = 0;
      for (size_t I = 0; I < Bits.size(); ++I)
        Flipped += Bits[I] != Last[Id][I];
      *Toggles += Flipped;
    }
  }
  Sink->value(Id, Bits, Changed);
  Seen[Id] = 1;
  Last[Id] = std::move(Bits);
}

Status WaveRecorder::finish(bool Aborted) {
  if (!Sink)
    return Status::success();
  return Sink->finish(Aborted);
}

//===----------------------------------------------------------------------===//
// WaveCapture
//===----------------------------------------------------------------------===//

Status WaveCapture::begin(const std::vector<WaveSignal> &Signals) {
  Sigs = Signals;
  return Status::success();
}

void WaveCapture::beginCycle(uint64_t Cycle) {
  ByCycle.resize(std::max<size_t>(ByCycle.size(), Cycle + 1));
}

void WaveCapture::value(unsigned Id, const std::vector<bool> &Bits,
                        bool Changed) {
  if (ByCycle.empty())
    ByCycle.emplace_back();
  ByCycle.back().push_back(Event{Id, Bits, Changed});
}

Status WaveCapture::finish(bool WasAborted) {
  Done = true;
  Aborted = WasAborted;
  return Status::success();
}

const std::vector<bool> *WaveCapture::valueAt(uint64_t Cycle,
                                              std::string_view Name) const {
  if (Cycle >= ByCycle.size())
    return nullptr;
  for (const Event &E : ByCycle[Cycle])
    if (E.Id < Sigs.size() && Sigs[E.Id].Name == Name)
      return &E.Bits;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// replay
//===----------------------------------------------------------------------===//

Status sim::replay(
    const std::vector<std::pair<const WaveCapture *, std::string>> &Sources,
    WaveSink &Out) {
  std::vector<WaveSignal> Merged;
  std::vector<unsigned> Offset;
  uint64_t Cycles = 0;
  bool Aborted = false;
  for (const auto &[Cap, Prefix] : Sources) {
    Offset.push_back(static_cast<unsigned>(Merged.size()));
    for (const WaveSignal &S : Cap->signals()) {
      std::string Name = Prefix.empty() ? S.Name : Prefix + "." + S.Name;
      Merged.emplace_back(std::move(Name), S.Width, S.SigKind);
    }
    Cycles = std::max(Cycles, Cap->cycles());
    Aborted = Aborted || Cap->aborted();
  }
  if (Status S = Out.begin(Merged); !S.ok())
    return S;
  for (uint64_t C = 0; C < Cycles; ++C) {
    Out.beginCycle(C);
    for (size_t I = 0; I < Sources.size(); ++I) {
      const WaveCapture &Cap = *Sources[I].first;
      if (C >= Cap.cycles())
        continue;
      for (const WaveCapture::Event &E : Cap.eventsByCycle()[C])
        Out.value(Offset[I] + E.Id, E.Bits, E.Changed);
    }
  }
  return Out.finish(Aborted);
}

//===----------------------------------------------------------------------===//
// ToggleCoverageSink
//===----------------------------------------------------------------------===//

Status ToggleCoverageSink::begin(const std::vector<WaveSignal> &Signals) {
  Sigs = Signals;
  Last.assign(Sigs.size(), {});
  Seen.assign(Sigs.size(), 0);
  return Status::success();
}

void ToggleCoverageSink::beginCycle(uint64_t) {}

void ToggleCoverageSink::value(unsigned Id, const std::vector<bool> &Bits,
                               bool Changed) {
  if (Id >= Sigs.size())
    return;
  if (!Seen[Id]) {
    // Baseline: the first reported value is an x->v assignment, not a
    // toggle.
    Seen[Id] = 1;
    Last[Id] = Bits;
    return;
  }
  if (!Changed)
    return;
  const std::vector<bool> &Prev = Last[Id];
  size_t Width = std::min<size_t>(Sigs[Id].Width,
                                  std::max(Prev.size(), Bits.size()));
  for (size_t B = 0; B < Width; ++B) {
    bool Old = B < Prev.size() && Prev[B];
    bool New = B < Bits.size() && Bits[B];
    if (Old == New)
      continue;
    Cov.hit("sim.toggle", Sigs[Id].Name + "[" + std::to_string(B) +
                              (New ? "]:01" : "]:10"));
  }
  Last[Id] = Bits;
}

Status ToggleCoverageSink::finish(bool) { return Status::success(); }

#ifndef RETICLE_NO_TELEMETRY

//===----------------------------------------------------------------------===//
// VcdWriter
//===----------------------------------------------------------------------===//

VcdWriter::VcdWriter(std::string Top) : Top(std::move(Top)) {}

std::string VcdWriter::idCode(unsigned Id) {
  // Base-94 over the printable ASCII range 33..126, least significant
  // digit first; one character covers the first 94 signals.
  std::string Code;
  do {
    Code += static_cast<char>(33 + Id % 94);
    Id /= 94;
  } while (Id > 0);
  return Code;
}

Status VcdWriter::begin(const std::vector<WaveSignal> &Signals) {
  Sigs = Signals;
  Out += "$version reticle wave writer $end\n";
  Out += "$timescale 1ns $end\n";
  Out += "$scope module " + Top + " $end\n";

  // Group dotted names (`interp.y`) into sub-scopes on the first dot,
  // preserving first-appearance order; undotted names live in the top
  // scope and are emitted first.
  std::vector<std::string> ScopeOrder;
  auto ScopeOf = [](const std::string &Name) {
    size_t Dot = Name.find('.');
    return Dot == std::string::npos ? std::string() : Name.substr(0, Dot);
  };
  auto LeafOf = [](const std::string &Name) {
    size_t Dot = Name.find('.');
    return Dot == std::string::npos ? Name : Name.substr(Dot + 1);
  };
  for (const WaveSignal &S : Sigs) {
    std::string Scope = ScopeOf(S.Name);
    if (!Scope.empty() &&
        std::find(ScopeOrder.begin(), ScopeOrder.end(), Scope) ==
            ScopeOrder.end())
      ScopeOrder.push_back(Scope);
  }
  auto EmitVar = [&](unsigned Id) {
    const WaveSignal &S = Sigs[Id];
    std::string Leaf = LeafOf(S.Name);
    Out += "$var wire " + std::to_string(S.Width) + " " + idCode(Id) + " " +
           Leaf;
    if (S.Width > 1)
      Out += " [" + std::to_string(S.Width - 1) + ":0]";
    Out += " $end\n";
  };
  for (unsigned Id = 0; Id < Sigs.size(); ++Id)
    if (ScopeOf(Sigs[Id].Name).empty())
      EmitVar(Id);
  for (const std::string &Scope : ScopeOrder) {
    Out += "$scope module " + Scope + " $end\n";
    for (unsigned Id = 0; Id < Sigs.size(); ++Id)
      if (ScopeOf(Sigs[Id].Name) == Scope)
        EmitVar(Id);
    Out += "$upscope $end\n";
  }
  Out += "$upscope $end\n";
  Out += "$enddefinitions $end\n";

  // Everything is unknown until its first recorded value — registers show
  // as x before the first clock edge.
  Out += "$dumpvars\n";
  for (unsigned Id = 0; Id < Sigs.size(); ++Id) {
    if (Sigs[Id].Width == 1)
      Out += "x" + idCode(Id) + "\n";
    else
      Out += "bx " + idCode(Id) + "\n";
  }
  Out += "$end\n";
  return Status::success();
}

void VcdWriter::beginCycle(uint64_t Cycle) {
  Out += "#" + std::to_string(Cycle) + "\n";
  LastCycle = Cycle;
  AnyCycle = true;
}

void VcdWriter::value(unsigned Id, const std::vector<bool> &Bits,
                      bool Changed) {
  if (!Changed || Id >= Sigs.size())
    return;
  if (Sigs[Id].Width == 1) {
    Out += Bits.empty() || !Bits[0] ? "0" : "1";
    Out += idCode(Id) + "\n";
    return;
  }
  Out += "b" + bitsToString(Bits) + " " + idCode(Id) + "\n";
}

Status VcdWriter::finish(bool Aborted) {
  if (AnyCycle)
    Out += "#" + std::to_string(LastCycle + 1) + "\n";
  if (Aborted)
    Out += "$comment aborted $end\n";
  return Status::success();
}

//===----------------------------------------------------------------------===//
// WaveJsonWriter
//===----------------------------------------------------------------------===//

WaveJsonWriter::WaveJsonWriter(std::string Top, std::string Engine)
    : Top(std::move(Top)), Engine(std::move(Engine)) {}

static const char *kindName(WaveSignal::Kind K) {
  switch (K) {
  case WaveSignal::Kind::Input:
    return "input";
  case WaveSignal::Kind::Output:
    return "output";
  case WaveSignal::Kind::Internal:
    return "internal";
  }
  return "internal";
}

Status WaveJsonWriter::begin(const std::vector<WaveSignal> &Signals) {
  Sigs = Signals;
  obs::Json Header = obs::Json::object();
  Header.set("schema", "reticle-wave-v1");
  Header.set("top", Top);
  Header.set("engine", Engine);
  obs::Json List = obs::Json::array();
  for (const WaveSignal &S : Sigs) {
    obs::Json Sig = obs::Json::object();
    Sig.set("name", S.Name);
    Sig.set("width", S.Width);
    Sig.set("kind", kindName(S.SigKind));
    List.push(std::move(Sig));
  }
  Header.set("signals", std::move(List));
  Out += Header.str() + "\n";
  return Status::success();
}

void WaveJsonWriter::beginCycle(uint64_t C) {
  Cycle = C;
  Cycles = std::max(Cycles, C + 1);
}

void WaveJsonWriter::value(unsigned Id, const std::vector<bool> &Bits,
                           bool /*Changed*/) {
  if (Id >= Sigs.size())
    return;
  // Records are emitted for every signal every cycle (no suppression), so
  // consumers can join on {cycle, signal} without reconstructing state.
  Out += "{\"cycle\":" + std::to_string(Cycle) +
         ",\"signal\":" + obs::Json::quote(Sigs[Id].Name) +
         ",\"value\":\"" + bitsToString(Bits) + "\"}\n";
}

Status WaveJsonWriter::finish(bool Aborted) {
  obs::Json Footer = obs::Json::object();
  Footer.set("cycles", Cycles);
  Footer.set("aborted", Aborted);
  Out += Footer.str() + "\n";
  return Status::success();
}

#endif // RETICLE_NO_TELEMETRY
