//===- interp/TraceIo.h - Input-trace parsing -------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the `reticle-input-trace-v1` JSON document that `reticlec --run`
/// feeds to the simulation engines:
///
///   {
///     "schema": "reticle-input-trace-v1",
///     "cycles": [
///       {"a": 3, "b": -5, "en": true},
///       {"a": [1, 2, 3, 4], "b": 0, "en": false}
///     ]
///   }
///
/// Each cycle object maps input-port names to values: booleans for `bool`
/// ports, integers for scalar ports, and arrays with one integer per lane
/// for vector ports. Values are canonicalized against the function's port
/// types (wrapping like IR constants); every declared input must be
/// present in every cycle.
///
/// A cycle object may also carry a reserved `"cycle"` key (unless the
/// function declares an input port of that name): when present it must be
/// the record's zero-based index, so generated traces can self-check
/// against reordered or dropped records ("non-monotone cycle record").
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_INTERP_TRACEIO_H
#define RETICLE_INTERP_TRACEIO_H

#include "interp/Trace.h"
#include "ir/Function.h"
#include "support/Result.h"

#include <string>

namespace reticle {
namespace sim {

/// Parses \p Text as a `reticle-input-trace-v1` document and types it
/// against \p Fn's input ports. Returns a trace with one fully-populated
/// step per cycle, or a failure naming the first offending cycle/port.
Result<interp::Trace> parseInputTrace(const std::string &Text,
                                      const ir::Function &Fn);

} // namespace sim
} // namespace reticle

#endif // RETICLE_INTERP_TRACEIO_H
