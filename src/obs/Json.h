//===- obs/Json.h - Minimal JSON document model -----------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON value used by the observability layer:
/// trace files, the unified stats report, and the benchmark series dumps
/// are all built from this type. Objects preserve insertion order so the
/// human-readable table rendering and the serialized document agree.
///
/// The parser exists so tests (and the `json_check` tool) can read the
/// documents back and validate them; it is a strict RFC-8259 subset
/// parser, not a general-purpose library.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_OBS_JSON_H
#define RETICLE_OBS_JSON_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace reticle {
namespace obs {

/// A JSON value: null, bool, integer, double, string, array, or object.
class Json {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;
  Json(bool Value) : K(Kind::Bool), B(Value) {}
  Json(int Value) : K(Kind::Int), I(Value) {}
  Json(unsigned Value) : K(Kind::Int), I(static_cast<int64_t>(Value)) {}
  Json(int64_t Value) : K(Kind::Int), I(Value) {}
  Json(uint64_t Value) : K(Kind::Int), I(static_cast<int64_t>(Value)) {}
  Json(double Value) : K(Kind::Double), D(Value) {}
  Json(const char *Value) : K(Kind::String), S(Value) {}
  Json(std::string Value) : K(Kind::String), S(std::move(Value)) {}

  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const {
    assert(isBool() && "not a bool");
    return B;
  }
  int64_t asInt() const {
    assert(isNumber() && "not a number");
    return K == Kind::Int ? I : static_cast<int64_t>(D);
  }
  double asDouble() const {
    assert(isNumber() && "not a number");
    return K == Kind::Int ? static_cast<double>(I) : D;
  }
  const std::string &asString() const {
    assert(isString() && "not a string");
    return S;
  }

  /// Array operations.
  Json &push(Json Value) {
    assert(isArray() && "push on a non-array");
    Arr.push_back(std::move(Value));
    return *this;
  }
  const std::vector<Json> &items() const {
    assert(isArray() && "items of a non-array");
    return Arr;
  }

  /// Object operations. \c set replaces an existing key in place, keeping
  /// its original position; new keys append.
  Json &set(std::string Key, Json Value);
  const Json *find(std::string_view Key) const;
  const std::vector<std::pair<std::string, Json>> &members() const {
    assert(isObject() && "members of a non-object");
    return Obj;
  }

  /// Number of elements (array) or members (object); 0 otherwise.
  size_t size() const {
    return K == Kind::Array ? Arr.size()
                            : (K == Kind::Object ? Obj.size() : 0);
  }

  /// Serializes the value. \p Indent of 0 emits one compact line; a
  /// positive indent pretty-prints with that many spaces per level.
  std::string str(unsigned Indent = 0) const;

  /// Quotes and escapes \p Text as a JSON string literal.
  static std::string quote(std::string_view Text);

  /// Parses \p Text into a value; trailing non-whitespace is an error.
  static Result<Json> parse(std::string_view Text);

private:
  void write(std::string &Out, unsigned Indent, unsigned Depth) const;

  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0.0;
  std::string S;
  std::vector<Json> Arr;
  std::vector<std::pair<std::string, Json>> Obj;
};

} // namespace obs
} // namespace reticle

#endif // RETICLE_OBS_JSON_H
