//===- obs/Context.h - Per-compile observability context --------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability context threaded through every pipeline stage: which
/// `Telemetry` instance receives counters/spans/instants, which
/// `RemarkStream` receives remarks, and which `Coverage` registry
/// receives coverage bins. All pointers are always non-null by
/// convention — `defaultContext()` wires them to the process-wide
/// singletons so legacy callers keep the global behavior, while
/// `core::CompileSession` owns a private set so concurrent compiles in
/// one process never share mutable observability state.
///
/// Stage entry points take `const obs::Context &Ctx = obs::defaultContext()`
/// as their trailing parameter; instrumentation sites write
///
///   obs::Span Sp(Ctx, "isel.select");
///   obs::Counter &Trees = Ctx.counter("isel.trees_covered");
///   if (Ctx.remarksEnabled())
///     obs::Remark(Ctx, "isel", "pattern")...;
///
/// Under `RETICLE_NO_TELEMETRY` the same struct shape delegates to the
/// inline no-op Telemetry/RemarkStream, so call sites need no ifdefs.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_OBS_CONTEXT_H
#define RETICLE_OBS_CONTEXT_H

#include "obs/Coverage.h"
#include "obs/Remarks.h"
#include "obs/Telemetry.h"

namespace reticle {
namespace obs {

/// A non-owning bundle of the telemetry and remark sinks one compile
/// records into. Cheap to copy; the referenced instances must outlive
/// every stage using the context.
struct Context {
  Telemetry *Telem = nullptr;
  RemarkStream *Rem = nullptr;
  Coverage *Cov = nullptr;

  Counter &counter(std::string_view Name) const { return Telem->counter(Name); }
  Gauge &gauge(std::string_view Name) const { return Telem->gauge(Name); }
  Histogram &histogram(std::string_view Name) const {
    return Telem->histogram(Name);
  }
  bool tracingEnabled() const { return Telem->tracingEnabled(); }
  bool remarksEnabled() const { return Rem->enabled(); }
  void instant(const char *Name) const { Telem->instant(Name); }
  Coverage &coverage() const { return *Cov; }
};

/// The context over the process-wide default telemetry, remark stream,
/// and coverage registry; the default for every stage entry point's
/// trailing Ctx parameter.
inline const Context &defaultContext() {
  static const Context C{&defaultTelemetry(), &defaultRemarks(),
                         &defaultCoverage()};
  return C;
}

} // namespace obs
} // namespace reticle

#endif // RETICLE_OBS_CONTEXT_H
