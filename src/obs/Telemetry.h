//===- obs/Telemetry.h - Tracing spans and counters registry ----*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry layer behind the compiler's observability story (the
/// Section 7 evaluation is entirely about where compile time goes; this is
/// how we see it):
///
///  - **Tracing spans** (`obs::Span`): RAII, nestable, thread-safe.
///    Enabled with `enableTracing()`, serialized as Chrome trace-event /
///    Perfetto JSON by `writeTrace()`. When tracing is disabled a span
///    costs one relaxed atomic load.
///  - **Counters and gauges** (`Ctx.counter("isel.trees_covered")`):
///    registry-backed monotone counters and last-value gauges. The lookup
///    takes a lock, so hot paths hoist the reference out of their loops:
///      obs::Counter &C = Ctx.counter("sat.conflicts");
///    after which every increment is one relaxed atomic add.
///  - **Compile-out**: defining `RETICLE_NO_TELEMETRY` replaces the whole
///    API with inline no-ops; no symbol of Telemetry.cpp is referenced, so
///    release builds can drop the subsystem entirely.
///
/// Telemetry is **instance-based**: a `Telemetry` object owns one registry
/// of counters/gauges and one trace-event buffer with its own clock epoch,
/// so concurrent compiles record into disjoint instances without
/// contending. The process-wide `defaultTelemetry()` instance backs the
/// legacy free functions (`obs::counter`, `obs::enableTracing`, ...) for
/// tools and tests that still speak the global dialect; new code threads
/// an `obs::Context` (Context.h) instead.
///
/// Naming convention: `<stage>.<noun>` in lowercase snake case, where the
/// stage matches the Figure-7 pipeline ("select", "cascade", "place",
/// "codegen") or a subsystem ("sat", "sim"). See docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_OBS_TELEMETRY_H
#define RETICLE_OBS_TELEMETRY_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <string_view>

#ifndef RETICLE_NO_TELEMETRY
#include <atomic>
#include <cmath>
#include <memory>
#else
#include <fstream>
#endif

namespace reticle {
namespace obs {

class Json;
struct Context;

#ifndef RETICLE_NO_TELEMETRY

/// A monotonically increasing event count. Increments are relaxed atomic
/// adds; cross-thread visibility of the final totals is established by the
/// read side (writeTrace / countersJson take the registry lock).
class Counter {
public:
  uint64_t operator++() { return V.fetch_add(1, std::memory_order_relaxed) + 1; }
  uint64_t operator++(int) { return V.fetch_add(1, std::memory_order_relaxed); }
  Counter &operator+=(uint64_t N) {
    V.fetch_add(N, std::memory_order_relaxed);
    return *this;
  }
  uint64_t load() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A last-value-wins measurement (e.g. a high-water mark set by the code
/// that knows it).
class Gauge {
public:
  void set(double Value) { V.store(Value, std::memory_order_relaxed); }
  double load() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// A log-bucketed latency distribution: samples land in power-of-two
/// buckets spanning 2^-32 .. 2^32 (the recording unit is by convention
/// milliseconds), so percentile queries are a bucket walk with log-2
/// resolution. Recording is lock-free — one relaxed bucket add plus CAS
/// loops for the running sum and max — so distinct threads can record into
/// the same histogram; reads (count/percentile/max) are registry-export
/// paths and take relaxed snapshots.
class Histogram {
public:
  void record(double Value) {
    Buckets[bucketOf(Value)].fetch_add(1, std::memory_order_relaxed);
    N.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(Sum, Value);
    atomicMax(Mx, Value);
  }

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  double max() const { return Mx.load(std::memory_order_relaxed); }

  /// The \p Q-th percentile (0..100) estimated as the upper bound of the
  /// bucket holding the rank-Q sample, clamped to the observed max.
  double percentile(double Q) const {
    uint64_t Total = N.load(std::memory_order_relaxed);
    if (!Total)
      return 0.0;
    auto Rank = static_cast<uint64_t>(std::ceil(Q / 100.0 * Total));
    if (Rank < 1)
      Rank = 1;
    uint64_t Seen = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      Seen += Buckets[I].load(std::memory_order_relaxed);
      if (Seen >= Rank)
        return std::min(upperOf(I), max());
    }
    return max();
  }

  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    N.store(0, std::memory_order_relaxed);
    Sum.store(0.0, std::memory_order_relaxed);
    Mx.store(0.0, std::memory_order_relaxed);
  }

private:
  static constexpr unsigned NumBuckets = 64;

  /// Bucket I holds values in [2^(I-33), 2^(I-32)); non-positive values
  /// land in bucket 0.
  static unsigned bucketOf(double V) {
    if (!(V > 0.0))
      return 0;
    int Exp = 0;
    std::frexp(V, &Exp); // V = m * 2^Exp, m in [0.5, 1)
    int Index = Exp + 32;
    if (Index < 0)
      return 0;
    if (Index >= static_cast<int>(NumBuckets))
      return NumBuckets - 1;
    return static_cast<unsigned>(Index);
  }
  static double upperOf(unsigned I) {
    return std::ldexp(1.0, static_cast<int>(I) - 32);
  }
  static void atomicAdd(std::atomic<double> &A, double V) {
    double Cur = A.load(std::memory_order_relaxed);
    while (!A.compare_exchange_weak(Cur, Cur + V, std::memory_order_relaxed)) {
    }
  }
  static void atomicMax(std::atomic<double> &A, double V) {
    double Cur = A.load(std::memory_order_relaxed);
    while (Cur < V &&
           !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> N{0};
  std::atomic<double> Sum{0.0};
  std::atomic<double> Mx{0.0};
};

/// One telemetry domain: a registry of named counters/gauges plus a
/// trace-event buffer with its own clock epoch and tracing switch. All
/// operations are thread-safe; references returned by counter()/gauge()
/// stay valid for the lifetime of the Telemetry object.
class Telemetry {
public:
  Telemetry();
  ~Telemetry();
  Telemetry(const Telemetry &) = delete;
  Telemetry &operator=(const Telemetry &) = delete;

  /// Finds or registers the counter / gauge / histogram named \p Name.
  /// Hot paths should hoist the returned reference out of their loops.
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Trace switch. Spans and instants record only while enabled.
  bool tracingEnabled() const;
  void enableTracing(bool On = true);

  /// Records a zero-duration instant event (e.g. one CDCL restart).
  void instant(const char *Name);

  /// Serializes all recorded events as Chrome trace-event JSON
  /// (chrome://tracing and https://ui.perfetto.dev load it directly).
  std::string traceJson() const;
  Status writeTrace(const std::string &Path) const;

  /// Folds the recorded span tree into collapsed-stack format — one
  /// `frame;frame;leaf <self_us>` line per distinct stack, sorted by
  /// stack name, with integer-microsecond self time (the flamegraph
  /// input dialect of speedscope and flamegraph.pl). Nesting is
  /// reconstructed per thread from event timestamp containment, the same
  /// way trace viewers do it.
  std::string foldedStacks() const;

  /// A snapshot of every registered counter and gauge, as
  /// {"counters": {...}, "gauges": {...}}.
  Json countersJson() const;

  /// A snapshot of every registered histogram, as
  /// {name: {"count": N, "sum": S, "p50": ..., "p90": ..., "p99": ...,
  /// "max": ...}}. Empty (zero-sample) histograms are skipped.
  Json histogramsJson() const;

  /// Clears recorded events and zeroes all counters/gauges; disables
  /// tracing. Registered names stay valid.
  void reset();

private:
  friend class Span;
  double nowUs() const;
  void record(const char *Name, char Phase, double TsUs, double DurUs,
              std::string ArgsJson);

  struct Impl;
  std::unique_ptr<Impl> I;
};

/// The process-wide default instance behind the legacy free-function API.
Telemetry &defaultTelemetry();

/// Free-function dialect over defaultTelemetry(), kept for tools and
/// tests; pipeline code threads a Context instead.
Counter &counter(std::string_view Name);
Gauge &gauge(std::string_view Name);
bool tracingEnabled();
void enableTracing(bool On = true);

/// An RAII tracing span. Construction samples the clock; destruction
/// records one Chrome trace-event "complete" ("X") event. Spans nest by
/// scope per thread, which is exactly how trace viewers reconstruct the
/// hierarchy. \p Name must outlive the span (string literals do).
class Span {
public:
  /// Records into defaultTelemetry().
  explicit Span(const char *Name);
  /// Records into \p Telem / the telemetry of \p Ctx, which must outlive
  /// the span.
  Span(Telemetry &Telem, const char *Name);
  Span(const Context &Ctx, const char *Name);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a key/value argument shown by the trace viewer.
  void arg(const char *Key, int64_t Value);
  void arg(const char *Key, uint64_t Value);
  void arg(const char *Key, unsigned Value) {
    arg(Key, static_cast<uint64_t>(Value));
  }
  void arg(const char *Key, double Value);
  void arg(const char *Key, const char *Value);
  void arg(const char *Key, const std::string &Value);

private:
  void append(const char *Key, std::string Rendered);

  Telemetry *Telem = nullptr;
  const char *Name = nullptr;
  double StartUs = 0.0;
  bool Active = false;
  std::string ArgsJson;
};

/// Free-function dialect over defaultTelemetry().
void instant(const char *Name);
std::string traceJson();
Status writeTrace(const std::string &Path);
Json countersJson();

/// Clears defaultTelemetry(). Test-only.
void resetForTest();

#else // RETICLE_NO_TELEMETRY

// Compiled-out variant: the full API surface as inline no-ops. Nothing
// here references a symbol of Telemetry.cpp, so translation units built
// with RETICLE_NO_TELEMETRY link without the telemetry objects.

class Counter {
public:
  uint64_t operator++() { return 0; }
  uint64_t operator++(int) { return 0; }
  Counter &operator+=(uint64_t) { return *this; }
  uint64_t load() const { return 0; }
  void reset() {}
};

class Gauge {
public:
  void set(double) {}
  double load() const { return 0.0; }
  void reset() {}
};

class Histogram {
public:
  void record(double) {}
  uint64_t count() const { return 0; }
  double sum() const { return 0.0; }
  double max() const { return 0.0; }
  double percentile(double) const { return 0.0; }
  void reset() {}
};

class Telemetry {
public:
  Telemetry() = default;
  Telemetry(const Telemetry &) = delete;
  Telemetry &operator=(const Telemetry &) = delete;

  Counter &counter(std::string_view) {
    static Counter Noop;
    return Noop;
  }
  Gauge &gauge(std::string_view) {
    static Gauge Noop;
    return Noop;
  }
  Histogram &histogram(std::string_view) {
    static Histogram Noop;
    return Noop;
  }
  bool tracingEnabled() const { return false; }
  void enableTracing(bool = true) {}
  void instant(const char *) {}
  std::string traceJson() const { return "{\"traceEvents\":[]}"; }
  std::string foldedStacks() const { return ""; }
  Status writeTrace(const std::string &Path) const {
    std::ofstream Out(Path);
    if (!Out)
      return Status::failure("cannot write trace file '" + Path + "'");
    Out << traceJson() << "\n";
    return Status::success();
  }
  void reset() {}
};

inline Telemetry &defaultTelemetry() {
  static Telemetry Noop;
  return Noop;
}

inline Counter &counter(std::string_view Name) {
  return defaultTelemetry().counter(Name);
}
inline Gauge &gauge(std::string_view Name) {
  return defaultTelemetry().gauge(Name);
}

inline bool tracingEnabled() { return false; }
inline void enableTracing(bool = true) {}

class Span {
public:
  explicit Span(const char *) {}
  Span(Telemetry &, const char *) {}
  Span(const Context &, const char *) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  void arg(const char *, int64_t) {}
  void arg(const char *, uint64_t) {}
  void arg(const char *, unsigned) {}
  void arg(const char *, double) {}
  void arg(const char *, const char *) {}
  void arg(const char *, const std::string &) {}
};

inline void instant(const char *) {}

inline std::string traceJson() { return "{\"traceEvents\":[]}"; }

inline Status writeTrace(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write trace file '" + Path + "'");
  Out << traceJson() << "\n";
  return Status::success();
}

inline void resetForTest() {}

#endif // RETICLE_NO_TELEMETRY

} // namespace obs
} // namespace reticle

#endif // RETICLE_OBS_TELEMETRY_H
