//===- obs/Snapshots.h - Pipeline stage snapshots ---------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage snapshots: the program text after each Figure-7 pipeline stage
/// (`parse`, `isel`, `cascade`, `place`, `codegen`), collected by
/// `core::compile` into a SnapshotSink and written by `writeSnapshots` as
/// one file per stage plus a `manifest.json` (`reticle-snapshots-v1`), so
/// stages can be diffed and re-parsed:
///
///   reticlec --dump-after-all=snap/ prog.ret
///   diff snap/01-isel.rasm snap/02-cascade.rasm
///
/// Snapshots are plain printer output over data the pipeline produces
/// anyway; collection costs nothing unless a sink is installed, so the
/// feature stays available (and free) in RETICLE_NO_TELEMETRY builds.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_OBS_SNAPSHOTS_H
#define RETICLE_OBS_SNAPSHOTS_H

#include "support/Result.h"

#include <string>
#include <string_view>
#include <vector>

namespace reticle {
namespace obs {

/// One stage's program text. \p Format names the language the text is in
/// ("ir", "asm", or "verilog"); it decides the dump file extension and
/// which parser can read the dump back.
struct StageSnapshot {
  std::string Stage;
  std::string Format;
  std::string Text;
};

/// Collects snapshots in pipeline order. Installed into
/// core::CompileOptions by callers that want dumps; stages append as they
/// finish.
class SnapshotSink {
public:
  void add(std::string Stage, std::string Format, std::string Text) {
    Stages.push_back(
        {std::move(Stage), std::move(Format), std::move(Text)});
  }

  const std::vector<StageSnapshot> &stages() const { return Stages; }
  const StageSnapshot *find(std::string_view Stage) const;

private:
  std::vector<StageSnapshot> Stages;
};

/// The dump file name for snapshot \p Index of the sink:
/// `<NN>-<stage>.<ext>` with `.ret` / `.rasm` / `.v` by format.
std::string snapshotFileName(const StageSnapshot &Snapshot, size_t Index);

/// Writes every snapshot of \p Sink into directory \p Dir (created if
/// missing) under its snapshotFileName, plus a `manifest.json`:
///
///   { "schema": "reticle-snapshots-v1", "program": <program>,
///     "stages": { "<stage>": { "index": N, "format": ...,
///                              "file": ..., "bytes": ... }, ... } }
Status writeSnapshots(const SnapshotSink &Sink, const std::string &Dir,
                      std::string_view Program);

} // namespace obs
} // namespace reticle

#endif // RETICLE_OBS_SNAPSHOTS_H
