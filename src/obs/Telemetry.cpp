//===- obs/Telemetry.cpp - Tracing spans and counters registry -----------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#ifndef RETICLE_NO_TELEMETRY

#include "obs/Telemetry.h"

#include "obs/Context.h"
#include "obs/Json.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <vector>

using namespace reticle;
using namespace reticle::obs;

namespace {

struct TraceEvent {
  const char *Name;
  char Phase; // 'X' complete, 'i' instant
  double TsUs;
  double DurUs;
  uint32_t Tid;
  std::string ArgsJson; // rendered "k":v,... body, may be empty
};

struct CounterEntry {
  std::string Name;
  Counter Value;
  explicit CounterEntry(std::string Name) : Name(std::move(Name)) {}
};

struct GaugeEntry {
  std::string Name;
  Gauge Value;
  explicit GaugeEntry(std::string Name) : Name(std::move(Name)) {}
};

struct HistogramEntry {
  std::string Name;
  Histogram Value;
  explicit HistogramEntry(std::string Name) : Name(std::move(Name)) {}
};

/// Trace tids are process-wide so events from several Telemetry instances
/// viewed side by side still distinguish the recording threads.
uint32_t threadId() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

} // namespace

/// Per-instance telemetry state. Entries live in deques so references
/// handed out by counter()/gauge() stay valid for the instance lifetime.
struct Telemetry::Impl {
  mutable std::mutex Mu;
  std::deque<CounterEntry> Counters;
  std::map<std::string, Counter *, std::less<>> CounterIndex;
  std::deque<GaugeEntry> Gauges;
  std::map<std::string, Gauge *, std::less<>> GaugeIndex;
  std::deque<HistogramEntry> Histograms;
  std::map<std::string, Histogram *, std::less<>> HistogramIndex;
  std::vector<TraceEvent> Events;
  std::atomic<bool> Tracing{false};
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
};

Telemetry::Telemetry() : I(std::make_unique<Impl>()) {}
Telemetry::~Telemetry() = default;

double Telemetry::nowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - I->Epoch)
      .count();
}

void Telemetry::record(const char *Name, char Phase, double TsUs, double DurUs,
                       std::string ArgsJson) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Events.push_back({Name, Phase, TsUs, DurUs, threadId(), std::move(ArgsJson)});
}

Counter &Telemetry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->CounterIndex.find(Name);
  if (It != I->CounterIndex.end())
    return *It->second;
  I->Counters.emplace_back(std::string(Name));
  Counter *C = &I->Counters.back().Value;
  I->CounterIndex.emplace(std::string(Name), C);
  return *C;
}

Gauge &Telemetry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->GaugeIndex.find(Name);
  if (It != I->GaugeIndex.end())
    return *It->second;
  I->Gauges.emplace_back(std::string(Name));
  Gauge *G = &I->Gauges.back().Value;
  I->GaugeIndex.emplace(std::string(Name), G);
  return *G;
}

Histogram &Telemetry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->HistogramIndex.find(Name);
  if (It != I->HistogramIndex.end())
    return *It->second;
  I->Histograms.emplace_back(std::string(Name));
  Histogram *H = &I->Histograms.back().Value;
  I->HistogramIndex.emplace(std::string(Name), H);
  return *H;
}

bool Telemetry::tracingEnabled() const {
  return I->Tracing.load(std::memory_order_relaxed);
}

void Telemetry::enableTracing(bool On) {
  I->Tracing.store(On, std::memory_order_relaxed);
}

void Telemetry::instant(const char *Name) {
  if (!tracingEnabled())
    return;
  record(Name, 'i', nowUs(), 0.0, std::string());
}

std::string Telemetry::traceJson() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  std::string Out = "{\"traceEvents\":[";
  char Buf[64];
  for (size_t Index = 0; Index < I->Events.size(); ++Index) {
    const TraceEvent &E = I->Events[Index];
    if (Index)
      Out.push_back(',');
    Out += "\n{\"name\":";
    Out += Json::quote(E.Name);
    Out += ",\"ph\":\"";
    Out.push_back(E.Phase);
    Out += "\",\"ts\":";
    std::snprintf(Buf, sizeof(Buf), "%.3f", E.TsUs);
    Out += Buf;
    if (E.Phase == 'X') {
      Out += ",\"dur\":";
      std::snprintf(Buf, sizeof(Buf), "%.3f", E.DurUs);
      Out += Buf;
    } else {
      Out += ",\"s\":\"t\""; // instant scope: thread
    }
    std::snprintf(Buf, sizeof(Buf), ",\"pid\":1,\"tid\":%u", E.Tid);
    Out += Buf;
    if (!E.ArgsJson.empty()) {
      Out += ",\"args\":{";
      Out += E.ArgsJson;
      Out.push_back('}');
    }
    Out.push_back('}');
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}";
  return Out;
}

Status Telemetry::writeTrace(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write trace file '" + Path + "'");
  Out << traceJson() << "\n";
  if (!Out)
    return Status::failure("error writing trace file '" + Path + "'");
  return Status::success();
}

std::string Telemetry::foldedStacks() const {
  std::vector<TraceEvent> Events;
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    for (const TraceEvent &E : I->Events)
      if (E.Phase == 'X')
        Events.push_back(E);
  }

  std::map<uint32_t, std::vector<const TraceEvent *>> ByTid;
  for (const TraceEvent &E : Events)
    ByTid[E.Tid].push_back(&E);

  // Spans record on destruction, i.e. in completion order; re-sorting by
  // start time (ties: longer span first, it is the encloser) restores the
  // call order, after which timestamp containment reconstructs nesting —
  // a span belongs to every still-open span that started before it and
  // ends after it. Self time is a span's duration minus its children's.
  std::map<std::string, double> SelfUs;
  for (auto &[Tid, Evs] : ByTid) {
    (void)Tid;
    std::stable_sort(Evs.begin(), Evs.end(),
                     [](const TraceEvent *A, const TraceEvent *B) {
                       if (A->TsUs != B->TsUs)
                         return A->TsUs < B->TsUs;
                       return A->DurUs > B->DurUs;
                     });
    struct Frame {
      std::string Stack;
      double EndUs;
      double SelfUs;
    };
    std::vector<Frame> Open;
    auto Close = [&](Frame &F) { SelfUs[F.Stack] += F.SelfUs; };
    for (const TraceEvent *E : Evs) {
      while (!Open.empty() && Open.back().EndUs <= E->TsUs) {
        Close(Open.back());
        Open.pop_back();
      }
      std::string Stack = Open.empty()
                              ? std::string(E->Name)
                              : Open.back().Stack + ";" + E->Name;
      if (!Open.empty())
        Open.back().SelfUs -= E->DurUs;
      Open.push_back({std::move(Stack), E->TsUs + E->DurUs, E->DurUs});
    }
    while (!Open.empty()) {
      Close(Open.back());
      Open.pop_back();
    }
  }

  std::string Out;
  for (const auto &[Stack, Us] : SelfUs) {
    long long N = std::llround(Us);
    if (N < 0)
      N = 0;
    Out += Stack;
    Out.push_back(' ');
    Out += std::to_string(N);
    Out.push_back('\n');
  }
  return Out;
}

Json Telemetry::countersJson() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  Json Doc = Json::object();
  Json Counters = Json::object();
  for (const CounterEntry &E : I->Counters)
    Counters.set(E.Name, E.Value.load());
  Doc.set("counters", std::move(Counters));
  Json Gauges = Json::object();
  for (const GaugeEntry &E : I->Gauges)
    Gauges.set(E.Name, E.Value.load());
  Doc.set("gauges", std::move(Gauges));
  return Doc;
}

Json Telemetry::histogramsJson() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  Json Doc = Json::object();
  for (const HistogramEntry &E : I->Histograms) {
    if (!E.Value.count())
      continue;
    Json H = Json::object();
    H.set("count", E.Value.count());
    H.set("sum", E.Value.sum());
    H.set("p50", E.Value.percentile(50.0));
    H.set("p90", E.Value.percentile(90.0));
    H.set("p99", E.Value.percentile(99.0));
    H.set("max", E.Value.max());
    Doc.set(E.Name, std::move(H));
  }
  return Doc;
}

void Telemetry::reset() {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Events.clear();
  I->Tracing.store(false, std::memory_order_relaxed);
  for (CounterEntry &E : I->Counters)
    E.Value.reset();
  for (GaugeEntry &E : I->Gauges)
    E.Value.reset();
  for (HistogramEntry &E : I->Histograms)
    E.Value.reset();
}

Telemetry &reticle::obs::defaultTelemetry() {
  static Telemetry T;
  return T;
}

Counter &reticle::obs::counter(std::string_view Name) {
  return defaultTelemetry().counter(Name);
}

Gauge &reticle::obs::gauge(std::string_view Name) {
  return defaultTelemetry().gauge(Name);
}

bool reticle::obs::tracingEnabled() {
  return defaultTelemetry().tracingEnabled();
}

void reticle::obs::enableTracing(bool On) {
  defaultTelemetry().enableTracing(On);
}

Span::Span(const char *Name) : Span(defaultTelemetry(), Name) {}

Span::Span(Telemetry &Telem, const char *Name) : Telem(&Telem), Name(Name) {
  if (!Telem.tracingEnabled())
    return;
  Active = true;
  StartUs = Telem.nowUs();
}

Span::Span(const Context &Ctx, const char *Name) : Span(*Ctx.Telem, Name) {}

Span::~Span() {
  if (!Active)
    return;
  double EndUs = Telem->nowUs();
  Telem->record(Name, 'X', StartUs, EndUs - StartUs, std::move(ArgsJson));
}

void Span::append(const char *Key, std::string Rendered) {
  if (!Active)
    return;
  if (!ArgsJson.empty())
    ArgsJson.push_back(',');
  ArgsJson += Json::quote(Key);
  ArgsJson.push_back(':');
  ArgsJson += Rendered;
}

void Span::arg(const char *Key, int64_t Value) {
  if (Active)
    append(Key, std::to_string(Value));
}

void Span::arg(const char *Key, uint64_t Value) {
  if (Active)
    append(Key, std::to_string(Value));
}

void Span::arg(const char *Key, double Value) {
  if (!Active)
    return;
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.12g", Value);
  append(Key, Buf);
}

void Span::arg(const char *Key, const char *Value) {
  if (Active)
    append(Key, Json::quote(Value));
}

void Span::arg(const char *Key, const std::string &Value) {
  if (Active)
    append(Key, Json::quote(Value));
}

void reticle::obs::instant(const char *Name) {
  defaultTelemetry().instant(Name);
}

std::string reticle::obs::traceJson() { return defaultTelemetry().traceJson(); }

Status reticle::obs::writeTrace(const std::string &Path) {
  return defaultTelemetry().writeTrace(Path);
}

Json reticle::obs::countersJson() { return defaultTelemetry().countersJson(); }

void reticle::obs::resetForTest() { defaultTelemetry().reset(); }

#endif // RETICLE_NO_TELEMETRY
