//===- obs/Telemetry.cpp - Tracing spans and counters registry -----------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#ifndef RETICLE_NO_TELEMETRY

#include "obs/Telemetry.h"

#include "obs/Json.h"

#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <vector>

using namespace reticle;
using namespace reticle::obs;

namespace {

struct TraceEvent {
  const char *Name;
  char Phase; // 'X' complete, 'i' instant
  double TsUs;
  double DurUs;
  uint32_t Tid;
  std::string ArgsJson; // rendered "k":v,... body, may be empty
};

struct CounterEntry {
  std::string Name;
  Counter Value;
  explicit CounterEntry(std::string Name) : Name(std::move(Name)) {}
};

struct GaugeEntry {
  std::string Name;
  Gauge Value;
  explicit GaugeEntry(std::string Name) : Name(std::move(Name)) {}
};

/// The process-wide telemetry state. Entries live in deques so references
/// handed out by counter()/gauge() stay valid forever.
struct Registry {
  std::mutex Mu;
  std::deque<CounterEntry> Counters;
  std::map<std::string, Counter *, std::less<>> CounterIndex;
  std::deque<GaugeEntry> Gauges;
  std::map<std::string, Gauge *, std::less<>> GaugeIndex;
  std::vector<TraceEvent> Events;
  std::atomic<bool> Tracing{false};
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
};

Registry &registry() {
  static Registry R;
  return R;
}

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - registry().Epoch)
      .count();
}

uint32_t threadId() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

} // namespace

Counter &reticle::obs::counter(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = R.CounterIndex.find(Name);
  if (It != R.CounterIndex.end())
    return *It->second;
  R.Counters.emplace_back(std::string(Name));
  Counter *C = &R.Counters.back().Value;
  R.CounterIndex.emplace(std::string(Name), C);
  return *C;
}

Gauge &reticle::obs::gauge(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  auto It = R.GaugeIndex.find(Name);
  if (It != R.GaugeIndex.end())
    return *It->second;
  R.Gauges.emplace_back(std::string(Name));
  Gauge *G = &R.Gauges.back().Value;
  R.GaugeIndex.emplace(std::string(Name), G);
  return *G;
}

bool reticle::obs::tracingEnabled() {
  return registry().Tracing.load(std::memory_order_relaxed);
}

void reticle::obs::enableTracing(bool On) {
  registry().Tracing.store(On, std::memory_order_relaxed);
}

Span::Span(const char *Name) : Name(Name) {
  if (!tracingEnabled())
    return;
  Active = true;
  StartUs = nowUs();
}

Span::~Span() {
  if (!Active)
    return;
  double EndUs = nowUs();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Events.push_back(
      {Name, 'X', StartUs, EndUs - StartUs, threadId(), std::move(ArgsJson)});
}

void Span::append(const char *Key, std::string Rendered) {
  if (!Active)
    return;
  if (!ArgsJson.empty())
    ArgsJson.push_back(',');
  ArgsJson += Json::quote(Key);
  ArgsJson.push_back(':');
  ArgsJson += Rendered;
}

void Span::arg(const char *Key, int64_t Value) {
  if (Active)
    append(Key, std::to_string(Value));
}

void Span::arg(const char *Key, uint64_t Value) {
  if (Active)
    append(Key, std::to_string(Value));
}

void Span::arg(const char *Key, double Value) {
  if (!Active)
    return;
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.12g", Value);
  append(Key, Buf);
}

void Span::arg(const char *Key, const char *Value) {
  if (Active)
    append(Key, Json::quote(Value));
}

void Span::arg(const char *Key, const std::string &Value) {
  if (Active)
    append(Key, Json::quote(Value));
}

void reticle::obs::instant(const char *Name) {
  if (!tracingEnabled())
    return;
  double Ts = nowUs();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Events.push_back({Name, 'i', Ts, 0.0, threadId(), std::string()});
}

std::string reticle::obs::traceJson() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  std::string Out = "{\"traceEvents\":[";
  char Buf[64];
  for (size_t Index = 0; Index < R.Events.size(); ++Index) {
    const TraceEvent &E = R.Events[Index];
    if (Index)
      Out.push_back(',');
    Out += "\n{\"name\":";
    Out += Json::quote(E.Name);
    Out += ",\"ph\":\"";
    Out.push_back(E.Phase);
    Out += "\",\"ts\":";
    std::snprintf(Buf, sizeof(Buf), "%.3f", E.TsUs);
    Out += Buf;
    if (E.Phase == 'X') {
      Out += ",\"dur\":";
      std::snprintf(Buf, sizeof(Buf), "%.3f", E.DurUs);
      Out += Buf;
    } else {
      Out += ",\"s\":\"t\""; // instant scope: thread
    }
    std::snprintf(Buf, sizeof(Buf), ",\"pid\":1,\"tid\":%u", E.Tid);
    Out += Buf;
    if (!E.ArgsJson.empty()) {
      Out += ",\"args\":{";
      Out += E.ArgsJson;
      Out.push_back('}');
    }
    Out.push_back('}');
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}";
  return Out;
}

Status reticle::obs::writeTrace(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write trace file '" + Path + "'");
  Out << traceJson() << "\n";
  if (!Out)
    return Status::failure("error writing trace file '" + Path + "'");
  return Status::success();
}

Json reticle::obs::countersJson() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Json Doc = Json::object();
  Json Counters = Json::object();
  for (const CounterEntry &E : R.Counters)
    Counters.set(E.Name, E.Value.load());
  Doc.set("counters", std::move(Counters));
  Json Gauges = Json::object();
  for (const GaugeEntry &E : R.Gauges)
    Gauges.set(E.Name, E.Value.load());
  Doc.set("gauges", std::move(Gauges));
  return Doc;
}

void reticle::obs::resetForTest() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Events.clear();
  R.Tracing.store(false, std::memory_order_relaxed);
  for (CounterEntry &E : R.Counters)
    E.Value.reset();
  for (GaugeEntry &E : R.Gauges)
    E.Value.reset();
}

#endif // RETICLE_NO_TELEMETRY
