//===- obs/Coverage.cpp - Bin-based coverage registry ---------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "obs/Coverage.h"

#include "obs/Json.h"

#ifndef RETICLE_NO_TELEMETRY
#include <mutex>
#endif

using namespace reticle;
using namespace reticle::obs;

// The Json helpers compile in every build: the no-op Coverage still
// snapshots to an empty map, and statsJson serializes that the same way.

Json obs::coverageJson(const CoverageSnapshot &Spaces) {
  Json SpacesJson = Json::object();
  uint64_t TotalBins = 0;
  uint64_t TotalHit = 0;
  for (const auto &[SpaceName, Bins] : Spaces) {
    Json BinsJson = Json::object();
    uint64_t Hit = 0;
    for (const auto &[BinName, Count] : Bins) {
      BinsJson.set(BinName, Count);
      if (Count > 0)
        ++Hit;
    }
    Json SpaceJson = Json::object();
    SpaceJson.set("bins", std::move(BinsJson));
    SpaceJson.set("hit", Hit);
    SpaceJson.set("total", static_cast<uint64_t>(Bins.size()));
    SpacesJson.set(SpaceName, std::move(SpaceJson));
    TotalBins += Bins.size();
    TotalHit += Hit;
  }
  Json Out = Json::object();
  Out.set("spaces", std::move(SpacesJson));
  Json Totals = Json::object();
  Totals.set("spaces", static_cast<uint64_t>(Spaces.size()));
  Totals.set("bins", TotalBins);
  Totals.set("hit", TotalHit);
  Out.set("totals", std::move(Totals));
  return Out;
}

Json obs::coverageDoc(const std::string &Program,
                      const CoverageSnapshot &Spaces) {
  Json Doc = Json::object();
  Doc.set("schema", "reticle-coverage-v1");
  Doc.set("program", Program);
  Json Body = coverageJson(Spaces);
  for (const auto &[Key, Value] : Body.members())
    Doc.set(Key, Value);
  return Doc;
}

#ifndef RETICLE_NO_TELEMETRY

struct Coverage::Impl {
  mutable std::mutex Mu;
  CoverageSnapshot Spaces;
};

Coverage::Coverage() : I(std::make_unique<Impl>()) {}
Coverage::~Coverage() = default;

void Coverage::declare(std::string_view Space, std::string_view Bin) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  // try_emplace leaves an existing count untouched.
  I->Spaces[std::string(Space)].try_emplace(std::string(Bin), 0);
}

void Coverage::hit(std::string_view Space, std::string_view Bin, uint64_t N) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Spaces[std::string(Space)][std::string(Bin)] += N;
}

bool Coverage::empty() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->Spaces.empty();
}

CoverageSnapshot Coverage::snapshot() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->Spaces;
}

void Coverage::merge(const Coverage &Other) { merge(Other.snapshot()); }

void Coverage::merge(const CoverageSnapshot &Other) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  for (const auto &[SpaceName, Bins] : Other) {
    auto &Dst = I->Spaces[SpaceName];
    for (const auto &[BinName, Count] : Bins)
      Dst[BinName] += Count;
  }
}

void Coverage::reset() {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Spaces.clear();
}

Coverage &obs::defaultCoverage() {
  static Coverage C;
  return C;
}

#endif // RETICLE_NO_TELEMETRY
