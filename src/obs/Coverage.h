//===- obs/Coverage.h - Bin-based coverage registry -------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coverage layer behind the fuzzing/DSE roadmap items: a registry of
/// named **spaces** (e.g. "ir.op_type", "isel.pattern", "sim.toggle"),
/// each a set of **bins** with hit counts. Three collectors feed it:
///
///  - **Static IR coverage**: the verifier records one bin per op, per
///    op x result-type (the type string includes the vector width), per
///    lane count, and per resource annotation of every instruction it
///    accepts.
///  - **Isel pattern coverage**: the instruction selector *declares*
///    every selectable pattern up front (so never-fired patterns show up
///    as zero-count bins) and hits a bin each time a pattern wins a
///    tree, at the same site the `isel:pattern` remark is emitted.
///  - **Dynamic toggle coverage**: `sim::ToggleCoverageSink` (a
///    `sim::WaveSink`) replays per-cycle waveform events into
///    per-signal-bit 0->1 / 1->0 bins for both simulation engines.
///
/// Like the rest of `src/obs/`, the whole API compiles out to inline
/// no-ops under `RETICLE_NO_TELEMETRY`; collectors need no ifdefs. Like
/// `Telemetry`, coverage is **instance-based**: `core::CompileSession`
/// owns one registry per compile and threads it via `obs::Context`, with
/// a process-wide `defaultCoverage()` backing the global session.
///
/// Serialized form is the `reticle-coverage-v1` document; see
/// docs/OBSERVABILITY.md. Zero-count (declared-only) bins count toward a
/// space's `total` but not its `hit`, which is what makes coverage-hole
/// reports possible.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_OBS_COVERAGE_H
#define RETICLE_OBS_COVERAGE_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#ifndef RETICLE_NO_TELEMETRY
#include <memory>
#endif

namespace reticle {
namespace obs {

class Json;

/// An ordered snapshot of one coverage registry: space name -> bin name
/// -> hit count. std::map keeps serialization deterministic regardless
/// of recording order.
using CoverageSnapshot = std::map<std::string, std::map<std::string, uint64_t>>;

/// Builds the {"spaces": {...}, "totals": {...}} fragment shared by the
/// stats `coverage` section, the batch summary, and the standalone doc.
/// Lives in Json.cpp-adjacent code, so only telemetry-linked callers may
/// use it; available in every build.
Json coverageJson(const CoverageSnapshot &Spaces);

/// Wraps \p Spaces as a standalone `reticle-coverage-v1` document for
/// \p Program.
Json coverageDoc(const std::string &Program, const CoverageSnapshot &Spaces);

#ifndef RETICLE_NO_TELEMETRY

/// One coverage domain: named spaces of named bins with hit counts. All
/// operations are thread-safe; concurrent compiles record into disjoint
/// instances (one per CompileSession) without contending.
class Coverage {
public:
  Coverage();
  ~Coverage();
  Coverage(const Coverage &) = delete;
  Coverage &operator=(const Coverage &) = delete;

  /// Registers the bin with count zero if it does not exist yet. This is
  /// how "never fired" becomes visible: declared-but-unhit bins appear
  /// in the snapshot with count 0.
  void declare(std::string_view Space, std::string_view Bin);

  /// Adds \p N hits to the bin, creating it on first hit.
  void hit(std::string_view Space, std::string_view Bin, uint64_t N = 1);

  /// True when no bin has been declared or hit.
  bool empty() const;

  /// Deep copy of the current state, sorted by space and bin name.
  CoverageSnapshot snapshot() const;

  /// Folds \p Other into this registry (union of bins, counts summed).
  void merge(const Coverage &Other);
  void merge(const CoverageSnapshot &Other);

  /// Drops every space and bin.
  void reset();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// The process-wide default instance, used by the global CompileSession.
Coverage &defaultCoverage();

#else // RETICLE_NO_TELEMETRY

// Compiled-out variant: the full API surface as inline no-ops. Nothing
// here references a symbol of Coverage.cpp, so translation units built
// with RETICLE_NO_TELEMETRY link without the coverage objects. (The
// Json-returning helpers above live in Coverage.cpp and are only
// referenced by telemetry-linked code such as reticle_core.)

class Coverage {
public:
  Coverage() = default;
  Coverage(const Coverage &) = delete;
  Coverage &operator=(const Coverage &) = delete;

  void declare(std::string_view, std::string_view) {}
  void hit(std::string_view, std::string_view, uint64_t = 1) {}
  bool empty() const { return true; }
  CoverageSnapshot snapshot() const { return {}; }
  void merge(const Coverage &) {}
  void merge(const CoverageSnapshot &) {}
  void reset() {}
};

inline Coverage &defaultCoverage() {
  static Coverage Noop;
  return Noop;
}

#endif // RETICLE_NO_TELEMETRY

} // namespace obs
} // namespace reticle

#endif // RETICLE_OBS_COVERAGE_H
