//===- obs/Remarks.h - Optimization remarks engine --------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured optimization remarks (LLVM `-Rpass`-style): every pipeline
/// stage records *what it decided* — which tile covered a tree, why a
/// cascade chain was (or was not) rewritten, how each placement shrink
/// probe resolved — as `Remark{stage, kind, instr, message, args}`
/// records. Telemetry (Telemetry.h) answers "where does the time go";
/// remarks answer "what did the compiler do and why".
///
/// Remarks are **instance-based**: a `RemarkStream` owns one record buffer
/// and its own enable switch, so concurrent compiles record into disjoint
/// streams. Usage at an instrumentation site (with the obs::Context the
/// stage was handed):
///
///   if (Ctx.remarksEnabled())
///     obs::Remark(Ctx, "isel", "pattern")
///         .instr(I.dst())
///         .message("covered with '" + Def->Name + "'")
///         .arg("area", Def->Area);
///
/// The builder commits to its stream when it goes out of scope. Recording
/// only happens while the stream is enabled (`RemarkStream::enable()`, or
/// `reticlec --remarks=... / --remarks-json=...`); sites guard string
/// construction behind `remarksEnabled()`, which is one relaxed atomic
/// load. The process-wide `defaultRemarks()` stream backs the legacy free
/// functions (`obs::remarksEnabled`, `obs::remarksText`, ...).
///
/// Rendering: `text()` produces one human-readable line per remark;
/// `jsonl()` produces the machine-readable `reticle-remarks-v1` stream
/// (one header line, then one JSON object per remark). Defining
/// `RETICLE_NO_TELEMETRY` compiles the whole engine out to inline no-ops,
/// exactly like the counters.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_OBS_REMARKS_H
#define RETICLE_OBS_REMARKS_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <string_view>

#ifndef RETICLE_NO_TELEMETRY
#include "obs/Json.h"

#include <memory>
#else
#include <fstream>
#endif

namespace reticle {
namespace obs {

struct Context;

#ifndef RETICLE_NO_TELEMETRY

/// One remark domain: a buffer of committed remark records plus its own
/// enable switch. Records are committed fully formed under the lock;
/// readers (text / jsonl) snapshot under the same lock.
class RemarkStream {
public:
  RemarkStream();
  ~RemarkStream();
  RemarkStream(const RemarkStream &) = delete;
  RemarkStream &operator=(const RemarkStream &) = delete;

  /// Recording switch; one relaxed atomic load, so sites can guard string
  /// construction behind it.
  bool enabled() const;
  void enable(bool On = true);

  /// Number of remarks recorded so far.
  size_t count() const;

  /// Human rendering: one `stage:kind: ['instr':] message {k=v, ...}`
  /// line per remark.
  std::string text() const;

  /// Machine rendering (`reticle-remarks-v1`): a header object line
  /// (`{"schema": "reticle-remarks-v1", "program": ...}`) followed by one
  /// compact JSON object per remark.
  std::string jsonl(std::string_view Program) const;

  /// File writers; used by `reticlec --remarks=<file>` / `--remarks-json=`.
  Status writeText(const std::string &Path) const;
  Status writeJsonl(const std::string &Path, std::string_view Program) const;

  /// Drops all recorded remarks and disables recording.
  void clear();

private:
  friend class Remark;
  void commit(Json Record);

  struct Impl;
  std::unique_ptr<Impl> I;
};

/// The process-wide default stream behind the legacy free-function API.
RemarkStream &defaultRemarks();

/// Free-function dialect over defaultRemarks(), kept for tools and tests;
/// pipeline code threads a Context instead.
bool remarksEnabled();
void enableRemarks(bool On = true);

/// A builder for one remark. Construction samples the stream's switch;
/// destruction commits the record when recording is on. \p Stage names the
/// pipeline stage ("isel", "cascade", "place", "sat", "opt", "timing");
/// \p Kind is a short stage-specific verdict ("pattern", "chain",
/// "shrink-probe", ...). Both must outlive the builder (string literals
/// do).
class Remark {
public:
  /// Records into defaultRemarks().
  Remark(const char *Stage, const char *Kind);
  /// Records into \p Stream / the stream of \p Ctx, which must outlive
  /// the builder.
  Remark(RemarkStream &Stream, const char *Stage, const char *Kind);
  Remark(const Context &Ctx, const char *Stage, const char *Kind);
  ~Remark();
  Remark(const Remark &) = delete;
  Remark &operator=(const Remark &) = delete;

  /// Names the instruction (result name) the remark is about.
  Remark &instr(std::string_view Name);
  /// The human-readable sentence of the remark.
  Remark &message(std::string Text);
  /// Structured arguments, preserved verbatim in the JSONL record.
  Remark &arg(const char *Key, int64_t Value);
  Remark &arg(const char *Key, uint64_t Value);
  Remark &arg(const char *Key, int Value) {
    return arg(Key, static_cast<int64_t>(Value));
  }
  Remark &arg(const char *Key, unsigned Value) {
    return arg(Key, static_cast<uint64_t>(Value));
  }
  Remark &arg(const char *Key, double Value);
  Remark &arg(const char *Key, const char *Value);
  Remark &arg(const char *Key, std::string Value);

private:
  RemarkStream *Stream = nullptr;
  bool Active = false;
  const char *Stage = nullptr;
  const char *Kind = nullptr;
  std::string Instr;
  std::string Message;
  Json Args;
};

/// Free-function dialect over defaultRemarks().
size_t remarkCount();
std::string remarksText();
std::string remarksJsonl(std::string_view Program);
Status writeRemarksText(const std::string &Path);
Status writeRemarksJsonl(const std::string &Path, std::string_view Program);

/// Clears defaultRemarks(). Test-only.
void clearRemarks();

#else // RETICLE_NO_TELEMETRY

// Compiled-out variant: the full API surface as inline no-ops. Nothing
// here references a symbol of Remarks.cpp (or Json.cpp), so translation
// units built with RETICLE_NO_TELEMETRY link without the obs objects.

class RemarkStream {
public:
  RemarkStream() = default;
  RemarkStream(const RemarkStream &) = delete;
  RemarkStream &operator=(const RemarkStream &) = delete;

  bool enabled() const { return false; }
  void enable(bool = true) {}
  size_t count() const { return 0; }
  std::string text() const { return std::string(); }
  std::string jsonl(std::string_view) const { return std::string(); }
  Status writeText(const std::string &Path) const {
    std::ofstream Out(Path);
    if (!Out)
      return Status::failure("cannot write remarks file '" + Path + "'");
    return Status::success();
  }
  Status writeJsonl(const std::string &Path, std::string_view) const {
    std::ofstream Out(Path);
    if (!Out)
      return Status::failure("cannot write remarks file '" + Path + "'");
    return Status::success();
  }
  void clear() {}
};

inline RemarkStream &defaultRemarks() {
  static RemarkStream Noop;
  return Noop;
}

inline bool remarksEnabled() { return false; }
inline void enableRemarks(bool = true) {}

class Remark {
public:
  Remark(const char *, const char *) {}
  Remark(RemarkStream &, const char *, const char *) {}
  Remark(const Context &, const char *, const char *) {}
  Remark(const Remark &) = delete;
  Remark &operator=(const Remark &) = delete;
  Remark &instr(std::string_view) { return *this; }
  Remark &message(std::string) { return *this; }
  Remark &arg(const char *, int64_t) { return *this; }
  Remark &arg(const char *, uint64_t) { return *this; }
  Remark &arg(const char *, int) { return *this; }
  Remark &arg(const char *, unsigned) { return *this; }
  Remark &arg(const char *, double) { return *this; }
  Remark &arg(const char *, const char *) { return *this; }
  Remark &arg(const char *, std::string) { return *this; }
};

inline size_t remarkCount() { return 0; }
inline std::string remarksText() { return std::string(); }
inline std::string remarksJsonl(std::string_view) { return std::string(); }

inline Status writeRemarksText(const std::string &Path) {
  return defaultRemarks().writeText(Path);
}

inline Status writeRemarksJsonl(const std::string &Path, std::string_view) {
  return defaultRemarks().writeJsonl(Path, std::string_view());
}

inline void clearRemarks() {}

#endif // RETICLE_NO_TELEMETRY

} // namespace obs
} // namespace reticle

#endif // RETICLE_OBS_REMARKS_H
