//===- obs/Snapshots.cpp - Pipeline stage snapshots ----------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "obs/Snapshots.h"

#include "obs/Json.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

using namespace reticle;
using namespace reticle::obs;

const StageSnapshot *SnapshotSink::find(std::string_view Stage) const {
  for (const StageSnapshot &S : Stages)
    if (S.Stage == Stage)
      return &S;
  return nullptr;
}

std::string reticle::obs::snapshotFileName(const StageSnapshot &Snapshot,
                                           size_t Index) {
  const char *Ext = ".txt";
  if (Snapshot.Format == "ir")
    Ext = ".ret";
  else if (Snapshot.Format == "asm")
    Ext = ".rasm";
  else if (Snapshot.Format == "verilog")
    Ext = ".v";
  char Prefix[8];
  std::snprintf(Prefix, sizeof(Prefix), "%02zu-", Index);
  return Prefix + Snapshot.Stage + Ext;
}

Status reticle::obs::writeSnapshots(const SnapshotSink &Sink,
                                    const std::string &Dir,
                                    std::string_view Program) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return Status::failure("cannot create snapshot directory '" + Dir +
                           "': " + Ec.message());

  Json Stages = Json::object();
  for (size_t I = 0; I < Sink.stages().size(); ++I) {
    const StageSnapshot &S = Sink.stages()[I];
    std::string File = snapshotFileName(S, I);
    std::string Path = Dir + "/" + File;
    std::ofstream Out(Path);
    if (!Out)
      return Status::failure("cannot write snapshot file '" + Path + "'");
    Out << S.Text;
    if (!Out)
      return Status::failure("error writing snapshot file '" + Path + "'");

    Json Entry = Json::object();
    Entry.set("index", static_cast<uint64_t>(I));
    Entry.set("format", S.Format);
    Entry.set("file", File);
    Entry.set("bytes", static_cast<uint64_t>(S.Text.size()));
    Stages.set(S.Stage, std::move(Entry));
  }

  Json Manifest = Json::object();
  Manifest.set("schema", "reticle-snapshots-v1");
  Manifest.set("program", std::string(Program));
  Manifest.set("stages", std::move(Stages));

  std::string Path = Dir + "/manifest.json";
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write snapshot manifest '" + Path + "'");
  Out << Manifest.str(2) << "\n";
  if (!Out)
    return Status::failure("error writing snapshot manifest '" + Path + "'");
  return Status::success();
}
