//===- obs/Report.cpp - Structured report writer -------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "obs/Report.h"

#include <fstream>

using namespace reticle;
using namespace reticle::obs;

Status reticle::obs::writeJsonFile(const Json &Doc, const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write '" + Path + "'");
  Out << Doc.str(2) << "\n";
  if (!Out)
    return Status::failure("error writing '" + Path + "'");
  return Status::success();
}

namespace {

/// One `key  value` row. Scalars render plainly; structures fall back to
/// compact JSON.
void printRow(std::FILE *Out, const std::string &Key, const Json &Value) {
  std::string Rendered;
  switch (Value.kind()) {
  case Json::Kind::String:
    Rendered = Value.asString();
    break;
  case Json::Kind::Double: {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.3f", Value.asDouble());
    Rendered = Buf;
    break;
  }
  default:
    Rendered = Value.str();
  }
  std::fprintf(Out, "  %-26s %s\n", Key.c_str(), Rendered.c_str());
}

void printSection(std::FILE *Out, const std::string &Prefix,
                  const Json &Object) {
  for (const auto &[Key, Value] : Object.members()) {
    std::string Dotted = Prefix.empty() ? Key : Prefix + "." + Key;
    if (Value.isObject())
      printSection(Out, Dotted, Value);
    else
      printRow(Out, Dotted, Value);
  }
}

} // namespace

void reticle::obs::printTable(const Json &Doc, std::FILE *Out) {
  if (!Doc.isObject()) {
    std::fprintf(Out, "%s\n", Doc.str().c_str());
    return;
  }
  for (const auto &[Key, Value] : Doc.members())
    if (!Value.isObject())
      printRow(Out, Key, Value);
  for (const auto &[Key, Value] : Doc.members()) {
    if (!Value.isObject())
      continue;
    std::fprintf(Out, "[%s]\n", Key.c_str());
    printSection(Out, "", Value);
  }
}
