//===- obs/Json.cpp - Minimal JSON document model ------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace reticle;
using namespace reticle::obs;

Json &Json::set(std::string Key, Json Value) {
  assert(isObject() && "set on a non-object");
  for (auto &[Name, Existing] : Obj)
    if (Name == Key) {
      Existing = std::move(Value);
      return *this;
    }
  Obj.emplace_back(std::move(Key), std::move(Value));
  return *this;
}

const Json *Json::find(std::string_view Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &[Name, Value] : Obj)
    if (Name == Key)
      return &Value;
  return nullptr;
}

std::string Json::quote(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size() + 2);
  Out.push_back('"');
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  Out.push_back('"');
  return Out;
}

void Json::write(std::string &Out, unsigned Indent, unsigned Depth) const {
  auto Newline = [&](unsigned Level) {
    if (Indent == 0)
      return;
    Out.push_back('\n');
    Out.append(static_cast<size_t>(Indent) * Level, ' ');
  };
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::Int: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(I));
    Out += Buf;
    break;
  }
  case Kind::Double: {
    if (!std::isfinite(D)) {
      Out += "null"; // JSON has no NaN/Inf
      break;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.12g", D);
    Out += Buf;
    break;
  }
  case Kind::String:
    Out += quote(S);
    break;
  case Kind::Array: {
    if (Arr.empty()) {
      Out += "[]";
      break;
    }
    Out.push_back('[');
    for (size_t Index = 0; Index < Arr.size(); ++Index) {
      if (Index)
        Out.push_back(',');
      Newline(Depth + 1);
      Arr[Index].write(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out.push_back(']');
    break;
  }
  case Kind::Object: {
    if (Obj.empty()) {
      Out += "{}";
      break;
    }
    Out.push_back('{');
    for (size_t Index = 0; Index < Obj.size(); ++Index) {
      if (Index)
        Out.push_back(',');
      Newline(Depth + 1);
      Out += quote(Obj[Index].first);
      Out.push_back(':');
      if (Indent)
        Out.push_back(' ');
      Obj[Index].second.write(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out.push_back('}');
    break;
  }
  }
}

std::string Json::str(unsigned Indent) const {
  std::string Out;
  write(Out, Indent, 0);
  return Out;
}

namespace {

/// Strict recursive-descent JSON parser over a string_view.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Result<Json> run() {
    Result<Json> Value = parseValue(0);
    if (!Value)
      return Value;
    skipWs();
    if (Pos != Text.size())
      return err("trailing characters after the top-level value");
    return Value;
  }

private:
  static constexpr unsigned MaxDepth = 200;

  Result<Json> err(const std::string &What) const {
    return fail<Json>("json: " + What + " at offset " + std::to_string(Pos));
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  Result<Json> parseValue(unsigned Depth) {
    if (Depth > MaxDepth)
      return err("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return err("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"') {
      Result<std::string> S = parseString();
      if (!S)
        return fail<Json>(S.error());
      return Json(S.take());
    }
    if (literal("true"))
      return Json(true);
    if (literal("false"))
      return Json(false);
    if (literal("null"))
      return Json();
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    return err(std::string("unexpected character '") + C + "'");
  }

  Result<Json> parseNumber() {
    size_t Start = Pos;
    if (consume('-')) {
    }
    size_t IntStart = Pos;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    // RFC 8259: no leading zeros ("01"), and the integer part is required.
    if (Pos - IntStart > 1 && Text[IntStart] == '0')
      return err("malformed number (leading zero)");
    if (Pos == IntStart)
      return err("malformed number");
    bool IsDouble = false;
    if (consume('.')) {
      IsDouble = true;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsDouble = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Token(Text.substr(Start, Pos - Start));
    if (Token.empty() || Token == "-")
      return err("malformed number");
    errno = 0;
    if (!IsDouble) {
      char *End = nullptr;
      long long V = std::strtoll(Token.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0')
        return Json(static_cast<int64_t>(V));
      // Fall through to double on overflow.
    }
    char *End = nullptr;
    errno = 0;
    double V = std::strtod(Token.c_str(), &End);
    if (errno != 0 || !End || *End != '\0')
      return err("malformed number '" + Token + "'");
    return Json(V);
  }

  Result<std::string> parseString() {
    if (!consume('"'))
      return fail<std::string>("json: expected '\"' at offset " +
                               std::to_string(Pos));
    std::string Out;
    while (true) {
      if (Pos >= Text.size())
        return fail<std::string>("json: unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail<std::string>("json: raw control character in string");
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail<std::string>("json: unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        Result<uint32_t> Unit = parseHex4();
        if (!Unit)
          return fail<std::string>(Unit.error());
        uint32_t Code = Unit.value();
        // Surrogate pair: a high surrogate must be followed by \uXXXX low.
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (Pos + 1 < Text.size() && Text[Pos] == '\\' &&
              Text[Pos + 1] == 'u') {
            Pos += 2;
            Result<uint32_t> Low = parseHex4();
            if (!Low)
              return fail<std::string>(Low.error());
            if (Low.value() >= 0xDC00 && Low.value() <= 0xDFFF)
              Code = 0x10000 + ((Code - 0xD800) << 10) +
                     (Low.value() - 0xDC00);
            else
              return fail<std::string>("json: invalid low surrogate");
          } else {
            return fail<std::string>("json: lone high surrogate");
          }
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail<std::string>("json: lone low surrogate");
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail<std::string>(std::string("json: invalid escape '\\") + E +
                                 "'");
      }
    }
  }

  Result<uint32_t> parseHex4() {
    if (Pos + 4 > Text.size())
      return fail<uint32_t>("json: truncated \\u escape");
    uint32_t Value = 0;
    for (int K = 0; K < 4; ++K) {
      char C = Text[Pos++];
      Value <<= 4;
      if (C >= '0' && C <= '9')
        Value |= static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Value |= static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Value |= static_cast<uint32_t>(C - 'A' + 10);
      else
        return fail<uint32_t>("json: bad hex digit in \\u escape");
    }
    return Value;
  }

  static void appendUtf8(std::string &Out, uint32_t Code) {
    if (Code < 0x80) {
      Out.push_back(static_cast<char>(Code));
    } else if (Code < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else if (Code < 0x10000) {
      Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else {
      Out.push_back(static_cast<char>(0xF0 | (Code >> 18)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 12) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    }
  }

  Result<Json> parseArray(unsigned Depth) {
    consume('[');
    Json Out = Json::array();
    skipWs();
    if (consume(']'))
      return Out;
    while (true) {
      Result<Json> Element = parseValue(Depth + 1);
      if (!Element)
        return Element;
      Out.push(Element.take());
      skipWs();
      if (consume(']'))
        return Out;
      if (!consume(','))
        return err("expected ',' or ']' in array");
    }
  }

  Result<Json> parseObject(unsigned Depth) {
    consume('{');
    Json Out = Json::object();
    skipWs();
    if (consume('}'))
      return Out;
    while (true) {
      skipWs();
      Result<std::string> Key = parseString();
      if (!Key)
        return fail<Json>(Key.error());
      skipWs();
      if (!consume(':'))
        return err("expected ':' after object key");
      Result<Json> Value = parseValue(Depth + 1);
      if (!Value)
        return Value;
      Out.set(Key.take(), Value.take());
      skipWs();
      if (consume('}'))
        return Out;
      if (!consume(','))
        return err("expected ',' or '}' in object");
    }
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

Result<Json> Json::parse(std::string_view Text) { return Parser(Text).run(); }
