//===- obs/Remarks.cpp - Optimization remarks engine ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#ifndef RETICLE_NO_TELEMETRY

#include "obs/Remarks.h"

#include <atomic>
#include <fstream>
#include <mutex>
#include <vector>

using namespace reticle;
using namespace reticle::obs;

namespace {

/// The process-wide remarks stream. Records are committed fully formed
/// under the lock; readers (remarksText / remarksJsonl) snapshot under the
/// same lock.
struct RemarkStream {
  std::mutex Mu;
  std::vector<Json> Records;
  std::atomic<bool> Enabled{false};
};

RemarkStream &stream() {
  static RemarkStream S;
  return S;
}

} // namespace

bool reticle::obs::remarksEnabled() {
  return stream().Enabled.load(std::memory_order_relaxed);
}

void reticle::obs::enableRemarks(bool On) {
  stream().Enabled.store(On, std::memory_order_relaxed);
}

Remark::Remark(const char *Stage, const char *Kind)
    : Active(remarksEnabled()), Stage(Stage), Kind(Kind) {
  if (Active)
    Args = Json::object();
}

Remark::~Remark() {
  if (!Active)
    return;
  Json Record = Json::object();
  Record.set("stage", Stage);
  Record.set("kind", Kind);
  if (!Instr.empty())
    Record.set("instr", Instr);
  Record.set("message", std::move(Message));
  if (Args.size())
    Record.set("args", std::move(Args));
  RemarkStream &S = stream();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Records.push_back(std::move(Record));
}

Remark &Remark::instr(std::string_view Name) {
  if (Active)
    Instr = std::string(Name);
  return *this;
}

Remark &Remark::message(std::string Text) {
  if (Active)
    Message = std::move(Text);
  return *this;
}

Remark &Remark::arg(const char *Key, int64_t Value) {
  if (Active)
    Args.set(Key, Value);
  return *this;
}

Remark &Remark::arg(const char *Key, uint64_t Value) {
  if (Active)
    Args.set(Key, Value);
  return *this;
}

Remark &Remark::arg(const char *Key, double Value) {
  if (Active)
    Args.set(Key, Value);
  return *this;
}

Remark &Remark::arg(const char *Key, const char *Value) {
  if (Active)
    Args.set(Key, Value);
  return *this;
}

Remark &Remark::arg(const char *Key, std::string Value) {
  if (Active)
    Args.set(Key, std::move(Value));
  return *this;
}

size_t reticle::obs::remarkCount() {
  RemarkStream &S = stream();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Records.size();
}

std::string reticle::obs::remarksText() {
  RemarkStream &S = stream();
  std::lock_guard<std::mutex> Lock(S.Mu);
  std::string Out;
  for (const Json &R : S.Records) {
    const Json *Stage = R.find("stage");
    const Json *Kind = R.find("kind");
    const Json *Instr = R.find("instr");
    const Json *Message = R.find("message");
    Out += Stage->asString();
    Out.push_back(':');
    Out += Kind->asString();
    Out += ": ";
    if (Instr) {
      Out.push_back('\'');
      Out += Instr->asString();
      Out += "': ";
    }
    Out += Message->asString();
    if (const Json *Args = R.find("args"); Args && Args->size()) {
      Out += "  {";
      bool First = true;
      for (const auto &[Key, Value] : Args->members()) {
        if (!First)
          Out += ", ";
        First = false;
        Out += Key;
        Out.push_back('=');
        Out += Value.isString() ? Value.asString() : Value.str();
      }
      Out.push_back('}');
    }
    Out.push_back('\n');
  }
  return Out;
}

std::string reticle::obs::remarksJsonl(std::string_view Program) {
  RemarkStream &S = stream();
  std::lock_guard<std::mutex> Lock(S.Mu);
  Json Header = Json::object();
  Header.set("schema", "reticle-remarks-v1");
  Header.set("program", std::string(Program));
  Header.set("remarks", static_cast<uint64_t>(S.Records.size()));
  std::string Out = Header.str();
  Out.push_back('\n');
  for (const Json &R : S.Records) {
    Out += R.str();
    Out.push_back('\n');
  }
  return Out;
}

Status reticle::obs::writeRemarksText(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write remarks file '" + Path + "'");
  Out << remarksText();
  if (!Out)
    return Status::failure("error writing remarks file '" + Path + "'");
  return Status::success();
}

Status reticle::obs::writeRemarksJsonl(const std::string &Path,
                                       std::string_view Program) {
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write remarks file '" + Path + "'");
  Out << remarksJsonl(Program);
  if (!Out)
    return Status::failure("error writing remarks file '" + Path + "'");
  return Status::success();
}

void reticle::obs::clearRemarks() {
  RemarkStream &S = stream();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Records.clear();
  S.Enabled.store(false, std::memory_order_relaxed);
}

#endif // RETICLE_NO_TELEMETRY
