//===- obs/Remarks.cpp - Optimization remarks engine ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#ifndef RETICLE_NO_TELEMETRY

#include "obs/Remarks.h"

#include "obs/Context.h"

#include <atomic>
#include <fstream>
#include <mutex>
#include <vector>

using namespace reticle;
using namespace reticle::obs;

/// Per-instance remark state. Records are committed fully formed under the
/// lock; readers snapshot under the same lock.
struct RemarkStream::Impl {
  mutable std::mutex Mu;
  std::vector<Json> Records;
  std::atomic<bool> Enabled{false};
};

RemarkStream::RemarkStream() : I(std::make_unique<Impl>()) {}
RemarkStream::~RemarkStream() = default;

bool RemarkStream::enabled() const {
  return I->Enabled.load(std::memory_order_relaxed);
}

void RemarkStream::enable(bool On) {
  I->Enabled.store(On, std::memory_order_relaxed);
}

size_t RemarkStream::count() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->Records.size();
}

void RemarkStream::commit(Json Record) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Records.push_back(std::move(Record));
}

std::string RemarkStream::text() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  std::string Out;
  for (const Json &R : I->Records) {
    const Json *Stage = R.find("stage");
    const Json *Kind = R.find("kind");
    const Json *Instr = R.find("instr");
    const Json *Message = R.find("message");
    Out += Stage->asString();
    Out.push_back(':');
    Out += Kind->asString();
    Out += ": ";
    if (Instr) {
      Out.push_back('\'');
      Out += Instr->asString();
      Out += "': ";
    }
    Out += Message->asString();
    if (const Json *Args = R.find("args"); Args && Args->size()) {
      Out += "  {";
      bool First = true;
      for (const auto &[Key, Value] : Args->members()) {
        if (!First)
          Out += ", ";
        First = false;
        Out += Key;
        Out.push_back('=');
        Out += Value.isString() ? Value.asString() : Value.str();
      }
      Out.push_back('}');
    }
    Out.push_back('\n');
  }
  return Out;
}

std::string RemarkStream::jsonl(std::string_view Program) const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  Json Header = Json::object();
  Header.set("schema", "reticle-remarks-v1");
  Header.set("program", std::string(Program));
  Header.set("remarks", static_cast<uint64_t>(I->Records.size()));
  std::string Out = Header.str();
  Out.push_back('\n');
  for (const Json &R : I->Records) {
    Out += R.str();
    Out.push_back('\n');
  }
  return Out;
}

Status RemarkStream::writeText(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write remarks file '" + Path + "'");
  Out << text();
  if (!Out)
    return Status::failure("error writing remarks file '" + Path + "'");
  return Status::success();
}

Status RemarkStream::writeJsonl(const std::string &Path,
                                std::string_view Program) const {
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot write remarks file '" + Path + "'");
  Out << jsonl(Program);
  if (!Out)
    return Status::failure("error writing remarks file '" + Path + "'");
  return Status::success();
}

void RemarkStream::clear() {
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Records.clear();
  I->Enabled.store(false, std::memory_order_relaxed);
}

RemarkStream &reticle::obs::defaultRemarks() {
  static RemarkStream S;
  return S;
}

bool reticle::obs::remarksEnabled() { return defaultRemarks().enabled(); }

void reticle::obs::enableRemarks(bool On) { defaultRemarks().enable(On); }

Remark::Remark(const char *Stage, const char *Kind)
    : Remark(defaultRemarks(), Stage, Kind) {}

Remark::Remark(RemarkStream &Stream, const char *Stage, const char *Kind)
    : Stream(&Stream), Active(Stream.enabled()), Stage(Stage), Kind(Kind) {
  if (Active)
    Args = Json::object();
}

Remark::Remark(const Context &Ctx, const char *Stage, const char *Kind)
    : Remark(*Ctx.Rem, Stage, Kind) {}

Remark::~Remark() {
  if (!Active)
    return;
  Json Record = Json::object();
  Record.set("stage", Stage);
  Record.set("kind", Kind);
  if (!Instr.empty())
    Record.set("instr", Instr);
  Record.set("message", std::move(Message));
  if (Args.size())
    Record.set("args", std::move(Args));
  Stream->commit(std::move(Record));
}

Remark &Remark::instr(std::string_view Name) {
  if (Active)
    Instr = std::string(Name);
  return *this;
}

Remark &Remark::message(std::string Text) {
  if (Active)
    Message = std::move(Text);
  return *this;
}

Remark &Remark::arg(const char *Key, int64_t Value) {
  if (Active)
    Args.set(Key, Value);
  return *this;
}

Remark &Remark::arg(const char *Key, uint64_t Value) {
  if (Active)
    Args.set(Key, Value);
  return *this;
}

Remark &Remark::arg(const char *Key, double Value) {
  if (Active)
    Args.set(Key, Value);
  return *this;
}

Remark &Remark::arg(const char *Key, const char *Value) {
  if (Active)
    Args.set(Key, Value);
  return *this;
}

Remark &Remark::arg(const char *Key, std::string Value) {
  if (Active)
    Args.set(Key, std::move(Value));
  return *this;
}

size_t reticle::obs::remarkCount() { return defaultRemarks().count(); }

std::string reticle::obs::remarksText() { return defaultRemarks().text(); }

std::string reticle::obs::remarksJsonl(std::string_view Program) {
  return defaultRemarks().jsonl(Program);
}

Status reticle::obs::writeRemarksText(const std::string &Path) {
  return defaultRemarks().writeText(Path);
}

Status reticle::obs::writeRemarksJsonl(const std::string &Path,
                                       std::string_view Program) {
  return defaultRemarks().writeJsonl(Path, Program);
}

void reticle::obs::clearRemarks() { defaultRemarks().clear(); }

#endif // RETICLE_NO_TELEMETRY
