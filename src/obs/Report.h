//===- obs/Report.h - Structured report writer ------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The report writer: one machine-readable serialization (pretty-printed
/// JSON on disk, for `--stats-json=` and the `BENCH_<fig>.json` series
/// dumps) and one human rendering (the aligned table `--stats` prints)
/// over the same obs::Json document, so the two can never drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_OBS_REPORT_H
#define RETICLE_OBS_REPORT_H

#include "obs/Json.h"
#include "support/Result.h"

#include <cstdio>
#include <string>

namespace reticle {
namespace obs {

/// Writes \p Doc to \p Path as pretty-printed JSON (2-space indent, one
/// trailing newline).
Status writeJsonFile(const Json &Doc, const std::string &Path);

/// Renders a stats document as a human-readable table: top-level scalar
/// members first, then one `[section]` per top-level object member, with
/// nested objects flattened to dotted keys. Arrays print inline as JSON.
void printTable(const Json &Doc, std::FILE *Out);

} // namespace obs
} // namespace reticle

#endif // RETICLE_OBS_REPORT_H
