//===- ir/Ops.h - Intermediate-language operations --------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate instruction set of Table 1. Wire operations are
/// area-free (wiring only); compute operations consume device resources
/// (LUTs or DSPs) and are the unit of instruction selection.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_IR_OPS_H
#define RETICLE_IR_OPS_H

#include "support/Result.h"

#include <cstdint>
#include <optional>
#include <string>

namespace reticle {
namespace ir {

/// Area-free wiring operations (Table 1, "Wire").
enum class WireOp : uint8_t {
  Sll,   ///< shift left logical by a static amount (per lane)
  Srl,   ///< shift right logical by a static amount (per lane)
  Sra,   ///< shift right arithmetic by a static amount (per lane)
  Slice, ///< extract dst.totalBits() bits at a static offset
  Cat,   ///< concatenate the flattened bits of two values
  Id,    ///< identity / renaming
  Const, ///< materialize a static constant from power and ground rails
};

/// Resource-consuming compute operations (Table 1, "Compute").
enum class CompOp : uint8_t {
  // Arithmetic.
  Add,
  Sub,
  Mul,
  // Bitwise.
  Not,
  And,
  Or,
  Xor,
  // Comparison.
  Eq,
  Neq,
  Lt,
  Gt,
  Le,
  Ge,
  // Control.
  Mux,
  // Memory. The only stateful instruction: updates on the clock edge when
  // its enable is high, and is what legalizes cycles (Section 6.1).
  Reg,
};

/// Returns the surface spelling of a wire operation.
const char *wireOpName(WireOp Op);

/// Returns the surface spelling of a compute operation.
const char *compOpName(CompOp Op);

/// Parses a wire-operation spelling; empty on failure.
std::optional<WireOp> parseWireOp(const std::string &Name);

/// Parses a compute-operation spelling; empty on failure.
std::optional<CompOp> parseCompOp(const std::string &Name);

/// True for the binary operations whose operands may be swapped without
/// changing the result; instruction selection uses this to match patterns
/// modulo commutativity.
bool isCommutative(CompOp Op);

/// True for comparison operations (result type is bool).
bool isComparison(CompOp Op);

} // namespace ir
} // namespace reticle

#endif // RETICLE_IR_OPS_H
