//===- ir/Verifier.cpp - Typing and well-formedness -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/DefUse.h"
#include "obs/Context.h"

using namespace reticle;
using namespace reticle::ir;

namespace {

/// Static IR coverage: one bin per op, per op x result type (the type
/// string carries the vector width, so "add:i8<4>" and "add:i8" are
/// distinct bins), per lane count, and per resource annotation on
/// compute instructions. Recorded only for functions the verifier
/// accepts, so the corpus-wide coverage doc never counts rejected IR.
void recordIrCoverage(const Function &Fn, const obs::Context &Ctx) {
  obs::Coverage &Cov = Ctx.coverage();
  for (const Instr &I : Fn.body()) {
    const char *Op = I.opName();
    const Type Ty = I.type();
    Cov.hit("ir.op", Op);
    Cov.hit("ir.op_type", std::string(Op) + ":" + Ty.str());
    Cov.hit("ir.lanes", std::to_string(Ty.lanes()));
    if (!I.isWire())
      Cov.hit("ir.resource", resourceName(I.resource()));
  }
}

} // namespace

namespace {

Status err(const Instr &I, const std::string &Message) {
  return Status::failure("in '" + I.str() + "': " + Message);
}

Status checkArgCount(const Instr &I, size_t Expected) {
  if (I.args().size() == Expected)
    return Status::success();
  return err(I, "expected " + std::to_string(Expected) + " argument(s), got " +
                    std::to_string(I.args().size()));
}

Status checkAttrCount(const Instr &I, size_t Expected) {
  if (I.attrs().size() == Expected)
    return Status::success();
  return err(I, "expected " + std::to_string(Expected) +
                    " attribute(s), got " + std::to_string(I.attrs().size()));
}

Result<Type> argType(const Function &Fn, const Instr &I, size_t Index) {
  Result<Type> Ty = Fn.typeOf(I.args()[Index]);
  if (!Ty)
    return fail<Type>("in '" + I.str() + "': " + Ty.error());
  return Ty;
}

Status checkWire(const Function &Fn, const Instr &I) {
  Type DstTy = I.type();
  switch (I.wireOp()) {
  case WireOp::Sll:
  case WireOp::Srl:
  case WireOp::Sra: {
    if (Status S = checkArgCount(I, 1); !S)
      return S;
    if (Status S = checkAttrCount(I, 1); !S)
      return S;
    Result<Type> A = argType(Fn, I, 0);
    if (!A)
      return Status::failure(A.error());
    if (!(A.value() == DstTy))
      return err(I, "shift argument type must equal result type");
    if (!DstTy.isInt())
      return err(I, "shifts require an integer type");
    int64_t Amount = I.attrs()[0];
    if (Amount < 0 || Amount >= static_cast<int64_t>(DstTy.width()))
      return err(I, "shift amount out of range for " + DstTy.str());
    return Status::success();
  }
  case WireOp::Slice: {
    if (Status S = checkArgCount(I, 1); !S)
      return S;
    if (Status S = checkAttrCount(I, 1); !S)
      return S;
    Result<Type> A = argType(Fn, I, 0);
    if (!A)
      return Status::failure(A.error());
    int64_t Offset = I.attrs()[0];
    if (Offset < 0 ||
        Offset + DstTy.totalBits() > A.value().totalBits())
      return err(I, "slice range exceeds argument bits");
    return Status::success();
  }
  case WireOp::Cat: {
    if (Status S = checkArgCount(I, 2); !S)
      return S;
    Result<Type> A = argType(Fn, I, 0);
    Result<Type> B = argType(Fn, I, 1);
    if (!A)
      return Status::failure(A.error());
    if (!B)
      return Status::failure(B.error());
    if (A.value().totalBits() + B.value().totalBits() != DstTy.totalBits())
      return err(I, "cat argument bits must sum to result bits");
    return Status::success();
  }
  case WireOp::Id: {
    if (Status S = checkArgCount(I, 1); !S)
      return S;
    Result<Type> A = argType(Fn, I, 0);
    if (!A)
      return Status::failure(A.error());
    if (!(A.value() == DstTy))
      return err(I, "id argument type must equal result type");
    return Status::success();
  }
  case WireOp::Const: {
    if (Status S = checkArgCount(I, 0); !S)
      return S;
    size_t N = I.attrs().size();
    if (N != 1 && N != DstTy.lanes())
      return err(I, "const needs one value (splat) or one per lane");
    return Status::success();
  }
  }
  return Status::success();
}

Status checkComp(const Function &Fn, const Instr &I) {
  Type DstTy = I.type();
  switch (I.compOp()) {
  case CompOp::Add:
  case CompOp::Sub:
  case CompOp::Mul: {
    if (Status S = checkArgCount(I, 2); !S)
      return S;
    if (!DstTy.isInt())
      return err(I, "arithmetic requires an integer type");
    for (size_t K = 0; K < 2; ++K) {
      Result<Type> A = argType(Fn, I, K);
      if (!A)
        return Status::failure(A.error());
      if (!(A.value() == DstTy))
        return err(I, "argument type must equal result type");
    }
    return Status::success();
  }
  case CompOp::And:
  case CompOp::Or:
  case CompOp::Xor: {
    if (Status S = checkArgCount(I, 2); !S)
      return S;
    for (size_t K = 0; K < 2; ++K) {
      Result<Type> A = argType(Fn, I, K);
      if (!A)
        return Status::failure(A.error());
      if (!(A.value() == DstTy))
        return err(I, "argument type must equal result type");
    }
    return Status::success();
  }
  case CompOp::Not: {
    if (Status S = checkArgCount(I, 1); !S)
      return S;
    Result<Type> A = argType(Fn, I, 0);
    if (!A)
      return Status::failure(A.error());
    if (!(A.value() == DstTy))
      return err(I, "argument type must equal result type");
    return Status::success();
  }
  case CompOp::Eq:
  case CompOp::Neq:
  case CompOp::Lt:
  case CompOp::Gt:
  case CompOp::Le:
  case CompOp::Ge: {
    if (Status S = checkArgCount(I, 2); !S)
      return S;
    if (!DstTy.isBool())
      return err(I, "comparison result must be bool");
    Result<Type> A = argType(Fn, I, 0);
    Result<Type> B = argType(Fn, I, 1);
    if (!A)
      return Status::failure(A.error());
    if (!B)
      return Status::failure(B.error());
    if (!(A.value() == B.value()))
      return err(I, "comparison arguments must share one type");
    if (A.value().isVector())
      return err(I, "comparisons are defined on scalars only");
    return Status::success();
  }
  case CompOp::Mux: {
    if (Status S = checkArgCount(I, 3); !S)
      return S;
    Result<Type> C = argType(Fn, I, 0);
    if (!C)
      return Status::failure(C.error());
    if (!C.value().isBool())
      return err(I, "mux condition must be bool");
    for (size_t K = 1; K < 3; ++K) {
      Result<Type> A = argType(Fn, I, K);
      if (!A)
        return Status::failure(A.error());
      if (!(A.value() == DstTy))
        return err(I, "mux branch type must equal result type");
    }
    return Status::success();
  }
  case CompOp::Reg: {
    if (Status S = checkArgCount(I, 2); !S)
      return S;
    if (Status S = checkAttrCount(I, 1); !S)
      return S;
    Result<Type> A = argType(Fn, I, 0);
    Result<Type> En = argType(Fn, I, 1);
    if (!A)
      return Status::failure(A.error());
    if (!En)
      return Status::failure(En.error());
    if (!(A.value() == DstTy))
      return err(I, "register data type must equal result type");
    if (!En.value().isBool())
      return err(I, "register enable must be bool");
    return Status::success();
  }
  }
  return Status::success();
}

} // namespace

Status reticle::ir::checkInstr(const Function &Fn, const Instr &I) {
  return I.isWire() ? checkWire(Fn, I) : checkComp(Fn, I);
}

Result<std::vector<size_t>> reticle::ir::topoOrder(const Function &Fn,
                                                   const obs::Context &Ctx) {
  using OrderT = std::vector<size_t>;
  const DefUse &DU = Fn.defUse(Ctx);
  if (!DU.topoOk())
    return fail<OrderT>("function '" + Fn.name() +
                        "' has a combinational cycle (register-free loop)");
  return DU.topoOrder();
}

Status reticle::ir::verify(const Function &Fn, const obs::Context &Ctx) {
  // Unique port and destination names. The analysis records the first
  // duplicate in scan order (inputs before body), matching the order the
  // old set-insertion loop reported them in.
  const DefUse &DU = Fn.defUse(Ctx);
  if (DU.duplicateKind() == DefUse::Dup::Input)
    return Status::failure("duplicate input '" + DU.duplicateName() + "'");
  if (DU.duplicateKind() == DefUse::Dup::Body)
    return Status::failure("multiple definitions of '" + DU.duplicateName() +
                           "'");

  // All arguments must resolve, and instructions must type-check.
  // checkInstr's type lookups hit the cached analysis through
  // Function::typeOf.
  const std::vector<Instr> &Body = Fn.body();
  for (size_t I = 0; I < Body.size(); ++I) {
    const std::vector<ValueId> &Ids = DU.argIdsOf(I);
    for (size_t K = 0; K < Ids.size(); ++K)
      if (Ids[K] == InvalidValueId)
        return Status::failure("in '" + Body[I].str() +
                               "': undefined variable '" +
                               Body[I].args()[K] + "'");
    if (Status S = checkInstr(Fn, Body[I]); !S)
      return S;
  }

  // Outputs must name defined values with matching types.
  const std::vector<Port> &Outputs = Fn.outputs();
  for (size_t K = 0; K < Outputs.size(); ++K) {
    const Port &P = Outputs[K];
    ValueId Id = DU.outputIdOf(K);
    if (Id == InvalidValueId)
      return Status::failure("output '" + P.Name + "' is never defined");
    if (!(DU.typeOfId(Id) == P.Ty))
      return Status::failure("output '" + P.Name + "' declared " +
                             P.Ty.str() + " but defined as " +
                             DU.typeOfId(Id).str());
  }

  // No combinational cycles.
  if (!DU.topoOk())
    return Status::failure("function '" + Fn.name() +
                           "' has a combinational cycle (register-free loop)");

  recordIrCoverage(Fn, Ctx);
  return Status::success();
}
