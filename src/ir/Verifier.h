//===- ir/Verifier.h - Typing and well-formedness ---------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks that a function is well formed (Section 6.1): names resolve,
/// instructions are well typed, and the dependency graph is acyclic once
/// register instructions are removed. Unlike traditional HDL tools, which
/// silently propagate x-values through combinational loops, Reticle rejects
/// such programs ahead of time.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_IR_VERIFIER_H
#define RETICLE_IR_VERIFIER_H

#include "ir/Function.h"
#include "support/Result.h"

#include <vector>

namespace reticle {
namespace ir {

/// Verifies naming, typing, and acyclicity of \p Fn. Runs off the cached
/// DefUse analysis (building it on first use), so a verified function
/// hands every later stage a warm cache.
Status verify(const Function &Fn,
              const obs::Context &Ctx = obs::defaultContext());

/// Computes a topological order of the non-register instructions of \p Fn
/// (indices into the body). Register instructions are excluded from the
/// graph per Section 6.1, which is what legalizes feedback through state.
/// Fails when a combinational (register-free) cycle exists. Served from
/// the cached DefUse analysis.
Result<std::vector<size_t>>
topoOrder(const Function &Fn, const obs::Context &Ctx = obs::defaultContext());

/// Type-checks a single instruction in the context of \p Fn.
Status checkInstr(const Function &Fn, const Instr &I);

} // namespace ir
} // namespace reticle

#endif // RETICLE_IR_VERIFIER_H
