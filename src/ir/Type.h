//===- ir/Type.h - Reticle value types --------------------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Reticle type system (paper Figure 5): booleans, signed integers iN,
/// and integer vectors iN<L>. Vector types are the lever that lets programs
/// promote SIMD-capable hardware (DSP vectorization, Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_IR_TYPE_H
#define RETICLE_IR_TYPE_H

#include "support/Result.h"

#include <cstdint>
#include <string>

namespace reticle {
namespace ir {

/// A Reticle value type: bool, iN, or iN<L>.
///
/// Integers are signed two's-complement with width 1..64. A vector type has
/// Lanes > 1; all lanes share one element width. bool is distinct from i1 in
/// the surface syntax but shares its single-bit representation.
class Type {
public:
  enum class Kind : uint8_t { Bool, Int };

  /// Default-constructs bool; prefer the named constructors.
  Type() = default;

  static Type makeBool() { return Type(); }

  static Type makeInt(unsigned Width, unsigned Lanes = 1) {
    assert(Width >= 1 && Width <= 64 && "integer width out of range");
    assert(Lanes >= 1 && "vector must have at least one lane");
    Type T;
    T.TypeKind = Kind::Int;
    T.ElemWidth = static_cast<uint8_t>(Width);
    T.NumLanes = static_cast<uint16_t>(Lanes);
    return T;
  }

  Kind kind() const { return TypeKind; }
  bool isBool() const { return TypeKind == Kind::Bool; }
  bool isInt() const { return TypeKind == Kind::Int; }
  bool isVector() const { return NumLanes > 1; }

  /// Element width in bits (1 for bool).
  unsigned width() const { return ElemWidth; }

  /// Number of lanes (1 for scalars and bool).
  unsigned lanes() const { return NumLanes; }

  /// Total bit count across all lanes; the unit wire instructions operate
  /// on (slice/cat reinterpret flattened bits).
  unsigned totalBits() const { return ElemWidth * NumLanes; }

  /// The scalar type of one lane.
  Type scalar() const {
    return isBool() ? makeBool() : makeInt(ElemWidth, 1);
  }

  /// Renders the surface syntax: "bool", "i8", "i8<4>".
  std::string str() const;

  /// Parses the surface syntax accepted by str().
  static Result<Type> parse(const std::string &Text);

  bool operator==(const Type &Other) const = default;

private:
  Kind TypeKind = Kind::Bool;
  uint8_t ElemWidth = 1;
  uint16_t NumLanes = 1;
};

} // namespace ir
} // namespace reticle

#endif // RETICLE_IR_TYPE_H
