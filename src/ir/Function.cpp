//===- ir/Function.cpp - Intermediate-language functions -------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

using namespace reticle;
using namespace reticle::ir;

const Instr *Function::findDef(const std::string &Var) const {
  if (DU) {
    ValueId Id = DU->idOf(Var);
    if (Id == InvalidValueId)
      return nullptr;
    uint32_t Def = DU->defIndexOf(Id);
    return Def == DefUse::NoDef ? nullptr : &Body[Def];
  }
  for (const Instr &I : Body)
    if (I.dst() == Var)
      return &I;
  return nullptr;
}

bool Function::isInput(const std::string &Var) const {
  if (DU) {
    ValueId Id = DU->idOf(Var);
    return Id != InvalidValueId && DU->isInputId(Id);
  }
  for (const Port &P : Inputs)
    if (P.Name == Var)
      return true;
  return false;
}

Result<Type> Function::typeOf(const std::string &Var) const {
  if (DU) {
    ValueId Id = DU->idOf(Var);
    if (Id != InvalidValueId)
      return DU->typeOfId(Id);
    return fail<Type>("unknown variable '" + Var + "' in function '" + Name +
                      "'");
  }
  for (const Port &P : Inputs)
    if (P.Name == Var)
      return P.Ty;
  if (const Instr *I = findDef(Var))
    return I->type();
  return fail<Type>("unknown variable '" + Var + "' in function '" + Name +
                    "'");
}

std::string Function::str() const {
  auto PortList = [](const std::vector<Port> &Ports) {
    std::string Out = "(";
    for (size_t I = 0; I < Ports.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Ports[I].Name + ":" + Ports[I].Ty.str();
    }
    return Out + ")";
  };
  std::string Out = "def " + Name + PortList(Inputs) + " -> " +
                    PortList(Outputs) + " {\n";
  for (const Instr &I : Body)
    Out += "  " + I.str() + "\n";
  Out += "}\n";
  return Out;
}
