//===- ir/Instr.cpp - Intermediate-language instructions -------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "ir/Instr.h"

using namespace reticle;
using namespace reticle::ir;

const char *reticle::ir::resourceName(Resource Res) {
  switch (Res) {
  case Resource::Any:
    return "??";
  case Resource::Lut:
    return "lut";
  case Resource::Dsp:
    return "dsp";
  }
  return "?";
}

std::string Instr::str() const {
  std::string Out = Dst + ":" + DstType.str() + " = " + opName();
  if (!Attrs.empty()) {
    Out += "[";
    for (size_t I = 0; I < Attrs.size(); ++I) {
      if (I)
        Out += ", ";
      Out += std::to_string(Attrs[I]);
    }
    Out += "]";
  }
  if (!Args.empty()) {
    Out += "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Args[I];
    }
    Out += ")";
  }
  if (isComp())
    Out += std::string(" @") + resourceName(Res);
  Out += ";";
  return Out;
}
