//===- ir/Parser.h - Intermediate-language parser ---------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual front end for the intermediate language of Figure 5a.
///
/// Concrete syntax (the paper shows instructions only; we add a `def`
/// function header):
///
/// \code
///   def muladd(a:i8, b:i8, c:i8) -> (y:i8) {
///     t0:i8 = mul(a, b) @??;
///     y:i8 = add(t0, c) @dsp;
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_IR_PARSER_H
#define RETICLE_IR_PARSER_H

#include "ir/Function.h"
#include "support/Result.h"

#include <string>

namespace reticle {
namespace ir {

/// Parses one function from \p Source. Parsing validates syntax only; use
/// the Verifier for typing and well-formedness.
Result<Function> parseFunction(const std::string &Source);

} // namespace ir
} // namespace reticle

#endif // RETICLE_IR_PARSER_H
