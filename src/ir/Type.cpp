//===- ir/Type.cpp - Reticle value types ----------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include <cctype>

using namespace reticle;
using namespace reticle::ir;

std::string Type::str() const {
  if (isBool())
    return "bool";
  std::string Out = "i" + std::to_string(ElemWidth);
  if (isVector())
    Out += "<" + std::to_string(NumLanes) + ">";
  return Out;
}

Result<Type> Type::parse(const std::string &Text) {
  if (Text == "bool")
    return Type::makeBool();
  if (Text.empty() || Text[0] != 'i')
    return fail<Type>("unknown type '" + Text + "'");
  size_t I = 1;
  unsigned Width = 0;
  while (I < Text.size() && std::isdigit(static_cast<unsigned char>(Text[I]))) {
    Width = Width * 10 + static_cast<unsigned>(Text[I] - '0');
    if (Width > 64)
      return fail<Type>("integer width exceeds 64 in '" + Text + "'");
    ++I;
  }
  if (Width == 0)
    return fail<Type>("unknown type '" + Text + "'");
  unsigned Lanes = 1;
  if (I < Text.size()) {
    if (Text[I] != '<' || Text.back() != '>')
      return fail<Type>("malformed vector type '" + Text + "'");
    unsigned Value = 0;
    for (size_t J = I + 1; J + 1 < Text.size(); ++J) {
      if (!std::isdigit(static_cast<unsigned char>(Text[J])))
        return fail<Type>("malformed vector type '" + Text + "'");
      Value = Value * 10 + static_cast<unsigned>(Text[J] - '0');
      if (Value > 4096)
        return fail<Type>("vector length exceeds 4096 in '" + Text + "'");
    }
    if (Value == 0)
      return fail<Type>("vector length must be positive in '" + Text + "'");
    Lanes = Value;
  }
  return Type::makeInt(Width, Lanes);
}
