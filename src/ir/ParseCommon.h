//===- ir/ParseCommon.h - Shared parsing helpers ----------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parsing helpers shared by the intermediate-language, assembly-language,
/// and target-description parsers: types, port lists, attribute lists, and
/// argument lists, which are spelled identically in all three dialects.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_IR_PARSECOMMON_H
#define RETICLE_IR_PARSECOMMON_H

#include "ir/Function.h"
#include "support/Lexer.h"
#include "support/Result.h"

#include <cstdint>
#include <vector>

namespace reticle {
namespace ir {

/// Formats "line L:C: ..." for the current token of \p Lex.
std::string diagAt(const Lexer &Lex, const std::string &Message);

/// Consumes a token of kind \p Kind or produces a diagnostic.
Status expect(Lexer &Lex, TokenKind Kind);

/// Parses a type: `bool`, `iN`, or `iN<L>`.
Result<Type> parseType(Lexer &Lex);

/// Parses a parenthesized, comma-separated list of `name:type` ports. The
/// list may be empty.
Result<std::vector<Port>> parsePortList(Lexer &Lex);

/// Parses an optional bracketed attribute list `[i, i, ...]`.
///
/// When \p AllowHoles is true the `_` token is accepted as an attribute
/// hole (used by target descriptions to bind an attribute of the matched
/// instruction); holes are recorded in \p Holes with value 0 in the
/// attribute vector.
Result<std::vector<int64_t>> parseAttrList(Lexer &Lex, bool AllowHoles,
                                           std::vector<bool> *Holes);

/// Parses an optional parenthesized argument list of identifiers.
Result<std::vector<std::string>> parseArgList(Lexer &Lex);

} // namespace ir
} // namespace reticle

#endif // RETICLE_IR_PARSECOMMON_H
