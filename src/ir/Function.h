//===- ir/Function.h - Intermediate-language functions ----------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Reticle program is a function: a name, typed input and output ports,
/// and a flat instruction body (Figure 5a). Instructions describe a circuit,
/// so their textual order carries no meaning; definitions may lexically
/// follow their uses (Figure 12b).
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_IR_FUNCTION_H
#define RETICLE_IR_FUNCTION_H

#include "ir/DefUse.h"
#include "ir/Instr.h"

#include <memory>
#include <string>
#include <vector>

namespace reticle {
namespace ir {

/// A typed function port.
struct Port {
  std::string Name;
  Type Ty;
};

/// An intermediate-language function.
class Function {
public:
  Function() = default;
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  std::vector<Port> &inputs() { return Inputs; }
  const std::vector<Port> &inputs() const { return Inputs; }
  std::vector<Port> &outputs() { return Outputs; }
  const std::vector<Port> &outputs() const { return Outputs; }
  std::vector<Instr> &body() { return Body; }
  const std::vector<Instr> &body() const { return Body; }

  void addInput(std::string PortName, Type Ty) {
    Inputs.push_back(Port{std::move(PortName), Ty});
    invalidateDefUse();
  }
  void addOutput(std::string PortName, Type Ty) {
    Outputs.push_back(Port{std::move(PortName), Ty});
    invalidateDefUse();
  }
  void addInstr(Instr I) {
    Body.push_back(std::move(I));
    invalidateDefUse();
  }

  /// The cached def-use analysis, built on first request. Anything that
  /// mutates the body or ports through the non-const accessors must call
  /// invalidateDefUse() before the next consumer reads the analysis.
  const DefUse &defUse(const obs::Context &Ctx = obs::defaultContext()) const {
    if (DU) {
      ++Ctx.counter("ir.defuse.cache_hits");
      return *DU;
    }
    DU = DefUse::build(*this, Ctx);
    return *DU;
  }

  /// Shares ownership of the cached analysis, so holders survive a later
  /// invalidation on the function (the analysis itself is immutable).
  std::shared_ptr<const DefUse>
  defUseShared(const obs::Context &Ctx = obs::defaultContext()) const {
    (void)defUse(Ctx);
    return DU;
  }

  /// Drops the cached analysis; counted only when a cache existed.
  void invalidateDefUse(
      const obs::Context &Ctx = obs::defaultContext()) const {
    if (DU) {
      DU.reset();
      ++Ctx.counter("ir.defuse.invalidations");
    }
  }

  /// Returns the instruction defining \p Var, or null when \p Var is an
  /// input or undefined.
  const Instr *findDef(const std::string &Var) const;

  /// Returns the type of \p Var when it is an input or an instruction
  /// result.
  Result<Type> typeOf(const std::string &Var) const;

  /// True when \p Var is a function input.
  bool isInput(const std::string &Var) const;

  /// Renders the function in surface syntax.
  std::string str() const;

private:
  std::string Name;
  std::vector<Port> Inputs;
  std::vector<Port> Outputs;
  std::vector<Instr> Body;
  /// Lazily built, dropped on mutation. Copies of a Function share the
  /// analysis until either side invalidates its own pointer; DefUse is
  /// immutable, so sharing is safe.
  mutable std::shared_ptr<const DefUse> DU;
};

} // namespace ir
} // namespace reticle

#endif // RETICLE_IR_FUNCTION_H
