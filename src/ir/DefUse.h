//===- ir/DefUse.h - Interned value ids and shared def-use analysis -*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense value handles for the ANF IR. Every pipeline stage used to rebuild
/// its own `std::map<std::string, ...>` over the same function; instead, a
/// per-function `NameInterner` assigns each value name a dense `ValueId`
/// (inputs first, then body destinations, in program order) and a single
/// cached `DefUse` analysis records, per id: the defining body index, the
/// use list and use count (argument occurrences plus output-port reads),
/// the type, and whether the value is a live output. The analysis also
/// carries the register-aware topological order of the body and the first
/// duplicate-name event, so the verifier needs no maps of its own.
///
/// `DefUse` is immutable once built. `ir::Function` and `rasm::AsmProgram`
/// cache one behind a shared_ptr; any code that mutates a function body,
/// ports, or instruction names must call `invalidateDefUse()` before the
/// next analysis consumer runs. Builds, cache hits, and invalidations are
/// counted under `ir.defuse.*` / `ir.interner.*`.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_IR_DEFUSE_H
#define RETICLE_IR_DEFUSE_H

#include "ir/Type.h"
#include "obs/Context.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace reticle {
namespace ir {

/// Dense handle for a named value inside one function: inputs occupy
/// ids [0, numInputs()), body destinations follow in body order.
using ValueId = uint32_t;

/// Sentinel for "no such value" (unknown name, undefined argument).
inline constexpr ValueId InvalidValueId = ~ValueId(0);

/// Maps value names to dense ids. Strings live in a deque so views handed
/// out (and the map's own keys) stay valid as the table grows.
class NameInterner {
public:
  /// Returns the id for \p Name, interning it on first sight.
  ValueId intern(std::string_view Name) {
    auto It = Index.find(Name);
    if (It != Index.end())
      return It->second;
    Storage.emplace_back(Name);
    ValueId Id = static_cast<ValueId>(Storage.size() - 1);
    Index.emplace(std::string_view(Storage.back()), Id);
    return Id;
  }

  /// Returns the id for \p Name, or InvalidValueId when never interned.
  ValueId lookup(std::string_view Name) const {
    auto It = Index.find(Name);
    return It == Index.end() ? InvalidValueId : It->second;
  }

  const std::string &name(ValueId Id) const { return Storage[Id]; }
  size_t size() const { return Storage.size(); }

private:
  std::deque<std::string> Storage;
  std::unordered_map<std::string_view, ValueId> Index;
};

/// One function's def-use facts, indexed by ValueId. Built once per
/// function (template works for both ir::Function and rasm::AsmProgram,
/// which share the name/inputs/outputs/body shape) and cached on the
/// program object; see the file comment for the invalidation contract.
class DefUse {
public:
  /// Sentinel body index for values with no defining instruction
  /// (function inputs, or names only read).
  static constexpr uint32_t NoDef = ~uint32_t(0);

  /// Which namespace the first duplicate definition was found in.
  enum class Dup : uint8_t { None, Input, Body };

  template <typename ProgramT>
  static std::shared_ptr<const DefUse>
  build(const ProgramT &P, const obs::Context &Ctx = obs::defaultContext());

  // --- Interner access -------------------------------------------------
  const NameInterner &names() const { return Names; }
  ValueId idOf(std::string_view Name) const { return Names.lookup(Name); }
  const std::string &nameOf(ValueId Id) const { return Names.name(Id); }
  size_t numValues() const { return Names.size(); }
  uint32_t numInputs() const { return NumInputs; }
  bool isInputId(ValueId Id) const { return Id < NumInputs; }

  // --- Def side --------------------------------------------------------
  /// Body index of the (first) instruction defining \p Id, or NoDef.
  uint32_t defIndexOf(ValueId Id) const { return DefIndexOfId[Id]; }
  /// Destination id of body instruction \p BodyIdx.
  ValueId dstIdOf(size_t BodyIdx) const { return DstIdOfBody[BodyIdx]; }

  // --- Use side --------------------------------------------------------
  /// Argument occurrences across the body plus output-port reads.
  uint32_t useCount(ValueId Id) const { return UseCounts[Id]; }
  /// Body indices reading \p Id, one entry per argument occurrence, in
  /// body-scan order.
  const std::vector<uint32_t> &usersOf(ValueId Id) const {
    return Users[Id];
  }
  /// Interned argument ids of body instruction \p BodyIdx, parallel to
  /// its args(); InvalidValueId marks an undefined name.
  const std::vector<ValueId> &argIdsOf(size_t BodyIdx) const {
    return ArgIds[BodyIdx];
  }
  /// Id of output port \p OutIdx's value, or InvalidValueId when the
  /// output names nothing defined.
  ValueId outputIdOf(size_t OutIdx) const { return OutputIds[OutIdx]; }
  /// True when \p Id's name appears among the output ports.
  bool isLiveOut(ValueId Id) const { return LiveOut[Id] != 0; }

  // --- Types -----------------------------------------------------------
  /// Declared type of \p Id (input port type, else defining instruction's
  /// result type; inputs win on shadowing, matching Function::typeOf).
  const Type &typeOfId(ValueId Id) const { return TypeOfId[Id]; }

  // --- Topological order (ir::Function only) ---------------------------
  /// Register-aware topological order over non-register body indices.
  /// Empty (with topoOk() true) for programs whose instructions carry no
  /// register notion (rasm).
  const std::vector<size_t> &topoOrder() const { return Topo; }
  /// False when the register-free subgraph has a combinational cycle.
  bool topoOk() const { return TopoComplete; }

  // --- Duplicate tracking ----------------------------------------------
  Dup duplicateKind() const { return DupKind; }
  const std::string &duplicateName() const { return DupName; }

private:
  NameInterner Names;
  uint32_t NumInputs = 0;
  std::vector<uint32_t> DefIndexOfId;
  std::vector<ValueId> DstIdOfBody;
  std::vector<uint32_t> UseCounts;
  std::vector<std::vector<uint32_t>> Users;
  std::vector<std::vector<ValueId>> ArgIds;
  std::vector<ValueId> OutputIds;
  std::vector<uint8_t> LiveOut;
  std::vector<Type> TypeOfId;
  std::vector<size_t> Topo;
  bool TopoComplete = true;
  Dup DupKind = Dup::None;
  std::string DupName;
};

template <typename ProgramT>
std::shared_ptr<const DefUse> DefUse::build(const ProgramT &P,
                                            const obs::Context &Ctx) {
  auto DU = std::make_shared<DefUse>();
  const auto &Body = P.body();

  // Inputs first: ids [0, NumInputs).
  for (const auto &Port : P.inputs()) {
    size_t Before = DU->Names.size();
    ValueId Id = DU->Names.intern(Port.Name);
    if (DU->Names.size() == Before) {
      if (DU->DupKind == Dup::None) {
        DU->DupKind = Dup::Input;
        DU->DupName = Port.Name;
      }
      continue;
    }
    (void)Id;
    DU->DefIndexOfId.push_back(NoDef);
    DU->TypeOfId.push_back(Port.Ty);
  }
  DU->NumInputs = static_cast<uint32_t>(DU->Names.size());

  // Body destinations next, in body order. First definition wins on a
  // duplicate (matching linear-scan findDef); the verifier rejects the
  // program before anything downstream can observe the difference.
  DU->DstIdOfBody.reserve(Body.size());
  for (size_t I = 0; I < Body.size(); ++I) {
    size_t Before = DU->Names.size();
    ValueId Id = DU->Names.intern(Body[I].dst());
    DU->DstIdOfBody.push_back(Id);
    if (DU->Names.size() == Before) {
      if (DU->DupKind == Dup::None) {
        DU->DupKind = Dup::Body;
        DU->DupName = Body[I].dst();
      }
      continue;
    }
    DU->DefIndexOfId.push_back(static_cast<uint32_t>(I));
    DU->TypeOfId.push_back(Body[I].type());
  }

  size_t N = DU->Names.size();
  DU->UseCounts.assign(N, 0);
  DU->Users.resize(N);
  DU->LiveOut.assign(N, 0);

  // Argument resolution: defs may lexically follow uses, so this runs
  // only after every destination is interned. Unknown names stay
  // InvalidValueId rather than growing the id space.
  DU->ArgIds.resize(Body.size());
  for (size_t I = 0; I < Body.size(); ++I) {
    const auto &Args = Body[I].args();
    auto &Ids = DU->ArgIds[I];
    Ids.reserve(Args.size());
    for (const std::string &Arg : Args) {
      ValueId Id = DU->Names.lookup(Arg);
      Ids.push_back(Id);
      if (Id != InvalidValueId) {
        ++DU->UseCounts[Id];
        DU->Users[Id].push_back(static_cast<uint32_t>(I));
      }
    }
  }

  // Output ports read their named value once each.
  const auto &Outputs = P.outputs();
  DU->OutputIds.reserve(Outputs.size());
  for (const auto &Port : Outputs) {
    ValueId Id = DU->Names.lookup(Port.Name);
    DU->OutputIds.push_back(Id);
    if (Id != InvalidValueId) {
      ++DU->UseCounts[Id];
      DU->LiveOut[Id] = 1;
    }
  }

  // Register-aware topological order (Kahn), only for instruction types
  // with a register notion (ir::Instr). Registers break combinational
  // edges, so only non-register defs feed in-degrees; the last
  // non-register definition wins, matching the historical map fill.
  if constexpr (requires(const typename std::decay_t<decltype(Body)>::
                             value_type &I) { I.isReg(); }) {
    std::vector<uint32_t> NonRegDef(N, NoDef);
    for (size_t I = 0; I < Body.size(); ++I)
      if (!Body[I].isReg())
        NonRegDef[DU->DstIdOfBody[I]] = static_cast<uint32_t>(I);

    std::vector<unsigned> InDegree(Body.size(), 0);
    std::vector<std::vector<size_t>> TopoUsers(Body.size());
    size_t NodeCount = 0;
    for (size_t I = 0; I < Body.size(); ++I) {
      if (Body[I].isReg())
        continue;
      ++NodeCount;
      for (ValueId Arg : DU->ArgIds[I]) {
        if (Arg == InvalidValueId || NonRegDef[Arg] == NoDef)
          continue; // input or register result: no combinational edge
        TopoUsers[NonRegDef[Arg]].push_back(I);
        ++InDegree[I];
      }
    }
    std::vector<size_t> Ready;
    for (size_t I = 0; I < Body.size(); ++I)
      if (!Body[I].isReg() && InDegree[I] == 0)
        Ready.push_back(I);
    while (!Ready.empty()) {
      size_t I = Ready.back();
      Ready.pop_back();
      DU->Topo.push_back(I);
      for (size_t U : TopoUsers[I])
        if (--InDegree[U] == 0)
          Ready.push_back(U);
    }
    DU->TopoComplete = DU->Topo.size() == NodeCount;
  }

  ++Ctx.counter("ir.defuse.builds");
  Ctx.counter("ir.interner.names") += N;
  return DU;
}

} // namespace ir
} // namespace reticle

#endif // RETICLE_IR_DEFUSE_H
