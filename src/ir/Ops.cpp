//===- ir/Ops.cpp - Intermediate-language operations -----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "ir/Ops.h"

using namespace reticle;
using namespace reticle::ir;

const char *reticle::ir::wireOpName(WireOp Op) {
  switch (Op) {
  case WireOp::Sll:
    return "sll";
  case WireOp::Srl:
    return "srl";
  case WireOp::Sra:
    return "sra";
  case WireOp::Slice:
    return "slice";
  case WireOp::Cat:
    return "cat";
  case WireOp::Id:
    return "id";
  case WireOp::Const:
    return "const";
  }
  return "?";
}

const char *reticle::ir::compOpName(CompOp Op) {
  switch (Op) {
  case CompOp::Add:
    return "add";
  case CompOp::Sub:
    return "sub";
  case CompOp::Mul:
    return "mul";
  case CompOp::Not:
    return "not";
  case CompOp::And:
    return "and";
  case CompOp::Or:
    return "or";
  case CompOp::Xor:
    return "xor";
  case CompOp::Eq:
    return "eq";
  case CompOp::Neq:
    return "neq";
  case CompOp::Lt:
    return "lt";
  case CompOp::Gt:
    return "gt";
  case CompOp::Le:
    return "le";
  case CompOp::Ge:
    return "ge";
  case CompOp::Mux:
    return "mux";
  case CompOp::Reg:
    return "reg";
  }
  return "?";
}

std::optional<WireOp> reticle::ir::parseWireOp(const std::string &Name) {
  if (Name == "sll")
    return WireOp::Sll;
  if (Name == "srl")
    return WireOp::Srl;
  if (Name == "sra")
    return WireOp::Sra;
  if (Name == "slice")
    return WireOp::Slice;
  if (Name == "cat")
    return WireOp::Cat;
  if (Name == "id")
    return WireOp::Id;
  if (Name == "const")
    return WireOp::Const;
  return std::nullopt;
}

std::optional<CompOp> reticle::ir::parseCompOp(const std::string &Name) {
  if (Name == "add")
    return CompOp::Add;
  if (Name == "sub")
    return CompOp::Sub;
  if (Name == "mul")
    return CompOp::Mul;
  if (Name == "not")
    return CompOp::Not;
  if (Name == "and")
    return CompOp::And;
  if (Name == "or")
    return CompOp::Or;
  if (Name == "xor")
    return CompOp::Xor;
  if (Name == "eq")
    return CompOp::Eq;
  if (Name == "neq")
    return CompOp::Neq;
  if (Name == "lt")
    return CompOp::Lt;
  if (Name == "gt")
    return CompOp::Gt;
  if (Name == "le")
    return CompOp::Le;
  if (Name == "ge")
    return CompOp::Ge;
  if (Name == "mux")
    return CompOp::Mux;
  if (Name == "reg")
    return CompOp::Reg;
  return std::nullopt;
}

bool reticle::ir::isCommutative(CompOp Op) {
  switch (Op) {
  case CompOp::Add:
  case CompOp::Mul:
  case CompOp::And:
  case CompOp::Or:
  case CompOp::Xor:
  case CompOp::Eq:
  case CompOp::Neq:
    return true;
  default:
    return false;
  }
}

bool reticle::ir::isComparison(CompOp Op) {
  switch (Op) {
  case CompOp::Eq:
  case CompOp::Neq:
  case CompOp::Lt:
  case CompOp::Gt:
  case CompOp::Le:
  case CompOp::Ge:
    return true;
  default:
    return false;
  }
}
