//===- ir/Parser.cpp - Intermediate-language parser -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/ParseCommon.h"
#include "support/Lexer.h"

using namespace reticle;
using namespace reticle::ir;

namespace {

Result<Instr> parseInstr(Lexer &Lex) {
  if (!Lex.at(TokenKind::Ident))
    return fail<Instr>(diagAt(Lex, "expected instruction destination"));
  std::string Dst = Lex.next().Text;
  if (Status S = expect(Lex, TokenKind::Colon); !S)
    return fail<Instr>(S.error());
  Result<Type> Ty = parseType(Lex);
  if (!Ty)
    return fail<Instr>(Ty.error());
  if (Status S = expect(Lex, TokenKind::Equal); !S)
    return fail<Instr>(S.error());
  if (!Lex.at(TokenKind::Ident))
    return fail<Instr>(diagAt(Lex, "expected operation name"));
  std::string OpName = Lex.next().Text;
  Result<std::vector<int64_t>> Attrs =
      parseAttrList(Lex, /*AllowHoles=*/false, nullptr);
  if (!Attrs)
    return fail<Instr>(Attrs.error());
  Result<std::vector<std::string>> Args = parseArgList(Lex);
  if (!Args)
    return fail<Instr>(Args.error());

  // Optional resource annotation, compute instructions only.
  bool SawRes = false;
  Resource Res = Resource::Any;
  if (Lex.accept(TokenKind::At)) {
    SawRes = true;
    if (Lex.accept(TokenKind::Wildcard)) {
      Res = Resource::Any;
    } else if (Lex.atIdent("lut")) {
      Lex.next();
      Res = Resource::Lut;
    } else if (Lex.atIdent("dsp")) {
      Lex.next();
      Res = Resource::Dsp;
    } else {
      return fail<Instr>(diagAt(Lex, "expected '?\?', 'lut', or 'dsp'"));
    }
  }
  if (Status S = expect(Lex, TokenKind::Semi); !S)
    return fail<Instr>(S.error());

  if (std::optional<WireOp> WOp = parseWireOp(OpName)) {
    if (SawRes)
      return fail<Instr>("wire instruction '" + OpName +
                         "' cannot carry a resource annotation");
    return Instr::makeWire(std::move(Dst), Ty.value(), *WOp,
                           Attrs.take(), Args.take());
  }
  if (std::optional<CompOp> COp = parseCompOp(OpName))
    return Instr::makeComp(std::move(Dst), Ty.value(), *COp, Args.take(),
                           Attrs.take(), Res);
  return fail<Instr>("unknown operation '" + OpName + "'");
}

} // namespace

Result<Function> reticle::ir::parseFunction(const std::string &Source) {
  Lexer Lex(Source);
  if (!Lex.ok())
    return fail<Function>(Lex.error());

  // Optional `def` keyword.
  if (Lex.atIdent("def"))
    Lex.next();
  if (!Lex.at(TokenKind::Ident))
    return fail<Function>(diagAt(Lex, "expected function name"));
  Function Fn(Lex.next().Text);

  Result<std::vector<Port>> Inputs = parsePortList(Lex);
  if (!Inputs)
    return fail<Function>(Inputs.error());
  Fn.inputs() = Inputs.take();

  if (Status S = expect(Lex, TokenKind::Arrow); !S)
    return fail<Function>(S.error());

  Result<std::vector<Port>> Outputs = parsePortList(Lex);
  if (!Outputs)
    return fail<Function>(Outputs.error());
  Fn.outputs() = Outputs.take();
  if (Fn.outputs().empty())
    return fail<Function>("function '" + Fn.name() +
                          "' must declare at least one output");

  if (Status S = expect(Lex, TokenKind::LBrace); !S)
    return fail<Function>(S.error());
  while (!Lex.at(TokenKind::RBrace)) {
    if (Lex.at(TokenKind::Eof))
      return fail<Function>(diagAt(Lex, "unterminated function body"));
    Result<Instr> I = parseInstr(Lex);
    if (!I)
      return fail<Function>(I.error());
    Fn.addInstr(I.take());
  }
  Lex.next(); // consume '}'
  return Fn;
}
