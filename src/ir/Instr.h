//===- ir/Instr.h - Intermediate-language instructions ----------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instructions of the intermediate language (paper Figure 5a). Function
/// bodies are in A-normal form: a flat list of instructions whose arguments
/// are always variables. Every instruction produces exactly one typed value.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_IR_INSTR_H
#define RETICLE_IR_INSTR_H

#include "ir/Ops.h"
#include "ir/Type.h"

#include <string>
#include <vector>

namespace reticle {
namespace ir {

/// Resource annotation on compute instructions: "@??", "@lut", or "@dsp".
///
/// Unlike HDL hints, these are hard constraints: the compiler rejects a
/// program it cannot honor instead of silently ignoring the request
/// (Section 3).
enum class Resource : uint8_t {
  Any, ///< the wildcard "??": the compiler chooses
  Lut,
  Dsp,
};

const char *resourceName(Resource Res);

/// One intermediate-language instruction, either wire or compute.
///
/// Shared format: `dst: type = op[attrs](args) @res;` where attrs are static
/// integers, args are variable names, and @res appears only on compute
/// instructions.
class Instr {
public:
  enum class Kind : uint8_t { Wire, Comp };

  static Instr makeWire(std::string Dst, Type Ty, WireOp Op,
                        std::vector<int64_t> Attrs = {},
                        std::vector<std::string> Args = {}) {
    Instr I;
    I.InstrKind = Kind::Wire;
    I.Dst = std::move(Dst);
    I.DstType = Ty;
    I.Wire = Op;
    I.Attrs = std::move(Attrs);
    I.Args = std::move(Args);
    return I;
  }

  static Instr makeComp(std::string Dst, Type Ty, CompOp Op,
                        std::vector<std::string> Args,
                        std::vector<int64_t> Attrs = {},
                        Resource Res = Resource::Any) {
    Instr I;
    I.InstrKind = Kind::Comp;
    I.Dst = std::move(Dst);
    I.DstType = Ty;
    I.Comp = Op;
    I.Attrs = std::move(Attrs);
    I.Args = std::move(Args);
    I.Res = Res;
    return I;
  }

  Kind kind() const { return InstrKind; }
  bool isWire() const { return InstrKind == Kind::Wire; }
  bool isComp() const { return InstrKind == Kind::Comp; }

  WireOp wireOp() const {
    assert(isWire() && "not a wire instruction");
    return Wire;
  }
  CompOp compOp() const {
    assert(isComp() && "not a compute instruction");
    return Comp;
  }

  /// True for the stateful register instruction.
  bool isReg() const { return isComp() && Comp == CompOp::Reg; }

  const std::string &dst() const { return Dst; }
  Type type() const { return DstType; }
  const std::vector<int64_t> &attrs() const { return Attrs; }
  const std::vector<std::string> &args() const { return Args; }
  Resource resource() const { return Res; }
  void setResource(Resource R) { Res = R; }

  /// The operation spelling, independent of kind. Static storage; no
  /// allocation on hot paths.
  const char *opName() const {
    return isWire() ? wireOpName(Wire) : compOpName(Comp);
  }

  /// Renders the instruction in surface syntax (no trailing newline).
  std::string str() const;

private:
  Kind InstrKind = Kind::Wire;
  std::string Dst;
  Type DstType;
  WireOp Wire = WireOp::Id;
  CompOp Comp = CompOp::Add;
  std::vector<int64_t> Attrs;
  std::vector<std::string> Args;
  Resource Res = Resource::Any;
};

} // namespace ir
} // namespace reticle

#endif // RETICLE_IR_INSTR_H
