//===- ir/ParseCommon.cpp - Shared parsing helpers -------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "ir/ParseCommon.h"

using namespace reticle;
using namespace reticle::ir;

std::string reticle::ir::diagAt(const Lexer &Lex, const std::string &Message) {
  const Token &T = Lex.peek();
  return "line " + std::to_string(T.Line) + ":" + std::to_string(T.Col) +
         ": " + Message;
}

Status reticle::ir::expect(Lexer &Lex, TokenKind Kind) {
  if (Lex.accept(Kind))
    return Status::success();
  return Status::failure(diagAt(Lex, std::string("expected ") +
                                         tokenKindName(Kind) + ", found " +
                                         tokenKindName(Lex.peek().Kind)));
}

Result<Type> reticle::ir::parseType(Lexer &Lex) {
  if (!Lex.at(TokenKind::Ident))
    return fail<Type>(diagAt(Lex, "expected a type"));
  std::string Name = Lex.next().Text;
  if (Name == "bool")
    return Type::makeBool();
  Result<Type> Base = Type::parse(Name);
  if (!Base)
    return fail<Type>(diagAt(Lex, Base.error()));
  if (!Lex.accept(TokenKind::Less))
    return Base;
  if (!Lex.at(TokenKind::Int))
    return fail<Type>(diagAt(Lex, "expected vector length"));
  int64_t Lanes = Lex.next().IntValue;
  if (Lanes < 1 || Lanes > 4096)
    return fail<Type>(diagAt(Lex, "vector length out of range"));
  if (Status S = expect(Lex, TokenKind::Greater); !S)
    return fail<Type>(S.error());
  if (Base.value().isBool())
    return fail<Type>(diagAt(Lex, "bool cannot be a vector element type"));
  return Type::makeInt(Base.value().width(), static_cast<unsigned>(Lanes));
}

Result<std::vector<Port>> reticle::ir::parsePortList(Lexer &Lex) {
  using PortsT = std::vector<Port>;
  if (Status S = expect(Lex, TokenKind::LParen); !S)
    return fail<PortsT>(S.error());
  PortsT Ports;
  if (Lex.accept(TokenKind::RParen))
    return Ports;
  while (true) {
    if (!Lex.at(TokenKind::Ident))
      return fail<PortsT>(diagAt(Lex, "expected port name"));
    std::string Name = Lex.next().Text;
    if (Status S = expect(Lex, TokenKind::Colon); !S)
      return fail<PortsT>(S.error());
    Result<Type> Ty = parseType(Lex);
    if (!Ty)
      return fail<PortsT>(Ty.error());
    Ports.push_back(Port{std::move(Name), Ty.value()});
    if (Lex.accept(TokenKind::Comma))
      continue;
    break;
  }
  if (Status S = expect(Lex, TokenKind::RParen); !S)
    return fail<PortsT>(S.error());
  return Ports;
}

Result<std::vector<int64_t>>
reticle::ir::parseAttrList(Lexer &Lex, bool AllowHoles,
                           std::vector<bool> *Holes) {
  using AttrsT = std::vector<int64_t>;
  AttrsT Attrs;
  if (!Lex.accept(TokenKind::LBracket))
    return Attrs;
  if (Lex.accept(TokenKind::RBracket))
    return Attrs;
  while (true) {
    if (Lex.at(TokenKind::Int)) {
      Attrs.push_back(Lex.next().IntValue);
      if (Holes)
        Holes->push_back(false);
    } else if (AllowHoles && Lex.accept(TokenKind::Hole)) {
      Attrs.push_back(0);
      if (Holes)
        Holes->push_back(true);
    } else {
      return fail<AttrsT>(diagAt(Lex, "expected attribute value"));
    }
    if (Lex.accept(TokenKind::Comma))
      continue;
    break;
  }
  if (Status S = expect(Lex, TokenKind::RBracket); !S)
    return fail<AttrsT>(S.error());
  return Attrs;
}

Result<std::vector<std::string>> reticle::ir::parseArgList(Lexer &Lex) {
  using ArgsT = std::vector<std::string>;
  ArgsT Args;
  if (!Lex.accept(TokenKind::LParen))
    return Args;
  if (Lex.accept(TokenKind::RParen))
    return Args;
  while (true) {
    if (!Lex.at(TokenKind::Ident))
      return fail<ArgsT>(diagAt(Lex, "expected argument variable"));
    Args.push_back(Lex.next().Text);
    if (Lex.accept(TokenKind::Comma))
      continue;
    break;
  }
  if (Status S = expect(Lex, TokenKind::RParen); !S)
    return fail<ArgsT>(S.error());
  return Args;
}
