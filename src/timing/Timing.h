//===- timing/Timing.h - Static timing analysis -----------------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static timing analysis over placed designs. The paper reports
/// "run-time" as the critical path of the generated circuit, which sets
/// the maximum clock frequency (Section 7.2); with no physical FPGA
/// available, this analyzer plays the vendor timing engine's role.
///
/// The delay model follows published UltraScale+ characteristics in shape:
///  - DSP operations are fast and fixed-function; SIMD configurations are
///    slightly slower than scalar ones (Section 7.2 notes this);
///  - dedicated cascade routing between vertically adjacent DSPs is nearly
///    free, general fabric routing grows with Manhattan distance;
///  - LUT logic pays per level, carry chains pay per 8-bit block.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_TIMING_TIMING_H
#define RETICLE_TIMING_TIMING_H

#include "device/Device.h"
#include "obs/Context.h"
#include "rasm/Asm.h"
#include "support/Result.h"
#include "tdl/Target.h"

#include <string>
#include <vector>

namespace reticle {
namespace timing {

/// The delay model, in nanoseconds. Defaults approximate an UltraScale+
/// speed grade -1 in shape; they are knobs, not vendor data.
struct DelayModel {
  double ClockToQ = 0.10;
  double Setup = 0.05;
  double LutLogic = 0.15;       ///< one LUT level
  double CarryPerBlock = 0.35;  ///< one CARRY8 block
  double RouteBase = 0.35;      ///< any general-fabric hop
  double RoutePerUnit = 0.02;   ///< per slot of Manhattan distance
  double Cascade = 0.02;        ///< dedicated DSP cascade hop
  double DspAlu = 0.65;         ///< DSP add/sub, scalar
  double DspAluSimd = 0.80;     ///< DSP add/sub, vectorized
  double DspMul = 1.20;         ///< DSP multiply
  double DspMulAdd = 1.50;      ///< DSP multiply plus post-adder
};

/// One combinational element of the timing graph.
struct TimingNode {
  std::string Name;
  double Delay = 0.0;            ///< intrinsic combinational delay
  bool RegisteredOutput = false; ///< the element's result is registered
  bool HasPosition = false;
  int X = 0;
  int Y = 0;
  std::vector<size_t> Fanin;
  std::vector<bool> FaninCascade; ///< parallel to Fanin
};

/// Result of an analysis.
struct TimingReport {
  double CriticalPathNs = 0.0;
  double FmaxMhz = 0.0;
  std::vector<std::string> Path; ///< names along the critical path
};

/// A generic placed netlist for timing purposes. Both the Reticle pipeline
/// and the baseline toolchain lower their results into this form.
class TimingGraph {
public:
  explicit TimingGraph(DelayModel Model = DelayModel()) : Model(Model) {}

  size_t addNode(TimingNode Node) {
    Nodes.push_back(std::move(Node));
    return Nodes.size() - 1;
  }
  void addEdge(size_t From, size_t To, bool CascadeEdge = false) {
    Nodes[To].Fanin.push_back(From);
    Nodes[To].FaninCascade.push_back(CascadeEdge);
  }
  const std::vector<TimingNode> &nodes() const { return Nodes; }
  /// Mutable access, e.g. to set positions after placement.
  TimingNode &node(size_t Id) { return Nodes[Id]; }
  const DelayModel &model() const { return Model; }

  /// Longest register-to-register / input-to-output path. Fails on
  /// combinational cycles (which well-formed programs cannot produce).
  Result<TimingReport> analyze() const;

private:
  double edgeDelay(size_t From, size_t To, bool CascadeEdge) const;

  DelayModel Model;
  std::vector<TimingNode> Nodes;
};

/// Builds a timing graph for a placed Reticle assembly program and
/// analyzes it. Wire instructions contribute wiring only; operation
/// delays and registered outputs come from the target definition names.
/// When remarks are enabled on \p Ctx, emits one `timing:critical-path`
/// remark naming the instructions along the longest path, so `--remarks=-`
/// explains fmax rather than just reporting it.
Result<TimingReport> analyzeAsm(const rasm::AsmProgram &Placed,
                                const tdl::Target &Target,
                                const device::Device &Dev,
                                const DelayModel &Model = DelayModel(),
                                const obs::Context &Ctx = obs::defaultContext());

} // namespace timing
} // namespace reticle

#endif // RETICLE_TIMING_TIMING_H
