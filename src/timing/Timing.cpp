//===- timing/Timing.cpp - Static timing analysis -------------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "timing/Timing.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>

using namespace reticle;
using namespace reticle::timing;

double TimingGraph::edgeDelay(size_t From, size_t To,
                              bool CascadeEdge) const {
  if (CascadeEdge)
    return Model.Cascade;
  const TimingNode &A = Nodes[From];
  const TimingNode &B = Nodes[To];
  if (!A.HasPosition || !B.HasPosition)
    return Model.RouteBase;
  double Dist = std::abs(A.X - B.X) + std::abs(A.Y - B.Y);
  return Model.RouteBase + Model.RoutePerUnit * Dist;
}

Result<TimingReport> TimingGraph::analyze() const {
  using ReportT = TimingReport;
  size_t N = Nodes.size();

  // Topological order over combinational dependencies: edges leaving a
  // registered-output node do not extend combinational paths.
  std::vector<unsigned> InDegree(N, 0);
  std::vector<std::vector<size_t>> Users(N);
  for (size_t I = 0; I < N; ++I)
    for (size_t F : Nodes[I].Fanin)
      if (!Nodes[F].RegisteredOutput) {
        Users[F].push_back(I);
        ++InDegree[I];
      }
  std::vector<size_t> Ready, Order;
  for (size_t I = 0; I < N; ++I)
    if (InDegree[I] == 0)
      Ready.push_back(I);
  while (!Ready.empty()) {
    size_t I = Ready.back();
    Ready.pop_back();
    Order.push_back(I);
    for (size_t U : Users[I])
      if (--InDegree[U] == 0)
        Ready.push_back(U);
  }
  if (Order.size() != N)
    return fail<ReportT>("timing graph has a combinational cycle");

  // Arrival at each node's output (or its internal register D pin).
  std::vector<double> Arrival(N, 0.0);
  std::vector<size_t> Critical(N, SIZE_MAX);
  double WorstPath = 0.0;
  size_t WorstEnd = SIZE_MAX;
  for (size_t I : Order) {
    const TimingNode &Node = Nodes[I];
    double In = 0.0;
    size_t From = SIZE_MAX;
    for (size_t K = 0; K < Node.Fanin.size(); ++K) {
      size_t F = Node.Fanin[K];
      double Launch = Nodes[F].RegisteredOutput ? Model.ClockToQ
                                                : Arrival[F];
      double T = Launch + edgeDelay(F, I, Node.FaninCascade[K]);
      if (T > In) {
        In = T;
        From = F;
      }
    }
    Arrival[I] = In + Node.Delay;
    Critical[I] = From;
    double PathEnd =
        Arrival[I] + (Node.RegisteredOutput ? Model.Setup : 0.0);
    if (PathEnd > WorstPath) {
      WorstPath = PathEnd;
      WorstEnd = I;
    }
  }

  TimingReport Report;
  Report.CriticalPathNs = WorstPath;
  Report.FmaxMhz = WorstPath > 0.0 ? 1000.0 / WorstPath : 0.0;
  for (size_t I = WorstEnd; I != SIZE_MAX; I = Critical[I]) {
    Report.Path.push_back(Nodes[I].Name);
    if (Nodes[I].Fanin.empty() || Critical[I] == SIZE_MAX)
      break;
    if (Nodes[Critical[I]].RegisteredOutput) {
      Report.Path.push_back(Nodes[Critical[I]].Name);
      break;
    }
  }
  std::reverse(Report.Path.begin(), Report.Path.end());
  return Report;
}

namespace {

/// Per-operation delay and registration facts derived from a target
/// definition.
struct OpTiming {
  double Delay = 0.0;
  bool Registered = false;
};

OpTiming opTiming(const tdl::TargetDef &Def, ir::Type Ty,
                  const DelayModel &Model) {
  OpTiming T;
  const std::string &Name = Def.Name;
  T.Registered = Name.find("reg") != std::string::npos;
  unsigned Bits = Ty.totalBits();
  unsigned CarryBlocks = (Ty.width() + 7) / 8;

  if (Def.Prim == ir::Resource::Dsp) {
    bool HasMul = Name.rfind("mul", 0) == 0;
    bool HasPostAdd = Name.find("muladd") == 0;
    if (HasPostAdd)
      T.Delay = Model.DspMulAdd;
    else if (HasMul)
      T.Delay = Model.DspMul;
    else
      T.Delay = Ty.lanes() > 1 ? Model.DspAluSimd : Model.DspAlu;
    return T;
  }

  // LUT family. The base operation is the name with any "reg" suffix
  // stripped.
  std::string Base = Name;
  size_t RegPos = Base.find("reg");
  if (RegPos != std::string::npos)
    Base = Base.substr(0, RegPos);
  if (Base.empty()) { // plain "reg"
    T.Delay = 0.0;
    T.Registered = true;
    return T;
  }
  if (Base == "add" || Base == "sub") {
    T.Delay = Model.LutLogic + Model.CarryPerBlock * CarryBlocks;
  } else if (Base == "and" || Base == "or" || Base == "xor" ||
             Base == "not" || Base == "mux") {
    T.Delay = Model.LutLogic;
  } else if (Base == "eq" || Base == "neq") {
    // XNOR level plus a LUT6 reduction tree.
    unsigned Levels = 1;
    for (unsigned Width = Bits; Width > 1; Width = (Width + 5) / 6)
      ++Levels;
    T.Delay = Model.LutLogic * Levels;
  } else if (Base == "lt" || Base == "gt" || Base == "le" || Base == "ge") {
    T.Delay = 2 * Model.LutLogic + Model.CarryPerBlock * CarryBlocks;
  } else if (Base == "mul") {
    // One AND/XOR level plus a carry chain per operand row.
    T.Delay =
        Ty.width() * (Model.LutLogic + Model.CarryPerBlock * CarryBlocks);
  } else {
    T.Delay = Model.LutLogic;
  }
  return T;
}

} // namespace

Result<TimingReport> reticle::timing::analyzeAsm(
    const rasm::AsmProgram &Placed, const tdl::Target &Target,
    const device::Device &Dev, const DelayModel &Model,
    const obs::Context &Ctx) {
  using ReportT = TimingReport;
  if (!Placed.isPlaced())
    return fail<ReportT>("program has unresolved locations; place it first");

  TimingGraph G(Model);
  // Node and type lookups index flat vectors by the placed program's
  // ValueIds (the cascade pass left its def-use cache warm: placement and
  // this analysis only rewrote locations and opNames).
  const ir::DefUse &DU = Placed.defUse(Ctx);
  const std::vector<rasm::AsmInstr> &Body = Placed.body();
  std::vector<size_t> NodeOfId(DU.numValues(), SIZE_MAX);

  // Primary inputs.
  for (const ir::Port &P : Placed.inputs()) {
    TimingNode N;
    N.Name = P.Name;
    NodeOfId[DU.idOf(P.Name)] = G.addNode(std::move(N));
  }

  // Wire instructions are pure wiring: map their result to the underlying
  // sources so routing is measured between real elements. A wire value may
  // merge several sources (cat), so resolution yields a source set.
  std::vector<std::optional<std::vector<ir::ValueId>>> WireSources(
      DU.numValues());
  auto ResolveSources =
      [&](ir::ValueId Arg) -> const std::vector<ir::ValueId> * {
    if (Arg == ir::InvalidValueId || !WireSources[Arg])
      return nullptr;
    return &*WireSources[Arg];
  };

  // First pass: create nodes for operations.
  for (size_t BI = 0; BI < Body.size(); ++BI) {
    const rasm::AsmInstr &I = Body[BI];
    if (I.isWire())
      continue;
    std::vector<ir::Type> ArgTypes;
    for (size_t K = 0; K < I.args().size(); ++K) {
      ir::ValueId Arg = DU.argIdsOf(BI)[K];
      if (Arg == ir::InvalidValueId)
        return fail<ReportT>("in '" + I.str() + "': undefined variable '" +
                             I.args()[K] + "'");
      ArgTypes.push_back(DU.typeOfId(Arg));
    }
    const tdl::TargetDef *Def =
        Target.resolve(I.opName(), I.loc().Prim, ArgTypes, I.type());
    if (!Def)
      return fail<ReportT>("in '" + I.str() + "': unresolved operation '" +
                           I.opName() + "'");
    OpTiming T = opTiming(*Def, I.type(), Model);
    TimingNode N;
    N.Name = I.dst();
    N.Delay = T.Delay;
    N.RegisteredOutput = T.Registered;
    N.HasPosition = true;
    N.X = static_cast<int>(I.loc().X.offset());
    N.Y = static_cast<int>(I.loc().Y.offset());
    NodeOfId[DU.dstIdOf(BI)] = G.addNode(std::move(N));
  }
  // Wire source resolution (wire instructions may reference each other in
  // any order, so iterate to a fixed point).
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (size_t BI = 0; BI < Body.size(); ++BI) {
      const rasm::AsmInstr &I = Body[BI];
      if (!I.isWire() || WireSources[DU.dstIdOf(BI)])
        continue;
      std::vector<ir::ValueId> Sources;
      bool AllKnown = true;
      for (ir::ValueId Arg : DU.argIdsOf(BI)) {
        if (Arg != ir::InvalidValueId && NodeOfId[Arg] != SIZE_MAX) {
          Sources.push_back(Arg);
        } else if (const std::vector<ir::ValueId> *Sub =
                       ResolveSources(Arg)) {
          Sources.insert(Sources.end(), Sub->begin(), Sub->end());
        } else {
          AllKnown = false;
          break;
        }
      }
      if (AllKnown) {
        WireSources[DU.dstIdOf(BI)] = std::move(Sources);
        Changed = true;
      }
    }
  }

  // Second pass: edges.
  for (size_t BI = 0; BI < Body.size(); ++BI) {
    const rasm::AsmInstr &I = Body[BI];
    if (I.isWire())
      continue;
    size_t To = NodeOfId[DU.dstIdOf(BI)];
    bool CascadeConsumer = I.opName().find("_ci") != std::string::npos;
    for (size_t K = 0; K < I.args().size(); ++K) {
      ir::ValueId Arg = DU.argIdsOf(BI)[K];
      bool CascadeEdge = CascadeConsumer && K == 2;
      if (Arg != ir::InvalidValueId && NodeOfId[Arg] != SIZE_MAX) {
        G.addEdge(NodeOfId[Arg], To, CascadeEdge);
      } else if (const std::vector<ir::ValueId> *Sources =
                     ResolveSources(Arg)) {
        for (ir::ValueId S : *Sources)
          G.addEdge(NodeOfId[S], To, CascadeEdge);
      } else {
        return fail<ReportT>("in '" + I.str() + "': undefined variable '" +
                             I.args()[K] + "'");
      }
    }
  }
  Result<TimingReport> Report = G.analyze();
  // Why this fmax: name the instructions the longest path runs through,
  // endpoint first in `instr`, the full hop sequence in args.
  if (Report && Ctx.remarksEnabled()) {
    const TimingReport &R = Report.value();
    std::string PathStr;
    for (size_t K = 0; K < R.Path.size(); ++K) {
      if (K)
        PathStr += " -> ";
      PathStr += R.Path[K];
    }
    char NsBuf[32], MhzBuf[32];
    std::snprintf(NsBuf, sizeof(NsBuf), "%.3f", R.CriticalPathNs);
    std::snprintf(MhzBuf, sizeof(MhzBuf), "%.1f", R.FmaxMhz);
    obs::Remark Rem(Ctx, "timing", "critical-path");
    if (!R.Path.empty())
      Rem.instr(R.Path.back());
    Rem.message("critical path " + std::string(NsBuf) + " ns (fmax " +
                MhzBuf + " MHz) through " +
                std::to_string(R.Path.size()) + " node(s): " + PathStr)
        .arg("critical_path_ns", R.CriticalPathNs)
        .arg("fmax_mhz", R.FmaxMhz)
        .arg("hops", static_cast<uint64_t>(R.Path.size()))
        .arg("path", std::move(PathStr));
  }
  return Report;
}
