//===- codegen/Testbench.h - Self-checking testbench emission ---*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a self-checking behavioral Verilog testbench for a generated
/// module from an input trace and its expected outputs (produced by the
/// interpreter). The compiled design hands off to vendor tools for
/// routing and bitstream generation (Figure 1); this testbench lets a
/// standard Verilog simulator check the generated netlist in that flow —
/// the same oracle the in-tree gate-level simulator applies natively.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_CODEGEN_TESTBENCH_H
#define RETICLE_CODEGEN_TESTBENCH_H

#include "interp/Trace.h"
#include "support/Result.h"
#include "verilog/Ast.h"

#include <string>

namespace reticle {
namespace codegen {

/// Renders a testbench module driving \p Module with \p Input and
/// asserting \p Expected at every cycle. Both traces must have one value
/// per (non-clock) port per cycle and equal lengths.
Result<std::string> emitTestbench(const verilog::Module &Module,
                                  const interp::Trace &Input,
                                  const interp::Trace &Expected);

} // namespace codegen
} // namespace reticle

#endif // RETICLE_CODEGEN_TESTBENCH_H
