//===- codegen/Codegen.h - Structural Verilog generation --------*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code generation (Section 5.4): expands a placed assembly program into
/// structural Verilog with layout annotations (Figure 2c).
///
///  - DSP instructions become one DSP48E2-style primitive with the
///    configuration (USE_SIMD, multiplier/post-adder usage, pipeline
///    registers, cascade ports) the operation requires;
///  - LUT instructions expand to one LUT per output bit, with INIT values
///    computed from the operation's truth table, plus CARRY8 chains for
///    arithmetic and comparisons and FDRE flip-flops for registers;
///  - wire instructions become plain assigns and consume no primitives;
///  - every primitive carries `LOC` (and `BEL` for LUTs) attributes from
///    the placement result.
///
/// Multi-LUT instructions keep all their LUTs in the one slice placement
/// assigned to the instruction (a slice hosts eight LUTs on UltraScale+);
/// the BEL letters cycle A..H.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_CODEGEN_CODEGEN_H
#define RETICLE_CODEGEN_CODEGEN_H

#include "device/Device.h"
#include "obs/Context.h"
#include "rasm/Asm.h"
#include "support/Result.h"
#include "tdl/Target.h"
#include "verilog/Ast.h"

namespace reticle {
namespace codegen {

/// Primitive counts of a generated design, the quantities Figure 4 and
/// Figure 13 plot.
struct Utilization {
  unsigned Luts = 0;
  unsigned Dsps = 0;
  unsigned Carries = 0;
  unsigned Ffs = 0;
};

/// Generates structural Verilog for \p Placed. Every location must be
/// literal (run placement first). \p Target supplies each operation's
/// semantics; \p Dev supplies slice geometry for BEL annotations.
Result<verilog::Module> generate(const rasm::AsmProgram &Placed,
                                 const tdl::Target &Target,
                                 const device::Device &Dev,
                                 Utilization *Util = nullptr,
                                 const obs::Context &Ctx = obs::defaultContext());

} // namespace codegen
} // namespace reticle

#endif // RETICLE_CODEGEN_CODEGEN_H
