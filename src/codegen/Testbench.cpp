//===- codegen/Testbench.cpp - Self-checking testbench emission ------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "codegen/Testbench.h"

#include <cinttypes>

using namespace reticle;
using namespace reticle::codegen;

namespace {

/// Renders a value as a sized hex literal over the flattened bits.
std::string hexLiteral(const interp::Value &V) {
  std::vector<bool> Bits = V.toBits();
  uint64_t Word = 0;
  // Ports wider than 64 bits never occur in practice for scalar types;
  // render in 64-bit chunks joined by concatenation when they do.
  if (Bits.size() <= 64) {
    for (size_t I = 0; I < Bits.size(); ++I)
      if (Bits[I])
        Word |= uint64_t(1) << I;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%" PRIx64, Word);
    return std::to_string(Bits.size()) + "'h" + Buf;
  }
  std::string Out = "{";
  for (size_t Chunk = (Bits.size() + 63) / 64; Chunk-- > 0;) {
    size_t Lo = Chunk * 64;
    size_t Hi = std::min(Bits.size(), Lo + 64);
    uint64_t W = 0;
    for (size_t I = Lo; I < Hi; ++I)
      if (Bits[I])
        W |= uint64_t(1) << (I - Lo);
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%" PRIx64, W);
    Out += std::to_string(Hi - Lo) + "'h" + Buf;
    Out += Chunk ? ", " : "}";
  }
  return Out;
}

} // namespace

Result<std::string> reticle::codegen::emitTestbench(
    const verilog::Module &Module, const interp::Trace &Input,
    const interp::Trace &Expected) {
  using OutT = std::string;
  if (Input.size() != Expected.size())
    return fail<OutT>("input and expected traces differ in length");

  std::vector<const verilog::Port *> Inputs, Outputs;
  for (const verilog::Port &P : Module.ports()) {
    if (P.Name == "clock")
      continue;
    (P.Direction == verilog::Dir::Input ? Inputs : Outputs).push_back(&P);
  }

  std::string Out = "`timescale 1ns/1ps\n";
  Out += "module " + Module.name() + "_tb;\n";
  Out += "  reg clock = 0;\n";
  Out += "  always #5 clock = ~clock;\n";
  auto Range = [](unsigned W) {
    return W == 0 ? std::string()
                  : "[" + std::to_string(W - 1) + ":0] ";
  };
  for (const verilog::Port *P : Inputs)
    Out += "  reg " + Range(P->Width) + P->Name + ";\n";
  for (const verilog::Port *P : Outputs)
    Out += "  wire " + Range(P->Width) + P->Name + ";\n";
  Out += "  integer errors = 0;\n\n";
  Out += "  " + Module.name() + " dut (.clock(clock)";
  for (const verilog::Port *P : Inputs)
    Out += ", ." + P->Name + "(" + P->Name + ")";
  for (const verilog::Port *P : Outputs)
    Out += ", ." + P->Name + "(" + P->Name + ")";
  Out += ");\n\n";
  Out += "  initial begin\n";
  for (size_t Cycle = 0; Cycle < Input.size(); ++Cycle) {
    for (const verilog::Port *P : Inputs) {
      const interp::Value *V = Input.get(Cycle, P->Name);
      if (!V)
        return fail<OutT>("cycle " + std::to_string(Cycle) + ": input '" +
                          P->Name + "' missing from trace");
      Out += "    " + P->Name + " = " + hexLiteral(*V) + ";\n";
    }
    Out += "    #1;\n"; // settle combinational logic
    for (const verilog::Port *P : Outputs) {
      const interp::Value *V = Expected.get(Cycle, P->Name);
      if (!V)
        return fail<OutT>("cycle " + std::to_string(Cycle) +
                          ": expected output '" + P->Name +
                          "' missing from trace");
      std::string Lit = hexLiteral(*V);
      Out += "    if (" + P->Name + " !== " + Lit +
             ") begin $display(\"cycle " + std::to_string(Cycle) + ": " +
             P->Name + " = %h, expected " + Lit + "\", " + P->Name +
             "); errors = errors + 1; end\n";
    }
    Out += "    @(posedge clock); #1;\n";
  }
  Out += "    if (errors == 0) $display(\"PASS\");\n";
  Out += "    else $display(\"FAIL: %0d mismatch(es)\", errors);\n";
  Out += "    $finish;\n";
  Out += "  end\n";
  Out += "endmodule\n";
  return Out;
}
