//===- codegen/NetlistSim.h - Gate-level netlist simulation -----*- C++ -*-===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cycle-accurate simulator for the structural Verilog this project
/// generates. It evaluates the assigns and primitive instances
/// (LUT1..LUT6 with INIT truth tables, CARRY8 chains, FDRE flip-flops,
/// and the DSP48E2 configurations code generation emits) against input
/// traces, giving the test suite a *gate-level* translation-validation
/// oracle: for any program, the simulated netlist must match the
/// reference interpreter cycle for cycle.
///
/// The expression evaluator covers the structural subset the code
/// generator emits (references, sized literals, bit/range selects,
/// concatenation, replication); it is not a general Verilog simulator.
///
//===----------------------------------------------------------------------===//

#ifndef RETICLE_CODEGEN_NETLISTSIM_H
#define RETICLE_CODEGEN_NETLISTSIM_H

#include "interp/Trace.h"
#include "interp/Wave.h"
#include "obs/Context.h"
#include "support/Result.h"
#include "verilog/Ast.h"

#include <map>
#include <string>

namespace reticle {
namespace codegen {

/// Simulates \p Module over \p Input. Each input step must provide a
/// value for every input port (except the implicit clock); each output
/// step holds all output ports as iN values of the port width (width-1
/// ports become bool).
///
/// Port widths must match the values' total bit counts; values are read
/// and produced through their flattened bit representation, so vector
/// ports can be driven with vector-typed values directly.
Result<interp::Trace> simulate(const verilog::Module &Module,
                               const interp::Trace &Input,
                               const obs::Context &Ctx = obs::defaultContext());

/// As above, but additionally streams every signal (ports and internal
/// wires/regs, except the implicit clock) into \p Wave cycle by cycle
/// (null for no waveform) and counts `sim.cycles` / `netlist.*` into
/// \p Ctx. A failing run still finishes the sink (aborted) so partial
/// waveforms flush.
Result<interp::Trace> simulate(const verilog::Module &Module,
                               const interp::Trace &Input,
                               sim::WaveSink *Wave,
                               const obs::Context &Ctx = obs::defaultContext());

} // namespace codegen
} // namespace reticle

#endif // RETICLE_CODEGEN_NETLISTSIM_H
