//===- codegen/NetlistSim.cpp - Gate-level netlist simulation --------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "codegen/NetlistSim.h"

#include "interp/Cycle.h"
#include "ir/DefUse.h"
#include "obs/Telemetry.h"

#include <stdexcept>

using namespace reticle;
using namespace reticle::codegen;
using verilog::Expr;
using verilog::Item;
using verilog::Module;

namespace {

using Bits = std::vector<bool>;

/// All signal values, as flattened bit vectors indexed by interned id.
class SignalTable {
public:
  Status declare(const std::string &Name, unsigned Width) {
    unsigned BitCount = Width == 0 ? 1 : Width;
    ir::ValueId Id = Names.intern(Name);
    if (Id != Table.size())
      return Status::failure("duplicate signal '" + Name + "'");
    Table.emplace_back(BitCount, false);
    return Status::success();
  }
  bool exists(const std::string &Name) const {
    return Names.lookup(Name) != ir::InvalidValueId;
  }
  Bits &get(const std::string &Name) { return Table[idOf(Name)]; }
  const Bits &get(const std::string &Name) const { return Table[idOf(Name)]; }

  /// Id-based access: names resolve to ids once per run, hot paths index
  /// the flat table directly.
  ir::ValueId lookup(const std::string &Name) const {
    return Names.lookup(Name);
  }
  size_t size() const { return Table.size(); }
  const std::string &name(ir::ValueId Id) const { return Names.name(Id); }
  Bits &at(ir::ValueId Id) { return Table[Id]; }
  const Bits &at(ir::ValueId Id) const { return Table[Id]; }

private:
  ir::ValueId idOf(const std::string &Name) const {
    ir::ValueId Id = Names.lookup(Name);
    if (Id == ir::InvalidValueId)
      throw std::out_of_range("no signal '" + Name + "'");
    return Id;
  }
  ir::NameInterner Names;
  std::vector<Bits> Table;
};

uint64_t toUint(const Bits &B) {
  uint64_t Out = 0;
  for (size_t I = 0; I < B.size() && I < 64; ++I)
    if (B[I])
      Out |= uint64_t(1) << I;
  return Out;
}

Bits fromUint(uint64_t Value, unsigned Width) {
  Bits Out(Width, false);
  for (unsigned I = 0; I < Width && I < 64; ++I)
    Out[I] = (Value >> I) & 1;
  return Out;
}

/// Interprets \p B as a signed two's-complement number. Signals wider
/// than 64 bits are a hard error rather than a silent truncation.
Result<int64_t> toSigned(const Bits &B) {
  unsigned W = static_cast<unsigned>(B.size());
  if (W > 64)
    return fail<int64_t>("DSP multiplier input wider than 64 bits (" +
                         std::to_string(W) + " bits)");
  uint64_t U = toUint(B);
  if (W >= 64)
    return static_cast<int64_t>(U);
  if (B.back())
    U |= ~((uint64_t(1) << W) - 1);
  return static_cast<int64_t>(U);
}

Result<Bits> evalExpr(const Expr &E, const SignalTable &Signals) {
  switch (E.kind()) {
  case Expr::Kind::Ref: {
    if (!Signals.exists(E.name()))
      return fail<Bits>("undriven reference '" + E.name() + "'");
    return Signals.get(E.name());
  }
  case Expr::Kind::IntLit:
    return fromUint(E.value(), E.width() == 0 ? 1 : E.width());
  case Expr::Kind::Index: {
    Result<Bits> Base = evalExpr(E.operands()[0], Signals);
    if (!Base)
      return Base;
    if (E.width() >= Base.value().size())
      return fail<Bits>("bit select out of range in '" + E.str() + "'");
    return Bits{Base.value()[E.width()]};
  }
  case Expr::Kind::Range: {
    Result<Bits> Base = evalExpr(E.operands()[0], Signals);
    if (!Base)
      return Base;
    if (E.width() >= Base.value().size() || E.lo() > E.width())
      return fail<Bits>("range select out of range in '" + E.str() + "'");
    return Bits(Base.value().begin() + E.lo(),
                Base.value().begin() + E.width() + 1);
  }
  case Expr::Kind::Concat: {
    // Operands are most-significant first.
    Bits Out;
    for (size_t I = E.operands().size(); I-- > 0;) {
      Result<Bits> Part = evalExpr(E.operands()[I], Signals);
      if (!Part)
        return Part;
      Out.insert(Out.end(), Part.value().begin(), Part.value().end());
    }
    return Out;
  }
  case Expr::Kind::Repeat: {
    Result<Bits> Part = evalExpr(E.operands()[0], Signals);
    if (!Part)
      return Part;
    Bits Out;
    for (unsigned I = 0; I < E.width(); ++I)
      Out.insert(Out.end(), Part.value().begin(), Part.value().end());
    return Out;
  }
  default:
    return fail<Bits>("expression form not supported by the netlist "
                      "simulator: " + E.str());
  }
}

/// Writes \p Value into the signal bits denoted by an lvalue expression.
/// Returns true when any bit changed.
Result<bool> storeLValue(const Expr &Lhs, const Bits &Value,
                         SignalTable &Signals) {
  const Expr *Base = &Lhs;
  unsigned Hi = 0, Lo = 0;
  bool Whole = true;
  if (Lhs.kind() == Expr::Kind::Index) {
    Base = &Lhs.operands()[0];
    Hi = Lo = Lhs.width();
    Whole = false;
  } else if (Lhs.kind() == Expr::Kind::Range) {
    Base = &Lhs.operands()[0];
    Hi = Lhs.width();
    Lo = Lhs.lo();
    Whole = false;
  }
  if (Base->kind() != Expr::Kind::Ref)
    return fail<bool>("unsupported assignment target: " + Lhs.str());
  if (!Signals.exists(Base->name()))
    return fail<bool>("assignment to undeclared signal '" + Base->name() +
                      "'");
  Bits &Target = Signals.get(Base->name());
  if (Whole) {
    Hi = static_cast<unsigned>(Target.size()) - 1;
    Lo = 0;
  }
  if (Hi >= Target.size() || Hi - Lo + 1 != Value.size())
    return fail<bool>("width mismatch assigning " + Lhs.str());
  bool Changed = false;
  for (unsigned I = 0; I < Value.size(); ++I) {
    if (Target[Lo + I] != Value[I]) {
      Target[Lo + I] = Value[I];
      Changed = true;
    }
  }
  return Changed;
}

uint64_t paramOf(const Item &I, const std::string &Name, uint64_t Default) {
  for (const auto &[PName, PExpr] : I.Params)
    if (PName == Name)
      return PExpr.value();
  return Default;
}

std::string paramStr(const Item &I, const std::string &Name,
                     const std::string &Default) {
  for (const auto &[PName, PExpr] : I.Params)
    if (PName == Name)
      return PExpr.name();
  return Default;
}

const Expr *connOf(const Item &I, const std::string &Port) {
  for (const auto &[PName, PExpr] : I.Connections)
    if (PName == Port)
      return &PExpr;
  return nullptr;
}

/// Sequential state carried across cycles.
struct SeqState {
  std::map<size_t, Bits> FdreQ; // item index -> 1 bit
  std::map<size_t, Bits> DspP;  // item index -> 48 bits
};

/// The DSP48E2 combinational P function for the configurations this
/// project emits.
Result<Bits> dspCombP(const Item &I, const SignalTable &Signals) {
  std::string Simd = paramStr(I, "USE_SIMD", "ONE48");
  bool Mult = paramStr(I, "USE_MULT", "NONE") == "MULTIPLY";
  uint64_t Opmode = paramOf(I, "OPMODE", 0x33);
  uint64_t Alumode = paramOf(I, "ALUMODE", 0);
  bool UsePcin = ((Opmode >> 4) & 0x3) == 0x1;

  // Z operand: C or the cascade input.
  Bits Z(48, false);
  if (UsePcin) {
    const Expr *Pcin = connOf(I, "PCIN");
    if (!Pcin)
      return fail<Bits>("DSP uses PCIN but has no connection");
    Result<Bits> V = evalExpr(*Pcin, Signals);
    if (!V)
      return V;
    Z = V.take();
  } else if (const Expr *C = connOf(I, "C")) {
    Result<Bits> V = evalExpr(*C, Signals);
    if (!V)
      return V;
    Z = V.take();
  }
  Z.resize(48, false);

  // X:Y operand: the multiplier result or A:B.
  Bits Xy(48, false);
  Result<Bits> A = evalExpr(*connOf(I, "A"), Signals);
  Result<Bits> B = evalExpr(*connOf(I, "B"), Signals);
  if (!A || !B)
    return fail<Bits>("DSP input evaluation failed");
  if (Mult) {
    Result<int64_t> As = toSigned(A.value());
    if (!As)
      return fail<Bits>(As.error());
    Result<int64_t> Bs = toSigned(B.value());
    if (!Bs)
      return fail<Bits>(Bs.error());
    int64_t Product = As.value() * Bs.value();
    Xy = fromUint(static_cast<uint64_t>(Product), 48);
  } else {
    // {A, B}: A in the top 30 bits, B in the low 18.
    Bits Ab = B.take();
    Ab.resize(18, false);
    Bits Atop = A.take();
    Atop.resize(30, false);
    Ab.insert(Ab.end(), Atop.begin(), Atop.end());
    Xy = std::move(Ab);
  }

  bool Subtract = Alumode == 0x3;
  unsigned Lanes = Simd == "FOUR12" ? 4 : (Simd == "TWO24" ? 2 : 1);
  unsigned FieldBits = 48 / Lanes;
  Bits P(48, false);
  for (unsigned L = 0; L < Lanes; ++L) {
    uint64_t Mask = ((uint64_t(1) << FieldBits) - 1);
    uint64_t Zv = 0, Xv = 0;
    for (unsigned K = 0; K < FieldBits; ++K) {
      if (Z[L * FieldBits + K])
        Zv |= uint64_t(1) << K;
      if (Xy[L * FieldBits + K])
        Xv |= uint64_t(1) << K;
    }
    uint64_t Res = (Subtract ? (Zv - Xv) : (Zv + Xv)) & Mask;
    for (unsigned K = 0; K < FieldBits; ++K)
      P[L * FieldBits + K] = (Res >> K) & 1;
  }
  return P;
}

/// Evaluates one combinational sweep over all items; registered elements
/// drive their stored state. Returns whether anything changed.
Result<bool> sweep(const Module &M, SignalTable &Signals,
                   const SeqState &State) {
  bool Changed = false;
  auto Store = [&](const Expr &Lhs, const Bits &Value) -> Status {
    Result<bool> R = storeLValue(Lhs, Value, Signals);
    if (!R)
      return Status::failure(R.error());
    Changed = Changed || R.value();
    return Status::success();
  };

  const std::vector<Item> &Items = M.items();
  for (size_t Index = 0; Index < Items.size(); ++Index) {
    const Item &I = Items[Index];
    switch (I.ItemKind) {
    case Item::Kind::Assign: {
      Result<Bits> V = evalExpr(I.Rhs, Signals);
      if (!V)
        return fail<bool>(V.error());
      if (Status S = Store(I.Lhs, V.value()); !S)
        return fail<bool>(S.error());
      break;
    }
    case Item::Kind::Instance: {
      if (I.ModuleName.rfind("LUT", 0) == 0) {
        unsigned K = static_cast<unsigned>(I.ModuleName[3] - '0');
        uint64_t Init = paramOf(I, "INIT", 0);
        unsigned Minterm = 0;
        for (unsigned P = 0; P < K; ++P) {
          const Expr *In = connOf(I, "I" + std::to_string(P));
          if (!In)
            return fail<bool>("LUT missing input I" + std::to_string(P));
          Result<Bits> V = evalExpr(*In, Signals);
          if (!V)
            return fail<bool>(V.error());
          if (V.value()[0])
            Minterm |= 1u << P;
        }
        Bits Out{((Init >> Minterm) & 1) != 0};
        if (Status S = Store(*connOf(I, "O"), Out); !S)
          return fail<bool>(S.error());
        break;
      }
      if (I.ModuleName == "CARRY8") {
        Result<Bits> S = evalExpr(*connOf(I, "S"), Signals);
        Result<Bits> Di = evalExpr(*connOf(I, "DI"), Signals);
        Result<Bits> Ci = evalExpr(*connOf(I, "CI"), Signals);
        if (!S || !Di || !Ci)
          return fail<bool>("CARRY8 input evaluation failed");
        Bits O(8, false), Co(8, false);
        bool Carry = Ci.value()[0];
        for (unsigned B = 0; B < 8; ++B) {
          bool Prop = S.value()[B];
          O[B] = Prop ^ Carry;
          Carry = Prop ? Carry : Di.value()[B];
          Co[B] = Carry;
        }
        if (Status St = Store(*connOf(I, "O"), O); !St)
          return fail<bool>(St.error());
        if (Status St = Store(*connOf(I, "CO"), Co); !St)
          return fail<bool>(St.error());
        break;
      }
      if (I.ModuleName == "FDRE") {
        // Output the stored state; the edge update happens separately.
        if (Status St = Store(*connOf(I, "Q"), State.FdreQ.at(Index)); !St)
          return fail<bool>(St.error());
        break;
      }
      if (I.ModuleName == "DSP48E2") {
        bool Preg = paramOf(I, "PREG", 0) != 0;
        Bits P;
        if (Preg) {
          P = State.DspP.at(Index);
        } else {
          Result<Bits> Comb = dspCombP(I, Signals);
          if (!Comb)
            return fail<bool>(Comb.error());
          P = Comb.take();
        }
        if (const Expr *Pout = connOf(I, "P"))
          if (Status St = Store(*Pout, P); !St)
            return fail<bool>(St.error());
        if (const Expr *Pcout = connOf(I, "PCOUT"))
          if (Status St = Store(*Pcout, P); !St)
            return fail<bool>(St.error());
        break;
      }
      return fail<bool>("unknown primitive '" + I.ModuleName + "'");
    }
    default:
      break; // wires, comments
    }
  }
  return Changed;
}

} // namespace

Result<interp::Trace> reticle::codegen::simulate(const Module &M,
                                                 const interp::Trace &Input,
                                                 const obs::Context &Ctx) {
  return simulate(M, Input, nullptr, Ctx);
}

Result<interp::Trace> reticle::codegen::simulate(const Module &M,
                                                 const interp::Trace &Input,
                                                 sim::WaveSink *Wave,
                                                 const obs::Context &Ctx) {
  obs::Span Sp(Ctx, "sim.simulate");
  Sp.arg("module", M.name());
  Sp.arg("cycles", static_cast<uint64_t>(Input.size()));
  using TraceT = interp::Trace;
  SignalTable Signals;
  auto WidthOf = [](const verilog::Port &P) {
    return P.Width == 0 ? 1u : P.Width;
  };
  // Ports and internal signals resolve to table ids once per run; the
  // shared binder/prototype do the per-cycle merge walk and cloning.
  struct BoundPort {
    const verilog::Port *P;
    ir::ValueId Id;
    unsigned Width;
  };
  std::vector<BoundPort> Inputs, Outputs;
  for (const verilog::Port &P : M.ports()) {
    if (Status S = Signals.declare(P.Name, P.Width); !S)
      return fail<TraceT>(S.error());
    if (P.Name == "clock")
      continue;
    BoundPort B{&P, Signals.lookup(P.Name), WidthOf(P)};
    (P.Direction == verilog::Dir::Input ? Inputs : Outputs).push_back(B);
  }
  for (const Item &I : M.items())
    if (I.ItemKind == Item::Kind::Wire || I.ItemKind == Item::Kind::Reg)
      if (Status S = Signals.declare(I.Name, I.Width); !S)
        return fail<TraceT>(S.error());

  sim::InputBinder Binder;
  for (unsigned K = 0; K < Inputs.size(); ++K)
    Binder.add(Inputs[K].P->Name, K);
  Binder.seal();

  sim::OutputProto Proto;
  std::vector<std::pair<ir::ValueId, ir::Type>> OutSlots;
  OutSlots.reserve(Outputs.size());
  for (const BoundPort &B : Outputs) {
    unsigned W = B.Width;
    // Ports wider than 64 bits (flattened vectors) are reported as bit
    // vectors (i1<W>); callers compare through toBits().
    ir::Type Ty = W == 1    ? ir::Type::makeBool()
                  : W <= 64 ? ir::Type::makeInt(W)
                            : ir::Type::makeInt(1, W);
    Proto.add(B.P->Name, static_cast<unsigned>(OutSlots.size()));
    OutSlots.emplace_back(B.Id, Ty);
  }
  Proto.seal();

  // Initialize sequential state, resolving each element's clock-edge
  // connections up front (one linear scan per run, not per cycle).
  SeqState State;
  struct FdreConns {
    const Expr *Ce, *R, *D;
  };
  std::map<size_t, FdreConns> FdreBind;
  std::map<size_t, const Expr *> DspCep;
  const std::vector<Item> &Items = M.items();
  for (size_t Index = 0; Index < Items.size(); ++Index) {
    const Item &I = Items[Index];
    if (I.ItemKind != Item::Kind::Instance)
      continue;
    if (I.ModuleName == "FDRE") {
      State.FdreQ[Index] = Bits{paramOf(I, "INIT", 0) != 0};
      FdreConns C{connOf(I, "CE"), connOf(I, "R"), connOf(I, "D")};
      if (!C.Ce || !C.R || !C.D)
        return fail<TraceT>("FDRE instance missing CE/R/D connection");
      FdreBind[Index] = C;
    } else if (I.ModuleName == "DSP48E2" && paramOf(I, "PREG", 0)) {
      State.DspP[Index] = fromUint(paramOf(I, "PINIT", 0), 48);
      const Expr *Cep = connOf(I, "CEP");
      if (!Cep)
        return fail<TraceT>("DSP48E2 with PREG missing CEP connection");
      DspCep[Index] = Cep;
    }
  }

  obs::Counter &Evals = Ctx.counter("netlist.evals");
  obs::Counter &Sweeps = Ctx.counter("netlist.sweeps");

  sim::EngineFrame Frame(Wave, Ctx, "netlist.cycles");
  std::vector<ir::ValueId> WaveIds;
  if (Frame.waveActive()) {
    std::vector<uint8_t> KindOf(Signals.size(),
                                uint8_t(sim::WaveSignal::Kind::Internal));
    for (const BoundPort &B : Inputs)
      KindOf[B.Id] = uint8_t(sim::WaveSignal::Kind::Input);
    for (const BoundPort &B : Outputs)
      KindOf[B.Id] = uint8_t(sim::WaveSignal::Kind::Output);
    std::vector<sim::WaveSignal> WaveSigs;
    for (ir::ValueId Id = 0; Id < Signals.size(); ++Id) {
      if (Signals.name(Id) == "clock")
        continue;
      WaveIds.push_back(Id);
      WaveSigs.emplace_back(Signals.name(Id),
                            static_cast<unsigned>(Signals.at(Id).size()),
                            sim::WaveSignal::Kind(KindOf[Id]));
    }
    if (Status S = Frame.recorder().begin(std::move(WaveSigs)); !S)
      return fail<TraceT>(S.error());
  }

  // Any mid-run failure still flushes the partial waveform.
  auto Abort = [&](std::string Msg) {
    return fail<TraceT>(Frame.abort(std::move(Msg)));
  };

  interp::Trace Output;
  for (size_t Cycle = 0; Cycle < Input.size(); ++Cycle) {
    Frame.beginCycle();
    // Drive inputs: one merge walk over the step's ordered map.
    Status Bound = Binder.bind(
        Input.step(Cycle), Cycle,
        [&](unsigned Slot, const interp::Value &V) {
          const BoundPort &B = Inputs[Slot];
          Bits Flat = V.toBits();
          if (Flat.size() != B.Width)
            return Status::failure("input '" + B.P->Name +
                                   "' width mismatch");
          Signals.at(B.Id) = std::move(Flat);
          return Status::success();
        });
    if (!Bound)
      return Abort(Bound.error());
    // Settle combinational logic (the netlist is acyclic, so this
    // converges within the logic depth).
    size_t MaxSweeps = Items.size() + 2;
    for (size_t S = 0; S < MaxSweeps; ++S) {
      ++Sweeps;
      Evals += Items.size();
      Result<bool> Changed = sweep(M, Signals, State);
      if (!Changed)
        return Abort(Changed.error());
      if (!Changed.value())
        break;
      if (S + 1 == MaxSweeps)
        return Abort("netlist did not settle (combinational loop?)");
    }
    // Sample outputs into a clone of the prototype step, filling values
    // by map position.
    Proto.emit(Output, [&](unsigned Slot) {
      const auto &[Id, Ty] = OutSlots[Slot];
      const Bits &B = Signals.at(Id);
      return interp::Value::fromBits(
          Ty, Bits(B.begin(), B.begin() + Ty.totalBits()));
    });
    // The waveform observes the settled post-sweep state: FDRE Q shows
    // the value held during the cycle, matching the interpreter's
    // pre-update register semantics.
    if (Frame.waveActive()) {
      Frame.recorder().cycle(Cycle);
      for (size_t W = 0; W < WaveIds.size(); ++W)
        Frame.recorder().record(static_cast<unsigned>(W),
                                Signals.at(WaveIds[W]));
    }
    // Clock edge: FDRE and DSP P registers capture.
    std::map<size_t, Bits> NextFdre = State.FdreQ;
    std::map<size_t, Bits> NextDsp = State.DspP;
    for (auto &[Index, Q] : NextFdre) {
      const FdreConns &C = FdreBind.at(Index);
      Result<Bits> Ce = evalExpr(*C.Ce, Signals);
      Result<Bits> R = evalExpr(*C.R, Signals);
      Result<Bits> D = evalExpr(*C.D, Signals);
      if (!Ce || !R || !D)
        return Abort("FDRE input evaluation failed");
      if (R.value()[0])
        Q = Bits{false};
      else if (Ce.value()[0])
        Q = D.take();
    }
    for (auto &[Index, P] : NextDsp) {
      Result<Bits> Ce = evalExpr(*DspCep.at(Index), Signals);
      if (!Ce)
        return Abort(Ce.error());
      if (!Ce.value()[0])
        continue;
      Result<Bits> Comb = dspCombP(Items[Index], Signals);
      if (!Comb)
        return Abort(Comb.error());
      P = Comb.take();
    }
    State.FdreQ = std::move(NextFdre);
    State.DspP = std::move(NextDsp);
  }
  if (Status S = Frame.finish(); !S)
    return fail<TraceT>(S.error());
  return Output;
}
