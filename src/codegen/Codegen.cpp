//===- codegen/Codegen.cpp - Structural Verilog generation ---------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "obs/Telemetry.h"

#include <map>
#include <set>
#include <stdexcept>

using namespace reticle;
using namespace reticle::codegen;
using rasm::AsmInstr;
using rasm::AsmProgram;
using verilog::Dir;
using verilog::Expr;
using verilog::Item;
using verilog::Module;

namespace {

/// LUT INIT truth tables (inputs indexed I0, I1, I2 from the low bit).
constexpr uint64_t InitAnd2 = 0x8;   // I0 & I1
constexpr uint64_t InitOr2 = 0xE;    // I0 | I1
constexpr uint64_t InitXor2 = 0x6;   // I0 ^ I1
constexpr uint64_t InitXnor2 = 0x9;  // ~(I0 ^ I1)
constexpr uint64_t InitNot1 = 0x1;   // ~I0
constexpr uint64_t InitMux3 = 0xCA;  // I2 ? I1 : I0
constexpr uint64_t InitAndXor3 = 0x78; // (I0 & I1) ^ I2

/// Emits structural Verilog for one placed program.
class Emitter {
public:
  Emitter(const AsmProgram &Prog, const tdl::Target &Target,
          const device::Device &Dev)
      : Prog(Prog), Target(Target), Dev(Dev), Mod(Prog.name()) {}

  Result<Module> run();

private:
  // -- Name/type table: an Emitter-local interner maps every signal name
  // (ports, instruction results, aux wires, inlined temporaries) to a
  // dense id indexing the flat type vector. --
  bool hasType(const std::string &Name) const {
    return Names.lookup(Name) != ir::InvalidValueId;
  }
  /// First recording wins, matching the historical map emplace.
  void recordType(const std::string &Name, const ir::Type &Ty) {
    ir::ValueId Id = Names.intern(Name);
    if (Id == Types.size())
      Types.push_back(Ty);
  }
  const ir::Type &typeAt(const std::string &Name) const {
    ir::ValueId Id = Names.lookup(Name);
    if (Id == ir::InvalidValueId)
      throw std::out_of_range("no type recorded for '" + Name + "'");
    return Types[Id];
  }

  // -- Bit-level expression helpers (flattened bit order, lane 0 low). --
  unsigned widthOf(const std::string &Name) const {
    return typeAt(Name).totalBits();
  }
  Expr bit(const std::string &Name, unsigned Index) const {
    if (widthOf(Name) == 1)
      return Expr::ref(Name);
    return Expr::index(Expr::ref(Name), Index);
  }
  Expr bits(const std::string &Name, unsigned Hi, unsigned Lo) const {
    if (Lo == 0 && Hi + 1 == widthOf(Name))
      return Expr::ref(Name);
    if (Hi == Lo)
      return bit(Name, Lo);
    return Expr::range(Expr::ref(Name), Hi, Lo);
  }

  /// Declares a fresh helper wire and returns its name.
  std::string auxWire(const std::string &Base, unsigned Width) {
    std::string Name = Base + "__w" + std::to_string(AuxCounter++);
    Mod.addWire(Name, Width > 1 ? Width : 0);
    recordType(Name, ir::Type::makeInt(Width == 0 ? 1 : Width));
    return Name;
  }

  std::string instName() { return "i" + std::to_string(InstCounter++); }

  /// Next LUT BEL letter within the instruction's slice (A..H cycling).
  std::string nextBel() {
    static const char Letters[] = "ABCDEFGH";
    char L = Letters[BelCounter++ % Dev.lutsPerSlice()];
    return std::string(1, L) + "6LUT";
  }

  void addLutAttrs(Item &I, unsigned X, unsigned Y) {
    I.Attributes.push_back({"LOC", "SLICE_X" + std::to_string(X) + "Y" +
                                       std::to_string(Y)});
    I.Attributes.push_back({"BEL", nextBel()});
  }
  void addSliceLoc(Item &I, unsigned X, unsigned Y) {
    I.Attributes.push_back({"LOC", "SLICE_X" + std::to_string(X) + "Y" +
                                       std::to_string(Y)});
  }

  /// One LUT instance computing \p Init over \p Inputs, driving \p Out.
  void emitLut(const std::vector<Expr> &Inputs, Expr Out, uint64_t Init,
               unsigned X, unsigned Y) {
    unsigned K = static_cast<unsigned>(Inputs.size());
    Item &I = Mod.addInstance("LUT" + std::to_string(K), instName());
    addLutAttrs(I, X, Y);
    I.Params.push_back({"INIT", Expr::intLit(1u << K, Init)});
    for (unsigned P = 0; P < K; ++P)
      I.Connections.push_back({"I" + std::to_string(P), Inputs[P]});
    I.Connections.push_back({"O", std::move(Out)});
  }

  /// A carry chain adding/subtracting over precomputed propagate bits.
  /// \p Prop and \p Gen have \p Width bits; \p Sum receives the result.
  void emitCarryChain(const std::string &Prop, const std::string &Gen,
                      const std::string &Sum, unsigned Width, bool CarryInit,
                      unsigned X, unsigned Y) {
    unsigned Blocks = (Width + 7) / 8;
    Expr Carry = Expr::intLit(1, CarryInit ? 1 : 0);
    for (unsigned B = 0; B < Blocks; ++B) {
      unsigned Lo = B * 8;
      unsigned Hi = std::min(Width, Lo + 8) - 1;
      unsigned Span = Hi - Lo + 1;
      Item I = Module::makeInstance("CARRY8", instName());
      addSliceLoc(I, X, Y);
      auto Pad8 = [&](Expr E) {
        if (Span == 8)
          return E;
        return Expr::concat({Expr::intLit(8 - Span, 0), std::move(E)});
      };
      I.Connections.push_back({"S", Pad8(bits(Prop, Hi, Lo))});
      I.Connections.push_back({"DI", Pad8(bits(Gen, Hi, Lo))});
      I.Connections.push_back({"CI", Carry});
      std::string CoWire = auxWire(Sum, 8);
      std::string OWire = auxWire(Sum, 8);
      I.Connections.push_back({"CO", Expr::ref(CoWire)});
      I.Connections.push_back({"O", Expr::ref(OWire)});
      Mod.addItem(std::move(I));
      Mod.addAssign(bits(Sum, Hi, Lo), bits(OWire, Span - 1, 0));
      Carry = Expr::index(Expr::ref(CoWire), 7);
    }
  }

  // -- Instruction emitters. --
  Status emitWireInstr(const AsmInstr &I);
  Status emitDspInstr(const AsmInstr &I, const tdl::TargetDef &Def);
  Status emitLutInstr(const AsmInstr &I, const tdl::TargetDef &Def);
  Status emitLutBodyInstr(const ir::Instr &B, unsigned X, unsigned Y);

  const AsmProgram &Prog;
  const tdl::Target &Target;
  const device::Device &Dev;
  Module Mod;
  ir::NameInterner Names;
  std::vector<ir::Type> Types;
  std::set<std::string> PortNames;
  unsigned AuxCounter = 0;
  unsigned InstCounter = 0;
  unsigned BelCounter = 0;
};

Status Emitter::emitWireInstr(const AsmInstr &I) {
  ir::Type Ty = typeAt(I.dst());
  unsigned W = Ty.width();
  switch (I.wireOp()) {
  case ir::WireOp::Sll:
  case ir::WireOp::Srl:
  case ir::WireOp::Sra: {
    unsigned K = static_cast<unsigned>(I.attrs()[0]);
    const std::string &Src = I.args()[0];
    for (unsigned L = 0; L < Ty.lanes(); ++L) {
      unsigned Lo = L * W, Hi = Lo + W - 1;
      Expr Rhs = Expr::ref(Src);
      if (K == 0) {
        Rhs = bits(Src, Hi, Lo);
      } else if (I.wireOp() == ir::WireOp::Sll) {
        Rhs = Expr::concat(
            {bits(Src, Hi - K, Lo), Expr::intLit(K, 0)});
      } else if (I.wireOp() == ir::WireOp::Srl) {
        Rhs = Expr::concat({Expr::intLit(K, 0), bits(Src, Hi, Lo + K)});
      } else {
        Rhs = Expr::concat(
            {Expr::repeat(K, bit(Src, Hi)), bits(Src, Hi, Lo + K)});
      }
      Mod.addAssign(bits(I.dst(), Hi, Lo), std::move(Rhs));
    }
    return Status::success();
  }
  case ir::WireOp::Slice: {
    unsigned Off = static_cast<unsigned>(I.attrs()[0]);
    Mod.addAssign(Expr::ref(I.dst()),
                  bits(I.args()[0], Off + Ty.totalBits() - 1, Off));
    return Status::success();
  }
  case ir::WireOp::Cat: {
    // Second argument occupies the high bits.
    Mod.addAssign(Expr::ref(I.dst()),
                  Expr::concat({Expr::ref(I.args()[1]),
                                Expr::ref(I.args()[0])}));
    return Status::success();
  }
  case ir::WireOp::Id:
    Mod.addAssign(Expr::ref(I.dst()), Expr::ref(I.args()[0]));
    return Status::success();
  case ir::WireOp::Const: {
    // Constants come from power and ground rails: a plain literal.
    std::vector<Expr> Lanes;
    for (unsigned L = Ty.lanes(); L-- > 0;) {
      int64_t V = I.attrs().size() == 1 ? I.attrs()[0]
                                        : I.attrs()[L];
      uint64_t Mask = W == 64 ? ~uint64_t(0) : ((uint64_t(1) << W) - 1);
      Lanes.push_back(Expr::intLit(W, static_cast<uint64_t>(V) & Mask));
    }
    Mod.addAssign(Expr::ref(I.dst()),
                  Lanes.size() == 1 ? Lanes[0] : Expr::concat(Lanes));
    return Status::success();
  }
  }
  return Status::failure("unhandled wire operation");
}

Status Emitter::emitDspInstr(const AsmInstr &I, const tdl::TargetDef &Def) {
  ir::Type Ty = typeAt(I.dst());
  unsigned W = Ty.width();
  unsigned Lanes = Ty.lanes();
  unsigned X = static_cast<unsigned>(I.loc().X.offset());
  unsigned Y = static_cast<unsigned>(I.loc().Y.offset());

  // Decode the configuration from the operation name.
  const std::string &Name = Def.Name;
  bool HasMul = Name.rfind("mul", 0) == 0;
  bool HasPostAdd = Name.find("muladd") == 0;
  bool HasReg = Name.find("reg") != std::string::npos;
  bool CascadeOut = Name.find("_co") != std::string::npos ||
                    Name.find("_cio") != std::string::npos;
  bool CascadeIn = Name.find("_ci") != std::string::npos;
  bool IsSub = Name.rfind("sub", 0) == 0;

  Item D = Module::makeInstance("DSP48E2", instName());
  D.Attributes.push_back({"LOC", "DSP48E2_X" + std::to_string(X) + "Y" +
                                     std::to_string(Y)});
  const char *Simd = Lanes == 1 ? "ONE48" : (Lanes == 2 ? "TWO24" : "FOUR12");
  D.Params.push_back({"USE_SIMD", Expr::str(HasMul ? "ONE48" : Simd)});
  D.Params.push_back({"USE_MULT", Expr::str(HasMul ? "MULTIPLY" : "NONE")});
  D.Params.push_back({"ALUMODE", Expr::intLit(4, IsSub ? 0x3 : 0x0)});
  // OPMODE: the X/Y multiplexers take A:B (0x33) or the multiplier result
  // (0x05); the Z multiplexer takes C (0x30) or the cascade input PCIN
  // (0x10).
  unsigned Opmode = (HasMul ? 0x05u : 0x33u) |
                    ((CascadeIn ? 0x1u : 0x3u) << 4);
  D.Params.push_back({"OPMODE", Expr::intLit(9, Opmode)});
  D.Params.push_back({"PREG", Expr::intLit(1, HasReg ? 1 : 0)});
  // Non-zero register init values have no standard DSP48E2 parameter; the
  // PINIT extension keeps them visible to the netlist simulator (the
  // hardware P register powers up to zero).
  if (HasReg && !I.attrs().empty() && I.attrs()[0] != 0) {
    uint64_t Mask = (uint64_t(1) << 48) - 1;
    uint64_t Init = 0;
    for (unsigned L = Lanes; L-- > 0;) {
      uint64_t LaneVal = static_cast<uint64_t>(I.attrs()[0]) &
                         ((uint64_t(1) << W) - 1);
      Init = (Init << (48 / Lanes)) | LaneVal;
    }
    D.Params.push_back({"PINIT", Expr::intLit(48, Init & Mask)});
  }
  D.Params.push_back({"AREG", Expr::intLit(2, 0)});
  D.Params.push_back({"BREG", Expr::intLit(2, 0)});
  D.Params.push_back({"CREG", Expr::intLit(1, 0)});
  D.Params.push_back({"MREG", Expr::intLit(1, 0)});

  // Pack value operands into the 48-bit datapath. For the ALU ops the
  // first operand rides A:B and the second rides C; for multiplies the
  // operands ride A and B and the accumulator rides C (or PCIN).
  auto PackLanes = [&](const std::string &Arg, unsigned FieldBits,
                       unsigned Fields) {
    std::string Wire = auxWire(I.dst(), FieldBits * Fields);
    std::vector<Expr> Parts; // most significant first
    for (unsigned L = Fields; L-- > 0;) {
      if (L >= Lanes) {
        Parts.push_back(Expr::intLit(FieldBits, 0));
        continue;
      }
      unsigned Lo = L * W, Hi = Lo + W - 1;
      if (FieldBits == W)
        Parts.push_back(bits(Arg, Hi, Lo));
      else
        Parts.push_back(Expr::concat(
            {Expr::repeat(FieldBits - W, bit(Arg, Hi)), bits(Arg, Hi, Lo)}));
    }
    Mod.addAssign(Expr::ref(Wire),
                  Parts.size() == 1 ? Parts[0] : Expr::concat(Parts));
    return Wire;
  };
  auto SignExtend = [&](const std::string &Arg, unsigned To) {
    std::string Wire = auxWire(I.dst(), To);
    unsigned ArgBits = widthOf(Arg);
    Expr E = ArgBits >= To
                 ? bits(Arg, To - 1, 0)
                 : Expr::concat({Expr::repeat(To - ArgBits,
                                              bit(Arg, ArgBits - 1)),
                                 Expr::ref(Arg)});
    Mod.addAssign(Expr::ref(Wire), std::move(E));
    return Wire;
  };

  unsigned FieldBits = 48 / Lanes;
  std::string PWire = auxWire(I.dst(), 48);
  if (HasMul) {
    D.Connections.push_back({"A", Expr::ref(SignExtend(I.args()[0], 30))});
    D.Connections.push_back({"B", Expr::ref(SignExtend(I.args()[1], 18))});
    if (HasPostAdd && !CascadeIn)
      D.Connections.push_back({"C", Expr::ref(SignExtend(I.args()[2], 48))});
    else
      D.Connections.push_back({"C", Expr::intLit(48, 0)});
  } else {
    // ALU operations ride the concatenated A:B path (A holds the top 30
    // bits, B the low 18) against the C port. ALUMODE 0x3 computes
    // Z - X:Y, so subtraction puts the minuend on C (the Z multiplexer)
    // and the subtrahend on A:B.
    const std::string &AbArg = I.args()[IsSub ? 1 : 0];
    const std::string &CArg = I.args()[IsSub ? 0 : 1];
    std::string Ab = PackLanes(AbArg, FieldBits, Lanes);
    D.Connections.push_back({"A", bits(Ab, 47, 18)});
    D.Connections.push_back({"B", bits(Ab, 17, 0)});
    D.Connections.push_back(
        {"C", Expr::ref(PackLanes(CArg, FieldBits, Lanes))});
  }
  if (CascadeIn) {
    // The accumulator arrives over the dedicated cascade wires from the
    // vertically adjacent producer (Section 5.2).
    const std::string &Producer = I.args()[2];
    D.Connections.push_back({"PCIN", Expr::ref(Producer + "__pcout")});
  }
  if (CascadeOut) {
    std::string PcWire = I.dst() + "__pcout";
    Mod.addWire(PcWire, 48);
    recordType(PcWire, ir::Type::makeInt(48));
    D.Connections.push_back({"PCOUT", Expr::ref(PcWire)});
  }
  D.Connections.push_back({"P", Expr::ref(PWire)});
  D.Connections.push_back({"CLK", Expr::ref("clock")});
  if (HasReg)
    D.Connections.push_back({"CEP", Expr::ref(I.args().back())});
  else
    D.Connections.push_back({"CEP", Expr::intLit(1, 0)});

  Mod.addItem(std::move(D));

  // Unpack the result lanes from P.
  if (Lanes == 1) {
    Mod.addAssign(Expr::ref(I.dst()), bits(PWire, Ty.totalBits() - 1, 0));
  } else {
    std::vector<Expr> Parts;
    for (unsigned L = Lanes; L-- > 0;)
      Parts.push_back(bits(PWire, L * FieldBits + W - 1, L * FieldBits));
    Mod.addAssign(Expr::ref(I.dst()), Expr::concat(Parts));
  }
  return Status::success();
}

Status Emitter::emitLutBodyInstr(const ir::Instr &B, unsigned X, unsigned Y) {
  ir::Type Ty = typeAt(B.dst());
  unsigned Bits = Ty.totalBits();
  switch (B.compOp()) {
  case ir::CompOp::And:
  case ir::CompOp::Or:
  case ir::CompOp::Xor: {
    uint64_t Init = B.compOp() == ir::CompOp::And
                        ? InitAnd2
                        : (B.compOp() == ir::CompOp::Or ? InitOr2 : InitXor2);
    for (unsigned K = 0; K < Bits; ++K)
      emitLut({bit(B.args()[0], K), bit(B.args()[1], K)}, bit(B.dst(), K),
              Init, X, Y);
    return Status::success();
  }
  case ir::CompOp::Not:
    for (unsigned K = 0; K < Bits; ++K)
      emitLut({bit(B.args()[0], K)}, bit(B.dst(), K), InitNot1, X, Y);
    return Status::success();
  case ir::CompOp::Mux:
    for (unsigned K = 0; K < Bits; ++K)
      emitLut({bit(B.args()[2], K), bit(B.args()[1], K),
               Expr::ref(B.args()[0])},
              bit(B.dst(), K), InitMux3, X, Y);
    return Status::success();
  case ir::CompOp::Add:
  case ir::CompOp::Sub: {
    bool Sub = B.compOp() == ir::CompOp::Sub;
    // Per lane: propagate LUTs feed the slice carry chain.
    unsigned W = Ty.width();
    for (unsigned L = 0; L < Ty.lanes(); ++L) {
      std::string Prop = auxWire(B.dst(), W);
      std::string Gen = auxWire(B.dst(), W);
      for (unsigned K = 0; K < W; ++K) {
        unsigned Bit = L * W + K;
        emitLut({bit(B.args()[0], Bit), bit(B.args()[1], Bit)},
                bit(Prop, K), Sub ? InitXnor2 : InitXor2, X, Y);
        Mod.addAssign(bit(Gen, K), bit(B.args()[0], Bit));
      }
      std::string LaneSum = auxWire(B.dst(), W);
      emitCarryChain(Prop, Gen, LaneSum, W, Sub, X, Y);
      Mod.addAssign(bits(B.dst(), L * W + W - 1, L * W),
                    Expr::ref(LaneSum));
    }
    return Status::success();
  }
  case ir::CompOp::Eq:
  case ir::CompOp::Neq: {
    // Per-bit XNOR over the *argument* width, then a LUT6 AND-reduction
    // tree down to the single-bit result.
    unsigned ArgBits = typeAt(B.args()[0]).totalBits();
    std::string Xn = auxWire(B.dst(), ArgBits);
    for (unsigned K = 0; K < ArgBits; ++K)
      emitLut({bit(B.args()[0], K), bit(B.args()[1], K)}, bit(Xn, K),
              InitXnor2, X, Y);
    std::vector<Expr> Level;
    for (unsigned K = 0; K < ArgBits; ++K)
      Level.push_back(bit(Xn, K));
    bool Invert = B.compOp() == ir::CompOp::Neq;
    while (Level.size() > 1 || Invert) {
      std::vector<Expr> NextLevel;
      for (size_t Start = 0; Start < Level.size(); Start += 6) {
        size_t K = std::min<size_t>(6, Level.size() - Start);
        std::vector<Expr> Inputs(Level.begin() + Start,
                                 Level.begin() + Start + K);
        bool Last = Level.size() <= 6;
        // AND of K inputs: only the all-ones row is set.
        uint64_t Init = uint64_t(1) << ((uint64_t(1) << K) - 1);
        if (Last && Invert)
          Init = (K == 6 ? ~Init
                         : ((uint64_t(1) << (uint64_t(1) << K)) - 1) & ~Init);
        std::string OutWire = auxWire(B.dst(), 1);
        emitLut(Inputs, Expr::ref(OutWire), Init, X, Y);
        NextLevel.push_back(Expr::ref(OutWire));
      }
      if (Level.size() <= 6)
        Invert = false;
      Level = std::move(NextLevel);
      if (Level.size() == 1 && !Invert)
        break;
    }
    Mod.addAssign(Expr::ref(B.dst()), Level[0]);
    return Status::success();
  }
  case ir::CompOp::Lt:
  case ir::CompOp::Gt:
  case ir::CompOp::Le:
  case ir::CompOp::Ge: {
    // A carry-chain comparator: subtract and inspect the result sign.
    // Gt/Le swap operands; Le/Ge invert the strict comparison.
    bool SwapArgs = B.compOp() == ir::CompOp::Gt ||
                    B.compOp() == ir::CompOp::Le;
    bool InvertOut = B.compOp() == ir::CompOp::Le ||
                     B.compOp() == ir::CompOp::Ge;
    const std::string &A = B.args()[SwapArgs ? 1 : 0];
    const std::string &C = B.args()[SwapArgs ? 0 : 1];
    unsigned W = typeAt(A).totalBits();
    std::string Prop = auxWire(B.dst(), W);
    std::string Gen = auxWire(B.dst(), W);
    for (unsigned K = 0; K < W; ++K) {
      emitLut({bit(A, K), bit(C, K)}, bit(Prop, K), InitXnor2, X, Y);
      Mod.addAssign(bit(Gen, K), bit(A, K));
    }
    std::string Diff = auxWire(B.dst(), W);
    emitCarryChain(Prop, Gen, Diff, W, /*CarryInit=*/true, X, Y);
    // Signed less-than: sign(a) != sign(b) ? sign(a) : sign(diff).
    std::string SignPick = auxWire(B.dst(), 1);
    emitLut({bit(A, W - 1), bit(C, W - 1), bit(Diff, W - 1)},
            Expr::ref(SignPick),
            /*INIT: I0^I1 ? I0 : I2*/ 0xB2, X, Y);
    if (InvertOut)
      emitLut({Expr::ref(SignPick)}, Expr::ref(B.dst()), InitNot1, X, Y);
    else
      Mod.addAssign(Expr::ref(B.dst()), Expr::ref(SignPick));
    return Status::success();
  }
  case ir::CompOp::Reg: {
    uint64_t Init = static_cast<uint64_t>(B.attrs()[0]);
    unsigned W = Ty.width();
    for (unsigned K = 0; K < Bits; ++K) {
      Item &F = Mod.addInstance("FDRE", instName());
      addSliceLoc(F, X, Y);
      F.Params.push_back({"INIT", Expr::intLit(1, (Init >> (K % W)) & 1)});
      F.Connections.push_back({"C", Expr::ref("clock")});
      F.Connections.push_back({"CE", Expr::ref(B.args()[1])});
      F.Connections.push_back({"R", Expr::intLit(1, 0)});
      F.Connections.push_back({"D", bit(B.args()[0], K)});
      F.Connections.push_back({"Q", bit(B.dst(), K)});
    }
    return Status::success();
  }
  case ir::CompOp::Mul: {
    // A LUT multiplier: each row combines the partial product with the
    // running sum through AND-XOR LUT3s and a carry chain (the classic
    // reason LUT multipliers cost ~width^2 LUTs).
    unsigned W = Ty.width();
    for (unsigned L = 0; L < Ty.lanes(); ++L) {
      unsigned Lo = L * W;
      std::string Acc = auxWire(B.dst(), W);
      // Row 0: plain AND partial products.
      for (unsigned K = 0; K < W; ++K)
        emitLut({bit(B.args()[0], Lo + K), bit(B.args()[1], Lo)},
                bit(Acc, K), InitAnd2, X, Y);
      for (unsigned R = 1; R < W; ++R) {
        std::string Prop = auxWire(B.dst(), W);
        std::string Gen = auxWire(B.dst(), W);
        for (unsigned K = 0; K + R < W; ++K) {
          emitLut({bit(B.args()[0], Lo + K), bit(B.args()[1], Lo + R),
                   bit(Acc, K + R)},
                  bit(Prop, K + R), InitAndXor3, X, Y);
          Mod.addAssign(bit(Gen, K + R), bit(Acc, K + R));
        }
        for (unsigned K = 0; K < R && K < W; ++K) {
          Mod.addAssign(bit(Prop, K), bit(Acc, K));
          Mod.addAssign(bit(Gen, K), Expr::intLit(1, 0));
        }
        std::string Next = auxWire(B.dst(), W);
        emitCarryChain(Prop, Gen, Next, W, false, X, Y);
        Acc = Next;
      }
      Mod.addAssign(bits(B.dst(), Lo + W - 1, Lo), Expr::ref(Acc));
    }
    return Status::success();
  }
  }
  return Status::failure("operation '" + B.str() +
                         "' has no LUT-level expansion");
}

Status Emitter::emitLutInstr(const AsmInstr &I, const tdl::TargetDef &Def) {
  unsigned X = static_cast<unsigned>(I.loc().X.offset());
  unsigned Y = static_cast<unsigned>(I.loc().Y.offset());
  BelCounter = 0;

  // Inline the definition body with renamed temporaries, then expand each
  // compute instruction to primitives and each wire instruction to
  // assigns.
  ir::Function Body = Def.toFunction(I.attrs());
  std::map<std::string, std::string> Rename;
  for (size_t K = 0; K < Def.Inputs.size(); ++K)
    Rename[Def.Inputs[K].Name] = I.args()[K];
  Rename[Def.Output.Name] = I.dst();
  auto Mapped = [&](const std::string &Name) {
    auto It = Rename.find(Name);
    return It != Rename.end() ? It->second : I.dst() + "__" + Name;
  };
  for (const ir::Instr &B : Body.body()) {
    std::string Dst = Mapped(B.dst());
    if (!hasType(Dst)) {
      Mod.addWire(Dst, B.type().totalBits() > 1 ? B.type().totalBits() : 0);
      recordType(Dst, B.type());
    }
    std::vector<std::string> Args;
    for (const std::string &Arg : B.args())
      Args.push_back(Mapped(Arg));
    ir::Instr Local =
        B.isWire()
            ? ir::Instr::makeWire(Dst, B.type(), B.wireOp(), B.attrs(), Args)
            : ir::Instr::makeComp(Dst, B.type(), B.compOp(), Args,
                                  B.attrs());
    if (Local.isWire()) {
      rasm::AsmInstr W = rasm::AsmInstr::makeWire(
          Local.dst(), Local.type(), Local.wireOp(), Local.attrs(),
          Local.args());
      if (Status S = emitWireInstr(W); !S)
        return S;
    } else {
      if (Status S = emitLutBodyInstr(Local, X, Y); !S)
        return S;
    }
  }
  return Status::success();
}

Result<Module> Emitter::run() {
  if (!Prog.isPlaced())
    return fail<Module>("program '" + Prog.name() +
                        "' has unresolved locations; run placement first");

  Mod.addPort(Dir::Input, "clock");
  PortNames.insert("clock");
  for (const ir::Port &P : Prog.inputs()) {
    Mod.addPort(Dir::Input, P.Name,
                P.Ty.totalBits() > 1 ? P.Ty.totalBits() : 0);
    recordType(P.Name, P.Ty);
    if (!PortNames.insert(P.Name).second)
      return fail<Module>("duplicate port '" + P.Name + "'");
  }
  for (const ir::Port &P : Prog.outputs()) {
    if (PortNames.count(P.Name))
      return fail<Module>("output '" + P.Name +
                          "' conflicts with an input port; insert an id "
                          "instruction to rename it");
    Mod.addPort(Dir::Output, P.Name,
                P.Ty.totalBits() > 1 ? P.Ty.totalBits() : 0);
    PortNames.insert(P.Name);
  }
  // Declare a wire for every instruction result that is not an output
  // port, and record all result types.
  for (const AsmInstr &I : Prog.body())
    recordType(I.dst(), I.type());
  for (const AsmInstr &I : Prog.body()) {
    bool IsOutput = false;
    for (const ir::Port &P : Prog.outputs())
      if (P.Name == I.dst())
        IsOutput = true;
    if (!IsOutput)
      Mod.addWire(I.dst(),
                  I.type().totalBits() > 1 ? I.type().totalBits() : 0);
  }

  for (const AsmInstr &I : Prog.body()) {
    if (I.isWire()) {
      if (Status S = emitWireInstr(I); !S)
        return fail<Module>(S.error());
      continue;
    }
    std::vector<ir::Type> ArgTypes;
    for (const std::string &Arg : I.args()) {
      ir::ValueId Id = Names.lookup(Arg);
      if (Id == ir::InvalidValueId)
        return fail<Module>("in '" + I.str() + "': undefined variable '" +
                            Arg + "'");
      ArgTypes.push_back(Types[Id]);
    }
    const tdl::TargetDef *Def =
        Target.resolve(I.opName(), I.loc().Prim, ArgTypes, I.type());
    if (!Def)
      return fail<Module>("in '" + I.str() + "': no definition of '" +
                          I.opName() + "' on target '" + Target.name() +
                          "'");
    Status S = I.loc().Prim == ir::Resource::Dsp ? emitDspInstr(I, *Def)
                                                 : emitLutInstr(I, *Def);
    if (!S)
      return fail<Module>(S.error());
  }
  return Mod;
}

} // namespace

Result<verilog::Module> reticle::codegen::generate(const AsmProgram &Placed,
                                                   const tdl::Target &Target,
                                                   const device::Device &Dev,
                                                   Utilization *Util,
                                                   const obs::Context &Ctx) {
  ++Ctx.counter("codegen.generates");
  obs::Span Sp(Ctx, "codegen.generate");
  Sp.arg("instrs", static_cast<uint64_t>(Placed.body().size()));
  Emitter E(Placed, Target, Dev);
  Result<Module> M = E.run();
  if (M) {
    Ctx.counter("codegen.instances") += M.value().items().size();
    Sp.arg("items", static_cast<uint64_t>(M.value().items().size()));
  }
  if (M && Util) {
    Util->Luts = M.value().countInstances("LUT");
    Util->Dsps = M.value().countInstances("DSP48E2");
    Util->Carries = M.value().countInstances("CARRY8");
    Util->Ffs = M.value().countInstances("FDRE");
  }
  return M;
}
