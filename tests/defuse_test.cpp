//===- tests/defuse_test.cpp - Interned ids and def-use analysis tests --------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "ir/DefUse.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace reticle;
using namespace reticle::ir;

namespace {

Function parseOk(const char *Source) {
  Result<Function> Fn = parseFunction(Source);
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  return Fn.take();
}

std::string readFile(const std::filesystem::path &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.is_open()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

} // namespace

TEST(NameInterner, AssignsDenseIdsAndResolvesBack) {
  NameInterner Names;
  EXPECT_EQ(Names.intern("a"), 0u);
  EXPECT_EQ(Names.intern("b"), 1u);
  EXPECT_EQ(Names.intern("a"), 0u); // re-intern returns the existing id
  EXPECT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names.name(0), "a");
  EXPECT_EQ(Names.name(1), "b");
  EXPECT_EQ(Names.lookup("b"), 1u);
  EXPECT_EQ(Names.lookup("missing"), InvalidValueId);
}

TEST(DefUse, InputsComeFirstThenBodyDestinations) {
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8) -> (y:i8) {
      t0:i8 = add(a, b) @??;
      y:i8 = add(t0, a) @??;
    }
  )");
  const DefUse &DU = Fn.defUse();
  EXPECT_EQ(DU.numValues(), 4u);
  EXPECT_EQ(DU.numInputs(), 2u);
  EXPECT_EQ(DU.idOf("a"), 0u);
  EXPECT_EQ(DU.idOf("b"), 1u);
  EXPECT_EQ(DU.idOf("t0"), 2u);
  EXPECT_EQ(DU.idOf("y"), 3u);
  EXPECT_TRUE(DU.isInputId(DU.idOf("a")));
  EXPECT_FALSE(DU.isInputId(DU.idOf("t0")));
  // Inputs have no defining instruction; body destinations do.
  EXPECT_EQ(DU.defIndexOf(DU.idOf("a")), DefUse::NoDef);
  EXPECT_EQ(DU.defIndexOf(DU.idOf("t0")), 0u);
  EXPECT_EQ(DU.defIndexOf(DU.idOf("y")), 1u);
  EXPECT_EQ(DU.dstIdOf(0), DU.idOf("t0"));
  EXPECT_EQ(DU.dstIdOf(1), DU.idOf("y"));
}

TEST(DefUse, BuildIsCachedUntilInvalidated) {
  Function Fn = parseOk("def f(a:i8) -> (a:i8) {}");
  std::shared_ptr<const DefUse> First = Fn.defUseShared();
  // A second request serves the cache: same analysis object.
  EXPECT_EQ(First.get(), Fn.defUseShared().get());
  // Explicit invalidation forces a rebuild; the old analysis stays valid
  // for holders of the shared pointer.
  Fn.invalidateDefUse();
  std::shared_ptr<const DefUse> Second = Fn.defUseShared();
  EXPECT_NE(First.get(), Second.get());
  EXPECT_EQ(First->numValues(), Second->numValues());
  // Mutation through the add* helpers invalidates automatically.
  Fn.addInput("b", Type::makeInt(8));
  EXPECT_NE(Second.get(), Fn.defUseShared().get());
  EXPECT_EQ(Fn.defUse().numInputs(), 2u);
}

#ifndef RETICLE_NO_TELEMETRY
TEST(DefUse, CountersTrackBuildsHitsAndInvalidations) {
  // A private context so the process-wide counters don't leak in.
  obs::Telemetry Telem;
  obs::RemarkStream Rem;
  obs::Context Ctx{&Telem, &Rem};
  Function Fn = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      y:i8 = add(a, a) @??;
    }
  )");
  (void)Fn.defUse(Ctx);
  (void)Fn.defUse(Ctx);
  Fn.invalidateDefUse(Ctx);
  Fn.invalidateDefUse(Ctx); // no cache left: not counted
  (void)Fn.defUse(Ctx);
  EXPECT_EQ(Telem.counter("ir.defuse.builds").load(), 2u);
  EXPECT_EQ(Telem.counter("ir.defuse.cache_hits").load(), 1u);
  EXPECT_EQ(Telem.counter("ir.defuse.invalidations").load(), 1u);
  // One interned name per value, accumulated across builds.
  EXPECT_EQ(Telem.counter("ir.interner.names").load(), 4u);
}
#endif // RETICLE_NO_TELEMETRY

TEST(DefUse, UseCountsCoverMultiUseDeadAndOutputReads) {
  Function Fn = parseOk(R"(
    def f(a:i8, b:i8) -> (y:i8) {
      t0:i8 = add(a, a) @??;
      dead:i8 = add(b, b) @??;
      y:i8 = add(t0, a) @??;
    }
  )");
  const DefUse &DU = Fn.defUse();
  // 'a' is read three times as an argument, never as an output.
  EXPECT_EQ(DU.useCount(DU.idOf("a")), 3u);
  EXPECT_EQ(DU.usersOf(DU.idOf("a")).size(), 3u);
  // 'dead' defines a value nothing reads.
  EXPECT_EQ(DU.useCount(DU.idOf("dead")), 0u);
  EXPECT_TRUE(DU.usersOf(DU.idOf("dead")).empty());
  EXPECT_FALSE(DU.isLiveOut(DU.idOf("dead")));
  // 'y' is read only by the output port: that read counts toward
  // useCount but does not appear in the users list (argument reads only).
  EXPECT_EQ(DU.useCount(DU.idOf("y")), 1u);
  EXPECT_TRUE(DU.usersOf(DU.idOf("y")).empty());
  EXPECT_TRUE(DU.isLiveOut(DU.idOf("y")));
  EXPECT_EQ(DU.outputIdOf(0), DU.idOf("y"));
  // Argument ids run parallel to args(): t0's reads of 'a'.
  EXPECT_EQ(DU.argIdsOf(0), std::vector<ValueId>({0u, 0u}));
}

TEST(DefUse, UndefinedArgumentsStayInvalid) {
  Function Fn = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      y:i8 = add(a, ghost) @??;
    }
  )");
  const DefUse &DU = Fn.defUse();
  EXPECT_EQ(DU.idOf("ghost"), InvalidValueId);
  EXPECT_EQ(DU.argIdsOf(0)[1], InvalidValueId);
  // Unknown names never grow the id space.
  EXPECT_EQ(DU.numValues(), 2u);
}

TEST(DefUse, TracksFirstDuplicateDefinition) {
  Function Fn = parseOk(R"(
    def f(a:i8) -> (y:i8) {
      y:i8 = add(a, a) @??;
      y:i8 = add(a, a) @??;
    }
  )");
  const DefUse &DU = Fn.defUse();
  EXPECT_EQ(DU.duplicateKind(), DefUse::Dup::Body);
  EXPECT_EQ(DU.duplicateName(), "y");
  // First definition wins, matching the linear-scan findDef.
  EXPECT_EQ(DU.defIndexOf(DU.idOf("y")), 0u);
}

TEST(DefUse, TopoOrderBreaksCyclesAtRegisters) {
  // Figure 12b: the feedback loop passes through a register.
  Function Fn = parseOk(R"(
    def wf() -> (t3:i8) {
      t0:bool = const[1];
      t1:i8 = const[4];
      t2:i8 = add(t3, t1) @??;
      t3:i8 = reg[0](t2, t0) @??;
    }
  )");
  const DefUse &DU = Fn.defUse();
  EXPECT_TRUE(DU.topoOk());
  // All three non-register instructions appear, defs before uses.
  ASSERT_EQ(DU.topoOrder().size(), 3u);
  size_t PosAdd = 0, PosConst = 0;
  for (size_t K = 0; K < DU.topoOrder().size(); ++K) {
    if (DU.topoOrder()[K] == 2)
      PosAdd = K;
    if (DU.topoOrder()[K] == 1)
      PosConst = K;
  }
  EXPECT_LT(PosConst, PosAdd);

  Function Bad = parseOk(R"(
    def il() -> (t1:i8) {
      t0:i8 = const[1];
      t1:i8 = add(t1, t0) @??;
    }
  )");
  EXPECT_FALSE(Bad.defUse().topoOk());
}

// On every example program the cached analysis must agree with the
// verifier and with the linear-scan Function queries it replaced.
TEST(DefUse, AgreesWithVerifierOnExamplePrograms) {
  const std::filesystem::path Dir = RETICLE_EXAMPLES_DIR;
  size_t Checked = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".ret")
      continue;
    ++Checked;
    Result<Function> FnOr = parseFunction(readFile(Entry.path()));
    ASSERT_TRUE(FnOr.ok()) << Entry.path() << ": " << FnOr.error();
    Function Fn = FnOr.take();
    ASSERT_TRUE(verify(Fn).ok()) << Entry.path();
    const DefUse &DU = Fn.defUse();

    // Inputs: dense prefix, no defining instruction, port types.
    ASSERT_EQ(DU.numInputs(), Fn.inputs().size());
    for (size_t K = 0; K < Fn.inputs().size(); ++K) {
      ValueId Id = DU.idOf(Fn.inputs()[K].Name);
      EXPECT_EQ(Id, K);
      EXPECT_EQ(DU.defIndexOf(Id), DefUse::NoDef);
      EXPECT_TRUE(Fn.isInput(Fn.inputs()[K].Name));
      EXPECT_EQ(Fn.findDef(Fn.inputs()[K].Name), nullptr);
    }

    // Defs: every destination resolves to its instruction, and findDef
    // returns that same instruction.
    for (size_t I = 0; I < Fn.body().size(); ++I) {
      ValueId Dst = DU.dstIdOf(I);
      ASSERT_NE(Dst, InvalidValueId);
      EXPECT_EQ(DU.defIndexOf(Dst), I);
      EXPECT_EQ(Fn.findDef(Fn.body()[I].dst()), &Fn.body()[I]);
      Result<Type> Ty = Fn.typeOf(Fn.body()[I].dst());
      ASSERT_TRUE(Ty.ok());
      EXPECT_TRUE(Ty.value() == DU.typeOfId(Dst));
      // A verified program has no undefined arguments.
      for (ValueId Arg : DU.argIdsOf(I))
        EXPECT_NE(Arg, InvalidValueId);
    }

    // Outputs: verified programs define every output.
    for (size_t K = 0; K < Fn.outputs().size(); ++K) {
      ValueId Id = DU.outputIdOf(K);
      ASSERT_NE(Id, InvalidValueId);
      EXPECT_TRUE(DU.isLiveOut(Id));
      EXPECT_GE(DU.useCount(Id), 1u);
    }

    EXPECT_EQ(DU.duplicateKind(), DefUse::Dup::None);
    EXPECT_TRUE(DU.topoOk());
  }
  EXPECT_GE(Checked, 3u) << "expected the example programs under " << Dir;
}
