//===- tests/testbench_test.cpp - Testbench emission tests ----------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "codegen/Testbench.h"

#include "core/Compiler.h"
#include "interp/Interp.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace reticle;
using interp::Trace;
using interp::Value;

namespace {

/// Compiles the mac program and builds matching input/expected traces.
struct MacSetup {
  core::CompileResult Compiled;
  Trace Input;
  Trace Expected;
};

MacSetup makeMacSetup() {
  Result<ir::Function> Fn = ir::parseFunction(R"(
    def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
      t0:i8 = mul(a, b) @??;
      t1:i8 = add(t0, c) @??;
      y:i8 = reg[0](t1, en) @??;
    }
  )");
  EXPECT_TRUE(Fn.ok()) << Fn.error();
  MacSetup S;
  for (int Cycle = 0; Cycle < 3; ++Cycle) {
    interp::Step &Step = S.Input.appendStep();
    Step["a"] = Value::splat(ir::Type::makeInt(8), 2 + Cycle);
    Step["b"] = Value::splat(ir::Type::makeInt(8), 3);
    Step["c"] = Value::splat(ir::Type::makeInt(8), 1);
    Step["en"] = Value::makeBool(true);
  }
  Result<Trace> Out = interp::interpret(Fn.value(), S.Input);
  EXPECT_TRUE(Out.ok()) << Out.error();
  S.Expected = Out.take();
  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  Result<core::CompileResult> R = core::compile(Fn.value(), Options);
  EXPECT_TRUE(R.ok()) << R.error();
  S.Compiled = R.take();
  return S;
}

} // namespace

TEST(Testbench, EmitsSelfCheckingModule) {
  MacSetup S = makeMacSetup();
  Result<std::string> Tb = codegen::emitTestbench(S.Compiled.Verilog,
                                                  S.Input, S.Expected);
  ASSERT_TRUE(Tb.ok()) << Tb.error();
  const std::string &Out = Tb.value();
  EXPECT_NE(Out.find("module mac_tb;"), std::string::npos);
  EXPECT_NE(Out.find("always #5 clock = ~clock;"), std::string::npos);
  EXPECT_NE(Out.find("mac dut (.clock(clock)"), std::string::npos);
  // One check per output per cycle, plus the final verdict.
  EXPECT_NE(Out.find("if (y !== "), std::string::npos);
  EXPECT_NE(Out.find("$display(\"PASS\")"), std::string::npos);
  EXPECT_NE(Out.find("$finish;"), std::string::npos);
  // Cycle 1's expected value: 2*3+1 = 7 visible one cycle later.
  EXPECT_NE(Out.find("8'h7"), std::string::npos);
}

TEST(Testbench, RejectsMismatchedTraceLengths) {
  MacSetup S = makeMacSetup();
  Trace Short = S.Expected;
  Short.steps().pop_back();
  Result<std::string> Tb =
      codegen::emitTestbench(S.Compiled.Verilog, S.Input, Short);
  ASSERT_FALSE(Tb.ok());
  EXPECT_NE(Tb.error().find("differ in length"), std::string::npos);
}

TEST(Testbench, RejectsMissingPortValues) {
  MacSetup S = makeMacSetup();
  Trace Broken = S.Input;
  Broken.step(1).erase("b");
  Result<std::string> Tb =
      codegen::emitTestbench(S.Compiled.Verilog, Broken, S.Expected);
  ASSERT_FALSE(Tb.ok());
  EXPECT_NE(Tb.error().find("missing"), std::string::npos);
}

TEST(Testbench, VectorPortsUseFlattenedLiterals) {
  Result<ir::Function> Fn = ir::parseFunction(
      "def v(a:i8<4>, b:i8<4>) -> (y:i8<4>) { y:i8<4> = add(a, b) @dsp; }");
  ASSERT_TRUE(Fn.ok()) << Fn.error();
  Trace Input;
  interp::Step &Step = Input.appendStep();
  Step["a"] = Value::fromLanes(ir::Type::makeInt(8, 4), {1, 2, 3, 4});
  Step["b"] = Value::fromLanes(ir::Type::makeInt(8, 4), {4, 3, 2, 1});
  Result<Trace> Expected = interp::interpret(Fn.value(), Input);
  ASSERT_TRUE(Expected.ok()) << Expected.error();
  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  Result<core::CompileResult> R = core::compile(Fn.value(), Options);
  ASSERT_TRUE(R.ok()) << R.error();
  Result<std::string> Tb =
      codegen::emitTestbench(R.value().Verilog, Input, Expected.value());
  ASSERT_TRUE(Tb.ok()) << Tb.error();
  // Lane-wise sums are all 5 -> flattened 0x05050505.
  EXPECT_NE(Tb.value().find("32'h5050505"), std::string::npos)
      << Tb.value();
}
