//===- tests/anneal_test.cpp - Annealing placer tests ---------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "anneal/Anneal.h"

#include <gtest/gtest.h>

#include <set>

using namespace reticle;
using namespace reticle::anneal;
using device::Device;
using device::Slot;

namespace {

std::vector<Cell> makeCells(unsigned N, ir::Resource Kind) {
  std::vector<Cell> Cells;
  for (unsigned I = 0; I < N; ++I) {
    Cell C;
    C.Name = "c" + std::to_string(I);
    C.Kind = Kind;
    Cells.push_back(std::move(C));
  }
  return Cells;
}

Status checkDisjointValid(const std::vector<Cell> &Cells,
                          const AnnealResult &R, const Device &Dev) {
  std::set<Slot> Seen;
  for (size_t I = 0; I < Cells.size(); ++I) {
    const Slot &S = R.SlotOf[I];
    if (!Dev.isValidSlot(Cells[I].Kind, S.X, S.Y))
      return Status::failure("invalid slot for " + Cells[I].Name);
    if (!Seen.insert(S).second)
      return Status::failure("overlap at (" + std::to_string(S.X) + "," +
                             std::to_string(S.Y) + ")");
  }
  return Status::success();
}

} // namespace

TEST(Anneal, PlacesWithoutOverlap) {
  std::vector<Cell> Cells = makeCells(12, ir::Resource::Lut);
  std::vector<Net> Nets;
  for (unsigned I = 0; I + 1 < 12; ++I)
    Nets.push_back(Net{{I, I + 1}});
  Result<AnnealResult> R = place(Cells, Nets, Device::small());
  ASSERT_TRUE(R.ok()) << R.error();
  Status S = checkDisjointValid(Cells, R.value(), Device::small());
  EXPECT_TRUE(S.ok()) << S.error();
}

TEST(Anneal, ImprovesOrMatchesInitialCost) {
  std::vector<Cell> Cells = makeCells(30, ir::Resource::Lut);
  std::vector<Net> Nets;
  // A ring plus random chords: plenty to optimize.
  for (unsigned I = 0; I < 30; ++I)
    Nets.push_back(Net{{I, (I + 1) % 30}});
  for (unsigned I = 0; I < 30; I += 3)
    Nets.push_back(Net{{I, (I + 15) % 30}});
  Result<AnnealResult> R = place(Cells, Nets, Device::small());
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_LE(R.value().FinalCost, R.value().InitialCost);
  EXPECT_GT(R.value().Moves, 0u);
}

TEST(Anneal, ConnectedPairsEndUpClose) {
  // Two tightly connected clusters; after annealing, intra-cluster
  // distance should be far below the device diameter.
  std::vector<Cell> Cells = makeCells(8, ir::Resource::Lut);
  std::vector<Net> Nets;
  for (unsigned I = 0; I < 4; ++I)
    for (unsigned J = I + 1; J < 4; ++J) {
      Nets.push_back(Net{{I, J}});
      Nets.push_back(Net{{4 + I, 4 + J}});
    }
  AnnealOptions Options;
  Options.Seed = 3;
  Result<AnnealResult> R = place(Cells, Nets, Device::small(), Options);
  ASSERT_TRUE(R.ok()) << R.error();
  // Cost of a perfectly packed pair of clusters is small; allow slack.
  EXPECT_LT(R.value().FinalCost, 40.0);
}

TEST(Anneal, RespectsLockedCells) {
  std::vector<Cell> Cells = makeCells(4, ir::Resource::Dsp);
  Cells[0].Locked = true;
  Cells[0].HasInitial = true;
  Cells[0].Initial = Slot{2, 5};
  Cells[1].Locked = true;
  Cells[1].HasInitial = true;
  Cells[1].Initial = Slot{2, 6};
  std::vector<Net> Nets = {Net{{0, 1, 2, 3}}};
  Result<AnnealResult> R = place(Cells, Nets, Device::small());
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().SlotOf[0], (Slot{2, 5}));
  EXPECT_EQ(R.value().SlotOf[1], (Slot{2, 6}));
  EXPECT_TRUE(checkDisjointValid(Cells, R.value(), Device::small()).ok());
}

TEST(Anneal, FailsOnOversubscription) {
  std::vector<Cell> Cells = makeCells(17, ir::Resource::Dsp);
  Result<AnnealResult> R = place(Cells, {}, Device::small());
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("exceed"), std::string::npos);
}

TEST(Anneal, InvalidLockRejected) {
  std::vector<Cell> Cells = makeCells(1, ir::Resource::Dsp);
  Cells[0].Locked = true;
  Cells[0].HasInitial = true;
  Cells[0].Initial = Slot{0, 0}; // column 0 holds LUTs on small()
  Result<AnnealResult> R = place(Cells, {}, Device::small());
  ASSERT_FALSE(R.ok());
}

TEST(Anneal, DeterministicUnderSeed) {
  std::vector<Cell> Cells = makeCells(10, ir::Resource::Lut);
  std::vector<Net> Nets;
  for (unsigned I = 0; I + 1 < 10; ++I)
    Nets.push_back(Net{{I, I + 1}});
  AnnealOptions Options;
  Options.Seed = 42;
  Result<AnnealResult> A = place(Cells, Nets, Device::small(), Options);
  Result<AnnealResult> B = place(Cells, Nets, Device::small(), Options);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_EQ(A.value().SlotOf, B.value().SlotOf);
}
