//===- tests/batch_test.cpp - Batch compilation and sessions ---------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// Covers the re-entrant compilation surface: CompileSession isolation,
/// the pass pipeline's stage bookkeeping (timings, snapshots,
/// diagnostics), core::compileBatch's concurrency and determinism, and
/// the merged "reticle-batch-v1" summary document.
///
//===----------------------------------------------------------------------===//

#include "core/Batch.h"
#include "core/Compiler.h"
#include "core/Session.h"
#include "core/Stats.h"
#include "obs/Json.h"

#include <gtest/gtest.h>

using namespace reticle;

namespace {

const char *MacSrc = R"(
def mac(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
  t0:i8 = mul(a, b) @??;
  t1:i8 = add(t0, c) @??;
  y:i8 = reg[0](t1, en) @??;
}
)";

const char *Dot3Src = R"(
def dot3(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, in:i8) -> (t2:i8) {
  m0:i8 = mul(a0, b0) @??;
  t0:i8 = add(m0, in) @??;
  m1:i8 = mul(a1, b1) @??;
  t1:i8 = add(m1, t0) @??;
  m2:i8 = mul(a2, b2) @??;
  t2:i8 = add(m2, t1) @??;
}
)";

const char *AddsSrc = R"(
def scalar_adds(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, a3:i8, b3:i8)
    -> (y0:i8, y1:i8, y2:i8, y3:i8) {
  y0:i8 = add(a0, b0) @??;
  y1:i8 = add(a1, b1) @??;
  y2:i8 = add(a2, b2) @??;
  y3:i8 = add(a3, b3) @??;
}
)";

core::CompileOptions smallDevice() {
  core::CompileOptions Options;
  Options.Dev = device::Device::small();
  return Options;
}

std::vector<core::BatchInput> threePrograms() {
  return {{"mac.ret", MacSrc}, {"dot3.ret", Dot3Src}, {"adds.ret", AddsSrc}};
}

TEST(Session, CompileSourceRunsTheFullPipeline) {
  core::CompileSession Session;
  Result<core::CompileResult> R =
      core::compileSource(MacSrc, "mac.ret", smallDevice(), Session);
  ASSERT_TRUE(R) << R.error();
  EXPECT_FALSE(R.value().Verilog.str().empty());
  EXPECT_GT(R.value().Times.TotalMs, 0.0);
  EXPECT_GE(R.value().Times.ParseMs, 0.0);
  EXPECT_GE(R.value().Times.TotalMs, R.value().Times.SelectMs);
  EXPECT_TRUE(Session.diagnostics().empty());
}

TEST(Session, SourcePipelineSnapshotsEveryStage) {
  core::CompileSession Session;
  Session.captureSnapshots();
  Result<core::CompileResult> R =
      core::compileSource(MacSrc, "mac.ret", smallDevice(), Session);
  ASSERT_TRUE(R) << R.error();
  const std::vector<obs::StageSnapshot> &Stages =
      Session.snapshots().stages();
  ASSERT_EQ(Stages.size(), 6u);
  const char *Expected[] = {"parse",   "opt",   "isel",
                            "cascade", "place", "codegen"};
  for (size_t I = 0; I < 6; ++I)
    EXPECT_EQ(Stages[I].Stage, Expected[I]);
  // The parse snapshot is IR text; the codegen snapshot is Verilog.
  EXPECT_NE(Stages[0].Text.find("def mac"), std::string::npos);
  EXPECT_EQ(Stages[5].Format, "verilog");
}

TEST(Session, ParseFailureIsDiagnosedUnderTheParseStage) {
  core::CompileSession Session;
  Result<core::CompileResult> R =
      core::compileSource("not a program", "bad.ret", smallDevice(),
                          Session);
  ASSERT_FALSE(R);
  ASSERT_EQ(Session.diagnostics().size(), 1u);
  EXPECT_EQ(Session.diagnostics().front().Stage, "parse");
  EXPECT_EQ(Session.diagnostics().front().Message, R.error());
}

TEST(Session, OptimizePassRecordsItsWork) {
  core::CompileOptions Options = smallDevice();
  Options.Optimize = true;
  core::CompileSession Session;
  Result<core::CompileResult> R =
      core::compileSource(AddsSrc, "adds.ret", Options, Session);
  ASSERT_TRUE(R) << R.error();
  // Four independent i8 adds vectorize into one SIMD lane group.
  EXPECT_GT(R.value().Opt.Vectorized, 0u);
}

TEST(Session, SessionsDoNotShareCounters) {
#ifndef RETICLE_NO_TELEMETRY
  core::CompileSession A;
  core::CompileSession B;
  Result<core::CompileResult> R =
      core::compileSource(MacSrc, "mac.ret", smallDevice(), A);
  ASSERT_TRUE(R) << R.error();
  EXPECT_GT(A.context().counter("core.compiles").load(), 0u);
  EXPECT_EQ(B.context().counter("core.compiles").load(), 0u);
#else
  GTEST_SKIP() << "telemetry compiled out";
#endif
}

TEST(Session, StatsJsonReadsTheSessionRegistry) {
  core::CompileSession Session;
  Result<core::CompileResult> R =
      core::compileSource(MacSrc, "mac.ret", smallDevice(), Session);
  ASSERT_TRUE(R) << R.error();
  obs::Json Doc = core::statsJson(R.value(), "mac.ret", Session.context());
  const obs::Json *Schema = Doc.find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->asString(), "reticle-stats-v1");
  ASSERT_NE(Doc.find("timings"), nullptr);
  EXPECT_NE(Doc.find("timings")->find("parse_ms"), nullptr);
  EXPECT_NE(Doc.find("timings")->find("opt_ms"), nullptr);
  EXPECT_NE(Doc.find("opt"), nullptr);
}

TEST(Batch, SequentialAndConcurrentRunsAgreeByteForByte) {
  std::vector<core::BatchInput> Inputs = threePrograms();

  core::BatchOptions Sequential;
  Sequential.Options = smallDevice();
  Sequential.Jobs = 1;
  std::vector<core::BatchItem> SeqItems =
      core::compileBatch(Inputs, Sequential);

  core::BatchOptions Concurrent = Sequential;
  Concurrent.Jobs = 3;
  std::vector<core::BatchItem> ConItems =
      core::compileBatch(Inputs, Concurrent);

  ASSERT_EQ(SeqItems.size(), 3u);
  ASSERT_EQ(ConItems.size(), 3u);
  for (size_t I = 0; I < 3; ++I) {
    ASSERT_TRUE(SeqItems[I].ok())
        << SeqItems[I].Name << ": " << SeqItems[I].Outcome->error();
    ASSERT_TRUE(ConItems[I].ok())
        << ConItems[I].Name << ": " << ConItems[I].Outcome->error();
    EXPECT_EQ(SeqItems[I].Name, ConItems[I].Name);
    EXPECT_EQ(SeqItems[I].Outcome->value().Verilog.str(),
              ConItems[I].Outcome->value().Verilog.str());
    EXPECT_EQ(SeqItems[I].Outcome->value().Placed.str(),
              ConItems[I].Outcome->value().Placed.str());
  }
}

TEST(Batch, FailuresAreIsolatedPerInput) {
  std::vector<core::BatchInput> Inputs = threePrograms();
  Inputs.insert(Inputs.begin() + 1, {"broken.ret", "def oops("});

  core::BatchOptions Options;
  Options.Options = smallDevice();
  Options.Jobs = 2;
  std::vector<core::BatchItem> Items = core::compileBatch(Inputs, Options);
  ASSERT_EQ(Items.size(), 4u);
  EXPECT_TRUE(Items[0].ok());
  EXPECT_FALSE(Items[1].ok());
  EXPECT_TRUE(Items[2].ok());
  EXPECT_TRUE(Items[3].ok());
  ASSERT_EQ(Items[1].Session->diagnostics().size(), 1u);
  EXPECT_EQ(Items[1].Session->diagnostics().front().Stage, "parse");
}

TEST(Batch, SummaryDocumentHasTheBatchShape) {
  std::vector<core::BatchInput> Inputs = threePrograms();
  Inputs.push_back({"broken.ret", "def oops("});

  core::BatchOptions Options;
  Options.Options = smallDevice();
  Options.Jobs = 2;
  std::vector<core::BatchItem> Items = core::compileBatch(Inputs, Options);
  obs::Json Doc = core::batchStatsJson(Items, 2);

  EXPECT_EQ(Doc.find("schema")->asString(), "reticle-batch-v1");
  EXPECT_EQ(Doc.find("inputs")->asInt(), 4);
  EXPECT_EQ(Doc.find("succeeded")->asInt(), 3);
  EXPECT_EQ(Doc.find("failed")->asInt(), 1);
  EXPECT_EQ(Doc.find("jobs")->asInt(), 2);
  const obs::Json *Programs = Doc.find("programs");
  ASSERT_NE(Programs, nullptr);
  ASSERT_EQ(Programs->size(), 4u);
  EXPECT_EQ(Programs->items()[0].find("status")->asString(), "ok");
  EXPECT_EQ(Programs->items()[3].find("status")->asString(), "error");
  EXPECT_FALSE(Programs->items()[3].find("error")->asString().empty());
  // Ok entries embed the per-input stats document.
  const obs::Json *Stats = Programs->items()[0].find("stats");
  ASSERT_NE(Stats, nullptr);
  EXPECT_EQ(Stats->find("schema")->asString(), "reticle-stats-v1");
  ASSERT_NE(Doc.find("totals"), nullptr);
  EXPECT_NE(Doc.find("totals")->find("total_ms"), nullptr);
}

TEST(Batch, PerItemSessionsCaptureTheirOwnArtifacts) {
  core::BatchOptions Options;
  Options.Options = smallDevice();
  Options.Jobs = 2;
  Options.CaptureSnapshots = true;
  Options.EnableRemarks = true;
  std::vector<core::BatchItem> Items =
      core::compileBatch(threePrograms(), Options);
  for (const core::BatchItem &Item : Items) {
    ASSERT_TRUE(Item.ok()) << Item.Name;
    EXPECT_EQ(Item.Session->snapshots().stages().size(), 6u) << Item.Name;
#ifndef RETICLE_NO_TELEMETRY
    EXPECT_GT(Item.Session->remarks().count(), 0u) << Item.Name;
#endif
  }
}

} // namespace

TEST(Batch, ScheduleOrdersByCostDescendingWithStableTies) {
  // Cost is the statement count (';' terminators); the biggest program
  // compiles first, equal costs keep their input order, and the schedule
  // never touches the Items[i] <-> Inputs[i] correspondence.
  std::vector<core::BatchInput> Inputs = {
      {"one", "a;"},
      {"three", "a; b; c;"},
      {"two", "a; b;"},
      {"empty", ""},
      {"two_again", "d; e;"},
  };
  std::vector<size_t> Order = core::batchScheduleOrder(Inputs);
  EXPECT_EQ(Order, (std::vector<size_t>{1, 2, 4, 0, 3}));
}

TEST(Batch, CostSortedScheduleKeepsOutputOrdering) {
  // threePrograms() lists mac (3 statements) first, but dot3 (6) and adds
  // (4) are scheduled ahead of it; the result vector must still line up
  // with the inputs, and each item must be the right program.
  std::vector<core::BatchInput> Inputs = threePrograms();
  std::vector<size_t> Order = core::batchScheduleOrder(Inputs);
  EXPECT_EQ(Order, (std::vector<size_t>{1, 2, 0}));
  core::BatchOptions Options;
  Options.Options = smallDevice();
  Options.Jobs = 3;
  std::vector<core::BatchItem> Items = core::compileBatch(Inputs, Options);
  ASSERT_EQ(Items.size(), 3u);
  for (size_t I = 0; I < Items.size(); ++I) {
    EXPECT_EQ(Items[I].Name, Inputs[I].Name);
    ASSERT_TRUE(Items[I].ok());
  }
  EXPECT_NE(Items[0].Outcome->value().Verilog.str().find("module mac"),
            std::string::npos);
  EXPECT_NE(Items[1].Outcome->value().Verilog.str().find("module dot3"),
            std::string::npos);
}

TEST(Batch, MeasuredCostsOverrideTheStatementEstimate) {
  // "one" has the fewest statements but the largest measured cost, so it
  // schedules first; "three" (unmeasured) interpolates at the measured
  // ms-per-statement rate and still beats "two"'s small measurement.
  std::vector<core::BatchInput> Inputs = {
      {"one", "a;"},
      {"three", "a; b; c;"},
      {"two", "a; b;"},
  };
  std::map<std::string, double> Measured = {{"one", 500.0}, {"two", 10.0}};
  std::vector<size_t> Order = core::batchScheduleOrder(Inputs, Measured);
  // Rates: one=500 (measured), two=10 (measured), three=3 * (510/3)=510.
  EXPECT_EQ(Order, (std::vector<size_t>{1, 0, 2}));
  // Without measurements the statement count decides.
  EXPECT_EQ(core::batchScheduleOrder(Inputs),
            (std::vector<size_t>{1, 2, 0}));
}

TEST(Batch, MeasuredCostsHarvestFromASummaryDocument) {
  // batchMeasuredCosts reads timings.total_ms per ok program and skips
  // failed entries — exactly what --schedule-from feeds back in.
  const char *Summary = R"({
    "schema": "reticle-batch-v1",
    "programs": [
      {"program": "a.ret", "status": "ok",
       "stats": {"timings": {"total_ms": 12.5}}},
      {"program": "b.ret", "status": "error", "error": "nope"},
      {"program": "c.ret", "status": "ok",
       "stats": {"timings": {"total_ms": 3.25}}}
    ]
  })";
  Result<obs::Json> Doc = obs::Json::parse(Summary);
  ASSERT_TRUE(Doc.ok()) << Doc.error();
  std::map<std::string, double> Costs = core::batchMeasuredCosts(Doc.value());
  ASSERT_EQ(Costs.size(), 2u);
  EXPECT_DOUBLE_EQ(Costs["a.ret"], 12.5);
  EXPECT_DOUBLE_EQ(Costs["c.ret"], 3.25);
  // Malformed documents degrade to "no measurements", never error.
  EXPECT_TRUE(core::batchMeasuredCosts(obs::Json()).empty());
}

TEST(Batch, EndToEndScheduleFromMeasurements) {
  // A real batch run's summary fed back as MeasuredCostMs changes only
  // the schedule; the per-input artifacts stay byte-identical.
  std::vector<core::BatchInput> Inputs = threePrograms();
  core::BatchOptions Options;
  Options.Options = smallDevice();
  std::vector<core::BatchItem> First = core::compileBatch(Inputs, Options);
  obs::Json Summary = core::batchStatsJson(First, 1);
  Options.MeasuredCostMs = core::batchMeasuredCosts(Summary);
  ASSERT_EQ(Options.MeasuredCostMs.size(), Inputs.size());
  std::vector<core::BatchItem> Second = core::compileBatch(Inputs, Options);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    ASSERT_TRUE(First[I].ok());
    ASSERT_TRUE(Second[I].ok());
    EXPECT_EQ(First[I].Outcome->value().Verilog.str(),
              Second[I].Outcome->value().Verilog.str());
  }
}
