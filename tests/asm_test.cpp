//===- tests/asm_test.cpp - Assembly language tests ----------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rasm/AsmParser.h"

#include <gtest/gtest.h>

using namespace reticle;
using namespace reticle::rasm;

TEST(Coord, Printing) {
  EXPECT_EQ(Coord::wild().str(), "??");
  EXPECT_EQ(Coord::lit(7).str(), "7");
  EXPECT_EQ(Coord::var("x").str(), "x");
  EXPECT_EQ(Coord::var("y", 1).str(), "y+1");
  EXPECT_EQ(Coord::var("y", -2).str(), "y-2");
}

TEST(AsmParser, ParsesPaperCascadePair) {
  // Figure 11b: the cascading layout with relative coordinates.
  const char *Source = R"(
    def dot(a:i8, b:i8, c:i8, d:i8, in:i8) -> (t1:i8) {
      t0:i8 = muladd_co(a, b, in) @dsp(x, y);
      t1:i8 = muladd_ci(c, d, t0) @dsp(x, y+1);
    }
  )";
  Result<AsmProgram> P = parseAsmProgram(Source);
  ASSERT_TRUE(P.ok()) << P.error();
  ASSERT_EQ(P.value().body().size(), 2u);
  const AsmInstr &First = P.value().body()[0];
  EXPECT_EQ(First.opName(), "muladd_co");
  EXPECT_EQ(First.loc().Prim, ir::Resource::Dsp);
  EXPECT_EQ(First.loc().X, Coord::var("x"));
  EXPECT_EQ(First.loc().Y, Coord::var("y"));
  const AsmInstr &Second = P.value().body()[1];
  EXPECT_EQ(Second.loc().Y, Coord::var("y", 1));
  EXPECT_FALSE(P.value().isPlaced());
}

TEST(AsmParser, ParsesWildcardsAndLiterals) {
  const char *Source = R"(
    def f(a:i8, b:i8) -> (y:i8) {
      y:i8 = add(a, b) @dsp(??, 17);
    }
  )";
  Result<AsmProgram> P = parseAsmProgram(Source);
  ASSERT_TRUE(P.ok()) << P.error();
  const AsmInstr &I = P.value().body()[0];
  EXPECT_TRUE(I.loc().X.isWild());
  EXPECT_EQ(I.loc().Y, Coord::lit(17));
}

TEST(AsmParser, FoldsConstantSums) {
  Result<AsmProgram> P = parseAsmProgram(
      "def f(a:i8) -> (y:i8) { y:i8 = add(a, a) @lut(1+2, y+1+3); }");
  ASSERT_TRUE(P.ok()) << P.error();
  const AsmInstr &I = P.value().body()[0];
  EXPECT_EQ(I.loc().X, Coord::lit(3));
  EXPECT_EQ(I.loc().Y, Coord::var("y", 4));
}

TEST(AsmParser, RetainsWireInstructions) {
  const char *Source = R"(
    def f(a:i8) -> (y:i8) {
      t0:i8 = sll[1](a);
      y:i8 = add(t0, a) @dsp(??, ??);
    }
  )";
  Result<AsmProgram> P = parseAsmProgram(Source);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_TRUE(P.value().body()[0].isWire());
  EXPECT_EQ(P.value().body()[0].wireOp(), ir::WireOp::Sll);
}

TEST(AsmParser, RejectsTwoVariableCoordinates) {
  Result<AsmProgram> P = parseAsmProgram(
      "def f(a:i8) -> (y:i8) { y:i8 = add(a, a) @dsp(x+z, 0); }");
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("two distinct variables"), std::string::npos);
}

TEST(AsmParser, RejectsMissingLocation) {
  Result<AsmProgram> P =
      parseAsmProgram("def f(a:i8) -> (y:i8) { y:i8 = add(a, a); }");
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("requires a location"), std::string::npos);
}

TEST(AsmParser, RejectsLocationOnWire) {
  Result<AsmProgram> P = parseAsmProgram(
      "def f(a:i8) -> (y:i8) { y:i8 = id(a) @lut(0, 0); }");
  ASSERT_FALSE(P.ok());
}

TEST(AsmParser, PrintParseRoundTrip) {
  const char *Source = R"(
    def rt(a:i8, b:i8, en:bool) -> (y:i8) {
      t0:i8 = muladd_co(a, b, a) @dsp(x0, y0);
      t1:i8 = muladd_ci(a, b, t0) @dsp(x0, y0+1);
      t2:i8 = sll[2](t1);
      y:i8 = reg[0](t2, en) @lut(??, 5);
    }
  )";
  Result<AsmProgram> First = parseAsmProgram(Source);
  ASSERT_TRUE(First.ok()) << First.error();
  std::string Printed = First.value().str();
  Result<AsmProgram> Second = parseAsmProgram(Printed);
  ASSERT_TRUE(Second.ok()) << Second.error() << "\n" << Printed;
  EXPECT_EQ(Second.value().str(), Printed);
}

TEST(AsmParser, NegativeOffsetRoundTrip) {
  Result<AsmProgram> P = parseAsmProgram(
      "def f(a:i8) -> (y:i8) { y:i8 = add(a, a) @dsp(x, y-1); }");
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(P.value().body()[0].loc().Y, Coord::var("y", -1));
  Result<AsmProgram> Again = parseAsmProgram(P.value().str());
  ASSERT_TRUE(Again.ok()) << Again.error();
  EXPECT_EQ(Again.value().str(), P.value().str());
}

TEST(AsmProgram, IsPlacedWhenAllLiterals) {
  Result<AsmProgram> P = parseAsmProgram(R"(
    def f(a:i8) -> (y:i8) {
      t0:i8 = add(a, a) @dsp(0, 1);
      y:i8 = id(t0);
    }
  )");
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_TRUE(P.value().isPlaced());
}
