//===- tests/value_test.cpp - Runtime value tests ----------------------------===//
//
// Part of the Reticle-C++ project.
//
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

#include <gtest/gtest.h>

using namespace reticle;
using interp::Value;
using ir::Type;

TEST(Value, CanonicalizeSignExtends) {
  EXPECT_EQ(Value::canonicalize(0xFF, 8), -1);
  EXPECT_EQ(Value::canonicalize(0x7F, 8), 127);
  EXPECT_EQ(Value::canonicalize(128, 8), -128);
  EXPECT_EQ(Value::canonicalize(256, 8), 0);
  EXPECT_EQ(Value::canonicalize(-1, 64), -1);
  EXPECT_EQ(Value::canonicalize(1, 1), -1); // i1 is signed
}

TEST(Value, SplatFillsLanes) {
  Value V = Value::splat(Type::makeInt(8, 4), 300);
  ASSERT_EQ(V.lanes(), 4u);
  for (unsigned L = 0; L < 4; ++L)
    EXPECT_EQ(V.lane(L), 44); // 300 mod 256
}

TEST(Value, BoolNormalizesToZeroOne) {
  EXPECT_EQ(Value::splat(Type::makeBool(), 42).scalar(), 1);
  EXPECT_EQ(Value::splat(Type::makeBool(), 0).scalar(), 0);
  EXPECT_TRUE(Value::makeBool(true).toBool());
  EXPECT_FALSE(Value::makeBool(false).toBool());
}

TEST(Value, BitsRoundTripScalar) {
  Value V = Value::splat(Type::makeInt(8), -3);
  std::vector<bool> Bits = V.toBits();
  ASSERT_EQ(Bits.size(), 8u);
  EXPECT_EQ(Value::fromBits(Type::makeInt(8), Bits), V);
}

TEST(Value, BitsRoundTripVector) {
  Value V = Value::fromLanes(Type::makeInt(4, 3), {1, -2, 7});
  std::vector<bool> Bits = V.toBits();
  ASSERT_EQ(Bits.size(), 12u);
  EXPECT_EQ(Value::fromBits(Type::makeInt(4, 3), Bits), V);
  // Lane 0 occupies the low bits: 1 = 0b0001.
  EXPECT_TRUE(Bits[0]);
  EXPECT_FALSE(Bits[1]);
}

TEST(Value, BitsReinterpretAcrossTypes) {
  // i8<2> lanes {1, 2} flatten to the same bits as the i16 0x0201.
  Value V = Value::fromLanes(Type::makeInt(8, 2), {1, 2});
  Value W = Value::fromBits(Type::makeInt(16), V.toBits());
  EXPECT_EQ(W.scalar(), 0x0201);
}

TEST(Value, Printing) {
  EXPECT_EQ(Value::makeBool(true).str(), "true");
  EXPECT_EQ(Value::splat(Type::makeInt(8), -5).str(), "-5");
  EXPECT_EQ(Value::fromLanes(Type::makeInt(8, 2), {1, 2}).str(), "[1, 2]");
}
